// Benchmarks regenerating the paper's evaluation artifacts (Table III and
// Figure 9) plus ablations of the design choices DESIGN.md calls out.
// Reported custom metrics are simulated microseconds (the reproduction's
// measurements); ns/op is host time and only reflects simulator speed.
//
//	go test -bench=. -benchmem
package main

import (
	"fmt"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/experiments"
	"repro/internal/gic"
	"repro/internal/hwtask"
	"repro/internal/measure"
	"repro/internal/nova"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/reconfig"
	"repro/internal/scenario"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

// benchConfig is sized so one bench iteration stays in the seconds range.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Iterations = 8
	cfg.Warmup = 3
	return cfg
}

// BenchmarkTable3Native measures the baseline row of Table III.
func BenchmarkTable3Native(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.RunTable3Native(benchConfig())
		b.ReportMetric(row.Exec, "exec_us")
		b.ReportMetric(row.Total(), "total_us")
	}
}

// BenchmarkTable3Virt measures the virtualized rows (sub-benchmark per
// guest count), regenerating the µs columns of Table III.
func BenchmarkTable3Virt(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "1VM", 2: "2VM", 3: "3VM", 4: "4VM"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := experiments.RunTable3Row(benchConfig(), n)
				b.ReportMetric(row.Entry, "entry_us")
				b.ReportMetric(row.Exit, "exit_us")
				b.ReportMetric(row.IRQEntry, "plirq_us")
				b.ReportMetric(row.Exec, "exec_us")
				b.ReportMetric(row.Total(), "total_us")
			}
		})
	}
}

// BenchmarkFig9 regenerates the degradation-ratio series (Figure 9):
// the reported metrics are the Total ratio at 1 and 4 VMs and the plotted
// efficiency at 4 VMs.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.RunTable3(benchConfig())
		f := experiments.Figure9(tab)
		b.ReportMetric(f.Total[0], "ratio_1vm")
		b.ReportMetric(f.Total[len(f.Total)-1], "ratio_4vm")
		b.ReportMetric(f.Efficiency()[len(f.Total)-1], "efficiency_4vm")
	}
}

// BenchmarkDualCoreOffload compares the paper's CPU0-only deployment with
// the dual-core Zynq partitioning — guests on core 0, the Hardware Task
// Manager service pinned on core 1, requests crossing cores by SGI. The
// reported metrics show the request path shortening (no world switch on
// the guests' core) and the per-core load split.
func BenchmarkDualCoreOffload(b *testing.B) {
	for _, cores := range []int{1, 2} {
		b.Run(map[int]string{1: "1core", 2: "2core"}[cores], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Guests = 2
				rep := experiments.RunDualCoreRow(cfg, cores)
				b.ReportMetric(rep.Entry, "entry_us")
				b.ReportMetric(rep.Total, "total_us")
				b.ReportMetric(float64(rep.VMSwitches), "vm_switches")
				if cores == 2 {
					b.ReportMetric(rep.PerCore[0].Utilization*100, "cpu0_util_pct")
					b.ReportMetric(rep.PerCore[1].Utilization*100, "cpu1_util_pct")
					b.ReportMetric(float64(rep.SGIsSent), "sgis")
				}
			}
		})
	}
}

// BenchmarkReconfigColdVsWarm measures one managed reconfiguration
// through the pipeline at device level: the cold path pays the SD-card
// staging read plus the PCAP download, the warm path finds the bitstream
// image in the cache and pays the download alone. The reported
// reconfig_us metrics are the acceptance evidence that the cache makes
// repeat reconfigurations measurably cheaper.
func BenchmarkReconfigColdVsWarm(b *testing.B) {
	run := func(b *testing.B, warm bool) {
		for i := 0; i < b.N; i++ {
			clock := simclock.New()
			bus := physmem.NewBus()
			g := gic.New()
			caps := []bitstream.Resources{{LUTs: 10000, BRAM: 32, DSP: 48}}
			fab := pl.NewFabric(clock, bus, g, caps)
			raw := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 100}, 150<<10).Encode()
			storePA := physmem.Addr(physmem.DDRBase + 0xA0_0000)
			if err := bus.WriteBytes(storePA, raw); err != nil {
				b.Fatal(err)
			}
			pipe := reconfig.New(clock, fab, bus, storePA, reconfig.DefaultConfig())
			submit := func() simclock.Cycles {
				t0 := clock.Now()
				pipe.Submit(&reconfig.Request{
					SrcOff: 0, Len: uint32(len(raw)), Target: 0, Priority: 1,
				})
				clock.RunUntilIdle(100)
				return clock.Now() - t0
			}
			d := submit() // cold: SD fetch + PCAP
			if warm {
				d = submit() // warm: cached image, PCAP only
			}
			b.ReportMetric(d.Micros(), "reconfig_us")
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}

// BenchmarkReconfigSweep runs the full dual-core sharing workload through
// the pipeline and reports the system-level distributions: cold/warm p50,
// cache hit ratio, and the queue pressure that replaced busy-rejection.
func BenchmarkReconfigSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultReconfigConfig()
		cfg.Iterations = 10
		rep := experiments.RunReconfigSweep(cfg)
		b.ReportMetric(rep.Cold.P50, "cold_p50_us")
		b.ReportMetric(rep.Warm.P50, "warm_p50_us")
		b.ReportMetric(rep.HitRatio, "hit_ratio")
		b.ReportMetric(float64(rep.Queued), "queued_starts")
		b.ReportMetric(float64(rep.Queue.MaxDepth), "queue_max_depth")
	}
}

// BenchmarkIPCPortal measures the portal call/reply IPC round trip on
// one core: a client PD calls a server PD's portal through a delegated
// PD capability, the server answers with the merged reply+receive. The
// sim_cycles/rt metric is the deterministic acceptance number for the
// same-core synchronous fast path (fastpath_pct should be ~100); ns/op
// only reflects simulator speed.
func BenchmarkIPCPortal(b *testing.B) {
	rounds := 5000
	if testing.Short() {
		rounds = 500
	}
	for i := 0; i < b.N; i++ {
		res := experiments.MeasureIPCPortal(rounds)
		b.ReportMetric(res.SimCyclesPerRT, "sim_cycles/rt")
		b.ReportMetric(res.SimUsPerRT, "sim_us/rt")
		b.ReportMetric(res.FastPathShare*100, "fastpath_pct")
	}
}

// --- Ablations -----------------------------------------------------------

// switchHeavySystem builds a 2-VM system that world-switches frequently.
func switchHeavySystem(b *testing.B, mutate func(*nova.Kernel)) *measure.Set {
	b.Helper()
	cfg := benchConfig()
	cfg.Guests = 2
	sys := experiments.BuildVirtSystem(cfg)
	if mutate != nil {
		mutate(sys.Kernel)
	}
	defer sys.Kernel.Shutdown()
	sys.Kernel.RunFor(simclock.FromMillis(400))
	return sys.Kernel.Probes
}

// BenchmarkAblationVFP compares the lazy VFP policy of Table I against
// eager save/restore on every switch.
func BenchmarkAblationVFP(b *testing.B) {
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := switchHeavySystem(b, nil)
			b.ReportMetric(p.Get(measure.PhaseVMSwitch).MeanMicros(), "switch_us")
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := switchHeavySystem(b, func(k *nova.Kernel) { k.EagerVFP = true })
			b.ReportMetric(p.Get(measure.PhaseVMSwitch).MeanMicros(), "switch_us")
		}
	})
}

// BenchmarkAblationASID compares ASID-tagged TLB management (§III-C)
// against a full TLB flush on every world switch.
func BenchmarkAblationASID(b *testing.B) {
	b.Run("asid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := switchHeavySystem(b, nil)
			b.ReportMetric(p.Get(measure.PhaseMgrExec).MeanMicros(), "exec_us")
			b.ReportMetric(p.Get(measure.PhaseMgrEntry).MeanMicros(), "entry_us")
		}
	})
	b.Run("flush-on-switch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := switchHeavySystem(b, func(k *nova.Kernel) { k.FlushTLBOnSwitch = true })
			b.ReportMetric(p.Get(measure.PhaseMgrExec).MeanMicros(), "exec_us")
			b.ReportMetric(p.Get(measure.PhaseMgrEntry).MeanMicros(), "entry_us")
		}
	})
}

// BenchmarkAblationHwMMU quantifies the hwMMU's cost (spoiler: the window
// check is two comparisons on the DMA path — the security is nearly free)
// and demonstrates what it blocks: the reported violations metric counts
// escape attempts, which with the unit disabled would have silently
// corrupted other VMs' memory.
func BenchmarkAblationHwMMU(b *testing.B) {
	run := func(b *testing.B, disabled bool) {
		for i := 0; i < b.N; i++ {
			cfg := benchConfig()
			cfg.Guests = 2
			sys := experiments.BuildVirtSystem(cfg)
			sys.Kernel.Fabric.HwMMU.Disabled = disabled
			sys.Kernel.RunFor(simclock.FromMillis(400))
			b.ReportMetric(sys.Kernel.Probes.Get(measure.PhaseMgrExec).MeanMicros(), "exec_us")
			b.ReportMetric(float64(sys.Kernel.Fabric.HwMMU.Violations.Load()), "violations")
			sys.Kernel.Shutdown()
		}
	}
	b.Run("enforcing", func(b *testing.B) { run(b, false) })
	b.Run("disabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPCAPPoll compares the two §IV-E completion methods for
// a guest using a hardware task: completion IRQ vs status polling.
func BenchmarkAblationPCAPPoll(b *testing.B) {
	run := func(b *testing.B, polled bool) {
		for i := 0; i < b.N; i++ {
			nm := ucos.NewNativeMachine(experiments.PaperCores())
			os := ucos.NewOS("bench", nm)
			var total simclock.Cycles
			runs := 0
			os.TaskCreate("driver", 8, func(t *ucos.Task) {
				t.OS.M.SetupDataSection(64 << 10)
				h, _ := t.AcquireHw(hwtask.TaskQAM16)
				if h == nil {
					return
				}
				for j := 0; j < 20; j++ {
					start := t.OS.M.Now()
					var ok bool
					if polled {
						ok = h.RunPolled(t, 0x1000, 0x9000, 48, 16)
					} else {
						ok = h.Run(t, 0x1000, 0x9000, 48, 16, 100)
					}
					if ok {
						total += t.OS.M.Now() - start
						runs++
					}
				}
				t.OS.Stop()
			})
			os.Deadline = nm.Now() + simclock.FromMillis(200)
			os.Run()
			os.Shutdown()
			if runs > 0 {
				b.ReportMetric(total.Micros()/float64(runs), "taskrun_us")
			}
		}
	}
	b.Run("irq", func(b *testing.B) { run(b, false) })
	b.Run("polled", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationManagerPriority tests §IV-E's design choice of running
// the Hardware Task Manager above the guests: with the service demoted to
// guest priority it must wait for the round-robin, inflating the request
// path ("HW Manager entry") by orders of magnitude.
func BenchmarkAblationManagerPriority(b *testing.B) {
	run := func(b *testing.B, demote bool) {
		for i := 0; i < b.N; i++ {
			cfg := benchConfig()
			cfg.Guests = 2
			cfg.Iterations = 4
			sys := experiments.BuildVirtSystem(cfg)
			if demote {
				svc := sys.Kernel.PDs[0] // the service is created first
				svc.Priority = nova.PrioGuest
			}
			probes := sys.RunToCompletion(simclock.FromMillis(3000))
			b.ReportMetric(probes.Get(measure.PhaseMgrEntry).MeanMicros(), "entry_us")
			sys.Kernel.Shutdown()
		}
	}
	b.Run("service-prio", func(b *testing.B) { run(b, false) })
	b.Run("guest-prio", func(b *testing.B) { run(b, true) })
}

// BenchmarkSimulatorThroughput reports raw model speed: simulated cycles
// per host second for a 2-VM system (useful when sizing experiments).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Guests = 2
		sys := experiments.BuildVirtSystem(cfg)
		sys.Kernel.RunFor(simclock.FromMillis(100))
		b.ReportMetric(float64(sys.Kernel.CPU.Stats().Instructions), "sim_instructions")
		sys.Kernel.Shutdown()
	}
}

// BenchmarkParallelScenario measures the epoch-barrier parallel engine on
// the multi-core benchmark scenarios: the "seq" sub-benchmark is the
// sequential reference loop, each "shardsN" sub-benchmark the same spec
// on N host goroutines. The simulated result is byte-identical across all
// of them (scenario.TestParallelInSystemMatchesSequential); ns/op is the
// wall-clock story, and only spreads on a multi-core host.
func BenchmarkParallelScenario(b *testing.B) {
	for _, spec := range scenario.ParallelBenchSpecs(testing.Short()) {
		for _, shards := range []int{0, 1, 2, 4} {
			name := spec.Name + "/seq"
			if shards > 0 {
				name = fmt.Sprintf("%s/shards%d", spec.Name, shards)
			}
			s := spec
			s.Shards = shards
			b.Run(name, func(b *testing.B) {
				var sum uint64
				for i := 0; i < b.N; i++ {
					r := scenario.Build(s).Run()
					if sum == 0 {
						sum = r.Checksum
					} else if r.Checksum != sum {
						b.Fatalf("checksum diverged across runs: %016x vs %016x", r.Checksum, sum)
					}
					b.ReportMetric(r.SimMs, "sim_ms")
				}
			})
		}
	}
}

// BenchmarkSimThroughput measures the batched memory-path engine against
// the scalar reference path on the Table III 4-VM configuration: simulated
// milliseconds covered per host second (higher is better). The two paths
// produce bit-identical simulated results (see cpu.TestBatchedScalarEquivalence);
// this benchmark is the wall-clock half of that story and the source of
// the BENCH_sim.json trajectory (cmd/experiments -bench).
func BenchmarkSimThroughput(b *testing.B) {
	simMs := 100.0
	if testing.Short() {
		simMs = 20.0
	}
	for _, scalar := range []bool{false, true} {
		name := "batched"
		if scalar {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.MeasureSimThroughput("table3_4vm", experiments.DefaultConfig(), simMs, scalar, 1)
				b.ReportMetric(res.SimMsPerHostS, "sim_ms/host_s")
				b.ReportMetric(res.MIPS, "sim_mips")
			}
		})
	}
}
