// Command detlint runs the simulator's custom determinism/ABI/trace
// analyzers (internal/detlint) over Go packages. It speaks two
// protocols:
//
//   - standalone: `detlint ./...` (or `go run ./cmd/detlint ./...`)
//     loads packages through `go list -export` and prints findings;
//     exit status 2 means findings, 1 means failure to analyze.
//
//   - vettool: when invoked by `go vet -vettool=$(which detlint)`, the
//     go command drives it with `-V=full` (version for the build
//     cache), `-flags` (supported-flag discovery) and one *.cfg JSON
//     file per package — the unitchecker protocol of
//     golang.org/x/tools, reimplemented here on the standard library
//     because the tree deliberately has no third-party dependencies.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/detlint"
	"repro/internal/detlint/load"
)

var jsonFlag = flag.Bool("json", false, "emit JSON output")

func main() {
	// The go command's probe requests come before flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-json] package...\n       detlint unit.cfg (vettool mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := detlint.Run(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(1)
	}
	report(diags)
}

func report(diags []detlint.Diagnostic) {
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 && !*jsonFlag {
		os.Exit(2)
	}
}

// printVersion implements -V=full in the exact shape the go command's
// tool-ID probe parses: `name version devel ... buildID=<hex>`, where
// the build ID must change whenever the binary does (it keys go vet's
// result cache), so it is a hash of the executable itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel detlint buildID=%x\n", name, h.Sum(nil))
}

// printFlags implements -flags: the JSON flag inventory the go command
// uses to validate user-supplied vet flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		getter, ok := f.Value.(flag.Getter)
		if !ok {
			return
		}
		_, isBool := getter.Get().(bool)
		flags = append(flags, jsonFlag{f.Name, isBool, f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// vetConfig is the per-package JSON configuration the go command hands
// a vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}
	// detlint exports no facts, but the go command caches the declared
	// facts output, so it must exist even when empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency analyzed only for facts — nothing to do.
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	exports := make(map[string]string, len(cfg.ImportMap))
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	for path, f := range cfg.PackageFile {
		if _, ok := exports[path]; !ok {
			exports[path] = f
		}
	}
	imp := load.ExportImporter(fset, exports)
	importPath := load.TrimTestVariant(cfg.ImportPath)
	pkg, err := load.Check(fset, importPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err))
	}
	diags, err := detlint.RunPackage(pkg, detlint.Analyzers())
	if err != nil {
		fatal(err)
	}
	writeVetx()
	if *jsonFlag {
		// go vet -json: one object per package keyed by analyzer.
		byAnalyzer := make(map[string][]map[string]string)
		for _, d := range diags {
			byAnalyzer[d.Category] = append(byAnalyzer[d.Category], map[string]string{
				"posn": d.Position, "message": d.Message,
			})
		}
		out := map[string]map[string][]map[string]string{cfg.ID: byAnalyzer}
		data, _ := json.MarshalIndent(out, "", "\t")
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
	os.Exit(1)
}
