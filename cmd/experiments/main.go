// Command experiments regenerates every measured artifact of the paper's
// evaluation section: Table III (hardware-task-management overheads vs.
// number of guest OSes), Figure 9 (degradation ratios), and the §V-B
// footprint scalars.
//
// Usage:
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -table3    # just the table
//	go run ./cmd/experiments -fig9     # just the figure (implies -table3)
//	go run ./cmd/experiments -footprint # just the scalars
//	go run ./cmd/experiments -dualcore  # dual-core offload comparison
//	go run ./cmd/experiments -reconfig  # reconfiguration-pipeline sweep
//	go run ./cmd/experiments -bench     # simulator wall-clock benchmarks -> BENCH_sim.json
//	go run ./cmd/experiments -scenario  # multi-VM stress-scenario suite (parallel, checksummed)
//	go run ./cmd/experiments -scenario -shards 4  # same suite on the epoch-barrier parallel engine
//	go run ./cmd/experiments -faults    # just the fault-injection/QoS scenarios
//	go run ./cmd/experiments -faults -fault-seed 99  # same, replaying an alternate fault plan
//	go run ./cmd/experiments -interference  # noisy-neighbor p99 interference probe
//	go run ./cmd/experiments -snapshot  # checkpoint/fork clone sweep: boot-vs-fork cost, COW copy rate
//	go run ./cmd/experiments -iters 40 -guests 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	var (
		table3     = flag.Bool("table3", false, "reproduce Table III")
		fig9       = flag.Bool("fig9", false, "reproduce Figure 9 (runs Table III)")
		footprint  = flag.Bool("footprint", false, "report the Section V-B scalars")
		dualcore   = flag.Bool("dualcore", false, "compare the CPU0-only deployment with the dual-core partitioning")
		reconfig   = flag.Bool("reconfig", false, "run the reconfiguration-pipeline sweep (cache/queue/prefetch)")
		bench      = flag.Bool("bench", false, "run the simulator wall-clock benchmarks (batched vs scalar memory path)")
		benchOut   = flag.String("bench-out", "BENCH_sim.json", "where -bench writes its JSON report")
		benchShort = flag.Bool("bench-short", false, "reduced-horizon benchmark run (CI smoke)")
		scen       = flag.Bool("scenario", false, "run the multi-VM stress-scenario suite in parallel")
		scenName   = flag.String("scenario-name", "", "run a single named scenario instead of the whole suite")
		scenShort  = flag.Bool("scenario-short", false, "reduced-horizon scenario run (CI smoke)")
		scenOut    = flag.String("scenario-out", "", "also write the per-scenario checksum summary to this file")
		traceOn    = flag.Bool("trace", false, "enable kernel event tracing on the scenario runs (checksums are unchanged; implies -scenario)")
		traceOut   = flag.String("trace-out", "", "write each traced scenario's Chrome trace_event JSON here (load in chrome://tracing or Perfetto; with several scenarios the name gains a -<scenario> suffix; implies -trace)")
		faultsOnly = flag.Bool("faults", false, "restrict the scenario run to the fault-injection/QoS scenarios (implies -scenario)")
		faultSeed  = flag.Uint("fault-seed", 0, "override the fault-plan seed of the selected fault scenarios (0 = derive from each scenario's seed; implies -faults)")
		interfere  = flag.Bool("interference", false, "run the noisy-neighbor interference probe: critical-VM p99 under a greedy neighbor vs uncontended baseline")
		snapSweep  = flag.Bool("snapshot", false, "run the checkpoint/fork clone sweep: simulated boot-vs-fork cost and COW copy rate per fleet size")
		interOut   = flag.String("interference-out", "", "write the interference report here (implies -interference)")
		shards     = flag.Int("shards", 0, "run each scenario through the epoch-barrier parallel engine on this many host goroutines (0/1 = sequential reference loop)")
		cacheKB    = flag.Uint("cachekb", 0, "override the bitstream cache budget in KB (0 = default 1024)")
		guests     = flag.Int("guests", 4, "maximum number of guest VMs")
		iters      = flag.Int("iters", 24, "measured hardware-task requests per guest")
		warmup     = flag.Int("warmup", 4, "warm-up requests per guest before measuring")
		quantum    = flag.Float64("quantum", 33, "guest time slice in ms (paper: 33)")
		gap        = flag.Int("gap", 31, "T_hw request gap in guest ticks")
		seed       = flag.Uint("seed", 1, "task-selection seed")
	)
	flag.Parse()
	if *traceOut != "" {
		*traceOn = true
	}
	if *interOut != "" {
		*interfere = true
	}
	if *faultSeed != 0 {
		*faultsOnly = true
	}
	if *scenName != "" || *scenOut != "" || *scenShort || *traceOn || *faultsOnly {
		*scen = true // the sub-flags imply the scenario run
	}
	all := !*table3 && !*fig9 && !*footprint && !*dualcore && !*reconfig && !*bench && !*scen && !*interfere && !*snapSweep

	if *interfere {
		fmt.Printf("running noisy-neighbor interference probe (short=%v)...\n", *scenShort)
		rep := scenario.RunInterference(*scenShort)
		fmt.Println(rep)
		if *interOut != "" {
			if err := os.WriteFile(*interOut, []byte(rep.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *interOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *interOut)
		}
		if !rep.Bounded() {
			fmt.Fprintln(os.Stderr, "interference bound violated")
			os.Exit(1)
		}
	}

	if *snapSweep {
		fmt.Printf("running checkpoint/fork clone sweep (short=%v)...\n", *scenShort)
		fmt.Printf("%-18s %7s %12s %12s %10s %11s %9s\n",
			"scenario", "clones", "boot_ms", "fork_ms", "fork/boot", "copy_rate", "pool_hit")
		for _, sf := range scenario.MeasureSnapshotForks(*scenShort) {
			fmt.Printf("%-18s %7d %12.3f %12.3f %9.2fx %10.1f%% %8.0f%%\n",
				sf.Name, sf.Clones, sf.ColdBootMs, sf.ForkMs, sf.ForkOverBoot,
				sf.CopyRate*100, sf.HitRatio*100)
		}
		fmt.Println()
	}

	if *scen {
		specs := scenario.Suite(*scenShort)
		if *scenName != "" {
			spec, ok := scenario.FindSpec(*scenName, *scenShort)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown scenario %q; known:\n", *scenName)
				for _, s := range specs {
					fmt.Fprintf(os.Stderr, "  %-20s %s\n", s.Name, s.About)
				}
				os.Exit(1)
			}
			specs = []scenario.Spec{spec}
		}
		if *faultsOnly {
			kept := specs[:0]
			for _, s := range specs {
				if s.Faults.Enabled() || s.QoS.Enabled() {
					kept = append(kept, s)
				}
			}
			specs = kept
			if len(specs) == 0 {
				fmt.Fprintln(os.Stderr, "no fault/QoS scenarios selected")
				os.Exit(1)
			}
		}
		for i := range specs {
			specs[i].Shards = *shards
			specs[i].Trace = *traceOn
			if *faultSeed != 0 && specs[i].Faults.Enabled() {
				specs[i].Faults.Seed = uint32(*faultSeed)
			}
		}
		fmt.Printf("running %d stress scenarios in parallel (short=%v, shards=%d, trace=%v)...\n",
			len(specs), *scenShort, *shards, *traceOn)
		results := scenario.RunSuite(specs)
		table := scenario.SummaryTable(results)
		fmt.Println(table)
		if *scenOut != "" {
			if err := os.WriteFile(*scenOut, []byte(table), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *scenOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *scenOut)
		}
		if *traceOut != "" {
			for _, r := range results {
				if r.Trace == nil {
					continue
				}
				path := *traceOut
				if len(results) > 1 {
					ext := filepath.Ext(path)
					path = strings.TrimSuffix(path, ext) + "-" + r.Name + ext
				}
				raw, err := r.Trace.ChromeJSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "exporting %s trace: %v\n", r.Name, err)
					os.Exit(1)
				}
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s (%d events, %d dropped)\n", path, r.TraceEvents, r.TraceDrops)
			}
		}
	}

	if *bench {
		fmt.Printf("running simulator wall-clock benchmarks (short=%v)...\n", *benchShort)
		rep := experiments.RunSimBench(*benchShort)
		fmt.Println(rep)
		if err := rep.WriteJSON(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}

	cfg := experiments.DefaultConfig()
	cfg.Guests = *guests
	cfg.Iterations = *iters
	cfg.Warmup = *warmup
	cfg.QuantumMs = *quantum
	cfg.RequestGapTicks = uint32(*gap)
	cfg.Seed = uint32(*seed)

	if all || *footprint {
		root, _ := os.Getwd()
		fmt.Println(experiments.CollectFootprint(root))
	}
	if all || *reconfig {
		rcfg := experiments.DefaultReconfigConfig()
		rcfg.Seed = cfg.Seed
		rcfg.CacheBytes = uint32(*cacheKB) << 10
		fmt.Printf("running reconfiguration-pipeline sweep (%d guests, %d cores)...\n",
			rcfg.Guests, rcfg.Cores)
		rep := experiments.RunReconfigSweep(rcfg)
		fmt.Println(rep)
		rchecks := rep.Check()
		fmt.Printf("reconfig checks: %+v\n  all hold: %v\n\n", rchecks, rchecks.AllHold())
	}
	if all || *dualcore {
		dcfg := cfg
		dcfg.Guests = 2
		fmt.Printf("running dual-core offload comparison (2 guests, service on core 1)...\n")
		d := experiments.RunDualCore(dcfg)
		fmt.Println(d)
		dchecks := d.Check()
		fmt.Printf("dual-core checks: %+v\n  all hold: %v\n\n", dchecks, dchecks.AllHold())
	}
	if all || *table3 || *fig9 {
		fmt.Printf("running Table III sweep (native + 1..%d guests, %d requests each)...\n",
			cfg.Guests, cfg.Iterations*cfg.Guests)
		tab := experiments.RunTable3(cfg)
		fmt.Println(tab)
		checks := tab.Check()
		fmt.Printf("shape checks: %+v\n  all hold: %v\n\n", checks, checks.AllHold())
		if all || *fig9 {
			f := experiments.Figure9(tab)
			fmt.Println(f)
			fmt.Printf("plotted efficiency (t_native/t_virt): ")
			for _, e := range f.Efficiency() {
				fmt.Printf("%.3f ", e)
			}
			fmt.Printf("\nslope decreasing (saturating overhead): %v\n", f.SlopeDecreasing())
		}
	}
}
