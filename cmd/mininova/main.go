// Command mininova boots the full virtualized stack — Mini-NOVA on the
// simulated Zynq-7000, the Hardware Task Manager service, and N
// paravirtualized uC/OS-II guests driving FFT/QAM hardware tasks — runs
// it for a simulated interval, and prints the system's state: console
// output, scheduler/manager statistics and the latency probes.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/simclock"
)

func main() {
	var (
		guests = flag.Int("guests", 2, "number of uC/OS-II guest VMs")
		cores  = flag.Int("cores", 1, "simulated A9 cores (2 = dual-core Zynq, service on core 1)")
		ms     = flag.Float64("ms", 500, "simulated milliseconds to run")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Guests = *guests
	cfg.Cores = *cores
	cfg.Iterations = 1 << 30 // run on the clock, not a request budget
	cfg.Warmup = 0

	sys := experiments.BuildVirtSystem(cfg)
	defer sys.Kernel.Shutdown()
	fmt.Printf("booting Mini-NOVA with %d guests on %d core(s) of the simulated Zynq-7000...\n",
		*guests, len(sys.Kernel.Cores))
	sys.Kernel.RunFor(simclock.FromMillis(*ms))

	k := sys.Kernel
	fmt.Printf("\nsimulated time: %.1f ms, %d instructions retired\n",
		k.Clock.Now().Millis(), k.CPU.Stats().Instructions)
	fmt.Printf("hardware-task requests served: %d\n", sys.Requests())
	st := sys.Manager.Stats
	fmt.Printf("manager: hits=%d reconfigs=%d reclaims=%d busy=%d\n",
		st.Hits, st.Reconfigs, st.Reclaims, st.Busy)
	fmt.Printf("PCAP transfers: %d, hwMMU violations: %d\n",
		k.Fabric.PCAP.Transfers, k.Fabric.HwMMU.Violations.Load())
	for _, pd := range k.PDs {
		fmt.Printf("  pd %-10s cpu%d prio=%d switches=%-6d hypercalls=%-6d faults=%d\n",
			pd.Name_, pd.Core.ID, pd.Priority, pd.Switches, pd.Hypercalls, pd.Faults)
	}
	for _, c := range k.Cores {
		fmt.Printf("  cpu%d utilization %.1f%%\n", c.ID, c.Utilization(k.Clock.Now())*100)
	}
	fmt.Printf("reschedule SGIs sent: %d\n", k.GIC.Stats().SGIsSent)
	fmt.Println()
	for _, c := range k.Cores {
		// Private L1s and TLB per core; the L2 is shared, so its rate
		// repeats across rows.
		fmt.Printf("cpu%d caches: L1I miss %.4f, L1D miss %.4f, L2 miss %.4f, TLB miss %.4f\n",
			c.ID,
			c.CPU.Caches.L1I.Stats().MissRate(),
			c.CPU.Caches.L1D.Stats().MissRate(),
			c.CPU.Caches.L2.Stats().MissRate(),
			c.CPU.TLB.Stats().MissRate())
	}
	fmt.Printf("\nlatency probes:\n%s", k.Probes)
	if out := k.ConsoleString(); out != "" {
		fmt.Printf("\nguest console:\n%s\n", out)
	}
}
