// DPR sharing: the §IV-C scenario of Fig. 5 made concrete — two VMs
// compete for the same hardware task. The Hardware Task Manager hands the
// region back and forth: each handover demaps the loser's interface page,
// saves the register group into its data section with the "inconsistent"
// flag, and reloads the hwMMU for the new owner. The guests observe the
// flag through the reserved structure, exactly as the paper describes.
//
//	go run ./examples/dprsharing
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

func main() {
	// Dual-core: the contending VMs share core 0 while the Hardware Task
	// Manager arbitrates from core 1.
	k := nova.NewKernelSMP(2)
	k.Sched = sched.NewPartitioned(2, simclock.FromMillis(nova.DefaultQuantumMs))
	defer k.Shutdown()

	// One large PRR only: maximal contention for the shared task.
	caps := hwtask.PaperPRRCapacities()[:1]
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	for _, id := range hwtask.QAMTaskIDs {
		fabric.RegisterCore(id, apps.QAMCore{})
	}
	for _, id := range hwtask.FFTTaskIDs {
		fabric.RegisterCore(id, apps.FFTCore{})
	}
	k.AttachFabric(fabric)
	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		log.Fatal(err)
	}
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: hwtask.NewService(mgr, k), CodeBase: nova.GuestUserBase,
		CodeSize: 8 << 10, Affinity: sched.MaskOf(1), StartSuspended: true,
	})
	k.RegisterHwService(svcPD)

	runs := make([]int, 2)
	inconsistencies := make([]int, 2)
	for vm := 0; vm < 2; vm++ {
		vm := vm
		g := &ucos.Guest{
			GuestName: fmt.Sprintf("vm%d", vm),
			Setup: func(os *ucos.OS) {
				os.TaskCreate("worker", 10, func(t *ucos.Task) {
					t.OS.M.SetupDataSection(64 << 10)
					for {
						h, st := t.AcquireHw(hwtask.TaskQAM4)
						if h == nil {
							if st == hwtask.ReplyBusy {
								t.Delay(2)
								continue
							}
							return
						}
						// Use the task a few times; a reclaim by the peer
						// VM will flip the consistency flag under us.
						for i := 0; i < 3; i++ {
							if !h.Consistent(t) {
								inconsistencies[vm]++
								break
							}
							if h.Run(t, 0x1000, 0x5000, 32, 4, 100) {
								runs[vm]++
							}
							t.Delay(1)
						}
						t.Delay(3)
					}
				})
			},
		}
		k.CreatePD(nova.PDConfig{
			Name: g.GuestName, Priority: nova.PrioGuest, Guest: g,
			Affinity: sched.MaskOf(0),
		})
	}

	k.RunFor(simclock.FromMillis(600))

	fmt.Printf("600 simulated ms of two VMs sharing one PRR:\n")
	for vm := 0; vm < 2; vm++ {
		fmt.Printf("  vm%d: %d accelerator runs, %d consistency-flag trips\n",
			vm, runs[vm], inconsistencies[vm])
	}
	fmt.Printf("manager: hits=%d reclaims=%d reconfigs=%d busy=%d\n",
		mgr.Stats.Hits, mgr.Stats.Reclaims, mgr.Stats.Reconfigs, mgr.Stats.Busy)
	fmt.Printf("hwMMU violations (must be 0): %d\n", k.Fabric.HwMMU.Violations.Load())
	if runs[0] == 0 || runs[1] == 0 {
		fmt.Println("WARNING: a VM was starved of the shared task")
	}
}
