// Mixed criticality: the paper's core motivation — "simultaneously host
// real-time OS (RTOS) and high-level generic OS on a single unified
// platform". A hard-real-time control VM shares the CPU with a bulk
// compression VM; the kernel's priority scheduler and quantum carry-over
// keep the control loop's deadlines intact while the batch guest soaks
// up the remaining CPU.
//
//	go run ./examples/mixedcriticality
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/nova"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

func main() {
	// Static partitioning on the dual-core part: the hard-real-time
	// control VM owns core 1 outright while the batch guest soaks core 0
	// — the partitioned-hypervisor arrangement that removes scheduling
	// jitter from the control loop entirely.
	k := nova.NewKernelSMP(2)
	k.Sched = sched.NewPartitioned(2, simclock.FromMillis(nova.DefaultQuantumMs))
	defer k.Shutdown()

	// Control VM: 1 kHz loop, must observe its tick within a tolerance.
	var (
		loops        int
		deadlineMiss int
		worstJitter  simclock.Cycles
	)
	control := &ucos.Guest{
		GuestName: "rt-control",
		Setup: func(os *ucos.OS) {
			os.TaskCreate("pid-loop", 4, func(t *ucos.Task) {
				last := t.OS.M.Now()
				for {
					t.Delay(1) // 1 ms control period (virtual time)
					now := t.OS.M.Now()
					period := now - last
					last = now
					// Virtual time pauses while descheduled, so the guest-
					// visible period should stay near 1 ms.
					if period > simclock.FromMicros(1500) {
						deadlineMiss++
					}
					if period > worstJitter {
						worstJitter = period
					}
					t.Exec(900) // PID computation + actuator output
					loops++
				}
			})
		},
	}

	// Batch VM: ADPCM compression, as much as it can get.
	var w *apps.ADPCMWorkload
	batch := &ucos.Guest{
		GuestName: "batch-compress",
		Setup: func(os *ucos.OS) {
			os.TaskCreate("compress", 20, func(t *ucos.Task) {
				w = apps.NewADPCMWorkload(2, 7)
				for {
					w.Step(t.Ctx, 0x0012_0000)
					t.Exec(60)
				}
			})
		},
	}

	// The control VM keeps the higher PD priority (paper Fig. 3) and is
	// additionally pinned to its own core: no world switch ever lands in
	// its control period.
	k.CreatePD(nova.PDConfig{
		Name: control.GuestName, Priority: nova.PrioService, Guest: control,
		Affinity: sched.MaskOf(1),
	})
	k.CreatePD(nova.PDConfig{
		Name: batch.GuestName, Priority: nova.PrioGuest, Guest: batch,
		Affinity: sched.MaskOf(0),
	})

	k.RunFor(simclock.FromMillis(400))

	fmt.Printf("simulated 400 ms of mixed-criticality operation\n")
	fmt.Printf("control loop iterations: %d (expect ~395+)\n", loops)
	fmt.Printf("deadline misses (>1.5ms guest-visible period): %d\n", deadlineMiss)
	fmt.Printf("worst guest-visible period: %.3f ms\n", worstJitter.Millis())
	for _, c := range k.Cores {
		fmt.Printf("cpu%d utilization: %.2f%%\n", c.ID, c.Utilization(k.Clock.Now())*100)
	}
	fmt.Printf("batch blocks compressed meanwhile: %d\n", w.Blocks())
	fmt.Printf("world switches: %d\n", k.Probes.Get("vm_switch").Count)
}
