// Quickstart: boot Mini-NOVA with one paravirtualized uC/OS-II guest,
// acquire a QAM hardware task through the Hardware Task Manager, run it
// on the simulated FPGA fabric, and read the result back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

func main() {
	// 1. Boot the microkernel on both cores of the simulated Zynq-7000
	//    PS, statically partitioned: guest VMs own core 0, the Hardware
	//    Task Manager service owns core 1 (the paper's intended
	//    deployment on the dual-core part).
	k := nova.NewKernelSMP(2)
	k.Sched = sched.NewPartitioned(2, simclock.FromMillis(nova.DefaultQuantumMs))

	// 2. Build the PL: the paper's four reconfigurable regions with the
	//    FFT/QAM bitstream catalog and behavioural IP cores.
	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	for _, id := range hwtask.QAMTaskIDs {
		fabric.RegisterCore(id, apps.QAMCore{})
	}
	for _, id := range hwtask.FFTTaskIDs {
		fabric.RegisterCore(id, apps.FFTCore{})
	}
	k.AttachFabric(fabric)

	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		log.Fatal(err)
	}

	// 3. Start the Hardware Task Manager as a user-level service PD.
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: hwtask.NewService(mgr, k), CodeBase: nova.GuestUserBase,
		CodeSize: 8 << 10, Affinity: sched.MaskOf(1), StartSuspended: true,
	})
	k.RegisterHwService(svcPD)

	// 4. Create one uC/OS-II guest with a task that uses the accelerator.
	guest := &ucos.Guest{
		GuestName: "demo-vm",
		Setup: func(os *ucos.OS) {
			os.TaskCreate("qam-user", 10, func(t *ucos.Task) {
				t.Print("requesting QAM-16 accelerator\n")
				if _, ok := t.OS.M.SetupDataSection(64 << 10); !ok {
					t.Print("data section failed\n")
					return
				}
				h, status := t.AcquireHw(hwtask.TaskQAM16)
				if h == nil {
					t.Print(fmt.Sprintf("acquire failed: status %d\n", status))
					return
				}
				t.Print(fmt.Sprintf("granted PRR%d, IRQ %d\n", h.Grant.PRR, h.Grant.IRQ))
				if h.Run(t, 0x1000, 0x9000, 48, 16, 200) {
					t.Print("hardware task completed: 96 QAM-16 symbols produced\n")
				} else {
					t.Print("hardware task failed\n")
				}
			})
		},
	}
	k.CreatePD(nova.PDConfig{
		Name: guest.GuestName, Priority: nova.PrioGuest, Guest: guest,
		Affinity: sched.MaskOf(0),
	})

	// 5. Run 50 simulated milliseconds and show what happened.
	k.RunFor(simclock.FromMillis(50))
	defer k.Shutdown()

	fmt.Print(k.ConsoleString())
	fmt.Printf("\nsimulated %.1f ms; manager stats: %+v\n",
		k.Clock.Now().Millis(), mgr.Stats)
	for _, c := range k.Cores {
		fmt.Printf("cpu%d utilization: %.2f%%\n", c.ID, c.Utilization(k.Clock.Now())*100)
	}
	fmt.Printf("probes:\n%s", k.Probes)
}
