// SDR pipeline: the communication workload the paper's introduction
// motivates — a guest implements a software-defined-radio transmit chain
// where the compute-heavy stages (QAM constellation mapping and an FFT
// for OFDM modulation) run as DPR hardware tasks while framing runs in
// software on the virtualized uC/OS-II.
//
//	go run ./examples/sdr
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

func buildSystem() (*nova.Kernel, *hwtask.Manager) {
	// Dual-core deployment: the SDR guest owns core 0, the Hardware Task
	// Manager service owns core 1, so accelerator requests never evict
	// the pipeline from its core.
	k := nova.NewKernelSMP(2)
	k.Sched = sched.NewPartitioned(2, simclock.FromMillis(nova.DefaultQuantumMs))
	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	for _, id := range hwtask.QAMTaskIDs {
		fabric.RegisterCore(id, apps.QAMCore{})
	}
	for _, id := range hwtask.FFTTaskIDs {
		fabric.RegisterCore(id, apps.FFTCore{})
	}
	k.AttachFabric(fabric)
	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		log.Fatal(err)
	}
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: hwtask.NewService(mgr, k), CodeBase: nova.GuestUserBase,
		CodeSize: 8 << 10, Affinity: sched.MaskOf(1), StartSuspended: true,
	})
	k.RegisterHwService(svcPD)
	return k, mgr
}

func main() {
	k, mgr := buildSystem()
	defer k.Shutdown()

	framesDone := 0
	guest := &ucos.Guest{
		GuestName: "sdr-vm",
		Setup: func(os *ucos.OS) {
			// The pipeline stages communicate through a uC/OS-II queue:
			// the framer produces payloads, the modulator maps + OFDMs.
			payloadQ := os.QueueCreate(8)

			os.TaskCreate("framer", 12, func(t *ucos.Task) {
				for burst := uint32(1); ; burst++ {
					t.Exec(1200) // scramble + FEC-encode a 48-byte payload
					if !t.QueuePost(payloadQ, burst) {
						t.Delay(1)
					}
					t.Delay(2) // 2 ms frame cadence
				}
			})

			os.TaskCreate("modulator", 10, func(t *ucos.Task) {
				if _, ok := t.OS.M.SetupDataSection(128 << 10); !ok {
					t.Print("modulator: no data section\n")
					return
				}
				qam, st := t.AcquireHw(hwtask.TaskQAM16)
				if qam == nil {
					t.Print(fmt.Sprintf("modulator: QAM acquire failed (%d)\n", st))
					return
				}
				fft, st := t.AcquireHw(hwtask.TaskFFT256)
				if fft == nil {
					t.Print(fmt.Sprintf("modulator: FFT acquire failed (%d)\n", st))
					return
				}
				t.Print("modulator: QAM-16 + FFT-256 accelerators online\n")
				for {
					if _, ok := t.QueuePend(payloadQ, 50); !ok {
						continue
					}
					// Stage 1: map 48 payload bytes to 96 QAM-16 symbols.
					if !qam.Run(t, 0x1000, 0x3000, 48, 16, 100) {
						t.Print("modulator: QAM stage failed\n")
						continue
					}
					// Stage 2: 256-point IFFT-equivalent over the symbol
					// block (the core is direction-agnostic here).
					if !fft.Run(t, 0x3000, 0x5000, 256*4, 256, 100) {
						t.Print("modulator: FFT stage failed\n")
						continue
					}
					framesDone++
					t.Exec(400) // cyclic prefix + DMA descriptor setup
				}
			})
		},
	}
	k.CreatePD(nova.PDConfig{
		Name: guest.GuestName, Priority: nova.PrioGuest, Guest: guest,
		Affinity: sched.MaskOf(0),
	})

	k.RunFor(simclock.FromMillis(300))
	fmt.Print(k.ConsoleString())
	fmt.Printf("\nOFDM bursts modulated in 300 simulated ms: %d\n", framesDone)
	fmt.Printf("manager: %+v\n", mgr.Stats)
	fmt.Printf("PL IRQ injections delivered: %d\n",
		k.Probes.Get("plirq_entry").Count)
	for _, c := range k.Cores {
		fmt.Printf("cpu%d utilization: %.2f%%\n", c.ID, c.Utilization(k.Clock.Now())*100)
	}
}
