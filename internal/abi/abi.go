// Package abi is the single source of truth for the guest<->kernel
// binary interface: hypercall selector numbers, status codes, the
// hardware-task reply packing, and the data-section consistency flags.
// Both sides of the interface import it — the kernel (internal/nova)
// aliases these constants for its call sites, and the guest-side stubs
// (internal/ucos, internal/hwtask) issue calls with them directly — so
// the two halves of the ABI can never drift apart.
//
// Since the capability-space refactor a hypercall number is a *selector*
// into the calling protection domain's capability table: the kernel's
// dispatcher resolves it to a typed kernel object and invokes that
// object's portal handler. The numbers below are therefore the
// *conventional* selector layout the kernel installs at PD creation —
// every guest gets selectors 0..24 (the paper's 25 guest hypercalls,
// §V-B); the HcMgr* portal capabilities above them are delegated only to
// the Hardware Task Manager's domain, and IPC destinations are PD-object
// capabilities delegated at selectors of the grantor's choosing.
package abi

// Guest hypercall selectors. The paper: "A total number of 25 hypercalls
// are provided to paravirtualized operating systems" (§V-B).
const (
	HcNull          = 0  // no-op; measures bare hypercall latency
	HcPrint         = 1  // supervised console output
	HcVMID          = 2  // returns the caller's VM identifier (self PD object)
	HcYield         = 3  // give up the remainder of the time slice
	HcTimerSet      = 4  // program the virtual timer (periodic, cycles)
	HcTimerCancel   = 5  // stop the virtual timer
	HcIRQEnable     = 6  // enable a line in the caller's vGIC
	HcIRQDisable    = 7  // disable a line in the caller's vGIC
	HcIRQEOI        = 8  // acknowledge completion of an injected vIRQ
	HcCacheFlush    = 9  // clean+invalidate D-caches (guest cache op, §III-A)
	HcTLBFlush      = 10 // flush the caller's ASID from the TLB
	HcMapPage       = 11 // insert a mapping inside the caller's space
	HcUnmapPage     = 12 // remove a mapping inside the caller's space
	HcRegionCreate  = 13 // declare a hardware-task data section (memory-region object)
	HcDACRSwitch    = 14 // guest kernel<->guest user transition (Table II)
	HcHwTaskRequest = 15 // request a hardware task (§IV-E, three arguments)
	HcHwTaskRelease = 16 // release a held hardware task
	HcHwTaskStatus  = 17 // poll task/PCAP completion state
	HcPortalCall    = 18 // portal IPC: synchronous call through a PD capability
	HcPortalRecv    = 19 // portal IPC: receive (and optionally reply first)
	HcUARTWrite     = 20 // supervised UART access (§V-A shared I/O)
	HcUARTRead      = 21
	HcSDRead        = 22 // supervised SD block read
	HcSDWrite       = 23 // supervised SD block write (I/O-right gated)
	HcSuspend       = 24 // remove self from the run queue (services)

	// NumHypercalls is the guest-visible hypercall count (paper §V-B: 25).
	NumHypercalls = 25

	// Capability portals for the Hardware Task Manager service. The
	// selectors exist only in a domain they were delegated to; any other
	// PD invoking them resolves an empty slot (StatusBadSel).
	HcMgrNextRequest = 25 // fetch the next queued hardware-task request
	HcMgrMapIface    = 26 // map a PRR register page into a client VM
	HcMgrUnmapIface  = 27 // unmap it from the previous client
	HcMgrHwMMULoad   = 28 // load a client's data-section window
	HcMgrPCAPStart   = 29 // launch a PCAP reconfiguration
	HcMgrComplete    = 30 // post the reply for a finished request
	HcMgrAllocIRQ    = 31 // allocate a PL IRQ line and register it in the client's vGIC

	// NumPortalSelectors bounds the conventional service-portal selector
	// range (guest calls + manager portals). Object capabilities
	// (PD/semaphore/region/slot) are installed above it.
	NumPortalSelectors = 32
)

// HcPortalRecv mode bits (args[0]).
const (
	// RecvBlock blocks until a caller arrives (otherwise StatusNoMsg).
	RecvBlock = 1 << 0
	// RecvReply first replies args[1] to the last received caller, waking
	// it, then receives — the merged reply+wait of a portal server loop.
	RecvReply = 1 << 1
)

// Hypercall status codes returned in R0. Every failure mode has a
// distinct, documented code:
//
//	StatusOK        success
//	StatusReconfig  request accepted, PCAP transfer in flight (§IV-E)
//	StatusBusy      no idle PRR can host the task right now (§IV-E)
//	StatusNoMsg     portal receive: no caller queued
//	StatusInval     arguments out of range for a valid portal
//	StatusDenied    capability held but lacks the required rights
//	StatusBadSel    selector resolves no capability in the caller's space
//	                (unknown call number, empty slot, forged selector)
//	StatusRevoked   capability's object was revoked after delegation
//	StatusBadType   capability resolves an object of the wrong type
//	StatusThrottled the caller's admission token bucket is empty; retry
//	                after backing off (QoS guard, transient)
//	StatusFaulted   the request failed in hardware — reconfiguration
//	                exhausted its retries or every compatible PRR is
//	                quarantined (fault path, not load)
//	StatusRetry     the caller's circuit breaker is open (reconfiguration
//	                thrash); back off longer than for StatusThrottled
//	StatusErr       internal failure (missing device, bus error)
//
// The codes form a dense iota block ending at NumStatusCodes (StatusErr
// sits apart as all-ones) so diagnostics and tests can enumerate them;
// a new code added without a StatusName entry fails the exhaustiveness
// test in abi_test.go.
const (
	StatusOK = iota
	StatusReconfig
	StatusBusy
	StatusNoMsg
	StatusInval
	StatusDenied
	StatusBadSel
	StatusRevoked
	StatusBadType
	StatusThrottled
	StatusFaulted
	StatusRetry

	// NumStatusCodes bounds the dense status block above (StatusErr is
	// the out-of-band all-ones code).
	NumStatusCodes

	StatusErr = ^uint32(0)
)

// statusNames maps every dense status code to its symbolic name. Keep in
// lockstep with the const block: a missing entry renders as "" and fails
// TestStatusNameExhaustive.
var statusNames = [NumStatusCodes]string{
	StatusOK:        "ok",
	StatusReconfig:  "reconfig",
	StatusBusy:      "busy",
	StatusNoMsg:     "nomsg",
	StatusInval:     "inval",
	StatusDenied:    "denied",
	StatusBadSel:    "badsel",
	StatusRevoked:   "revoked",
	StatusBadType:   "badtype",
	StatusThrottled: "throttled",
	StatusFaulted:   "faulted",
	StatusRetry:     "retry",
}

// StatusName returns the symbolic name of a status code (diagnostics).
func StatusName(s uint32) string {
	if s == StatusErr {
		return "err"
	}
	if s < NumStatusCodes && statusNames[s] != "" {
		return statusNames[s]
	}
	return "unknown"
}

// Hardware-task reply packing (HcHwTaskRequest): the low byte is the
// status; byte 1 carries the granted PRR index + 1 (0 = none); byte 2
// carries the allocated GIC IRQ id. The client needs both to program the
// task and register its handler.

// MakeReply packs status, PRR and IRQ into one reply word.
func MakeReply(status uint32, prr, irq int) uint32 {
	return status | uint32(prr+1)<<8 | uint32(irq)<<16
}

// ReplyStatus extracts the status byte of a reply.
func ReplyStatus(reply uint32) uint32 { return reply & 0xFF }

// ReplyPRR extracts the granted PRR (-1 when none).
func ReplyPRR(reply uint32) int { return int(reply>>8&0xFF) - 1 }

// ReplyIRQ extracts the allocated GIC interrupt id (0 when none).
func ReplyIRQ(reply uint32) int { return int(reply >> 16 & 0xFF) }

// Data-section reserved-structure flags (§IV-C): the first word of a
// registered hardware-task data section.
const (
	// DataSectFlagOwned: the hardware task is consistently owned.
	DataSectFlagOwned = 1
	// DataSectFlagInconsistent: the task was reclaimed by another VM; the
	// saved register image follows.
	DataSectFlagInconsistent = 2
)
