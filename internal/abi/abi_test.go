package abi

import "testing"

func TestSelectorLayout(t *testing.T) {
	if NumHypercalls != 25 {
		t.Errorf("NumHypercalls = %d, paper §V-B says 25", NumHypercalls)
	}
	if HcSuspend != NumHypercalls-1 {
		t.Errorf("guest selectors must be dense 0..%d, HcSuspend = %d", NumHypercalls-1, HcSuspend)
	}
	if HcMgrNextRequest != NumHypercalls {
		t.Errorf("manager portals must start at %d, got %d", NumHypercalls, HcMgrNextRequest)
	}
	if HcMgrAllocIRQ >= NumPortalSelectors {
		t.Errorf("manager portal %d outside NumPortalSelectors %d", HcMgrAllocIRQ, NumPortalSelectors)
	}
}

func TestStatusCodesDistinct(t *testing.T) {
	codes := []uint32{
		StatusOK, StatusReconfig, StatusBusy, StatusNoMsg, StatusInval,
		StatusDenied, StatusBadSel, StatusRevoked, StatusBadType,
		StatusThrottled, StatusFaulted, StatusRetry, StatusErr,
	}
	seen := map[uint32]string{}
	for _, c := range codes {
		name := StatusName(c)
		if name == "unknown" {
			t.Errorf("status %d has no name", c)
		}
		if prev, dup := seen[c]; dup {
			t.Errorf("status code %d used by both %s and %s", c, prev, name)
		}
		seen[c] = name
	}
	if StatusName(12345) != "unknown" {
		t.Error("StatusName must report unknown codes")
	}
}

// TestStatusNameExhaustive enumerates the whole dense status block plus
// the out-of-band StatusErr: every constant must map to a real name, so
// adding a status code without extending statusNames fails here instead
// of rendering "unknown" in a diagnostic three layers up.
func TestStatusNameExhaustive(t *testing.T) {
	for s := uint32(0); s < NumStatusCodes; s++ {
		if name := StatusName(s); name == "unknown" || name == "" {
			t.Errorf("status code %d lacks a StatusName entry", s)
		}
	}
	if StatusName(StatusErr) != "err" {
		t.Errorf("StatusName(StatusErr) = %q, want err", StatusName(StatusErr))
	}
	if StatusName(NumStatusCodes) != "unknown" {
		t.Errorf("StatusName(NumStatusCodes) = %q, want unknown", StatusName(NumStatusCodes))
	}
	// The fault/QoS codes sit above the seed's dense block — existing
	// clients switch on exact values, so the old codes must not move.
	fixed := map[uint32]string{
		StatusOK: "ok", StatusReconfig: "reconfig", StatusBusy: "busy",
		StatusNoMsg: "nomsg", StatusInval: "inval", StatusDenied: "denied",
		StatusBadSel: "badsel", StatusRevoked: "revoked", StatusBadType: "badtype",
		StatusThrottled: "throttled", StatusFaulted: "faulted", StatusRetry: "retry",
	}
	for code, want := range fixed {
		if got := StatusName(code); got != want {
			t.Errorf("StatusName(%d) = %q, want %q", code, got, want)
		}
	}
	if StatusThrottled != 9 || StatusFaulted != 10 || StatusRetry != 11 {
		t.Errorf("fault/QoS codes moved: throttled=%d faulted=%d retry=%d, want 9/10/11",
			StatusThrottled, StatusFaulted, StatusRetry)
	}
}

func TestReplyPacking(t *testing.T) {
	cases := []struct {
		status uint32
		prr    int
		irq    int
	}{
		{StatusOK, 0, 91},
		{StatusReconfig, 3, 64},
		{StatusBusy, -1, 0},
	}
	for _, c := range cases {
		r := MakeReply(c.status, c.prr, c.irq)
		if got := ReplyStatus(r); got != c.status {
			t.Errorf("ReplyStatus(%#x) = %d, want %d", r, got, c.status)
		}
		if got := ReplyPRR(r); got != c.prr {
			t.Errorf("ReplyPRR(%#x) = %d, want %d", r, got, c.prr)
		}
		if got := ReplyIRQ(r); got != c.irq {
			t.Errorf("ReplyIRQ(%#x) = %d, want %d", r, got, c.irq)
		}
	}
}
