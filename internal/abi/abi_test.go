package abi

import "testing"

func TestSelectorLayout(t *testing.T) {
	if NumHypercalls != 25 {
		t.Errorf("NumHypercalls = %d, paper §V-B says 25", NumHypercalls)
	}
	if HcSuspend != NumHypercalls-1 {
		t.Errorf("guest selectors must be dense 0..%d, HcSuspend = %d", NumHypercalls-1, HcSuspend)
	}
	if HcMgrNextRequest != NumHypercalls {
		t.Errorf("manager portals must start at %d, got %d", NumHypercalls, HcMgrNextRequest)
	}
	if HcMgrAllocIRQ >= NumPortalSelectors {
		t.Errorf("manager portal %d outside NumPortalSelectors %d", HcMgrAllocIRQ, NumPortalSelectors)
	}
}

func TestStatusCodesDistinct(t *testing.T) {
	codes := []uint32{
		StatusOK, StatusReconfig, StatusBusy, StatusNoMsg, StatusInval,
		StatusDenied, StatusBadSel, StatusRevoked, StatusBadType, StatusErr,
	}
	seen := map[uint32]string{}
	for _, c := range codes {
		name := StatusName(c)
		if name == "unknown" {
			t.Errorf("status %d has no name", c)
		}
		if prev, dup := seen[c]; dup {
			t.Errorf("status code %d used by both %s and %s", c, prev, name)
		}
		seen[c] = name
	}
	if StatusName(12345) != "unknown" {
		t.Error("StatusName must report unknown codes")
	}
}

func TestReplyPacking(t *testing.T) {
	cases := []struct {
		status uint32
		prr    int
		irq    int
	}{
		{StatusOK, 0, 91},
		{StatusReconfig, 3, 64},
		{StatusBusy, -1, 0},
	}
	for _, c := range cases {
		r := MakeReply(c.status, c.prr, c.irq)
		if got := ReplyStatus(r); got != c.status {
			t.Errorf("ReplyStatus(%#x) = %d, want %d", r, got, c.status)
		}
		if got := ReplyPRR(r); got != c.prr {
			t.Errorf("ReplyPRR(%#x) = %d, want %d", r, got, c.prr)
		}
		if got := ReplyIRQ(r); got != c.irq {
			t.Errorf("ReplyIRQ(%#x) = %d, want %d", r, got, c.irq)
		}
	}
}
