// Package apps provides the signal-processing payloads of the paper's
// evaluation (§V-B): the software workloads the guest RTOSes execute (GSM
// speech encoding, ADPCM compression) and the behavioural models of the
// hardware IP cores hosted in the FPGA's reconfigurable regions (FFT and
// QAM modules).
//
// All algorithms are real implementations — codecs round-trip, the FFT
// satisfies Parseval — so the working-set traffic the workloads charge to
// the cache model corresponds to computation that actually happened.
package apps

// IMA ADPCM (DVI4) codec: 16-bit PCM <-> 4-bit codes. This is the ADPCM
// variant used in telephony workloads like the paper's "Adaptive
// differential pulse-code modulation (ADPCM) compression" guest task.

var imaStepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

var imaIndexTable = [16]int32{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

// ADPCMState carries the codec predictor across frames.
type ADPCMState struct {
	Predicted int32
	Index     int32
}

func clampIndex(i int32) int32 {
	if i < 0 {
		return 0
	}
	if i > 88 {
		return 88
	}
	return i
}

func clamp16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// EncodeADPCM compresses PCM samples to 4-bit codes (two per byte). The
// state advances so consecutive frames are continuous.
func EncodeADPCM(st *ADPCMState, pcm []int16) []byte {
	return AppendADPCM(st, pcm, make([]byte, 0, (len(pcm)+1)/2))
}

// AppendADPCM is the allocation-free form of EncodeADPCM: it appends the
// packed codes to dst and returns the extended slice, so a steady-state
// workload can reuse one scratch buffer across frames.
func AppendADPCM(st *ADPCMState, pcm []int16, dst []byte) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, (len(pcm)+1)/2)...)
	out := dst[base:]
	for i, s := range pcm {
		code := encodeSample(st, int32(s))
		if i%2 == 0 {
			out[i/2] = code
		} else {
			out[i/2] |= code << 4
		}
	}
	return dst
}

func encodeSample(st *ADPCMState, sample int32) byte {
	step := imaStepTable[st.Index]
	diff := sample - st.Predicted
	var code int32
	if diff < 0 {
		code = 8
		diff = -diff
	}
	// Quantize and reconstruct in one pass: d accumulates exactly
	// dequantize(code, step), term by term, as the code bits are decided.
	d := step >> 3
	if diff >= step {
		code |= 4
		diff -= step
		d += step
	}
	if diff >= step>>1 {
		code |= 2
		diff -= step >> 1
		d += step >> 1
	}
	if diff >= step>>2 {
		code |= 1
		d += step >> 2
	}
	if code&8 != 0 {
		d = -d
	}
	st.Predicted = clamp16(st.Predicted + d)
	st.Index = clampIndex(st.Index + imaIndexTable[code])
	return byte(code)
}

func dequantize(code, step int32) int32 {
	d := step >> 3
	if code&4 != 0 {
		d += step
	}
	if code&2 != 0 {
		d += step >> 1
	}
	if code&1 != 0 {
		d += step >> 2
	}
	if code&8 != 0 {
		return -d
	}
	return d
}

// DecodeADPCM expands 4-bit codes back to PCM. n is the sample count
// (the final nibble of the last byte is ignored when n is odd).
func DecodeADPCM(st *ADPCMState, codes []byte, n int) []int16 {
	out := make([]int16, 0, n)
	for i := 0; i < n; i++ {
		var code int32
		if i%2 == 0 {
			code = int32(codes[i/2] & 0xF)
		} else {
			code = int32(codes[i/2] >> 4)
		}
		step := imaStepTable[st.Index]
		st.Predicted = clamp16(st.Predicted + dequantize(code, step))
		st.Index = clampIndex(st.Index + imaIndexTable[code])
		out = append(out, int16(st.Predicted))
	}
	return out
}
