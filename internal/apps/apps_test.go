package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestADPCMRoundTripTracksSignal(t *testing.T) {
	pcm := SyntheticSpeech(4000, 7)
	var enc, dec ADPCMState
	codes := EncodeADPCM(&enc, pcm)
	if len(codes) != len(pcm)/2 {
		t.Fatalf("compressed size = %d, want %d (4:1)", len(codes), len(pcm)/2)
	}
	out := DecodeADPCM(&dec, codes, len(pcm))
	// ADPCM is lossy; after convergence the decoded signal must track the
	// original within a small fraction of full scale.
	var errSum, sigSum float64
	for i := 256; i < len(pcm); i++ {
		d := float64(pcm[i]) - float64(out[i])
		errSum += d * d
		sigSum += float64(pcm[i]) * float64(pcm[i])
	}
	if sigSum == 0 {
		t.Fatal("silent test signal")
	}
	snr := 10 * math.Log10(sigSum/errSum)
	if snr < 15 {
		t.Errorf("ADPCM SNR = %.1f dB, want > 15 dB", snr)
	}
}

func TestADPCMDeterministic(t *testing.T) {
	pcm := SyntheticSpeech(1000, 3)
	var s1, s2 ADPCMState
	a := EncodeADPCM(&s1, pcm)
	b := EncodeADPCM(&s2, pcm)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ADPCM encode not deterministic")
		}
	}
}

func TestGSMFrameShape(t *testing.T) {
	var st GSMState
	pcm := SyntheticSpeech(GSMFrameSamples*3, 11)
	f1 := EncodeGSMFrame(&st, pcm[:160])
	f2 := EncodeGSMFrame(&st, pcm[160:320])
	if len(f1) != GSMEncodedBytes || len(f2) != GSMEncodedBytes {
		t.Fatalf("frame sizes %d/%d, want %d", len(f1), len(f2), GSMEncodedBytes)
	}
	same := true
	for i := range f1 {
		if f1[i] != f2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct speech frames encoded identically")
	}
}

func TestGSMSilenceIsStable(t *testing.T) {
	var st GSMState
	silent := make([]int16, GSMFrameSamples)
	f := EncodeGSMFrame(&st, silent)
	if len(f) != GSMEncodedBytes {
		t.Fatal("bad frame size")
	}
}

func TestGSMPanicsOnBadFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short frame did not panic")
		}
	}()
	var st GSMState
	EncodeGSMFrame(&st, make([]int16, 100))
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a pure tone concentrates energy in one bin.
	n := 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*8*float64(i)/float64(n)), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mag := cmplxAbs(x[i])
		if i == 8 || i == n-8 {
			if mag < float64(n)/2*0.99 {
				t.Errorf("bin %d magnitude %.1f, want ~%d", i, mag, n/2)
			}
		} else if mag > 1e-6*float64(n) {
			t.Errorf("leakage in bin %d: %.3g", i, mag)
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{256, 1024, 8192} {
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-9 {
			t.Errorf("n=%d: Parseval violated: %.9f vs %.9f", n, timeEnergy, freqEnergy)
		}
	}
}

func TestFFTIFFTIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 512)
	orig := make([]complex128, 512)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplxAbs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("IFFT(FFT(x))[%d] = %v, want %v", i, x[i], orig[i])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 100)); err == nil {
		t.Error("length 100 accepted")
	}
	if err := FFT(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestQAMRoundTripAllOrders(t *testing.T) {
	for _, m := range []int{4, 16, 64} {
		bits := make([]byte, 48) // divisible by all symbol widths
		for i := range bits {
			bits[i] = byte(i*37 + m)
		}
		syms, consumed, err := QAMMap(bits, m)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(bits)*8 {
			t.Errorf("QAM-%d consumed %d bits of %d", m, consumed, len(bits)*8)
		}
		back, err := QAMDemap(syms, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if back[i] != bits[i] {
				t.Fatalf("QAM-%d round trip: byte %d = %#x, want %#x", m, i, back[i], bits[i])
			}
		}
	}
}

func TestQAMRejectsBadOrder(t *testing.T) {
	if _, _, err := QAMMap([]byte{1}, 32); err == nil {
		t.Error("QAM-32 accepted")
	}
}

// Property: QAM demap(map(x)) == x for random payloads and any order.
func TestPropertyQAMRoundTrip(t *testing.T) {
	f := func(payload []byte, sel uint8) bool {
		m := []int{4, 16, 64}[int(sel)%3]
		if len(payload) > 96 {
			payload = payload[:96]
		}
		// pad to a multiple of 3 bytes (24 bits) so all orders divide evenly
		for len(payload)%3 != 0 {
			payload = append(payload, 0)
		}
		syms, _, err := QAMMap(payload, m)
		if err != nil {
			return false
		}
		back, err := QAMDemap(syms, m)
		if err != nil {
			return false
		}
		for i := range payload {
			if back[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ADPCM round trip never diverges (decoded stays in int16 and
// the predictor state remains in range).
func TestPropertyADPCMStateInRange(t *testing.T) {
	f := func(samples []int16) bool {
		if len(samples) == 0 {
			return true
		}
		var enc, dec ADPCMState
		codes := EncodeADPCM(&enc, samples)
		DecodeADPCM(&dec, codes, len(samples))
		return enc.Index >= 0 && enc.Index <= 88 &&
			enc.Predicted >= -32768 && enc.Predicted <= 32767 &&
			dec.Index == enc.Index && dec.Predicted == enc.Predicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFFTButterflies(t *testing.T) {
	if got := FFTButterflies(8); got != 12 {
		t.Errorf("FFTButterflies(8) = %d, want 12", got)
	}
	if got := FFTButterflies(1024); got != 5120 {
		t.Errorf("FFTButterflies(1024) = %d, want 5120", got)
	}
}

func TestFFTCoreProcess(t *testing.T) {
	core := FFTCore{}
	// 256-point impulse: flat spectrum.
	in := make([]byte, 256*4)
	in[0] = 64 // real[0] = 64
	out, err := core.Process(in, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 256*4 {
		t.Fatalf("output %d bytes, want %d", len(out), 256*4)
	}
	if core.Latency(len(in), 256) == 0 {
		t.Error("zero latency")
	}
}

func TestFFTCoreRejectsShortInput(t *testing.T) {
	if _, err := (FFTCore{}).Process(make([]byte, 100), 256); err == nil {
		t.Error("short input accepted")
	}
}

func TestQAMCoreProcess(t *testing.T) {
	core := QAMCore{}
	in := []byte{0xFF, 0x00, 0xAA}
	out, err := core.Process(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 3 bytes = 24 bits; QAM-16 is 4 bits/symbol = 6 symbols × 4 bytes I/Q.
	if len(out) != 24 {
		t.Fatalf("output %d bytes, want 24", len(out))
	}
}

func TestSyntheticSpeechDeterministic(t *testing.T) {
	a := SyntheticSpeech(100, 5)
	b := SyntheticSpeech(100, 5)
	c := SyntheticSpeech(100, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical signals")
	}
}
