package apps

import (
	"encoding/binary"
	"fmt"

	"repro/internal/simclock"
)

// The IP cores run in the FPGA fabric at fabricMHz; latencies are
// converted to CPU cycles (660 MHz) for the shared clock.
const fabricMHz = 100

func fabricCycles(ops int) simclock.Cycles {
	return simclock.Cycles(ops * (660 / fabricMHz))
}

// FFTCore is the behavioural model of the FFT accelerator family
// (FFT-256 … FFT-8192). Input: interleaved int16 I/Q pairs; the PARAM
// register selects the transform size. Output: interleaved int16 I/Q.
type FFTCore struct{}

// Name implements pl.Accel.
func (FFTCore) Name() string { return "fft-core" }

// Latency implements pl.Accel: pipeline fill + one butterfly per fabric
// cycle, plus DMA streaming of input and output.
func (FFTCore) Latency(n int, param uint32) simclock.Cycles {
	points := int(param)
	if points == 0 {
		points = n / 4
	}
	return fabricCycles(200+FFTButterflies(points)) + simclock.Cycles(n/2)
}

// Process implements pl.Accel.
func (FFTCore) Process(input []byte, param uint32) ([]byte, error) {
	points := int(param)
	if points == 0 {
		points = len(input) / 4
	}
	if points == 0 || points&(points-1) != 0 {
		return nil, fmt.Errorf("apps: FFT core: %d points not a power of two", points)
	}
	if len(input) < points*4 {
		return nil, fmt.Errorf("apps: FFT core: input %d bytes < %d points * 4", len(input), points)
	}
	x := make([]complex128, points)
	for i := range x {
		re := int16(binary.LittleEndian.Uint16(input[i*4:]))
		im := int16(binary.LittleEndian.Uint16(input[i*4+2:]))
		x[i] = complex(float64(re), float64(im))
	}
	if err := FFT(x); err != nil {
		return nil, err
	}
	out := make([]byte, points*4)
	scale := 1.0 / float64(points) // block-floating output to stay in int16
	for i, v := range x {
		binary.LittleEndian.PutUint16(out[i*4:], uint16(int16(real(v)*scale)))
		binary.LittleEndian.PutUint16(out[i*4+2:], uint16(int16(imag(v)*scale)))
	}
	return out, nil
}

// QAMCore is the behavioural model of the QAM mapper accelerators
// (QAM-4/16/64). Input: packed bits; PARAM selects the order; output:
// interleaved int16 I/Q symbols.
type QAMCore struct{}

// Name implements pl.Accel.
func (QAMCore) Name() string { return "qam-core" }

// Latency implements pl.Accel: one symbol per fabric cycle + DMA.
func (QAMCore) Latency(n int, param uint32) simclock.Cycles {
	m := int(param)
	if m == 0 {
		m = 16
	}
	bitsPerSym := 2
	for v := m; v > 4; v >>= 2 {
		bitsPerSym += 2
	}
	symbols := n * 8 / bitsPerSym
	return fabricCycles(50+symbols) + simclock.Cycles(n)
}

// Process implements pl.Accel.
func (QAMCore) Process(input []byte, param uint32) ([]byte, error) {
	m := int(param)
	if m == 0 {
		m = 16
	}
	syms, _, err := QAMMap(input, m)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(syms)*4)
	for i, s := range syms {
		binary.LittleEndian.PutUint16(out[i*4:], uint16(s.I))
		binary.LittleEndian.PutUint16(out[i*4+2:], uint16(s.Q))
	}
	return out, nil
}
