package apps

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes an in-place radix-2 decimation-in-time FFT. len(x) must be
// a power of two. This is both the software fallback workload and the
// reference model for the FFT IP cores (FFT-256 … FFT-8192, paper §V-B).
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("apps: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wn := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				a := x[start+k]
				b := x[start+k+size/2] * w
				x[start+k] = a + b
				x[start+k+size/2] = a - b
				w *= wn
			}
		}
	}
	return nil
}

// IFFT computes the inverse transform (normalized by 1/N).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// FFTButterflies returns the butterfly count N/2·log2(N) — the work the
// IP-core latency model charges.
func FFTButterflies(n int) int {
	logn := 0
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	return n / 2 * logn
}
