package apps

// A GSM-style full-rate speech frame encoder modelled on the structure of
// GSM 06.10 RPE-LTP: preprocessing (offset compensation + pre-emphasis),
// autocorrelation, Schur recursion for reflection coefficients,
// log-area-ratio quantization, short-term residual filtering, and
// regular-pulse subsampling per subframe. It is a faithful *structural*
// reduction, not a bit-exact codec — what matters for the paper's workload
// is that each 160-sample frame performs the real mix of MAC-heavy loops
// and table lookups that "GSM encoding" implies.

// GSMFrameSamples is the canonical 20 ms frame at 8 kHz.
const GSMFrameSamples = 160

// GSMEncodedBytes is the output size per frame (close to 06.10's 33).
const GSMEncodedBytes = 36

// GSMState carries the inter-frame filter memories.
type GSMState struct {
	z1, l1 int32 // offset-compensation memory
	mp     int32 // pre-emphasis memory
	ltp    [120]int16
}

// EncodeGSMFrame consumes exactly GSMFrameSamples PCM samples and emits a
// GSMEncodedBytes packed frame.
func EncodeGSMFrame(st *GSMState, pcm []int16) []byte {
	return AppendGSMFrame(st, pcm, make([]byte, 0, GSMEncodedBytes))
}

// AppendGSMFrame is the allocation-free form of EncodeGSMFrame: it appends
// the packed frame to dst and returns the extended slice (the last
// GSMEncodedBytes of which are the frame), so a steady-state workload can
// reuse one scratch buffer across frames.
func AppendGSMFrame(st *GSMState, pcm []int16, dst []byte) []byte {
	if len(pcm) != GSMFrameSamples {
		panic("apps: GSM frame must be 160 samples")
	}
	var s [GSMFrameSamples]int32

	// 1. Offset compensation + pre-emphasis (GSM 06.10 §4.2.1/4.2.2).
	for i, x := range pcm {
		so := int32(x) << 3
		s1 := so - st.z1
		st.z1 = so
		l := s1 + (st.l1*32735+16384)>>15
		st.l1 = l
		s[i] = l - (st.mp*28180+16384)>>15
		st.mp = l
	}

	// 2. Autocorrelation (9 lags).
	var acf [9]int64
	for k := 0; k <= 8; k++ {
		var sum int64
		for i := k; i < GSMFrameSamples; i++ {
			sum += int64(s[i]) * int64(s[i-k])
		}
		acf[k] = sum
	}

	// 3. Schur recursion -> 8 reflection coefficients (Q15).
	var r [8]int32
	if acf[0] != 0 {
		var p, kk [9]int64
		for i := 0; i <= 8; i++ {
			p[i] = acf[i]
		}
		copy(kk[:], acf[:])
		for n := 0; n < 8; n++ {
			if p[0] == 0 {
				break
			}
			rc := -(p[n+1] << 15) / max64(p[0], 1)
			if rc > 32767 {
				rc = 32767
			}
			if rc < -32768 {
				rc = -32768
			}
			r[n] = int32(rc)
			for m := 8; m > n; m-- {
				p[m] = p[m] + (rc*kk[m])>>15
				kk[m] = kk[m] + (rc*p[m])>>15
			}
		}
	}

	// 4. LAR quantization (6 bits each).
	var lar [8]byte
	for i, rc := range r {
		a := rc >> 9 // coarse log-area approximation
		lar[i] = byte((a + 32) & 0x3F)
	}

	// 5. Short-term residual (filter through quantized coefficients).
	var d [GSMFrameSamples]int32
	var u [8]int32
	for i := 0; i < GSMFrameSamples; i++ {
		di := s[i]
		for j := 0; j < 8; j++ {
			tmp := u[j] + (r[j]*di)>>15
			di = di + (r[j]*u[j])>>15
			u[j] = tmp
		}
		d[i] = di
	}

	// 6. Per-subframe regular-pulse selection: grid offset with maximum
	// energy, then 3-bit quantized pulses (13 per 40-sample subframe).
	base0 := len(dst)
	out := dst
	for i := range lar {
		out = append(out, lar[i])
	}
	for sf := 0; sf < 4; sf++ {
		base := sf * 40
		bestM, bestE := 0, int64(-1)
		for m := 0; m < 3; m++ {
			var e int64
			for j := m; j < 40; j += 3 {
				v := int64(d[base+j])
				e += v * v
			}
			if e > bestE {
				bestE, bestM = e, m
			}
		}
		// Max amplitude of the selected grid for block scaling.
		var xmax int32
		for j := bestM; j < 40; j += 3 {
			a := d[base+j]
			if a < 0 {
				a = -a
			}
			if a > xmax {
				xmax = a
			}
		}
		shift := 0
		for v := xmax; v > 127; v >>= 1 {
			shift++
		}
		out = append(out, byte(bestM), byte(shift))
		packed := byte(0)
		nib := 0
		for j := bestM; j < 40; j += 3 {
			q := (d[base+j] >> uint(shift)) & 0xF
			if nib%2 == 0 {
				packed = byte(q)
			} else {
				packed |= byte(q) << 4
				out = append(out, packed)
			}
			nib++
		}
		if nib%2 == 1 {
			out = append(out, packed)
		}
	}
	// Update the long-term memory with the frame tail.
	for i := 0; i < 120; i++ {
		st.ltp[i] = int16(clamp16(d[i+40] >> 3))
	}
	for len(out)-base0 < GSMEncodedBytes {
		out = append(out, 0)
	}
	return out[:base0+GSMEncodedBytes]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SyntheticSpeech fills a buffer with a deterministic voiced-like signal
// (mixed harmonics + noise) for workload input.
func SyntheticSpeech(n int, seed uint32) []int16 {
	out := make([]int16, n)
	x := seed*2654435761 + 12345
	var phase1, phase2 uint32
	for i := range out {
		phase1 += 823  // ~100 Hz at 8 kHz in turns<<16
		phase2 += 3290 // ~400 Hz
		x = x*1664525 + 1013904223
		v := int32(sin16(phase1))*3 + int32(sin16(phase2))*2 + int32(int8(x>>24))*16
		out[i] = int16(clamp16(v / 4))
	}
	return out
}

// sin16 is a cheap 16-bit sine from a quarter-wave quadratic approximation
// (phase in 1/65536 turns).
func sin16(phase uint32) int16 {
	p := phase & 0xFFFF
	quadrant := p >> 14
	frac := int32(p & 0x3FFF)
	if quadrant&1 == 1 {
		frac = 0x4000 - frac
	}
	// y = frac scaled parabolically: ~sin on [0, pi/2]
	y := (frac * (0x8000 - frac/2)) >> 13
	if quadrant >= 2 {
		return int16(-y)
	}
	return int16(y)
}
