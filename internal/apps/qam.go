package apps

import "fmt"

// QAM mapping with Gray coding for constellation sizes 4, 16 and 64 — the
// paper's second IP-core family (QAM-4/16/64, §V-B). Symbols are (I, Q)
// pairs of int16 at unit spacing scaled by 4096.

// QAMSymbol is one constellation point.
type QAMSymbol struct {
	I, Q int16
}

const qamScale = 4096

// gray converts binary to Gray code.
func gray(v int) int { return v ^ v>>1 }

// grayInv inverts gray().
func grayInv(g int) int {
	v := 0
	for ; g != 0; g >>= 1 {
		v ^= g
	}
	return v
}

// qamSide returns the per-axis level count for order m (4 -> 2, 16 -> 4,
// 64 -> 8).
func qamSide(m int) (int, error) {
	switch m {
	case 4:
		return 2, nil
	case 16:
		return 4, nil
	case 64:
		return 8, nil
	}
	return 0, fmt.Errorf("apps: unsupported QAM order %d", m)
}

// axisLevel maps a Gray-coded index to a centered amplitude.
func axisLevel(idx, side int) int16 {
	return int16((2*idx - (side - 1)) * qamScale / (side - 1))
}

// QAMMap maps a bit stream (packed LSB-first) to symbols of order m.
// Returns the symbols and the number of bits consumed.
func QAMMap(bits []byte, m int) ([]QAMSymbol, int, error) {
	side, err := qamSide(m)
	if err != nil {
		return nil, 0, err
	}
	bitsPerAxis := 0
	for v := side; v > 1; v >>= 1 {
		bitsPerAxis++
	}
	bitsPerSym := 2 * bitsPerAxis
	total := len(bits) * 8 / bitsPerSym
	out := make([]QAMSymbol, total)
	bitAt := func(i int) int { return int(bits[i/8]>>(i%8)) & 1 }
	pos := 0
	for s := range out {
		iBits, qBits := 0, 0
		for b := 0; b < bitsPerAxis; b++ {
			iBits |= bitAt(pos) << b
			pos++
		}
		for b := 0; b < bitsPerAxis; b++ {
			qBits |= bitAt(pos) << b
			pos++
		}
		out[s] = QAMSymbol{
			I: axisLevel(gray(iBits), side),
			Q: axisLevel(gray(qBits), side),
		}
	}
	return out, pos, nil
}

// QAMDemap hard-decides symbols back to packed bits (inverse of QAMMap).
func QAMDemap(symbols []QAMSymbol, m int) ([]byte, error) {
	side, err := qamSide(m)
	if err != nil {
		return nil, err
	}
	bitsPerAxis := 0
	for v := side; v > 1; v >>= 1 {
		bitsPerAxis++
	}
	out := make([]byte, (len(symbols)*2*bitsPerAxis+7)/8)
	pos := 0
	setBit := func(i, v int) {
		if v != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	decide := func(a int16) int {
		// Nearest level index: invert axisLevel with round-to-nearest.
		num := int(a) * (side - 1)
		var r int
		if num >= 0 {
			r = (num + qamScale/2) / qamScale
		} else {
			r = -((-num + qamScale/2) / qamScale)
		}
		idx := (r + side - 1) / 2
		if idx < 0 {
			idx = 0
		}
		if idx >= side {
			idx = side - 1
		}
		return grayInv(idx)
	}
	for _, s := range symbols {
		iBits := decide(s.I)
		qBits := decide(s.Q)
		for b := 0; b < bitsPerAxis; b++ {
			setBit(pos, iBits>>b&1)
			pos++
		}
		for b := 0; b < bitsPerAxis; b++ {
			setBit(pos, qBits>>b&1)
			pos++
		}
	}
	return out, nil
}
