package apps

import "repro/internal/cpu"

// Workload is a resumable guest computation: each Step processes one unit
// (a speech frame, a compression block, ...) charging its instruction and
// memory traffic to the machine through ctx, with the real algorithm run
// on the side so the output is verifiable. Workloads are what the guest
// uC/OS-II tasks execute between hardware-task requests (§V-B: "Each VM
// is assigned with a virtualized uC/OS-II, which is executing heavy
// workload tasks, for example, GSM encoding, or ADPCM compression").
type Workload interface {
	Name() string
	// Step runs one work unit against ctx; bufVA is the VA of the
	// workload's working buffer inside the guest.
	Step(ctx *cpu.ExecContext, bufVA uint32)
	// Output returns a digest of processed bytes (tests verify progress).
	Output() uint64
}

// NewWorkloadByName builds a workload from a spec string — the factory
// declarative harnesses use to wire guest computations from
// configuration. Known names: "gsm", "adpcm", "memhog". ok is false for
// anything else (including ""), so callers can treat absence as "no
// workload".
func NewWorkloadByName(name string, seed uint32) (Workload, bool) {
	switch name {
	case "gsm":
		return NewGSMWorkload(1, seed), true
	case "adpcm":
		return NewADPCMWorkload(1, seed), true
	case "memhog":
		return NewMemoryHogWorkload(256 << 10), true
	}
	return nil, false
}

// GSMWorkload encodes synthetic speech frame by frame.
type GSMWorkload struct {
	st     GSMState
	input  []int16
	pos    int
	frames uint64
	digest uint64
	enc    []byte // scratch: one encoded frame, reused across Steps

	// Span is the charged working-set size: the input stream advances
	// circularly through [bufVA, bufVA+Span), so a running workload
	// genuinely churns the cache hierarchy (default 64 KB of live
	// buffering, a realistic footprint for a codec pipeline's buffers).
	Span uint32
}

// NewGSMWorkload prepares n samples of synthetic speech.
func NewGSMWorkload(seconds int, seed uint32) *GSMWorkload {
	return &GSMWorkload{input: SyntheticSpeech(seconds*8000, seed), Span: 64 << 10}
}

// Name implements Workload.
func (w *GSMWorkload) Name() string { return "gsm-encode" }

// Step implements Workload: one 160-sample frame. The charged traffic
// mirrors the algorithm: streaming reads of the frame, MAC-heavy loops
// (autocorrelation ~9×160, Schur 8², filtering 8×160), table writes.
func (w *GSMWorkload) Step(ctx *cpu.ExecContext, bufVA uint32) {
	if w.pos+GSMFrameSamples > len(w.input) {
		w.pos = 0
	}
	frame := w.input[w.pos : w.pos+GSMFrameSamples]
	w.pos += GSMFrameSamples

	w.enc = AppendGSMFrame(&w.st, frame, w.enc[:0])
	for _, b := range w.enc {
		w.digest = w.digest*131 + uint64(b)
	}
	w.frames++

	// Charge: read the frame (int16 stream) at its position in the
	// circular input buffer, ~5.5k instructions of MACs, write the
	// encoded frame to the moving output cursor. The charged cursor runs
	// on the frame counter so it sweeps the whole Span even though the
	// synthetic source signal is shorter.
	inOff := uint32(w.frames*GSMFrameSamples*2) % w.Span
	ctx.StreamRange(bufVA+inOff, GSMFrameSamples*2, 8, false)
	ctx.Exec(1600) // preprocess + autocorrelation
	ctx.Exec(900)  // Schur + LAR
	ctx.Exec(2200) // short-term filtering
	ctx.Exec(800)  // RPE selection + packing
	outOff := uint32(w.frames*GSMEncodedBytes) % (w.Span / 4)
	ctx.StreamRange(bufVA+w.Span+outOff, GSMEncodedBytes, 8, true)
}

// Output implements Workload.
func (w *GSMWorkload) Output() uint64 { return w.digest }

// Frames returns the number of encoded frames.
func (w *GSMWorkload) Frames() uint64 { return w.frames }

// ADPCMWorkload compresses synthetic audio in 1 KB blocks.
type ADPCMWorkload struct {
	st     ADPCMState
	input  []int16
	pos    int
	blocks uint64
	digest uint64
	enc    []byte // scratch: one encoded block, reused across Steps

	// Span is the charged circular working-set size (default 64 KB).
	Span uint32
}

// ADPCMBlockSamples is the per-step block size.
const ADPCMBlockSamples = 512

// NewADPCMWorkload prepares n seconds of synthetic audio.
func NewADPCMWorkload(seconds int, seed uint32) *ADPCMWorkload {
	return &ADPCMWorkload{input: SyntheticSpeech(seconds*8000, seed^0xA5A5), Span: 64 << 10}
}

// Name implements Workload.
func (w *ADPCMWorkload) Name() string { return "adpcm-compress" }

// Step implements Workload: one 512-sample block.
func (w *ADPCMWorkload) Step(ctx *cpu.ExecContext, bufVA uint32) {
	if w.pos+ADPCMBlockSamples > len(w.input) {
		w.pos = 0
	}
	block := w.input[w.pos : w.pos+ADPCMBlockSamples]
	w.pos += ADPCMBlockSamples

	w.enc = AppendADPCM(&w.st, block, w.enc[:0])
	for _, b := range w.enc {
		w.digest = w.digest*131 + uint64(b)
	}
	w.blocks++

	// ~8 instructions per sample + table lookups; stream in PCM at the
	// moving input cursor, out codes at the moving output cursor.
	inOff := uint32(w.blocks*ADPCMBlockSamples*2) % w.Span
	ctx.StreamRange(bufVA+inOff, ADPCMBlockSamples*2, 8, false)
	ctx.Exec(ADPCMBlockSamples * 8)
	outOff := uint32(w.blocks*ADPCMBlockSamples/2) % (w.Span / 4)
	ctx.StreamRange(bufVA+w.Span+outOff, ADPCMBlockSamples/2, 8, true)
}

// Output implements Workload.
func (w *ADPCMWorkload) Output() uint64 { return w.digest }

// Blocks returns processed block count.
func (w *ADPCMWorkload) Blocks() uint64 { return w.blocks }

// MemoryHogWorkload streams a large buffer to pressure the cache
// hierarchy — used by ablation benches to emulate cache-hostile guests.
type MemoryHogWorkload struct {
	size   uint32
	offset uint32
	passes uint64
}

// NewMemoryHogWorkload streams size bytes per pass.
func NewMemoryHogWorkload(size uint32) *MemoryHogWorkload {
	return &MemoryHogWorkload{size: size}
}

// Name implements Workload.
func (w *MemoryHogWorkload) Name() string { return "memory-hog" }

// Step implements Workload: one 8 KB pass per call, 64-byte stride.
func (w *MemoryHogWorkload) Step(ctx *cpu.ExecContext, bufVA uint32) {
	chunk := uint32(8 << 10)
	ctx.StreamRange(bufVA+w.offset, chunk, 64, w.passes%2 == 1)
	ctx.Exec(256)
	w.offset += chunk
	if w.offset >= w.size {
		w.offset = 0
		w.passes++
	}
}

// Output implements Workload.
func (w *MemoryHogWorkload) Output() uint64 { return w.passes }
