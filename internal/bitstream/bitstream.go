// Package bitstream defines the synthetic partial-bitstream (.bit) format
// used by the PCAP model and the Hardware Task Manager.
//
// The paper stores hardware-task configuration data "in memory as
// bitstream files (.bit)" (§IV-B) whose size determines the PCAP
// reconfiguration delay (§V-B, referencing the authors' earlier EWiLi'14
// paper for the size↔delay relation). Real Xilinx bitstreams are opaque
// and device-specific; this synthetic container preserves exactly the
// properties the system depends on: an identifying header, the FPGA
// resource footprint (which decides PRR compatibility), and a payload
// whose length drives reconfiguration latency.
package bitstream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic identifies a synthetic partial bitstream.
const Magic = 0xB175_CAFE

// HeaderSize is the encoded header length in bytes.
const HeaderSize = 28

// Resources is the FPGA footprint a task needs — the quantity that decides
// which PRRs can host it (paper §V-B: "only PRR1 and PRR2 are large enough
// to contain the FFT tasks").
type Resources struct {
	LUTs uint32
	BRAM uint32 // 36Kb block count
	DSP  uint32
}

// Fits reports whether a region with capacity c can host r.
func (r Resources) Fits(c Resources) bool {
	return r.LUTs <= c.LUTs && r.BRAM <= c.BRAM && r.DSP <= c.DSP
}

// Bitstream is a decoded synthetic .bit file.
type Bitstream struct {
	TaskID  uint16
	Variant uint16 // e.g. FFT point size index or QAM order index
	Needs   Resources
	Payload []byte // configuration frames; len drives PCAP latency
}

// Encode serializes the bitstream: header (magic, ids, resources, length,
// CRC of payload) followed by the payload.
func (b *Bitstream) Encode() []byte {
	out := make([]byte, HeaderSize+len(b.Payload))
	binary.LittleEndian.PutUint32(out[0:], Magic)
	binary.LittleEndian.PutUint16(out[4:], b.TaskID)
	binary.LittleEndian.PutUint16(out[6:], b.Variant)
	binary.LittleEndian.PutUint32(out[8:], b.Needs.LUTs)
	binary.LittleEndian.PutUint32(out[12:], b.Needs.BRAM)
	binary.LittleEndian.PutUint32(out[16:], b.Needs.DSP)
	binary.LittleEndian.PutUint32(out[20:], uint32(len(b.Payload)))
	binary.LittleEndian.PutUint32(out[24:], crc32.ChecksumIEEE(b.Payload))
	copy(out[HeaderSize:], b.Payload)
	return out
}

// Decode parses and validates an encoded bitstream.
func Decode(raw []byte) (*Bitstream, error) {
	if len(raw) < HeaderSize {
		return nil, fmt.Errorf("bitstream: %d bytes is shorter than the %d-byte header", len(raw), HeaderSize)
	}
	if m := binary.LittleEndian.Uint32(raw[0:]); m != Magic {
		return nil, fmt.Errorf("bitstream: bad magic %#x", m)
	}
	n := binary.LittleEndian.Uint32(raw[20:])
	if uint32(len(raw)-HeaderSize) < n {
		return nil, fmt.Errorf("bitstream: truncated payload (%d of %d bytes)", len(raw)-HeaderSize, n)
	}
	payload := raw[HeaderSize : HeaderSize+n]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(raw[24:]); got != want {
		return nil, fmt.Errorf("bitstream: payload CRC mismatch (%#x != %#x)", got, want)
	}
	return &Bitstream{
		TaskID:  binary.LittleEndian.Uint16(raw[4:]),
		Variant: binary.LittleEndian.Uint16(raw[6:]),
		Needs: Resources{
			LUTs: binary.LittleEndian.Uint32(raw[8:]),
			BRAM: binary.LittleEndian.Uint32(raw[12:]),
			DSP:  binary.LittleEndian.Uint32(raw[16:]),
		},
		Payload: payload,
	}, nil
}

// TotalLen is the encoded length in bytes.
func (b *Bitstream) TotalLen() int { return HeaderSize + len(b.Payload) }

// Synthesize builds a deterministic payload of n bytes for task/variant —
// a stand-in for configuration frames. The content is reproducible so
// tests can verify PCAP transfers bit-for-bit.
func Synthesize(taskID, variant uint16, needs Resources, n int) *Bitstream {
	p := make([]byte, n)
	seed := uint32(taskID)<<16 | uint32(variant)
	x := seed*2654435761 + 1
	for i := range p {
		x = x*1664525 + 1013904223
		p[i] = byte(x >> 24)
	}
	return &Bitstream{TaskID: taskID, Variant: variant, Needs: needs, Payload: p}
}
