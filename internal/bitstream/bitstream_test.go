package bitstream

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := Synthesize(3, 1, Resources{LUTs: 4000, BRAM: 8, DSP: 12}, 10_000)
	raw := b.Encode()
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.TaskID != 3 || got.Variant != 1 {
		t.Errorf("ids = %d/%d, want 3/1", got.TaskID, got.Variant)
	}
	if got.Needs != b.Needs {
		t.Errorf("resources = %+v, want %+v", got.Needs, b.Needs)
	}
	if !bytes.Equal(got.Payload, b.Payload) {
		t.Error("payload mismatch")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	raw := Synthesize(1, 0, Resources{}, 64).Encode()
	raw[0] ^= 0xFF
	if _, err := Decode(raw); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	raw := Synthesize(1, 0, Resources{}, 64).Encode()
	raw[HeaderSize+10] ^= 0x01
	if _, err := Decode(raw); err == nil {
		t.Error("corrupt payload passed CRC")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	raw := Synthesize(1, 0, Resources{}, 64).Encode()
	if _, err := Decode(raw[:HeaderSize+10]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := Decode(raw[:10]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestFits(t *testing.T) {
	prr := Resources{LUTs: 5000, BRAM: 10, DSP: 20}
	if !(Resources{LUTs: 5000, BRAM: 10, DSP: 20}).Fits(prr) {
		t.Error("exact fit rejected")
	}
	if (Resources{LUTs: 5001}).Fits(prr) {
		t.Error("oversized LUTs accepted")
	}
	if (Resources{BRAM: 11}).Fits(prr) {
		t.Error("oversized BRAM accepted")
	}
	if (Resources{DSP: 21}).Fits(prr) {
		t.Error("oversized DSP accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(7, 2, Resources{}, 1000)
	b := Synthesize(7, 2, Resources{}, 1000)
	if !bytes.Equal(a.Payload, b.Payload) {
		t.Error("same ids produced different payloads")
	}
	c := Synthesize(7, 3, Resources{}, 1000)
	if bytes.Equal(a.Payload, c.Payload) {
		t.Error("different variants produced identical payloads")
	}
}

// Boundary-size round trips: empty payload, single byte, and the maximum
// representable resource footprint must all survive Encode/Decode, while
// every truncation of the header must be rejected.
func TestEncodeDecodeBoundaries(t *testing.T) {
	maxRes := Resources{LUTs: ^uint32(0), BRAM: ^uint32(0), DSP: ^uint32(0)}
	cases := []struct {
		name    string
		taskID  uint16
		variant uint16
		needs   Resources
		payload int
	}{
		{"empty-payload", 1, 0, Resources{}, 0},
		{"one-byte", 2, 1, Resources{LUTs: 1}, 1},
		{"max-resources", 3, 2, maxRes, 64},
		{"max-ids", 0xFFFF, 0xFFFF, Resources{LUTs: 10}, 16},
		{"page-aligned", 4, 0, Resources{BRAM: 36}, 4096 - HeaderSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := Synthesize(tc.taskID, tc.variant, tc.needs, tc.payload)
			raw := b.Encode()
			if len(raw) != b.TotalLen() || len(raw) != HeaderSize+tc.payload {
				t.Fatalf("encoded length %d, want %d", len(raw), HeaderSize+tc.payload)
			}
			got, err := Decode(raw)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.TaskID != tc.taskID || got.Variant != tc.variant {
				t.Errorf("ids = %d/%d, want %d/%d", got.TaskID, got.Variant, tc.taskID, tc.variant)
			}
			if got.Needs != tc.needs {
				t.Errorf("resources = %+v, want %+v", got.Needs, tc.needs)
			}
			if !bytes.Equal(got.Payload, b.Payload) {
				t.Error("payload mismatch")
			}
		})
	}
}

func TestDecodeRejectsEveryTruncatedHeader(t *testing.T) {
	raw := Synthesize(1, 0, Resources{}, 0).Encode()
	for n := 0; n < HeaderSize; n++ {
		if _, err := Decode(raw[:n]); err == nil {
			t.Errorf("header truncated to %d bytes accepted", n)
		}
	}
	// Exactly the header with an empty payload is valid.
	if _, err := Decode(raw[:HeaderSize]); err != nil {
		t.Errorf("full header with empty payload rejected: %v", err)
	}
}

// Property: Decode(Encode(x)) == x for arbitrary ids/sizes.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(id, variant uint16, luts, bram, dsp uint32, size uint16) bool {
		b := Synthesize(id, variant, Resources{luts, bram, dsp}, int(size))
		got, err := Decode(b.Encode())
		return err == nil && got.TaskID == id && got.Variant == variant &&
			got.Needs == b.Needs && bytes.Equal(got.Payload, b.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
