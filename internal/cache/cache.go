// Package cache models the Cortex-A9 cache hierarchy of the paper's
// evaluation platform: 32 KB 4-way split L1 instruction and data caches and
// a 512 KB 8-way unified L2, all physically indexed and physically tagged
// (PIPT). Physical tagging is what lets Mini-NOVA switch VM address spaces
// without flushing caches (paper §III-C); this model preserves that
// property, which is essential for the Table III trend to emerge for the
// right reason.
//
// The model tracks tag state only — data lives in physmem — because the
// experiments need timing (hit/miss cycles) and pollution behaviour, not a
// second copy of memory.
package cache

import (
	"fmt"

	"repro/internal/physmem"
)

// LineSize is the cache line size in bytes (A9: 32-byte lines).
const LineSize = 32

// lineShift is log2(LineSize).
const lineShift = 5

// Stats counts cache events since the last reset.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Flushes    uint64
}

// Accesses is the total number of lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger is more recent
}

// Policy selects the replacement policy.
type Policy int

// Replacement policies. The Cortex-A9's L1 caches replace pseudo-randomly
// (TRM r4p1 §7.1) and the PL310 L2 defaults to a similar non-LRU scheme;
// pseudo-random replacement also produces the gradual miss-probability
// growth with occupancy that strict LRU hides behind a capacity cliff.
const (
	PolicyRandom Policy = iota
	PolicyLRU
)

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	name   string
	sets   []([]line)
	ways   int
	stamp  uint64
	rng    uint32
	policy Policy
	stats  Stats
}

// New builds a cache of sizeBytes with the given associativity and
// pseudo-random replacement (the A9 default). sizeBytes must be a
// multiple of ways*LineSize and the set count a power of two (true of
// every A9 configuration).
func New(name string, sizeBytes, ways int) *Cache {
	nlines := sizeBytes / LineSize
	nsets := nlines / ways
	if nsets*ways*LineSize != sizeBytes {
		panic(fmt.Sprintf("cache %s: size %d not divisible by %d ways * %d line", name, sizeBytes, ways, LineSize))
	}
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, nsets))
	}
	c := &Cache{name: name, ways: ways, sets: make([][]line, nsets), rng: 0x2545F491}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

// NewLRU builds a cache with strict LRU replacement (for ablations).
func NewLRU(name string, sizeBytes, ways int) *Cache {
	c := New(name, sizeBytes, ways)
	c.policy = PolicyLRU
	return c
}

// Name returns the cache's identifying name (e.g. "L1D").
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(pa physmem.Addr) (set int, tag uint32) {
	lineAddr := uint32(pa) >> lineShift
	set = int(lineAddr) & (len(c.sets) - 1)
	tag = lineAddr / uint32(len(c.sets))
	return
}

// Access looks up pa; on a miss it allocates the line, evicting LRU.
// It returns hit, and whether the eviction wrote back a dirty line (the
// caller charges writeback cost to the next level).
func (c *Cache) Access(pa physmem.Addr, write bool) (hit, writeback bool) {
	set, tag := c.index(pa)
	c.stamp++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.stamp
			if write {
				lines[i].dirty = true
			}
			c.stats.Hits++
			return true, false
		}
	}
	c.stats.Misses++
	// Choose a victim: invalid ways first, then by policy.
	victim := -1
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.policy == PolicyLRU {
			victim = 0
			for i := range lines {
				if lines[i].lru < lines[victim].lru {
					victim = i
				}
			}
		} else {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 17
			c.rng ^= c.rng << 5
			victim = int(c.rng) & (c.ways - 1)
		}
		c.stats.Evictions++
		if lines[victim].dirty {
			c.stats.Writebacks++
			writeback = true
		}
		lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
		return false, writeback
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return false, writeback
}

// Contains reports whether pa's line is resident (no LRU side effect).
func (c *Cache) Contains(pa physmem.Addr) bool {
	set, tag := c.index(pa)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (without writeback accounting: the A9's
// invalidate-all maintenance op; Mini-NOVA uses clean+invalidate only on
// explicit guest cache hypercalls).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
	c.stats.Flushes++
}

// CleanInvalidateAll writes back dirty lines and drops everything,
// returning the number of lines written back.
func (c *Cache) CleanInvalidateAll() int {
	wb := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				wb++
				c.stats.Writebacks++
			}
			c.sets[s][w] = line{}
		}
	}
	c.stats.Flushes++
	return wb
}

// InvalidateLine drops the line containing pa, returning whether it was
// dirty (caller decides on writeback cost).
func (c *Cache) InvalidateLine(pa physmem.Addr) (wasDirty bool) {
	set, tag := c.index(pa)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			wasDirty = l.dirty
			*l = line{}
			return
		}
	}
	return false
}

// ResidentLines counts valid lines (used by tests and the footprint report).
func (c *Cache) ResidentLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// Penalties of the hierarchy in core cycles. The L1 hit cost is folded into
// the 1-cycle issue cost charged by the CPU model; these are *additional*
// cycles on top.
const (
	PenaltyL2Hit  = 8  // L1 miss, L2 hit
	PenaltyDDR    = 60 // L2 miss, DDR fill
	PenaltyWB     = 6  // dirty eviction drain (amortized; write buffer)
	PenaltyLineWB = 10 // explicit clean of one dirty line
)

// Hierarchy bundles the A9's L1I, L1D and shared L2 and converts accesses
// into cycle costs.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// NewA9Hierarchy returns the paper's configuration: 32 KB 4-way L1 I and D,
// 512 KB 8-way L2.
func NewA9Hierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: New("L1I", 32<<10, 4),
		L1D: New("L1D", 32<<10, 4),
		L2:  New("L2", 512<<10, 8),
	}
}

// NewA9SharedL2 returns n per-core hierarchies with private 32 KB L1s over
// one shared 512 KB L2 — the Cortex-A9 MPCore memory system of the
// dual-core Zynq-7000: cross-core interference shows up as L2 contention
// while each core keeps its own L1 working set.
func NewA9SharedL2(n int) []*Hierarchy {
	l2 := New("L2", 512<<10, 8)
	hs := make([]*Hierarchy, n)
	for i := range hs {
		hs[i] = &Hierarchy{
			L1I: New("L1I", 32<<10, 4),
			L1D: New("L1D", 32<<10, 4),
			L2:  l2,
		}
	}
	return hs
}

// FetchCost runs an instruction fetch at pa through L1I/L2 and returns the
// additional cycle cost (0 on L1 hit).
func (h *Hierarchy) FetchCost(pa physmem.Addr) uint64 {
	return h.cost(h.L1I, pa, false)
}

// DataCost runs a data access at pa through L1D/L2 and returns the
// additional cycle cost.
func (h *Hierarchy) DataCost(pa physmem.Addr, write bool) uint64 {
	return h.cost(h.L1D, pa, write)
}

func (h *Hierarchy) cost(l1 *Cache, pa physmem.Addr, write bool) uint64 {
	hit, wb := l1.Access(pa, write)
	if hit {
		return 0
	}
	var cost uint64
	if wb {
		cost += PenaltyWB
		// the victim drains into L2; model as an L2 write touch
		h.L2.Access(pa, true)
	}
	l2hit, l2wb := h.L2.Access(pa, write)
	if l2hit {
		return cost + PenaltyL2Hit
	}
	if l2wb {
		cost += PenaltyWB
	}
	return cost + PenaltyL2Hit + PenaltyDDR
}

// WalkCost charges a hardware page-table walk access (bypasses L1, uses L2,
// as the A9 walker does when page tables are marked outer-cacheable).
func (h *Hierarchy) WalkCost(pa physmem.Addr) uint64 {
	hit, wb := h.L2.Access(pa, false)
	var cost uint64
	if wb {
		cost += PenaltyWB
	}
	if hit {
		return cost + PenaltyL2Hit
	}
	return cost + PenaltyL2Hit + PenaltyDDR
}
