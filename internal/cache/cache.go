// Package cache models the Cortex-A9 cache hierarchy of the paper's
// evaluation platform: 32 KB 4-way split L1 instruction and data caches and
// a 512 KB 8-way unified L2, all physically indexed and physically tagged
// (PIPT). Physical tagging is what lets Mini-NOVA switch VM address spaces
// without flushing caches (paper §III-C); this model preserves that
// property, which is essential for the Table III trend to emerge for the
// right reason.
//
// The model tracks tag state only — data lives in physmem — because the
// experiments need timing (hit/miss cycles) and pollution behaviour, not a
// second copy of memory.
package cache

import (
	"fmt"

	"repro/internal/physmem"
)

// LineSize is the cache line size in bytes (A9: 32-byte lines).
const LineSize = 32

// lineShift is log2(LineSize).
const lineShift = 5

// Stats counts cache events since the last reset.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Flushes    uint64
}

// Accesses is the total number of lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger is more recent
}

// Policy selects the replacement policy.
type Policy int

// Replacement policies. The Cortex-A9's L1 caches replace pseudo-randomly
// (TRM r4p1 §7.1) and the PL310 L2 defaults to a similar non-LRU scheme;
// pseudo-random replacement also produces the gradual miss-probability
// growth with occupancy that strict LRU hides behind a capacity cliff.
const (
	PolicyRandom Policy = iota
	PolicyLRU
)

// Cache is one set-associative, write-back, write-allocate cache level.
// Lines live in one contiguous backing array (set-major: set*ways+way) and
// are indexed by shift/mask arithmetic — no per-set slice headers on the
// per-access hot path.
type Cache struct {
	name     string
	lines    []line // nsets × ways, flat
	ways     int
	setMask  uint32 // nsets - 1
	setShift uint   // log2(nsets); tag = lineAddr >> setShift
	stamp    uint64
	rng      uint32
	policy   Policy
	stats    Stats
	epoch    uint64 // bumped on every fill/invalidate (residency mutation)
}

// New builds a cache of sizeBytes with the given associativity and
// pseudo-random replacement (the A9 default). sizeBytes must be a
// multiple of ways*LineSize and the set count a power of two (true of
// every A9 configuration).
func New(name string, sizeBytes, ways int) *Cache {
	nlines := sizeBytes / LineSize
	nsets := nlines / ways
	if nsets*ways*LineSize != sizeBytes {
		panic(fmt.Sprintf("cache %s: size %d not divisible by %d ways * %d line", name, sizeBytes, ways, LineSize))
	}
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, nsets))
	}
	shift := uint(0)
	for 1<<shift < nsets {
		shift++
	}
	return &Cache{
		name: name, ways: ways,
		lines: make([]line, nsets*ways), setMask: uint32(nsets - 1), setShift: shift,
		rng: 0x2545F491,
	}
}

// NewLRU builds a cache with strict LRU replacement (for ablations).
func NewLRU(name string, sizeBytes, ways int) *Cache {
	c := New(name, sizeBytes, ways)
	c.policy = PolicyLRU
	return c
}

// Name returns the cache's identifying name (e.g. "L1D").
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// set returns the flat slice of ways backing pa's set, plus the tag.
func (c *Cache) set(pa physmem.Addr) (ways []line, set, tag uint32) {
	lineAddr := uint32(pa) >> lineShift
	set = lineAddr & c.setMask
	tag = lineAddr >> c.setShift
	base := int(set) * c.ways
	return c.lines[base : base+c.ways], set, tag
}

// Victim describes the line displaced by a missing Access: its own
// line-aligned address (reconstructed from tag+set) and whether it was
// dirty. Valid is false when the miss filled an invalid way (no eviction).
type Victim struct {
	Addr  physmem.Addr
	Dirty bool
	Valid bool
}

// Access looks up pa; on a miss it allocates the line, evicting LRU.
// It returns hit, whether the eviction wrote back a dirty line (the
// caller charges writeback cost to the next level), and the victim line
// info so the next level can be charged at the victim's own address.
func (c *Cache) Access(pa physmem.Addr, write bool) (hit, writeback bool, victim Victim) {
	if c.probeHit(pa, write) {
		return true, false, Victim{}
	}
	writeback, victim = c.fill(pa, write)
	return false, writeback, victim
}

// fill handles the miss half of Access: allocate pa's line, evicting by
// policy, and report the displaced victim. The caller must have probed and
// missed (probeHit) with no intervening mutation.
func (c *Cache) fill(pa physmem.Addr, write bool) (writeback bool, victim Victim) {
	ws, set, tag := c.set(pa)
	// The lru stamps are consulted only under PolicyLRU; the pseudo-random
	// default picks victims from the rng stream, so skipping the stamp
	// maintenance there changes no simulated observable.
	if c.policy == PolicyLRU {
		c.stamp++
	}
	c.stats.Misses++
	c.epoch++ // the fill below changes which lines are resident
	// Choose a victim: invalid ways first, then by policy.
	way := -1
	for i := range ws {
		if !ws[i].valid {
			way = i
			break
		}
	}
	if way < 0 {
		if c.policy == PolicyLRU {
			way = 0
			for i := range ws {
				if ws[i].lru < ws[way].lru {
					way = i
				}
			}
		} else {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 17
			c.rng ^= c.rng << 5
			way = int(c.rng) & (c.ways - 1)
		}
		c.stats.Evictions++
		v := &ws[way]
		victim = Victim{
			Addr:  physmem.Addr((v.tag<<c.setShift | set) << lineShift),
			Dirty: v.dirty,
			Valid: true,
		}
		if v.dirty {
			c.stats.Writebacks++
			writeback = true
		}
	}
	ws[way] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return writeback, victim
}

// HitRun records n repeat accesses to pa's resident line in one step: the
// resulting line state (lru stamp, dirty bit) and stats are bit-identical
// to n consecutive Access calls that all hit. The batched memory path uses
// it to collapse same-line streaming accesses into one probe. If the line
// is unexpectedly absent it degrades to n real Access calls, preserving
// exact scalar semantics.
func (c *Cache) HitRun(pa physmem.Addr, write bool, n int) {
	if n <= 0 {
		return
	}
	ws, _, tag := c.set(pa)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if c.policy == PolicyLRU {
				c.stamp += uint64(n)
				ws[i].lru = c.stamp
			}
			if write {
				ws[i].dirty = true
			}
			c.stats.Hits += uint64(n)
			return
		}
	}
	for i := 0; i < n; i++ {
		c.Access(pa, write)
	}
}

// Contains reports whether pa's line is resident (no LRU side effect).
func (c *Cache) Contains(pa physmem.Addr) bool {
	ws, _, tag := c.set(pa)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (without writeback accounting: the A9's
// invalidate-all maintenance op; Mini-NOVA uses clean+invalidate only on
// explicit guest cache hypercalls).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.epoch++
	c.stats.Flushes++
}

// CleanInvalidateAll writes back dirty lines and drops everything,
// returning the number of lines written back.
func (c *Cache) CleanInvalidateAll() int {
	wb := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			wb++
			c.stats.Writebacks++
		}
		c.lines[i] = line{}
	}
	c.epoch++
	c.stats.Flushes++
	return wb
}

// InvalidateLine drops the line containing pa, returning whether it was
// dirty (caller decides on writeback cost).
func (c *Cache) InvalidateLine(pa physmem.Addr) (wasDirty bool) {
	ws, _, tag := c.set(pa)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			wasDirty = ws[i].dirty
			ws[i] = line{}
			c.epoch++
			return
		}
	}
	return false
}

// Epoch is a monotonic counter of residency mutations: it advances on
// every fill and every invalidation, and on nothing else. A caller that
// proved a set of lines resident at epoch E may treat them as still
// resident exactly while Epoch() == E.
func (c *Cache) Epoch() uint64 { return c.epoch }

// ReplacementPolicy reports the cache's victim-selection policy.
func (c *Cache) ReplacementPolicy() Policy { return c.policy }

// BulkHits records n guaranteed-hit read probes of resident lines without
// touching them. Under PolicyRandom a hitting read probe's only effect is
// the hit counter (no lru, no dirty change), so this is bit-identical to n
// scalar probes of lines the caller has proven resident (see Epoch). It
// must not be used on PolicyLRU caches, whose hits reorder the stamps.
func (c *Cache) BulkHits(n int) {
	if c.policy == PolicyLRU {
		panic("cache: BulkHits on an LRU cache would skip lru maintenance")
	}
	c.stats.Hits += uint64(n)
}

// ResidentLines counts valid lines (used by tests and the footprint report).
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Penalties of the hierarchy in core cycles. The L1 hit cost is folded into
// the 1-cycle issue cost charged by the CPU model; these are *additional*
// cycles on top.
const (
	PenaltyL2Hit  = 8  // L1 miss, L2 hit
	PenaltyDDR    = 60 // L2 miss, DDR fill
	PenaltyWB     = 6  // dirty eviction drain (amortized; write buffer)
	PenaltyLineWB = 10 // explicit clean of one dirty line
)

// Hierarchy bundles the A9's L1I, L1D and shared L2 and converts accesses
// into cycle costs.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// NewA9Hierarchy returns the paper's configuration: 32 KB 4-way L1 I and D,
// 512 KB 8-way L2.
func NewA9Hierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: New("L1I", 32<<10, 4),
		L1D: New("L1D", 32<<10, 4),
		L2:  New("L2", 512<<10, 8),
	}
}

// NewA9SharedL2 returns n per-core hierarchies with private 32 KB L1s over
// one shared 512 KB L2 — the Cortex-A9 MPCore memory system of the
// dual-core Zynq-7000: cross-core interference shows up as L2 contention
// while each core keeps its own L2 working set.
func NewA9SharedL2(n int) []*Hierarchy {
	l2 := New("L2", 512<<10, 8)
	hs := make([]*Hierarchy, n)
	for i := range hs {
		hs[i] = &Hierarchy{
			L1I: New("L1I", 32<<10, 4),
			L1D: New("L1D", 32<<10, 4),
			L2:  l2,
		}
	}
	return hs
}

// NewA9WayPartitionedL2 returns n per-core hierarchies whose 512 KB L2 is
// way-partitioned: core i owns 8/n ways of every set (the PL310's lockdown-
// by-master configuration). Each partition keeps the full 2048 sets, so the
// index function is unchanged and n may be 1, 2, 4 or 8. Because no line,
// stamp or replacement-rng state is shared, a core's L2 traffic depends
// only on its own access stream — the property the epoch-barrier parallel
// run loop needs to let cores advance on concurrent host goroutines while
// staying bit-deterministic.
func NewA9WayPartitionedL2(n int) []*Hierarchy {
	if n < 1 || 8%n != 0 {
		panic(fmt.Sprintf("cache: cannot split 8 L2 ways across %d cores", n))
	}
	hs := make([]*Hierarchy, n)
	for i := range hs {
		hs[i] = &Hierarchy{
			L1I: New("L1I", 32<<10, 4),
			L1D: New("L1D", 32<<10, 4),
			L2:  New("L2", 512<<10/n, 8/n),
		}
	}
	return hs
}

// probeHit is the lean L1-hit fast path: on a hit it performs exactly the
// bookkeeping Access would (stats, dirty, lru under PolicyLRU) and returns
// true; on a miss it touches nothing, so the caller's follow-up Access
// observes an unchanged set and does the single miss accounting itself.
func (c *Cache) probeHit(pa physmem.Addr, write bool) bool {
	lineAddr := uint32(pa) >> lineShift
	base := int(lineAddr&c.setMask) * c.ways
	tag := lineAddr >> c.setShift
	ws := c.lines[base : base+c.ways]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			if c.policy == PolicyLRU {
				c.stamp++
				ws[i].lru = c.stamp
			}
			if write {
				ws[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	return false
}

// FetchCost runs an instruction fetch at pa through L1I/L2 and returns the
// additional cycle cost (0 on L1 hit).
func (h *Hierarchy) FetchCost(pa physmem.Addr) uint64 {
	if h.L1I.probeHit(pa, false) {
		return 0
	}
	return h.cost(h.L1I, pa, false)
}

// DataCost runs a data access at pa through L1D/L2 and returns the
// additional cycle cost.
func (h *Hierarchy) DataCost(pa physmem.Addr, write bool) uint64 {
	if h.L1D.probeHit(pa, write) {
		return 0
	}
	return h.cost(h.L1D, pa, write)
}

// cost handles the L1-miss path; the caller has already probed l1 and
// missed, so the line is filled directly and the L2 traffic charged.
func (h *Hierarchy) cost(l1 *Cache, pa physmem.Addr, write bool) uint64 {
	wb, victim := l1.fill(pa, write)
	var cost uint64
	if wb {
		cost += PenaltyWB
		// The dirty victim drains into L2 at its *own* line address (it
		// rarely shares a line with the incoming pa that displaced it).
		h.L2.Access(victim.Addr, true)
	}
	l2hit, l2wb, _ := h.L2.Access(pa, write)
	if l2hit {
		return cost + PenaltyL2Hit
	}
	if l2wb {
		cost += PenaltyWB
	}
	return cost + PenaltyL2Hit + PenaltyDDR
}

// WalkCost charges a hardware page-table walk access (bypasses L1, uses L2,
// as the A9 walker does when page tables are marked outer-cacheable).
func (h *Hierarchy) WalkCost(pa physmem.Addr) uint64 {
	hit, wb, _ := h.L2.Access(pa, false)
	var cost uint64
	if wb {
		cost += PenaltyWB
	}
	if hit {
		return cost + PenaltyL2Hit
	}
	return cost + PenaltyL2Hit + PenaltyDDR
}
