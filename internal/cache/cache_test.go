package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/physmem"
)

func TestMissThenHit(t *testing.T) {
	c := New("t", 32<<10, 4)
	pa := physmem.Addr(0x10_0000)
	if hit, _ := c.Access(pa, false); hit {
		t.Error("first access hit a cold cache")
	}
	if hit, _ := c.Access(pa, false); !hit {
		t.Error("second access missed")
	}
	if hit, _ := c.Access(pa+LineSize-1, false); !hit {
		t.Error("same-line access missed")
	}
	if hit, _ := c.Access(pa+LineSize, false); hit {
		t.Error("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU("t", 4*LineSize, 4) // one set, 4 ways
	setStride := physmem.Addr(LineSize)
	// Fill 4 ways: lines 0..3.
	for i := physmem.Addr(0); i < 4; i++ {
		c.Access(0x10_0000+i*setStride*1, false) // all map to set 0? no: consecutive lines map to different sets
	}
	// With one set, every line maps to set 0 regardless; stride is irrelevant.
	// Touch line 0 to make it MRU, then insert a 5th line: victim must be line 1.
	c.Access(0x10_0000, false)
	c.Access(0x20_0000, false) // new tag, evicts LRU
	if !c.Contains(0x10_0000) {
		t.Error("MRU line was evicted")
	}
	if c.Contains(0x10_0000 + setStride) {
		t.Error("LRU line survived eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("t", 2*LineSize, 2) // one set, 2 ways
	c.Access(0x10_0000, true)    // dirty
	c.Access(0x20_0000, false)
	_, wb := c.Access(0x30_0000, false) // evicts the dirty line
	if !wb {
		t.Error("evicting dirty line did not report writeback")
	}
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", st.Writebacks)
	}
}

func TestCleanInvalidateAll(t *testing.T) {
	c := New("t", 32<<10, 4)
	c.Access(0x10_0000, true)
	c.Access(0x10_0040, true)
	c.Access(0x10_0080, false)
	if wb := c.CleanInvalidateAll(); wb != 2 {
		t.Errorf("CleanInvalidateAll wrote back %d lines, want 2", wb)
	}
	if c.ResidentLines() != 0 {
		t.Error("lines resident after clean+invalidate")
	}
}

func TestInvalidateLine(t *testing.T) {
	c := New("t", 32<<10, 4)
	c.Access(0x10_0000, true)
	if dirty := c.InvalidateLine(0x10_0000); !dirty {
		t.Error("InvalidateLine lost dirtiness")
	}
	if c.Contains(0x10_0000) {
		t.Error("line survived InvalidateLine")
	}
	if dirty := c.InvalidateLine(0x10_0000); dirty {
		t.Error("second InvalidateLine reported dirty")
	}
}

func TestStatsConsistency(t *testing.T) {
	c := New("t", 1<<10, 2)
	addrs := []physmem.Addr{0, 32, 64, 0, 4096, 8192, 0, 32}
	for _, a := range addrs {
		c.Access(0x10_0000+a, a%64 == 0)
	}
	st := c.Stats()
	if st.Accesses() != uint64(len(addrs)) {
		t.Errorf("Accesses = %d, want %d", st.Accesses(), len(addrs))
	}
	if st.Evictions > st.Misses {
		t.Errorf("evictions %d > misses %d", st.Evictions, st.Misses)
	}
	if st.Writebacks > st.Evictions {
		t.Errorf("writebacks %d > evictions %d", st.Writebacks, st.Evictions)
	}
}

func TestHierarchyCosts(t *testing.T) {
	h := NewA9Hierarchy()
	h.L1D = NewLRU("L1D", 32<<10, 4) // deterministic eviction for this test
	pa := physmem.Addr(0x10_0000)
	// Cold: L1 miss + L2 miss.
	if got := h.DataCost(pa, false); got != PenaltyL2Hit+PenaltyDDR {
		t.Errorf("cold access cost = %d, want %d", got, PenaltyL2Hit+PenaltyDDR)
	}
	// Warm L1.
	if got := h.DataCost(pa, false); got != 0 {
		t.Errorf("L1 hit cost = %d, want 0", got)
	}
	// Evict from L1 only: touch enough lines in the same L1 set.
	// L1D 32KB 4-way => 256 sets; same-set stride = 256*32 = 8KB.
	for i := 1; i <= 4; i++ {
		h.DataCost(pa+physmem.Addr(i*8<<10), false)
	}
	// pa now out of L1 (LRU victim) but still in L2.
	if got := h.DataCost(pa, false); got != PenaltyL2Hit {
		t.Errorf("L2 hit cost = %d, want %d", got, PenaltyL2Hit)
	}
}

func TestHierarchySplitIAndD(t *testing.T) {
	h := NewA9Hierarchy()
	pa := physmem.Addr(0x20_0000)
	h.FetchCost(pa) // warms L1I and L2
	if got := h.DataCost(pa, false); got != PenaltyL2Hit {
		t.Errorf("data access after fetch cost = %d, want L2 hit %d (split L1)", got, PenaltyL2Hit)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{{100, 4}, {6 * LineSize, 2}} {
		func() {
			defer func() { recover() }()
			New("bad", tc.size, tc.ways)
			t.Errorf("New(%d,%d) did not panic", tc.size, tc.ways)
		}()
	}
}

// Property: hits+misses always equals accesses, and a Contains() right after
// Access() is always true.
func TestPropertyAccessInvariants(t *testing.T) {
	c := New("t", 8<<10, 4)
	var n uint64
	f := func(off uint16, write bool) bool {
		pa := physmem.Addr(0x10_0000 + uint32(off))
		c.Access(pa, write)
		n++
		st := c.Stats()
		return st.Accesses() == n && c.Contains(pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: resident lines never exceed capacity.
func TestPropertyCapacityBound(t *testing.T) {
	c := New("t", 2<<10, 2)
	capacity := 2 << 10 / LineSize
	f := func(offs []uint16) bool {
		for _, o := range offs {
			c.Access(physmem.Addr(0x10_0000+uint32(o)*8), o%3 == 0)
		}
		return c.ResidentLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
