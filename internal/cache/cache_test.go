package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/physmem"
)

func TestMissThenHit(t *testing.T) {
	c := New("t", 32<<10, 4)
	pa := physmem.Addr(0x10_0000)
	if hit, _, _ := c.Access(pa, false); hit {
		t.Error("first access hit a cold cache")
	}
	if hit, _, _ := c.Access(pa, false); !hit {
		t.Error("second access missed")
	}
	if hit, _, _ := c.Access(pa+LineSize-1, false); !hit {
		t.Error("same-line access missed")
	}
	if hit, _, _ := c.Access(pa+LineSize, false); hit {
		t.Error("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU("t", 4*LineSize, 4) // one set, 4 ways
	setStride := physmem.Addr(LineSize)
	// Fill 4 ways: lines 0..3.
	for i := physmem.Addr(0); i < 4; i++ {
		c.Access(0x10_0000+i*setStride*1, false) // all map to set 0? no: consecutive lines map to different sets
	}
	// With one set, every line maps to set 0 regardless; stride is irrelevant.
	// Touch line 0 to make it MRU, then insert a 5th line: victim must be line 1.
	c.Access(0x10_0000, false)
	c.Access(0x20_0000, false) // new tag, evicts LRU
	if !c.Contains(0x10_0000) {
		t.Error("MRU line was evicted")
	}
	if c.Contains(0x10_0000 + setStride) {
		t.Error("LRU line survived eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("t", 2*LineSize, 2) // one set, 2 ways
	c.Access(0x10_0000, true)    // dirty
	c.Access(0x20_0000, false)
	_, wb, victim := c.Access(0x30_0000, false) // evicts one of the two
	if !victim.Valid {
		t.Fatal("eviction from a full set did not report a victim")
	}
	if victim.Addr != 0x10_0000 && victim.Addr != 0x20_0000 {
		t.Errorf("victim addr = %#x, want one of the two resident lines", victim.Addr)
	}
	if wb != victim.Dirty || (victim.Addr == 0x10_0000) != victim.Dirty {
		t.Errorf("victim = %+v, wb = %v: dirtiness must match the evicted line", victim, wb)
	}
	st := c.Stats()
	if st.Writebacks != uint64(b2i(wb)) {
		t.Errorf("Writebacks = %d, want %d", st.Writebacks, b2i(wb))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// The victim's reported address must reconstruct exactly the line that was
// displaced, across many sets and tags.
func TestVictimAddressReconstruction(t *testing.T) {
	c := NewLRU("t", 4<<10, 2) // 64 sets, deterministic victims
	base := physmem.Addr(0x10_0000)
	conflict := physmem.Addr(2 << 10) // same set, different tag (64 sets * 32B)
	for i := 0; i < 10; i++ {
		pa := base + physmem.Addr(i)*LineSize
		c.Access(pa, true)
		c.Access(pa+conflict, false)
		_, wb, victim := c.Access(pa+2*conflict, false) // evicts LRU = pa
		if !victim.Valid || victim.Addr != pa || !victim.Dirty || !wb {
			t.Fatalf("victim = %+v wb=%v, want dirty line at %#x", victim, wb, pa)
		}
	}
}

// HitRun(n) must leave state and stats bit-identical to n hitting Accesses.
func TestHitRunEquivalence(t *testing.T) {
	a, b := New("a", 1<<10, 2), New("b", 1<<10, 2)
	pa := physmem.Addr(0x10_0040)
	a.Access(pa, false)
	b.Access(pa, false)
	// a: five scalar accesses, the fourth a write.
	for i := 0; i < 5; i++ {
		a.Access(pa, i == 3)
	}
	// b: the same five accesses with the repeat hits collapsed.
	b.Access(pa, false) // first of run probes for real
	b.HitRun(pa, false, 2)
	b.Access(pa, true)
	b.HitRun(pa, false, 1)
	a.Access(pa, false) // trailing access on both to expose stamp skew
	b.Access(pa, false)
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.stamp != b.stamp {
		t.Errorf("stamp diverged: %d vs %d", a.stamp, b.stamp)
	}
	al, _, atag := a.set(pa)
	bl, _, btag := b.set(pa)
	if atag != btag {
		t.Fatal("tag mismatch")
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Errorf("way %d diverged: %+v vs %+v", i, al[i], bl[i])
		}
	}
}

// HitRun on a non-resident line must degrade to real accesses (missing,
// allocating), never silently fabricate hits.
func TestHitRunNotResident(t *testing.T) {
	c := New("t", 1<<10, 2)
	c.HitRun(0x10_0000, false, 3)
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 miss then 2 hits", st)
	}
}

func TestCleanInvalidateAll(t *testing.T) {
	c := New("t", 32<<10, 4)
	c.Access(0x10_0000, true)
	c.Access(0x10_0040, true)
	c.Access(0x10_0080, false)
	if wb := c.CleanInvalidateAll(); wb != 2 {
		t.Errorf("CleanInvalidateAll wrote back %d lines, want 2", wb)
	}
	if c.ResidentLines() != 0 {
		t.Error("lines resident after clean+invalidate")
	}
}

func TestInvalidateLine(t *testing.T) {
	c := New("t", 32<<10, 4)
	c.Access(0x10_0000, true)
	if dirty := c.InvalidateLine(0x10_0000); !dirty {
		t.Error("InvalidateLine lost dirtiness")
	}
	if c.Contains(0x10_0000) {
		t.Error("line survived InvalidateLine")
	}
	if dirty := c.InvalidateLine(0x10_0000); dirty {
		t.Error("second InvalidateLine reported dirty")
	}
}

func TestStatsConsistency(t *testing.T) {
	c := New("t", 1<<10, 2)
	addrs := []physmem.Addr{0, 32, 64, 0, 4096, 8192, 0, 32}
	for _, a := range addrs {
		c.Access(0x10_0000+a, a%64 == 0)
	}
	st := c.Stats()
	if st.Accesses() != uint64(len(addrs)) {
		t.Errorf("Accesses = %d, want %d", st.Accesses(), len(addrs))
	}
	if st.Evictions > st.Misses {
		t.Errorf("evictions %d > misses %d", st.Evictions, st.Misses)
	}
	if st.Writebacks > st.Evictions {
		t.Errorf("writebacks %d > evictions %d", st.Writebacks, st.Evictions)
	}
}

func TestHierarchyCosts(t *testing.T) {
	h := NewA9Hierarchy()
	h.L1D = NewLRU("L1D", 32<<10, 4) // deterministic eviction for this test
	pa := physmem.Addr(0x10_0000)
	// Cold: L1 miss + L2 miss.
	if got := h.DataCost(pa, false); got != PenaltyL2Hit+PenaltyDDR {
		t.Errorf("cold access cost = %d, want %d", got, PenaltyL2Hit+PenaltyDDR)
	}
	// Warm L1.
	if got := h.DataCost(pa, false); got != 0 {
		t.Errorf("L1 hit cost = %d, want 0", got)
	}
	// Evict from L1 only: touch enough lines in the same L1 set.
	// L1D 32KB 4-way => 256 sets; same-set stride = 256*32 = 8KB.
	for i := 1; i <= 4; i++ {
		h.DataCost(pa+physmem.Addr(i*8<<10), false)
	}
	// pa now out of L1 (LRU victim) but still in L2.
	if got := h.DataCost(pa, false); got != PenaltyL2Hit {
		t.Errorf("L2 hit cost = %d, want %d", got, PenaltyL2Hit)
	}
}

// A dirty L1 victim must drain into L2 at the victim line's own address,
// not at the incoming access's address (regression test for the
// Hierarchy.cost modelling bug).
func TestDirtyVictimDrainsAtOwnAddress(t *testing.T) {
	h := &Hierarchy{
		L1I: New("i", 2*LineSize, 2),
		L1D: NewLRU("d", 2*LineSize, 2), // one set: deterministic victims
		L2:  New("l2", 8<<10, 4),
	}
	pa1, pa2, pa3 := physmem.Addr(0x10_0000), physmem.Addr(0x11_0000), physmem.Addr(0x12_0000)
	h.DataCost(pa1, false) // L1+L2 fill, both clean
	h.DataCost(pa1, true)  // L1 hit: dirty in L1 only
	h.DataCost(pa2, false)
	h.DataCost(pa3, false) // evicts pa1 (LRU): the dirty victim drains
	if dirty := h.L2.InvalidateLine(pa1); !dirty {
		t.Error("dirty L1 victim did not drain into L2 at its own address")
	}
	if dirty := h.L2.InvalidateLine(pa3); dirty {
		t.Error("incoming read line marked dirty in L2 (drain charged at the wrong address)")
	}
}

func TestHierarchySplitIAndD(t *testing.T) {
	h := NewA9Hierarchy()
	pa := physmem.Addr(0x20_0000)
	h.FetchCost(pa) // warms L1I and L2
	if got := h.DataCost(pa, false); got != PenaltyL2Hit {
		t.Errorf("data access after fetch cost = %d, want L2 hit %d (split L1)", got, PenaltyL2Hit)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{{100, 4}, {6 * LineSize, 2}} {
		func() {
			defer func() { recover() }()
			New("bad", tc.size, tc.ways)
			t.Errorf("New(%d,%d) did not panic", tc.size, tc.ways)
		}()
	}
}

// Property: hits+misses always equals accesses, and a Contains() right after
// Access() is always true.
func TestPropertyAccessInvariants(t *testing.T) {
	c := New("t", 8<<10, 4)
	var n uint64
	f := func(off uint16, write bool) bool {
		pa := physmem.Addr(0x10_0000 + uint32(off))
		c.Access(pa, write)
		n++
		st := c.Stats()
		return st.Accesses() == n && c.Contains(pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: resident lines never exceed capacity.
func TestPropertyCapacityBound(t *testing.T) {
	c := New("t", 2<<10, 2)
	capacity := 2 << 10 / LineSize
	f := func(offs []uint16) bool {
		for _, o := range offs {
			c.Access(physmem.Addr(0x10_0000+uint32(o)*8), o%3 == 0)
		}
		return c.ResidentLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
