// Package capspace implements the kernel's typed object spaces: the
// NOVA-style capability layer Mini-NOVA's protection domains are built
// on (paper §III-A: a PD is "a resource container and a capability
// interface between a virtual machine and the microkernel").
//
// Kernel objects are typed (protection domain, portal, semaphore,
// memory region, hardware-task slot) and global; what a PD holds is a
// *capability* — a slot in its per-PD table referencing an object with a
// rights mask (call / delegate / revoke). Every kernel request resolves
// a selector through the caller's table, so isolation is by
// construction: an object a domain was never delegated simply does not
// exist in its space, and a selector forged from another domain's layout
// resolves an empty slot.
//
// Revocation is by object generation: each capability records the
// object's generation at delegation time, and revoking the object bumps
// the generation, turning every outstanding capability stale in O(1)
// without walking the delegation tree.
//
// The package is deterministic by design — tables are selector-indexed
// slices, never maps — so the capability counters fold into the scenario
// engine's replay checksums.
package capspace

import "fmt"

// ObjType is the kernel object type tag.
type ObjType uint8

// Kernel object types.
const (
	ObjNone      ObjType = iota
	ObjPD                // a protection domain (IPC destination, manager client handle)
	ObjPortal            // a kernel service entry point (hypercall portal)
	ObjSem               // a semaphore (the hw-request queue's wait object)
	ObjMemRegion         // a physical memory region (data section, bitstream store)
	ObjHwSlot            // a hardware-task slot (one PRR of the fabric)
)

// String names the type for diagnostics and dumps.
func (t ObjType) String() string {
	switch t {
	case ObjPD:
		return "pd"
	case ObjPortal:
		return "portal"
	case ObjSem:
		return "sem"
	case ObjMemRegion:
		return "memregion"
	case ObjHwSlot:
		return "hwslot"
	}
	return "none"
}

// Rights is the per-capability rights mask.
type Rights uint8

// Rights bits.
const (
	// RightCall permits invoking the object (calling a portal, sending
	// to a PD, waiting on a semaphore, using a slot or region).
	RightCall Rights = 1 << iota
	// RightDelegate permits copying the capability into another space
	// (with equal or reduced rights).
	RightDelegate
	// RightRevoke permits revoking the referenced object, invalidating
	// every outstanding capability to it.
	RightRevoke
)

// RightsAll is the full mask (typically only the object's creator).
const RightsAll = RightCall | RightDelegate | RightRevoke

// String renders the mask as "cdr" flags.
func (r Rights) String() string {
	b := []byte("---")
	if r&RightCall != 0 {
		b[0] = 'c'
	}
	if r&RightDelegate != 0 {
		b[1] = 'd'
	}
	if r&RightRevoke != 0 {
		b[2] = 'r'
	}
	return string(b)
}

// Object is one typed kernel object. Objects are created by the kernel
// and shared; spaces hold capabilities referencing them.
type Object struct {
	Type ObjType
	Name string
	// Payload is the kernel-side state behind the object (a *nova.PD, a
	// portal descriptor, a region window...). The owner package asserts
	// the concrete type.
	Payload any

	gen uint32
}

// NewObject builds a kernel object.
func NewObject(t ObjType, name string, payload any) *Object {
	return &Object{Type: t, Name: name, Payload: payload}
}

// Gen returns the object's current generation.
func (o *Object) Gen() uint32 { return o.gen }

// revoke bumps the generation, invalidating every capability that was
// minted against the previous one. (Spaces revoke through RevokeObject,
// which checks RightRevoke on the revoker's own capability.)
func (o *Object) revoke() { o.gen++ }

// cap is one table slot.
type cap struct {
	obj    *Object
	rights Rights
	gen    uint32
}

// Err is the typed capability-resolution failure. The zero value is OK.
type Err uint8

// Resolution results.
const (
	OK         Err = iota
	ErrBadSel      // selector out of range or slot empty
	ErrRevoked     // object revoked since the capability was minted
	ErrBadType     // object held, but of the wrong type
	ErrDenied      // object held, but the capability lacks the rights
)

// Error implements error for kernel-internal plumbing.
func (e Err) Error() string {
	switch e {
	case OK:
		return "ok"
	case ErrBadSel:
		return "bad selector"
	case ErrRevoked:
		return "capability revoked"
	case ErrBadType:
		return "object type mismatch"
	case ErrDenied:
		return "insufficient rights"
	}
	return "unknown capability error"
}

// Stats counts a space's capability traffic. All counters are written
// from the simulation's single logical thread, so they are replay-
// deterministic and safe to fold into state checksums.
type Stats struct {
	Lookups     uint64 // resolution attempts
	Hits        uint64 // successful resolutions
	BadSel      uint64 // empty/out-of-range selectors (includes forgeries)
	Revoked     uint64 // stale-generation hits
	BadType     uint64 // type mismatches
	Denied      uint64 // rights failures
	Delegations uint64 // capabilities copied out of this space
	Revocations uint64 // objects revoked through this space
}

// Add accumulates other into s (kernel-wide aggregation).
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.BadSel += o.BadSel
	s.Revoked += o.Revoked
	s.BadType += o.BadType
	s.Denied += o.Denied
	s.Delegations += o.Delegations
	s.Revocations += o.Revocations
}

// Denials sums every failed resolution.
func (s *Stats) Denials() uint64 { return s.BadSel + s.Revoked + s.BadType + s.Denied }

// Space is one protection domain's capability table.
type Space struct {
	caps  []cap
	Stats Stats
}

// NewSpace builds a table with room for n selectors (it grows on
// demand; n only sizes the initial allocation).
func NewSpace(n int) *Space {
	if n < 0 {
		n = 0
	}
	return &Space{caps: make([]cap, n)}
}

// grow ensures selector sel is addressable.
func (s *Space) grow(sel int) {
	if sel < len(s.caps) {
		return
	}
	bigger := make([]cap, sel+1)
	copy(bigger, s.caps)
	s.caps = bigger
}

// Insert installs a capability to o with rights r at selector sel,
// replacing whatever the slot held. Kernel boot/delegation use only.
func (s *Space) Insert(sel int, o *Object, r Rights) {
	if sel < 0 {
		panic(fmt.Sprintf("capspace: negative selector %d", sel))
	}
	s.grow(sel)
	s.caps[sel] = cap{obj: o, rights: r, gen: o.gen}
}

// InsertFree installs a capability at the lowest empty selector at or
// above floor and returns the selector chosen.
func (s *Space) InsertFree(floor int, o *Object, r Rights) int {
	if floor < 0 {
		floor = 0
	}
	for sel := floor; sel < len(s.caps); sel++ {
		if s.caps[sel].obj == nil {
			s.caps[sel] = cap{obj: o, rights: r, gen: o.gen}
			return sel
		}
	}
	sel := len(s.caps)
	if sel < floor {
		sel = floor
	}
	s.Insert(sel, o, r)
	return sel
}

// Lookup resolves sel, requiring object type t (ObjNone accepts any)
// and every bit of rights r. Each failure mode is distinct and counted.
func (s *Space) Lookup(sel int, t ObjType, r Rights) (*Object, Err) {
	s.Stats.Lookups++
	if sel < 0 || sel >= len(s.caps) || s.caps[sel].obj == nil {
		s.Stats.BadSel++
		return nil, ErrBadSel
	}
	c := &s.caps[sel]
	if c.gen != c.obj.gen {
		s.Stats.Revoked++
		return nil, ErrRevoked
	}
	if t != ObjNone && c.obj.Type != t {
		s.Stats.BadType++
		return nil, ErrBadType
	}
	if c.rights&r != r {
		s.Stats.Denied++
		return nil, ErrDenied
	}
	s.Stats.Hits++
	return c.obj, OK
}

// Delegate copies the capability at sel into dst at exactly dstSel,
// masking the copy's rights with keep. It requires RightDelegate on the
// source capability and never widens: the delegated rights are
// source ∩ keep. Returns the destination selector.
func (s *Space) Delegate(sel int, dst *Space, dstSel int, keep Rights) (int, Err) {
	obj, err := s.Lookup(sel, ObjNone, RightDelegate)
	if err != OK {
		return -1, err
	}
	dst.Insert(dstSel, obj, s.caps[sel].rights&keep)
	s.Stats.Delegations++
	return dstSel, OK
}

// DelegateFree is Delegate into the lowest empty selector of dst at or
// above floor (for grants with no conventional slot, e.g. IPC peers).
func (s *Space) DelegateFree(sel int, dst *Space, floor int, keep Rights) (int, Err) {
	obj, err := s.Lookup(sel, ObjNone, RightDelegate)
	if err != OK {
		return -1, err
	}
	dstSel := dst.InsertFree(floor, obj, s.caps[sel].rights&keep)
	s.Stats.Delegations++
	return dstSel, OK
}

// Drop clears the slot at sel (a domain discarding its own capability;
// no rights required — you may always drop what you hold).
func (s *Space) Drop(sel int) Err {
	if sel < 0 || sel >= len(s.caps) || s.caps[sel].obj == nil {
		return ErrBadSel
	}
	s.caps[sel] = cap{}
	return OK
}

// RevokeObject revokes the object referenced at sel: the generation
// bump turns every outstanding capability to it — in every space —
// stale. Requires RightRevoke on the revoker's own capability. The
// revoker's slot is cleared; everyone else discovers the revocation on
// their next lookup (ErrRevoked).
func (s *Space) RevokeObject(sel int) Err {
	obj, err := s.Lookup(sel, ObjNone, RightRevoke)
	if err != OK {
		return err
	}
	obj.revoke()
	s.caps[sel] = cap{}
	s.Stats.Revocations++
	return OK
}

// Len returns the table's selector range (including empty slots).
func (s *Space) Len() int { return len(s.caps) }

// CapCount returns the number of live capabilities (empty and stale
// slots excluded) — the footprint number dumps report.
func (s *Space) CapCount() int {
	n := 0
	for i := range s.caps {
		if c := &s.caps[i]; c.obj != nil && c.gen == c.obj.gen {
			n++
		}
	}
	return n
}

// RightsAt reports the rights of the capability at sel (0 when the slot
// is empty or stale) — dump/diagnostic use.
func (s *Space) RightsAt(sel int) Rights {
	if sel < 0 || sel >= len(s.caps) || s.caps[sel].obj == nil {
		return 0
	}
	if s.caps[sel].gen != s.caps[sel].obj.gen {
		return 0
	}
	return s.caps[sel].rights
}
