package capspace

import "testing"

func TestLookupErrorPaths(t *testing.T) {
	portal := NewObject(ObjPortal, "svc", nil)
	sem := NewObject(ObjSem, "queue", nil)
	s := NewSpace(8)
	s.Insert(3, portal, RightCall)
	s.Insert(4, sem, 0) // held, no rights

	cases := []struct {
		name string
		sel  int
		typ  ObjType
		r    Rights
		want Err
	}{
		{"hit", 3, ObjPortal, RightCall, OK},
		{"hit-any-type", 3, ObjNone, RightCall, OK},
		{"empty-slot", 5, ObjPortal, RightCall, ErrBadSel},
		{"out-of-range", 99, ObjPortal, RightCall, ErrBadSel},
		{"negative", -1, ObjPortal, RightCall, ErrBadSel},
		{"wrong-type", 4, ObjPortal, 0, ErrBadType},
		{"no-call-right", 4, ObjSem, RightCall, ErrDenied},
		{"no-delegate-right", 3, ObjPortal, RightDelegate, ErrDenied},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := s.Lookup(c.sel, c.typ, c.r)
			if err != c.want {
				t.Errorf("Lookup(%d,%v,%v) = %v, want %v", c.sel, c.typ, c.r, err, c.want)
			}
		})
	}
	if d := s.Stats.Denials(); d != 6 {
		t.Errorf("Denials = %d, want 6", d)
	}
	if s.Stats.Hits != 2 {
		t.Errorf("Hits = %d, want 2", s.Stats.Hits)
	}
}

func TestDelegationNarrowsRights(t *testing.T) {
	obj := NewObject(ObjPD, "vm0", nil)
	a, b := NewSpace(4), NewSpace(4)
	a.Insert(0, obj, RightsAll)

	sel, err := a.DelegateFree(0, b, 0, RightCall)
	if err != OK {
		t.Fatalf("Delegate: %v", err)
	}
	if got := b.RightsAt(sel); got != RightCall {
		t.Errorf("delegated rights = %v, want call-only", got)
	}
	// The copy cannot be re-delegated (no RightDelegate survived).
	if _, err := b.DelegateFree(sel, NewSpace(1), 0, RightsAll); err != ErrDenied {
		t.Errorf("re-delegation of a call-only cap = %v, want ErrDenied", err)
	}
	// Delegation cannot widen: ask to keep all, source had call-only.
	c := NewSpace(4)
	if _, err := b.Lookup(sel, ObjPD, RightCall); err != OK {
		t.Fatalf("lookup after delegation: %v", err)
	}
	a.Insert(1, obj, RightCall|RightDelegate)
	s3, err := a.DelegateFree(1, c, 0, RightsAll)
	if err != OK {
		t.Fatalf("Delegate: %v", err)
	}
	if got := c.RightsAt(s3); got != RightCall|RightDelegate {
		t.Errorf("rights widened to %v through delegation", got)
	}
}

func TestRevocationInvalidatesAllCopies(t *testing.T) {
	obj := NewObject(ObjMemRegion, "datasect", nil)
	owner, peer := NewSpace(4), NewSpace(4)
	owner.Insert(0, obj, RightsAll)
	sel, err := owner.DelegateFree(0, peer, 0, RightCall)
	if err != OK {
		t.Fatalf("Delegate: %v", err)
	}
	if _, err := peer.Lookup(sel, ObjMemRegion, RightCall); err != OK {
		t.Fatalf("pre-revoke lookup: %v", err)
	}
	if err := owner.RevokeObject(0); err != OK {
		t.Fatalf("RevokeObject: %v", err)
	}
	if _, err := peer.Lookup(sel, ObjMemRegion, RightCall); err != ErrRevoked {
		t.Errorf("post-revoke lookup = %v, want ErrRevoked", err)
	}
	if owner.Stats.Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", owner.Stats.Revocations)
	}
	// A call-only holder cannot revoke.
	obj2 := NewObject(ObjSem, "s", nil)
	peer.Insert(2, obj2, RightCall)
	if err := peer.RevokeObject(2); err != ErrDenied {
		t.Errorf("revoke without RightRevoke = %v, want ErrDenied", err)
	}
}

func TestSelectorsAreSpaceLocal(t *testing.T) {
	// The forgery property: a selector valid in one space means nothing
	// in another.
	obj := NewObject(ObjPD, "vm1", nil)
	a, b := NewSpace(8), NewSpace(8)
	a.Insert(6, obj, RightCall)
	if _, err := a.Lookup(6, ObjPD, RightCall); err != OK {
		t.Fatalf("owner lookup: %v", err)
	}
	if _, err := b.Lookup(6, ObjPD, RightCall); err != ErrBadSel {
		t.Errorf("forged selector = %v, want ErrBadSel", err)
	}
}

func TestInsertFreeAndDrop(t *testing.T) {
	s := NewSpace(2)
	o := NewObject(ObjPortal, "p", nil)
	if sel := s.InsertFree(0, o, RightCall); sel != 0 {
		t.Errorf("first free = %d, want 0", sel)
	}
	if sel := s.InsertFree(0, o, RightCall); sel != 1 {
		t.Errorf("second free = %d, want 1", sel)
	}
	if sel := s.InsertFree(32, o, RightCall); sel != 32 {
		t.Errorf("floored free = %d, want 32", sel)
	}
	if s.CapCount() != 3 {
		t.Errorf("CapCount = %d, want 3", s.CapCount())
	}
	if err := s.Drop(1); err != OK {
		t.Errorf("Drop: %v", err)
	}
	if err := s.Drop(1); err != ErrBadSel {
		t.Errorf("double Drop = %v, want ErrBadSel", err)
	}
	if s.CapCount() != 2 {
		t.Errorf("CapCount after drop = %d, want 2", s.CapCount())
	}
}

func TestStatsAggregation(t *testing.T) {
	var total Stats
	total.Add(Stats{Lookups: 3, Hits: 2, BadSel: 1, Delegations: 4})
	total.Add(Stats{Lookups: 1, Revoked: 1, Revocations: 2})
	if total.Lookups != 4 || total.Hits != 2 || total.Denials() != 2 ||
		total.Delegations != 4 || total.Revocations != 2 {
		t.Errorf("aggregate = %+v", total)
	}
}
