// Package checkpoint defines the serialized form of a quiesced virtual
// machine: the immutable Image a kernel checkpoint produces and a
// restore or fork consumes. The package sits below the kernel in the
// import graph and holds no live kernel references — capability-table
// entries are re-minted by the kernel on restore (an image carries only
// the boot-grant bits, never object pointers), guest memory is a frame
// set the image pins on the bus, and the guest's host-side state rides
// along as an opaque value the hosting layer (ucos) knows how to rebuild.
package checkpoint

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// VGICLine is the captured virtual state of one interrupt line, in the
// order it appears in the VM's record list (ascending IRQ).
type VGICLine struct {
	IRQ       int
	Enabled   bool
	InService bool
	RePending bool
}

// Region is one linearly-mapped stretch of the guest's address space:
// Size bytes at VA backed by the template's physical frames starting at
// PA. A clone maps the same frames copy-on-write; an in-place restore
// reloads their contents from the image's Frames.
type Region struct {
	VA     uint32
	PA     physmem.Addr
	Size   uint32
	Domain uint8
}

// Frame is one captured 4 KB frame's contents (only present on images
// taken WithContents, which in-place restore requires).
type Frame struct {
	PA   physmem.Addr
	Data []byte
}

// Image is an immutable capture of a quiesced protection domain. The
// kernel builds it with every frame of the guest's space pinned on the
// bus, so the template's bytes survive however many clones come and go;
// ReleaseImage drops the pins.
type Image struct {
	Name       string
	CapturedAt simclock.Cycles

	// Domain identity to re-mint on restore: scheduling priority and the
	// boot-grant bits (the kernel rebuilds actual capability-table
	// contents from these — raw cap-table entries never enter an image).
	Priority int
	CapBits  uint32

	// Execution-context geometry of the guest's root context.
	CodeBase uint32
	CodeSize uint32

	// vCPU state (paper Table I): register file, CP15 state that is not
	// derivable from the restored space (DACR), lazy-switch state, the
	// remaining quantum, and the virtual-timer phase.
	Regs           cpu.Regs
	DACR           uint32
	VFP            [cpu.VFPContextWords]uint32
	VFPValid       bool
	L2Ctrl         uint32
	QuantumLeft    simclock.Cycles
	TimerPeriod    simclock.Cycles
	TimerRemaining simclock.Cycles

	// LastHcEntry anchors the replayed suspend-exit (the hypercall the VM
	// was parked in when captured) so a restored timeline reproduces the
	// uninterrupted one's probe samples exactly.
	LastHcEntry simclock.Cycles

	// Exec is the root execution context's replay-relevant micro-state
	// (fetch cursor, micro-TLBs, residency streak), opaque by design.
	Exec cpu.ExecState

	// Virtual interrupt controller: record list + queued injections.
	VGIC        []VGICLine
	VGICPending []int

	// Regions is the guest space's linear VA→PA map, frame-granular.
	Regions []Region

	// Frames holds captured frame contents; empty unless the checkpoint
	// was taken WithContents.
	Frames []Frame

	// Guest is the hosting layer's opaque snapshot of the software inside
	// the domain (e.g. a ucos.Snapshot); the kernel never looks at it.
	Guest any
}

// FrameCount is the number of 4 KB frames the image's regions cover.
func (img *Image) FrameCount() int {
	n := 0
	for _, r := range img.Regions {
		n += int(r.Size / physmem.FrameSize)
	}
	return n
}

// EachFrame calls f for every (VA, PA) frame pair, region by region in
// image order — the canonical walk shared by clone mapping, sharing,
// release and pin/unpin, so every consumer sees one deterministic order.
func (img *Image) EachFrame(f func(va uint32, pa physmem.Addr)) {
	for _, r := range img.Regions {
		for off := uint32(0); off < r.Size; off += physmem.FrameSize {
			f(r.VA+off, r.PA+physmem.Addr(off))
		}
	}
}

// Fingerprint is an FNV-1a hash over the image's canonical serialized
// form. Two captures of identical machine state fingerprint identically,
// whatever host produced them; tests use this to prove checkpoint
// stability. The opaque fields (Exec, Guest) are excluded — they carry
// no serializable identity of their own.
func (img *Image) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(p []byte) {
		for _, b := range p {
			h = (h ^ uint64(b)) * prime
		}
	}
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		mix(w[:])
	}
	mix([]byte(img.Name))
	u64(uint64(img.CapturedAt))
	u64(uint64(img.Priority))
	u64(uint64(img.CapBits))
	u64(uint64(img.CodeBase)<<32 | uint64(img.CodeSize))
	for _, r := range img.Regs.R {
		u64(uint64(r))
	}
	u64(uint64(img.Regs.CPSR))
	u64(uint64(img.DACR))
	for _, v := range img.VFP {
		u64(uint64(v))
	}
	u64(uint64(img.L2Ctrl))
	if img.VFPValid {
		u64(1)
	}
	u64(uint64(img.QuantumLeft))
	u64(uint64(img.TimerPeriod))
	u64(uint64(img.TimerRemaining))
	u64(uint64(img.LastHcEntry))
	for _, l := range img.VGIC {
		v := uint64(l.IRQ) << 3
		if l.Enabled {
			v |= 1
		}
		if l.InService {
			v |= 2
		}
		if l.RePending {
			v |= 4
		}
		u64(v)
	}
	for _, p := range img.VGICPending {
		u64(uint64(p))
	}
	for _, r := range img.Regions {
		u64(uint64(r.VA)<<32 | uint64(r.PA))
		u64(uint64(r.Size)<<8 | uint64(r.Domain))
	}
	for _, f := range img.Frames {
		u64(uint64(f.PA))
		mix(f.Data)
	}
	return h
}

// Validate checks the structural invariants a kernel restore relies on:
// frame-aligned, non-overlapping... regions are kept simple on purpose —
// each must be frame-aligned and frame-sized, and captured frames must
// fall inside a region.
func (img *Image) Validate() error {
	covered := map[physmem.Addr]bool{}
	for _, r := range img.Regions {
		if r.VA%physmem.FrameSize != 0 || uint32(r.PA)%physmem.FrameSize != 0 {
			return fmt.Errorf("checkpoint: region %#x unaligned", r.VA)
		}
		if r.Size == 0 || r.Size%physmem.FrameSize != 0 {
			return fmt.Errorf("checkpoint: region %#x has bad size %d", r.VA, r.Size)
		}
		for off := uint32(0); off < r.Size; off += physmem.FrameSize {
			pa := r.PA + physmem.Addr(off)
			if covered[pa] {
				return fmt.Errorf("checkpoint: frame %#x covered twice", uint32(pa))
			}
			covered[pa] = true
		}
	}
	for _, f := range img.Frames {
		if !covered[f.PA] {
			return fmt.Errorf("checkpoint: captured frame %#x outside every region", uint32(f.PA))
		}
		if len(f.Data) != physmem.FrameSize {
			return fmt.Errorf("checkpoint: frame %#x has %d bytes", uint32(f.PA), len(f.Data))
		}
	}
	return nil
}
