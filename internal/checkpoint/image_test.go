package checkpoint

import (
	"testing"

	"repro/internal/physmem"
)

func sampleImage() *Image {
	img := &Image{
		Name:           "tpl",
		CapturedAt:     123456,
		Priority:       1,
		CodeBase:       0x3000_0000,
		CodeSize:       64 << 10,
		DACR:           0x55,
		QuantumLeft:    1000,
		TimerPeriod:    660_000,
		TimerRemaining: 330_000,
		LastHcEntry:    123000,
		VGIC: []VGICLine{
			{IRQ: 29, Enabled: true, InService: true},
			{IRQ: 61, Enabled: true},
		},
		VGICPending: []int{29},
		Regions: []Region{
			{VA: 0x3000_0000, PA: physmem.DDRBase + 0x200_0000, Size: 1 << 20, Domain: 2},
			{VA: 0x0001_0000, PA: physmem.DDRBase + 0x210_0000, Size: 3 << 20, Domain: 1},
		},
	}
	img.Regs.R[0] = 7
	img.Regs.CPSR = 0x10
	return img
}

func TestFrameWalkCoversRegions(t *testing.T) {
	img := sampleImage()
	want := (1<<20 + 3<<20) / physmem.FrameSize
	if got := img.FrameCount(); got != want {
		t.Fatalf("FrameCount = %d, want %d", got, want)
	}
	n := 0
	var lastVA uint32
	img.EachFrame(func(va uint32, pa physmem.Addr) {
		if n > 0 && va <= lastVA && va != 0x0001_0000 {
			t.Fatalf("frame walk not monotone within region: %#x after %#x", va, lastVA)
		}
		lastVA = va
		n++
	})
	if n != want {
		t.Fatalf("EachFrame visited %d frames, want %d", n, want)
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	a, b := sampleImage(), sampleImage()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical images fingerprint differently")
	}
	b.Regs.R[13] = 0xdead
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("register change not reflected in fingerprint")
	}
	c := sampleImage()
	c.VGIC[0].RePending = true
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("vGIC change not reflected in fingerprint")
	}
	d := sampleImage()
	d.Frames = append(d.Frames, Frame{PA: d.Regions[0].PA, Data: make([]byte, physmem.FrameSize)})
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("captured contents not reflected in fingerprint")
	}
}

func TestValidate(t *testing.T) {
	img := sampleImage()
	if err := img.Validate(); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	bad := sampleImage()
	bad.Regions[1].PA = bad.Regions[0].PA // overlap
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping regions accepted")
	}
	bad = sampleImage()
	bad.Regions[0].Size += 12
	if err := bad.Validate(); err == nil {
		t.Fatal("unaligned region size accepted")
	}
	bad = sampleImage()
	bad.Frames = append(bad.Frames, Frame{PA: 0x4_0000, Data: make([]byte, physmem.FrameSize)})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-region frame accepted")
	}
}
