// Package cpu models the ARM Cortex-A9 core of the Zynq-7000 processing
// system at the level Mini-NOVA cares about: operating modes and their
// privilege split, banked exception entry, the CP15 system-control
// coprocessor (TTBR/DACR/ASID/cache/TLB maintenance), the VFP coprocessor
// with an enable bit (the hook for lazy context switching, paper Table I),
// and IRQ delivery from the GIC.
//
// No ARM machine code is interpreted. "Software" in this repository is Go
// code that executes against an ExecContext (see exec.go), which charges
// the simulated clock for every abstract instruction and memory access
// through the MMU, TLB and cache models. Control transfers — SWI
// (hypercalls), undefined-instruction traps, aborts, interrupts — run the
// handler functions installed in the vector table, exactly as the hardware
// would redirect the program counter, so privilege is enforced by this
// model rather than trusted.
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/gic"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/simclock"
	"repro/internal/tlb"
)

// Mode is an ARM operating mode. USR is the only non-privileged mode; the
// five privileged modes are entered through exceptions (paper §III).
type Mode int

// The six Cortex-A9 modes Mini-NOVA uses.
const (
	ModeUSR Mode = iota // guests (kernel and user) run here
	ModeSVC             // Mini-NOVA proper
	ModeIRQ             // interrupt entry
	ModeFIQ             // fast interrupt entry (unused by Mini-NOVA, modelled for completeness)
	ModeUND             // undefined-instruction traps (privileged-op emulation)
	ModeABT             // prefetch/data aborts (page faults)
)

func (m Mode) String() string {
	switch m {
	case ModeUSR:
		return "USR"
	case ModeSVC:
		return "SVC"
	case ModeIRQ:
		return "IRQ"
	case ModeFIQ:
		return "FIQ"
	case ModeUND:
		return "UND"
	case ModeABT:
		return "ABT"
	}
	return "?"
}

// Privileged reports whether the mode is PL1.
func (m Mode) Privileged() bool { return m != ModeUSR }

// Exception-path cycle costs (pipeline flush + mode switch + vector fetch).
const (
	CostExceptionEntry  = 12
	CostExceptionReturn = 9
	CostCP15Op          = 3  // mcr/mrc latency
	CostVFPWord         = 2  // per 32-bit word of VFP context moved
	VFPContextWords     = 66 // 32 double registers + FPSCR/FPEXC
)

// Regs is the general-purpose register file visible to one context.
// R0..R3 carry hypercall arguments and return values (AAPCS), R13 is SP,
// R14 LR, R15 PC. The vCPU switch cost in nova is proportional to this.
type Regs struct {
	R    [16]uint32
	CPSR uint32
}

// Vectors is the exception vector table the kernel installs. Handlers run
// synchronously in the corresponding privileged mode.
type Vectors struct {
	// SWI receives hypercalls: number plus r0..r3; its return value is
	// placed in the caller's R0.
	SWI func(num int, args [4]uint32) uint32
	// Undef receives undefined-instruction traps (privileged-op emulation,
	// VFP lazy switch). Return true when emulated/fixed so the faulting
	// operation retries or proceeds.
	Undef func(u UndefInfo) bool
	// PrefetchAbort and DataAbort receive MMU faults. Return true when the
	// kernel resolved the fault (mapping installed) and the access should
	// be retried; false delivers the fault to the current VM's handler or
	// kills it (kernel policy).
	PrefetchAbort func(f *mmu.Fault) bool
	DataAbort     func(f *mmu.Fault) bool
	// IRQ receives the asserted nIRQ line; the handler acknowledges the
	// GIC itself.
	IRQ func()
}

// UndefKind says why the UND trap fired.
type UndefKind int

// Undefined-instruction trap causes.
const (
	UndefCP15 UndefKind = iota // privileged CP15 op from USR
	UndefVFP                   // VFP op while CP10/11 disabled (lazy switch)
	UndefOp                    // any other privileged instruction
)

// UndefInfo describes an undefined-instruction trap.
type UndefInfo struct {
	Kind UndefKind
	Reg  CP15Reg // for UndefCP15
	Val  uint32
	Wr   bool
}

// CP15Reg names the system-control registers the model implements.
type CP15Reg int

// CP15 registers.
const (
	CP15SCTLR      CP15Reg = iota // system control (MMU enable bit)
	CP15TTBR0                     // translation table base
	CP15DACR                      // domain access control
	CP15CONTEXTIDR                // ASID
	CP15TLBIALL                   // TLB invalidate all (write-only)
	CP15TLBIASID                  // TLB invalidate by ASID (write-only)
	CP15TLBIMVA                   // TLB invalidate by VA (write-only)
	CP15ICIALLU                   // I-cache invalidate all (write-only)
	CP15DCCISW                    // D-cache clean+invalidate all (write-only)
	CP15VFPEN                     // model register: CP10/11 access enable
)

// CPU is one modelled A9 core with its memory system. ID is the core's
// index — it selects the core's GIC CPU interface, so banked interrupts
// (SGIs, the private-timer PPI) and targeted SPIs reach the right core.
type CPU struct {
	ID     int
	Clock  *simclock.Clock
	Bus    *physmem.Bus
	Caches *cache.Hierarchy
	TLB    *tlb.TLB
	MMU    *mmu.MMU
	GIC    *gic.GIC

	Mode      Mode
	IRQMasked bool
	Regs      Regs // live register file of the current context

	VFPEnabled bool // CP10/11 enable: cleared on VM switch for lazy VFP

	// ScalarMemPath forces the reference per-access memory path in place
	// of the batched streaming engine (see exec.go). The two are
	// bit-identical in simulated results; the flag exists for the
	// equivalence tests and the wall-clock speedup benchmarks.
	ScalarMemPath bool

	Vectors Vectors

	// generation invalidates ExecContext micro-TLBs on any translation-
	// affecting change (TTBR/ASID write, TLB maintenance).
	generation uint64

	stats CPUStats

	inIRQ bool // prevents re-entrant IRQ delivery
}

// CPUStats counts architectural events.
type CPUStats struct {
	Instructions uint64
	SWIs         uint64
	Undefs       uint64
	Aborts       uint64
	IRQsTaken    uint64
	VFPTraps     uint64
}

// New assembles core 0 over fresh memory-system models.
func New(clock *simclock.Clock, bus *physmem.Bus, g *gic.GIC) *CPU {
	return NewCore(clock, bus, g, 0, cache.NewA9Hierarchy())
}

// NewCore assembles core id of an MPCore over the given cache hierarchy
// (callers share one L2 across cores via cache.NewA9SharedL2). Each core
// gets its own TLB and MMU state, as on silicon.
func NewCore(clock *simclock.Clock, bus *physmem.Bus, g *gic.GIC, id int, h *cache.Hierarchy) *CPU {
	t := tlb.NewA9()
	c := &CPU{
		ID:     id,
		Clock:  clock,
		Bus:    bus,
		Caches: h,
		TLB:    t,
		MMU:    mmu.New(bus, t, h),
		GIC:    g,
		Mode:   ModeSVC, // reset enters a privileged mode
	}
	return c
}

// Stats returns a copy of the counters.
func (c *CPU) Stats() CPUStats { return c.stats }

// Generation is the translation-state epoch used by micro-TLBs.
func (c *CPU) Generation() uint64 { return c.generation }

func (c *CPU) bumpGeneration() { c.generation++ }

// InvalidateTLBVA flushes one page from the main TLB and forces the
// micro-TLBs to revalidate, without charging CP15-op cost. The parallel
// kernel performs deferred TLB maintenance at epoch barriers, where the
// initiating core has already been charged the modeled cost and the target
// core's clock must not move.
func (c *CPU) InvalidateTLBVA(va uint32, asid uint8) {
	c.TLB.FlushVA(va&^0xFFF, asid)
	c.bumpGeneration()
}

// CP15Read performs an mrc. Reading from USR mode traps to the UND vector
// (sensitive instruction, paper §II-A) and returns the handler-provided
// emulation if any; unhandled traps return 0.
func (c *CPU) CP15Read(r CP15Reg) uint32 {
	c.Clock.Advance(CostCP15Op)
	if !c.Mode.Privileged() {
		c.trapUndef(UndefInfo{Kind: UndefCP15, Reg: r})
		return 0
	}
	switch r {
	case CP15SCTLR:
		if c.MMU.Enabled {
			return 1
		}
		return 0
	case CP15TTBR0:
		return uint32(c.MMU.TTBR)
	case CP15DACR:
		return c.MMU.DACR
	case CP15CONTEXTIDR:
		return uint32(c.MMU.ASID)
	case CP15VFPEN:
		if c.VFPEnabled {
			return 1
		}
		return 0
	}
	return 0
}

// CP15Write performs an mcr. From USR mode it traps (the mechanism that
// forces guests to use hypercalls for sensitive state, paper §III-A).
func (c *CPU) CP15Write(r CP15Reg, v uint32) {
	c.Clock.Advance(CostCP15Op)
	if !c.Mode.Privileged() {
		c.trapUndef(UndefInfo{Kind: UndefCP15, Reg: r, Val: v, Wr: true})
		return
	}
	switch r {
	case CP15SCTLR:
		c.MMU.Enabled = v&1 != 0
		c.bumpGeneration()
	case CP15TTBR0:
		c.MMU.TTBR = physmem.Addr(v)
		c.bumpGeneration()
	case CP15DACR:
		c.MMU.SetDACR(v)
		// permission-only change: micro-TLBs recheck DACR, no bump needed
	case CP15CONTEXTIDR:
		c.MMU.ASID = uint8(v)
		c.bumpGeneration()
	case CP15TLBIALL:
		c.TLB.FlushAll()
		c.bumpGeneration()
	case CP15TLBIASID:
		c.TLB.FlushASID(uint8(v))
		c.bumpGeneration()
	case CP15TLBIMVA:
		c.TLB.FlushVA(v&^0xFFF, c.MMU.ASID)
		c.bumpGeneration()
	case CP15ICIALLU:
		c.Caches.L1I.InvalidateAll()
	case CP15DCCISW:
		wb := c.Caches.L1D.CleanInvalidateAll() + c.Caches.L2.CleanInvalidateAll()
		c.Clock.Advance(simclock.Cycles(wb * cache.PenaltyLineWB))
	case CP15VFPEN:
		c.VFPEnabled = v&1 != 0
	default:
		panic(fmt.Sprintf("cpu: CP15 write to unknown reg %d", r))
	}
}

// trapUndef enters UND mode and runs the installed handler.
func (c *CPU) trapUndef(u UndefInfo) bool {
	c.stats.Undefs++
	if u.Kind == UndefVFP {
		c.stats.VFPTraps++
	}
	prev, prevMask := c.Mode, c.IRQMasked
	c.Mode, c.IRQMasked = ModeUND, true
	c.Clock.Advance(CostExceptionEntry)
	handled := false
	if c.Vectors.Undef != nil {
		handled = c.Vectors.Undef(u)
	}
	c.Clock.Advance(CostExceptionReturn)
	c.Mode, c.IRQMasked = prev, prevMask
	return handled
}

// SWI executes a software interrupt (hypercall). Arguments travel in the
// register file as on real hardware; the handler's return value lands in
// R0 (paper §III-A: hypercalls replace frequently-used sensitive ops).
func (c *CPU) SWI(num int, args [4]uint32) uint32 {
	c.stats.SWIs++
	prev, prevMask := c.Mode, c.IRQMasked
	savedRegs := c.Regs
	c.Mode, c.IRQMasked = ModeSVC, true
	c.Clock.Advance(CostExceptionEntry)
	copy(c.Regs.R[0:4], args[:])
	var ret uint32
	if c.Vectors.SWI != nil {
		ret = c.Vectors.SWI(num, args)
	}
	c.Clock.Advance(CostExceptionReturn)
	c.Regs = savedRegs
	c.Regs.R[0] = ret
	c.Mode, c.IRQMasked = prev, prevMask
	return ret
}

// deliverAbort routes an MMU fault to the ABT vector; reports whether the
// kernel fixed the mapping (access should retry).
func (c *CPU) deliverAbort(f *mmu.Fault) bool {
	c.stats.Aborts++
	prev, prevMask := c.Mode, c.IRQMasked
	c.Mode, c.IRQMasked = ModeABT, true
	c.Clock.Advance(CostExceptionEntry)
	fixed := false
	if f.Fetch {
		if c.Vectors.PrefetchAbort != nil {
			fixed = c.Vectors.PrefetchAbort(f)
		}
	} else if c.Vectors.DataAbort != nil {
		fixed = c.Vectors.DataAbort(f)
	}
	c.Clock.Advance(CostExceptionReturn)
	c.Mode, c.IRQMasked = prev, prevMask
	return fixed
}

// PollIRQ takes a pending GIC interrupt if unmasked; it is called by
// ExecContext at instruction boundaries, mimicking the nIRQ sample point.
func (c *CPU) PollIRQ() {
	if c.IRQMasked || c.inIRQ || c.Vectors.IRQ == nil || !c.GIC.PendingDeliverable(c.ID) {
		return
	}
	c.stats.IRQsTaken++
	prev := c.Mode
	c.inIRQ = true
	c.Mode, c.IRQMasked = ModeIRQ, true
	c.Clock.Advance(CostExceptionEntry)
	c.Vectors.IRQ()
	c.Clock.Advance(CostExceptionReturn)
	c.Mode, c.IRQMasked = prev, false
	c.inIRQ = false
}

// VFPContextCost is the cycle cost of saving or restoring one full VFP
// context — what the lazy-switch policy (Table I) avoids paying on every
// VM switch.
func VFPContextCost() simclock.Cycles {
	return simclock.Cycles(VFPContextWords * CostVFPWord)
}
