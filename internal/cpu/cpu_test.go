package cpu

import (
	"testing"

	"repro/internal/gic"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// rig builds a CPU with MMU disabled (identity map) for mechanism tests.
func rig() (*CPU, *simclock.Clock, *gic.GIC) {
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	c := New(clock, bus, g)
	return c, clock, g
}

// rigMMU additionally builds and activates a page table mapping code+data.
func rigMMU() (*CPU, *mmu.PageTable, *mmu.FrameAllocator) {
	c, _, _ := rig()
	alloc := mmu.NewFrameAllocator(physmem.DDRBase+8<<20, 16<<20)
	pt := mmu.NewPageTable(c.Bus, alloc)
	// code at VA 0x0001_0000, data at VA 0x0010_0000, domain 1, full access
	for i := uint32(0); i < 16; i++ {
		pt.MapPage(0x0001_0000+i<<12, physmem.DDRBase+physmem.Addr(i<<12), 1, mmu.APFull)
		pt.MapPage(0x0010_0000+i<<12, physmem.DDRBase+physmem.Addr(0x40_000+i<<12), 1, mmu.APFull)
	}
	c.CP15Write(CP15TTBR0, uint32(pt.Base))
	c.CP15Write(CP15DACR, uint32(mmu.DomainClient)<<2)
	c.CP15Write(CP15CONTEXTIDR, 1)
	c.CP15Write(CP15SCTLR, 1)
	return c, pt, alloc
}

func TestModePrivilege(t *testing.T) {
	if ModeUSR.Privileged() {
		t.Error("USR is privileged")
	}
	for _, m := range []Mode{ModeSVC, ModeIRQ, ModeFIQ, ModeUND, ModeABT} {
		if !m.Privileged() {
			t.Errorf("%v not privileged", m)
		}
	}
}

func TestCP15PrivilegedAccess(t *testing.T) {
	c, _, _ := rig()
	c.Mode = ModeSVC
	c.CP15Write(CP15DACR, 0x55)
	if got := c.CP15Read(CP15DACR); got != 0x55 {
		t.Errorf("DACR = %#x, want 0x55", got)
	}
}

func TestCP15UserTraps(t *testing.T) {
	c, _, _ := rig()
	var trapped *UndefInfo
	c.Vectors.Undef = func(u UndefInfo) bool { trapped = &u; return true }
	c.Mode = ModeUSR
	c.CP15Write(CP15TTBR0, 0xDEAD)
	if trapped == nil {
		t.Fatal("USR CP15 write did not trap")
	}
	if trapped.Kind != UndefCP15 || trapped.Reg != CP15TTBR0 || !trapped.Wr || trapped.Val != 0xDEAD {
		t.Errorf("trap info = %+v", trapped)
	}
	// The write must NOT have landed.
	c.Mode = ModeSVC
	if got := c.CP15Read(CP15TTBR0); got == 0xDEAD {
		t.Error("unprivileged CP15 write took effect")
	}
}

func TestUndefHandlerRunsInUNDMode(t *testing.T) {
	c, _, _ := rig()
	var seen Mode
	c.Vectors.Undef = func(UndefInfo) bool { seen = c.Mode; return true }
	c.Mode = ModeUSR
	c.CP15Read(CP15DACR)
	if seen != ModeUND {
		t.Errorf("handler ran in %v, want UND", seen)
	}
	if c.Mode != ModeUSR {
		t.Errorf("mode after trap = %v, want USR restored", c.Mode)
	}
}

func TestSWIRegisterABI(t *testing.T) {
	c, _, _ := rig()
	var gotNum int
	var gotArgs [4]uint32
	var handlerMode Mode
	c.Vectors.SWI = func(num int, args [4]uint32) uint32 {
		gotNum, gotArgs, handlerMode = num, args, c.Mode
		return 0xCAFE
	}
	c.Mode = ModeUSR
	c.Regs.R[7] = 0x777 // guest state that must survive
	ret := c.SWI(9, [4]uint32{1, 2, 3, 4})
	if gotNum != 9 || gotArgs != [4]uint32{1, 2, 3, 4} {
		t.Errorf("handler saw num=%d args=%v", gotNum, gotArgs)
	}
	if handlerMode != ModeSVC {
		t.Errorf("SWI handler mode = %v, want SVC", handlerMode)
	}
	if ret != 0xCAFE || c.Regs.R[0] != 0xCAFE {
		t.Errorf("return = %#x, R0 = %#x, want 0xCAFE in both", ret, c.Regs.R[0])
	}
	if c.Regs.R[7] != 0x777 {
		t.Error("caller registers clobbered across SWI")
	}
	if c.Mode != ModeUSR {
		t.Errorf("mode after SWI = %v, want USR", c.Mode)
	}
}

func TestSWIChargesCycles(t *testing.T) {
	c, clock, _ := rig()
	c.Vectors.SWI = func(int, [4]uint32) uint32 { return 0 }
	before := clock.Now()
	c.SWI(1, [4]uint32{})
	if clock.Now()-before < CostExceptionEntry+CostExceptionReturn {
		t.Error("SWI charged less than entry+return cost")
	}
}

func TestIRQDelivery(t *testing.T) {
	c, _, g := rig()
	taken := 0
	c.Vectors.IRQ = func() {
		taken++
		id := g.Acknowledge(0)
		g.EOI(0, id)
	}
	g.Enable(gic.UARTIRQ)
	g.Raise(gic.UARTIRQ)
	ctx := NewExecContext(c, "t", 0x0001_0000, 4096)
	c.MMU.Enabled = false
	ctx.Exec(10)
	if taken != 1 {
		t.Errorf("IRQs taken = %d, want 1", taken)
	}
}

func TestIRQMasking(t *testing.T) {
	c, _, g := rig()
	taken := 0
	c.Vectors.IRQ = func() { taken++; g.EOI(0, g.Acknowledge(0)) }
	g.Enable(gic.UARTIRQ)
	g.Raise(gic.UARTIRQ)
	c.IRQMasked = true
	ctx := NewExecContext(c, "t", 0x0001_0000, 4096)
	ctx.Exec(10)
	if taken != 0 {
		t.Error("masked IRQ was taken")
	}
	c.IRQMasked = false
	ctx.Exec(1)
	if taken != 1 {
		t.Error("unmasking did not deliver the latched IRQ")
	}
}

func TestVFPLazyTrap(t *testing.T) {
	c, _, _ := rig()
	c.MMU.Enabled = false
	traps := 0
	c.Vectors.Undef = func(u UndefInfo) bool {
		if u.Kind != UndefVFP {
			t.Errorf("unexpected trap %+v", u)
		}
		traps++
		// kernel lazily switches VFP then enables CP10/11
		c.VFPEnabled = true
		return true
	}
	ctx := NewExecContext(c, "t", 0x0001_0000, 4096)
	if !ctx.VFPOp(8) {
		t.Fatal("VFPOp failed after lazy enable")
	}
	if traps != 1 {
		t.Errorf("traps = %d, want 1", traps)
	}
	// Second op: no trap.
	ctx.VFPOp(8)
	if traps != 1 {
		t.Errorf("second VFP op re-trapped (traps=%d)", traps)
	}
}

func TestExecThroughMMU(t *testing.T) {
	c, _, _ := rigMMU()
	c.Mode = ModeUSR
	ctx := NewExecContext(c, "guest", 0x0001_0000, 16<<10)
	before := c.Clock.Now()
	ctx.Exec(100)
	if ctx.Stalled {
		t.Fatal("context stalled on mapped code")
	}
	if c.Clock.Now() == before {
		t.Error("Exec charged nothing")
	}
	if c.Stats().Instructions != 100 {
		t.Errorf("instructions = %d, want 100", c.Stats().Instructions)
	}
}

func TestDataAbortOnUnmapped(t *testing.T) {
	c, _, _ := rigMMU()
	c.Mode = ModeUSR
	aborts := 0
	c.Vectors.DataAbort = func(f *mmu.Fault) bool { aborts++; return false }
	ctx := NewExecContext(c, "guest", 0x0001_0000, 16<<10)
	ctx.Touch(0xDEAD_0000, true)
	if aborts != 1 {
		t.Errorf("aborts = %d, want 1", aborts)
	}
	if !ctx.Stalled {
		t.Error("context not stalled after unrecovered abort")
	}
}

func TestAbortRetryAfterKernelFix(t *testing.T) {
	c, pt, _ := rigMMU()
	c.Mode = ModeUSR
	c.Vectors.DataAbort = func(f *mmu.Fault) bool {
		// demand-map the page (kernel runs privileged; here we edit directly)
		pt.MapPage(f.VA&^0xFFF, physmem.DDRBase+0x80_0000, 1, mmu.APFull)
		return true
	}
	ctx := NewExecContext(c, "guest", 0x0001_0000, 16<<10)
	ctx.Touch(0x0200_0000, true)
	if ctx.Stalled {
		t.Error("context stalled although kernel fixed the fault")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c, _, _ := rigMMU()
	ctx := NewExecContext(c, "k", 0x0001_0000, 16<<10)
	if err := ctx.Store32(0x0010_0004, 0xABCD1234); err != nil {
		t.Fatalf("Store32: %v", err)
	}
	v, err := ctx.Load32(0x0010_0004)
	if err != nil || v != 0xABCD1234 {
		t.Errorf("Load32 = %#x,%v", v, err)
	}
}

func TestMicroTLBInvalidationOnASIDSwitch(t *testing.T) {
	c, pt, alloc := rigMMU()
	ctx := NewExecContext(c, "g", 0x0001_0000, 16<<10)
	ctx.Touch(0x0010_0000, false) // warm micro-TLB
	missesBefore := c.TLB.Stats().Misses

	// Build a second address space where the same VA is unmapped.
	pt2 := mmu.NewPageTable(c.Bus, alloc)
	pt2.MapPage(0x0001_0000, physmem.DDRBase, 1, mmu.APFull)
	_ = pt
	c.CP15Write(CP15TTBR0, uint32(pt2.Base))
	c.CP15Write(CP15CONTEXTIDR, 2)

	aborted := false
	c.Vectors.DataAbort = func(*mmu.Fault) bool { aborted = true; return false }
	ctx.Touch(0x0010_0000, false)
	if !aborted {
		t.Error("stale micro-TLB translation used across address-space switch")
	}
	if c.TLB.Stats().Misses == missesBefore {
		t.Error("no main-TLB activity after generation bump")
	}
}

func TestDCacheCleanChargesWritebacks(t *testing.T) {
	c, _, _ := rigMMU()
	ctx := NewExecContext(c, "k", 0x0001_0000, 16<<10)
	for i := uint32(0); i < 64; i++ {
		_ = ctx.Store32(0x0010_0000+i*32, i) // dirty 64 lines
	}
	before := c.Clock.Now()
	c.CP15Write(CP15DCCISW, 0)
	if c.Clock.Now()-before < 64 {
		t.Error("clean+invalidate charged too little for dirty lines")
	}
}

func TestExecContextCursorWraps(t *testing.T) {
	c, _, _ := rig()
	c.MMU.Enabled = false
	ctx := NewExecContext(c, "t", 0x0001_0000, 64) // 2 lines of code
	ctx.Exec(100)                                  // must wrap many times without leaving range
	if ctx.cursor >= 64 {
		t.Errorf("cursor = %d, escaped the code range", ctx.cursor)
	}
}
