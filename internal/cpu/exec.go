package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/simclock"
	"repro/internal/tlb"
)

// instrPerLine is how many 4-byte instructions share one 32-byte I-line.
const instrPerLine = 8

// microTLBSize models the A9 side micro-TLBs (32-entry on silicon; a
// smaller model keeps main-TLB pressure visible).
const microTLBSize = 8

type microEntry struct {
	page  uint32 // VA >> 12
	tr    tlb.Translation
	valid bool
}

// ExecContext is the lens through which a piece of software — kernel
// routine, guest task, service — executes on the CPU. It charges the
// simulated clock for instruction issue, I-fetch through L1I/L2, data
// traffic through L1D/L2, and address translation through micro-TLB, main
// TLB and hardware walks. Each software component owns one ExecContext
// bound to the virtual address range its code occupies, so distinct
// components contend for cache and TLB space exactly the way the paper's
// Table III measures.
type ExecContext struct {
	CPU *CPU
	// Name labels traces and errors.
	Name string
	// CodeBase/CodeSize delimit the component's code in its address space;
	// the fetch cursor walks this range cyclically.
	CodeBase, CodeSize uint32

	cursor uint32 // byte offset of the next fetch within the code range

	gen    uint64 // CPU generation the micro-TLBs were filled under
	iMicro microEntry
	dMicro [microTLBSize]microEntry
	dNext  int

	// I-side residency streak: iClean counts consecutive zero-miss fetch
	// bytes observed while the L1I's residency epoch stayed at iEpoch.
	// Once it reaches CodeSize, every line of the (32-byte-multiple) code
	// range is proven resident and fetch probes are guaranteed hits until
	// the epoch moves — the batched Exec bulk-charges them (see Exec).
	iEpoch uint64
	iClean uint32

	// Stalled is set when an unrecovered abort occurred; the owner (VM or
	// kernel) decides what to do with a stalled context.
	Stalled bool
}

// NewExecContext binds a context to its code range.
func NewExecContext(c *CPU, name string, codeBase, codeSize uint32) *ExecContext {
	if codeSize == 0 {
		panic("cpu: ExecContext needs a non-empty code range")
	}
	return &ExecContext{CPU: c, Name: name, CodeBase: codeBase, CodeSize: codeSize}
}

func (e *ExecContext) checkGen() {
	if e.gen != e.CPU.generation {
		e.iMicro = microEntry{}
		for i := range e.dMicro {
			e.dMicro[i] = microEntry{}
		}
		e.gen = e.CPU.generation
	}
}

// translate resolves va, using the data micro-TLB, and returns the PA.
// Permission is rechecked even on micro hits (the micro-TLB caches
// translations, not authorization). On an abort it consults the kernel and
// retries once if the kernel fixed the mapping.
func (e *ExecContext) translate(va uint32, write, fetch bool) (physmem.Addr, bool) {
	e.checkGen()
	m := e.CPU.MMU
	if !m.Enabled {
		return physmem.Addr(va), true
	}
	page := va >> 12
	priv := e.CPU.Mode.Privileged()

	hit := e.microLookup(page, fetch)
	if hit != nil {
		// micro hit: charge nothing, but recheck domain/AP.
		if okDomainAP(m, hit.tr, priv, write) {
			return hit.tr.PhysAddr(va), true
		}
		// Permission changed (e.g. DACR flip): fall through to full path so
		// the fault is generated with proper bookkeeping.
	}

	for attempt := 0; attempt < 2; attempt++ {
		pa, cost, fault := m.Translate(va, priv, write, fetch)
		e.CPU.Clock.Advance(simclock.Cycles(cost))
		if fault == nil {
			if tr, ok := m.TLB.Lookup(va, m.ASID); ok {
				ent := microEntry{page: page, tr: tr, valid: true}
				if fetch {
					e.iMicro = ent
				} else {
					e.dMicro[e.dNext] = ent
					e.dNext = (e.dNext + 1) % microTLBSize
				}
			}
			return pa, true
		}
		if !e.CPU.deliverAbort(fault) {
			e.Stalled = true
			return 0, false
		}
		e.checkGen() // kernel may have edited tables / flushed TLB
	}
	e.Stalled = true
	return 0, false
}

// microLookup is the pure micro-TLB scan: no cycle cost, no stats, no state
// change. Both the scalar translate and the batched engine's page-coverage
// check share it so their micro-hit decisions are identical by construction.
func (e *ExecContext) microLookup(page uint32, fetch bool) *microEntry {
	if fetch {
		if e.iMicro.valid && e.iMicro.page == page {
			return &e.iMicro
		}
		return nil
	}
	for i := range e.dMicro {
		if e.dMicro[i].valid && e.dMicro[i].page == page {
			return &e.dMicro[i]
		}
	}
	return nil
}

// pageCover reports whether further accesses to va's 4 KB page may skip the
// scalar translate entirely: exactly when the micro-TLB covers the page and
// the DACR/AP recheck passes — the scalar path's zero-cost, zero-stat,
// side-effect-free case. It returns the page-base physical address. The
// batched engine re-validates this after every clock synchronization, since
// event handlers may flush TLBs, bump the translation generation or rewrite
// the DACR.
func (e *ExecContext) pageCover(va uint32, write, fetch bool) (physmem.Addr, bool) {
	m := e.CPU.MMU
	if !m.Enabled {
		return physmem.Addr(va &^ 0xFFF), true
	}
	e.checkGen()
	hit := e.microLookup(va>>12, fetch)
	if hit == nil || !okDomainAP(m, hit.tr, e.CPU.Mode.Privileged(), write) {
		return 0, false
	}
	return hit.tr.PhysAddr(va) &^ 0xFFF, true
}

func okDomainAP(m *mmu.MMU, tr tlb.Translation, priv, write bool) bool {
	switch m.DomainAccess(tr.Domain) {
	case 1: // client
		switch tr.AP {
		case 1:
			return priv
		case 2:
			return priv || !write
		case 3:
			return true
		}
		return false
	case 3: // manager
		return true
	}
	return false
}

// advanceCursor steps the fetch cursor one I-line forward, wrapping on the
// actual code size: a range that is not a multiple of the 32-byte line
// keeps its cyclic phase instead of overshooting past the end and snapping
// back to offset 0 (which skewed the post-wrap line addresses).
func (e *ExecContext) advanceCursor() {
	e.cursor += instrPerLine * 4
	if e.cursor >= e.CodeSize {
		e.cursor %= e.CodeSize
	}
}

// Exec charges n abstract instructions: issue cycles plus I-side fetch
// traffic walking the component's code range, then samples the IRQ line.
//
// The fetch loop runs on the batched engine: the code page is translated
// once per 4 KB crossed, the cycle cost of the line probes accumulates
// locally, and the clock is synchronized whenever the accumulated window
// would cross the next pending event deadline — so handlers fire at their
// exact instants and the simulated result is bit-identical to the scalar
// per-line loop (execScalar, kept as the reference path).
func (e *ExecContext) Exec(n int) {
	if e.Stalled || n <= 0 {
		return
	}
	if e.CPU.ScalarMemPath {
		e.execScalar(n)
		return
	}
	c := e.CPU
	clk := c.Clock
	c.stats.Instructions += uint64(n)
	clk.Advance(simclock.Cycles(n))
	// Fetch cost: one L1I access per line of 8 instructions.
	lines := (n + instrPerLine - 1) / instrPerLine
	acc := simclock.Cycles(0)
	deadline, hasDL := clk.NextDeadline()
	var pagePA physmem.Addr
	var pageVPN uint32
	pageValid := false
	l1i := c.Caches.L1I
	for i := 0; i < lines; i++ {
		va := e.CodeBase + e.cursor
		var pa physmem.Addr
		if pageValid && va>>12 == pageVPN {
			if e.iClean >= e.CodeSize && e.CodeSize%(instrPerLine*4) == 0 &&
				l1i.Epoch() == e.iEpoch && l1i.ReplacementPolicy() == cache.PolicyRandom {
				// The whole code range is proven resident (a full cyclic
				// sweep of zero-miss fetches at an unmoved residency
				// epoch), so every probe up to the next page or wrap
				// boundary is a guaranteed hit whose only scalar side
				// effect is the hit counter: bulk-charge them. The clock
				// invariant (now+acc below the next deadline) holds here,
				// so the scalar path's zero-cost Advances would fire
				// nothing in this window either.
				k := lines - i
				if toWrap := int((e.CodeSize - e.cursor) / (instrPerLine * 4)); toWrap < k {
					k = toWrap
				}
				if toPage := int((0x1000 - va&0xFFF + instrPerLine*4 - 1) / (instrPerLine * 4)); toPage < k {
					k = toPage
				}
				if k > 0 {
					l1i.BulkHits(k)
					e.cursor += uint32(k) * instrPerLine * 4
					if e.cursor >= e.CodeSize {
						e.cursor %= e.CodeSize
					}
					i += k - 1
					continue
				}
			}
			pa = pagePA + physmem.Addr(va&0xFFF)
		} else {
			// Page crossing (or coverage lost at a clock sync): drain the
			// accumulator so the scalar translate — micro-TLB scan, walk,
			// abort delivery — runs at the true clock instant.
			if acc > 0 {
				clk.Advance(acc)
				acc = 0
			}
			var ok bool
			pa, ok = e.translate(va, false, true)
			if !ok {
				return // unrecovered fetch abort: as in the scalar loop, no IRQ sample
			}
			deadline, hasDL = clk.NextDeadline() // translate may advance/schedule
			pageVPN = va >> 12
			pagePA, pageValid = e.pageCover(va, false, true)
		}
		cost := simclock.Cycles(c.Caches.FetchCost(pa))
		// Residency-streak accounting for the bulk fast path above.
		if ep := l1i.Epoch(); cost == 0 && ep == e.iEpoch {
			if e.iClean < e.CodeSize {
				e.iClean += instrPerLine * 4
			}
		} else {
			e.iEpoch, e.iClean = ep, 0
		}
		acc += cost
		if hasDL && clk.Now()+acc >= deadline {
			// An event lands inside the accumulated window: fire it at its
			// exact instant and drop every cached assumption — its handler
			// may have flushed TLBs or touched the caches.
			clk.Advance(acc)
			acc = 0
			deadline, hasDL = clk.NextDeadline()
			pageValid = false
		}
		e.advanceCursor()
	}
	if acc > 0 {
		clk.Advance(acc)
	}
	c.PollIRQ()
}

// execScalar is the reference per-line implementation of Exec. The batched
// path must stay bit-identical to it; equivalence tests and the speedup
// benchmarks run it via CPU.ScalarMemPath.
func (e *ExecContext) execScalar(n int) {
	c := e.CPU
	c.stats.Instructions += uint64(n)
	c.Clock.Advance(simclock.Cycles(n))
	lines := (n + instrPerLine - 1) / instrPerLine
	for i := 0; i < lines; i++ {
		va := e.CodeBase + e.cursor
		pa, ok := e.translate(va, false, true)
		if !ok {
			return
		}
		c.Clock.Advance(simclock.Cycles(c.Caches.FetchCost(pa)))
		e.advanceCursor()
	}
	c.PollIRQ()
}

// Touch charges one data access at va (translation + D-cache) without
// moving bytes; workloads use it to stream their working sets.
func (e *ExecContext) Touch(va uint32, write bool) {
	if e.Stalled {
		return
	}
	pa, ok := e.translate(va, write, false)
	if !ok {
		return
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, write)))
}

// TouchRange streams a [va, va+size) range at the given stride, charging
// one access per step. Used to model a workload pass over a buffer.
// It runs on the batched StreamRange engine.
func (e *ExecContext) TouchRange(va, size, stride uint32, write bool) {
	e.StreamRange(va, size, stride, write)
}

// StreamRange is the batched memory-path engine behind TouchRange: a
// streaming pass that is bit-identical in simulated results (cycle totals,
// cache/TLB state and stats, event firing order) to the scalar Touch loop
// (touchRangeScalar, kept as the reference path), but does the work in
// page/line batches:
//
//   - the page is translated once per 4 KB crossed; while the micro-TLB
//     coverage established there holds, follow-on accesses compute PA by
//     offset, exactly as the scalar path's zero-cost micro hits would;
//   - same-line accesses collapse into one cache probe plus a HitRun
//     (guaranteed hits — the probe just made the line resident);
//   - cycle cost accumulates locally and is handed to the clock in chunks
//     bounded by the next pending event deadline, so handlers still fire at
//     their exact instants; every synchronization drops the cached page
//     coverage, because a handler may flush TLBs, rewrite the DACR or
//     invalidate cache lines.
func (e *ExecContext) StreamRange(va, size, stride uint32, write bool) {
	if e.Stalled || size == 0 {
		return
	}
	if stride == 0 {
		stride = 4
	}
	if e.CPU.ScalarMemPath {
		e.touchRangeScalar(va, size, stride, write)
		return
	}
	c := e.CPU
	clk := c.Clock
	acc := simclock.Cycles(0)
	deadline, hasDL := clk.NextDeadline()
	var pagePA physmem.Addr
	var pageVPN uint32
	pageValid := false

	for off := uint32(0); off < size; off += stride {
		a := va + off
		var pa physmem.Addr
		if pageValid && a>>12 == pageVPN {
			pa = pagePA + physmem.Addr(a&0xFFF)
		} else {
			// New page (or coverage lost at a clock sync): drain the local
			// accumulator so the scalar translate runs at the true instant.
			if acc > 0 {
				clk.Advance(acc)
				acc = 0
			}
			var ok bool
			pa, ok = e.translate(a, write, false)
			if !ok {
				return // stalled, exactly where the scalar loop stops
			}
			deadline, hasDL = clk.NextDeadline() // translate may advance/schedule
			pageVPN = a >> 12
			pagePA, pageValid = e.pageCover(a, write, false)
		}
		acc += simclock.Cycles(c.Caches.DataCost(pa, write))
		if hasDL && clk.Now()+acc >= deadline {
			// An event lands inside the accumulated window: fire it at its
			// exact instant (as the scalar path's per-access Advance would)
			// and re-validate everything the handler may have changed.
			clk.Advance(acc)
			acc = 0
			deadline, hasDL = clk.NextDeadline()
			pageValid = false
			if e.Stalled {
				return
			}
			continue
		}
		// Collapse the follow-on accesses that stay inside this 32-byte
		// line: the probe above left the line resident, so the scalar path
		// would charge zero cycles and count plain hits for each.
		if stride < cache.LineSize {
			lineEnd := (a | (cache.LineSize - 1)) + 1
			if lineEnd != 0 { // guard the top-of-address-space wrap
				n := (lineEnd - 1 - a) / stride
				if rem := (size - 1 - off) / stride; rem < n {
					n = rem
				}
				if n > 0 {
					c.Caches.L1D.HitRun(pa, write, int(n))
					off += n * stride
				}
			}
		}
	}
	if acc > 0 {
		clk.Advance(acc)
	}
}

// touchRangeScalar is the reference per-access implementation of
// TouchRange/StreamRange; the batched engine must stay bit-identical to it.
func (e *ExecContext) touchRangeScalar(va, size, stride uint32, write bool) {
	for off := uint32(0); off < size; off += stride {
		e.Touch(va+off, write)
		if e.Stalled {
			return
		}
	}
}

// Load32 performs a real data load: translation, cache cost, then the bus
// access, returning the value. Guests use it for MMIO (e.g. PRR register
// groups) and for shared data that must actually flow.
func (e *ExecContext) Load32(va uint32) (uint32, error) {
	if e.Stalled {
		return 0, fmt.Errorf("cpu: %s: context stalled", e.Name)
	}
	pa, ok := e.translate(va, false, false)
	if !ok {
		return 0, fmt.Errorf("cpu: %s: unrecovered abort loading %#x", e.Name, va)
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, false)))
	return e.CPU.Bus.Read32(pa)
}

// Store32 performs a real data store.
func (e *ExecContext) Store32(va uint32, v uint32) error {
	if e.Stalled {
		return fmt.Errorf("cpu: %s: context stalled", e.Name)
	}
	pa, ok := e.translate(va, true, false)
	if !ok {
		return fmt.Errorf("cpu: %s: unrecovered abort storing %#x", e.Name, va)
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, true)))
	return e.CPU.Bus.Write32(pa, v)
}

// VFPOp charges n VFP instructions. If CP10/11 is disabled the first op
// traps UND so the kernel can lazily switch the VFP context (Table I);
// when the handler enables VFP the op proceeds.
func (e *ExecContext) VFPOp(n int) bool {
	if e.Stalled {
		return false
	}
	if !e.CPU.VFPEnabled {
		if !e.CPU.trapUndef(UndefInfo{Kind: UndefVFP}) {
			return false
		}
		if !e.CPU.VFPEnabled {
			return false
		}
	}
	e.Exec(n)
	return true
}

// ResetCursor restarts the fetch cursor (e.g. when a task restarts). The
// residency streak restarts with it: its coverage claim is tied to an
// unbroken cyclic walk.
func (e *ExecContext) ResetCursor() { e.cursor = 0; e.iClean = 0 }
