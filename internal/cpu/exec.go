package cpu

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/simclock"
	"repro/internal/tlb"
)

// instrPerLine is how many 4-byte instructions share one 32-byte I-line.
const instrPerLine = 8

// microTLBSize models the A9 side micro-TLBs (32-entry on silicon; a
// smaller model keeps main-TLB pressure visible).
const microTLBSize = 8

type microEntry struct {
	page  uint32 // VA >> 12
	tr    tlb.Translation
	valid bool
}

// ExecContext is the lens through which a piece of software — kernel
// routine, guest task, service — executes on the CPU. It charges the
// simulated clock for instruction issue, I-fetch through L1I/L2, data
// traffic through L1D/L2, and address translation through micro-TLB, main
// TLB and hardware walks. Each software component owns one ExecContext
// bound to the virtual address range its code occupies, so distinct
// components contend for cache and TLB space exactly the way the paper's
// Table III measures.
type ExecContext struct {
	CPU *CPU
	// Name labels traces and errors.
	Name string
	// CodeBase/CodeSize delimit the component's code in its address space;
	// the fetch cursor walks this range cyclically.
	CodeBase, CodeSize uint32

	cursor uint32 // byte offset of the next fetch within the code range

	gen    uint64 // CPU generation the micro-TLBs were filled under
	iMicro microEntry
	dMicro [microTLBSize]microEntry
	dNext  int

	// Stalled is set when an unrecovered abort occurred; the owner (VM or
	// kernel) decides what to do with a stalled context.
	Stalled bool
}

// NewExecContext binds a context to its code range.
func NewExecContext(c *CPU, name string, codeBase, codeSize uint32) *ExecContext {
	if codeSize == 0 {
		panic("cpu: ExecContext needs a non-empty code range")
	}
	return &ExecContext{CPU: c, Name: name, CodeBase: codeBase, CodeSize: codeSize}
}

func (e *ExecContext) checkGen() {
	if e.gen != e.CPU.generation {
		e.iMicro = microEntry{}
		for i := range e.dMicro {
			e.dMicro[i] = microEntry{}
		}
		e.gen = e.CPU.generation
	}
}

// translate resolves va, using the data micro-TLB, and returns the PA.
// Permission is rechecked even on micro hits (the micro-TLB caches
// translations, not authorization). On an abort it consults the kernel and
// retries once if the kernel fixed the mapping.
func (e *ExecContext) translate(va uint32, write, fetch bool) (physmem.Addr, bool) {
	e.checkGen()
	m := e.CPU.MMU
	if !m.Enabled {
		return physmem.Addr(va), true
	}
	page := va >> 12
	priv := e.CPU.Mode.Privileged()

	var hit *microEntry
	if fetch {
		if e.iMicro.valid && e.iMicro.page == page {
			hit = &e.iMicro
		}
	} else {
		for i := range e.dMicro {
			if e.dMicro[i].valid && e.dMicro[i].page == page {
				hit = &e.dMicro[i]
				break
			}
		}
	}
	if hit != nil {
		// micro hit: charge nothing, but recheck domain/AP.
		if okDomainAP(m, hit.tr, priv, write) {
			return hit.tr.PhysAddr(va), true
		}
		// Permission changed (e.g. DACR flip): fall through to full path so
		// the fault is generated with proper bookkeeping.
	}

	for attempt := 0; attempt < 2; attempt++ {
		pa, cost, fault := m.Translate(va, priv, write, fetch)
		e.CPU.Clock.Advance(simclock.Cycles(cost))
		if fault == nil {
			if tr, ok := m.TLB.Lookup(va, m.ASID); ok {
				ent := microEntry{page: page, tr: tr, valid: true}
				if fetch {
					e.iMicro = ent
				} else {
					e.dMicro[e.dNext] = ent
					e.dNext = (e.dNext + 1) % microTLBSize
				}
			}
			return pa, true
		}
		if !e.CPU.deliverAbort(fault) {
			e.Stalled = true
			return 0, false
		}
		e.checkGen() // kernel may have edited tables / flushed TLB
	}
	e.Stalled = true
	return 0, false
}

func okDomainAP(m *mmu.MMU, tr tlb.Translation, priv, write bool) bool {
	switch m.DomainAccess(tr.Domain) {
	case 1: // client
		switch tr.AP {
		case 1:
			return priv
		case 2:
			return priv || !write
		case 3:
			return true
		}
		return false
	case 3: // manager
		return true
	}
	return false
}

// Exec charges n abstract instructions: issue cycles plus I-side fetch
// traffic walking the component's code range, then samples the IRQ line.
func (e *ExecContext) Exec(n int) {
	if e.Stalled || n <= 0 {
		return
	}
	c := e.CPU
	c.stats.Instructions += uint64(n)
	c.Clock.Advance(simclock.Cycles(n))
	// Fetch cost: one L1I access per line of 8 instructions.
	lines := (n + instrPerLine - 1) / instrPerLine
	for i := 0; i < lines; i++ {
		va := e.CodeBase + e.cursor
		pa, ok := e.translate(va, false, true)
		if !ok {
			return
		}
		c.Clock.Advance(simclock.Cycles(c.Caches.FetchCost(pa)))
		e.cursor += instrPerLine * 4
		if e.cursor >= e.CodeSize {
			e.cursor = 0
		}
	}
	c.PollIRQ()
}

// Touch charges one data access at va (translation + D-cache) without
// moving bytes; workloads use it to stream their working sets.
func (e *ExecContext) Touch(va uint32, write bool) {
	if e.Stalled {
		return
	}
	pa, ok := e.translate(va, write, false)
	if !ok {
		return
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, write)))
}

// TouchRange streams a [va, va+size) range at the given stride, charging
// one access per step. Used to model a workload pass over a buffer.
func (e *ExecContext) TouchRange(va, size, stride uint32, write bool) {
	if stride == 0 {
		stride = 4
	}
	for off := uint32(0); off < size; off += stride {
		e.Touch(va+off, write)
		if e.Stalled {
			return
		}
	}
}

// Load32 performs a real data load: translation, cache cost, then the bus
// access, returning the value. Guests use it for MMIO (e.g. PRR register
// groups) and for shared data that must actually flow.
func (e *ExecContext) Load32(va uint32) (uint32, error) {
	if e.Stalled {
		return 0, fmt.Errorf("cpu: %s: context stalled", e.Name)
	}
	pa, ok := e.translate(va, false, false)
	if !ok {
		return 0, fmt.Errorf("cpu: %s: unrecovered abort loading %#x", e.Name, va)
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, false)))
	return e.CPU.Bus.Read32(pa)
}

// Store32 performs a real data store.
func (e *ExecContext) Store32(va uint32, v uint32) error {
	if e.Stalled {
		return fmt.Errorf("cpu: %s: context stalled", e.Name)
	}
	pa, ok := e.translate(va, true, false)
	if !ok {
		return fmt.Errorf("cpu: %s: unrecovered abort storing %#x", e.Name, va)
	}
	e.CPU.Clock.Advance(simclock.Cycles(e.CPU.Caches.DataCost(pa, true)))
	return e.CPU.Bus.Write32(pa, v)
}

// VFPOp charges n VFP instructions. If CP10/11 is disabled the first op
// traps UND so the kernel can lazily switch the VFP context (Table I);
// when the handler enables VFP the op proceeds.
func (e *ExecContext) VFPOp(n int) bool {
	if e.Stalled {
		return false
	}
	if !e.CPU.VFPEnabled {
		if !e.CPU.trapUndef(UndefInfo{Kind: UndefVFP}) {
			return false
		}
		if !e.CPU.VFPEnabled {
			return false
		}
	}
	e.Exec(n)
	return true
}

// ResetCursor restarts the fetch cursor (e.g. when a task restarts).
func (e *ExecContext) ResetCursor() { e.cursor = 0 }
