package cpu

import "testing"

// BenchmarkMemoryPath isolates the memory-path engine from the rest of the
// system: a workload-shaped mix of streaming data passes and instruction
// issue over a live MMU/TLB/cache stack, batched vs scalar. This is the
// engine's own speedup, free of the Amdahl ceiling the full-system
// benchmark (BenchmarkSimThroughput at the repo root) runs into from the
// real codec arithmetic the workloads execute.
func BenchmarkMemoryPath(b *testing.B) {
	for _, scalar := range []bool{false, true} {
		name := "batched"
		if scalar {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			r := newEquivRig(scalar)
			// A guest-task-sized code range (8 KB, as the experiment
			// systems configure): it fits the 32 KB L1I, which is what
			// lets the batched engine's residency proof engage — the same
			// regime the Table III workload tasks run in.
			ctx := NewExecContext(r.cpu, "task", equivCodeVA, 8<<10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One GSM-ish step: stream in, crunch, stream out.
				ctx.StreamRange(equivDataVA+uint32(i%32)*1024, 8<<10, 8, false)
				ctx.Exec(5500)
				ctx.StreamRange(equivDataVA+40<<10, 2<<10, 8, true)
			}
			b.ReportMetric(float64(r.clock.Now())/float64(b.N), "sim_cycles/op")
		})
	}
}
