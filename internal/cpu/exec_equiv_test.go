package cpu

import (
	"fmt"
	"testing"

	"repro/internal/gic"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// The batched memory-path engine (StreamRange, batched Exec) must be
// bit-identical to the scalar reference path in every observable simulated
// quantity: the clock, CPU/cache/TLB/MMU stats, the fetch cursor, abort
// behaviour, and — crucially — the instants and order at which clock events
// fire while a batch is in flight. These tests drive both paths with
// identical randomized traces on two identically-built machines and compare
// after every operation.

// equivRig is one machine of an equivalence pair.
type equivRig struct {
	cpu   *CPU
	clock *simclock.Clock
	pt    *mmu.PageTable
	alloc *mmu.FrameAllocator
	ctx   *ExecContext // the "guest" context the trace drives
	kctx  *ExecContext // a second context the abort handler charges work on
	log   []string     // event/abort observations with their exact instants
}

const (
	equivCodeVA = 0x0001_0000
	equivDataVA = 0x0010_0000
	equivSectVA = 0x0080_0000 // covered by a 1 MB section entry
	equivLazyVA = 0x0200_0000 // unmapped until the abort handler demand-maps
)

func newEquivRig(scalar bool) *equivRig {
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	c := New(clock, bus, g)
	c.ScalarMemPath = scalar
	alloc := mmu.NewFrameAllocator(physmem.DDRBase+8<<20, 24<<20)
	pt := mmu.NewPageTable(bus, alloc)
	for i := uint32(0); i < 16; i++ {
		pt.MapPage(equivCodeVA+i<<12, physmem.DDRBase+physmem.Addr(i<<12), 1, mmu.APFull)
	}
	for i := uint32(0); i < 72; i++ {
		pt.MapPage(equivDataVA+i<<12, physmem.DDRBase+physmem.Addr(0x40_0000+i<<12), 1, mmu.APFull)
	}
	pt.MapSection(equivSectVA, physmem.DDRBase+0x60_0000, 1, mmu.APFull)
	c.CP15Write(CP15TTBR0, uint32(pt.Base))
	c.CP15Write(CP15DACR, uint32(mmu.DomainClient)<<2|uint32(mmu.DomainClient)<<(2*15))
	c.CP15Write(CP15CONTEXTIDR, 1)
	c.CP15Write(CP15SCTLR, 1)

	r := &equivRig{cpu: c, clock: clock, pt: pt, alloc: alloc}
	r.ctx = NewExecContext(c, "guest", equivCodeVA, 16<<12)
	r.kctx = NewExecContext(c, "kernel", equivCodeVA+4<<12, 40) // deliberately not a multiple of 32
	c.Vectors.DataAbort = func(f *mmu.Fault) bool {
		r.log = append(r.log, fmt.Sprintf("abort@%d va=%#x", clock.Now(), f.VA))
		if f.VA >= equivLazyVA && f.VA < equivLazyVA+64<<12 {
			// Demand-map deterministically and charge handler work on the
			// kernel context — reentrant execution inside a batch.
			r.pt.MapPage(f.VA&^0xFFF, physmem.DDRBase+physmem.Addr(0x70_0000+(f.VA>>12&0x3F)<<12), 1, mmu.APFull)
			r.kctx.Exec(40)
			return true
		}
		return false
	}
	return r
}

// event returns a handler of kind k that logs its firing instant and
// perturbs exactly the state the batched engine caches assumptions about.
func (r *equivRig) event(id int, k int) func(simclock.Cycles) {
	return func(now simclock.Cycles) {
		r.log = append(r.log, fmt.Sprintf("ev%d/%d@%d", id, k, now))
		switch k % 6 {
		case 0: // pure
		case 1: // TLB flush + generation bump: drops micro-TLB coverage
			r.cpu.TLB.FlushAll()
			r.cpu.bumpGeneration()
		case 2: // invalidate L1D mid-stream: collapsed "guaranteed hits" must re-probe
			r.cpu.Caches.L1D.InvalidateAll()
		case 3: // invalidate L1I mid-fetch
			r.cpu.Caches.L1I.InvalidateAll()
		case 4: // DACR rewrite (manager for domain 1): permission path changes
			r.cpu.MMU.SetDACR(uint32(mmu.DomainManager)<<2 | uint32(mmu.DomainClient)<<(2*15))
		case 5: // restore client DACR
			r.cpu.MMU.SetDACR(uint32(mmu.DomainClient)<<2 | uint32(mmu.DomainClient)<<(2*15))
		}
	}
}

// snapshot captures every observable simulated quantity.
func (r *equivRig) snapshot() string {
	c := r.cpu
	return fmt.Sprintf("now=%d cpu=%+v l1i=%+v l1d=%+v l2=%+v tlb=%+v walks=%+v cursor=%d/%d stalled=%v/%v resident=%d/%d/%d/%d",
		r.clock.Now(), c.Stats(), c.Caches.L1I.Stats(), c.Caches.L1D.Stats(), c.Caches.L2.Stats(),
		c.TLB.Stats(), c.MMU.Stats(), r.ctx.cursor, r.kctx.cursor, r.ctx.Stalled, r.kctx.Stalled,
		c.Caches.L1I.ResidentLines(), c.Caches.L1D.ResidentLines(), c.Caches.L2.ResidentLines(), c.TLB.Resident())
}

type xorshift struct{ s uint32 }

func (x *xorshift) next() uint32 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 17
	x.s ^= x.s << 5
	return x.s
}

// applyOp drives one pseudo-random operation, identically derived on both
// machines from the shared rng stream.
func applyOp(r *equivRig, op, i int, rnd func() uint32) {
	switch op % 10 {
	case 0, 1, 2: // dense stream over mapped data (the hot TouchRange shape)
		base := equivDataVA + rnd()%64*4096
		size := 64 + rnd()%(16<<10)
		strides := [...]uint32{1, 2, 4, 8, 8, 8, 12, 16, 32, 40, 64, 100}
		r.ctx.TouchRange(base, size, strides[rnd()%uint32(len(strides))], rnd()%3 == 0)
	case 3: // stream crossing into the 1 MB section mapping
		r.ctx.TouchRange(equivSectVA+rnd()%0x8_0000, 2048+rnd()%8192, 8, rnd()%2 == 0)
	case 4: // demand-faulting stream: aborts + handler work mid-batch
		r.ctx.TouchRange(equivLazyVA+rnd()%48*4096, 1024+rnd()%8192, 16, rnd()%2 == 0)
	case 5: // instruction issue + fetch
		r.ctx.Exec(int(1 + rnd()%2500))
	case 6: // fetch on the misaligned-size kernel context
		r.kctx.Exec(int(1 + rnd()%500))
	case 7: // single touches
		for j := uint32(0); j < 1+rnd()%8; j++ {
			r.ctx.Touch(equivDataVA+rnd()%(72<<12), rnd()%2 == 0)
		}
	case 8: // real load/store traffic
		va := equivDataVA + rnd()%(72<<12)&^3
		if rnd()%2 == 0 {
			_ = r.ctx.Store32(va, rnd())
		} else {
			_, _ = r.ctx.Load32(va)
		}
	case 9: // schedule a state-perturbing event inside upcoming batches
		delay := simclock.Cycles(1 + rnd()%30000)
		kind := int(rnd() % 6)
		r.clock.After(delay, r.event(i, kind))
	}
}

func TestBatchedScalarEquivalence(t *testing.T) {
	seeds := []uint32{1, 0xBEEF, 0x5EED_1234, 42, 0xABCD_EF01}
	ops := 400
	if testing.Short() {
		seeds = seeds[:2]
		ops = 150
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			scalar := newEquivRig(true)
			batched := newEquivRig(false)
			rngS := &xorshift{s: seed}
			rngB := &xorshift{s: seed}
			for i := 0; i < ops; i++ {
				op := int(rngS.next())
				if int(rngB.next()) != op {
					t.Fatal("rng streams diverged")
				}
				applyOp(scalar, op, i, rngS.next)
				applyOp(batched, op, i, rngB.next)
				if s, b := scalar.snapshot(), batched.snapshot(); s != b {
					t.Fatalf("op %d (%d): state diverged\nscalar:  %s\nbatched: %s", i, op%10, s, b)
				}
			}
			// Drain pending events and compare the full observation logs:
			// every event and abort must have fired at the same instant, in
			// the same order, on both machines.
			scalar.clock.RunUntilIdle(10000)
			batched.clock.RunUntilIdle(10000)
			if s, b := scalar.snapshot(), batched.snapshot(); s != b {
				t.Fatalf("post-drain state diverged\nscalar:  %s\nbatched: %s", s, b)
			}
			if len(scalar.log) != len(batched.log) {
				t.Fatalf("log length diverged: %d vs %d", len(scalar.log), len(batched.log))
			}
			for i := range scalar.log {
				if scalar.log[i] != batched.log[i] {
					t.Fatalf("log[%d] diverged: %q vs %q", i, scalar.log[i], batched.log[i])
				}
			}
		})
	}
}

// The fetch cursor must wrap on the actual code size: a 40-byte range walks
// cyclically through 32-byte lines without overshooting (regression test for
// the cursor-wrap bug; 40 is deliberately not a multiple of 32).
func TestExecCursorWrapsOnActualCodeSize(t *testing.T) {
	c, _, _ := rig()
	c.MMU.Enabled = false
	ctx := NewExecContext(c, "t", 0x0001_0000, 40)
	want := uint32(0)
	for i := 0; i < 20; i++ {
		ctx.Exec(8) // one line per call
		want = (want + instrPerLine*4) % 40
		if ctx.cursor != want {
			t.Fatalf("after %d lines: cursor = %d, want %d (cyclic phase kept)", i+1, ctx.cursor, want)
		}
		if ctx.cursor >= 40 {
			t.Fatalf("cursor %d escaped the code range", ctx.cursor)
		}
	}
}
