package cpu

// ExecState is a value snapshot of an ExecContext's replay-relevant
// state: the fetch cursor, the micro-TLBs, and the I-side residency
// streak. All of it feeds future cycle charges, so a mid-run checkpoint
// that wants the restored timeline byte-identical to the uninterrupted
// one must round-trip it exactly. The fields are unexported on purpose —
// the checkpoint image carries the value opaquely and hands it back.
type ExecState struct {
	cursor  uint32
	gen     uint64
	iMicro  microEntry
	dMicro  [microTLBSize]microEntry
	dNext   int
	iEpoch  uint64
	iClean  uint32
	stalled bool
}

// SaveState captures the context's replay-relevant state.
func (e *ExecContext) SaveState() ExecState {
	return ExecState{
		cursor:  e.cursor,
		gen:     e.gen,
		iMicro:  e.iMicro,
		dMicro:  e.dMicro,
		dNext:   e.dNext,
		iEpoch:  e.iEpoch,
		iClean:  e.iClean,
		stalled: e.Stalled,
	}
}

// RestoreState writes a saved snapshot back. Only meaningful on the CPU
// the snapshot was taken on (micro entries are tagged with that CPU's
// translation generation; on any other CPU they simply read as stale and
// refill, which is the safe direction).
func (e *ExecContext) RestoreState(s ExecState) {
	e.cursor = s.cursor
	e.gen = s.gen
	e.iMicro = s.iMicro
	e.dMicro = s.dMicro
	e.dNext = s.dNext
	e.iEpoch = s.iEpoch
	e.iClean = s.iClean
	e.Stalled = s.stalled
}
