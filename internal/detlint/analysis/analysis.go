// Package analysis is a standard-library-only reimplementation of the
// golang.org/x/tools/go/analysis core types, shaped so the detlint
// analyzers read exactly like upstream go/analysis passes and could be
// ported to the real framework by swapping one import.
//
// The x/tools module is deliberately not a dependency: the simulator's
// go.mod has no third-party requirements and the analyzers only need the
// subset below — an Analyzer descriptor, a per-package Pass carrying the
// type-checked syntax, and positional diagnostics. Drivers (cmd/detlint
// in both standalone and `go vet -vettool` unitchecker mode, and the
// analysistest harness) construct Passes from whatever source they load.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears as the diagnostic
// category and the multichecker sub-command; Doc is the one-paragraph
// help text whose first line is the summary.
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the check to one package and reports diagnostics via
	// pass.Report/Reportf. The result value is unused by detlint's
	// drivers (no fact propagation) but kept for upstream API parity.
	Run func(*Pass) (interface{}, error)
}

// Pass is the interface between one Analyzer and one type-checked
// package, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos, categorized under the
// analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
