// Package analysistest runs a detlint analyzer over fixture packages
// and checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library only.
//
// Fixtures live under <testdata>/src/<import/path>/*.go, so a fixture
// package can carry any import path — the analyzers scope themselves by
// path suffix (example.com/internal/nova exercises the simulation-
// package scope; example.com/other/tool exercises the boundary).
// Fixture-local imports resolve from source; everything else resolves
// from the real toolchain's export data via `go list -export`.
//
// A want comment expects one or more diagnostics on its line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string is a regexp that must match
// the message of exactly one diagnostic reported on that line.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/detlint"
	"repro/internal/detlint/analysis"
	"repro/internal/detlint/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run applies the analyzer to each fixture package (an import path
// under dir/src) and reports mismatches against // want comments
// through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	r := &runner{
		t:       t,
		src:     filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		checked: make(map[string]*load.Package),
	}
	for _, path := range pkgPaths {
		pkg := r.check(path)
		if pkg == nil {
			continue
		}
		diags, err := detlint.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: running %s: %v", path, a.Name, err)
			continue
		}
		r.match(path, pkg, diags)
	}
}

type runner struct {
	t       *testing.T
	src     string
	fset    *token.FileSet
	checked map[string]*load.Package
	exports map[string]string // lazily built std/export-data table
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check type-checks one fixture package (memoized), resolving fixture
// imports from source and the rest from export data.
func (r *runner) check(path string) *load.Package {
	r.t.Helper()
	if pkg, ok := r.checked[path]; ok {
		return pkg
	}
	r.checked[path] = nil // break import cycles
	dir := filepath.Join(r.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		r.t.Errorf("fixture package %s: %v", path, err)
		return nil
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	imp := importerFunc(func(ipath string) (*types.Package, error) {
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		if _, err := os.Stat(filepath.Join(r.src, filepath.FromSlash(ipath))); err == nil {
			dep := r.check(ipath)
			if dep == nil || dep.Types == nil {
				return nil, fmt.Errorf("fixture dependency %q failed to load", ipath)
			}
			return dep.Types, nil
		}
		return r.stdImporter().Import(ipath)
	})
	pkg, err := load.Check(r.fset, path, dir, goFiles, imp)
	if err != nil {
		r.t.Errorf("fixture package %s: %v", path, err)
		return nil
	}
	r.checked[path] = pkg
	return pkg
}

// stdImporter builds (once) an export-data importer over the standard
// library, using the local toolchain's build cache.
func (r *runner) stdImporter() types.ImporterFrom {
	r.t.Helper()
	if r.exports == nil {
		listed, err := load.GoList(".", "std")
		if err != nil {
			r.t.Fatalf("listing std export data: %v", err)
		}
		r.exports = load.Exports(listed)
	}
	return load.ExportImporter(r.fset, r.exports)
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// match compares reported diagnostics to the fixture's want comments.
func (r *runner) match(path string, pkg *load.Package, diags []detlint.Diagnostic) {
	r.t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRE.FindAllString(rest, -1) {
					pat := m
					if strings.HasPrefix(pat, `"`) {
						unq, err := strconv.Unquote(pat)
						if err != nil {
							r.t.Errorf("%s:%d: bad want string %s: %v", k.file, k.line, pat, err)
							continue
						}
						pat = unq
					} else {
						pat = strings.Trim(pat, "`")
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						r.t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		file, line := splitPosition(d.Position)
		k := key{file, line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			r.t.Errorf("%s: unexpected diagnostic at %s:%d: %s", path, file, line, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				r.t.Errorf("%s: missing diagnostic at %s:%d matching %q", path, k.file, k.line, re)
			}
		}
	}
}

// splitPosition extracts base filename and line from "path:line:col".
func splitPosition(pos string) (string, int) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return pos, 0
	}
	line, _ := strconv.Atoi(parts[len(parts)-2])
	return filepath.Base(strings.Join(parts[:len(parts)-2], ":")), line
}
