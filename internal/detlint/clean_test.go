package detlint_test

import (
	"testing"

	"repro/internal/detlint"
)

// TestTreeClean runs the full analyzer suite over the repository and
// requires zero findings: every map range is sorted or justified, every
// host-clock read is annotated, every status dispatch is exhaustive,
// and the trace emit path honors the writer discipline. A finding here
// means a change landed without running detlint (CI runs it as a
// blocking step) or an annotation lost its justification.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	diags, err := detlint.Run("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
	if len(diags) > 0 {
		t.Errorf("detlint found %d violation(s); fix them or annotate with a justified //detlint directive", len(diags))
	}
}
