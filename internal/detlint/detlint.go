// Package detlint bundles the simulator's custom determinism, ABI and
// trace-discipline analyzers behind one registry, plus the driver logic
// shared by the standalone cmd/detlint binary, the `go vet -vettool`
// unitchecker mode, and the repo-wide cleanliness test.
//
// The invariants encoded here exist because their violations happened:
// PR 4 chased a scenario-checksum divergence to vGIC distributor
// programming that iterated a Go map; PR 7 found measure.Set.String()
// reading maps unlocked and unsorted; PR 8 added ABI statuses that only
// a dynamic test kept in sync with the StatusName table. detlint turns
// each of those archaeology sessions into a `go vet` failure.
package detlint

import (
	"fmt"
	"sort"

	"repro/internal/detlint/analysis"
	"repro/internal/detlint/exhauststatus"
	"repro/internal/detlint/load"
	"repro/internal/detlint/nohosttime"
	"repro/internal/detlint/nomaprange"
	"repro/internal/detlint/tracewriter"
)

// Analyzers returns the full detlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhauststatus.Analyzer,
		nohosttime.Analyzer,
		nomaprange.Analyzer,
		tracewriter.Analyzer,
	}
}

// Diagnostic is one formatted finding.
type Diagnostic struct {
	Position string // file:line:col
	Category string // analyzer name
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Category, d.Message)
}

// RunPackage applies every analyzer to one loaded package.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Diagnostic{
				Position: pkg.Fset.Position(d.Pos).String(),
				Category: d.Category,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	return out, nil
}

// Run loads patterns from dir and applies the whole suite, returning
// findings sorted by position.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, Analyzers())
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Position != out[j].Position {
			return out[i].Position < out[j].Position
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
