// Package directive parses detlint's source-level escape hatches.
//
// A diagnostic is suppressed by a comment of the form
//
//	//detlint:<kind> <justification>
//
// placed either on the flagged line itself (trailing) or on the line
// directly above it. The justification is mandatory: an annotation that
// silences a determinism check without saying *why* the site is safe is
// itself a finding — the analyzers report bare annotations instead of
// honoring them. Kinds in use: "ordered" (nomaprange), "hosttime"
// (nohosttime), "partial" (exhauststatus), "tracewriter" (tracewriter).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//detlint:"

// Directive is one parsed //detlint: comment.
type Directive struct {
	Kind   string
	Reason string
	Pos    token.Pos
}

// Map indexes a package's directives by file and line.
type Map struct {
	fset *token.FileSet
	at   map[string]map[int][]Directive // filename → line → directives
}

// Collect gathers every //detlint: directive in files.
func Collect(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{fset: fset, at: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				kind, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				lines := m.at[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					m.at[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{
					Kind:   strings.TrimSpace(kind),
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return m
}

// For returns the directive of the given kind covering pos — same line
// or the line immediately above — and whether one exists.
func (m *Map) For(kind string, pos token.Pos) (Directive, bool) {
	p := m.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m.at[p.Filename][line] {
			if d.Kind == kind {
				return d, true
			}
		}
	}
	return Directive{}, false
}
