// Package exhauststatus enforces exhaustive handling of the ABI status
// domains. The status codes in internal/abi (and their client-facing
// hwtask.Reply* aliases) are an append-only enum: PR 8 added
// StatusThrottled/StatusFaulted/StatusRetry, and any dispatch that
// enumerates statuses without covering the full set silently drops new
// ones — the exact failure the dynamic TestStatusNameExhaustive guards
// against for the one statusNames table, generalized here to every
// switch and keyed table in the tree.
//
// A construct is in scope when a case expression (or composite-literal
// key) resolves to a constant of one of the status families:
//
//   - internal/abi constants named Status* (dense block bounded by
//     NumStatusCodes; StatusErr is the documented out-of-band all-ones
//     code and is excluded from the required set), and
//   - internal/hwtask constants named Reply* (the client-visible reply
//     statuses).
//
// Such a switch must list every family constant, or carry a `default`
// clause (a new status then lands somewhere visible rather than falling
// through silently), or be annotated `//detlint:partial <reason>`.
// Keyed composite literals must list every family constant as a key or
// carry the annotation.
package exhauststatus

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/internal/detlint/analysis"
	"repro/internal/detlint/directive"
)

// Analyzer is the exhauststatus pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhauststatus",
	Doc: "require switches and keyed tables over ABI status constants to cover the full status set\n\n" +
		"New statuses (like PR 8's StatusThrottled/Faulted/Retry) must never be\n" +
		"silently unhandled in clients; cover every constant, add a default, or\n" +
		"annotate //detlint:partial.",
	Run: run,
}

// family describes one status constant namespace.
type family struct {
	pathSuffix string // declaring package import-path suffix
	prefix     string // constant name prefix
	bound      string // optional dense-block bound constant (excluded, with everything >= it)
}

var families = []family{
	{pathSuffix: "internal/abi", prefix: "Status", bound: "NumStatusCodes"},
	// The kernel-side aliases: StatusErr is the out-of-band all-ones
	// code, so bounding by it keeps exactly the dense block.
	{pathSuffix: "internal/nova", prefix: "Status", bound: "StatusErr"},
	{pathSuffix: "internal/hwtask", prefix: "Reply", bound: ""},
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, dirs, n)
			case *ast.CompositeLit:
				checkLiteral(pass, dirs, n)
			}
			return true
		})
	}
	return nil, nil
}

// constOf resolves an expression to a declared named constant.
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

// familyOf returns the status family a constant belongs to, if any.
func familyOf(c *types.Const) (family, bool) {
	if c == nil || c.Pkg() == nil {
		return family{}, false
	}
	for _, fam := range families {
		if strings.HasSuffix(c.Pkg().Path(), fam.pathSuffix) &&
			strings.HasPrefix(c.Name(), fam.prefix) {
			return fam, true
		}
	}
	return family{}, false
}

// members enumerates the family's required constants in the declaring
// package, as value → name. Bounded families drop the bound constant
// and everything at or above its value (abi.StatusErr).
func members(pkg *types.Package, fam family) map[uint64]string {
	limit := ^uint64(0)
	if fam.bound != "" {
		if b, ok := pkg.Scope().Lookup(fam.bound).(*types.Const); ok {
			if v, ok := constant.Uint64Val(constant.ToInt(b.Val())); ok {
				limit = v
			}
		}
	}
	out := make(map[uint64]string)
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, fam.prefix) || name == fam.bound {
			continue
		}
		v, ok := constant.Uint64Val(constant.ToInt(c.Val()))
		if !ok || v >= limit {
			continue
		}
		// Prefer the canonical (shortest, then lexically first) name
		// when aliases share a value.
		if prev, dup := out[v]; !dup || len(name) < len(prev) || (len(name) == len(prev) && name < prev) {
			out[v] = name
		}
	}
	return out
}

// covered records the constant values present among exprs and returns
// the family + declaring package of the first status constant found.
func covered(pass *analysis.Pass, exprs []ast.Expr, into map[uint64]bool) (family, *types.Package, bool) {
	var fam family
	var pkg *types.Package
	found := false
	for _, e := range exprs {
		c := constOf(pass, e)
		if c == nil {
			continue
		}
		if v, ok := constant.Uint64Val(constant.ToInt(c.Val())); ok {
			into[v] = true
		}
		if !found {
			if f, ok := familyOf(c); ok {
				fam, pkg, found = f, c.Pkg(), true
			}
		}
	}
	return fam, pkg, found
}

func missing(req map[uint64]string, got map[uint64]bool) []string {
	var names []string
	for v, name := range req {
		if !got[v] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func checkSwitch(pass *analysis.Pass, dirs *directive.Map, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return // tagless switches dispatch on arbitrary booleans
	}
	got := make(map[uint64]bool)
	var exprs []ast.Expr
	hasDefault := false
	for _, cl := range sw.Body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		exprs = append(exprs, cc.List...)
	}
	fam, pkg, ok := covered(pass, exprs, got)
	if !ok || hasDefault {
		return
	}
	if d, ok := dirs.For("partial", sw.Pos()); ok {
		if d.Reason == "" {
			pass.Reportf(sw.Pos(), "//detlint:partial annotation needs a justification (why may these statuses be ignored here?)")
		}
		return
	}
	if miss := missing(members(pkg, fam), got); len(miss) > 0 {
		pass.Reportf(sw.Pos(), "switch on %s status values does not handle %s: add cases, a default clause, or //detlint:partial <reason>", pkg.Name(), strings.Join(miss, ", "))
	}
}

func checkLiteral(pass *analysis.Pass, dirs *directive.Map, lit *ast.CompositeLit) {
	got := make(map[uint64]bool)
	var keys []ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: not a status-keyed table
		}
		keys = append(keys, kv.Key)
	}
	fam, pkg, ok := covered(pass, keys, got)
	if !ok {
		return
	}
	if d, ok := dirs.For("partial", lit.Pos()); ok {
		if d.Reason == "" {
			pass.Reportf(lit.Pos(), "//detlint:partial annotation needs a justification (why may these statuses be absent here?)")
		}
		return
	}
	if miss := missing(members(pkg, fam), got); len(miss) > 0 {
		pass.Reportf(lit.Pos(), "status-keyed table does not cover %s: a new %s.%s* constant would render as the zero value; add entries or //detlint:partial <reason>", strings.Join(miss, ", "), pkg.Name(), fam.prefix)
	}
}
