package exhauststatus_test

import (
	"testing"

	"repro/internal/detlint/analysistest"
	"repro/internal/detlint/exhauststatus"
)

func TestExhaustStatus(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), exhauststatus.Analyzer,
		"example.com/internal/abi",  // the declaring package's own complete table: clean
		"example.com/internal/ucos", // client switches/tables: positives + escape hatches
	)
}
