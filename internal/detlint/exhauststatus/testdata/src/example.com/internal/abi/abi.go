// Fixture ABI package: a miniature of the real internal/abi status
// block. StatusThrottled plays the role of the PR 8 late addition that
// clients written earlier silently drop.
package abi

const (
	StatusOK = iota
	StatusReconfig
	StatusBusy
	StatusThrottled

	// NumStatusCodes bounds the dense block.
	NumStatusCodes
)

// StatusErr is the out-of-band all-ones code, excluded from the
// required set by the NumStatusCodes bound.
const StatusErr = ^uint32(0)

// statusNames is complete, so the keyed-table check stays silent here.
var statusNames = [NumStatusCodes]string{
	StatusOK:        "ok",
	StatusReconfig:  "reconfig",
	StatusBusy:      "busy",
	StatusThrottled: "throttled",
}

// StatusName names a status code.
func StatusName(s uint32) string {
	if s == StatusErr {
		return "err"
	}
	if s < NumStatusCodes {
		return statusNames[s]
	}
	return "unknown"
}
