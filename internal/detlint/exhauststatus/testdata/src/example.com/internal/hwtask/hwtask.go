// Fixture manager package: client-visible Reply* aliases of the ABI
// statuses, mirroring the real internal/hwtask.
package hwtask

import "example.com/internal/abi"

const (
	ReplyOK        = abi.StatusOK
	ReplyBusy      = abi.StatusBusy
	ReplyThrottled = abi.StatusThrottled
)
