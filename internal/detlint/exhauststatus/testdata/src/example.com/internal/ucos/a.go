// Fixture client package: switches and keyed tables over the status
// families, covering the historical bug class (a dispatch written
// before StatusThrottled existed) plus every escape hatch.
package ucos

import (
	"example.com/internal/abi"
	"example.com/internal/hwtask"
)

// HandleMissing is the PR 8 bug class: written before StatusThrottled
// existed, it silently drops the new status.
func HandleMissing(st uint32) string {
	switch st { // want `switch on abi status values does not handle StatusThrottled`
	case abi.StatusOK:
		return "ok"
	case abi.StatusReconfig:
		return "reconfig"
	case abi.StatusBusy:
		return "busy"
	}
	return ""
}

// HandleAll covers the full family: silent.
func HandleAll(st uint32) string {
	switch st {
	case abi.StatusOK:
		return "ok"
	case abi.StatusReconfig:
		return "reconfig"
	case abi.StatusBusy:
		return "busy"
	case abi.StatusThrottled:
		return "throttled"
	}
	return ""
}

// HandleDefault is incomplete but has a default clause, so a new status
// lands somewhere visible: silent.
func HandleDefault(st uint32) string {
	switch st {
	case abi.StatusOK:
		return "ok"
	default:
		return "other"
	}
}

// HandlePartial is incomplete by design and says why: silent.
func HandlePartial(st uint32) bool {
	//detlint:partial only the busy status gates backoff here
	switch st {
	case abi.StatusBusy:
		return true
	}
	return false
}

// HandleBare has the annotation without the mandatory reason.
func HandleBare(st uint32) bool {
	//detlint:partial
	switch st { // want `needs a justification`
	case abi.StatusBusy:
		return true
	}
	return false
}

// HandleReply exercises the Reply* family: missing ReplyThrottled.
func HandleReply(st uint32) string {
	switch st { // want `switch on hwtask status values does not handle ReplyThrottled`
	case hwtask.ReplyOK:
		return "ok"
	case hwtask.ReplyBusy:
		return "busy"
	}
	return ""
}

// names is an incomplete status-keyed table: a new constant would
// render as the zero value.
var names = [abi.NumStatusCodes]string{ // want `does not cover StatusBusy, StatusReconfig, StatusThrottled`
	abi.StatusOK: "ok",
}

// legend is incomplete by design and says why: silent.
//
//detlint:partial legend only labels the codes shown in the report
var legend = map[uint32]string{
	abi.StatusBusy: "busy",
}

// Use keeps the package-level tables referenced.
func Use() (string, string) { return names[0], legend[abi.StatusBusy] }
