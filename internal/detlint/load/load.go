// Package load turns Go package patterns into type-checked syntax for
// the detlint analyzers without depending on golang.org/x/tools.
//
// The approach is the classic two-layer split every export-data driver
// uses: `go list -export -deps -json` enumerates the build graph and
// compiles every dependency (the go build cache makes this incremental),
// then each *target* package is parsed and type-checked from source with
// an importer that resolves every import — standard library, module
// sibling, anything — from the compiler's export data files. No package
// is ever source-checked twice and no dependency source is parsed at
// all, which keeps a whole-tree run to a couple of seconds.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -deps -json` on patterns in dir and
// returns the package records in dependency order.
func GoList(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports extracts the import-path → export-data-file map from a go
// list run.
func Exports(pkgs []ListedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// ExportImporter returns a types importer that resolves packages from
// compiler export data files (the map values), as produced by
// `go list -export` or recorded in a vet config's PackageFile table.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Check parses files and type-checks them as one package with the given
// importer. Returned even on type errors (best effort) together with
// the first error.
func Check(fset *token.FileSet, path string, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{
		ImportPath: path,
		Name:       name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, firstErr
}

// Load lists patterns in dir and returns every matched (non-dependency)
// package parsed and fully type-checked. All packages share one
// FileSet so diagnostics across packages sort globally.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, Exports(listed))
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Name == "" {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", p.ImportPath)
		}
		pkg, err := Check(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// TrimTestVariant strips the " [foo.test]" suffix cmd/go appends to the
// import path of test-augmented package variants, so path-scoped
// analyzers treat the variant like the plain package.
func TrimTestVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
