// Package nohosttime forbids host-environment reads — wall-clock time,
// the process environment, and the shared math/rand global generator —
// inside the simulator's internal packages.
//
// The simulation is a pure function of (scenario spec, seed): every
// quantity that reaches simulated state or a checksummed dump must be
// derived from the simulated clock and seeded generators. `time.Now`
// smuggles the host into that function; the global `math/rand`
// functions draw from a process-wide source shared with anything else
// in the binary (and are racy across the parallel engine's shard
// goroutines); `os.Getenv` makes behavior depend on who ran the tests.
// Seeded `rand.New(rand.NewSource(seed))` generators are fine and are
// not flagged.
//
// Wall-clock *measurement* of the simulator itself (host-ms per
// simulated-ms in the bench harness) is legitimate; those few sites in
// scenario/experiments carry `//detlint:hosttime <reason>` annotations,
// which is the allowlist.
package nohosttime

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/detlint/analysis"
	"repro/internal/detlint/directive"
	"repro/internal/detlint/simscope"
)

// Analyzer is the nohosttime pass.
var Analyzer = &analysis.Analyzer{
	Name: "nohosttime",
	Doc: "forbid host time, environment and global-rand reads in simulator packages\n\n" +
		"Simulated behavior must be a pure function of spec and seed; host-clock\n" +
		"benchmark sites must be annotated //detlint:hosttime.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Internal(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := directive.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			why := banned(fn)
			if why == "" {
				return true
			}
			if d, ok := dirs.For("hosttime", sel.Pos()); ok {
				if d.Reason == "" {
					pass.Reportf(sel.Pos(), "//detlint:hosttime annotation needs a justification (what wall-clock quantity is measured here?)")
				}
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in simulator package: %s; derive it from the simulated clock/seed or annotate //detlint:hosttime <reason>", fn.Pkg().Name(), fn.Name(), why)
			return true
		})
	}
	return nil, nil
}

// banned reports why referencing fn is forbidden ("" if it is fine).
// References, not just calls, are flagged: storing time.Now in a func
// value hides the dependency without removing it.
func banned(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return "" // methods (e.g. (*rand.Rand).Intn) are seeded and fine
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "host wall-clock time is nondeterministic"
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "process environment varies by host"
		}
	case "math/rand", "math/rand/v2":
		// Constructors build seeded, locally-owned generators; every
		// other package-level function draws from the shared global
		// source.
		if !strings.HasPrefix(name, "New") {
			return "global math/rand source is process-shared and unseeded"
		}
	}
	return ""
}
