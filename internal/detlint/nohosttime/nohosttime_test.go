package nohosttime_test

import (
	"testing"

	"repro/internal/detlint/analysistest"
	"repro/internal/detlint/nohosttime"
)

func TestNoHostTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nohosttime.Analyzer,
		"example.com/internal/sim", // simulator scope: positives + seeded/annotated negatives
		"example.com/cmd/tool",     // boundary: out of scope, must be clean
	)
}
