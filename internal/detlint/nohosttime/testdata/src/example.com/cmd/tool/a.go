// Boundary fixture: example.com/cmd/tool is not an internal/* package,
// so host-clock reads are fine here (a CLI printing timestamps is
// legitimate).
package tool

import "time"

func Stamp() time.Time {
	return time.Now()
}
