// Fixture for the nohosttime analyzer: example.com/internal/sim is a
// simulator package by path suffix.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Bad smuggles the host into the simulation three ways.
func Bad() int64 {
	t := time.Now()           // want `time.Now in simulator package: host wall-clock time is nondeterministic`
	n := rand.Intn(10)        // want `rand.Intn in simulator package: global math/rand source`
	home := os.Getenv("HOME") // want `os.Getenv in simulator package: process environment varies by host`
	return t.UnixNano() + int64(n) + int64(len(home))
}

// Elapsed flags time.Since too.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in simulator package`
}

// Stored references are flagged, not just calls: hiding time.Now in a
// func value does not remove the host dependency.
var clock = time.Now // want `time.Now in simulator package`

// Good derives randomness from a seeded, locally-owned generator: the
// constructor and the method calls are both fine.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Bench is an allowlisted wall-clock measurement of the simulator
// itself: the annotation with a reason suppresses the diagnostic.
func Bench() time.Time {
	//detlint:hosttime wall-clock numerator for host-ms-per-sim-ms
	return time.Now()
}

// BareAnnotation lacks the mandatory reason.
func BareAnnotation() time.Time {
	//detlint:hosttime
	return time.Now() // want `needs a justification`
}
