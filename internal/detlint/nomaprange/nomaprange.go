// Package nomaprange flags `range` statements over maps in simulation
// packages. Go randomizes map iteration order per run, so any fold over
// a map that feeds simulated state, a checksummed dump, or a rendered
// report is a latent nondeterminism bug — exactly the class PR 4 fixed
// in the vGIC distributor (interrupt lines programmed in map order) and
// the reconfiguration prefetcher (successor tie-breaks decided by a map
// fold).
//
// Two shapes are accepted without annotation:
//
//   - ranging over anything that is not a map (the fix: keep a sorted
//     slice, or collect keys and sort before iterating), and
//   - the key-collection idiom itself — a loop whose body only appends
//     the keys to a slice that is subsequently passed to sort.* or
//     slices.Sort* in the same block. The collection order is
//     irrelevant because the sort immediately canonicalizes it.
//
// Every other map range needs `//detlint:ordered <why order cannot
// matter>` on or above the loop.
package nomaprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/detlint/analysis"
	"repro/internal/detlint/directive"
	"repro/internal/detlint/simscope"
)

// Analyzer is the nomaprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "nomaprange",
	Doc: "flag range over a map in simulation packages\n\n" +
		"Map iteration order is randomized; in packages whose state feeds the\n" +
		"checksummed scenario dump it must be sorted or proven order-independent\n" +
		"with a //detlint:ordered annotation.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Sim(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := directive.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		walkStmtLists(f, func(list []ast.Stmt, i int) {
			rs, ok := list[i].(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return
			}
			mt, ok := t.Underlying().(*types.Map)
			if !ok {
				return
			}
			if d, ok := dirs.For("ordered", rs.Pos()); ok {
				if d.Reason == "" {
					pass.Reportf(rs.Pos(), "//detlint:ordered annotation needs a justification (why is iteration order irrelevant here?)")
				}
				return
			}
			if isSortedCollect(pass, rs, list[i+1:]) {
				return
			}
			pass.Reportf(rs.Pos(), "range over map %s in simulation package %s: iteration order is nondeterministic; sort the keys first or annotate //detlint:ordered <reason>", types.TypeString(mt, qualifier(pass.Pkg)), pass.Pkg.Name())
		})
	}
	return nil, nil
}

// isSortedCollect recognizes the collect-then-sort idiom: the range
// body is nothing but appends of the loop variables to slices, and each
// such slice is later passed to a sort.*/slices.Sort* call in the same
// enclosing statement list.
func isSortedCollect(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	// Every statement must be `dst = append(dst, ...)` for a
	// plain-identifier dst.
	var dsts []types.Object
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return false
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			return false
		}
		if arg, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[arg] != pass.TypesInfo.Uses[dst] {
			return false
		}
		dsts = append(dsts, pass.TypesInfo.Uses[dst])
	}
	// Each destination must reach a sort in the rest of the block.
	for _, dst := range dsts {
		if dst == nil || !sortedLater(pass, dst, rest) {
			return false
		}
	}
	return true
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether obj appears as an argument to a sorting
// call in (or anywhere under) the statements after the loop.
func sortedLater(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				// Accept the slice itself or a slice expression of it
				// (sort.Slice(keys[1:], ...) and friends).
				e := arg
				if sl, ok := e.(*ast.SliceExpr); ok {
					e = sl.X
				}
				if id, ok := e.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
	}
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func qualifier(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// walkStmtLists visits every statement list in the file (block bodies,
// case and comm clauses) and calls fn for each statement with its list
// context, so checks can look at what follows a statement.
func walkStmtLists(f *ast.File, fn func(list []ast.Stmt, i int)) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i := range list {
			fn(list, i)
		}
		return true
	})
}
