package nomaprange_test

import (
	"testing"

	"repro/internal/detlint/analysistest"
	"repro/internal/detlint/nomaprange"
)

func TestNoMapRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nomaprange.Analyzer,
		"example.com/internal/nova", // simulation scope: positives + idioms
		"example.com/other/tool",    // boundary: out of scope, must be clean
	)
}
