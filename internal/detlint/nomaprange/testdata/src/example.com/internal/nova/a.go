// Fixture for the nomaprange analyzer: example.com/internal/nova lands
// in the simulation-package scope by path suffix.
package nova

import (
	"slices"
	"sort"
)

// Fold is the historical bug shape (PR 4's vGIC distributor): a fold
// whose result depends on iteration order feeding simulated state.
func Fold(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map map\[string\]float64 in simulation package nova`
		s += v
	}
	return s
}

// Keys is the collect-then-sort idiom: accepted without annotation.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysSlices uses the slices package sort: also accepted.
func KeysSlices(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// CollectNoSort collects keys but never sorts them: the result order is
// still nondeterministic, so it is flagged.
func CollectNoSort(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

// Register is a keyed insert: order is unobservable, and the annotation
// with a reason suppresses the diagnostic.
func Register(m map[int]string, reg func(int, string)) {
	//detlint:ordered keyed insert; registration order is unobservable
	for k, v := range m {
		reg(k, v)
	}
}

// Bare annotations are themselves a finding: the justification is the
// reviewable artifact.
func BareAnnotation(m map[int]int) int {
	n := 0
	//detlint:ordered
	for range m { // want `needs a justification`
		n++
	}
	return n
}

// SliceRange is not a map range: never flagged.
func SliceRange(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
