// Boundary fixture: example.com/other/tool is not an internal/*
// simulation package, so nomaprange must stay silent even on a raw map
// fold.
package tool

func Fold(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}
