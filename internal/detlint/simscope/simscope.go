// Package simscope decides which packages each detlint invariant
// applies to, by import path. Matching is by path *suffix* under
// internal/ rather than the literal module path, so the analyzers apply
// identically to the real tree (repro/internal/nova) and to the
// analysistest fixtures (example.com/internal/nova).
//
// The scope is inclusive by default: every single-segment internal/
// package is covered — the simulation packages whose state feeds the
// checksummed scenario dump (nova, gic, cpu, cache, tlb, mmu, reconfig,
// sched, capspace, hwtask, pl, fault, trace), the rendering layers
// whose output must be byte-stable (measure, trace's exporters,
// experiments' reports), and the harness layers (scenario, ucos, apps).
// A package added by a future PR is therefore covered before anyone
// remembers to exempt it; only the static-analysis tooling itself is
// excluded. Map iteration order in any covered package can surface as a
// checksum divergence (the PR 4 vGIC distributor bug) or an unstable
// rendering (the PR 7 measure bug).
package simscope

import "strings"

// excluded names internal/ packages outside the determinism invariants:
// only the analyzer tooling, which never touches simulated state.
var excluded = map[string]bool{
	"detlint": true,
}

// internalBase returns the path element after the last "internal/"
// segment, or "" if the path has no internal/ segment or nests deeper
// (sub-packages of internal/detlint are multi-segment and thus out of
// scope structurally).
func internalBase(path string) string {
	i := strings.LastIndex(path, "internal/")
	if i < 0 || (i > 0 && path[i-1] != '/') {
		return ""
	}
	base := path[i+len("internal/"):]
	if strings.Contains(base, "/") {
		return ""
	}
	return base
}

// Sim reports whether the import path is a simulation-state or
// rendering package (the nomaprange scope).
func Sim(path string) bool {
	base := internalBase(path)
	return base != "" && !excluded[base]
}

// Internal reports whether the import path is in the nohosttime scope:
// the same inclusive set, including the harness layers (scenario,
// experiments) where host-time use must be explicitly annotated as
// wall-clock measurement.
func Internal(path string) bool {
	return Sim(path)
}

// Trace reports whether the import path is the trace package itself
// (the tracewriter scope).
func Trace(path string) bool {
	return internalBase(path) == "trace"
}
