// Boundary fixture: a type named Ring outside internal/trace is not a
// trace ring; the discipline does not apply.
package other

import "sync"

type Ring struct {
	mu sync.Mutex
	n  int
}

func (r *Ring) Bump() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
