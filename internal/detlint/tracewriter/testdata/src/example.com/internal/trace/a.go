// Fixture trace package: methods on the ring types must be nil-safe
// and lock-free; everything else in the package is unconstrained.
package trace

import "sync"

// Ring is a writer type by name.
type Ring struct {
	buf []int
	n   int
	mu  sync.Mutex
	ch  chan int
}

// Emit guards the nil receiver before touching state: ok.
func (r *Ring) Emit(v int) {
	if r == nil {
		return
	}
	r.buf = append(r.buf, v)
}

// Len combines the nil test with further ||-conditions: ok.
func (r *Ring) Len() int {
	if r == nil || r.n == 0 {
		return 0
	}
	return r.n
}

// EmitTwice only calls further methods on the receiver, which are
// themselves checked: ok without a guard.
func (r *Ring) EmitTwice(v int) {
	r.Emit(v)
	r.Emit(v)
}

// Unsafe touches state with no guard.
func (r *Ring) Unsafe(v int) {
	r.buf = append(r.buf, v) // want `touches receiver state before a nil check`
}

// Locked takes a lock on the emit path.
func (r *Ring) Locked(v int) {
	if r == nil {
		return
	}
	r.mu.Lock() // want `calls sync\.Mutex\.Lock`
	r.buf = append(r.buf, v)
	r.mu.Unlock() // want `calls sync\.Mutex\.Unlock`
}

// Send synchronizes through a channel.
func (r *Ring) Send(v int) {
	if r == nil {
		return
	}
	r.ch <- v // want `sends on a channel`
}

// Recv blocks on a channel.
func (r *Ring) Recv() int {
	if r == nil {
		return 0
	}
	return <-r.ch // want `receives from a channel`
}

// Spawn hands the ring to another goroutine.
func (r *Ring) Spawn(v int) {
	if r == nil {
		return
	}
	go r.Emit(v) // want `starts a goroutine`
}

// Export is documented post-run-only: the annotation with a reason
// opts it out of the discipline.
//
//detlint:tracewriter post-run exporter; single caller after shutdown
func (r *Ring) Export() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.buf...)
}

// Bare annotations are themselves a finding.
//
//detlint:tracewriter
func (r *Ring) Bare() int { // want `needs a justification`
	return r.n
}

// Tracer is the other writer type; guard conditions may read state
// after the leading nil test.
type Tracer struct {
	rings []*Ring
}

// Core is the canonical accessor shape: ok.
func (t *Tracer) Core(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.rings) {
		return nil
	}
	return t.rings[i]
}

// Registry is not a writer type: locks and bare state access are fine.
type Registry struct {
	mu sync.Mutex
	n  int
}

// Inc is outside the discipline.
func (g *Registry) Inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
