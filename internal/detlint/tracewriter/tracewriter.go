// Package tracewriter enforces the PR 7 trace-ring writer discipline on
// the emit path in internal/trace: every method on the ring types
// (Ring, Tracer) must be
//
//   - nil-receiver-safe — instrumentation sites record unconditionally
//     (`k.tr.Core(i).Emit(...)` with tracing off), so a method that
//     touches receiver state must first bail on a nil receiver; and
//   - lock- and channel-free — a ring is written only by the goroutine
//     that owns its core (or the single-threaded epoch commit), which
//     is the entire reason RunParallel needs no synchronization on the
//     emit path. A lock here would hide a cross-goroutine write the
//     race detector and the checksum tests are designed to surface.
//
// A method may opt out with `//detlint:tracewriter <reason>` (for
// example, an exporter helper that is documented as post-run only),
// placed on the method declaration.
package tracewriter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/detlint/analysis"
	"repro/internal/detlint/directive"
	"repro/internal/detlint/simscope"
)

// Analyzer is the tracewriter pass.
var Analyzer = &analysis.Analyzer{
	Name: "tracewriter",
	Doc: "enforce the trace-ring writer discipline: nil-safe, lock-free emit methods\n\n" +
		"Methods on trace.Ring and trace.Tracer must guard a nil receiver before\n" +
		"touching state and must not take locks or use channels.",
	Run: run,
}

// writerTypes are the ring types whose methods form the emit path.
var writerTypes = map[string]bool{"Ring": true, "Tracer": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Trace(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := directive.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			if !writerTypes[recvTypeName(fd.Recv.List[0].Type)] {
				continue
			}
			if d, ok := dirs.For("tracewriter", fd.Pos()); ok {
				if d.Reason == "" {
					pass.Reportf(fd.Pos(), "//detlint:tracewriter annotation needs a justification (why is this method outside the writer discipline?)")
				}
				continue
			}
			checkLockFree(pass, fd)
			checkNilSafe(pass, fd)
		}
	}
	return nil, nil
}

func recvTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkLockFree reports sync primitives, channel operations and
// goroutine launches inside a writer method.
func checkLockFree(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					pass.Reportf(n.Pos(), "trace writer method %s calls sync.%s.%s: the emit path must stay lock-free (single-writer-per-ring discipline)", name, recvShort(fn), fn.Name())
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "trace writer method %s sends on a channel: the emit path must not synchronize", name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "trace writer method %s receives from a channel: the emit path must not synchronize", name)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "trace writer method %s uses select: the emit path must not synchronize", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "trace writer method %s starts a goroutine: rings are single-writer", name)
		}
		return true
	})
}

func recvShort(fn *types.Func) string {
	if r := fn.Signature().Recv(); r != nil {
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name()
		}
	}
	return "?"
}

// checkNilSafe requires that any receiver *state* access (field read or
// write, indexing, dereference) is preceded by an `if recv == nil`
// guard that returns. Calling further methods on the receiver is safe —
// the callee is checked itself.
func checkNilSafe(pass *analysis.Pass, fd *ast.FuncDecl) {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return // receiver unused or unnamed: nothing to deref
	}
	recv := pass.TypesInfo.Defs[names[0]]
	if recv == nil {
		return
	}
	for _, stmt := range fd.Body.List {
		if guardsNil(pass, stmt, recv) {
			return // everything after the guard may touch state
		}
		if pos, found := firstStateUse(pass, stmt, recv); found {
			pass.Reportf(pos, "trace writer method %s touches receiver state before a nil check: emit sites record unconditionally, so a nil %s must be a no-op (guard with `if %s == nil { return }`)", fd.Name.Name, recvTypeName(fd.Recv.List[0].Type), names[0].Name)
			return
		}
	}
}

// guardsNil reports whether stmt is `if recv == nil { ...return }`,
// possibly with further ||-conditions after the nil test.
func guardsNil(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	// Walk to the leftmost atom of a left-associative || chain.
	cond := ast.Unparen(ifs.Cond)
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = ast.Unparen(bin.X)
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		if !isNilCompare(pass, bin, recv) {
			return false
		}
		break
	}
	return terminates(ifs.Body)
}

func isNilCompare(pass *analysis.Pass, bin *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// firstStateUse finds the first field access, index or dereference of
// the receiver under n (source order).
func firstStateUse(pass *analysis.Pass, n ast.Node, recv types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRecv(n.X) {
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					pos, found = n.Pos(), true
				}
			}
		case *ast.IndexExpr:
			if isRecv(n.X) {
				pos, found = n.Pos(), true
			}
		case *ast.StarExpr:
			if isRecv(n.X) {
				pos, found = n.Pos(), true
			}
		}
		return !found
	})
	return pos, found
}
