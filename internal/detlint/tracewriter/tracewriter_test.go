package tracewriter_test

import (
	"testing"

	"repro/internal/detlint/analysistest"
	"repro/internal/detlint/tracewriter"
)

func TestTraceWriter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), tracewriter.Analyzer,
		"example.com/internal/trace", // writer types: positives + guard/annotation negatives
		"example.com/internal/other", // boundary: Ring outside internal/trace is unconstrained
	)
}
