package experiments

import (
	"testing"
)

// TestDiagnoseTable3 prints the internal statistics behind each Table III
// row so calibration work can see which mechanism moves the numbers.
func TestDiagnoseTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := testConfig(4, 10)
	cfg.QuantumMs = 33
	cfg.RequestGapTicks = 31
	cfg.Warmup = 3
	for n := 1; n <= 4; n++ {
		c := cfg
		c.Guests = n
		sys := BuildVirtSystem(c)
		probes := sys.RunToCompletion(safetyHorizon(c))
		k := sys.Kernel
		st := sys.Manager.Stats
		e := probes.Get("mgr_entry")
		sw := probes.Get("vm_switch")
		t.Logf("   entry[min=%.2f max=%.2f] switch[min=%.2f max=%.2f]",
			e.Min.Micros(), e.Max.Micros(), sw.Min.Micros(), sw.Max.Micros())
		t.Logf("guests=%d dur=%.1fms reqs=%d mgr{hit=%d reconf=%d reclaim=%d busy=%d} L1I=%.3f L1D=%.3f L2=%.3f TLB=%.4f switches=%.2fus(n=%d) entry=%.2f exit=%.2f exec=%.2f irq=%.2f",
			n, k.Clock.Now().Millis(), sys.Requests(),
			st.Hits, st.Reconfigs, st.Reclaims, st.Busy,
			k.CPU.Caches.L1I.Stats().MissRate(),
			k.CPU.Caches.L1D.Stats().MissRate(),
			k.CPU.Caches.L2.Stats().MissRate(),
			k.CPU.TLB.Stats().MissRate(),
			probes.Get("vm_switch").MeanMicros(), probes.Get("vm_switch").Count,
			probes.Get("mgr_entry").MeanMicros(),
			probes.Get("mgr_exit").MeanMicros(),
			probes.Get("mgr_exec").MeanMicros(),
			probes.Get("plirq_entry").MeanMicros(),
		)
		k.Shutdown()
	}
}
