package experiments

import (
	"fmt"
	"strings"

	"repro/internal/measure"
)

// CoreStat is one core's share of a dual-core run.
type CoreStat struct {
	ID          int
	Utilization float64 // fraction of simulated time executing PDs
	L1DMissRate float64
	TLBMissRate float64
}

// DualCoreReport holds one deployment's steady-state measurements: the
// Table III phase averages plus the topology-level counters that change
// when the Hardware Task Manager service moves to its own core.
type DualCoreReport struct {
	Cores      int
	Label      string
	Entry      float64 // HW Manager entry (µs)
	Exit       float64 // HW Manager exit (µs)
	Exec       float64 // HW Manager execution (µs)
	Total      float64 // entry + exec + exit
	Samples    uint64
	VMSwitches uint64 // world switches across all cores
	SGIsSent   uint64 // cross-core reschedule IPIs
	PerCore    []CoreStat
	// ReconfigSummary is the reconfiguration pipeline's one-line counter
	// report (PCAP transfers/errors, cache hits/misses, queue depth).
	ReconfigSummary string
}

// RunDualCoreRow measures the fixed workload of Fig. 8 on the given core
// count: guests (plus T_hw) request hardware tasks while the manager
// service runs — sharing CPU0 in the single-core deployment, pinned on
// CPU1 in the dual-core one.
func RunDualCoreRow(cfg Config, cores int) DualCoreReport {
	c := cfg
	c.Cores = cores
	sys := BuildVirtSystem(c)
	defer sys.Kernel.Shutdown()
	probes := sys.RunToCompletion(safetyHorizon(c))

	k := sys.Kernel
	rep := DualCoreReport{
		Cores:    cores,
		Label:    fmt.Sprintf("%d-core", cores),
		Entry:    probes.Get(measure.PhaseMgrEntry).MeanMicros(),
		Exit:     probes.Get(measure.PhaseMgrExit).MeanMicros(),
		Exec:     probes.Get(measure.PhaseMgrExec).MeanMicros(),
		Samples:  probes.Get(measure.PhaseMgrExec).Count,
		SGIsSent: k.GIC.Stats().SGIsSent,
	}
	rep.Total = rep.Entry + rep.Exec + rep.Exit
	if k.Reconfig != nil {
		rep.ReconfigSummary = k.Reconfig.Summary()
	}
	now := k.Clock.Now()
	for _, pd := range k.PDs {
		rep.VMSwitches += pd.Switches
	}
	for _, core := range k.Cores {
		rep.PerCore = append(rep.PerCore, CoreStat{
			ID:          core.ID,
			Utilization: core.Utilization(now),
			L1DMissRate: core.CPU.Caches.L1D.Stats().MissRate(),
			TLBMissRate: core.CPU.TLB.Stats().MissRate(),
		})
	}
	return rep
}

// DualCore is the offload comparison: the same guest workload measured on
// the paper's CPU0-only deployment and on the dual-core Zynq with the
// Hardware Task Manager partitioned onto core 1.
type DualCore struct {
	Single DualCoreReport
	Dual   DualCoreReport
	Config Config
}

// RunDualCore produces both rows.
func RunDualCore(cfg Config) DualCore {
	return DualCore{
		Single: RunDualCoreRow(cfg, 1),
		Dual:   RunDualCoreRow(cfg, 2),
		Config: cfg,
	}
}

// String renders the comparison.
func (d DualCore) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dual-core offload: HW Task Manager on its own core (%d guests)\n", d.Config.Guests)
	fmt.Fprintf(&b, "%-26s %12s %12s\n", "", d.Single.Label, d.Dual.Label)
	row := func(name string, f func(DualCoreReport) string) {
		fmt.Fprintf(&b, "%-26s %12s %12s\n", name, f(d.Single), f(d.Dual))
	}
	us := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	row("HW Manager entry (us)", func(r DualCoreReport) string { return us(r.Entry) })
	row("HW Manager exit (us)", func(r DualCoreReport) string { return us(r.Exit) })
	row("HW Manager execution (us)", func(r DualCoreReport) string { return us(r.Exec) })
	row("Total overhead (us)", func(r DualCoreReport) string { return us(r.Total) })
	row("VM switches", func(r DualCoreReport) string { return fmt.Sprintf("%d", r.VMSwitches) })
	row("Reschedule SGIs", func(r DualCoreReport) string { return fmt.Sprintf("%d", r.SGIsSent) })
	row("Samples", func(r DualCoreReport) string { return fmt.Sprintf("%d", r.Samples) })
	for _, rep := range []DualCoreReport{d.Single, d.Dual} {
		fmt.Fprintf(&b, "per-core utilization (%s): ", rep.Label)
		for _, cs := range rep.PerCore {
			fmt.Fprintf(&b, "cpu%d %.1f%%  ", cs.ID, cs.Utilization*100)
		}
		b.WriteString("\n")
	}
	for _, rep := range []DualCoreReport{d.Single, d.Dual} {
		if rep.ReconfigSummary != "" {
			fmt.Fprintf(&b, "%s: %s\n", rep.Label, rep.ReconfigSummary)
		}
	}
	return b.String()
}

// Check verifies the qualitative claims of the dual-core deployment:
// pinning the service on its own core removes the request path's world
// switches from the guests' core, so the manager entry shrinks and the
// switch count collapses, while the service core stays lightly loaded
// (it only runs request handling).
type DualCoreChecks struct {
	EntryShrinks    bool // dual entry < single entry
	FewerSwitches   bool // dual world switches < single
	SGIsFlow        bool // the dual-core run used IPIs
	ServiceCoreIdle bool // service core utilization < guest core's
	SamplesMatch    bool // both rows measured work
}

// Check runs the assertions.
func (d DualCore) Check() DualCoreChecks {
	guestU, svcU := 0.0, 0.0
	if len(d.Dual.PerCore) == 2 {
		guestU, svcU = d.Dual.PerCore[0].Utilization, d.Dual.PerCore[1].Utilization
	}
	return DualCoreChecks{
		EntryShrinks:    d.Dual.Entry < d.Single.Entry,
		FewerSwitches:   d.Dual.VMSwitches < d.Single.VMSwitches,
		SGIsFlow:        d.Dual.SGIsSent > 0 && d.Single.SGIsSent == 0,
		ServiceCoreIdle: svcU < guestU,
		SamplesMatch:    d.Single.Samples > 0 && d.Dual.Samples > 0,
	}
}

// AllHold reports whether every dual-core property holds.
func (c DualCoreChecks) AllHold() bool {
	return c.EntryShrinks && c.FewerSwitches && c.SGIsFlow && c.ServiceCoreIdle && c.SamplesMatch
}
