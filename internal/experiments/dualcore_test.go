package experiments

import (
	"strings"
	"testing"
)

func TestDualCoreOffload(t *testing.T) {
	cfg := testConfig(2, 8)
	if testing.Short() {
		cfg.Iterations = 5
	}
	d := RunDualCore(cfg)
	t.Logf("\n%s", d.String())
	checks := d.Check()
	if !checks.AllHold() {
		t.Errorf("dual-core checks failed: %+v", checks)
	}
	if len(d.Dual.PerCore) != 2 {
		t.Fatalf("dual row reports %d cores, want 2", len(d.Dual.PerCore))
	}
	// The guests' core carries the load; the service core only runs
	// request handling.
	if d.Dual.PerCore[0].Utilization < 0.5 {
		t.Errorf("guest core utilization = %.2f, want loaded", d.Dual.PerCore[0].Utilization)
	}
	s := d.String()
	for _, want := range []string{"HW Manager entry", "Reschedule SGIs", "per-core utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestDualCoreSystemCompletes(t *testing.T) {
	// The partitioned dual-core stack must finish the same workload the
	// single-core stack does (all T_hw iterations served cross-core).
	cfg := testConfig(2, 5)
	cfg.Cores = 2
	sys := BuildVirtSystem(cfg)
	defer sys.Kernel.Shutdown()
	sys.RunToCompletion(safetyHorizon(cfg))
	if !sys.AllDone() {
		t.Fatal("dual-core system did not complete its hardware-task iterations")
	}
	k := sys.Kernel
	if k.PDs[0].Core.ID != 1 {
		t.Errorf("service homed on core %d, want 1", k.PDs[0].Core.ID)
	}
	for _, pd := range k.PDs[1:] {
		if pd.Core.ID != 0 {
			t.Errorf("guest %s homed on core %d, want 0", pd.Name(), pd.Core.ID)
		}
	}
	if k.GIC.Stats().SGIsSent == 0 {
		t.Error("no cross-core SGIs in a partitioned run")
	}
}
