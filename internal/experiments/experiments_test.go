package experiments

import (
	"strings"
	"testing"
)

// testConfig is small enough for CI but large enough to exercise every
// phase probe.
func testConfig(guests, iters int) Config {
	cfg := DefaultConfig()
	cfg.Guests = guests
	cfg.Iterations = iters
	cfg.Warmup = 3
	return cfg
}

func TestNativeBaselineProducesSamples(t *testing.T) {
	row := RunTable3Native(testConfig(1, 8))
	if row.Samples < 8 {
		t.Fatalf("native samples = %d, want >= 8", row.Samples)
	}
	if row.Exec <= 0 {
		t.Error("native exec time is zero")
	}
	if row.Entry != 0 || row.Exit != 0 {
		t.Errorf("native entry/exit = %.2f/%.2f, want 0 (direct dispatch)", row.Entry, row.Exit)
	}
}

func TestVirtRowProducesAllPhases(t *testing.T) {
	row := RunTable3Row(testConfig(1, 8), 1)
	if row.Samples < 8 {
		t.Fatalf("virt samples = %d, want >= 8", row.Samples)
	}
	for name, v := range map[string]float64{
		"entry": row.Entry, "exit": row.Exit, "irq": row.IRQEntry, "exec": row.Exec,
	} {
		if v <= 0 {
			t.Errorf("phase %s = %v, want > 0", name, v)
		}
	}
	if row.Total() <= row.Exec {
		t.Error("total should exceed exec under virtualization")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		// Reduced-iteration short path: a 2-VM sweep that exercises the
		// whole Table III pipeline but asserts only the invariants that
		// are stable at low sample counts (the fine-grained growth
		// ordering needs the full run's iterations). Keeps CI fast; the
		// full sweep below runs without -short.
		cfg := testConfig(2, 5)
		cfg.Warmup = 2
		tab := RunTable3(cfg)
		t.Logf("\n%s", tab.String())
		checks := tab.Check()
		if !checks.VirtExecAboveNative || !checks.TotalWithinBound {
			t.Errorf("coarse shape checks failed: %+v", checks)
		}
		for _, r := range tab.Virt {
			if r.Samples == 0 {
				t.Errorf("row %s produced no samples", r.Label)
			}
		}
		return
	}
	cfg := testConfig(4, 10)
	tab := RunTable3(cfg)
	t.Logf("\n%s", tab.String())
	checks := tab.Check()
	if !checks.AllHold() {
		t.Errorf("shape checks failed: %+v", checks)
	}
	fig := Figure9(tab)
	t.Logf("\n%s", fig.String())
	if !fig.SlopeDecreasing() {
		t.Errorf("Fig 9 total-ratio slope not decreasing: %v", fig.Total)
	}
}

func TestTable3Rendering(t *testing.T) {
	tab := Table3{
		Native: Row{Label: "Native", Exec: 15.01},
		Virt: []Row{
			{Label: "1 OS", Entry: 0.87, Exit: 0.72, IRQEntry: 0.23, Exec: 15.46},
			{Label: "2 OS", Entry: 1.11, Exit: 0.91, IRQEntry: 0.46, Exec: 15.83},
		},
	}
	s := tab.String()
	for _, want := range []string{"HW Manager entry", "PL IRQ entry", "Total overhead", "15.01"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if got := tab.Virt[0].Total(); got < 17.0 || got > 17.1 {
		t.Errorf("1-OS total = %.2f, want 17.05 (paper row)", got)
	}
}

func TestFigure9PaperData(t *testing.T) {
	// Feed the paper's own Table III numbers through Figure9 and verify
	// the derivation reproduces the paper's plotted ratios.
	tab := Table3{
		Native: Row{Exec: 15.01},
		Virt: []Row{
			{Entry: 0.87, Exit: 0.72, IRQEntry: 0.26, Exec: 15.46},
			{Entry: 1.11, Exit: 0.91, IRQEntry: 0.46, Exec: 15.83},
			{Entry: 1.26, Exit: 0.96, IRQEntry: 0.50, Exec: 16.11},
			{Entry: 1.29, Exit: 0.99, IRQEntry: 0.51, Exec: 16.31},
		},
	}
	f := Figure9(tab)
	// Paper: entry ratio at 4 OS = 1.29/0.87 = 1.48 (plot: ~1.65 uses a
	// slightly different base; we assert the arithmetic, not the plot).
	if got := f.Entry[3]; got < 1.4 || got > 1.6 {
		t.Errorf("entry ratio @4 = %.3f, want ~1.48", got)
	}
	if got := f.Exec[0]; got < 1.02 || got > 1.04 {
		t.Errorf("exec ratio @1 = %.3f, want ~1.03", got)
	}
	if got := f.Total[3]; got < 1.2 || got > 1.3 {
		t.Errorf("total ratio @4 = %.3f, want ~1.24 (paper: 1.227)", got)
	}
	if !f.SlopeDecreasing() {
		t.Error("paper's own data should show a decreasing slope")
	}
}

func TestFootprint(t *testing.T) {
	f := CollectFootprint("../..")
	if f.Hypercalls != 25 {
		t.Errorf("hypercalls = %d, want 25", f.Hypercalls)
	}
	if f.UCOSHypercalls != 17 {
		t.Errorf("uCOS hypercalls = %d, want 17", f.UCOSHypercalls)
	}
	if f.KernelLoC == 0 {
		t.Error("kernel LoC count failed (sources should be on disk in tests)")
	}
	s := f.String()
	if !strings.Contains(s, "paper: 25") {
		t.Error("report missing paper reference")
	}
}

func TestTaskPickerDeterministicAndCoversSet(t *testing.T) {
	p1 := NewMenuPicker(DefaultTaskMenu(1), 7, false)
	p2 := NewMenuPicker(DefaultTaskMenu(1), 7, false)
	seen := map[uint16]bool{}
	for i := 0; i < 200; i++ {
		a, b := p1.Next(), p2.Next()
		if a != b {
			t.Fatal("picker not deterministic")
		}
		seen[a] = true
	}
	if len(seen) < 3 {
		t.Errorf("picker covered only %d distinct tasks", len(seen))
	}
}

func TestTaskPickerSequentialCyclesMenu(t *testing.T) {
	menu := []uint16{5, 9, 2}
	p := NewMenuPicker(menu, 0, true)
	for i := 0; i < 9; i++ {
		if got, want := p.Next(), menu[i%len(menu)]; got != want {
			t.Fatalf("sequential pick %d = %d, want %d", i, got, want)
		}
	}
}
