package experiments

import (
	"fmt"
	"strings"
)

// Fig9 is the reproduction of the paper's Figure 9: the degradation ratio
// R_D = t_virtualization / t_native of each Table III phase, as a series
// over the number of parallel guest OSes. "For HW Manager entry/exit and
// PL IRQ entry overheads, which are measured as zero when running
// natively, the performances with one virtual machine are used instead of
// t_native" (§V-B).
type Fig9 struct {
	GuestCounts []int
	Entry       []float64
	Exit        []float64
	IRQEntry    []float64
	Exec        []float64
	Total       []float64
}

// Figure9 derives the ratio series from a Table III run.
func Figure9(t Table3) Fig9 {
	f := Fig9{}
	base := func(native float64, oneVM float64) float64 {
		if native > 0 {
			return native
		}
		return oneVM
	}
	eBase := base(0, t.Virt[0].Entry)
	xBase := base(0, t.Virt[0].Exit)
	iBase := base(0, t.Virt[0].IRQEntry)
	cBase := t.Native.Exec
	tBase := t.Native.Exec // native total == native exec (no entry/exit)
	for i, r := range t.Virt {
		f.GuestCounts = append(f.GuestCounts, i+1)
		f.Entry = append(f.Entry, r.Entry/eBase)
		f.Exit = append(f.Exit, r.Exit/xBase)
		f.IRQEntry = append(f.IRQEntry, r.IRQEntry/iBase)
		f.Exec = append(f.Exec, r.Exec/cBase)
		f.Total = append(f.Total, r.Total()/tBase)
	}
	return f
}

// String renders the series plus an ASCII plot of the Total curve.
func (f Fig9) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: Performance degradation ratio of Hardware Task Manager\n")
	fmt.Fprintf(&b, "%-12s", "guests")
	for _, n := range f.GuestCounts {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteString("\n")
	series := func(name string, v []float64) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, x := range v {
			fmt.Fprintf(&b, " %6.3f", x)
		}
		b.WriteString("\n")
	}
	series("entry", f.Entry)
	series("exit", f.Exit)
	series("IRQ entry", f.IRQEntry)
	series("execution", f.Exec)
	series("Total", f.Total)
	return b.String()
}

// Efficiency returns the curve as the paper actually plots it (the data
// table embedded in the figure runs 0.878 → 0.815 for Total): the
// native-to-virtualized performance ratio t_native/t_virt, declining
// toward a constant as the worst case is approached.
func (f Fig9) Efficiency() []float64 {
	out := make([]float64, len(f.Total))
	for i, r := range f.Total {
		out[i] = 1 / r
	}
	return out
}

// SlopeDecreasing reports the paper's qualitative finding: "the ratios
// are declining with the OS number, while the trend is slowing down,
// indicating that the system is getting a constant overhead" — the Total
// ratio's per-VM increments shrink (with a small tolerance for sampling
// noise).
func (f Fig9) SlopeDecreasing() bool {
	if len(f.Total) < 3 {
		return true
	}
	prev := f.Total[1] - f.Total[0]
	for i := 2; i < len(f.Total); i++ {
		d := f.Total[i] - f.Total[i-1]
		if d > prev+0.05 {
			return false
		}
		prev = d
	}
	return true
}
