package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/nova"
)

// Footprint reports the §V-B scalar claims next to this reproduction's
// equivalents: the paper's kernel is 5,363 LoC / ~40 KB ELF with 25
// hypercalls, of which the paravirtualized uCOS-II uses 17 through a
// ~200 LoC patch.
type Footprint struct {
	Hypercalls        int
	UCOSHypercalls    int
	KernelModelBytes  int
	KernelLoC         int // Go LoC of internal/nova (the kernel model)
	PortLoC           int // Go LoC of the paravirtualized port (virt.go)
	TimeSliceMs       int
	PRRs              int
	FFTCompatiblePRRs int
}

// VirtHypercallsUsed is the count of distinct hypercalls the
// paravirtualized uCOS-II port issues (documented in ucos.VirtMachine).
const VirtHypercallsUsed = 17

// CollectFootprint gathers the scalars; root is the repository root (LoC
// counts are best-effort: zero when sources are not on disk).
func CollectFootprint(root string) Footprint {
	return Footprint{
		Hypercalls:        nova.NumHypercalls,
		UCOSHypercalls:    VirtHypercallsUsed,
		KernelModelBytes:  nova.KernelCodeSize,
		KernelLoC:         countGoLoC(filepath.Join(root, "internal", "nova")),
		PortLoC:           countFileLoC(filepath.Join(root, "internal", "ucos", "virt.go")),
		TimeSliceMs:       nova.DefaultQuantumMs,
		PRRs:              4,
		FFTCompatiblePRRs: 2,
	}
}

func countGoLoC(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		total += countFileLoC(filepath.Join(dir, name))
	}
	return total
}

func countFileLoC(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		s := strings.TrimSpace(line)
		if s != "" && !strings.HasPrefix(s, "//") {
			n++
		}
	}
	return n
}

// String renders the footprint report with the paper's numbers inline.
func (f Footprint) String() string {
	var b strings.Builder
	b.WriteString("Footprint (paper Section V-B scalars vs this reproduction)\n")
	fmt.Fprintf(&b, "  hypercalls provided:        %d   (paper: 25)\n", f.Hypercalls)
	fmt.Fprintf(&b, "  hypercalls used by uCOS-II: %d   (paper: 17)\n", f.UCOSHypercalls)
	fmt.Fprintf(&b, "  kernel text model:          %d KB (paper ELF: ~40 KB)\n", f.KernelModelBytes>>10)
	if f.KernelLoC > 0 {
		fmt.Fprintf(&b, "  kernel implementation LoC:  %d  (paper C/asm: 5363)\n", f.KernelLoC)
	}
	if f.PortLoC > 0 {
		fmt.Fprintf(&b, "  uCOS-II port layer LoC:     %d  (paper patch: ~200)\n", f.PortLoC)
	}
	fmt.Fprintf(&b, "  guest time slice:           %d ms (paper: 33 ms)\n", f.TimeSliceMs)
	fmt.Fprintf(&b, "  PRRs:                       %d, FFT-capable: %d (paper: 4 / 2)\n", f.PRRs, f.FFTCompatiblePRRs)
	return b.String()
}
