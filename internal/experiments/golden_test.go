package experiments

import (
	"testing"

	"repro/internal/measure"
	"repro/internal/simclock"
)

// probeKey is one probe's full aggregate identity (count, total, min, max)
// so two runs can be compared sample-for-sample.
type probeKey struct {
	Count           uint64
	Total, Min, Max simclock.Cycles
}

func probeDigest(t *testing.T, s *measure.Set) map[string]probeKey {
	t.Helper()
	out := map[string]probeKey{}
	for _, ph := range []string{
		measure.PhaseMgrEntry, measure.PhaseMgrExit, measure.PhaseMgrExec,
		measure.PhasePLIRQEntry, measure.PhaseVMSwitch,
	} {
		p := s.Get(ph)
		out[ph] = probeKey{Count: p.Count, Total: p.Total, Min: p.Min, Max: p.Max}
	}
	return out
}

// Two full RunTable3Row runs from identical configurations must be
// bit-identical: same probe counts, same cycle totals, same extremes.
// This is the golden determinism guarantee the batched memory path must
// not break — the simulation derives everything from the cycle clock,
// never from host state.
func TestGoldenTable3RowDeterminism(t *testing.T) {
	cfg := testConfig(2, 6)
	cfg.Warmup = 2

	run := func() (Row, map[string]probeKey, simclock.Cycles) {
		c := cfg
		c.Guests = 2
		c.Iterations = cfg.Iterations
		if c.Iterations < 8 {
			c.Iterations = 8
		}
		sys := BuildVirtSystem(c)
		defer sys.Kernel.Shutdown()
		probes := sys.RunToCompletion(safetyHorizon(c))
		row := rowFrom("2 OS", probes)
		return row, probeDigest(t, probes), sys.Kernel.Clock.Now()
	}

	row1, probes1, end1 := run()
	row2, probes2, end2 := run()

	if end1 != end2 {
		t.Fatalf("final clock diverged across identical runs: %d vs %d", end1, end2)
	}
	if row1 != row2 {
		t.Fatalf("Table III row diverged across identical runs:\n  %+v\n  %+v", row1, row2)
	}
	for ph, p1 := range probes1 {
		if p2 := probes2[ph]; p1 != p2 {
			t.Errorf("probe %v diverged:\n  %+v\n  %+v", ph, p1, p2)
		}
	}
}
