package experiments

import (
	"fmt"
	"strings"

	"repro/internal/measure"
	"repro/internal/reconfig"
)

// LatencyRow summarizes one reconfiguration-latency distribution (µs).
type LatencyRow struct {
	N    uint64
	Mean float64
	P50  float64
	P95  float64
	Max  float64
}

func latencyRow(p *measure.Probe) LatencyRow {
	return LatencyRow{
		N:    p.Count,
		Mean: p.MeanMicros(),
		P50:  p.Percentile(50).Micros(),
		P95:  p.Percentile(95).Micros(),
		Max:  p.Max.Micros(),
	}
}

// ReconfigReport is the reconfiguration-pipeline sweep: the dual-core
// sharing workload run with the bitstream cache, PCAP request queue and
// prefetcher active, reporting hit ratio, queue pressure, and the cold
// (SD fetch + download) vs. warm (cached image) latency distributions.
type ReconfigReport struct {
	Guests, Cores int

	Cold  LatencyRow // cache miss: SD staging read + queue + PCAP
	Warm  LatencyRow // cache hit: queue + PCAP only
	QWait LatencyRow // time a ready request waited for the PCAP channel

	HitRatio  float64
	Cache     reconfig.CacheStats
	Queue     reconfig.QueueStats
	QueueMean float64
	Queued    uint64 // requests that waited instead of being rejected
	Prefetch  reconfig.PrefetchStats
	Transfers uint64
	Errors    uint64

	Summary string // the pipeline's one-line counter summary
}

// RunReconfigSweep drives the dual-core sharing scenario through the
// reconfiguration pipeline: several guests on core 0 churn through the
// shared QAM pool plus per-VM FFT stages (forcing reconfigurations and
// PCAP contention) while the manager runs on core 1. Warm-up probes are
// kept — the cold misses live there.
func RunReconfigSweep(cfg Config) ReconfigReport {
	c := cfg
	if c.Cores < 1 {
		c.Cores = 2
	}
	if c.Guests < 2 {
		c.Guests = 2
	}
	c.KeepWarmupProbes = true

	sys := BuildVirtSystem(c)
	defer sys.Kernel.Shutdown()
	k := sys.Kernel
	for _, ph := range []string{
		measure.PhaseReconfigCold, measure.PhaseReconfigWarm, measure.PhaseReconfigQWait,
	} {
		k.Probes.Get(ph).Keep = true
	}
	sys.RunToCompletion(safetyHorizon(c))

	pipe := k.Reconfig
	pipe.PublishCounters(k.Probes)
	rep := ReconfigReport{
		Guests:    c.Guests,
		Cores:     c.Cores,
		Cold:      latencyRow(k.Probes.Get(measure.PhaseReconfigCold)),
		Warm:      latencyRow(k.Probes.Get(measure.PhaseReconfigWarm)),
		QWait:     latencyRow(k.Probes.Get(measure.PhaseReconfigQWait)),
		HitRatio:  pipe.HitRatio(),
		Cache:     pipe.Cache.Stats,
		Queue:     pipe.Queue.Stats,
		QueueMean: pipe.Queue.MeanDepth(),
		Queued:    pipe.Stats.Queued,
		Prefetch:  pipe.Prefetch.Stats,
		Transfers: pipe.Fabric.PCAP.Transfers,
		Errors:    pipe.Fabric.PCAP.Errors,
		Summary:   pipe.Summary(),
	}
	return rep
}

// String renders the sweep report.
func (r ReconfigReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reconfiguration pipeline (%d guests, %d cores)\n", r.Guests, r.Cores)
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s %6s\n", "", "mean", "p50", "p95", "max", "n")
	row := func(name string, l LatencyRow) {
		fmt.Fprintf(&b, "%-26s %8.1f %8.1f %8.1f %8.1f %6d\n", name, l.Mean, l.P50, l.P95, l.Max, l.N)
	}
	row("cold reconfig (us)", r.Cold)
	row("warm reconfig (us)", r.Warm)
	row("queue wait (us)", r.QWait)
	fmt.Fprintf(&b, "cache hit ratio %.2f (hits=%d misses=%d coalesced=%d evictions=%d)\n",
		r.HitRatio, r.Cache.Hits, r.Cache.Misses, r.Cache.Coalesced, r.Cache.Evictions)
	fmt.Fprintf(&b, "queue max depth %d, mean %.2f, queued starts %d (zero rejections)\n",
		r.Queue.MaxDepth, r.QueueMean, r.Queued)
	fmt.Fprintf(&b, "prefetch issued=%d hits=%d useless=%d | pcap transfers=%d errors=%d\n",
		r.Prefetch.Issued, r.Prefetch.Hits, r.Prefetch.Useless, r.Transfers, r.Errors)
	return b.String()
}

// ReconfigChecks are the qualitative acceptance properties of the
// pipeline sweep.
type ReconfigChecks struct {
	WarmBelowCold   bool // warm p50 measurably below cold p50
	CacheHitsFlow   bool // the cache produced hits and misses
	RequestsQueued  bool // concurrent reconfigurations queued, none rejected
	TransfersHappen bool // the PCAP actually downloaded bitstreams
}

// Check runs the assertions.
func (r ReconfigReport) Check() ReconfigChecks {
	return ReconfigChecks{
		WarmBelowCold:   r.Warm.N > 0 && r.Cold.N > 0 && r.Warm.P50 < r.Cold.P50/2,
		CacheHitsFlow:   r.Cache.Hits > 0 && r.Cache.Misses > 0,
		RequestsQueued:  r.Queued > 0,
		TransfersHappen: r.Transfers > 0,
	}
}

// AllHold reports whether every property holds.
func (c ReconfigChecks) AllHold() bool {
	return c.WarmBelowCold && c.CacheHitsFlow && c.RequestsQueued && c.TransfersHappen
}

// DefaultReconfigConfig is the sweep configuration used by
// cmd/experiments: six guests with a short request gap, so concurrent
// reconfiguration requests pile onto the single PCAP channel.
func DefaultReconfigConfig() Config {
	cfg := DefaultConfig()
	cfg.Guests = 6
	cfg.Cores = 2
	cfg.Iterations = 20
	cfg.Warmup = 2
	cfg.RequestGapTicks = 5
	return cfg
}
