package experiments

import (
	"strings"
	"testing"

	"repro/internal/measure"
)

// TestReconfigSweep drives the dual-core sharing workload through the
// reconfiguration pipeline and asserts the acceptance properties: warm
// reconfigurations are measurably cheaper than cold ones, cache hits
// flow, and concurrent requests queue instead of being rejected.
func TestReconfigSweep(t *testing.T) {
	cfg := DefaultReconfigConfig()
	if testing.Short() {
		cfg.Iterations = 8
	}
	rep := RunReconfigSweep(cfg)
	t.Logf("\n%s", rep)
	checks := rep.Check()
	if !checks.AllHold() {
		t.Errorf("reconfig checks failed: %+v", checks)
	}
	if rep.Errors != 0 {
		t.Errorf("PCAP errors during sweep: %d", rep.Errors)
	}
	if !strings.Contains(rep.Summary, "cache hits=") {
		t.Errorf("summary line missing cache counters: %q", rep.Summary)
	}
}

// TestReconfigSweepTightCache forces eviction pressure (the cache holds
// only a slice of the working set) so the LRU and the history-based
// prefetcher both do real work.
func TestReconfigSweepTightCache(t *testing.T) {
	cfg := DefaultReconfigConfig()
	cfg.CacheBytes = 384 << 10
	if testing.Short() {
		cfg.Iterations = 8
	}
	rep := RunReconfigSweep(cfg)
	t.Logf("\n%s", rep)
	checks := rep.Check()
	if !checks.WarmBelowCold || !checks.TransfersHappen {
		t.Errorf("tight-cache checks failed: %+v", checks)
	}
	if rep.Cache.Evictions == 0 {
		t.Error("tight cache produced no evictions")
	}
	if rep.Prefetch.Issued == 0 {
		t.Error("prefetcher never issued a speculative fill under eviction pressure")
	}
}

// TestReconfigCountersPublished verifies the pipeline statistics land in
// the measure set (the sweep output the acceptance criteria name).
func TestReconfigCountersPublished(t *testing.T) {
	cfg := DefaultReconfigConfig()
	cfg.Guests = 2
	cfg.Iterations = 6
	sys := BuildVirtSystem(cfg)
	defer sys.Kernel.Shutdown()
	sys.RunToCompletion(safetyHorizon(cfg))
	sys.Kernel.Reconfig.PublishCounters(sys.Kernel.Probes)
	out := sys.Kernel.Probes.String()
	for _, want := range []string{
		"reconfig_cache_hits", "reconfig_cache_hit_ratio",
		"reconfig_queue_max_depth", "pcap_transfers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("measure output missing %s:\n%s", want, out)
		}
	}
	if sys.Kernel.Probes.Counter("pcap_transfers") == 0 {
		t.Error("no PCAP transfers recorded")
	}
	// The latency probes themselves live in the same set.
	if sys.Kernel.Probes.Get(measure.PhaseReconfigWarm).Count == 0 &&
		sys.Kernel.Probes.Get(measure.PhaseReconfigCold).Count == 0 {
		t.Error("no reconfiguration latency samples recorded")
	}
}
