package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/measure"
	"repro/internal/nova"
	"repro/internal/simclock"
)

// Simulator wall-clock benchmarks: how many simulated milliseconds the
// model covers per host second. Unlike every other number this package
// produces, these depend on the host machine — they measure the simulator,
// not the simulated system — and exist to track the perf trajectory of the
// memory-path engine from PR to PR via BENCH_sim.json.

// SimBenchResult is one measured configuration.
type SimBenchResult struct {
	Name string `json:"name"`
	// ScalarPath is true when the run forced the reference per-access
	// memory path instead of the batched engine.
	ScalarPath bool `json:"scalar_path"`
	// SimMs is the simulated time covered, in milliseconds.
	SimMs float64 `json:"sim_ms"`
	// HostMs is the wall-clock time that took.
	HostMs float64 `json:"host_ms"`
	// SimMsPerHostS is the headline throughput: simulated ms per host second.
	SimMsPerHostS float64 `json:"sim_ms_per_host_s"`
	// Instructions is the number of abstract instructions issued.
	Instructions uint64 `json:"sim_instructions"`
	// MIPS is simulated instructions per host second, in millions.
	MIPS float64 `json:"sim_mips"`
}

// SimBenchReport is the BENCH_sim.json payload.
type SimBenchReport struct {
	Schema    int              `json:"schema"`
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Short     bool             `json:"short"`
	Results   []SimBenchResult `json:"results"`
	// Speedups maps a configuration name to batched-over-scalar
	// sim-throughput (the acceptance metric for the batched engine).
	Speedups map[string]float64 `json:"speedups"`
	// ParallelSpeedups compares the epoch-barrier parallel engine
	// (RunParallel) against the sequential run loop on multi-core
	// scenarios — wall-clock only; the simulated results are byte-equal
	// by contract (ChecksumMatch records the verification).
	ParallelSpeedups []ParallelSpeedup `json:"parallel_speedup,omitempty"`
	// IPC tracks the portal-IPC fast path from PR to PR (simulated
	// cycles per same-core call/reply round trip).
	IPC *IPCBenchResult `json:"ipc_portal,omitempty"`
	// SnapshotForks is the clone-count sweep of the COW fork path:
	// simulated boot-vs-fork cost and the COW copy ledger per fleet size.
	SnapshotForks []SnapshotFork `json:"snapshot_fork,omitempty"`
}

// SnapshotFork is one fleet-size measurement of checkpoint/fork cloning.
// All fields are simulated (deterministic) quantities: the benchmark's
// claim is about simulated cost, not simulator speed.
type SnapshotFork struct {
	Name   string `json:"name"`
	Clones int    `json:"clones"`
	// ColdBootMs is the template's boot-to-quiescence cost; ForkMs is
	// what the whole fleet cost instead by forking through the warm pool.
	ColdBootMs float64 `json:"cold_boot_ms"`
	ForkMs     float64 `json:"fork_ms"`
	// ForkOverBoot is ForkMs/ColdBootMs — the fleet-for-one-boot ratio.
	ForkOverBoot float64 `json:"fork_over_boot"`
	// FramesShared/FramesCopied split the fleet's pages at run end:
	// still COW-shared with the image vs. privatized by write faults.
	FramesShared uint64 `json:"frames_shared"`
	FramesCopied uint64 `json:"frames_copied"`
	// CopyRate is the fraction of clone-mapped frames that were copied.
	CopyRate float64 `json:"copy_rate"`
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// HitRatio is warm-pool hits over all acquires.
	HitRatio float64 `json:"hit_ratio"`
}

// ParallelSpeedup is one scenario × shard-count comparison between the
// sequential run loop and the epoch-barrier parallel engine.
type ParallelSpeedup struct {
	Scenario string `json:"scenario"`
	Cores    int    `json:"cores"`
	Shards   int    `json:"shards"`
	// SeqHostMs/ParHostMs are best-of-reps wall times for the same spec.
	SeqHostMs float64 `json:"seq_host_ms"`
	ParHostMs float64 `json:"par_host_ms"`
	Speedup   float64 `json:"speedup"`
	// ChecksumMatch verifies the runs produced byte-identical state
	// checksums — a false here is a determinism bug, not a perf result.
	ChecksumMatch bool `json:"checksum_match"`
}

// parallelBench is wired by the scenario package (which sits above this
// one in the import graph) through RegisterParallelBench; nil when the
// binary does not link the scenario harness.
var parallelBench func(short bool) []ParallelSpeedup

// RegisterParallelBench installs the scenario-suite parallel-speedup
// measurement used by RunSimBench.
func RegisterParallelBench(f func(short bool) []ParallelSpeedup) { parallelBench = f }

// snapshotBench is wired the same way for the checkpoint/fork sweep.
var snapshotBench func(short bool) []SnapshotFork

// RegisterSnapshotBench installs the scenario-suite snapshot-fork
// measurement used by RunSimBench.
func RegisterSnapshotBench(f func(short bool) []SnapshotFork) { snapshotBench = f }

// IPCBenchResult measures the portal call/reply round trip: a client PD
// calls a server PD on the same core, the server answers with the
// merged reply+receive. SimCyclesPerRT is deterministic simulated time
// (the acceptance metric for the IPC fast path); HostNsPerRT is
// simulator speed and host-dependent.
type IPCBenchResult struct {
	Rounds         int     `json:"rounds"`
	SimCyclesPerRT float64 `json:"sim_cycles_per_rt"`
	SimUsPerRT     float64 `json:"sim_us_per_rt"`
	HostNsPerRT    float64 `json:"host_ns_per_rt"`
	// FastPathShare is the fraction of calls that took the same-core
	// synchronous handoff (expected ~1.0 in this topology).
	FastPathShare float64 `json:"fast_path_share"`
}

// pingGuest adapts a closure to nova.Guest for the IPC benchmark PDs.
type pingGuest struct {
	name string
	run  func(env *nova.Env)
}

func (g *pingGuest) Name() string           { return g.name }
func (g *pingGuest) RunSlice(env *nova.Env) { g.run(env) }

// MeasureIPCPortal runs the same-core portal call/reply ping-pong for
// the given number of rounds and reports the round-trip cost. The
// simulated numbers are bit-deterministic; only HostNsPerRT varies with
// the machine.
func MeasureIPCPortal(rounds int) IPCBenchResult {
	if rounds < 1 {
		rounds = 1
	}
	k := nova.NewKernel()
	defer k.Shutdown()
	server := k.CreatePD(nova.PDConfig{
		Name: "ipc-server", Priority: nova.PrioGuest,
		Guest: &pingGuest{"ipc-server", func(env *nova.Env) {
			word := env.Hypercall(abi.HcPortalRecv, abi.RecvBlock)
			for {
				word = env.Hypercall(abi.HcPortalRecv, abi.RecvBlock|abi.RecvReply, (word&0xFF_FFFF)+1)
			}
		}},
	})
	var sel uint32
	done := false
	client := k.CreatePD(nova.PDConfig{
		Name: "ipc-client", Priority: nova.PrioGuest,
		Guest: &pingGuest{"ipc-client", func(env *nova.Env) {
			for i := 0; i < rounds; i++ {
				env.Hypercall(abi.HcPortalCall, sel, uint32(i)&0xFF_FFFF)
			}
			done = true
			env.Hypercall(abi.HcSuspend)
		}},
	})
	s, err := k.DelegateIPC(server, client)
	if err != nil {
		panic(fmt.Sprintf("experiments: DelegateIPC: %v", err))
	}
	sel = uint32(s)

	//detlint:hosttime measures host ns per simulated IPC round trip; never enters simulated state
	start := time.Now()
	for !done {
		k.RunFor(simclock.FromMillis(10))
	}
	host := time.Since(start) //detlint:hosttime wall-clock denominator of the IPC benchmark

	p := k.Probes.Get(measure.PhaseIPCCall)
	res := IPCBenchResult{Rounds: int(p.Count)}
	if p.Count > 0 {
		res.SimCyclesPerRT = p.MeanCycles()
		res.SimUsPerRT = p.MeanMicros()
		res.HostNsPerRT = float64(host.Nanoseconds()) / float64(p.Count)
		res.FastPathShare = float64(k.IPCFastCalls()) / float64(p.Count)
	}
	return res
}

// MeasureSimThroughput boots the virtualized stack for cfg, forces the
// scalar or batched memory path on every core, runs simMs of simulated
// time and reports the wall-clock cost. The measurement is best-of-reps
// over fresh systems (plus one untimed warm-up rep) because wall-clock
// numbers on shared CI hosts are noisy; the best rep is the one least
// perturbed by the host.
func MeasureSimThroughput(name string, cfg Config, simMs float64, scalar bool, reps int) SimBenchResult {
	if reps < 1 {
		reps = 1
	}
	best := SimBenchResult{Name: name, ScalarPath: scalar}
	for rep := 0; rep <= reps; rep++ {
		sys := BuildVirtSystem(cfg)
		for _, core := range sys.Kernel.Cores {
			core.CPU.ScalarMemPath = scalar
		}
		t0 := sys.Kernel.Clock.Now()
		//detlint:hosttime measures simulator wall-clock throughput (host ms per simulated ms)
		start := time.Now()
		sys.Kernel.RunFor(simclock.FromMillis(simMs))
		hostMs := float64(time.Since(start).Nanoseconds()) / 1e6 //detlint:hosttime wall-clock numerator of the throughput benchmark
		simDelta := (sys.Kernel.Clock.Now() - t0).Millis()
		var instr uint64
		for _, core := range sys.Kernel.Cores {
			instr += core.CPU.Stats().Instructions
		}
		sys.Kernel.Shutdown()
		if rep == 0 {
			continue // warm-up: JIT-free, but pays page faults and GC growth
		}
		if hostMs <= 0 {
			continue
		}
		if tp := simDelta / hostMs * 1000; tp > best.SimMsPerHostS {
			best.SimMs = simDelta
			best.HostMs = hostMs
			best.Instructions = instr
			best.SimMsPerHostS = tp
			best.MIPS = float64(instr) / (hostMs / 1000) / 1e6
		}
	}
	return best
}

// RunSimBench measures the batched and scalar memory paths on the Table III
// 4-VM configuration and on the reconfiguration-sweep workload shape
// (4 guests, dual core, tight request gap) and returns the report.
func RunSimBench(short bool) SimBenchReport {
	simMs, reps := 250.0, 3
	if short {
		simMs, reps = 40.0, 2
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"table3_4vm", DefaultConfig()},
		{"reconfig_4vm_2core", DefaultReconfigConfig()},
	}
	rep := SimBenchReport{
		Schema:    4,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Short:     short,
		Speedups:  map[string]float64{},
	}
	for _, c := range configs {
		batched := MeasureSimThroughput(c.name, c.cfg, simMs, false, reps)
		scalar := MeasureSimThroughput(c.name, c.cfg, simMs, true, reps)
		rep.Results = append(rep.Results, batched, scalar)
		if scalar.SimMsPerHostS > 0 {
			rep.Speedups[c.name] = batched.SimMsPerHostS / scalar.SimMsPerHostS
		}
	}
	ipcRounds := 20000
	if short {
		ipcRounds = 2000
	}
	ipc := MeasureIPCPortal(ipcRounds)
	rep.IPC = &ipc
	if parallelBench != nil {
		rep.ParallelSpeedups = parallelBench(short)
	}
	if snapshotBench != nil {
		rep.SnapshotForks = snapshotBench(short)
	}
	return rep
}

// WriteJSON writes the report to path (the BENCH_sim.json artifact).
func (r SimBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders a console summary.
func (r SimBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator wall-clock benchmarks (%s, %d CPUs, short=%v)\n", r.GoVersion, r.NumCPU, r.Short)
	fmt.Fprintf(&b, "%-22s %-8s %10s %10s %14s %8s\n", "config", "path", "sim_ms", "host_ms", "sim_ms/host_s", "MIPS")
	for _, res := range r.Results {
		path := "batched"
		if res.ScalarPath {
			path = "scalar"
		}
		fmt.Fprintf(&b, "%-22s %-8s %10.1f %10.1f %14.1f %8.1f\n",
			res.Name, path, res.SimMs, res.HostMs, res.SimMsPerHostS, res.MIPS)
	}
	// Render in sorted-name order so the report is byte-stable run to
	// run (map iteration order would reshuffle the lines).
	names := make([]string, 0, len(r.Speedups))
	for name := range r.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "speedup %-22s %.2fx (batched vs scalar)\n", name, r.Speedups[name])
	}
	for _, p := range r.ParallelSpeedups {
		ok := "checksums match"
		if !p.ChecksumMatch {
			ok = "CHECKSUM MISMATCH"
		}
		fmt.Fprintf(&b, "parallel %-20s cores=%d shards=%d %.2fx (seq %.0f ms, par %.0f ms, %s)\n",
			p.Scenario, p.Cores, p.Shards, p.Speedup, p.SeqHostMs, p.ParHostMs, ok)
	}
	if r.IPC != nil {
		fmt.Fprintf(&b, "ipc_portal %d rounds: %.0f sim_cycles/rt (%.2f us), %.0f host_ns/rt, fastpath %.0f%%\n",
			r.IPC.Rounds, r.IPC.SimCyclesPerRT, r.IPC.SimUsPerRT, r.IPC.HostNsPerRT, r.IPC.FastPathShare*100)
	}
	for _, sf := range r.SnapshotForks {
		fmt.Fprintf(&b, "snapshot_fork %-18s clones=%-4d boot %.3f ms, fork %.3f ms (%.2fx boot), copy_rate %.1f%%, pool hit %.0f%%\n",
			sf.Name, sf.Clones, sf.ColdBootMs, sf.ForkMs, sf.ForkOverBoot, sf.CopyRate*100, sf.HitRatio*100)
	}
	return b.String()
}
