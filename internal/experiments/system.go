// Package experiments assembles full systems (virtualized and native) and
// regenerates every measured artifact of the paper's evaluation (§V):
// Table III (hardware-task-management overheads vs. number of guest OSes)
// and Figure 9 (degradation ratios), plus the §V-B footprint scalars.
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/hwtask"
	"repro/internal/measure"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

// Config parameterizes one evaluation run.
type Config struct {
	// Guests is the number of parallel uCOS-II VMs (paper: 1..4).
	Guests int
	// Cores is the number of simulated A9 cores (0 or 1 = the paper's
	// CPU0-only measurement setup). With 2+, the system reproduces the
	// paper's intended dual-core Zynq deployment: guest VMs partitioned
	// on core 0, the Hardware Task Manager service pinned on core 1,
	// cross-core requests travelling by SGI.
	Cores int
	// Iterations is the number of T_hw hardware-task requests per guest.
	Iterations int
	// QuantumMs is the guest time slice (paper: 33 ms).
	QuantumMs float64
	// TickMs is the guest OS tick period (paper-realistic: 1 ms).
	TickMs float64
	// RequestGapTicks is T_hw's delay between requests, in guest ticks.
	// Roughly one request per slice mirrors the paper's heavy-workload
	// regime.
	RequestGapTicks uint32
	// Warmup is the number of per-guest requests executed before the
	// probes are reset: steady-state averages, as in the paper's
	// "sufficient number of iterations".
	Warmup int
	// Seed diversifies the per-guest task-selection streams.
	Seed uint32
	// KeepWarmupProbes skips the steady-state probe reset, so samples
	// from the warm-up phase survive — the reconfiguration sweep needs
	// them because that is where the cold (SD-fetch) misses happen.
	KeepWarmupProbes bool
	// CacheBytes overrides the reconfiguration pipeline's bitstream
	// cache budget (0 keeps reconfig.DefaultConfig's). Small budgets
	// force evictions and give the prefetcher work.
	CacheBytes uint32
}

// DefaultConfig returns the configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Guests:          4,
		Iterations:      24,
		QuantumMs:       33,
		TickMs:          1,
		RequestGapTicks: 31,
		Warmup:          4,
		Seed:            1,
	}
}

// PaperCores builds the behavioural IP-core set for the paper's tasks.
func PaperCores() map[uint16]pl.Accel {
	cores := map[uint16]pl.Accel{}
	for _, id := range hwtask.FFTTaskIDs {
		cores[id] = apps.FFTCore{}
	}
	for _, id := range hwtask.QAMTaskIDs {
		cores[id] = apps.QAMCore{}
	}
	return cores
}

// DefaultTaskMenu is the deterministic stand-in for T_hw's "randomly
// selects a hardware task from the hardware task set" (§V-B). All VMs
// draw from the shared QAM pool (Fig. 8: hardware tasks are shared
// across guests — "one hardware task can be shared by any VM") plus a
// per-VM FFT stage. This reproduces the paper's two §V-B growth
// mechanisms with the right saturation: the probability that a request
// finds its task owned by another VM — forcing a client reclaim with the
// §IV-C consistency protocol — is roughly (N-1)/N, concave in N; and the
// number of distinct FFT configurations competing for the two large PRRs
// grows 1, 2, 3, 3, driving "more PCAP transfers" that likewise level
// off.
func DefaultTaskMenu(vm int) []uint16 {
	return []uint16{
		hwtask.TaskQAM4,
		hwtask.TaskQAM16,
		hwtask.TaskQAM64,
		hwtask.FFTTaskIDs[vm%3], // per-VM FFT stage
	}
}

// TaskPicker draws hardware-task IDs from a menu: pseudo-randomly
// (xorshift32 — T_hw's selection stream) or cycling the menu in order (a
// periodic sequence the reconfiguration prefetcher can learn). Shared by
// T_hw below and the scenario engine's churn drivers.
type TaskPicker struct {
	state      uint32
	menu       []uint16
	pos        int
	sequential bool
}

// NewMenuPicker builds a picker over an explicit menu.
func NewMenuPicker(menu []uint16, seed uint32, sequential bool) *TaskPicker {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	return &TaskPicker{state: seed, menu: menu, sequential: sequential}
}

// Next returns the next task ID in the stream.
func (p *TaskPicker) Next() uint16 {
	if p.sequential {
		id := p.menu[p.pos%len(p.menu)]
		p.pos++
		return id
	}
	p.state ^= p.state << 13
	p.state ^= p.state >> 17
	p.state ^= p.state << 5
	return p.menu[p.state%uint32(len(p.menu))]
}

// TaskParams returns the Run() parameters (input length and the
// core-specific parameter register value) for a paper-catalog task. The
// scenario engine's churn drivers share it with T_hw below.
func TaskParams(id uint16) (length, param uint32) {
	switch {
	case id >= hwtask.TaskFFT256 && id <= hwtask.TaskFFT8192:
		points := uint32(hwtask.FFTPoints(id))
		return points * 4, points
	default:
		return 48, uint32(hwtask.QAMOrder(id))
	}
}

// hwDriverTask is T_hw: the special guest task that exercises the
// Hardware Task Manager. It acquires a pseudo-random task, runs it once
// through its data section, and sleeps until the next request. When
// stopWhenDone is set (native baseline) it halts the OS after the last
// iteration; under virtualization it parks so the VM keeps running.
func hwDriverTask(cfg Config, vm int, done *bool, requests *int, stopWhenDone bool, onWarm func()) func(t *ucos.Task) {
	return func(t *ucos.Task) {
		picker := NewMenuPicker(DefaultTaskMenu(vm), cfg.Seed*2654435761+uint32(vm)*97, false)
		if _, ok := t.OS.M.SetupDataSection(64 << 10); !ok {
			panic("experiments: data section setup failed")
		}
		for i := 0; i < cfg.Warmup+cfg.Iterations; i++ {
			if i == cfg.Warmup && onWarm != nil {
				onWarm()
			}
			id := picker.Next()
			h, st := t.AcquireHw(id)
			if h != nil {
				length, param := TaskParams(id)
				h.Run(t, 0x1000, 0x9000, length, param, 400)
				if i >= cfg.Warmup {
					*requests++
				}
			} else if st == hwtask.ReplyBusy && i >= cfg.Warmup {
				*requests++ // busy replies are manager executions too
			}
			t.Delay(cfg.RequestGapTicks)
		}
		*done = true
		if stopWhenDone {
			t.OS.Stop()
			return
		}
		for {
			t.Delay(1000) // park; keep the VM alive
		}
	}
}

// workloadTask runs the guest's heavy workload (GSM or ADPCM by VM id):
// a dense codec pass over its live buffers plus sparse touches across its
// wider heap (lookup tables, descriptors, history), which is what
// pressures the shared TLB and L2 as more VMs run — the paper's stated
// cause for the Table III growth ("increase of miss rate of cache and
// TLB table").
func workloadTask(vm int) func(t *ucos.Task) {
	return func(t *ucos.Task) {
		bufVA := t.OS.M.TaskCodeBase(30) + 0x10_0000
		heapVA := t.OS.M.TaskCodeBase(30) + 0x20_0000
		const heapPages = 72 // ~288 KB of occasionally-touched pages per VM
		var w apps.Workload
		if vm%2 == 0 {
			w = apps.NewGSMWorkload(1, uint32(vm)+3)
		} else {
			w = apps.NewADPCMWorkload(1, uint32(vm)+5)
		}
		rng := uint32(vm)*2654435761 + 12345
		for {
			w.Step(t.Ctx, bufVA)
			for i := 0; i < 6; i++ {
				rng ^= rng << 13
				rng ^= rng >> 17
				rng ^= rng << 5
				page := rng % heapPages
				// One line per page: page-granular TLB pressure without
				// sweeping whole pages through L2.
				t.Ctx.Touch(heapVA+page*4096+(page&63)*64, i%3 == 0)
			}
			t.Exec(80)
		}
	}
}

// VirtSystem is a booted Mini-NOVA stack with n uCOS guests.
type VirtSystem struct {
	Kernel  *nova.Kernel
	Manager *hwtask.Manager
	Guests  []*ucos.Guest
	done    []bool
	reqs    []int
	warmed  int
}

// BuildVirtSystem boots the full virtualized stack of Fig. 8: Mini-NOVA,
// the PL fabric with the paper's 4 PRRs and FFT/QAM bitstream catalog,
// the Hardware Task Manager service PD, and n uCOS-II guest VMs each
// running a workload task plus T_hw. With cfg.Cores >= 2 the stack is
// partitioned: guests on core 0, the manager service on core 1.
func BuildVirtSystem(cfg Config) *VirtSystem {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	k := nova.NewKernelSMP(cores)
	quantum := simclock.FromMillis(cfg.QuantumMs)
	var svcMask, guestMask sched.CPUMask
	if cores > 1 {
		// Static partitioning (Bao-style): the service owns core 1, the
		// guests share core 0 — the paper's intended Zynq deployment.
		k.Sched = sched.NewPartitioned(cores, quantum)
		svcMask, guestMask = sched.MaskOf(1), sched.MaskOf(0)
	} else {
		k.Sched = sched.NewPrioRR(1, quantum)
	}

	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	//detlint:ordered RegisterCore is a keyed insert; registration order is unobservable
	for id, core := range PaperCores() {
		fabric.RegisterCore(id, core)
	}
	k.AttachFabric(fabric)

	if cfg.CacheBytes != 0 {
		k.Reconfig.SetCacheCapacity(cfg.CacheBytes)
	}

	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	svc := hwtask.NewService(mgr, k)
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: svc, CodeBase: nova.GuestUserBase, CodeSize: 8 << 10,
		Affinity: svcMask, StartSuspended: true,
	})
	k.RegisterHwService(svcPD)

	sys := &VirtSystem{
		Kernel:  k,
		Manager: mgr,
		done:    make([]bool, cfg.Guests),
		reqs:    make([]int, cfg.Guests),
	}
	onWarm := func() {
		sys.warmed++
		if sys.warmed == cfg.Guests && !cfg.KeepWarmupProbes {
			k.Probes.Reset() // steady state reached: measure from here
		}
	}
	for i := 0; i < cfg.Guests; i++ {
		i := i
		g := &ucos.Guest{
			GuestName: fmt.Sprintf("ucos-vm%d", i),
			Setup: func(os *ucos.OS) {
				os.TickPeriod = simclock.FromMillis(cfg.TickMs)
				os.TaskCreate("t_hw", 8, hwDriverTask(cfg, i, &sys.done[i], &sys.reqs[i], false, onWarm))
				os.TaskCreate("workload", 30, workloadTask(i))
			},
		}
		sys.Guests = append(sys.Guests, g)
		k.CreatePD(nova.PDConfig{
			Name: g.GuestName, Priority: nova.PrioGuest, Guest: g,
			Affinity: guestMask,
		})
	}
	return sys
}

// AllDone reports whether every guest's T_hw finished its iterations.
func (s *VirtSystem) AllDone() bool {
	for _, d := range s.done {
		if !d {
			return false
		}
	}
	return true
}

// Requests sums manager requests issued so far.
func (s *VirtSystem) Requests() int {
	n := 0
	for _, r := range s.reqs {
		n += r
	}
	return n
}

// RunToCompletion advances the system until all T_hw drivers finish (or
// the safety horizon passes) and returns the kernel's probe set.
func (s *VirtSystem) RunToCompletion(horizon simclock.Cycles) *measure.Set {
	start := s.Kernel.Clock.Now()
	for !s.AllDone() && s.Kernel.Clock.Now()-start < horizon {
		s.Kernel.RunFor(simclock.FromMillis(20))
	}
	return s.Kernel.Probes
}

// NativeSystem is the baseline: one native uCOS-II with the manager as a
// direct OS function (§V-B "native execution").
type NativeSystem struct {
	Machine *ucos.NativeMachine
	OS      *ucos.OS
	Probes  *measure.Set
	done    bool
	reqs    int
}

// BuildNativeSystem boots the baseline with the same two tasks.
func BuildNativeSystem(cfg Config) *NativeSystem {
	nm := ucos.NewNativeMachine(PaperCores())
	os := ucos.NewOS("native-ucos", nm)
	os.TickPeriod = simclock.FromMillis(cfg.TickMs)
	sys := &NativeSystem{Machine: nm, OS: os, Probes: nm.Probes}
	os.TaskCreate("t_hw", 8, hwDriverTask(cfg, 0, &sys.done, &sys.reqs, true, nm.Probes.Reset))
	os.TaskCreate("workload", 30, workloadTask(0))
	return sys
}

// RunToCompletion runs the baseline until T_hw finishes (the driver stops
// the OS) or the safety horizon passes.
func (s *NativeSystem) RunToCompletion(horizon simclock.Cycles) *measure.Set {
	s.OS.Deadline = s.Machine.Now() + horizon
	s.OS.Run()
	s.OS.Shutdown()
	return s.Probes
}
