package experiments

import (
	"fmt"
	"strings"

	"repro/internal/measure"
	"repro/internal/simclock"
)

// Row holds the Table III phase averages (µs) for one system variant.
type Row struct {
	Label    string
	Entry    float64 // HW Manager entry
	Exit     float64 // HW Manager exit
	IRQEntry float64 // PL IRQ entry
	Exec     float64 // HW Manager execution
	Samples  uint64
	// ReconfigSummary is the reconfiguration pipeline's counter line
	// (empty for the native baseline, which has no pipeline).
	ReconfigSummary string
}

// Total is the overall response delay: "the sum of overheads from the
// Hardware Task Manager's entry to its exit" (§V-B).
func (r Row) Total() float64 { return r.Entry + r.Exec + r.Exit }

// Table3 is the reproduction of the paper's Table III: overhead of
// hardware task management (µs) for native execution and 1..4 guests.
type Table3 struct {
	Native Row
	Virt   []Row // index i = i+1 guests
	Config Config
}

func rowFrom(label string, p *measure.Set) Row {
	return Row{
		Label:    label,
		Entry:    p.Get(measure.PhaseMgrEntry).MeanMicros(),
		Exit:     p.Get(measure.PhaseMgrExit).MeanMicros(),
		IRQEntry: p.Get(measure.PhasePLIRQEntry).MeanMicros(),
		Exec:     p.Get(measure.PhaseMgrExec).MeanMicros(),
		Samples:  p.Get(measure.PhaseMgrExec).Count,
	}
}

// safetyHorizon bounds a run that fails to converge (e.g. pathological
// configs in tests); generous relative to expected completion.
func safetyHorizon(cfg Config) simclock.Cycles {
	perIter := simclock.FromMillis(cfg.QuantumMs*float64(cfg.Guests) + 4*cfg.TickMs*float64(cfg.RequestGapTicks))
	return perIter * simclock.Cycles(cfg.Warmup+cfg.Iterations+20)
}

// RunTable3Row measures the virtualized system with nGuests VMs. The
// per-guest iteration count is scaled so every row accumulates the same
// total number of steady-state samples.
func RunTable3Row(cfg Config, nGuests int) Row {
	c := cfg
	c.Guests = nGuests
	c.Iterations = cfg.Iterations * cfg.Guests / nGuests
	if c.Iterations < 8 {
		c.Iterations = 8
	}
	sys := BuildVirtSystem(c)
	defer sys.Kernel.Shutdown()
	probes := sys.RunToCompletion(safetyHorizon(c))
	row := rowFrom(fmt.Sprintf("%d OS", nGuests), probes)
	if sys.Kernel.Reconfig != nil {
		row.ReconfigSummary = sys.Kernel.Reconfig.Summary()
	}
	return row
}

// RunTable3Native measures the baseline.
func RunTable3Native(cfg Config) Row {
	c := cfg
	c.Guests = 1
	c.Iterations = cfg.Iterations * cfg.Guests
	sys := BuildNativeSystem(c)
	probes := sys.RunToCompletion(safetyHorizon(c))
	return rowFrom("Native", probes)
}

// RunTable3 regenerates the full table.
func RunTable3(cfg Config) Table3 {
	t := Table3{Config: cfg, Native: RunTable3Native(cfg)}
	for n := 1; n <= cfg.Guests; n++ {
		t.Virt = append(t.Virt, RunTable3Row(cfg, n))
	}
	return t
}

// String renders the table in the paper's layout.
func (t Table3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Overhead of hardware task management (us)\n")
	fmt.Fprintf(&b, "%-22s %8s", "Guest OS number", "Native")
	for i := range t.Virt {
		fmt.Fprintf(&b, " %7d", i+1)
	}
	b.WriteString("\n")
	row := func(name string, native float64, pick func(Row) float64) {
		fmt.Fprintf(&b, "%-22s %8.2f", name, native)
		for _, r := range t.Virt {
			fmt.Fprintf(&b, " %7.2f", pick(r))
		}
		b.WriteString("\n")
	}
	row("HW Manager entry", 0, func(r Row) float64 { return r.Entry })
	row("HW Manager exit", 0, func(r Row) float64 { return r.Exit })
	row("PL IRQ entry", 0, func(r Row) float64 { return r.IRQEntry })
	row("HW Manager execution", t.Native.Exec, func(r Row) float64 { return r.Exec })
	row("Total overhead", t.Native.Exec, func(r Row) float64 { return r.Total() })
	fmt.Fprintf(&b, "(virt samples per row: ")
	for _, r := range t.Virt {
		fmt.Fprintf(&b, "%d ", r.Samples)
	}
	fmt.Fprintf(&b, "| native: %d)\n", t.Native.Samples)
	for _, r := range t.Virt {
		if r.ReconfigSummary != "" {
			fmt.Fprintf(&b, "%s: %s\n", r.Label, r.ReconfigSummary)
		}
	}
	return b.String()
}

// ShapeChecks verifies the qualitative properties the paper's Table III
// exhibits; the experiment harness and tests assert these rather than
// absolute microseconds (the substrate is a model, not the authors'
// silicon). IRQ entry is held to "does not shrink": in this model the
// owner VM's interrupt state is usually still warm when its accelerator
// completes, so the PL-IRQ path grows far less than the paper's 2.2x —
// see EXPERIMENTS.md for the discussion.
type ShapeChecks struct {
	EntryGrowsWithVMs   bool // entry(4) > entry(1)
	ExitGrowsWithVMs    bool // exit(4) > exit(1)
	IRQNotShrinking     bool // plirq(4) >= ~plirq(1)
	ExecGrowsWithVMs    bool // exec(4) > exec(1)
	VirtExecAboveNative bool // exec(1) > native exec
	EntryAboveExit      bool // entry path suffers more cold misses
	TotalWithinBound    bool // total(4) < 2x native (paper: ~1.24x)
}

// Check runs the shape assertions (requires >= 2 virt rows).
func (t Table3) Check() ShapeChecks {
	first, last := t.Virt[0], t.Virt[len(t.Virt)-1]
	return ShapeChecks{
		EntryGrowsWithVMs:   last.Entry > first.Entry,
		ExitGrowsWithVMs:    last.Exit > first.Exit,
		IRQNotShrinking:     last.IRQEntry >= 0.93*first.IRQEntry,
		ExecGrowsWithVMs:    last.Exec > first.Exec,
		VirtExecAboveNative: first.Exec > t.Native.Exec,
		EntryAboveExit:      last.Entry > last.Exit,
		TotalWithinBound:    last.Total() < 2*t.Native.Exec,
	}
}

// AllHold reports whether every shape property holds.
func (s ShapeChecks) AllHold() bool {
	return s.EntryGrowsWithVMs && s.ExitGrowsWithVMs && s.IRQNotShrinking &&
		s.ExecGrowsWithVMs && s.VirtExecAboveNative && s.EntryAboveExit &&
		s.TotalWithinBound
}
