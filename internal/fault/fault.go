// Package fault is the deterministic fault-plan engine: a seeded source
// of injected failures for the slow, failure-prone legs of hardware-task
// switching — SD-card bitstream fetches, serial PCAP downloads, and the
// PRR configuration step itself (§IV-B/§IV-E of the paper treat these as
// the dominant costs; real boards also make them the dominant *failure*
// sites).
//
// Determinism is the contract: every injection decision is a pure
// function of the scenario seed, the decision site, the image key, and a
// per-site occurrence counter — never host randomness and never host
// time. The reconfiguration pipeline consumes the injector exclusively
// from the manager core's goroutine, where the epoch-barrier engine
// already guarantees a deterministic operation order, so the same
// scenario produces the byte-identical fault sequence sequential vs
// parallel, shard count notwithstanding. Counters live in Stats and feed
// the scenario checksums.
package fault

import "repro/internal/simclock"

// Config is one scenario's fault plan plus the tolerance policy knobs
// the pipeline applies against it. All rates are per-mille (0..1000);
// zero everywhere means a fault-free run and a nil injector.
type Config struct {
	// Seed whitens every injection decision. Scenario specs derive it
	// from the scenario seed so fault plans are reproducible.
	Seed uint32

	// SDErrorPermille is the chance an SD staging read fails outright
	// (the fill is retried with exponential backoff, up to MaxRetries).
	SDErrorPermille uint32
	// SDStallPermille is the chance an SD read stalls: it completes, but
	// only after SDStallFactor times the modelled transfer latency.
	SDStallPermille uint32
	// SDStallFactor multiplies the fill latency on a stall (default 4).
	SDStallFactor uint32
	// CorruptPermille is the chance a *successful* SD read staged a
	// corrupt image: the cache entry is poisoned, the PCAP download from
	// it fails CRC, and the pipeline must invalidate and re-fetch.
	CorruptPermille uint32

	// PCAPCRCPermille is the chance a PCAP download fails its CRC check
	// (device signals error; pipeline retries the download).
	PCAPCRCPermille uint32
	// PCAPStallPermille is the chance a PCAP transfer hangs and must be
	// reaped by the pipeline's watchdog timeout, then re-downloaded.
	PCAPStallPermille uint32

	// PRRFaultPermille is the chance a completed download leaves the PRR
	// in a faulted configuration state (transient config fault). Repeated
	// faults quarantine the PRR.
	PRRFaultPermille uint32

	// MaxRetries bounds how many times one request's SD fill or PCAP
	// download is retried before the request fails with StatusFaulted
	// (default 3).
	MaxRetries int
	// BackoffBase is the first retry delay; attempt n waits
	// BackoffBase << (n-1) (default 50µs of cycles).
	BackoffBase simclock.Cycles
	// QuarantineAfter is how many config faults a PRR absorbs before the
	// pipeline quarantines it and placement falls back to healthy PRRs
	// (default 3).
	QuarantineAfter int
}

// Enabled reports whether the plan injects anything at all.
func (c Config) Enabled() bool {
	return c.SDErrorPermille|c.SDStallPermille|c.CorruptPermille|
		c.PCAPCRCPermille|c.PCAPStallPermille|c.PRRFaultPermille != 0
}

// withDefaults fills the policy knobs left zero.
func (c Config) withDefaults() Config {
	if c.SDStallFactor == 0 {
		c.SDStallFactor = 4
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 50 * simclock.CyclesPerMicrosecond
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	return c
}

// Decision sites. Each site draws from its own occurrence-counter
// stream so adding a draw at one site never shifts another site's
// sequence.
const (
	siteSDError = iota
	siteSDStall
	siteCorrupt
	sitePCAPCRC
	sitePCAPStall
	sitePRRFault
	numSites
)

// Stats counts injected faults by class; the scenario engine folds them
// into the canonical dump, so they are part of the determinism checksum.
type Stats struct {
	SDErrors    uint64 // SD read failures injected
	SDStalls    uint64 // SD read stalls injected
	Corruptions uint64 // poisoned staged images
	PCAPCRCs    uint64 // PCAP CRC failures injected
	PCAPStalls  uint64 // PCAP hangs injected
	PRRFaults   uint64 // transient PRR config faults injected
}

// Total returns all injected faults.
func (s Stats) Total() uint64 {
	return s.SDErrors + s.SDStalls + s.Corruptions + s.PCAPCRCs + s.PCAPStalls + s.PRRFaults
}

// Injector evaluates a Config at the pipeline's decision points. It is
// not internally synchronized: call it only from the goroutine that owns
// the reconfiguration pipeline (the manager core), the same discipline
// every other pipeline mutation already follows. A nil *Injector is a
// valid "no faults" value — every method returns the zero outcome.
type Injector struct {
	cfg   Config
	draws [numSites]uint32 // per-site occurrence counters
	Stats Stats
}

// New builds an injector for the plan; a plan that injects nothing
// returns nil so call sites pay a single pointer test.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg.withDefaults()}
}

// Config returns the (defaulted) active plan; the zero Config on nil.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}.withDefaults()
	}
	return in.cfg
}

// mix32 is a splitmix-style finalizer: full-avalanche whitening so
// neighbouring (site, key, count) triples decorrelate.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7FEB_352D
	x ^= x >> 15
	x *= 0x846C_A68B
	x ^= x >> 16
	return x
}

// roll draws site's next per-mille value for key.
func (in *Injector) roll(site int, key uint32) uint32 {
	in.draws[site]++
	h := in.cfg.Seed
	h = mix32(h ^ uint32(site)*0x9E37_79B9)
	h = mix32(h ^ key)
	h = mix32(h ^ in.draws[site]*0x85EB_CA6B)
	return h % 1000
}

func (in *Injector) hit(site int, key, permille uint32) bool {
	if permille == 0 {
		return false
	}
	return in.roll(site, key) < permille
}

// SDOutcome is one SD staging read's injected fate.
type SDOutcome struct {
	Err     bool // read fails; retry with backoff
	Stall   bool // read completes after StallFactor× the normal latency
	Corrupt bool // read succeeds but the staged image is poisoned
}

// SDFill decides the fate of one SD staging read of image key.
func (in *Injector) SDFill(key uint32) SDOutcome {
	if in == nil {
		return SDOutcome{}
	}
	var o SDOutcome
	if in.hit(siteSDError, key, in.cfg.SDErrorPermille) {
		o.Err = true
		in.Stats.SDErrors++
		return o // a failed read neither stalls nor stages anything
	}
	if in.hit(siteSDStall, key, in.cfg.SDStallPermille) {
		o.Stall = true
		in.Stats.SDStalls++
	}
	if in.hit(siteCorrupt, key, in.cfg.CorruptPermille) {
		o.Corrupt = true
		in.Stats.Corruptions++
	}
	return o
}

// PCAPOutcome is one PCAP download's injected fate.
type PCAPOutcome struct {
	CRC   bool // device reports a CRC failure
	Stall bool // transfer hangs; the watchdog must reap it
}

// PCAPStart decides the fate of one PCAP download of image key into prr.
func (in *Injector) PCAPStart(key uint32, prr int) PCAPOutcome {
	if in == nil {
		return PCAPOutcome{}
	}
	k := key ^ uint32(prr)<<24
	var o PCAPOutcome
	if in.hit(sitePCAPCRC, k, in.cfg.PCAPCRCPermille) {
		o.CRC = true
		in.Stats.PCAPCRCs++
		return o
	}
	if in.hit(sitePCAPStall, k, in.cfg.PCAPStallPermille) {
		o.Stall = true
		in.Stats.PCAPStalls++
	}
	return o
}

// PRRConfig decides whether a completed download leaves prr with a
// transient configuration fault.
func (in *Injector) PRRConfig(prr int) bool {
	if in == nil {
		return false
	}
	if in.hit(sitePRRFault, uint32(prr), in.cfg.PRRFaultPermille) {
		in.Stats.PRRFaults++
		return true
	}
	return false
}
