package fault

import (
	"testing"

	"repro/internal/simclock"
)

// drive pulls a fixed decision sequence out of an injector and returns
// the outcomes plus final stats — the replay unit the determinism tests
// compare.
func drive(in *Injector) ([]SDOutcome, []PCAPOutcome, []bool, Stats) {
	var sd []SDOutcome
	var pc []PCAPOutcome
	var prr []bool
	for i := 0; i < 400; i++ {
		key := uint32(i%7) * 0x1000
		sd = append(sd, in.SDFill(key))
		pc = append(pc, in.PCAPStart(key, i%4))
		prr = append(prr, in.PRRConfig(i%4))
	}
	return sd, pc, prr, in.Stats
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, SDErrorPermille: 80, SDStallPermille: 60,
		CorruptPermille: 50, PCAPCRCPermille: 90, PCAPStallPermille: 40, PRRFaultPermille: 70}
	sd1, pc1, prr1, st1 := drive(New(cfg))
	sd2, pc2, prr2, st2 := drive(New(cfg))
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	for i := range sd1 {
		if sd1[i] != sd2[i] || pc1[i] != pc2[i] || prr1[i] != prr2[i] {
			t.Fatalf("decision %d diverged between identical injectors", i)
		}
	}
	if st1.Total() == 0 {
		t.Fatal("plan with nonzero rates injected nothing over 400 draws")
	}
	// A different seed must produce a different decision stream.
	_, _, _, st3 := drive(New(Config{Seed: 43, SDErrorPermille: 80, SDStallPermille: 60,
		CorruptPermille: 50, PCAPCRCPermille: 90, PCAPStallPermille: 40, PRRFaultPermille: 70}))
	if st3 == st1 {
		t.Errorf("seeds 42 and 43 produced identical stats %+v — whitener suspect", st1)
	}
}

func TestInjectorRates(t *testing.T) {
	// 200‰ over 4000 draws should land within a loose band of 800.
	in := New(Config{Seed: 7, SDErrorPermille: 200})
	for i := 0; i < 4000; i++ {
		in.SDFill(uint32(i))
	}
	if in.Stats.SDErrors < 600 || in.Stats.SDErrors > 1000 {
		t.Errorf("200‰ over 4000 draws injected %d errors, want ~800", in.Stats.SDErrors)
	}
}

func TestNilInjector(t *testing.T) {
	if New(Config{Seed: 9}) != nil {
		t.Error("plan with all-zero rates must yield a nil injector")
	}
	var in *Injector
	if o := in.SDFill(1); o != (SDOutcome{}) {
		t.Errorf("nil injector SDFill = %+v", o)
	}
	if o := in.PCAPStart(1, 0); o != (PCAPOutcome{}) {
		t.Errorf("nil injector PCAPStart = %+v", o)
	}
	if in.PRRConfig(0) {
		t.Error("nil injector injected a PRR fault")
	}
}

func TestConfigDefaults(t *testing.T) {
	in := New(Config{Seed: 1, SDErrorPermille: 1})
	cfg := in.Config()
	if cfg.MaxRetries != 3 || cfg.QuarantineAfter != 3 || cfg.SDStallFactor != 4 || cfg.BackoffBase == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func us(n int) simclock.Cycles { return simclock.Cycles(n) * simclock.CyclesPerMicrosecond }

func TestTokenBucket(t *testing.T) {
	b := &TokenBucket{Capacity: 2, RefillEvery: us(100)}
	if !b.Take(us(10)) || !b.Take(us(10)) {
		t.Fatal("fresh bucket must admit Capacity requests")
	}
	if b.Take(us(10)) {
		t.Fatal("empty bucket admitted a third request")
	}
	if b.Denials != 1 {
		t.Errorf("Denials = %d, want 1", b.Denials)
	}
	// One refill interval later exactly one token is back.
	if !b.Take(us(110)) {
		t.Fatal("bucket did not refill after RefillEvery")
	}
	if b.Take(us(115)) {
		t.Fatal("bucket over-refilled")
	}
	// A long idle stretch clamps at Capacity, not beyond.
	if got := b.Tokens(us(100_000)); got != 2 {
		t.Errorf("tokens after long idle = %d, want Capacity 2", got)
	}
	// Disabled bucket admits everything.
	var off TokenBucket
	for i := 0; i < 10; i++ {
		if !off.Take(us(i)) {
			t.Fatal("zero-capacity bucket must be disabled, not empty")
		}
	}
}

func TestBreaker(t *testing.T) {
	b := &Breaker{TripAt: 3, DecayEvery: us(1000), Cooldown: us(500)}
	if b.Charge(us(1), 1) || b.Charge(us(2), 1) {
		t.Fatal("breaker tripped below threshold")
	}
	if !b.Charge(us(3), 1) {
		t.Fatal("breaker failed to trip at threshold")
	}
	if !b.Open(us(100)) {
		t.Fatal("breaker not open during cooldown")
	}
	if b.Rejections != 1 || b.Trips != 1 {
		t.Errorf("trips=%d rejections=%d, want 1/1", b.Trips, b.Rejections)
	}
	if b.Open(us(3) + us(500)) {
		t.Fatal("breaker still open after cooldown")
	}
	// Score decays: two charges a long time apart never accumulate.
	b2 := &Breaker{TripAt: 2, DecayEvery: us(10), Cooldown: us(500)}
	if b2.Charge(us(0), 1) {
		t.Fatal("premature trip")
	}
	if b2.Charge(us(1000), 1) {
		t.Fatal("decayed score still tripped")
	}
	// Zero value never trips.
	var off Breaker
	if off.Charge(us(1), 100) || off.Open(us(1)) {
		t.Fatal("zero-value breaker must be disabled")
	}
}
