// QoS guard primitives for the Hardware Task Manager portal (ROADMAP
// item 3): a token bucket for per-client admission and a circuit breaker
// for clients thrashing reconfiguration. Both advance exclusively on
// simulated cycles handed in by the caller — no host time — and use
// integer arithmetic only, so replay is exact.
//
// They live here rather than in the kernel because the admission policy
// is shared vocabulary between the kernel (which enforces it on the
// portal) and the manager stack above it; internal/nova imports this
// package, never the reverse.
package fault

import "repro/internal/simclock"

// TokenBucket is a classic integer token bucket: Capacity tokens, one
// refilled every RefillEvery cycles. The zero value (Capacity 0) is a
// disabled bucket that admits everything. Not internally synchronized:
// mutate only from the goroutine that owns the client (its core).
type TokenBucket struct {
	Capacity    uint32
	RefillEvery simclock.Cycles

	tokens uint32
	last   simclock.Cycles
	primed bool

	// Denials counts admissions refused for an empty bucket.
	Denials uint64
}

// refill credits the tokens earned since the last observation.
func (b *TokenBucket) refill(now simclock.Cycles) {
	if !b.primed {
		b.tokens = b.Capacity
		b.last = now
		b.primed = true
		return
	}
	if b.RefillEvery <= 0 || now <= b.last {
		return
	}
	earned := uint64((now - b.last) / b.RefillEvery)
	b.last += simclock.Cycles(earned) * b.RefillEvery
	if earned >= uint64(b.Capacity) || b.tokens+uint32(earned) >= b.Capacity {
		b.tokens = b.Capacity
	} else {
		b.tokens += uint32(earned)
	}
}

// Take admits one request at simulated time now, spending a token;
// false means the bucket is empty (throttle the caller).
func (b *TokenBucket) Take(now simclock.Cycles) bool {
	if b == nil || b.Capacity == 0 {
		return true
	}
	b.refill(now)
	if b.tokens == 0 {
		b.Denials++
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the balance after refilling at now (diagnostics).
func (b *TokenBucket) Tokens(now simclock.Cycles) uint32 {
	if b == nil || b.Capacity == 0 {
		return ^uint32(0)
	}
	b.refill(now)
	return b.tokens
}

// Breaker is a leaky-counter circuit breaker: Charge adds weight to a
// score that leaks one point every DecayEvery cycles; when the score
// crosses TripAt the breaker opens for Cooldown cycles, during which
// Open reports true and admission should answer StatusRetry. The zero
// value (TripAt 0) never trips. Not internally synchronized: in the
// kernel the charge side runs on the manager core and the read side on
// the client core, serialized by the epoch-barrier commit discipline.
type Breaker struct {
	TripAt     uint32
	DecayEvery simclock.Cycles
	Cooldown   simclock.Cycles

	score     uint32
	last      simclock.Cycles
	openUntil simclock.Cycles

	// Trips counts open transitions; Rejections counts admissions
	// refused while open.
	Trips      uint64
	Rejections uint64
}

// decay leaks the score at now.
func (b *Breaker) decay(now simclock.Cycles) {
	if b.DecayEvery <= 0 || now <= b.last {
		if now > b.last {
			b.last = now
		}
		return
	}
	leaked := uint64((now - b.last) / b.DecayEvery)
	b.last += simclock.Cycles(leaked) * b.DecayEvery
	if leaked >= uint64(b.score) {
		b.score = 0
	} else {
		b.score -= uint32(leaked)
	}
}

// Charge adds weight at now (a reconfiguration launched, or — heavier —
// faulted). Returns true when this charge tripped the breaker open.
func (b *Breaker) Charge(now simclock.Cycles, weight uint32) bool {
	if b == nil || b.TripAt == 0 {
		return false
	}
	b.decay(now)
	b.score += weight
	if b.score >= b.TripAt && now >= b.openUntil {
		b.openUntil = now + b.Cooldown
		b.score = 0
		b.Trips++
		return true
	}
	return false
}

// Open reports whether the breaker is open (cooling down) at now. It
// counts the rejection so the caller can surface StatusRetry and the
// checksums can prove the guard fired.
func (b *Breaker) Open(now simclock.Cycles) bool {
	if b == nil || b.TripAt == 0 {
		return false
	}
	if now < b.openUntil {
		b.Rejections++
		return true
	}
	return false
}

// IsOpen is Open without the rejection side effect (diagnostics).
func (b *Breaker) IsOpen(now simclock.Cycles) bool {
	if b == nil || b.TripAt == 0 {
		return false
	}
	return now < b.openUntil
}
