// Package gic models the ARM Generic Interrupt Controller (PL390) found on
// the Zynq-7000: a distributor that latches and prioritizes interrupt
// sources, and a CPU interface with the acknowledge / end-of-interrupt
// protocol.
//
// Mini-NOVA keeps the physical GIC strictly to itself (paper §III-A: "
// interrupt status registers can only be accessed by the privileged code")
// and exposes virtual GICs to guests; this package is the physical half of
// that split. The 16 shared peripheral interrupts wired from the FPGA
// fabric (PL_IRQ[15:0], §IV-D) live at IRQ IDs PLIRQBase..PLIRQBase+15.
package gic

import "fmt"

// Interrupt ID layout, following the Zynq TRM.
const (
	// NumIRQs is the number of interrupt IDs the distributor tracks.
	NumIRQs = 96
	// PrivateTimerIRQ is PPI #29, the per-CPU A9 private timer.
	PrivateTimerIRQ = 29
	// PCAPIRQ signals completion of a device-configuration (PCAP) DMA.
	PCAPIRQ = 40
	// UARTIRQ is the PS UART interrupt.
	UARTIRQ = 59
	// PLIRQBase is the first of the 16 PL-to-PS interrupt lines.
	PLIRQBase = 61
	// NumPLIRQs is the number of PL-to-PS lines (PL_IRQ[15:0]).
	NumPLIRQs = 16
	// SpuriousID is returned by Acknowledge when nothing is pending.
	SpuriousID = 1023
)

type irqState struct {
	enabled  bool
	pending  bool
	active   bool
	priority uint8 // lower value = higher priority (ARM convention)
}

// GIC is the distributor + single-CPU interface (the paper pins everything
// on CPU0 of the dual-core part).
type GIC struct {
	irqs         [NumIRQs]irqState
	priorityMask uint8 // CPU interface PMR: only prios < mask are taken
	ctrlEnabled  bool

	// Signal is invoked on the rising edge of "an enabled interrupt is
	// pending and not masked" — the nIRQ wire to the CPU model.
	Signal func()

	stats Stats
}

// Stats counts distributor events.
type Stats struct {
	Raised       uint64
	Acknowledged uint64
	Completed    uint64
	Spurious     uint64
}

// New returns a GIC with all interrupts disabled at default priority 0xA0
// and the CPU interface accepting everything.
func New() *GIC {
	g := &GIC{priorityMask: 0xFF, ctrlEnabled: true}
	for i := range g.irqs {
		g.irqs[i].priority = 0xA0
	}
	return g
}

func (g *GIC) check(id int) {
	if id < 0 || id >= NumIRQs {
		panic(fmt.Sprintf("gic: interrupt id %d out of range", id))
	}
}

// Enable unmasks one interrupt source at the distributor.
func (g *GIC) Enable(id int) {
	g.check(id)
	g.irqs[id].enabled = true
	g.maybeSignal()
}

// Disable masks one interrupt source. A pending interrupt stays latched
// (as on hardware) and fires when re-enabled.
func (g *GIC) Disable(id int) {
	g.check(id)
	g.irqs[id].enabled = false
}

// IsEnabled reports the distributor enable bit for id.
func (g *GIC) IsEnabled(id int) bool {
	g.check(id)
	return g.irqs[id].enabled
}

// IsPending reports whether id is latched pending.
func (g *GIC) IsPending(id int) bool {
	g.check(id)
	return g.irqs[id].pending
}

// SetPriority assigns a priority (0 = highest, 255 = lowest).
func (g *GIC) SetPriority(id int, prio uint8) {
	g.check(id)
	g.irqs[id].priority = prio
}

// SetPriorityMask programs the CPU-interface PMR.
func (g *GIC) SetPriorityMask(m uint8) {
	g.priorityMask = m
	g.maybeSignal()
}

// Raise latches an interrupt pending (device-side edge).
func (g *GIC) Raise(id int) {
	g.check(id)
	g.stats.Raised++
	g.irqs[id].pending = true
	g.maybeSignal()
}

// ClearPending drops the pending latch without acknowledging (used by the
// kernel when tearing down a VM's interrupts).
func (g *GIC) ClearPending(id int) {
	g.check(id)
	g.irqs[id].pending = false
}

// highestPending returns the best deliverable IRQ, or -1.
func (g *GIC) highestPending() int {
	best := -1
	for id := range g.irqs {
		s := &g.irqs[id]
		if s.enabled && s.pending && !s.active && s.priority < g.priorityMask {
			if best < 0 || s.priority < g.irqs[best].priority || (s.priority == g.irqs[best].priority && id < best) {
				best = id
			}
		}
	}
	return best
}

// PendingDeliverable reports whether the nIRQ line would be asserted.
func (g *GIC) PendingDeliverable() bool {
	return g.ctrlEnabled && g.highestPending() >= 0
}

func (g *GIC) maybeSignal() {
	if g.PendingDeliverable() && g.Signal != nil {
		g.Signal()
	}
}

// Acknowledge implements a read of GICC_IAR: it returns the highest-
// priority pending interrupt, marks it active, and clears its pending
// latch. Returns SpuriousID when nothing is deliverable.
func (g *GIC) Acknowledge() int {
	id := g.highestPending()
	if id < 0 {
		g.stats.Spurious++
		return SpuriousID
	}
	g.irqs[id].pending = false
	g.irqs[id].active = true
	g.stats.Acknowledged++
	return id
}

// EOI implements a write of GICC_EOIR: deactivates the interrupt, allowing
// the next delivery.
func (g *GIC) EOI(id int) {
	g.check(id)
	if !g.irqs[id].active {
		return // stray EOI is ignored, as on hardware in EOImode 0
	}
	g.irqs[id].active = false
	g.stats.Completed++
	g.maybeSignal()
}

// Stats returns a copy of the counters.
func (g *GIC) Stats() Stats { return g.stats }

// EnabledSet snapshots the distributor enable bits (used by the VM switch
// path to mask/unmask per-VM interrupt sets; paper §III-B).
func (g *GIC) EnabledSet() []int {
	var out []int
	for id := range g.irqs {
		if g.irqs[id].enabled {
			out = append(out, id)
		}
	}
	return out
}
