// Package gic models the ARM Generic Interrupt Controller (PL390) found on
// the Zynq-7000: a distributor that latches and prioritizes interrupt
// sources, and per-CPU interfaces with the acknowledge / end-of-interrupt
// protocol.
//
// Mini-NOVA keeps the physical GIC strictly to itself (paper §III-A: "
// interrupt status registers can only be accessed by the privileged code")
// and exposes virtual GICs to guests; this package is the physical half of
// that split. Following the GIC architecture, interrupt IDs split into
// three banks:
//
//   - SGIs (0..15): software-generated interrupts, the inter-processor
//     interrupt mechanism. Each CPU interface banks its own pending state,
//     so a core can IPI a peer for cross-core reschedule.
//   - PPIs (16..31): private peripheral interrupts — per-CPU state, raised
//     by that CPU's private devices (the A9 private timer is PPI #29).
//   - SPIs (32..): shared peripheral interrupts with a distributor-side
//     target CPU (GICD_ITARGETSR); the 16 PL-to-PS lines from the FPGA
//     fabric (PL_IRQ[15:0], §IV-D) live at PLIRQBase..PLIRQBase+15.
package gic

import "fmt"

// Interrupt ID layout, following the Zynq TRM.
const (
	// NumIRQs is the number of interrupt IDs the distributor tracks.
	NumIRQs = 96
	// NumSGIs is the number of software-generated interrupt IDs (0..15).
	NumSGIs = 16
	// PrivateBase is the first non-banked (shared peripheral) interrupt
	// ID; everything below it is per-CPU (SGI or PPI).
	PrivateBase = 32
	// PrivateTimerIRQ is PPI #29, the per-CPU A9 private timer.
	PrivateTimerIRQ = 29
	// PCAPIRQ signals completion of a device-configuration (PCAP) DMA.
	PCAPIRQ = 40
	// UARTIRQ is the PS UART interrupt.
	UARTIRQ = 59
	// PLIRQBase is the first of the 16 PL-to-PS interrupt lines.
	PLIRQBase = 61
	// NumPLIRQs is the number of PL-to-PS lines (PL_IRQ[15:0]).
	NumPLIRQs = 16
	// SpuriousID is returned by Acknowledge when nothing is pending.
	SpuriousID = 1023
)

type irqState struct {
	enabled  bool
	pending  bool
	active   bool
	priority uint8 // lower value = higher priority (ARM convention)
}

// GIC is the distributor plus ncpu CPU interfaces. The paper pins
// everything on CPU0 of the dual-core part; New() reproduces that, while
// NewMP(2) models the full dual-core Zynq.
type GIC struct {
	ncpu int

	// shared holds the SPI state (ids >= PrivateBase); banked holds each
	// CPU's private SGI+PPI state (ids < PrivateBase).
	shared [NumIRQs]irqState
	banked [][PrivateBase]irqState

	// target is the distributor's per-SPI target CPU (GICD_ITARGETSR
	// reduced to a single destination, which is how Mini-NOVA programs
	// it: every line is routed to exactly the core that owns it).
	target [NumIRQs]int

	// priorityMask is each CPU interface's PMR: only prios < mask taken.
	priorityMask []uint8
	ctrlEnabled  bool

	// npending counts latched pending sources per CPU interface (an SPI
	// counts against its target), so the nIRQ sample the CPU takes at
	// every instruction boundary (PendingDeliverable) is O(1) in the
	// common nothing-pending case. Sharding the counter per interface
	// keeps each simulated core's hot path on its own cache line when
	// cores run on concurrent host goroutines.
	npending []int

	// Signal is invoked on the rising edge of "an enabled interrupt is
	// pending and not masked" for a CPU — the nIRQ wire to that core.
	Signal func(cpu int)

	// stats is sharded per CPU interface for the same reason as npending:
	// an event is always counted on the goroutine of the interface it is
	// delivered to, so no two cores write the same bucket. Stats() sums.
	stats []Stats
}

// Stats counts distributor events.
type Stats struct {
	Raised       uint64
	SGIsSent     uint64
	Acknowledged uint64
	Completed    uint64
	Spurious     uint64
}

// New returns a single-CPU-interface GIC (the paper's CPU0-only setup)
// with all interrupts disabled at default priority 0xA0 and the CPU
// interface accepting everything.
func New() *GIC { return NewMP(1) }

// NewMP returns a GIC with ncpu CPU interfaces.
func NewMP(ncpu int) *GIC {
	if ncpu < 1 {
		panic("gic: need at least one CPU interface")
	}
	g := &GIC{
		ncpu:         ncpu,
		banked:       make([][PrivateBase]irqState, ncpu),
		priorityMask: make([]uint8, ncpu),
		ctrlEnabled:  true,
		npending:     make([]int, ncpu),
		stats:        make([]Stats, ncpu),
	}
	for i := range g.shared {
		g.shared[i].priority = 0xA0
	}
	for c := range g.banked {
		g.priorityMask[c] = 0xFF
		for i := range g.banked[c] {
			g.banked[c][i].priority = 0xA0
		}
	}
	return g
}

// NumCPUs returns the number of CPU interfaces.
func (g *GIC) NumCPUs() int { return g.ncpu }

func (g *GIC) check(id int) {
	if id < 0 || id >= NumIRQs {
		panic(fmt.Sprintf("gic: interrupt id %d out of range", id))
	}
}

func (g *GIC) checkCPU(cpu int) {
	if cpu < 0 || cpu >= g.ncpu {
		panic(fmt.Sprintf("gic: cpu %d out of range (%d interfaces)", cpu, g.ncpu))
	}
}

// banked ids (< PrivateBase) resolve to the per-CPU bank; SPIs to shared.
func (g *GIC) state(cpu, id int) *irqState {
	if id < PrivateBase {
		return &g.banked[cpu][id]
	}
	return &g.shared[id]
}

// Enable unmasks one interrupt source at the distributor. For banked ids
// the enable applies to every CPU's bank (the kernel configures its
// private peripherals symmetrically across cores).
func (g *GIC) Enable(id int) {
	g.check(id)
	if id < PrivateBase {
		for c := 0; c < g.ncpu; c++ {
			g.banked[c][id].enabled = true
			g.maybeSignal(c)
		}
		return
	}
	g.shared[id].enabled = true
	g.maybeSignal(g.target[id])
}

// EnableOn unmasks a banked (SGI/PPI) source on one CPU's bank only — the
// form a core must use from its own context when cores run concurrently,
// so it never writes a peer's bank. SPIs fall back to Enable.
func (g *GIC) EnableOn(cpu, id int) {
	g.check(id)
	g.checkCPU(cpu)
	if id >= PrivateBase {
		g.Enable(id)
		return
	}
	g.banked[cpu][id].enabled = true
	g.maybeSignal(cpu)
}

// Disable masks one interrupt source (all banks for banked ids). A
// pending interrupt stays latched (as on hardware) and fires when
// re-enabled.
func (g *GIC) Disable(id int) {
	g.check(id)
	if id < PrivateBase {
		for c := 0; c < g.ncpu; c++ {
			g.banked[c][id].enabled = false
		}
		return
	}
	g.shared[id].enabled = false
}

// DisableOn masks a banked source on one CPU's bank only (see EnableOn).
func (g *GIC) DisableOn(cpu, id int) {
	g.check(id)
	g.checkCPU(cpu)
	if id >= PrivateBase {
		g.Disable(id)
		return
	}
	g.banked[cpu][id].enabled = false
}

// IsEnabled reports the distributor enable bit for id (bank 0 for banked
// ids).
func (g *GIC) IsEnabled(id int) bool {
	g.check(id)
	return g.state(0, id).enabled
}

// IsPending reports whether id is latched pending on any CPU interface.
func (g *GIC) IsPending(id int) bool {
	g.check(id)
	if id < PrivateBase {
		for c := 0; c < g.ncpu; c++ {
			if g.banked[c][id].pending {
				return true
			}
		}
		return false
	}
	return g.shared[id].pending
}

// SetPriority assigns a priority (0 = highest, 255 = lowest; all banks
// for banked ids).
func (g *GIC) SetPriority(id int, prio uint8) {
	g.check(id)
	if id < PrivateBase {
		for c := 0; c < g.ncpu; c++ {
			g.banked[c][id].priority = prio
		}
		return
	}
	g.shared[id].priority = prio
}

// SetPriorityMask programs cpu's CPU-interface PMR.
func (g *GIC) SetPriorityMask(cpu int, m uint8) {
	g.checkCPU(cpu)
	g.priorityMask[cpu] = m
	g.maybeSignal(cpu)
}

// SetTarget routes an SPI to one CPU interface (GICD_ITARGETSR). Banked
// ids have no target; calls for them are rejected. A latched pending
// state migrates with the line: it counts against the new target.
func (g *GIC) SetTarget(id, cpu int) {
	g.check(id)
	g.checkCPU(cpu)
	if id < PrivateBase {
		panic(fmt.Sprintf("gic: interrupt %d is banked, it has no target", id))
	}
	if old := g.target[id]; old != cpu && g.shared[id].pending {
		g.npending[old]--
		g.npending[cpu]++
	}
	g.target[id] = cpu
	g.maybeSignal(cpu)
}

// TargetOf returns the CPU an SPI is routed to (0 for banked ids).
func (g *GIC) TargetOf(id int) int {
	g.check(id)
	if id < PrivateBase {
		return 0
	}
	return g.target[id]
}

// Raise latches an interrupt pending (device-side edge). SPIs latch at
// the distributor and signal their target CPU; banked ids latch on CPU0
// (single-core compatibility — per-CPU devices use RaiseOn).
func (g *GIC) Raise(id int) {
	g.check(id)
	if id < PrivateBase {
		g.RaiseOn(0, id)
		return
	}
	g.stats[g.target[id]].Raised++
	g.setPending(g.target[id], &g.shared[id], true)
	g.maybeSignal(g.target[id])
}

// RaiseOn latches a banked (SGI/PPI) interrupt pending on one CPU's
// interface — the path a per-core private device (e.g. that core's
// private timer) uses.
func (g *GIC) RaiseOn(cpu, id int) {
	g.check(id)
	g.checkCPU(cpu)
	if id >= PrivateBase {
		g.Raise(id)
		return
	}
	g.stats[cpu].Raised++
	g.setPending(cpu, &g.banked[cpu][id], true)
	g.maybeSignal(cpu)
}

// RaiseSGI sends a software-generated interrupt (id < NumSGIs) to the
// target CPU — the inter-processor interrupt a core uses to demand a
// reschedule on a peer (GICD_SGIR).
func (g *GIC) RaiseSGI(target, id int) {
	if id < 0 || id >= NumSGIs {
		panic(fmt.Sprintf("gic: SGI id %d out of range", id))
	}
	g.checkCPU(target)
	g.stats[target].SGIsSent++
	g.setPending(target, &g.banked[target][id], true)
	g.maybeSignal(target)
}

// ClearPending drops the pending latch without acknowledging (used by the
// kernel when tearing down a VM's interrupts). Banked ids clear on every
// bank.
func (g *GIC) ClearPending(id int) {
	g.check(id)
	if id < PrivateBase {
		for c := 0; c < g.ncpu; c++ {
			g.setPending(c, &g.banked[c][id], false)
		}
		return
	}
	g.setPending(g.target[id], &g.shared[id], false)
}

// setPending flips one source's pending latch, keeping the per-interface
// count coherent (cpu is the interface the source delivers to). Every
// mutation of irqState.pending must go through it.
func (g *GIC) setPending(cpu int, s *irqState, v bool) {
	if s.pending != v {
		if v {
			g.npending[cpu]++
		} else {
			g.npending[cpu]--
		}
		s.pending = v
	}
}

// deliverable reports whether s may be taken on cpu right now.
func (g *GIC) deliverable(cpu int, s *irqState) bool {
	return s.enabled && s.pending && !s.active && s.priority < g.priorityMask[cpu]
}

// highestPending returns the best deliverable IRQ for cpu, or -1. SGIs
// and PPIs come from cpu's bank; SPIs only when targeted at cpu.
func (g *GIC) highestPending(cpu int) int {
	best := -1
	bestPrio := uint8(0xFF)
	consider := func(id int, s *irqState) {
		if !g.deliverable(cpu, s) {
			return
		}
		if best < 0 || s.priority < bestPrio {
			best, bestPrio = id, s.priority
		}
	}
	for id := 0; id < PrivateBase; id++ {
		consider(id, &g.banked[cpu][id])
	}
	for id := PrivateBase; id < NumIRQs; id++ {
		if g.target[id] == cpu {
			consider(id, &g.shared[id])
		}
	}
	return best
}

// PendingDeliverable reports whether cpu's nIRQ line would be asserted.
// The no-latch fast path makes the per-instruction-boundary nIRQ sample a
// pair of compares.
func (g *GIC) PendingDeliverable(cpu int) bool {
	g.checkCPU(cpu)
	if g.npending[cpu] == 0 {
		return false
	}
	return g.ctrlEnabled && g.highestPending(cpu) >= 0
}

func (g *GIC) maybeSignal(cpu int) {
	if g.PendingDeliverable(cpu) && g.Signal != nil {
		g.Signal(cpu)
	}
}

// Acknowledge implements a read of cpu's GICC_IAR: it returns the
// highest-priority pending interrupt for that interface, marks it active,
// and clears its pending latch. Returns SpuriousID when nothing is
// deliverable.
func (g *GIC) Acknowledge(cpu int) int {
	g.checkCPU(cpu)
	id := g.highestPending(cpu)
	if id < 0 {
		g.stats[cpu].Spurious++
		return SpuriousID
	}
	s := g.state(cpu, id)
	g.setPending(cpu, s, false)
	s.active = true
	g.stats[cpu].Acknowledged++
	return id
}

// EOI implements a write of cpu's GICC_EOIR: deactivates the interrupt,
// allowing the next delivery.
func (g *GIC) EOI(cpu, id int) {
	g.check(id)
	g.checkCPU(cpu)
	s := g.state(cpu, id)
	if !s.active {
		return // stray EOI is ignored, as on hardware in EOImode 0
	}
	s.active = false
	g.stats[cpu].Completed++
	g.maybeSignal(cpu)
}

// Stats returns the counters summed across every CPU interface.
func (g *GIC) Stats() Stats {
	var total Stats
	for i := range g.stats {
		total.Raised += g.stats[i].Raised
		total.SGIsSent += g.stats[i].SGIsSent
		total.Acknowledged += g.stats[i].Acknowledged
		total.Completed += g.stats[i].Completed
		total.Spurious += g.stats[i].Spurious
	}
	return total
}

// EnabledSet snapshots the distributor enable bits as seen by cpu 0 (used
// by the VM switch path to mask/unmask per-VM interrupt sets; §III-B).
func (g *GIC) EnabledSet() []int {
	var out []int
	for id := 0; id < NumIRQs; id++ {
		if g.state(0, id).enabled {
			out = append(out, id)
		}
	}
	return out
}
