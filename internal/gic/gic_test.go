package gic

import (
	"testing"
	"testing/quick"
)

func TestRaiseAckEOICycle(t *testing.T) {
	g := New()
	g.Enable(UARTIRQ)
	g.Raise(UARTIRQ)
	if !g.PendingDeliverable(0) {
		t.Fatal("enabled+pending not deliverable")
	}
	id := g.Acknowledge(0)
	if id != UARTIRQ {
		t.Fatalf("Acknowledge = %d, want %d", id, UARTIRQ)
	}
	if g.IsPending(UARTIRQ) {
		t.Error("pending latch survived acknowledge")
	}
	// While active, the same line cannot be re-delivered.
	g.Raise(UARTIRQ)
	if got := g.Acknowledge(0); got != SpuriousID {
		t.Errorf("re-delivery while active: got %d, want spurious", got)
	}
	g.EOI(0, UARTIRQ)
	if got := g.Acknowledge(0); got != UARTIRQ {
		t.Errorf("after EOI: Acknowledge = %d, want %d", got, UARTIRQ)
	}
}

func TestDisabledStaysLatched(t *testing.T) {
	g := New()
	g.Raise(PLIRQBase)
	if g.PendingDeliverable(0) {
		t.Error("disabled interrupt deliverable")
	}
	g.Enable(PLIRQBase)
	if !g.PendingDeliverable(0) {
		t.Error("latched interrupt lost on enable")
	}
}

func TestPriorityOrdering(t *testing.T) {
	g := New()
	g.Enable(PrivateTimerIRQ)
	g.Enable(PLIRQBase)
	g.SetPriority(PrivateTimerIRQ, 0x20)
	g.SetPriority(PLIRQBase, 0x80)
	g.Raise(PLIRQBase)
	g.Raise(PrivateTimerIRQ)
	if id := g.Acknowledge(0); id != PrivateTimerIRQ {
		t.Errorf("Acknowledge = %d, want higher-priority timer %d", id, PrivateTimerIRQ)
	}
	if id := g.Acknowledge(0); id != PLIRQBase {
		t.Errorf("second Acknowledge = %d, want %d", id, PLIRQBase)
	}
}

func TestPriorityMask(t *testing.T) {
	g := New()
	g.Enable(UARTIRQ)
	g.SetPriority(UARTIRQ, 0xB0)
	g.SetPriorityMask(0, 0xA0)
	g.Raise(UARTIRQ)
	if g.PendingDeliverable(0) {
		t.Error("interrupt below PMR delivered")
	}
	g.SetPriorityMask(0, 0xFF)
	if !g.PendingDeliverable(0) {
		t.Error("raising PMR did not unmask")
	}
}

func TestSignalEdge(t *testing.T) {
	g := New()
	fired := 0
	g.Signal = func(cpu int) { fired++ }
	g.Enable(UARTIRQ)
	g.Raise(UARTIRQ)
	if fired == 0 {
		t.Error("Signal not invoked on raise of enabled IRQ")
	}
}

func TestTieBreakByID(t *testing.T) {
	g := New()
	g.Enable(PLIRQBase)
	g.Enable(PLIRQBase + 5)
	g.Raise(PLIRQBase + 5)
	g.Raise(PLIRQBase)
	if id := g.Acknowledge(0); id != PLIRQBase {
		t.Errorf("equal priorities: got %d, want lowest id %d", id, PLIRQBase)
	}
}

func TestStrayEOIIgnored(t *testing.T) {
	g := New()
	g.EOI(0, UARTIRQ) // must not panic or count
	if g.Stats().Completed != 0 {
		t.Error("stray EOI counted as completion")
	}
}

func TestEnabledSet(t *testing.T) {
	g := New()
	g.Enable(3)
	g.Enable(PLIRQBase + 2)
	set := g.EnabledSet()
	if len(set) != 2 || set[0] != 3 || set[1] != PLIRQBase+2 {
		t.Errorf("EnabledSet = %v", set)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range id did not panic")
		}
	}()
	New().Enable(NumIRQs)
}

// Property: acknowledged count never exceeds raised count, and every
// Acknowledge that returns a real ID leaves that ID active until EOI.
func TestPropertyAckBookkeeping(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		for id := 0; id < NumIRQs; id++ {
			g.Enable(id)
		}
		for _, op := range ops {
			id := int(op) % NumIRQs
			switch op % 3 {
			case 0:
				g.Raise(id)
			case 1:
				got := g.Acknowledge(0)
				if got != SpuriousID {
					if g.IsPending(got) {
						return false
					}
				}
			case 2:
				g.EOI(0, id)
			}
		}
		s := g.Stats()
		return s.Acknowledged <= s.Raised && s.Completed <= s.Acknowledged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- multi-CPU interfaces and SGIs ---------------------------------------

func TestSGIDelivery(t *testing.T) {
	g := NewMP(2)
	const resched = 1
	g.Enable(resched)
	g.RaiseSGI(1, resched)
	// The SGI is banked: only the target CPU's interface sees it.
	if g.PendingDeliverable(0) {
		t.Error("SGI for CPU1 deliverable on CPU0")
	}
	if !g.PendingDeliverable(1) {
		t.Fatal("SGI not deliverable on its target CPU")
	}
	if id := g.Acknowledge(1); id != resched {
		t.Fatalf("CPU1 Acknowledge = %d, want SGI %d", id, resched)
	}
	if g.PendingDeliverable(1) {
		t.Error("SGI still deliverable while active")
	}
	g.EOI(1, resched)
	// Each interface banks its own active state: an SGI to CPU0 after
	// CPU1's cycle must deliver independently.
	g.RaiseSGI(0, resched)
	if id := g.Acknowledge(0); id != resched {
		t.Errorf("CPU0 Acknowledge = %d, want SGI %d", id, resched)
	}
	if s := g.Stats(); s.SGIsSent != 2 {
		t.Errorf("SGIsSent = %d, want 2", s.SGIsSent)
	}
}

func TestSGIPerCPUBanksIndependent(t *testing.T) {
	g := NewMP(2)
	const resched = 1
	g.Enable(resched)
	g.RaiseSGI(0, resched)
	g.RaiseSGI(1, resched)
	// Both interfaces hold their own pending latch for the same ID.
	if g.Acknowledge(0) != resched || g.Acknowledge(1) != resched {
		t.Fatal("banked SGI lost on one interface")
	}
	// CPU0's EOI must not complete CPU1's active SGI.
	g.EOI(0, resched)
	g.RaiseSGI(1, resched)
	if g.PendingDeliverable(1) {
		t.Error("SGI re-delivered on CPU1 while still active there")
	}
	g.EOI(1, resched)
	if !g.PendingDeliverable(1) {
		t.Error("latched SGI lost after EOI on CPU1")
	}
}

func TestSPITargetRouting(t *testing.T) {
	g := NewMP(2)
	g.Enable(PLIRQBase)
	g.SetTarget(PLIRQBase, 1)
	g.Raise(PLIRQBase)
	if g.PendingDeliverable(0) {
		t.Error("SPI routed to CPU1 deliverable on CPU0")
	}
	if id := g.Acknowledge(1); id != PLIRQBase {
		t.Errorf("CPU1 Acknowledge = %d, want %d", id, PLIRQBase)
	}
	if got := g.TargetOf(PLIRQBase); got != 1 {
		t.Errorf("TargetOf = %d, want 1", got)
	}
}

func TestPPIBankedPerCPU(t *testing.T) {
	g := NewMP(2)
	g.Enable(PrivateTimerIRQ) // enables every bank
	g.RaiseOn(1, PrivateTimerIRQ)
	if g.PendingDeliverable(0) {
		t.Error("CPU1's private timer visible on CPU0")
	}
	if id := g.Acknowledge(1); id != PrivateTimerIRQ {
		t.Errorf("CPU1 Acknowledge = %d, want private timer", id)
	}
}

func TestSignalCarriesCPU(t *testing.T) {
	g := NewMP(2)
	var signalled []int
	g.Signal = func(cpu int) { signalled = append(signalled, cpu) }
	g.Enable(1)
	g.RaiseSGI(1, 1)
	if len(signalled) == 0 || signalled[len(signalled)-1] != 1 {
		t.Errorf("Signal cpus = %v, want trailing 1", signalled)
	}
}

func TestSGIOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SGI id >= NumSGIs did not panic")
		}
	}()
	NewMP(2).RaiseSGI(0, NumSGIs)
}
