package gic

import (
	"testing"
	"testing/quick"
)

func TestRaiseAckEOICycle(t *testing.T) {
	g := New()
	g.Enable(UARTIRQ)
	g.Raise(UARTIRQ)
	if !g.PendingDeliverable() {
		t.Fatal("enabled+pending not deliverable")
	}
	id := g.Acknowledge()
	if id != UARTIRQ {
		t.Fatalf("Acknowledge = %d, want %d", id, UARTIRQ)
	}
	if g.IsPending(UARTIRQ) {
		t.Error("pending latch survived acknowledge")
	}
	// While active, the same line cannot be re-delivered.
	g.Raise(UARTIRQ)
	if got := g.Acknowledge(); got != SpuriousID {
		t.Errorf("re-delivery while active: got %d, want spurious", got)
	}
	g.EOI(UARTIRQ)
	if got := g.Acknowledge(); got != UARTIRQ {
		t.Errorf("after EOI: Acknowledge = %d, want %d", got, UARTIRQ)
	}
}

func TestDisabledStaysLatched(t *testing.T) {
	g := New()
	g.Raise(PLIRQBase)
	if g.PendingDeliverable() {
		t.Error("disabled interrupt deliverable")
	}
	g.Enable(PLIRQBase)
	if !g.PendingDeliverable() {
		t.Error("latched interrupt lost on enable")
	}
}

func TestPriorityOrdering(t *testing.T) {
	g := New()
	g.Enable(PrivateTimerIRQ)
	g.Enable(PLIRQBase)
	g.SetPriority(PrivateTimerIRQ, 0x20)
	g.SetPriority(PLIRQBase, 0x80)
	g.Raise(PLIRQBase)
	g.Raise(PrivateTimerIRQ)
	if id := g.Acknowledge(); id != PrivateTimerIRQ {
		t.Errorf("Acknowledge = %d, want higher-priority timer %d", id, PrivateTimerIRQ)
	}
	if id := g.Acknowledge(); id != PLIRQBase {
		t.Errorf("second Acknowledge = %d, want %d", id, PLIRQBase)
	}
}

func TestPriorityMask(t *testing.T) {
	g := New()
	g.Enable(UARTIRQ)
	g.SetPriority(UARTIRQ, 0xB0)
	g.SetPriorityMask(0xA0)
	g.Raise(UARTIRQ)
	if g.PendingDeliverable() {
		t.Error("interrupt below PMR delivered")
	}
	g.SetPriorityMask(0xFF)
	if !g.PendingDeliverable() {
		t.Error("raising PMR did not unmask")
	}
}

func TestSignalEdge(t *testing.T) {
	g := New()
	fired := 0
	g.Signal = func() { fired++ }
	g.Enable(UARTIRQ)
	g.Raise(UARTIRQ)
	if fired == 0 {
		t.Error("Signal not invoked on raise of enabled IRQ")
	}
}

func TestTieBreakByID(t *testing.T) {
	g := New()
	g.Enable(PLIRQBase)
	g.Enable(PLIRQBase + 5)
	g.Raise(PLIRQBase + 5)
	g.Raise(PLIRQBase)
	if id := g.Acknowledge(); id != PLIRQBase {
		t.Errorf("equal priorities: got %d, want lowest id %d", id, PLIRQBase)
	}
}

func TestStrayEOIIgnored(t *testing.T) {
	g := New()
	g.EOI(UARTIRQ) // must not panic or count
	if g.Stats().Completed != 0 {
		t.Error("stray EOI counted as completion")
	}
}

func TestEnabledSet(t *testing.T) {
	g := New()
	g.Enable(3)
	g.Enable(PLIRQBase + 2)
	set := g.EnabledSet()
	if len(set) != 2 || set[0] != 3 || set[1] != PLIRQBase+2 {
		t.Errorf("EnabledSet = %v", set)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range id did not panic")
		}
	}()
	New().Enable(NumIRQs)
}

// Property: acknowledged count never exceeds raised count, and every
// Acknowledge that returns a real ID leaves that ID active until EOI.
func TestPropertyAckBookkeeping(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		for id := 0; id < NumIRQs; id++ {
			g.Enable(id)
		}
		for _, op := range ops {
			id := int(op) % NumIRQs
			switch op % 3 {
			case 0:
				g.Raise(id)
			case 1:
				got := g.Acknowledge()
				if got != SpuriousID {
					if g.IsPending(got) {
						return false
					}
				}
			case 2:
				g.EOI(id)
			}
		}
		s := g.Stats()
		return s.Acknowledged <= s.Raised && s.Completed <= s.Acknowledged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
