package hwtask

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/physmem"
	"repro/internal/pl"
)

// Task IDs of the paper's evaluation set (§V-B, Fig. 8): an FFT family
// ranging from 256 to 8192 points and a QAM family with constellation
// sizes 4, 16 and 64.
const (
	TaskFFT256  = 1
	TaskFFT512  = 2
	TaskFFT1024 = 3
	TaskFFT2048 = 4
	TaskFFT4096 = 5
	TaskFFT8192 = 6

	TaskQAM4  = 10
	TaskQAM16 = 11
	TaskQAM64 = 12
)

// FFTTaskIDs and QAMTaskIDs enumerate the two families.
var (
	FFTTaskIDs = []uint16{TaskFFT256, TaskFFT512, TaskFFT1024, TaskFFT2048, TaskFFT4096, TaskFFT8192}
	QAMTaskIDs = []uint16{TaskQAM4, TaskQAM16, TaskQAM64}
)

// FFTPoints returns the transform size of an FFT task ID.
func FFTPoints(id uint16) int { return 256 << (id - TaskFFT256) }

// QAMOrder returns the constellation size of a QAM task ID.
func QAMOrder(id uint16) int { return 4 << (2 * (id - TaskQAM4)) }

// PaperTaskSpec describes one catalog entry before installation.
type PaperTaskSpec struct {
	ID      uint16
	Name    string
	Variant uint16
	Needs   bitstream.Resources
	BitLen  int // payload bytes; drives PCAP latency
}

// PaperTaskSet returns the evaluation catalog. FFT blocks "are quite
// large" — their resource needs exceed the small PRRs, so "only PRR1 and
// PRR2 are large enough to contain the FFT tasks"; QAM modules "have a
// small size and can be hosted in all four PRRs" (§V-B). Bitstream sizes
// grow with the FFT point count, following the size↔delay relation of the
// authors' earlier work ([17]).
func PaperTaskSet() []PaperTaskSpec {
	var specs []PaperTaskSpec
	for i, id := range FFTTaskIDs {
		specs = append(specs, PaperTaskSpec{
			ID:      id,
			Name:    fmt.Sprintf("FFT-%d", FFTPoints(id)),
			Variant: uint16(i),
			Needs:   bitstream.Resources{LUTs: 6000 + uint32(i)*400, BRAM: 16 + uint32(i)*2, DSP: 24},
			BitLen:  150<<10 + i*30<<10,
		})
	}
	for i, id := range QAMTaskIDs {
		specs = append(specs, PaperTaskSpec{
			ID:      id,
			Name:    fmt.Sprintf("QAM-%d", QAMOrder(id)),
			Variant: uint16(i),
			Needs:   bitstream.Resources{LUTs: 1200 + uint32(i)*150, BRAM: 2, DSP: 4},
			BitLen:  60<<10 + i*8<<10,
		})
	}
	return specs
}

// PaperPRRCapacities returns the four-region layout of §V-B: two large
// regions (FFT-capable) and two small ones (QAM only).
func PaperPRRCapacities() []bitstream.Resources {
	return []bitstream.Resources{
		{LUTs: 10000, BRAM: 32, DSP: 48},
		{LUTs: 10000, BRAM: 32, DSP: 48},
		{LUTs: 2200, BRAM: 4, DSP: 8},
		{LUTs: 2200, BRAM: 4, DSP: 8},
	}
}

// InstallTaskSet encodes each spec's synthetic bitstream into the store
// region on the bus (the .bit files of §IV-B, "stored in the DDR memory"),
// registers the task in the manager's table with its PRR compatibility
// list, and returns the specs for reference.
func InstallTaskSet(m *Manager, bus *physmem.Bus, storePA physmem.Addr, capacities []bitstream.Resources, specs []PaperTaskSpec) error {
	off := uint32(0)
	for _, s := range specs {
		bs := bitstream.Synthesize(s.ID, s.Variant, s.Needs, s.BitLen)
		raw := bs.Encode()
		if err := bus.WriteBytes(storePA+physmem.Addr(off), raw); err != nil {
			return fmt.Errorf("hwtask: installing %s: %w", s.Name, err)
		}
		var prrs []int
		for r, c := range capacities {
			if s.Needs.Fits(c) {
				prrs = append(prrs, r)
			}
		}
		if len(prrs) == 0 {
			return fmt.Errorf("hwtask: task %s fits no PRR", s.Name)
		}
		m.AddTask(&TaskInfo{
			ID:              s.ID,
			Name:            s.Name,
			Variant:         s.Variant,
			BitstreamOff:    off,
			BitstreamLen:    uint32(len(raw)),
			ReconfigLatency: pl.TransferCycles(len(raw)),
			Needs:           s.Needs,
			PRRList:         prrs,
		})
		off += uint32(len(raw)+0xFFF) &^ 0xFFF // page-align entries
	}
	return nil
}
