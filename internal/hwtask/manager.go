// Package hwtask implements the Hardware Task Manager — the Mini-NOVA user
// service that owns reconfiguration and allocation of DPR hardware tasks
// (paper §IV). It keeps the two tables of Fig. 7:
//
//   - the hardware task table, indexed by unique task ID, holding each
//     task's bitstream location/size, reconfiguration latency and the list
//     of PRRs able to host it (§IV-B);
//   - the PRR table, holding each region's current client, loaded task and
//     execution state.
//
// The allocation routine follows the six stages of Fig. 7. The same
// decision core runs in two harnesses: as a Mini-NOVA protection domain
// (Service, using capability portals for every privileged effect) and
// natively inside a non-virtualized RTOS (NativeActions — the paper's
// baseline, where "the hardware task manager service does not need to
// update the page tables since all tasks execute in a unified memory
// space").
package hwtask

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/bitstream"
	"repro/internal/cpu"
	"repro/internal/simclock"
)

// TaskInfo is one hardware-task-table entry (§IV-B: "for each task, the
// address and size of its .bit file, the reconfiguration latency and the
// list of predefined PRRs are stored").
type TaskInfo struct {
	ID      uint16
	Name    string
	Variant uint16

	// Bitstream location within the bitstream store.
	BitstreamOff uint32
	BitstreamLen uint32

	// ReconfigLatency is the expected PCAP download time (derived from
	// the bitstream size; stored for admission decisions).
	ReconfigLatency simclock.Cycles

	// Needs is the FPGA resource footprint; PRRList the compatible
	// regions, precomputed from capacities at installation.
	Needs   bitstream.Resources
	PRRList []int
}

// PRRState is one PRR-table entry.
type PRRState struct {
	Client     int    // PD/VM id currently owning the region's task; -1 none
	TaskID     int    // task configured (or being configured); -1 none
	Loading    bool   // PCAP transfer in flight
	Executions uint64 // completed dispatches through this region
}

// RequestKind mirrors nova's acquire/release split without importing it.
type RequestKind int

// Request kinds.
const (
	ReqAcquire RequestKind = iota
	ReqRelease
)

// Request is the manager's view of one client request.
type Request struct {
	Kind     RequestKind
	ReqID    uint32
	ClientID int
	TaskID   uint16
	IfaceVA  uint32
	DataVA   uint32
}

// Reply status codes — the shared ABI's hypercall statuses, aliased so
// the decision core keeps its historical spelling without duplicating
// the values.
const (
	ReplyOK       = abi.StatusOK
	ReplyReconfig = abi.StatusReconfig
	ReplyBusy     = abi.StatusBusy
	ReplyInval    = abi.StatusInval
	// ReplyFaulted means every PRR compatible with the task is quarantined
	// (repeated configuration faults); retrying will not help until a
	// region heals or the task set changes.
	ReplyFaulted = abi.StatusFaulted
)

// Actions abstracts the privileged effects of an allocation so the same
// decision core serves the virtualized service (capability portals) and
// the native baseline (direct device programming).
type Actions interface {
	// PRRBusy reports whether the region is executing right now.
	PRRBusy(prr int) bool
	// PRRQuarantined reports whether the region has been pulled from the
	// placement pool after repeated configuration faults (the kernel's
	// reconfiguration pipeline tracks region health; the native baseline
	// has no fault plan and always answers false).
	PRRQuarantined(prr int) bool
	// Reclaim withdraws region prr from a previous client: consistency
	// save + interface demap + IRQ withdrawal (§IV-C). No-op natively.
	Reclaim(clientID, prr int)
	// MapIface makes prr's register group reachable by the client at its
	// requested VA — stage (3). No-op natively (unified space).
	MapIface(req Request, prr int) bool
	// LoadWindow points the hwMMU at the client's data section — stage (4).
	LoadWindow(req Request, prr int) bool
	// StartReconfig launches the PCAP download — stage (5). Under
	// Mini-NOVA this submits to the kernel's reconfiguration pipeline
	// (cache + request queue) and only fails on invalid arguments; the
	// native baseline programs the device directly and still fails when
	// the PCAP is busy.
	StartReconfig(req Request, t *TaskInfo, prr int) bool
	// AllocIRQ wires a PL interrupt line for the region to the client and
	// returns the GIC interrupt ID (ok=false when lines are exhausted).
	AllocIRQ(req Request, prr int) (irq int, ok bool)
}

// Reply packing lives in the shared ABI (abi.MakeReply and friends);
// these wrappers keep the package-local names the harnesses use.

// MakeReply packs status, PRR and IRQ into one reply word.
func MakeReply(status uint32, prr, irq int) uint32 { return abi.MakeReply(status, prr, irq) }

// StatusOf extracts the status byte of a reply.
func StatusOf(reply uint32) uint32 { return abi.ReplyStatus(reply) }

// PRROf extracts the granted PRR (-1 when none).
func PRROf(reply uint32) int { return abi.ReplyPRR(reply) }

// IRQOf extracts the allocated GIC interrupt id (0 when none).
func IRQOf(reply uint32) int { return abi.ReplyIRQ(reply) }

// Stats counts manager outcomes.
type Stats struct {
	Requests  uint64
	Hits      uint64 // task already configured in a usable PRR
	Reconfigs uint64 // PCAP transfer launched
	Reclaims  uint64 // region taken from another VM
	Busy      uint64 // no idle PRR
	Faulted   uint64 // every compatible PRR quarantined
	Releases  uint64
}

// Manager is the decision core plus tables.
type Manager struct {
	Tasks map[uint16]*TaskInfo
	PRRs  []PRRState

	// WorkFactor scales the modelled manager path length. The default of
	// 2.2 calibrates the end-to-end handler to the paper's ~15 µs
	// execution time on the simulated 660 MHz pipeline.
	WorkFactor float64

	// dataVA is where the manager's tables live in its own address space;
	// table scans touch this range so manager data competes for cache.
	dataVA uint32

	Stats Stats
}

// NewManager builds a manager for nPRR regions.
func NewManager(nPRR int, dataVA uint32) *Manager {
	m := &Manager{
		Tasks:      make(map[uint16]*TaskInfo),
		PRRs:       make([]PRRState, nPRR),
		WorkFactor: 2.2,
		dataVA:     dataVA,
	}
	for i := range m.PRRs {
		m.PRRs[i] = PRRState{Client: -1, TaskID: -1}
	}
	return m
}

// AddTask registers a task-table entry.
func (m *Manager) AddTask(t *TaskInfo) {
	if _, dup := m.Tasks[t.ID]; dup {
		panic(fmt.Sprintf("hwtask: duplicate task id %d", t.ID))
	}
	m.Tasks[t.ID] = t
}

// exec charges n×WorkFactor instructions on the manager's context.
func (m *Manager) exec(ctx *cpu.ExecContext, n int) {
	ctx.Exec(int(float64(n) * m.WorkFactor))
}

// touchTask streams the task-table entry for id (batched engine).
func (m *Manager) touchTask(ctx *cpu.ExecContext, id uint16) {
	ctx.StreamRange(m.dataVA+0x1000+uint32(id)*64, 64, 8, false)
}

// touchPRR streams one PRR-table entry (write when mutating).
func (m *Manager) touchPRR(ctx *cpu.ExecContext, prr int, write bool) {
	ctx.StreamRange(m.dataVA+0x2000+uint32(prr)*32, 32, 8, write)
}

// Handle runs the Fig. 7 routine for one request and returns the reply
// status. All privileged effects go through act.
func (m *Manager) Handle(ctx *cpu.ExecContext, req Request, act Actions) uint32 {
	m.Stats.Requests++
	// Stage 1-2 prologue: validate the request, look up the task table.
	m.exec(ctx, 900)

	if req.Kind == ReqRelease {
		return m.handleRelease(ctx, req, act)
	}

	t, ok := m.Tasks[req.TaskID]
	if !ok {
		return ReplyInval
	}
	m.touchTask(ctx, req.TaskID)

	// Stage 2: select a PRR. Preference order keeps reconfigurations rare:
	// (a) an idle compatible region already configured with this task,
	// (b) an idle empty region, (c) any idle compatible region (reconfig).
	// Regions currently executing are never victims; if none is idle the
	// request fails with Busy (Fig. 7 stage 2).
	// Quarantined regions (repeated config faults) are skipped in every
	// pass — the self-healing placement: a task whose favourite region
	// went bad lands on a healthy compatible one instead.
	m.exec(ctx, 300+140*len(t.PRRList))
	chosen, needReconfig := -1, false
	for _, r := range t.PRRList {
		m.touchPRR(ctx, r, false)
		if act.PRRQuarantined(r) {
			continue
		}
		if m.PRRs[r].TaskID == int(req.TaskID) && !m.PRRs[r].Loading && !act.PRRBusy(r) {
			chosen = r
			break
		}
	}
	if chosen < 0 {
		for _, r := range t.PRRList {
			if m.PRRs[r].TaskID < 0 && !act.PRRBusy(r) && !act.PRRQuarantined(r) {
				chosen, needReconfig = r, true
				break
			}
		}
	}
	if chosen < 0 {
		for _, r := range t.PRRList {
			if !act.PRRBusy(r) && !m.PRRs[r].Loading && !act.PRRQuarantined(r) {
				chosen, needReconfig = r, true
				break
			}
		}
	}
	if chosen < 0 {
		m.exec(ctx, 200)
		healthy := 0
		for _, r := range t.PRRList {
			if !act.PRRQuarantined(r) {
				healthy++
			}
		}
		if healthy == 0 {
			// Nothing compatible is left in the placement pool: Busy would
			// invite a futile retry storm, so tell the client the truth.
			m.Stats.Faulted++
			return ReplyFaulted
		}
		m.Stats.Busy++
		return ReplyBusy
	}

	// Stage 3 preamble: reclaim from the previous owner if necessary
	// (consistency save + demap, §IV-C).
	if prev := m.PRRs[chosen].Client; prev >= 0 && prev != req.ClientID {
		m.Stats.Reclaims++
		m.exec(ctx, 250)
		act.Reclaim(prev, chosen)
	}

	// Stage 3: map the hardware-task interface into the client.
	m.exec(ctx, 600)
	if !act.MapIface(req, chosen) {
		return ReplyInval
	}

	// Stage 4: load the hwMMU with the client's data section.
	m.exec(ctx, 350)
	if !act.LoadWindow(req, chosen) {
		return ReplyInval
	}

	// Interrupt plumbing (§IV-D).
	m.exec(ctx, 300)
	irq, _ := act.AllocIRQ(req, chosen)

	// Stage 5: reconfigure if the region does not hold the task yet. The
	// manager launches the PCAP transfer and does NOT wait ("to overlap
	// the significant reconfiguration overhead", §IV-E).
	status := uint32(ReplyOK)
	if needReconfig {
		m.exec(ctx, 500)
		if !act.StartReconfig(req, t, chosen) {
			// Native baseline only: PCAP busy with someone else's
			// transfer, so the caller retries. The virtualized path
			// queues the request in the reconfiguration pipeline instead.
			m.Stats.Busy++
			return ReplyBusy
		}
		m.Stats.Reconfigs++
		m.PRRs[chosen].Loading = true
		status = ReplyReconfig
	} else {
		m.Stats.Hits++
	}

	// Stage 6 epilogue: update the PRR table and reply.
	m.PRRs[chosen].Client = req.ClientID
	m.PRRs[chosen].TaskID = int(req.TaskID)
	m.PRRs[chosen].Executions++
	m.touchPRR(ctx, chosen, true)
	m.exec(ctx, 650)
	return MakeReply(status, chosen, irq)
}

func (m *Manager) handleRelease(ctx *cpu.ExecContext, req Request, act Actions) uint32 {
	m.Stats.Releases++
	for r := range m.PRRs {
		if m.PRRs[r].Client == req.ClientID && (req.TaskID == 0 || m.PRRs[r].TaskID == int(req.TaskID)) {
			m.exec(ctx, 400)
			act.Reclaim(req.ClientID, r)
			m.PRRs[r].Client = -1
			// Configuration stays loaded for reuse by the next client.
			m.touchPRR(ctx, r, true)
		}
	}
	return ReplyOK
}

// NotifyLoaded marks a PCAP completion for the region (called by the
// harness when the completion IRQ is processed, or polled).
func (m *Manager) NotifyLoaded(prr int) { m.PRRs[prr].Loading = false }

// OwnerOf returns the client owning prr (-1 when free).
func (m *Manager) OwnerOf(prr int) int { return m.PRRs[prr].Client }
