package hwtask

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// fakeActions records effects for decision-core tests.
type fakeActions struct {
	busy      map[int]bool
	quar      map[int]bool
	reclaims  [][2]int
	mapped    []int
	windows   []int
	reconfigs []int
	irqs      []int
	mapFail   bool
	pcapBusy  bool
}

func (f *fakeActions) PRRBusy(prr int) bool        { return f.busy[prr] }
func (f *fakeActions) PRRQuarantined(prr int) bool { return f.quar[prr] }
func (f *fakeActions) Reclaim(c, p int)            { f.reclaims = append(f.reclaims, [2]int{c, p}) }
func (f *fakeActions) MapIface(r Request, p int) bool {
	if f.mapFail {
		return false
	}
	f.mapped = append(f.mapped, p)
	return true
}
func (f *fakeActions) LoadWindow(r Request, p int) bool {
	f.windows = append(f.windows, p)
	return true
}
func (f *fakeActions) StartReconfig(r Request, t *TaskInfo, p int) bool {
	if f.pcapBusy {
		return false
	}
	f.reconfigs = append(f.reconfigs, p)
	return true
}
func (f *fakeActions) AllocIRQ(r Request, p int) (int, bool) {
	f.irqs = append(f.irqs, p)
	return 61 + p, true
}

func testCtx() *cpu.ExecContext {
	clock := simclock.New()
	bus := physmem.NewBus()
	c := cpu.New(clock, bus, gic.New())
	c.MMU.Enabled = false
	return cpu.NewExecContext(c, "mgr", 0x1_0000, 32<<10)
}

func mgr(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(4, 0x10_0000)
	caps := PaperPRRCapacities()
	for _, s := range PaperTaskSet() {
		var prrs []int
		for r, c := range caps {
			if s.Needs.Fits(c) {
				prrs = append(prrs, r)
			}
		}
		m.AddTask(&TaskInfo{ID: s.ID, Name: s.Name, Needs: s.Needs, PRRList: prrs,
			BitstreamLen: uint32(s.BitLen)})
	}
	return m
}

func req(client int, task uint16) Request {
	return Request{Kind: ReqAcquire, ReqID: 1, ClientID: client, TaskID: task,
		IfaceVA: 0x0900_0000, DataVA: 0x0800_0000}
}

func TestFFTOnlyFitsLargePRRs(t *testing.T) {
	m := mgr(t)
	fft := m.Tasks[TaskFFT8192]
	if len(fft.PRRList) != 2 || fft.PRRList[0] != 0 || fft.PRRList[1] != 1 {
		t.Errorf("FFT-8192 PRR list = %v, want [0 1] (paper §V-B)", fft.PRRList)
	}
	qam := m.Tasks[TaskQAM4]
	if len(qam.PRRList) != 4 {
		t.Errorf("QAM-4 PRR list = %v, want all four regions", qam.PRRList)
	}
}

func TestColdAllocationReconfigures(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	status := StatusOf(m.Handle(testCtx(), req(1, TaskFFT1024), act))
	if status != ReplyReconfig {
		t.Fatalf("cold allocation status = %d, want reconfig", status)
	}
	if len(act.reconfigs) != 1 || act.reconfigs[0] != 0 {
		t.Errorf("reconfigs = %v, want [0]", act.reconfigs)
	}
	if len(act.mapped) != 1 || len(act.windows) != 1 || len(act.irqs) != 1 {
		t.Error("stages 3/4/IRQ not all executed")
	}
	if m.PRRs[0].Client != 1 || m.PRRs[0].TaskID != TaskFFT1024 {
		t.Errorf("PRR table after allocation: %+v", m.PRRs[0])
	}
}

func TestWarmAllocationAvoidsReconfig(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	m.Handle(testCtx(), req(1, TaskQAM16), act)
	m.NotifyLoaded(0)
	// Same task again, same client: configuration is already loaded.
	status := StatusOf(m.Handle(testCtx(), req(1, TaskQAM16), act))
	if status != ReplyOK {
		t.Fatalf("warm allocation status = %d, want OK", status)
	}
	if len(act.reconfigs) != 1 {
		t.Errorf("reconfig launched twice for the same configuration (%v)", act.reconfigs)
	}
	if m.Stats.Hits != 1 {
		t.Errorf("hits = %d, want 1", m.Stats.Hits)
	}
}

func TestReclaimFromOtherVM(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	m.Handle(testCtx(), req(1, TaskQAM4), act)
	m.NotifyLoaded(0)
	// VM 2 wants the same task: region must be reclaimed from VM 1.
	status := StatusOf(m.Handle(testCtx(), req(2, TaskQAM4), act))
	if status != ReplyOK {
		t.Fatalf("status = %d", status)
	}
	if len(act.reclaims) != 1 || act.reclaims[0] != [2]int{1, 0} {
		t.Errorf("reclaims = %v, want [[1 0]] (§IV-C handover)", act.reclaims)
	}
	if m.OwnerOf(0) != 2 {
		t.Errorf("owner = %d, want 2", m.OwnerOf(0))
	}
}

func TestBusyWhenAllRegionsExecuting(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{0: true, 1: true}}
	status := m.Handle(testCtx(), req(1, TaskFFT256), act)
	if status != ReplyBusy {
		t.Fatalf("status = %d, want Busy (Fig. 7 stage 2)", status)
	}
	if m.Stats.Busy != 1 {
		t.Error("busy outcome not counted")
	}
	if len(act.mapped) != 0 {
		t.Error("mapping performed despite Busy")
	}
}

func TestBusyRegionsNeverVictims(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	// Fill both large PRRs with FFT tasks.
	m.Handle(testCtx(), req(1, TaskFFT256), act)
	m.NotifyLoaded(0)
	m.Handle(testCtx(), req(2, TaskFFT512), act)
	m.NotifyLoaded(1)
	// PRR0 starts executing; a request for a third FFT must take PRR1.
	act.busy = map[int]bool{0: true}
	status := StatusOf(m.Handle(testCtx(), req(3, TaskFFT1024), act))
	if status != ReplyReconfig {
		t.Fatalf("status = %d", status)
	}
	if got := act.reconfigs[len(act.reconfigs)-1]; got != 1 {
		t.Errorf("victim = PRR%d, want PRR1 (PRR0 is executing)", got)
	}
}

func TestPCAPContentionReturnsBusy(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}, pcapBusy: true}
	status := m.Handle(testCtx(), req(1, TaskFFT256), act)
	if status != ReplyBusy {
		t.Errorf("status = %d, want Busy when PCAP is occupied", status)
	}
}

func TestUnknownTaskRejected(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	if status := m.Handle(testCtx(), req(1, 999), act); status != ReplyInval {
		t.Errorf("unknown task status = %d, want Inval", status)
	}
}

func TestRelease(t *testing.T) {
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	m.Handle(testCtx(), req(1, TaskQAM4), act)
	m.NotifyLoaded(0)
	status := m.Handle(testCtx(), Request{Kind: ReqRelease, ClientID: 1, TaskID: TaskQAM4}, act)
	if status != ReplyOK {
		t.Fatalf("release status = %d", status)
	}
	if m.OwnerOf(0) != -1 {
		t.Error("region still owned after release")
	}
	if m.PRRs[0].TaskID != TaskQAM4 {
		t.Error("release dropped the loaded configuration (should stay for reuse)")
	}
	// Next client gets a warm hit.
	st := StatusOf(m.Handle(testCtx(), req(2, TaskQAM4), act))
	if st != ReplyOK || m.Stats.Hits != 1 {
		t.Errorf("post-release allocation: status=%d hits=%d", st, m.Stats.Hits)
	}
}

func TestInstallTaskSet(t *testing.T) {
	bus := physmem.NewBus()
	m := NewManager(4, 0x10_0000)
	caps := PaperPRRCapacities()
	if err := InstallTaskSet(m, bus, physmem.DDRBase+0xA0_0000, caps, PaperTaskSet()); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != 9 {
		t.Fatalf("installed %d tasks, want 9 (6 FFT + 3 QAM)", len(m.Tasks))
	}
	// Bitstreams must decode from the store at their recorded offsets.
	for _, task := range m.Tasks {
		raw, err := bus.ReadBytes(physmem.DDRBase+0xA0_0000+physmem.Addr(task.BitstreamOff), int(task.BitstreamLen))
		if err != nil {
			t.Fatalf("%s: read: %v", task.Name, err)
		}
		bs, err := bitstream.Decode(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", task.Name, err)
		}
		if bs.TaskID != task.ID {
			t.Errorf("%s: bitstream id %d != task id %d", task.Name, bs.TaskID, task.ID)
		}
		if task.ReconfigLatency == 0 {
			t.Errorf("%s: zero reconfig latency", task.Name)
		}
	}
}

func TestExclusiveOwnership(t *testing.T) {
	// Property from §IV-C: "a hardware task can only be accessed by no
	// more than one VM at a time" — after any request sequence, each PRR
	// has at most one client.
	m := mgr(t)
	act := &fakeActions{busy: map[int]bool{}}
	tasks := []uint16{TaskQAM4, TaskQAM16, TaskFFT256, TaskQAM64, TaskFFT512}
	for i := 0; i < 40; i++ {
		client := i%4 + 1
		m.Handle(testCtx(), req(client, tasks[i%len(tasks)]), act)
		for r := range m.PRRs {
			m.NotifyLoaded(r)
		}
		owners := map[int]int{}
		for r := range m.PRRs {
			if c := m.OwnerOf(r); c >= 0 {
				owners[r] = c
			}
		}
		// each region has exactly one owner entry by construction; verify
		// a client's iface maps to at most the regions it owns
		for r, c := range owners {
			if c < 1 || c > 4 {
				t.Fatalf("iteration %d: PRR%d owned by bogus client %d", i, r, c)
			}
		}
	}
}
