package hwtask

import (
	"repro/internal/abi"
	"repro/internal/gic"
	"repro/internal/nova"
	"repro/internal/physmem"
	"repro/internal/pl"
)

// Service adapts Manager to a Mini-NOVA protection domain: the user-level
// Hardware Task Manager of §IV-E. It runs suspended at service priority
// and is woken by the kernel whenever a guest issues HcHwTaskRequest;
// every privileged effect goes through a capability portal. The service
// is born with no powers: nova.RegisterHwService delegates the kernel's
// device objects (request queue, PCAP, bitstream store, hw-task slots,
// client PDs) into its capability table at boot, and each HcMgr* portal
// rights-checks those capabilities on the way in.
type Service struct {
	M *Manager
	K *nova.Kernel
}

// NewService wires a manager to a kernel.
func NewService(m *Manager, k *nova.Kernel) *Service {
	return &Service{M: m, K: k}
}

// Name implements nova.Guest.
func (s *Service) Name() string { return "hwtask-manager" }

// RunSlice is the service loop: fetch request, handle, post reply; the
// HcMgrComplete portal suspends the service and hands back the next
// request when one arrives.
func (s *Service) RunSlice(env *nova.Env) {
	reqID := env.Hypercall(abi.HcMgrNextRequest)
	for {
		view, ok := s.K.MgrRequest(reqID)
		if !ok {
			reqID = env.Hypercall(abi.HcMgrComplete, reqID, abi.StatusInval)
			continue
		}
		kind := ReqAcquire
		if view.Kind == nova.HwReqRelease {
			kind = ReqRelease
		}
		req := Request{
			Kind:     kind,
			ReqID:    view.ID,
			ClientID: view.ClientID,
			TaskID:   view.TaskID,
			IfaceVA:  view.IfaceVA,
			DataVA:   view.DataVA,
		}
		// Opportunistically clear Loading flags for finished transfers:
		// a region is done loading once the reconfiguration pipeline has
		// nothing for it anywhere (fill, queue, or active download).
		if rc := s.K.Reconfig; rc != nil {
			for r := range s.M.PRRs {
				if s.M.PRRs[r].Loading && !rc.InFlight(r) {
					s.M.PRRs[r].Loading = false
				}
			}
		} else if s.K.Fabric != nil && !s.K.Fabric.PCAP.Busy() {
			for r := range s.M.PRRs {
				s.M.PRRs[r].Loading = false
			}
		}
		status := s.M.Handle(env.Ctx, req, &portalActions{env: env, req: req})
		reqID = env.Hypercall(abi.HcMgrComplete, reqID, status)
	}
}

// portalActions implements Actions through the HcMgr* capability portals.
type portalActions struct {
	env *nova.Env
	req Request
}

func (a *portalActions) PRRBusy(prr int) bool {
	// Epoch-snapshot read: on a multi-core machine the run/done bits flip
	// on client-core clocks, so the kernel answers from the last barrier's
	// snapshot instead of the live fabric state.
	return a.env.K.PRRBusy(prr)
}

func (a *portalActions) PRRQuarantined(prr int) bool {
	// Region health lives in the kernel's reconfiguration pipeline, on
	// the manager's own core — a direct read, no portal round trip.
	return a.env.K.PRRQuarantined(prr)
}

func (a *portalActions) Reclaim(clientID, prr int) {
	a.env.Hypercall(abi.HcMgrUnmapIface, uint32(clientID), uint32(prr))
}

func (a *portalActions) MapIface(req Request, prr int) bool {
	return a.env.Hypercall(abi.HcMgrMapIface, req.ReqID, uint32(prr)) == abi.StatusOK
}

func (a *portalActions) LoadWindow(req Request, prr int) bool {
	return a.env.Hypercall(abi.HcMgrHwMMULoad, uint32(req.ClientID), uint32(prr)) == abi.StatusOK
}

// StartReconfig implements Actions through the HcMgrPCAPStart portal,
// which hands the download to the kernel's reconfiguration pipeline:
// cached bitstreams skip the SD staging read, and a busy PCAP queues the
// request (by client priority) instead of failing it back here.
func (a *portalActions) StartReconfig(req Request, t *TaskInfo, prr int) bool {
	return a.env.Hypercall(abi.HcMgrPCAPStart, req.ReqID, t.BitstreamOff, t.BitstreamLen, uint32(prr)) == abi.StatusOK
}

func (a *portalActions) AllocIRQ(req Request, prr int) (int, bool) {
	ret := a.env.Hypercall(abi.HcMgrAllocIRQ, req.ReqID, uint32(prr))
	if ret < 32 || ret == abi.StatusErr {
		return 0, false
	}
	return int(ret), true
}

// NativeActions implements Actions for the non-virtualized baseline: the
// manager runs as an RTOS function in a unified, privileged address space
// (§V-B "native execution"). There are no page tables to edit and no vGIC;
// only the physical devices are programmed.
type NativeActions struct {
	Fabric *pl.Fabric
	// Sections maps client id -> physical data-section window.
	Sections map[int]pl.Window
	// IRQEnable enables a GIC line directly (native uCOS owns the GIC).
	IRQEnable func(irq int)
	// StorePA is the physical base of the bitstream store.
	StorePA uint32
}

// PRRBusy implements Actions.
func (a *NativeActions) PRRBusy(prr int) bool { return a.Fabric.Busy(prr) }

// PRRQuarantined implements Actions: the native baseline runs without a
// fault plan, so every region is always healthy.
func (a *NativeActions) PRRQuarantined(prr int) bool { return false }

// Reclaim implements Actions: nothing to demap in a unified space.
func (a *NativeActions) Reclaim(clientID, prr int) {}

// MapIface implements Actions: the register group is already visible.
func (a *NativeActions) MapIface(req Request, prr int) bool { return true }

// LoadWindow implements Actions: still required — the hwMMU polices DMA
// regardless of virtualization. The consistency flag at the head of the
// data section is reset for the new owner, as the kernel does under
// virtualization.
func (a *NativeActions) LoadWindow(req Request, prr int) bool {
	w, ok := a.Sections[req.ClientID]
	if !ok {
		return false
	}
	a.Fabric.HwMMU.Load(prr, w)
	_ = a.Fabric.Bus.Write32(w.Base, 1 /* owned */)
	return true
}

// StartReconfig implements Actions by programming the PCAP directly.
func (a *NativeActions) StartReconfig(req Request, t *TaskInfo, prr int) bool {
	if a.Fabric.PCAP.Busy() {
		return false
	}
	bus := a.Fabric.Bus
	dc := physmem.Addr(devcfgBase)
	_ = bus.Write32(dc+pl.PCAPRegSrc, a.StorePA+t.BitstreamOff)
	_ = bus.Write32(dc+pl.PCAPRegLen, t.BitstreamLen)
	_ = bus.Write32(dc+pl.PCAPRegTarget, uint32(prr))
	_ = bus.Write32(dc+pl.PCAPRegCtrl, 1)
	return true
}

// AllocIRQ implements Actions: allocate the line and enable it at the GIC
// (the native RTOS receives it directly).
func (a *NativeActions) AllocIRQ(req Request, prr int) (int, bool) {
	if line := a.Fabric.PRRs[prr].IRQLine; line >= 0 {
		return gic.PLIRQBase + line, true
	}
	irq, err := a.Fabric.AllocateIRQ(prr)
	if err != nil {
		return 0, false
	}
	if a.IRQEnable != nil {
		a.IRQEnable(irq)
	}
	return irq, true
}

const devcfgBase = 0xF800_7000
