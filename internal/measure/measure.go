// Package measure provides the instrumentation used by the evaluation
// harness: named latency probes accumulating cycle-duration samples. The
// paper's Table III numbers are averages over "a sufficient number of
// iterations" of exactly these phases (HW Manager entry, exit, execution,
// PL IRQ entry); the probes aggregate the same way.
package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// Probe accumulates duration samples for one measured phase.
type Probe struct {
	Count uint64
	Total simclock.Cycles
	Min   simclock.Cycles
	Max   simclock.Cycles

	// Keep retains every sample for percentile reporting (off by
	// default: the Table III probes only need the running aggregates).
	// Set it before the first Add: samples recorded while Keep was off
	// are folded into the aggregates only and cannot be recovered, so a
	// late Keep skews every percentile toward the tail that followed it.
	Keep    bool
	samples []simclock.Cycles
}

// Add records one sample.
func (p *Probe) Add(d simclock.Cycles) {
	if p.Count == 0 || d < p.Min {
		p.Min = d
	}
	if d > p.Max {
		p.Max = d
	}
	p.Count++
	p.Total += d
	if p.Keep {
		p.samples = append(p.samples, d)
	}
}

// MeanCycles returns the average sample in cycles (0 when empty).
func (p *Probe) MeanCycles() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Total) / float64(p.Count)
}

// MeanMicros returns the average sample in microseconds.
func (p *Probe) MeanMicros() float64 {
	return p.MeanCycles() / float64(simclock.CyclesPerMicrosecond)
}

// Percentile returns the q-th percentile (0..100, nearest-rank) of the
// retained samples: the smallest sample with at least q% of the set at
// or below it. q <= 0 (and NaN) return the minimum, q >= 100 the
// maximum; a single-sample probe returns that sample for every q. It
// requires Keep; with no retained samples it returns 0.
func (p *Probe) Percentile(q float64) simclock.Cycles {
	if len(p.samples) == 0 {
		return 0
	}
	sorted := make([]simclock.Cycles, len(p.samples))
	copy(sorted, p.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 || math.IsNaN(q) {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Samples returns a copy of the retained samples (empty without Keep).
func (p *Probe) Samples() []simclock.Cycles {
	out := make([]simclock.Cycles, len(p.samples))
	copy(out, p.samples)
	return out
}

// Set is a collection of named probes plus scalar counters (unitless
// statistics such as cache hit counts and queue depths that sweeps report
// alongside the latency probes).
//
// Set.Add and the counter mutators are safe to call from concurrent core
// goroutines during a parallel run: the probe aggregates (Count, Total,
// Min, Max) are commutative, so the final values are independent of host
// interleaving. Reading a *Probe returned by Get is only safe once the run
// has quiesced (the reporting paths all run after Run/RunParallel return).
type Set struct {
	mu       sync.Mutex
	probes   map[string]*Probe
	counters map[string]float64
}

// NewSet returns an empty probe set.
func NewSet() *Set {
	return &Set{probes: make(map[string]*Probe), counters: make(map[string]float64)}
}

// Get returns (creating if needed) the named probe.
func (s *Set) Get(name string) *Probe {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(name)
}

func (s *Set) get(name string) *Probe {
	p, ok := s.probes[name]
	if !ok {
		p = &Probe{}
		s.probes[name] = p
	}
	return p
}

// Add records a sample on the named probe.
func (s *Set) Add(name string, d simclock.Cycles) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.get(name).Add(d)
}

// SetCounter stores a scalar statistic under name.
func (s *Set) SetCounter(name string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[name] = v
}

// AddCounter accumulates delta into the named counter.
func (s *Set) AddCounter(name string, delta float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[name] += delta
}

// Counter returns the named counter (0 when unset).
func (s *Set) Counter(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// CounterNames lists counters in sorted order.
func (s *Set) CounterNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counters))
	for n := range s.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset clears all samples and counters but keeps the probe names and
// their sample-retention settings.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//detlint:ordered every probe is reset independently; no cross-probe state
	for _, p := range s.probes {
		*p = Probe{Keep: p.Keep}
	}
	clear(s.counters)
}

// Names lists probes in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.probes))
	for n := range s.probes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders a compact summary table: probes then counters, each in
// sorted-name order, so two dumps of the same state are byte-identical.
// The whole render happens under one lock — the previous version re-read
// the maps unlocked between the (locking) name listings, which both raced
// concurrent writers and could observe a probe added mid-render.
func (s *Set) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	probeNames := make([]string, 0, len(s.probes))
	for n := range s.probes {
		probeNames = append(probeNames, n)
	}
	sort.Strings(probeNames)
	counterNames := make([]string, 0, len(s.counters))
	for n := range s.counters {
		counterNames = append(counterNames, n)
	}
	sort.Strings(counterNames)
	var b strings.Builder
	for _, n := range probeNames {
		p := s.probes[n]
		fmt.Fprintf(&b, "%-16s n=%-6d mean=%8.3fus min=%8.3fus max=%8.3fus\n",
			n, p.Count, p.MeanMicros(), p.Min.Micros(), p.Max.Micros())
	}
	for _, n := range counterNames {
		fmt.Fprintf(&b, "%-28s %g\n", n, s.counters[n])
	}
	return b.String()
}

// Phase names used by the kernel for the Table III columns.
const (
	PhaseMgrEntry   = "mgr_entry"   // hypercall to manager dispatch
	PhaseMgrExit    = "mgr_exit"    // manager self-suspend to guest resume
	PhaseMgrExec    = "mgr_exec"    // manager request handling
	PhasePLIRQEntry = "plirq_entry" // exception vector to vGIC injection
	PhaseVMSwitch   = "vm_switch"   // full world switch
	PhaseHypercall  = "hypercall"   // generic hypercall round trip
	PhaseIPCCall    = "ipc_call"    // portal IPC call-to-reply round trip

	// Reconfiguration-pipeline phases (internal/reconfig): end-to-end
	// latency of one managed reconfiguration, split by cache outcome,
	// plus the time a ready request waited for the PCAP channel.
	PhaseReconfigCold  = "reconfig_cold"  // SD fill + queue + PCAP download
	PhaseReconfigWarm  = "reconfig_warm"  // cached image: queue + download
	PhaseReconfigQWait = "reconfig_qwait" // ready -> PCAP start
)
