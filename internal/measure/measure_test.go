package measure

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestProbeAggregates(t *testing.T) {
	var p Probe
	for _, d := range []simclock.Cycles{30, 10, 20} {
		p.Add(d)
	}
	if p.Count != 3 || p.Total != 60 {
		t.Errorf("count/total = %d/%d, want 3/60", p.Count, p.Total)
	}
	if p.Min != 10 || p.Max != 30 {
		t.Errorf("min/max = %d/%d, want 10/30", p.Min, p.Max)
	}
	if got := p.MeanCycles(); got != 20 {
		t.Errorf("MeanCycles = %v, want 20", got)
	}
}

func TestProbeCycleAccounting(t *testing.T) {
	// The canonical conversion is 660 cycles == 1 µs (660 MHz A9).
	var p Probe
	p.Add(simclock.Cycles(simclock.CyclesPerMicrosecond))
	p.Add(simclock.Cycles(3 * simclock.CyclesPerMicrosecond))
	if got := p.MeanMicros(); got < 1.999 || got > 2.001 {
		t.Errorf("MeanMicros = %v, want 2", got)
	}
}

func TestEmptyProbeMeansZero(t *testing.T) {
	var p Probe
	if p.MeanCycles() != 0 || p.MeanMicros() != 0 {
		t.Error("empty probe mean not zero")
	}
	if p.Percentile(50) != 0 {
		t.Error("empty probe percentile not zero")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	p := Probe{Keep: true}
	for d := simclock.Cycles(10); d <= 100; d += 10 {
		p.Add(d) // 10..100
	}
	cases := []struct {
		q    float64
		want simclock.Cycles
	}{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {95, 100}, {100, 100},
	}
	for _, c := range cases {
		if got := p.Percentile(c.q); got != c.want {
			t.Errorf("P%.0f = %d, want %d", c.q, got, c.want)
		}
	}
}

// Boundary conditions of the nearest-rank definition: out-of-range and
// non-finite q values clamp instead of indexing out of bounds, and a
// single-sample probe answers that sample for every q.
func TestPercentileBoundaries(t *testing.T) {
	single := Probe{Keep: true}
	single.Add(42)
	pair := Probe{Keep: true}
	pair.Add(10)
	pair.Add(20)
	cases := []struct {
		name string
		p    *Probe
		q    float64
		want simclock.Cycles
	}{
		{"single q=0", &single, 0, 42},
		{"single q=50", &single, 50, 42},
		{"single q=100", &single, 100, 42},
		{"single q<0", &single, -5, 42},
		{"single q>100", &single, 250, 42},
		{"single NaN", &single, math.NaN(), 42},
		{"pair q=0", &pair, 0, 10},
		{"pair q=50", &pair, 50, 10},
		{"pair q=50.0001", &pair, 50.0001, 20},
		{"pair q=100", &pair, 100, 20},
		{"pair q<0", &pair, -1, 10},
		{"pair q>100", &pair, 101, 20},
		{"pair NaN", &pair, math.NaN(), 10},
	}
	for _, c := range cases {
		if got := c.p.Percentile(c.q); got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, got, c.want)
		}
	}
}

func TestPercentileRequiresKeep(t *testing.T) {
	var p Probe // Keep off
	p.Add(42)
	if got := p.Percentile(50); got != 0 {
		t.Errorf("percentile without retention = %d, want 0", got)
	}
	if len(p.Samples()) != 0 {
		t.Error("samples retained without Keep")
	}
}

func TestSamplesCopy(t *testing.T) {
	p := Probe{Keep: true}
	p.Add(7)
	s := p.Samples()
	s[0] = 99
	if p.Percentile(100) != 7 {
		t.Error("Samples did not return a copy")
	}
}

func TestSetGetAddAndNames(t *testing.T) {
	s := NewSet()
	s.Add("b_phase", 100)
	s.Add("a_phase", 50)
	s.Add("b_phase", 200)
	if got := s.Get("b_phase").Count; got != 2 {
		t.Errorf("b_phase count = %d, want 2", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a_phase" || names[1] != "b_phase" {
		t.Errorf("Names = %v, want sorted [a_phase b_phase]", names)
	}
	// Get must create on demand and hand back the same probe.
	if s.Get("new") != s.Get("new") {
		t.Error("Get not stable")
	}
}

func TestSetResetKeepsNamesAndRetention(t *testing.T) {
	s := NewSet()
	p := s.Get("phase")
	p.Keep = true
	p.Add(10)
	s.Reset()
	if got := s.Get("phase").Count; got != 0 {
		t.Errorf("count after reset = %d, want 0", got)
	}
	if !s.Get("phase").Keep {
		t.Error("reset dropped the retention flag")
	}
	s.Get("phase").Add(30)
	if got := s.Get("phase").Percentile(50); got != 30 {
		t.Errorf("post-reset percentile = %d, want 30", got)
	}
	if names := s.Names(); len(names) != 1 {
		t.Errorf("reset dropped probe names: %v", names)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add(PhaseVMSwitch, 660) // 1 µs
	out := s.String()
	if !strings.Contains(out, PhaseVMSwitch) || !strings.Contains(out, "n=1") {
		t.Errorf("summary missing fields:\n%s", out)
	}
	if !strings.Contains(out, "1.000us") {
		t.Errorf("summary missing converted mean:\n%s", out)
	}
}

// String and CounterNames must render in sorted-name order regardless of
// insertion order: reports from two runs of the same workload have to
// diff cleanly.
func TestSetRenderingOrderStable(t *testing.T) {
	build := func(order []string) (*Set, string) {
		s := NewSet()
		for i, n := range order {
			s.Add("probe_"+n, simclock.Cycles(100*(i+1)))
			s.SetCounter("counter_"+n, float64(i))
		}
		return s, s.String()
	}
	a, aStr := build([]string{"z", "m", "a"})
	_, bStr := build([]string{"a", "z", "m"})
	if aStr == "" {
		t.Fatal("empty rendering")
	}
	// Same contents, different insertion order: identical render apart
	// from the per-probe values, so compare only the line ordering.
	lineNames := func(out string) []string {
		var names []string
		for _, l := range strings.Split(out, "\n") {
			if f := strings.Fields(l); len(f) > 0 {
				names = append(names, f[0])
			}
		}
		return names
	}
	an, bn := lineNames(aStr), lineNames(bStr)
	if len(an) != len(bn) {
		t.Fatalf("renderings differ in size: %v vs %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("rendering order depends on insertion order: %v vs %v", an, bn)
		}
	}
	for i := 1; i < len(an); i++ {
		if strings.HasPrefix(an[i-1], "probe_") == strings.HasPrefix(an[i], "probe_") && an[i-1] > an[i] {
			t.Fatalf("names not sorted within section: %v", an)
		}
	}
	cn := a.CounterNames()
	for i := 1; i < len(cn); i++ {
		if cn[i-1] > cn[i] {
			t.Fatalf("CounterNames not sorted: %v", cn)
		}
	}
}
