// Package mmu models the ARM VMSA virtual memory system used by the
// Cortex-A9: a two-level page-table format (1 MB sections + 4 KB small
// pages), 16 protection domains checked against the DACR, access-permission
// bits, TTBR/CONTEXTIDR registers and hardware table walks.
//
// Page tables are real data structures stored in simulated physical memory
// (through physmem.Bus), so a table walk fetches descriptors through the
// same L2 cache the rest of the system uses — the TLB-miss cost that Table
// III attributes to VM multiplexing comes out of this mechanism, not a
// formula.
//
// This is the substrate for two Mini-NOVA mechanisms from the paper:
//   - §III-C / Table II: guest-kernel vs guest-user isolation via DACR
//     (both run in the CPU's non-privileged mode, so AP bits alone cannot
//     separate them),
//   - §IV-C / Fig. 5: exclusive hardware-task interfaces, where a PRR
//     register page is mapped into exactly one VM's table at a time.
package mmu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/physmem"
	"repro/internal/tlb"
)

// Descriptor type bits (simplified VMSA short-descriptor format).
const (
	descFault   = 0x0
	descCoarse  = 0x1 // L1: pointer to a 256-entry L2 table
	descSection = 0x2 // L1: 1 MB section
	descSmall   = 0x2 // L2: 4 KB small page
)

// Access permissions (AP[1:0] of the short-descriptor format).
const (
	APNone   uint8 = 0 // no access from any mode
	APPriv   uint8 = 1 // privileged read/write, user none (host-kernel pages)
	APUserRO uint8 = 2 // privileged read/write, user read-only
	APFull   uint8 = 3 // read/write from both privilege levels
)

// Domain access values held in DACR fields (2 bits each).
const (
	DomainNoAccess uint8 = 0 // any access generates a domain fault
	DomainClient   uint8 = 1 // accesses checked against AP bits
	DomainManager  uint8 = 3 // accesses never checked (used only by tests)
)

// FaultKind classifies MMU aborts, mirroring the DFSR encodings the kernel
// cares about.
type FaultKind int

const (
	// FaultTranslation: invalid descriptor — unmapped address.
	FaultTranslation FaultKind = iota
	// FaultDomain: the descriptor's domain is NoAccess in the current DACR.
	FaultDomain
	// FaultPermission: AP bits forbid the access in the current mode.
	FaultPermission
)

func (k FaultKind) String() string {
	switch k {
	case FaultTranslation:
		return "translation"
	case FaultDomain:
		return "domain"
	case FaultPermission:
		return "permission"
	}
	return "unknown"
}

// Fault describes an aborted access: the kernel's ABT handler receives it
// as the simulated FAR/FSR pair.
type Fault struct {
	Kind  FaultKind
	VA    uint32
	Write bool
	Fetch bool // prefetch abort (instruction side) vs data abort
}

func (f *Fault) Error() string {
	side := "data"
	if f.Fetch {
		side = "prefetch"
	}
	return fmt.Sprintf("mmu: %s abort (%s fault) at va=%#08x write=%v", side, f.Kind, f.VA, f.Write)
}

// MMU bundles the translation registers and performs checked translations.
type MMU struct {
	Bus   *physmem.Bus
	TLB   *tlb.TLB
	Cache *cache.Hierarchy

	Enabled bool
	TTBR    physmem.Addr // base of the active L1 table (16 KB aligned)
	DACR    uint32       // 16 × 2-bit domain fields
	ASID    uint8        // CONTEXTIDR low byte

	// KernelDomain entries are inserted into the TLB as global: the kernel
	// mapping is identical in every address space (paper §III-C maps the
	// microkernel into each VM's table at privileged-only permissions).
	KernelDomain uint8

	stats WalkStats
}

// WalkStats counts hardware table walks.
type WalkStats struct {
	Walks       uint64
	WalkCycles  uint64
	Faults      uint64
	DomainFlips uint64 // DACR rewrites (guest kernel<->user transitions)
}

// New builds an MMU over the given bus, TLB and cache hierarchy.
func New(bus *physmem.Bus, t *tlb.TLB, h *cache.Hierarchy) *MMU {
	return &MMU{Bus: bus, TLB: t, Cache: h, KernelDomain: 15}
}

// Stats returns walk counters.
func (m *MMU) Stats() WalkStats { return m.stats }

// SetDACR rewrites the domain register (counted: Mini-NOVA flips the guest
// kernel's domain between Client and NoAccess on every guest privilege
// transition, Table II).
func (m *MMU) SetDACR(v uint32) {
	if m.DACR != v {
		m.stats.DomainFlips++
	}
	m.DACR = v
}

// DomainAccess extracts the 2-bit field for domain d.
func (m *MMU) DomainAccess(d uint8) uint8 {
	return uint8(m.DACR >> (2 * d) & 3)
}

// Translate resolves va for the given mode, charging TLB/walk costs, and
// returns the physical address plus the cycle cost incurred. On failure the
// returned fault describes the abort and cost covers the walk so far.
func (m *MMU) Translate(va uint32, privileged, write, fetch bool) (physmem.Addr, uint64, *Fault) {
	if !m.Enabled {
		return physmem.Addr(va), 0, nil
	}
	var cost uint64
	tr, hit := m.TLB.Lookup(va, m.ASID)
	if !hit {
		var f *Fault
		tr, cost, f = m.walk(va, write, fetch)
		if f != nil {
			m.stats.Faults++
			return 0, cost, f
		}
		m.TLB.Insert(va, m.ASID, tr.Domain == m.KernelDomain, tr)
	}
	// Domain check (DACR).
	switch m.DomainAccess(tr.Domain) {
	case DomainNoAccess:
		m.stats.Faults++
		return 0, cost, &Fault{Kind: FaultDomain, VA: va, Write: write, Fetch: fetch}
	case DomainManager:
		return tr.PhysAddr(va), cost, nil
	}
	// Client: AP check.
	if !apAllows(tr.AP, privileged, write) {
		m.stats.Faults++
		return 0, cost, &Fault{Kind: FaultPermission, VA: va, Write: write, Fetch: fetch}
	}
	return tr.PhysAddr(va), cost, nil
}

func apAllows(ap uint8, privileged, write bool) bool {
	switch ap {
	case APNone:
		return false
	case APPriv:
		return privileged
	case APUserRO:
		return privileged || !write
	case APFull:
		return true
	}
	return false
}

// walk performs the two-level hardware table walk, charging L2-side
// descriptor fetch costs through the cache hierarchy.
func (m *MMU) walk(va uint32, write, fetch bool) (tlb.Translation, uint64, *Fault) {
	m.stats.Walks++
	cost := uint64(tlb.WalkPenalty)
	l1i := va >> 20
	l1addr := m.TTBR + physmem.Addr(l1i*4)
	cost += m.Cache.WalkCost(l1addr)
	l1d, err := m.Bus.Read32(l1addr)
	if err != nil {
		return tlb.Translation{}, cost, &Fault{Kind: FaultTranslation, VA: va, Write: write, Fetch: fetch}
	}
	switch l1d & 3 {
	case descSection:
		tr := tlb.Translation{
			PFN:    l1d >> 12 &^ 0xFF, // 1MB-aligned PA expressed as PFN
			Domain: uint8(l1d >> 5 & 0xF),
			AP:     uint8(l1d >> 10 & 3),
			Large:  true,
		}
		m.stats.WalkCycles += cost
		return tr, cost, nil
	case descCoarse:
		l2base := physmem.Addr(l1d &^ 0x3FF)
		l2i := va >> 12 & 0xFF
		l2addr := l2base + physmem.Addr(l2i*4)
		cost += m.Cache.WalkCost(l2addr)
		l2d, err := m.Bus.Read32(l2addr)
		if err != nil || l2d&3 != descSmall {
			return tlb.Translation{}, cost, &Fault{Kind: FaultTranslation, VA: va, Write: write, Fetch: fetch}
		}
		tr := tlb.Translation{
			PFN:    l2d >> 12,
			Domain: uint8(l1d >> 5 & 0xF), // domain lives in the L1 descriptor
			AP:     uint8(l2d >> 4 & 3),
		}
		m.stats.WalkCycles += cost
		return tr, cost, nil
	default:
		return tlb.Translation{}, cost, &Fault{Kind: FaultTranslation, VA: va, Write: write, Fetch: fetch}
	}
}
