package mmu

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/physmem"
	"repro/internal/tlb"
)

// rig builds a bus + MMU with a page table rooted in DDR.
func rig() (*physmem.Bus, *MMU, *PageTable, *FrameAllocator) {
	bus := physmem.NewBus()
	alloc := NewFrameAllocator(physmem.DDRBase+1<<20, 8<<20)
	pt := NewPageTable(bus, alloc)
	m := New(bus, tlb.NewA9(), cache.NewA9Hierarchy())
	m.Enabled = true
	m.TTBR = pt.Base
	m.SetDACR(uint32(DomainClient) << 2) // domain 1 = client
	m.ASID = 7
	return bus, m, pt, alloc
}

func TestDisabledMMUIsIdentity(t *testing.T) {
	bus := physmem.NewBus()
	m := New(bus, tlb.NewA9(), cache.NewA9Hierarchy())
	pa, cost, f := m.Translate(0x1234_5678, false, true, false)
	if f != nil || pa != 0x1234_5678 || cost != 0 {
		t.Errorf("disabled MMU: pa=%#x cost=%d fault=%v", pa, cost, f)
	}
}

func TestSmallPageTranslation(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APFull)
	pa, cost, f := m.Translate(0x0040_0ABC, false, false, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if want := physmem.DDRBase + 0x20_0ABC; pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
	if cost == 0 {
		t.Error("first translation cost 0 (walk should be charged)")
	}
	// Second translation hits TLB: zero cost.
	_, cost2, _ := m.Translate(0x0040_0ABC, false, true, false)
	if cost2 != 0 {
		t.Errorf("TLB-hit cost = %d, want 0", cost2)
	}
}

func TestSectionTranslation(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapSection(0x4010_0000, 0x0080_0000, 1, APFull)
	pa, _, f := m.Translate(0x4012_3456, false, false, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if pa != 0x0082_3456 {
		t.Errorf("pa = %#x, want 0x00823456", pa)
	}
}

func TestTranslationFaultOnUnmapped(t *testing.T) {
	_, m, _, _ := rig()
	_, _, f := m.Translate(0xDEAD_0000, false, false, false)
	if f == nil || f.Kind != FaultTranslation {
		t.Errorf("fault = %v, want translation fault", f)
	}
}

func TestDomainNoAccessFault(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 2, APFull) // domain 2
	m.SetDACR(uint32(DomainClient) << 2)                          // domain 2 not granted
	_, _, f := m.Translate(0x0040_0000, false, false, false)
	if f == nil || f.Kind != FaultDomain {
		t.Errorf("fault = %v, want domain fault", f)
	}
	// Grant domain 2 as client: access passes.
	m.SetDACR(uint32(DomainClient)<<2 | uint32(DomainClient)<<4)
	if _, _, f := m.Translate(0x0040_0000, false, false, false); f != nil {
		t.Errorf("after granting domain: %v", f)
	}
}

func TestManagerBypassesAP(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APPriv)
	m.SetDACR(uint32(DomainManager) << 2)
	if _, _, f := m.Translate(0x0040_0000, false, true, false); f != nil {
		t.Errorf("manager domain still checked AP: %v", f)
	}
}

func TestAPMatrix(t *testing.T) {
	cases := []struct {
		ap          uint8
		priv, write bool
		allowed     bool
	}{
		{APPriv, true, true, true},
		{APPriv, true, false, true},
		{APPriv, false, false, false},
		{APPriv, false, true, false},
		{APUserRO, false, false, true},
		{APUserRO, false, true, false},
		{APUserRO, true, true, true},
		{APFull, false, true, true},
		{APFull, false, false, true},
		{APNone, true, false, false},
	}
	for _, tc := range cases {
		_, m, pt, _ := rig()
		pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, tc.ap)
		_, _, f := m.Translate(0x0040_0000, tc.priv, tc.write, false)
		got := f == nil
		if got != tc.allowed {
			t.Errorf("ap=%d priv=%v write=%v: allowed=%v, want %v (fault %v)",
				tc.ap, tc.priv, tc.write, got, tc.allowed, f)
		}
		if f != nil && f.Kind != FaultPermission {
			t.Errorf("ap=%d: fault kind %v, want permission", tc.ap, f.Kind)
		}
	}
}

// TestDACRTable2 encodes the paper's Table II: the guest-kernel domain is
// Client when executing in guest-kernel context and NoAccess in guest-user
// context, so guest kernels are protected from their users while both run
// unprivileged.
func TestDACRTable2(t *testing.T) {
	_, m, pt, _ := rig()
	const (
		domGuestUser   = 1
		domGuestKernel = 2
	)
	pt.MapPage(0x0000_1000, physmem.DDRBase+0x30_0000, domGuestUser, APFull)
	pt.MapPage(0x4000_0000, physmem.DDRBase+0x31_0000, domGuestKernel, APFull)

	dacrGU := uint32(DomainClient) << (2 * domGuestUser) // GK section: NA
	dacrGK := dacrGU | uint32(DomainClient)<<(2*domGuestKernel)

	// Guest-user context: user page ok, kernel page domain-faults.
	m.SetDACR(dacrGU)
	if _, _, f := m.Translate(0x0000_1000, false, true, false); f != nil {
		t.Errorf("guest user page in GU context: %v", f)
	}
	if _, _, f := m.Translate(0x4000_0000, false, false, false); f == nil || f.Kind != FaultDomain {
		t.Errorf("guest kernel page in GU context: fault=%v, want domain fault", f)
	}
	// Guest-kernel context: both ok.
	m.SetDACR(dacrGK)
	if _, _, f := m.Translate(0x4000_0000, false, true, false); f != nil {
		t.Errorf("guest kernel page in GK context: %v", f)
	}
	if _, _, f := m.Translate(0x0000_1000, false, true, false); f != nil {
		t.Errorf("guest user page in GK context: %v", f)
	}
}

func TestUnmapPageRevokes(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APFull)
	if _, _, f := m.Translate(0x0040_0000, false, false, false); f != nil {
		t.Fatalf("pre-unmap: %v", f)
	}
	pt.UnmapPage(0x0040_0000)
	m.TLB.FlushVA(0x0040_0000, m.ASID)
	if _, _, f := m.Translate(0x0040_0000, false, false, false); f == nil {
		t.Error("access after unmap+flush succeeded")
	}
}

func TestStaleTLBWithoutFlush(t *testing.T) {
	// Documents the hardware hazard Mini-NOVA must handle: remapping
	// without a TLB flush leaves the old translation live.
	_, m, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APFull)
	m.Translate(0x0040_0000, false, false, false) // fills TLB
	pt.UnmapPage(0x0040_0000)
	if _, _, f := m.Translate(0x0040_0000, false, false, false); f != nil {
		t.Error("expected stale TLB hit without flush (hazard not modelled)")
	}
}

func TestLookupMatchesTranslate(t *testing.T) {
	_, m, pt, _ := rig()
	pt.MapPage(0x0044_0000, physmem.DDRBase+0x21_0000, 1, APFull)
	pa1, _, f := m.Translate(0x0044_0123, false, false, false)
	if f != nil {
		t.Fatal(f)
	}
	pa2, dom, ap, ok := pt.Lookup(0x0044_0123)
	if !ok || pa1 != pa2 || dom != 1 || ap != APFull {
		t.Errorf("Lookup = %#x dom=%d ap=%d ok=%v; Translate = %#x", pa2, dom, ap, ok, pa1)
	}
}

func TestDomainMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixing domains in one 1MB slot did not panic")
		}
	}()
	_, _, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APFull)
	pt.MapPage(0x0040_1000, physmem.DDRBase+0x20_1000, 2, APFull)
}

func TestDescriptorAddrs(t *testing.T) {
	_, _, pt, _ := rig()
	pt.MapPage(0x0040_0000, physmem.DDRBase+0x20_0000, 1, APFull)
	addrs := pt.DescriptorAddrs(0x0040_0000)
	if len(addrs) != 2 {
		t.Fatalf("small page walk touches %d descriptors, want 2", len(addrs))
	}
	pt.MapSection(0x5000_0000, 0x0400_0000, 1, APFull)
	if got := pt.DescriptorAddrs(0x5000_0000); len(got) != 1 {
		t.Errorf("section walk touches %d descriptors, want 1", len(got))
	}
}

// Property: translation is a function — two translations of the same VA
// with no intervening page-table writes give the same PA.
func TestPropertyTranslationStable(t *testing.T) {
	_, m, pt, _ := rig()
	for i := uint32(0); i < 64; i++ {
		pt.MapPage(0x0100_0000+i<<12, physmem.DDRBase+physmem.Addr(0x40_0000+i<<12), 1, APFull)
	}
	f := func(page, off uint16) bool {
		va := 0x0100_0000 + uint32(page%64)<<12 + uint32(off&0xFFF)
		pa1, _, f1 := m.Translate(va, false, false, false)
		pa2, _, f2 := m.Translate(va, false, true, false)
		return f1 == nil && f2 == nil && pa1 == pa2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameAllocatorAlignment(t *testing.T) {
	a := NewFrameAllocator(physmem.DDRBase+0x123, 1<<20)
	p := a.Alloc(L1TableSize, L1TableSize)
	if uint32(p)%L1TableSize != 0 {
		t.Errorf("allocation %#x not %d-aligned", p, L1TableSize)
	}
	q := a.Alloc(L2TableSize, L2TableSize)
	if q < p+L1TableSize {
		t.Error("allocations overlap")
	}
}
