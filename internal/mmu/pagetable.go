package mmu

import (
	"fmt"

	"repro/internal/physmem"
)

// L1TableSize is the byte size of a first-level table (4096 word entries
// covering the 4 GB space in 1 MB steps).
const L1TableSize = 16 << 10

// L2TableSize is the byte size of a coarse second-level table (256 word
// entries covering 1 MB in 4 KB steps).
const L2TableSize = 1 << 10

// FrameAllocator hands out physically-contiguous, aligned regions of RAM
// for page tables. Mini-NOVA's kernel owns one; the native-baseline system
// owns another.
type FrameAllocator struct {
	next physmem.Addr
	end  physmem.Addr
}

// NewFrameAllocator serves allocations from [base, base+size).
func NewFrameAllocator(base physmem.Addr, size uint32) *FrameAllocator {
	return &FrameAllocator{next: base, end: base + physmem.Addr(size)}
}

// Alloc returns size bytes aligned to align, or panics when the pool is
// exhausted (a configuration error, not a runtime condition).
func (a *FrameAllocator) Alloc(size, align uint32) physmem.Addr {
	p := (a.next + physmem.Addr(align-1)) &^ physmem.Addr(align-1)
	if p+physmem.Addr(size) > a.end {
		panic(fmt.Sprintf("mmu: frame allocator exhausted (want %d bytes)", size))
	}
	a.next = p + physmem.Addr(size)
	return p
}

// Remaining reports unallocated bytes.
func (a *FrameAllocator) Remaining() uint32 { return uint32(a.end - a.next) }

// PageTable manipulates one address space's two-level table in physical
// memory. All mutation goes through the bus so the hardware walker and any
// DMA observer see the same bytes. The *caller* (kernel code running under
// an ExecContext) is responsible for charging cycle costs of these edits;
// PageTable itself is pure mechanism.
type PageTable struct {
	Base  physmem.Addr // L1 table base (TTBR value)
	bus   *physmem.Bus
	alloc *FrameAllocator
}

// NewPageTable allocates and zeroes a fresh L1 table.
func NewPageTable(bus *physmem.Bus, alloc *FrameAllocator) *PageTable {
	base := alloc.Alloc(L1TableSize, L1TableSize)
	pt := &PageTable{Base: base, bus: bus, alloc: alloc}
	for i := physmem.Addr(0); i < L1TableSize; i += 4 {
		mustWrite(bus, base+i, 0)
	}
	return pt
}

func mustWrite(b *physmem.Bus, a physmem.Addr, v uint32) {
	if err := b.Write32(a, v); err != nil {
		panic(fmt.Sprintf("mmu: page-table write failed: %v", err))
	}
}

func mustRead(b *physmem.Bus, a physmem.Addr) uint32 {
	v, err := b.Read32(a)
	if err != nil {
		panic(fmt.Sprintf("mmu: page-table read failed: %v", err))
	}
	return v
}

func (pt *PageTable) l1addr(va uint32) physmem.Addr {
	return pt.Base + physmem.Addr(va>>20*4)
}

// MapSection installs a 1 MB section mapping va→pa with the given domain
// and AP bits. va and pa must be 1 MB aligned.
func (pt *PageTable) MapSection(va uint32, pa physmem.Addr, domain, ap uint8) {
	if va&0xFFFFF != 0 || uint32(pa)&0xFFFFF != 0 {
		panic("mmu: MapSection requires 1MB alignment")
	}
	d := uint32(pa)&0xFFF0_0000 | uint32(ap)<<10 | uint32(domain)<<5 | descSection
	mustWrite(pt.bus, pt.l1addr(va), d)
}

// MapPage installs a 4 KB small-page mapping va→pa, creating the L2 table
// on demand. The L2 table inherits the domain of its first mapping; mapping
// pages of different domains into the same 1 MB slot is rejected, matching
// how Mini-NOVA lays out guest spaces (one domain per region).
func (pt *PageTable) MapPage(va uint32, pa physmem.Addr, domain, ap uint8) {
	if va&0xFFF != 0 || uint32(pa)&0xFFF != 0 {
		panic("mmu: MapPage requires 4KB alignment")
	}
	l1a := pt.l1addr(va)
	l1d := mustRead(pt.bus, l1a)
	var l2base physmem.Addr
	switch l1d & 3 {
	case descFault:
		l2base = pt.alloc.Alloc(L2TableSize, L2TableSize)
		for i := physmem.Addr(0); i < L2TableSize; i += 4 {
			mustWrite(pt.bus, l2base+i, 0)
		}
		mustWrite(pt.bus, l1a, uint32(l2base)&^0x3FF|uint32(domain)<<5|descCoarse)
	case descCoarse:
		if uint8(l1d>>5&0xF) != domain {
			panic(fmt.Sprintf("mmu: domain mismatch in 1MB slot %#x: table has %d, mapping wants %d",
				va&^0xFFFFF, l1d>>5&0xF, domain))
		}
		l2base = physmem.Addr(l1d &^ 0x3FF)
	default:
		panic(fmt.Sprintf("mmu: MapPage over a section at %#x", va))
	}
	l2a := l2base + physmem.Addr(va>>12&0xFF*4)
	mustWrite(pt.bus, l2a, uint32(pa)&^0xFFF|uint32(ap)<<4|descSmall)
}

// RemapPage rewrites an existing 4 KB small-page mapping in place: the
// VA moves to a new frame with new AP bits without touching the table
// structure. This is the copy-on-write break — a shared read-only page
// becomes a private writable one — so a missing mapping is a kernel bug
// and panics. The caller charges the edit and flushes the TLB entry.
func (pt *PageTable) RemapPage(va uint32, pa physmem.Addr, ap uint8) {
	if va&0xFFF != 0 || uint32(pa)&0xFFF != 0 {
		panic("mmu: RemapPage requires 4KB alignment")
	}
	l1d := mustRead(pt.bus, pt.l1addr(va))
	if l1d&3 != descCoarse {
		panic(fmt.Sprintf("mmu: RemapPage in unmapped 1MB slot %#x", va))
	}
	l2a := physmem.Addr(l1d&^0x3FF) + physmem.Addr(va>>12&0xFF*4)
	if mustRead(pt.bus, l2a)&3 != descSmall {
		panic(fmt.Sprintf("mmu: RemapPage of unmapped page %#x", va))
	}
	mustWrite(pt.bus, l2a, uint32(pa)&^0xFFF|uint32(ap)<<4|descSmall)
}

// UnmapPage removes a 4 KB mapping (descriptor → fault). Unmapping an
// absent page is a no-op; the caller must flush the TLB entry.
func (pt *PageTable) UnmapPage(va uint32) {
	l1d := mustRead(pt.bus, pt.l1addr(va))
	if l1d&3 != descCoarse {
		return
	}
	l2a := physmem.Addr(l1d&^0x3FF) + physmem.Addr(va>>12&0xFF*4)
	mustWrite(pt.bus, l2a, 0)
}

// UnmapSection removes a 1 MB section mapping.
func (pt *PageTable) UnmapSection(va uint32) {
	l1d := mustRead(pt.bus, pt.l1addr(va))
	if l1d&3 == descSection {
		mustWrite(pt.bus, pt.l1addr(va), 0)
	}
}

// Lookup reads the table the way the walker would (without TLB or cost)
// and reports the mapped PA, or ok=false. Tests and assertions use it.
func (pt *PageTable) Lookup(va uint32) (pa physmem.Addr, domain, ap uint8, ok bool) {
	l1d := mustRead(pt.bus, pt.l1addr(va))
	switch l1d & 3 {
	case descSection:
		return physmem.Addr(l1d&0xFFF0_0000 | va&0xFFFFF), uint8(l1d >> 5 & 0xF), uint8(l1d >> 10 & 3), true
	case descCoarse:
		l2a := physmem.Addr(l1d&^0x3FF) + physmem.Addr(va>>12&0xFF*4)
		l2d := mustRead(pt.bus, l2a)
		if l2d&3 != descSmall {
			return 0, 0, 0, false
		}
		return physmem.Addr(l2d&^0xFFF | va&0xFFF), uint8(l1d >> 5 & 0xF), uint8(l2d >> 4 & 3), true
	}
	return 0, 0, 0, false
}

// DescriptorAddrs returns the physical addresses of the descriptors that a
// walk of va touches, so kernel code can charge realistic cache traffic for
// page-table edits.
func (pt *PageTable) DescriptorAddrs(va uint32) []physmem.Addr {
	l1a := pt.l1addr(va)
	l1d := mustRead(pt.bus, l1a)
	if l1d&3 == descCoarse {
		return []physmem.Addr{l1a, physmem.Addr(l1d&^0x3FF) + physmem.Addr(va>>12&0xFF*4)}
	}
	return []physmem.Addr{l1a}
}
