package nova

import (
	"testing"

	"repro/internal/capspace"
	"repro/internal/simclock"
)

// Table-driven coverage of the hypercall/portal error paths: every
// failure mode of capability resolution must surface as its own
// documented status code, and a selector minted in one space must mean
// nothing in another (the forgery property the capability rebuild
// exists to enforce).
func TestPortalErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		// grants is the caller's boot grant set.
		grants Capability
		// setup may rewire capabilities before the system runs; it gets
		// the kernel, the caller and an idle peer PD, and returns the
		// selector the invoke step should use (0 when unused).
		setup func(t *testing.T, k *Kernel, caller, peer *PD) uint32
		// invoke issues the call under test from inside the caller.
		invoke func(env *Env, sel uint32) uint32
		want   uint32
	}{
		{
			name: "unknown-call-number",
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(99)
			},
			want: StatusBadSel,
		},
		{
			name: "mgr-portal-never-delegated",
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(HcMgrHwMMULoad, 0, 0)
			},
			want: StatusBadSel,
		},
		{
			name: "mgr-portals-without-device-delegation",
			// CapHwManager installs the portal capabilities, but the
			// device objects arrive only with RegisterHwService: the
			// portal resolves, its queue capability does not.
			grants: CapHwManager,
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(HcMgrNextRequest)
			},
			want: StatusBadSel,
		},
		{
			name: "insufficient-rights-sd-write",
			// Every PD holds the SD-write portal capability; without the
			// I/O grant it carries no rights.
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(HcSDWrite, 1, 0x2000)
			},
			want: StatusDenied,
		},
		{
			name:   "io-grant-unlocks-sd-write",
			grants: CapIODirect,
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(HcSDWrite, 1, 0x2000)
			},
			want: StatusOK,
		},
		{
			name: "revoked-capability",
			setup: func(t *testing.T, k *Kernel, caller, peer *PD) uint32 {
				sel, err := k.DelegateIPC(peer, caller)
				if err != nil {
					t.Fatalf("DelegateIPC: %v", err)
				}
				// The peer withdraws its IPC identity: the delegated
				// capability goes stale everywhere at once.
				if cerr := peer.Space.RevokeObject(SelSelf); cerr != capspace.OK {
					t.Fatalf("RevokeObject: %v", cerr)
				}
				return uint32(sel)
			},
			invoke: func(env *Env, sel uint32) uint32 {
				return env.Hypercall(HcPortalCall, sel, 0x123)
			},
			want: StatusRevoked,
		},
		{
			name: "wrong-object-type-ipc-destination",
			// HcNull is a portal capability, not a PD: calling it as an
			// IPC destination is a type error, not a silent misroute.
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(HcPortalCall, HcNull, 0x123)
			},
			want: StatusBadType,
		},
		{
			name: "wrong-object-type-direct-invoke",
			// Invoking the caller's own PD object as if it were a
			// service portal.
			invoke: func(env *Env, _ uint32) uint32 {
				return env.Hypercall(SelSelf)
			},
			want: StatusBadType,
		},
		{
			name: "cross-pd-selector-forgery",
			setup: func(t *testing.T, k *Kernel, caller, peer *PD) uint32 {
				// The CALLER's identity is delegated into the PEER's
				// space; the caller then replays the peer's selector
				// number in its own space.
				sel, err := k.DelegateIPC(caller, peer)
				if err != nil {
					t.Fatalf("DelegateIPC: %v", err)
				}
				if _, cerr := peer.Space.Lookup(sel, capspace.ObjPD, capspace.RightCall); cerr != capspace.OK {
					t.Fatalf("peer cannot resolve its own delegated cap: %v", cerr)
				}
				return uint32(sel)
			},
			invoke: func(env *Env, sel uint32) uint32 {
				return env.Hypercall(HcPortalCall, sel, 0x123)
			},
			want: StatusBadSel,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKernel()
			defer k.Shutdown()
			var sel, got uint32
			ran := false
			peer := k.CreatePD(PDConfig{Name: "peer", Priority: PrioGuest, StartSuspended: true,
				Guest: &scriptGuest{"peer", func(env *Env) {}}})
			caller := k.CreatePD(PDConfig{Name: "caller", Priority: PrioGuest, Caps: tc.grants,
				Guest: &scriptGuest{"caller", func(env *Env) {
					got = tc.invoke(env, sel)
					ran = true
				}}})
			if tc.setup != nil {
				sel = tc.setup(t, k, caller, peer)
			}
			k.RunFor(simclock.FromMillis(1))
			if !ran {
				t.Fatal("caller never completed the call")
			}
			if got != tc.want {
				t.Errorf("status = %d, want %d", got, tc.want)
			}
		})
	}
}

// A PD cannot re-delegate a capability it received call-only: the
// delegation chain is rights-checked at every hop.
func TestDelegatedCapCannotBeRedelegated(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	a := k.CreatePD(PDConfig{Name: "a", Priority: PrioGuest, StartSuspended: true,
		Guest: &scriptGuest{"a", func(env *Env) {}}})
	b := k.CreatePD(PDConfig{Name: "b", Priority: PrioGuest, StartSuspended: true,
		Guest: &scriptGuest{"b", func(env *Env) {}}})
	c := k.CreatePD(PDConfig{Name: "c", Priority: PrioGuest, StartSuspended: true,
		Guest: &scriptGuest{"c", func(env *Env) {}}})
	sel, err := k.DelegateIPC(a, b)
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	if _, cerr := b.Space.DelegateFree(sel, c.Space, 0, capspace.RightCall); cerr != capspace.ErrDenied {
		t.Errorf("re-delegation of a call-only capability = %v, want ErrDenied", cerr)
	}
}

// The manager's client handles are delegated capabilities, not raw IDs:
// a made-up client ID resolves nothing even for the real, registered
// service.
func TestManagerClientForgery(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fabricForTest(k)
	var got uint32
	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		Guest: &scriptGuest{"hwtm", func(env *Env) {
			got = env.Hypercall(HcMgrUnmapIface, 57 /* no such client */, 0)
		}}})
	k.RegisterHwService(svc)
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		spin(env, 4)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if got != StatusBadSel {
		t.Errorf("forged client id = %d, want StatusBadSel", got)
	}
}

// A registered service holds slot capabilities only for real PRRs:
// acting on a fabricated region index fails resolution.
func TestManagerSlotBounds(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fabricForTest(k) // 4 PRRs
	var got uint32
	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		Guest: &scriptGuest{"hwtm", func(env *Env) {
			got = env.Hypercall(HcMgrAllocIRQ, 1, 99 /* no such PRR */)
		}}})
	k.RegisterHwService(svc)
	k.RunFor(simclock.FromMillis(1))
	if got != StatusBadSel {
		t.Errorf("out-of-range PRR = %d, want StatusBadSel", got)
	}
}

// A server cannot receive a second caller while one is still awaiting
// its reply: the protocol violation is refused instead of silently
// stranding the first caller.
func TestIPCRecvRefusedWithUnrepliedCaller(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var second uint32 = 12345
	server := k.CreatePD(PDConfig{Name: "server", Priority: PrioGuest,
		Guest: &scriptGuest{"server", func(env *Env) {
			env.Hypercall(HcPortalRecv, 1)          // receive the caller
			second = env.Hypercall(HcPortalRecv, 0) // no reply yet: refused
			env.Hypercall(HcPortalRecv, 2, 0x9)     // proper reply unblocks the caller
		}}})
	var sel, reply uint32
	k.CreatePD(PDConfig{Name: "client", Priority: PrioGuest,
		Guest: &scriptGuest{"client", func(env *Env) {
			reply = env.Hypercall(HcPortalCall, sel, 0x5)
		}}})
	s, err := k.DelegateIPC(server, k.PDs[1])
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	sel = uint32(s)
	k.RunFor(simclock.FromMillis(2))
	if second != StatusInval {
		t.Errorf("recv with un-replied caller = %d, want StatusInval", second)
	}
	if reply != 0x9 {
		t.Errorf("caller's reply = %#x, want 0x9 (still delivered after the refused recv)", reply)
	}
}

// A callee that exits strands nobody: queued callers and the one
// awaiting its reply resume with StatusErr when the PD retires.
func TestIPCCallerFailedWhenCalleeExits(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	server := k.CreatePD(PDConfig{Name: "server", Priority: PrioGuest,
		Guest: &scriptGuest{"server", func(env *Env) {
			env.Hypercall(HcPortalRecv, 1) // receive, never reply, exit
		}}})
	var sel, reply uint32
	k.CreatePD(PDConfig{Name: "client", Priority: PrioGuest,
		Guest: &scriptGuest{"client", func(env *Env) {
			reply = env.Hypercall(HcPortalCall, sel, 0x5)
		}}})
	s, err := k.DelegateIPC(server, k.PDs[1])
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	sel = uint32(s)
	k.RunFor(simclock.FromMillis(2))
	if !server.Dead() {
		t.Fatal("server did not retire")
	}
	if reply != StatusErr {
		t.Errorf("caller's reply after callee exit = %#x, want StatusErr", reply)
	}
}

// The same-core call/reply handoff takes the fixed-cost fast path and
// the ipc_call probe measures it.
func TestIPCFastPathSameCore(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	const rounds = 64
	server := k.CreatePD(PDConfig{Name: "server", Priority: PrioGuest,
		Guest: &scriptGuest{"server", func(env *Env) {
			word := env.Hypercall(HcPortalRecv, 1 /* RecvBlock */)
			for i := 0; i < rounds-1; i++ {
				word = env.Hypercall(HcPortalRecv, 3 /* RecvReply|RecvBlock */, (word&0xFF_FFFF)+1)
			}
			env.Hypercall(HcPortalRecv, 2 /* RecvReply only */, (word&0xFF_FFFF)+1)
		}}})
	var sel uint32
	k.CreatePD(PDConfig{Name: "client", Priority: PrioGuest,
		Guest: &scriptGuest{"client", func(env *Env) {
			for i := 0; i < rounds; i++ {
				reply := env.Hypercall(HcPortalCall, sel, uint32(i))
				if reply != uint32(i)+1 {
					t.Errorf("round %d: reply = %d, want %d", i, reply, i+1)
				}
			}
		}}})
	s, err := k.DelegateIPC(server, k.PDs[1])
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	sel = uint32(s)
	k.RunFor(simclock.FromMillis(5))
	p := k.Probes.Get("ipc_call")
	if p.Count != rounds {
		t.Fatalf("ipc_call samples = %d, want %d", p.Count, rounds)
	}
	if k.IPCFastCalls() != rounds {
		t.Errorf("fast-path calls = %d, want %d (server always recv-blocked, same core)", k.IPCFastCalls(), rounds)
	}
	// The fast-path round trip must stay well under a world-switch-heavy
	// slow path: a couple of microseconds at 660 MHz.
	if mean := p.MeanMicros(); mean > 5 {
		t.Errorf("mean round trip = %.2f us, want a fast-path figure (<5us)", mean)
	}
}
