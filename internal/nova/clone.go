package nova

import (
	"fmt"

	"repro/internal/capspace"
	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Copy-on-write VM cloning. A booted, quiesced guest is checkpointed
// into an immutable checkpoint.Image; forks materialize new PDs in
// O(metadata): the clone's page table maps the template's frames
// read-only, each frame carries a share reference, and the first write
// through any such mapping takes a permission fault the kernel resolves
// by copying the frame into the clone's private arena and remapping it
// writable (cowBreak). Capabilities are never copied — a clone's table
// is re-minted from the image's boot-grant bits with a fresh-generation
// self object, so revoking or destroying a clone kills every delegation
// of its identity without touching its siblings or the template.

// Fork-path cycle costs. The O(metadata) claim is concrete: a fork
// charges a fixed base (PD descriptor, vGIC rebuild, scheduler insert)
// plus a per-frame term for writing one read-only small-page descriptor
// per shared frame — no byte of guest memory moves until a clone writes.
const (
	// CostCloneBase covers the fixed fork work.
	CostCloneBase = 2000
	// CostClonePerFrame is the page-table descriptor write per shared frame.
	CostClonePerFrame = 4
	// CostCloneActivate covers taking a warm clone off the pool shelf:
	// unfreezing, arming the virtual timer, the runqueue insert.
	CostCloneActivate = 300
	// CostCOWCopy is the 4 KB frame copy of a COW break (data move at
	// roughly one word per cycle through the write buffer).
	CostCOWCopy = 2048
)

// Clone arenas: each clone owns a fixed slice of the clone region of
// DDR holding its page tables and its privately-copied frames. Arenas
// are recycled LIFO through a free list, so a long-running warm pool
// reuses the same physical footprint however many clones churn through.
const (
	physCloneArenas = physmem.DDRBase + 0x1400_0000
	cloneArenaSize  = 512 << 10 // 24 KB of tables + ~120 COW frames
)

// cloneState is the per-clone kernel bookkeeping.
type cloneState struct {
	img       *checkpoint.Image
	arena     *mmu.FrameAllocator
	arenaBase physmem.Addr

	// COW counters (deterministic; folded into scenario checksums).
	cowFaults uint64
	copied    uint64
	shared    int
}

// CloneStats is a read-only view of a clone's COW activity.
type CloneStats struct {
	// COWFaults counts write-permission faults resolved as COW breaks.
	COWFaults uint64
	// Copied is the number of frames privately copied into the arena.
	Copied uint64
	// Shared is the number of frames still mapped from the template.
	Shared int
}

// CloneStats returns pd's COW counters; ok is false for non-clones.
func (pd *PD) CloneStats() (CloneStats, bool) {
	if pd.clone == nil {
		return CloneStats{}, false
	}
	return CloneStats{COWFaults: pd.clone.cowFaults, Copied: pd.clone.copied, Shared: pd.clone.shared}, true
}

// IdleParked reports whether the PD is blocked in paravirtualized idle —
// the quiescence point checkpoints require.
func (pd *PD) IdleParked() bool { return pd.idleWaiting }

// Frozen reports whether the PD is a frozen template or warm clone.
func (pd *PD) Frozen() bool { return pd.frozen }

// allocCloneArena hands out a clone arena, recycling reaped ones first.
func (k *Kernel) allocCloneArena() physmem.Addr {
	if n := len(k.cloneArenaFree); n > 0 {
		a := k.cloneArenaFree[n-1]
		k.cloneArenaFree = k.cloneArenaFree[:n-1]
		return a
	}
	if k.cloneArenaNext == 0 {
		k.cloneArenaNext = physCloneArenas
	}
	a := k.cloneArenaNext
	if uint64(a)+cloneArenaSize > uint64(physmem.DDRBase)+uint64(physmem.DDRSize) {
		panic("nova: clone arena region exhausted")
	}
	k.cloneArenaNext += cloneArenaSize
	return a
}

// Checkpoint serializes a quiesced PD into an immutable image: vCPU
// registers and CP15 state, virtual-timer phase, vGIC record list and
// queued injections, execution-context micro-state, the boot-grant bits
// (capabilities are re-minted on restore, never copied), and the guest's
// memory as a pinned frame set. withContents additionally captures every
// frame's bytes, which an in-place restore needs; forks do not. The
// guest's host-side snapshot (e.g. a ucos.Snapshot) rides along opaquely.
//
// Checkpoint is an out-of-band observer: it charges no simulated cycles,
// so a timeline that checkpoints and one that doesn't stay byte-equal.
func (k *Kernel) Checkpoint(pd *PD, guest any, withContents bool, name string) (*checkpoint.Image, error) {
	if !pd.idleWaiting {
		return nil, fmt.Errorf("nova: checkpoint of %s: PD not parked in paravirtualized idle", pd.Name_)
	}
	if pd.clone != nil {
		return nil, fmt.Errorf("nova: checkpoint of %s: checkpointing a clone is unsupported", pd.Name_)
	}
	img := &checkpoint.Image{
		Name:        name,
		CapturedAt:  k.Clock.Now(),
		Priority:    pd.Priority,
		CapBits:     uint32(pd.Caps),
		CodeBase:    pd.Env.Ctx.CodeBase,
		CodeSize:    pd.Env.Ctx.CodeSize,
		DACR:        pd.VCPU.DACR,
		VFP:         pd.VCPU.VFP,
		VFPValid:    pd.VCPU.VFPValid,
		L2Ctrl:      pd.VCPU.L2Ctrl,
		QuantumLeft: pd.VCPU.QuantumLeft,
		TimerPeriod: pd.VCPU.TimerPeriod,
		LastHcEntry: pd.lastHcEntry,
		Exec:        pd.Env.Ctx.SaveState(),
		Guest:       guest,
	}
	// Register file: the live CPU holds it while the PD is resident;
	// otherwise the last world switch saved it into the vCPU.
	if pd.Core.Current == pd {
		img.Regs = pd.Core.CPU.Regs
		img.DACR = pd.Core.CPU.CP15Read(cpu.CP15DACR)
	} else {
		img.Regs = pd.VCPU.Regs
	}
	// Virtual-timer phase: idle keeps the timer live, so the remaining
	// time usually sits in the armed event rather than timerRemaining.
	if pd.timerEvent != nil {
		img.TimerRemaining = since(pd.timerEvent.When, pd.Core.Clock.Now())
	} else {
		img.TimerRemaining = pd.timerRemaining
	}
	img.VGIC, img.VGICPending = pd.VGIC.snapshotLines()

	kernelPart := uint32(GuestRAMSize / 4)
	img.Regions = []checkpoint.Region{
		{VA: GuestKernelBase, PA: pd.RAMBase, Size: kernelPart, Domain: DomainGuestKernel},
		{VA: GuestUserBase, PA: pd.RAMBase + physmem.Addr(kernelPart), Size: GuestRAMSize - kernelPart, Domain: DomainGuestUser},
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	// Pin the template's frames: they must survive (immutable, since the
	// template is frozen and clones map them read-only) for as long as
	// the image exists, however many clones come and go.
	img.EachFrame(func(_ uint32, pa physmem.Addr) { k.Bus.Pin(pa) })
	if withContents {
		img.Frames = make([]checkpoint.Frame, 0, img.FrameCount())
		img.EachFrame(func(_ uint32, pa physmem.Addr) {
			img.Frames = append(img.Frames, checkpoint.Frame{PA: pa, Data: k.Bus.SnapshotFrame(pa)})
		})
	}
	return img, nil
}

// ReleaseImage drops the image's pins. Frames still shared by live
// clones survive until their last reference; the rest are reclaimed.
func (k *Kernel) ReleaseImage(img *checkpoint.Image) {
	img.EachFrame(func(_ uint32, pa physmem.Addr) { k.Bus.Unpin(pa) })
}

// Freeze parks a checkpointed template for good: its virtual timer is
// cancelled and wake() drops every injection, so the template's frames
// stay byte-immutable under its clones. Only Shutdown releases it.
func (k *Kernel) Freeze(pd *PD) error {
	if !pd.idleWaiting {
		return fmt.Errorf("nova: freeze of %s: PD not parked in paravirtualized idle", pd.Name_)
	}
	k.parkVirtualTimer(pd)
	pd.frozen = true
	return nil
}

// CloneConfig names what a fork needs beyond the image: the clone's
// identity and the host-side guest that resumes the snapshot.
type CloneConfig struct {
	Name     string
	Affinity sched.CPUMask
	Guest    Guest
}

// CreateClone forks a new PD from a checkpoint image in O(metadata):
// page-table construction and one read-only descriptor per shared frame
// — no guest bytes move. The clone is born frozen (a warm-pool shelf
// item); ActivateClone makes it runnable. Its capability table is
// re-minted from the image's grant bits with a fresh-generation self
// object; it is deliberately NOT registered as a hardware-service client
// (clones are compute workers, and client-handle windows are a bounded
// boot-time resource).
func (k *Kernel) CreateClone(img *checkpoint.Image, cfg CloneConfig) *PD {
	id := len(k.PDs)
	arenaBase := k.allocCloneArena()
	arena := mmu.NewFrameAllocator(arenaBase, cloneArenaSize)
	pt := mmu.NewPageTable(k.Bus, arena)
	mapKernelInto(pt)
	shared := 0
	img.EachFrame(func(va uint32, pa physmem.Addr) { shared++ })
	cs := &cloneState{img: img, arena: arena, arenaBase: arenaBase, shared: shared}
	pd := &PD{
		ID:       id,
		Name_:    cfg.Name,
		Priority: img.Priority,
		Caps:     Capability(img.CapBits),
		Space:    capspace.NewSpace(SelGrantBase),
		VGIC:     NewVGIC(),
		Table:    pt,
		ASID:     k.nextASID(),
		RAMBase:  0, // no private RAM block: RAMSize 0 refuses HcMapPage &
		RAMSize:  0, // friends, which would alias shared frames writable
		Guest:    cfg.Guest,
		kdata:    KernelDataVA + uint32(id)*0x400,
		clone:    cs,
		frozen:   true,
		// The template was captured parked in paravirtualized idle; the
		// clone resumes from exactly that state.
		idleWaiting:    true,
		lastHcEntry:    img.LastHcEntry,
		timerRemaining: img.TimerRemaining,
	}
	// Map every template frame read-only and take a share reference. The
	// domain comes from the image region; AP user-read-only is what turns
	// a clone write into the permission fault cowBreak resolves.
	domAt := make(map[uint32]uint8, len(img.Regions))
	for _, r := range img.Regions {
		for off := uint32(0); off < r.Size; off += physmem.FrameSize {
			domAt[r.VA+off] = r.Domain
		}
	}
	img.EachFrame(func(va uint32, pa physmem.Addr) {
		pt.MapPage(va, pa, domAt[va], mmu.APUserRO)
		k.Bus.Share(pa)
	})
	k.populateCaps(pd, Capability(img.CapBits))
	pd.node = sched.NewNode(pd, img.Priority, cfg.Affinity)
	pd.Core = k.Cores[k.Sched.Place(&pd.node)]
	pd.VCPU = VCPU{
		Regs:        img.Regs,
		TTBR:        uint32(pt.Base),
		DACR:        img.DACR,
		ASID:        pd.ASID,
		TimerPeriod: img.TimerPeriod,
		VFP:         img.VFP,
		VFPValid:    img.VFPValid,
		L2Ctrl:      img.L2Ctrl,
		QuantumLeft: img.QuantumLeft,
	}
	ctx := cpu.NewExecContext(pd.Core.CPU, cfg.Name, img.CodeBase, img.CodeSize)
	pd.Env = &Env{K: k, PD: pd, Ctx: ctx}
	ctx.RestoreState(img.Exec)
	pd.VGIC.restoreLines(img.VGIC, img.VGICPending)

	pd.resumeCh = make(chan resumeCmd)
	pd.doneCh = make(chan struct{})
	go k.guestWrapper(pd)

	k.PDs = append(k.PDs, pd)
	if k.Tracer != nil {
		k.traceVGIC(pd)
	}
	// The O(metadata) fork charge: fixed base + one descriptor write per
	// shared frame. Charged on the boot core's clock — forks happen at
	// engine-stopped points (pool operations), like boot-time CreatePD.
	k.Clock.Advance(CostCloneBase + simclock.Cycles(shared)*CostClonePerFrame)
	return pd
}

// ActivateClone takes a frozen clone off the shelf: it thaws, re-arms
// the captured virtual-timer phase and wakes with the image's pending
// injections — the clone continues the template's timeline from the
// quiesce point, in its own address space.
func (k *Kernel) ActivateClone(pd *PD) error {
	if pd.clone == nil {
		return fmt.Errorf("nova: activate of non-clone %s", pd.Name_)
	}
	if !pd.frozen {
		return fmt.Errorf("nova: activate of already-active clone %s", pd.Name_)
	}
	pd.frozen = false
	k.armVirtualTimer(pd)
	if pd.VGIC.HasPending() {
		k.wake(pd)
	}
	k.Clock.Advance(CostCloneActivate)
	return nil
}

// DestroyClone tears a clone down: the goroutine is killed, the PD is
// retired from scheduling, its self object's generation is bumped so
// every delegated capability to it dies (capspace revocation), every
// still-shared frame reference is released, and the arena returns to
// the free list for the next fork. Must run at an engine-stopped point.
func (k *Kernel) DestroyClone(pd *PD) error {
	if pd.clone == nil {
		return fmt.Errorf("nova: destroy of non-clone %s", pd.Name_)
	}
	if pd.dead {
		return fmt.Errorf("nova: destroy of dead clone %s", pd.Name_)
	}
	select {
	case pd.resumeCh <- resumeCmd{kill: true}:
	case <-pd.doneCh:
	}
	<-pd.doneCh
	pd.dead = true
	k.parkVirtualTimer(pd)
	k.Sched.Unplace(&pd.node)
	if pd.Core.Current == pd {
		pd.Core.Current = nil
	}
	k.failPortalCallers(pd)
	k.reconfigPurge(pd)
	// Generation revocation: every capability minted from the clone's
	// self object — wherever it was delegated — is dead after this.
	pd.Space.RevokeObject(SelSelf)
	// Drop the share references of frames still mapped read-only; the
	// clone's private copies live in the arena and die with it.
	pd.clone.img.EachFrame(func(va uint32, pa physmem.Addr) {
		cur, _, ap, ok := pd.Table.Lookup(va)
		if ok && ap == mmu.APUserRO && cur == pa {
			k.Bus.Release(pa)
		}
	})
	pd.clone.shared = 0
	k.cloneArenaFree = append(k.cloneArenaFree, pd.clone.arenaBase)
	return nil
}

// cowBreak resolves a clone's write-permission fault on a shared frame:
// copy the frame into the clone's arena, remap the page writable in
// place, flush the stale TLB entry, release the share reference. Returns
// true so the faulting access retries against the private copy. Runs on
// the clone's own core inside its fault path, so parallel engines break
// COW concurrently on different clones without sharing state beyond the
// refcount table.
func (k *Kernel) cowBreak(c *CoreCtx, pd *PD, f *mmu.Fault) bool {
	page := f.VA &^ (physmem.FrameSize - 1)
	src, _, ap, ok := pd.Table.Lookup(page)
	if !ok || ap != mmu.APUserRO {
		return false // a genuine permission offence (e.g. kernel page)
	}
	c.kctx.Exec(30) // fault decode + COW bookkeeping
	dst := pd.clone.arena.Alloc(physmem.FrameSize, physmem.FrameSize)
	k.Bus.CopyFrame(dst, src)
	c.Clock.Advance(CostCOWCopy)
	pd.Table.RemapPage(page, dst, mmu.APFull)
	k.chargePTEdit(c, pd, page)
	c.CPU.CP15Write(cpu.CP15TLBIMVA, page)
	k.Bus.Release(src)
	pd.clone.cowFaults++
	pd.clone.copied++
	pd.clone.shared--
	return true
}

// ResumeSuspendExit replays, on a restored or cloned guest, the tail of
// the HcSuspend hypercall the template was parked in when captured: the
// uninterrupted timeline unwinds through the kernel's SWI epilogue
// (probe sample, trace span, exception-return charge, register
// restore), so the resumed one must perform the identical sequence for
// the two timelines to stay byte-equal. Call once, before entering the
// guest's normal run loop.
func (e *Env) ResumeSuspendExit() {
	k, pd := e.K, e.PD
	c := pd.Core
	pd.idleWaiting = false
	c.CPU.Mode, c.CPU.IRQMasked = cpu.ModeSVC, true
	t0 := pd.lastHcEntry
	d := since(c.Clock.Now(), t0)
	k.Probes.Add(measure.PhaseHypercall, c.Clock.Now()-t0)
	if k.Tracer != nil {
		k.Tracer.Core(c.ID).EmitSpan(t0, d, trace.KindHypercall, 0, uint64(HcSuspend), uint64(StatusOK))
		k.trHypercall.Observe(d)
	}
	c.Clock.Advance(cpu.CostExceptionReturn)
	c.CPU.Regs = pd.VCPU.Regs
	c.CPU.Regs.R[0] = StatusOK
	c.CPU.Mode, c.CPU.IRQMasked = cpu.ModeUSR, false
}

// RestoreInPlace rewinds a live, idle-parked PD to a withContents image:
// the guest goroutine is replaced, every captured frame's bytes are
// reloaded, and vCPU/vGIC/context state is rewritten. Like Checkpoint it
// is an out-of-band operation charging no cycles — the restored timeline
// continues byte-identically to one that never stopped, which the
// checkpoint regression test asserts. The virtual timer is left alone
// when its armed expiry already matches the image's phase (the common
// immediate-restore case), so the event queue's insertion order is
// untouched.
func (k *Kernel) RestoreInPlace(pd *PD, img *checkpoint.Image, guest Guest) error {
	if !pd.idleWaiting {
		return fmt.Errorf("nova: in-place restore of %s: PD not parked in paravirtualized idle", pd.Name_)
	}
	if len(img.Frames) == 0 {
		return fmt.Errorf("nova: in-place restore needs a withContents image")
	}
	// Kill the current guest goroutine (its nested layers unwind through
	// their own shutdown paths) and respawn with the restored guest.
	select {
	case pd.resumeCh <- resumeCmd{kill: true}:
	case <-pd.doneCh:
	}
	<-pd.doneCh
	for _, f := range img.Frames {
		k.Bus.LoadFrame(f.PA, f.Data)
	}
	pd.VCPU.Regs = img.Regs
	pd.VCPU.DACR = img.DACR
	pd.VCPU.VFP = img.VFP
	pd.VCPU.VFPValid = img.VFPValid
	pd.VCPU.L2Ctrl = img.L2Ctrl
	pd.VCPU.QuantumLeft = img.QuantumLeft
	pd.VCPU.TimerPeriod = img.TimerPeriod
	if pd.Core.Current == pd {
		pd.Core.CPU.Regs = img.Regs
	}
	pd.Env.Ctx.RestoreState(img.Exec)
	pd.VGIC.restoreLines(img.VGIC, img.VGICPending)
	pd.lastHcEntry = img.LastHcEntry
	want := pd.Core.Clock.Now() + img.TimerRemaining
	if pd.timerEvent == nil || pd.timerEvent.When != want {
		k.parkVirtualTimer(pd)
		pd.timerRemaining = img.TimerRemaining
		k.armVirtualTimer(pd)
	}
	pd.Guest = guest
	pd.resumeCh = make(chan resumeCmd)
	pd.doneCh = make(chan struct{})
	go k.guestWrapper(pd)
	return nil
}

// CloneArenaStats reports arena recycling state (tests, footprint).
func (k *Kernel) CloneArenaStats() (allocated int, free int) {
	if k.cloneArenaNext == 0 {
		return 0, len(k.cloneArenaFree)
	}
	total := int((k.cloneArenaNext - physCloneArenas) / cloneArenaSize)
	return total - len(k.cloneArenaFree), len(k.cloneArenaFree)
}
