package nova

import (
	"testing"

	"repro/internal/capspace"
	"repro/internal/checkpoint"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// idleTemplate is a guest that programs a 1 ms tick and parks in
// paravirtualized idle forever — the canonical checkpointable shape.
func idleTemplate(name string) Guest {
	return &scriptGuest{name, func(env *Env) {
		env.Hypercall(HcTimerSet, uint32(simclock.FromMillis(1)))
		for {
			env.Hypercall(HcSuspend, 1)
			env.CheckPreempt()
		}
	}}
}

// cloneWriter resumes the replayed suspend exit, dirties nPages of guest
// user memory (breaking that many COW shares), then parks again.
func cloneWriter(name string, nPages int) Guest {
	return &scriptGuest{name, func(env *Env) {
		env.ResumeSuspendExit()
		env.Ctx.Exec(100)
		for i := 0; i < nPages; i++ {
			env.Ctx.Touch(GuestUserBase+uint32(i)*physmem.FrameSize+4, true)
			env.CheckPreempt()
		}
		for {
			env.Hypercall(HcSuspend, 1)
			env.CheckPreempt()
		}
	}}
}

// bootFrozenTemplate boots a template VM to quiescence, checkpoints and
// freezes it.
func bootFrozenTemplate(t *testing.T, k *Kernel, withContents bool) (*PD, *checkpoint.Image) {
	t.Helper()
	tpl := k.CreatePD(PDConfig{Name: "tpl", Priority: PrioGuest, Guest: idleTemplate("tpl")})
	k.RunFor(simclock.FromMillis(2))
	if !tpl.IdleParked() {
		t.Fatal("template did not quiesce in paravirtualized idle")
	}
	img, err := k.Checkpoint(tpl, nil, withContents, "tpl")
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := k.Freeze(tpl); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	if !tpl.Frozen() {
		t.Fatal("template not frozen")
	}
	return tpl, img
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	busy := k.CreatePD(PDConfig{Name: "busy", Priority: PrioGuest, Guest: &scriptGuest{"busy", func(env *Env) {
		for {
			env.Ctx.Exec(500)
			env.CheckPreempt()
		}
	}}})
	k.RunFor(simclock.FromMillis(1))
	if _, err := k.Checkpoint(busy, nil, false, "busy"); err == nil {
		t.Fatal("checkpoint of a running PD accepted")
	}
}

// TestCloneRevocationAndSharing is the lifecycle cross-product: COW
// refcounts across fork and teardown, generation-based revocation of a
// destroyed clone's delegated capabilities, image pinning keeping shared
// frames alive exactly as long as someone needs them, and arena reuse.
func TestCloneRevocationAndSharing(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	_, img := bootFrozenTemplate(t, k, false)

	// First template frame (guest kernel image): clones never write it.
	var pa0 physmem.Addr
	got := false
	img.EachFrame(func(_ uint32, pa physmem.Addr) {
		if !got {
			pa0, got = pa, true
		}
	})
	if !got {
		t.Fatal("image has no frames")
	}

	const dirty = 3
	c1 := k.CreateClone(img, CloneConfig{Name: "c1", Guest: cloneWriter("c1", dirty)})
	c2 := k.CreateClone(img, CloneConfig{Name: "c2", Guest: cloneWriter("c2", dirty)})
	if r := k.Bus.Refs(pa0); r != 2 {
		t.Fatalf("shared frame refs = %d after two forks, want 2", r)
	}
	if !k.Bus.Pinned(pa0) {
		t.Fatal("image frame not pinned")
	}
	st, ok := c1.CloneStats()
	if !ok || st.Shared != img.FrameCount() || st.Copied != 0 {
		t.Fatalf("fresh clone stats = %+v ok=%v", st, ok)
	}

	// Delegate c1's identity to c2, then run both clones so their writes
	// break COW shares.
	sel, derr := k.DelegateIPC(c1, c2)
	if derr != nil {
		t.Fatalf("delegate: %v", derr)
	}
	if _, err := c2.Space.Lookup(sel, capspace.ObjPD, capspace.RightCall); err != capspace.OK {
		t.Fatalf("pre-destroy lookup = %v", err)
	}
	if err := k.ActivateClone(c1); err != nil {
		t.Fatal(err)
	}
	if err := k.ActivateClone(c2); err != nil {
		t.Fatal(err)
	}
	k.RunFor(simclock.FromMillis(4))

	for _, c := range []*PD{c1, c2} {
		st, _ := c.CloneStats()
		if st.COWFaults != dirty || st.Copied != dirty {
			t.Fatalf("%s COW stats = %+v, want %d faults/copies", c.Name_, st, dirty)
		}
		if st.Shared != img.FrameCount()-dirty {
			t.Fatalf("%s shared = %d, want %d", c.Name_, st.Shared, img.FrameCount()-dirty)
		}
		if !c.IdleParked() {
			t.Fatalf("%s did not re-park after writing", c.Name_)
		}
	}
	// A written frame lost both share refs but stays allocated: the image
	// pin holds it.
	paW := img.Regions[1].PA
	if r := k.Bus.Refs(paW); r != 0 {
		t.Fatalf("dirtied frame refs = %d, want 0", r)
	}
	if !k.Bus.Allocated(paW) || !k.Bus.Pinned(paW) {
		t.Fatal("dirtied template frame must survive via the image pin")
	}

	// Destroy c1: its delegated capability dies by generation bump, and
	// its share references drop.
	if err := k.DestroyClone(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Space.Lookup(sel, capspace.ObjPD, capspace.RightCall); err != capspace.ErrRevoked {
		t.Fatalf("post-destroy lookup = %v, want ErrRevoked", err)
	}
	if r := k.Bus.Refs(pa0); r != 1 {
		t.Fatalf("refs = %d after one destroy, want 1", r)
	}

	// Release the image: pa0 is still referenced by c2, so it must
	// survive the unpin.
	k.ReleaseImage(img)
	if k.Bus.Pinned(pa0) {
		t.Fatal("frame still pinned after ReleaseImage")
	}
	if !k.Bus.Allocated(pa0) {
		t.Fatal("frame reclaimed while a clone still references it")
	}

	// Last reference: the frame is finally reclaimed.
	if err := k.DestroyClone(c2); err != nil {
		t.Fatal(err)
	}
	if r := k.Bus.Refs(pa0); r != 0 {
		t.Fatalf("refs = %d after both destroys, want 0", r)
	}
	if k.Bus.Allocated(pa0) {
		t.Fatal("unreferenced, unpinned frame not reclaimed")
	}

	// Both arenas returned to the free list; a new fork recycles one
	// instead of growing the region.
	if alloc, free := k.CloneArenaStats(); alloc != 0 || free != 2 {
		t.Fatalf("arena stats after teardown = %d/%d, want 0 allocated, 2 free", alloc, free)
	}
}

// TestCloneArenaRecycling forks through more clones than the region
// would hold without the free list giving arenas back.
func TestCloneArenaRecycling(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	_, img := bootFrozenTemplate(t, k, false)
	defer k.ReleaseImage(img)
	for i := 0; i < 4; i++ {
		c := k.CreateClone(img, CloneConfig{Name: "c", Guest: cloneWriter("c", 1)})
		if err := k.DestroyClone(c); err != nil {
			t.Fatal(err)
		}
	}
	if alloc, free := k.CloneArenaStats(); alloc != 0 || free != 1 {
		t.Fatalf("arena stats = %d allocated / %d free, want 0/1 (recycled)", alloc, free)
	}
}

// TestFrozenCloneStaysParked: a warm-pool shelf item must not wake on
// injections — only ActivateClone makes it runnable.
func TestFrozenCloneStaysParked(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	_, img := bootFrozenTemplate(t, k, false)
	defer k.ReleaseImage(img)
	c := k.CreateClone(img, CloneConfig{Name: "shelf", Guest: cloneWriter("shelf", 1)})
	k.RunFor(simclock.FromMillis(5))
	if st, _ := c.CloneStats(); st.COWFaults != 0 {
		t.Fatalf("frozen clone ran: %+v", st)
	}
	if !c.Frozen() || !c.IdleParked() {
		t.Fatal("shelf clone lost its frozen/parked state")
	}
	if err := k.ActivateClone(c); err != nil {
		t.Fatal(err)
	}
	k.RunFor(simclock.FromMillis(4))
	if st, _ := c.CloneStats(); st.COWFaults != 1 {
		t.Fatalf("activated clone COW faults = %d, want 1", st.COWFaults)
	}
}

// TestCloneForkChargeIsMetadataOnly pins the O(metadata) claim: the fork
// charge is base + 4 cycles per shared frame and independent of guest
// RAM contents.
func TestCloneForkChargeIsMetadataOnly(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	_, img := bootFrozenTemplate(t, k, false)
	defer k.ReleaseImage(img)
	before := k.Clock.Now()
	c := k.CreateClone(img, CloneConfig{Name: "c", Guest: cloneWriter("c", 0)})
	defer k.DestroyClone(c)
	want := simclock.Cycles(CostCloneBase + img.FrameCount()*CostClonePerFrame)
	if d := k.Clock.Now() - before; d != want {
		t.Fatalf("fork charged %d cycles, want %d", d, want)
	}
}
