package nova

import (
	"repro/internal/cpu"
	"repro/internal/measure"
	"repro/internal/simclock"
	"repro/internal/timer"
)

// CoreCtx is one simulated Cortex-A9 core as the kernel sees it: the
// architectural core model, that core's private timer (quantum source),
// the kernel's execution context on that core (its own fetch cursor over
// the shared kernel text), the PD currently resident, and the per-core
// scheduling flags that used to be kernel-global when the reproduction
// pinned everything on CPU0.
type CoreCtx struct {
	ID    int
	CPU   *cpu.CPU
	Timer *timer.PrivateTimer

	// Clock is this core's time cursor. Core 0's clock is the kernel's
	// Clock; on a multi-core machine the other cores advance their own
	// cursors independently between epoch barriers.
	Clock *simclock.Clock

	// Current is the PD whose context is live on this core. It stays
	// resident across the interleaved run loop's window boundaries —
	// a core that keeps running the same PD never re-pays the switch.
	Current *PD

	// kctx is the kernel's execution context on this core.
	kctx *cpu.ExecContext

	// needResched asks the core to return to its scheduler at the next
	// chunk boundary; quantumExpired marks a genuine end-of-slice (the
	// private-timer PPI) as opposed to a pause or cross-core kick.
	needResched    bool
	quantumExpired bool

	// vfpOwner is the PD whose VFP context is live on this core's VFP
	// unit (lazy switch state, Table I) — per-core, as on silicon.
	vfpOwner *PD

	// yieldCh is the coroutine handoff between this core's kernel loop
	// and the PD goroutine it activated — per-core, so concurrent cores
	// hand off independently.
	yieldCh chan yieldReason

	// ipcFastCalls counts same-core synchronous portal-call handoffs
	// taken on this core (sharded so concurrent cores never share the
	// counter; Kernel.IPCFastCalls sums).
	ipcFastCalls uint64

	// BusyCycles accumulates simulated time this core spent executing
	// PDs; everything else is idle. Utilization derives from it.
	BusyCycles simclock.Cycles
}

// Utilization returns the fraction of simulated time [0,1] this core
// spent executing protection domains, measured against the global clock.
func (c *CoreCtx) Utilization(now simclock.Cycles) float64 {
	if now == 0 {
		return 0
	}
	return float64(c.BusyCycles) / float64(now)
}

// runCore gives core c one scheduling window: pick from c's runqueue,
// switch in, and let the PD run until it yields (quantum expiry, block,
// horizon, or a reschedule kick). Reports whether the core found anything
// to run. This is the single-core reference loop's window; multi-core
// machines run epochs (runCoreEpoch).
func (k *Kernel) runCore(c *CoreCtx, until simclock.Cycles) bool {
	var pd *PD
	for {
		n := k.Sched.Pick(c.ID)
		if n == nil {
			return false
		}
		pd = n.Owner.(*PD)
		if !pd.dead {
			break
		}
		k.Sched.Dequeue(n)
	}

	k.worldSwitch(c, pd)
	// Complete the Table III "HW Manager exit" probe on the activation
	// that resumes a guest: on a single core this instant coincides with
	// the world switch away from the service.
	if k.mgrExitArmed && pd != k.hwSvc {
		k.Probes.Add(measure.PhaseMgrExit, k.Clock.Now()-k.mgrExitFrom)
		k.mgrExitArmed = false
	}
	c.needResched = false
	c.quantumExpired = false
	if pd.VCPU.QuantumLeft == 0 {
		pd.VCPU.QuantumLeft = k.Sched.Quantum()
	}
	c.Timer.Start(pd.VCPU.QuantumLeft, true)

	// Bound the activation by the caller's horizon.
	stop := k.Clock.At(until, func(simclock.Cycles) { c.needResched = true })

	start := k.Clock.Now()
	c.CPU.Mode, c.CPU.IRQMasked = cpu.ModeUSR, false
	k.activate(c, pd)
	elapsed := k.Clock.Now() - start
	c.Timer.Stop()
	k.Clock.Cancel(stop)
	c.BusyCycles += elapsed

	if c.quantumExpired || elapsed >= pd.VCPU.QuantumLeft {
		// Slice fully consumed: fresh quantum next time, go to the back
		// of the priority circle (round-robin, §III-D).
		pd.VCPU.QuantumLeft = 0
		if k.Sched.Queued(&pd.node) {
			k.Sched.Rotate(c.ID, pd.Priority)
		}
	} else {
		// Paused early (preemption, horizon, cross-core kick): carry the
		// remaining quantum (§III-D).
		pd.VCPU.QuantumLeft -= elapsed
	}
	return true
}

// activate hands core c to pd and waits for the PD to yield.
func (k *Kernel) activate(c *CoreCtx, pd *PD) yieldReason {
	pd.resumeCh <- resumeCmd{}
	r := <-c.yieldCh
	// Kernel loop regains the core in SVC, IRQs masked.
	c.CPU.Mode, c.CPU.IRQMasked = cpu.ModeSVC, true
	return r
}

// idleUntil advances to the next event (or until) with every core's
// interrupts open — the kernel's WFI loop, entered only when no core has
// runnable work.
func (k *Kernel) idleUntil(until simclock.Cycles) {
	target := until
	if d, ok := k.Clock.NextDeadline(); ok && d < target {
		target = d
	}
	k.Clock.AdvanceTo(target)
	for _, c := range k.Cores {
		c.CPU.IRQMasked = false
		c.CPU.PollIRQ()
		c.CPU.IRQMasked = true
	}
}
