package nova

import (
	"sync"

	"repro/internal/cpu"
	"repro/internal/measure"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// DefaultEpoch is the conservative epoch length of the parallel run loop:
// cross-core effects (wakes, request postings, IPC handoffs) initiated
// inside an epoch are delivered at its barrier, so the epoch bounds the
// model's cross-core signalling latency. 20 µs sits well under the
// measured manager-entry and wake latencies the scenarios assert, while
// keeping barrier frequency low enough for the parallel engine to win
// wall-clock on multi-core workloads.
const DefaultEpoch = simclock.Cycles(20 * simclock.CyclesPerMicrosecond)

// farFuture is the "no event, no work" horizon sentinel.
const farFuture = ^simclock.Cycles(0)

// since returns now-from, clamped at zero: a probe armed by a peer core
// inside the same epoch may carry a stamp slightly ahead of this core's
// cursor, which the conservative engine reads as a zero-length phase.
func since(now, from simclock.Cycles) simclock.Cycles {
	if now < from {
		return 0
	}
	return now - from
}

// post defers fn to the next epoch barrier, stamped with core c's current
// time. The committer replays deferred effects in (time, core, seq) order,
// which is a pure function of simulated state — host scheduling cannot
// reorder them.
func (k *Kernel) post(c *CoreCtx, fn func()) {
	k.committer.Post(c.ID, c.Clock.Now(), fn)
}

// wakeFrom wakes pd from core c's context. A wake onto the issuing core
// (and every wake on a single-core machine or inside a barrier commit)
// applies immediately; a cross-core wake is charged the doorbell write on
// the waker and delivered at the next epoch barrier — the conservative
// engine bounds cross-core latency by one epoch instead of making it
// instantaneous.
func (k *Kernel) wakeFrom(c *CoreCtx, pd *PD) {
	if c == nil || c == pd.Core || len(k.Cores) == 1 || k.inCommit {
		k.wake(pd)
		return
	}
	c.Clock.Advance(CostDeviceAccess) // GICD_SGIR doorbell
	k.post(c, func() { k.wake(pd) })
}

// drainCommits replays every deferred cross-core effect at an epoch
// barrier. Commits run with all cores parked, so they may touch any
// core's scheduler ring, vGIC or GIC bank — but never advance a clock
// (costs were charged on the posting core).
func (k *Kernel) drainCommits() {
	before := k.committer.Commits
	k.inCommit = true
	for k.committer.Pending() {
		k.committer.Commit()
	}
	k.inCommit = false
	if fired := k.committer.Commits - before; fired > 0 && k.Tracer != nil {
		// One event per non-empty barrier on core 0's ring (the commit
		// replay is single-threaded, so writing ring 0 here is safe).
		k.Tracer.Core(0).Emit(k.Cores[0].Clock.Now(),
			trace.KindEpochCommit, 0, k.Epochs, fired)
	}
	k.refreshPRRSnapshot()
}

// refreshPRRSnapshot re-reads every PRR's busy state at a barrier. During
// an epoch the manager polls PRRBusy against this snapshot: the live
// registers change on the owning client's clock, which another core must
// not read mid-epoch.
func (k *Kernel) refreshPRRSnapshot() {
	if k.Fabric == nil {
		return
	}
	if len(k.prrBusySnap) != len(k.Fabric.PRRs) {
		k.prrBusySnap = make([]bool, len(k.Fabric.PRRs))
	}
	for i := range k.prrBusySnap {
		k.prrBusySnap[i] = k.Fabric.Busy(i)
	}
}

// PRRBusy reports whether PRR r is executing a hardware task. Inside a
// parallel run the reading core sees the epoch-entry snapshot, at most
// one epoch stale — within the polling granularity the workloads use.
func (k *Kernel) PRRBusy(r int) bool {
	if k.Fabric == nil {
		return false
	}
	if len(k.Cores) == 1 || !k.running {
		return k.Fabric.Busy(r)
	}
	if r >= 0 && r < len(k.prrBusySnap) {
		return k.prrBusySnap[r]
	}
	return false
}

// reconfigCore is the core the reconfiguration machinery (PCAP, fabric
// default clock, request bookkeeping) runs on: the manager service's home
// core once one is registered.
func (k *Kernel) reconfigCore() *CoreCtx {
	if k.hwSvc != nil {
		return k.hwSvc.Core
	}
	return k.Cores[0]
}

// RunParallel advances the system to the given absolute time using the
// conservative epoch-barrier engine, spreading the simulated cores over
// shards host goroutines. The result is byte-identical to Run on the same
// configuration: a multi-core Run executes the identical epoch algorithm
// on one goroutine, and within an epoch the cores touch disjoint
// simulated state (cross-core effects are deferred to the barrier), so
// host interleaving cannot be observed.
func (k *Kernel) RunParallel(until simclock.Cycles, shards int) {
	if len(k.Cores) == 1 {
		// One simulated core has no cross-core horizon; the sequential
		// reference loop is the parallel semantics.
		k.Run(until)
		return
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(k.Cores) {
		shards = len(k.Cores)
	}
	k.runEpochs(until, shards)
}

// RunParallelFor advances the system by d cycles with RunParallel.
func (k *Kernel) RunParallelFor(d simclock.Cycles, shards int) {
	k.RunParallel(k.Clock.Now()+d, shards)
}

// runEpochs is the epoch-barrier engine. Each iteration computes the
// earliest instant any lagging core could act (run a PD or fire a local
// event), closes the epoch window at the next epoch boundary past it,
// runs every core independently up to the window edge, then commits the
// deferred cross-core effects. Cores with nothing to do jump straight to
// the window edge, so an idle-heavy system advances at event resolution,
// not epoch resolution.
func (k *Kernel) runEpochs(until simclock.Cycles, shards int) {
	k.running = true
	defer func() { k.running = false }()
	k.refreshPRRSnapshot()

	// Persistent shard workers: one goroutine per shard for the whole run,
	// fed an epoch window per barrier round. Spawning fresh goroutines
	// every 20 µs epoch costs more than the barrier itself on small
	// windows. The channel send publishes the commit phase's writes to the
	// worker; wg.Done/Wait publishes the slice's writes back — the same
	// happens-before edges the per-epoch spawn provided.
	var crew []chan simclock.Cycles
	var wg sync.WaitGroup
	if shards > 1 {
		crew = make([]chan simclock.Cycles, shards)
		for s := range crew {
			ch := make(chan simclock.Cycles)
			crew[s] = ch
			go func(s int, ch chan simclock.Cycles) {
				for w := range ch {
					for i := s; i < len(k.Cores); i += shards {
						if c := k.Cores[i]; c.Clock.Now() < w {
							k.runSlice(c, w)
						}
					}
					wg.Done()
				}
			}(s, ch)
		}
		defer func() {
			for _, ch := range crew {
				close(ch)
			}
		}()
	}
	for {
		t := farFuture
		allDone := true
		for _, c := range k.Cores {
			if c.Clock.Now() >= until {
				continue
			}
			allDone = false
			ct := farFuture
			if k.Sched.Pick(c.ID) != nil {
				ct = c.Clock.Now()
			} else if d, ok := c.Clock.NextDeadline(); ok {
				ct = d
			}
			if ct < t {
				t = ct
			}
		}
		if allDone {
			break
		}
		if t == farFuture {
			// No lagging core has runnable work or a timed event. Deferred
			// commits may still create some; failing that, nothing can
			// happen before the horizon — fast-forward everyone.
			if k.committer.Pending() {
				k.drainCommits()
				continue
			}
			for _, c := range k.Cores {
				c.Clock.AdvanceTo(until)
			}
			break
		}
		w := t/k.Epoch*k.Epoch + k.Epoch
		if w > until {
			w = until
		}
		k.Epochs++
		if shards <= 1 {
			for _, c := range k.Cores {
				if c.Clock.Now() < w {
					k.runSlice(c, w)
				}
			}
		} else {
			wg.Add(shards)
			for _, ch := range crew {
				ch <- w
			}
			wg.Wait()
		}
		k.drainCommits()
	}
	k.drainCommits()
}

// runSlice advances one core to the epoch window edge w: deliver latched
// cross-core interrupts, then alternate scheduling windows and local-event
// sleeps until the core's cursor reaches w.
func (k *Kernel) runSlice(c *CoreCtx, w simclock.Cycles) {
	c.CPU.IRQMasked = false
	c.CPU.PollIRQ()
	c.CPU.IRQMasked = true
	for c.Clock.Now() < w {
		var pd *PD
		for {
			n := k.Sched.Pick(c.ID)
			if n == nil {
				break
			}
			p := n.Owner.(*PD)
			if !p.dead {
				pd = p
				break
			}
			k.Sched.Dequeue(n)
		}
		if pd == nil {
			d, ok := c.Clock.NextDeadline()
			if !ok || d > w {
				c.Clock.AdvanceTo(w)
				return
			}
			if d <= c.Clock.Now() {
				// A due event at the current instant: Advance(0) fires it,
				// where AdvanceTo would be a no-op and spin forever.
				c.Clock.Advance(0)
			} else {
				c.Clock.AdvanceTo(d)
			}
			c.CPU.IRQMasked = false
			c.CPU.PollIRQ()
			c.CPU.IRQMasked = true
			continue
		}
		k.runCoreEpoch(c, pd, w)
	}
}

// runCoreEpoch gives core c one scheduling window bounded by the epoch
// edge — the epoch engine's counterpart of runCore, driven by the core's
// own clock.
func (k *Kernel) runCoreEpoch(c *CoreCtx, pd *PD, w simclock.Cycles) {
	k.worldSwitch(c, pd)
	// Complete the Table III "HW Manager exit" probe when the manager's own
	// core switches to a guest after a completion (the co-resident layout).
	// The probe state lives on the manager's core, so only this goroutine
	// reads it; on a dedicated manager core the exit instead ends when the
	// service self-suspends, inside mgrNextRequest.
	if k.hwSvc != nil && c == k.hwSvc.Core && pd != k.hwSvc && k.mgrExitArmed {
		k.Probes.Add(measure.PhaseMgrExit, since(c.Clock.Now(), k.mgrExitFrom))
		k.mgrExitArmed = false
	}
	c.needResched = false
	c.quantumExpired = false
	if pd.VCPU.QuantumLeft == 0 {
		pd.VCPU.QuantumLeft = k.Sched.Quantum()
	}
	c.Timer.Start(pd.VCPU.QuantumLeft, true)
	stop := c.Clock.At(w, func(simclock.Cycles) { c.needResched = true })

	start := c.Clock.Now()
	c.CPU.Mode, c.CPU.IRQMasked = cpu.ModeUSR, false
	k.activate(c, pd)
	elapsed := c.Clock.Now() - start
	c.Timer.Stop()
	c.Clock.Cancel(stop)
	c.BusyCycles += elapsed

	if c.quantumExpired || elapsed >= pd.VCPU.QuantumLeft {
		pd.VCPU.QuantumLeft = 0
		if k.Sched.Queued(&pd.node) {
			k.Sched.Rotate(c.ID, pd.Priority)
		}
	} else {
		pd.VCPU.QuantumLeft -= elapsed
	}
}
