package nova

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/simclock"
)

// An idle-heavy multi-core system must advance at event resolution, not
// epoch resolution: with every core parked, the engine fast-forwards all
// clocks to the next event (or the horizon) in one step instead of
// grinding through empty 20 µs epochs. A 100 ms horizon holds 5000
// epochs; a handful of timer pops must cost a comparable handful.
func TestIdleFastForward(t *testing.T) {
	k := dualKernel()
	defer k.Shutdown()
	var pops int
	var tick func(simclock.Cycles)
	tick = func(simclock.Cycles) {
		pops++
		if pops < 20 {
			k.Clock.After(simclock.FromMillis(5), tick)
		}
	}
	k.Clock.After(simclock.FromMillis(5), tick)
	k.RunFor(simclock.FromMillis(100))

	if pops != 20 {
		t.Fatalf("timer pops = %d, want 20", pops)
	}
	if k.Epochs == 0 {
		t.Fatal("multi-core run used no epochs")
	}
	// Each pop can open at most a couple of epoch windows (the pop's own
	// window plus a successor while the callback's effects drain); the
	// naive bound is horizon/epoch = 5000.
	if k.Epochs > 100 {
		t.Errorf("idle-heavy run used %d epochs for 20 events — the idle path is not fast-forwarding", k.Epochs)
	}
}

// The fast-forward must not skip runnable work: a PD that blocks and is
// woken by a timer must run at the wake instant, with the cores' clocks
// converged on the horizon afterwards.
func TestIdleFastForwardWakes(t *testing.T) {
	k := dualKernel()
	defer k.Shutdown()
	var ranAt simclock.Cycles
	pd := k.CreatePD(PDConfig{
		Name: "sleeper", Priority: PrioGuest, Affinity: sched.MaskOf(1),
		StartSuspended: true,
		Guest: &scriptGuest{"sleeper", func(env *Env) {
			ranAt = env.Now()
			env.Hypercall(HcSuspend)
		}},
	})
	k.Clock.After(simclock.FromMillis(40), func(simclock.Cycles) {
		k.wakeFrom(k.Cores[0], pd)
	})
	k.RunFor(simclock.FromMillis(100))
	if ranAt == 0 {
		t.Fatal("sleeper never ran")
	}
	if ranAt < simclock.FromMillis(40) || ranAt > simclock.FromMillis(41) {
		t.Errorf("sleeper ran at %v, want just past 40 ms", ranAt)
	}
	for _, c := range k.Cores {
		if c.Clock.Now() < simclock.FromMillis(100) {
			t.Errorf("core %d stopped at %v, want the 100 ms horizon", c.ID, c.Clock.Now())
		}
	}
}

// RunParallel must clamp its shard count: more shards than cores, zero or
// negative shards all run — and one simulated core always takes the
// sequential reference loop.
func TestRunParallelShardClamp(t *testing.T) {
	for _, shards := range []int{-1, 0, 1, 2, 8} {
		k := dualKernel()
		var ran simclock.Cycles
		k.CreatePD(PDConfig{
			Name: "g", Priority: PrioGuest, Affinity: sched.MaskOf(0),
			Guest: &scriptGuest{"g", func(env *Env) {
				for {
					start := env.Now()
					env.Ctx.Exec(200)
					ran += env.Now() - start
					env.CheckPreempt()
				}
			}},
		})
		k.RunParallelFor(simclock.FromMillis(5), shards)
		if ran == 0 {
			t.Errorf("shards=%d: guest made no progress", shards)
		}
		k.Shutdown()
	}
}
