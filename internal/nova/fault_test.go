package nova

// Fault-tolerance and QoS regression tests for the kernel layer: PD
// teardown must purge the reconfiguration pipeline (the revoke-during-
// in-flight-reconfig hazard), and the manager-portal admission guards
// must throttle, trip and bypass exactly as configured.

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/simclock"
)

// TestRevokeDuringInFlightReconfig kills a client PD while its
// reconfiguration is still in flight (SD fill running, manager already
// answered Reconfig): the teardown must purge the dead PD's pipeline
// state — no completion callback may fire into the retired vGIC, the
// pipeline must drain, and the rest of the system must keep running.
func TestRevokeDuringInFlightReconfig(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fabricForTest(k)

	// Stage a real bitstream at store offset 0 so the PCAP leg, if it
	// runs, decodes something valid.
	bs := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 100}, 64<<10)
	raw := bs.Encode()
	if err := k.Bus.WriteBytes(BitstreamStorePA(), raw); err != nil {
		t.Fatal(err)
	}

	// Minimal manager: answer the acquire with StatusReconfig right after
	// launching the download, the overlap the real service exploits — the
	// client resumes while its bitstream is still being staged.
	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		StartSuspended: true, Guest: &scriptGuest{"hwtm", func(env *Env) {
			reqID := env.Hypercall(HcMgrNextRequest)
			for {
				view, ok := k.MgrRequest(reqID)
				if !ok {
					t.Error("MgrRequest lookup failed")
					return
				}
				env.Hypercall(HcMgrMapIface, reqID, 0)
				env.Hypercall(HcMgrHwMMULoad, uint32(view.ClientID), 0)
				env.Hypercall(HcMgrAllocIRQ, reqID, 0)
				env.Hypercall(HcMgrPCAPStart, reqID, 0, uint32(len(raw)), 0)
				reqID = env.Hypercall(HcMgrComplete, reqID, StatusReconfig)
			}
		}}})
	k.RegisterHwService(svc)

	var reply uint32
	victim := k.CreatePD(PDConfig{Name: "victim", Priority: PrioGuest,
		Guest: &scriptGuest{"victim", func(env *Env) {
			for i := uint32(0); i < 16; i++ {
				env.Hypercall(HcMapPage, GuestDataSect+i*0x1000, 0x20_0000+i*0x1000)
			}
			env.Hypercall(HcRegionCreate, GuestDataSect, 16*0x1000)
			reply = env.Hypercall(HcHwTaskRequest, 1, GuestIfaceBase, GuestDataSect)
			// Exit immediately: the reconfiguration is still in flight.
		}}})

	// Idle-priority bystander: it soaks up the core when nothing else is
	// runnable but never delays the victim's wakeup (a guest-priority
	// bystander would hold its whole 33 ms quantum — longer than the run).
	survived := 0
	k.CreatePD(PDConfig{Name: "bystander", Priority: PrioIdle,
		Guest: &scriptGuest{"bystander", func(env *Env) {
			for {
				env.Ctx.Exec(200)
				survived++
				env.CheckPreempt()
			}
		}}})

	k.RunFor(simclock.FromMillis(30))

	if reply != StatusReconfig {
		t.Fatalf("victim's acquire reply = %d, want StatusReconfig (the overlap window)", reply)
	}
	if !victim.Dead() {
		t.Fatal("victim PD not retired")
	}
	if got := k.Reconfig.Stats.Purged; got == 0 {
		t.Error("teardown purged no pipeline requests; the in-flight reconfig leaked")
	}
	if k.Reconfig.PendingFor(victim) {
		t.Error("pipeline still tracks the dead PD")
	}
	if !k.Reconfig.Idle() {
		t.Error("pipeline not drained after the owner died")
	}
	if survived == 0 {
		t.Error("bystander starved after the victim's teardown")
	}
}

// TestQoSAdmission exercises the portal guards directly: the token
// bucket throttles past its capacity and refills on simulated time, the
// breaker answers Retry while open, and critical-priority clients bypass
// both.
func TestQoSAdmission(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.EnableQoS(QoSConfig{
		BucketCapacity: 2,
		RefillEvery:    simclock.FromMillis(1),
		TripAt:         3,
		DecayEvery:     simclock.FromMillis(1),
		Cooldown:       simclock.FromMillis(5),
	})
	spin := func(env *Env) {
		for {
			env.Ctx.Exec(1 << 20)
			env.CheckPreempt()
		}
	}
	guest := k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", spin}})
	crit := k.CreatePD(PDConfig{Name: "crit", Priority: PrioService, Guest: &scriptGuest{"crit", spin}})

	// Two tokens, then throttled.
	for i := 0; i < 2; i++ {
		if st := k.admitHwRequest(guest.Core, guest); st != StatusOK {
			t.Fatalf("admit %d = %d, want OK", i, st)
		}
	}
	if st := k.admitHwRequest(guest.Core, guest); st != StatusThrottled {
		t.Fatalf("admit over capacity = %d, want StatusThrottled", st)
	}
	if d, _, _ := k.QoSCounters(guest); d != 1 {
		t.Errorf("denials = %d, want 1", d)
	}

	// A millisecond of simulated time refills a token.
	k.Clock.Advance(simclock.FromMillis(1))
	if st := k.admitHwRequest(guest.Core, guest); st != StatusOK {
		t.Fatalf("admit after refill = %d, want OK", st)
	}

	// Trip the breaker (as repeated launch/fault charges would) and the
	// portal answers Retry until the cooldown lapses.
	now := k.Clock.Now()
	guest.breaker.Charge(now, 3)
	if st := k.admitHwRequest(guest.Core, guest); st != StatusRetry {
		t.Fatalf("admit with open breaker = %d, want StatusRetry", st)
	}
	if _, trips, rej := k.QoSCounters(guest); trips != 1 || rej != 1 {
		t.Errorf("trips/rejections = %d/%d, want 1/1", trips, rej)
	}
	k.Clock.Advance(simclock.FromMillis(6))
	if st := k.admitHwRequest(guest.Core, guest); st == StatusRetry {
		t.Error("breaker still open after its cooldown")
	}

	// Critical-priority clients bypass admission entirely — drain their
	// bucket by force and they are still admitted.
	crit.bucket.Capacity = 1
	for i := 0; i < 5; i++ {
		if st := k.admitHwRequest(crit.Core, crit); st != StatusOK {
			t.Fatalf("critical admit %d = %d, want OK (bypass)", i, st)
		}
	}
	if d, _, _ := k.QoSCounters(crit); d != 0 {
		t.Errorf("critical client counted %d denials, want 0 (bypass)", d)
	}
}
