package nova

import (
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/reconfig"
	"repro/internal/simclock"
)

// HwRequestKind distinguishes allocation requests from releases.
type HwRequestKind int

// Request kinds.
const (
	HwReqAcquire HwRequestKind = iota
	HwReqRelease
)

// HwRequest is one queued hardware-task request (§IV-E: "Three arguments
// are passed via this hypercall: the target hardware task ID number, the
// virtual address of the task interface, and the virtual address of the
// hardware task data section").
type HwRequest struct {
	ID      uint32
	Kind    HwRequestKind
	PD      *PD
	TaskID  uint16
	IfaceVA uint32
	DataVA  uint32

	reply   uint32
	replied bool
}

// hcBaseCost is the handler path length in instructions for each
// hypercall — the kernel code the SWI dispatcher and the handler execute.
var hcBaseCost = map[int]int{
	HcNull: 18, HcPrint: 30, HcVMID: 20, HcYield: 28,
	HcTimerSet: 55, HcTimerCancel: 35, HcIRQEnable: 45, HcIRQDisable: 45,
	HcIRQEOI: 32, HcCacheFlush: 60, HcTLBFlush: 40, HcMapPage: 90,
	HcUnmapPage: 80, HcRegionCreate: 85, HcDACRSwitch: 30,
	HcHwTaskRequest: 95, HcHwTaskRelease: 70, HcHwTaskStatus: 40,
	HcIPCSend: 70, HcIPCRecv: 60, HcUARTWrite: 35, HcUARTRead: 35,
	HcSDRead: 120, HcSDWrite: 120, HcSuspend: 40,
	HcMgrNextRequest: 50, HcMgrMapIface: 110, HcMgrUnmapIface: 70,
	HcMgrHwMMULoad: 45, HcMgrPCAPStart: 85, HcMgrComplete: 60,
	HcMgrAllocIRQ: 75,
}

// onSWI is the kernel's hypercall dispatcher — the PD exception interface
// of §III-A, distributing calls to capability portals.
func (k *Kernel) onSWI(c *CoreCtx, num int, args [4]uint32) uint32 {
	t0 := k.Clock.Now()
	pd := c.Current
	if pd == nil {
		return StatusErr
	}
	pd.Hypercalls++
	c.kctx.Exec(hcBaseCost[num] + 14) // vector + dispatch table + handler
	c.kctx.Touch(pd.kdata, false)     // PD descriptor lookup

	var ret uint32
	switch {
	case num < NumHypercalls:
		ret = k.guestCall(c, pd, num, args)
	case num <= HcMgrAllocIRQ:
		if pd.Caps&CapHwManager == 0 {
			ret = StatusDenied
		} else {
			ret = k.managerPortal(pd, num, args)
		}
	default:
		ret = StatusInval
	}
	k.Probes.Add(measure.PhaseHypercall, k.Clock.Now()-t0)
	return ret
}

func (k *Kernel) guestCall(c *CoreCtx, pd *PD, num int, args [4]uint32) uint32 {
	switch num {
	case HcNull:
		return StatusOK

	case HcPrint:
		k.Console.WriteByte(byte(args[0]))
		k.Clock.Advance(CostDeviceAccess)
		return StatusOK

	case HcVMID:
		return uint32(pd.ID)

	case HcYield:
		c.quantumExpired = true
		c.needResched = true
		return StatusOK

	case HcTimerSet:
		return k.hcTimerSet(pd, simclock.Cycles(args[0]))

	case HcTimerCancel:
		k.parkVirtualTimer(pd)
		pd.VCPU.TimerPeriod = 0
		pd.timerRemaining = 0
		return StatusOK

	case HcIRQEnable:
		irq := int(args[0])
		if irq == gic.PrivateTimerIRQ {
			pd.VGIC.Register(irq) // virtual timer PPI: self-service
		}
		if !pd.VGIC.Enable(irq) {
			return StatusDenied
		}
		if physicalLine(irq) && pd == c.Current {
			k.GIC.Enable(irq)
			k.Clock.Advance(CostDeviceAccess)
		}
		return StatusOK

	case HcIRQDisable:
		irq := int(args[0])
		if !pd.VGIC.Disable(irq) {
			return StatusDenied
		}
		if physicalLine(irq) {
			k.GIC.Disable(irq)
			k.Clock.Advance(CostDeviceAccess)
		}
		return StatusOK

	case HcIRQEOI:
		if !pd.VGIC.EOI(int(args[0])) {
			return StatusInval
		}
		return StatusOK

	case HcCacheFlush:
		c.CPU.CP15Write(cpu.CP15DCCISW, 0)
		return StatusOK

	case HcTLBFlush:
		c.CPU.CP15Write(cpu.CP15TLBIASID, uint32(pd.ASID))
		return StatusOK

	case HcMapPage:
		return k.hcMapPage(pd, args[0], args[1])

	case HcUnmapPage:
		return k.hcUnmapPage(pd, args[0])

	case HcRegionCreate:
		return k.hcRegionCreate(pd, args[0], args[1])

	case HcDACRSwitch:
		guestKernelCtx := args[0] != 0
		d := dacrFor(guestKernelCtx)
		pd.VCPU.DACR = d
		c.CPU.CP15Write(cpu.CP15DACR, d)
		return StatusOK

	case HcHwTaskRequest:
		return k.hcHwTaskRequest(pd, HwReqAcquire, args)

	case HcHwTaskRelease:
		return k.hcHwTaskRequest(pd, HwReqRelease, args)

	case HcHwTaskStatus:
		return k.hcHwTaskStatus(pd, args[0])

	case HcIPCSend:
		return k.hcIPCSend(pd, int(args[0]), args[1])

	case HcIPCRecv:
		return k.hcIPCRecv(pd, args[0] != 0)

	case HcUARTWrite:
		k.Console.WriteByte(byte(args[0]))
		k.Clock.Advance(CostDeviceAccess)
		return StatusOK

	case HcUARTRead:
		k.Clock.Advance(CostDeviceAccess)
		return 0 // no input source modelled; returns "no data"

	case HcSDRead:
		return k.hcSD(pd, args[0], args[1], false)

	case HcSDWrite:
		if pd.Caps&CapIODirect == 0 {
			return StatusDenied
		}
		return k.hcSD(pd, args[0], args[1], true)

	case HcSuspend:
		if args[0] == 1 {
			// Paravirtualized idle: sleep until a virtual interrupt is
			// injected (the guest's WFI). A pending injection returns
			// immediately.
			if pd.VGIC.HasPending() {
				return StatusOK
			}
			pd.idleWaiting = true
			pd.Env.block()
			pd.idleWaiting = false
			return StatusOK
		}
		pd.Env.block()
		return StatusOK
	}
	return StatusInval
}

// hcTimerSet programs the caller's virtual timer. Virtual time advances
// only while the VM executes: the timer is parked across switch-out and
// resumed on switch-in, so a guest's tick count tracks its own runtime —
// as on the paper's platform, where the virtual timer state is part of
// the actively-switched vCPU (Table I).
func (k *Kernel) hcTimerSet(pd *PD, period simclock.Cycles) uint32 {
	if period < 100 {
		return StatusInval // guard against interrupt storms
	}
	k.parkVirtualTimer(pd)
	pd.VCPU.TimerPeriod = period
	pd.timerRemaining = period
	if pd == pd.Core.Current {
		k.armVirtualTimer(pd)
	}
	return StatusOK
}

// hcMapPage inserts va -> RAMBase+offset into the caller's own table —
// "memory management: mapping inserting, guest page table creation"
// (§III-A). Guests may only map their own RAM below the kernel split.
func (k *Kernel) hcMapPage(pd *PD, va, offset uint32) uint32 {
	if va&0xFFF != 0 || offset&0xFFF != 0 || offset >= pd.RAMSize || va >= KernelCodeVA-0x1000_0000 {
		return StatusInval
	}
	pd.Table.MapPage(va, pd.RAMBase+physmem.Addr(offset), DomainGuestUser, mmu.APFull)
	k.chargePTEdit(pd, va)
	pd.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	return StatusOK
}

func (k *Kernel) hcUnmapPage(pd *PD, va uint32) uint32 {
	if va >= KernelCodeVA-0x1000_0000 {
		return StatusInval
	}
	pd.Table.UnmapPage(va)
	k.chargePTEdit(pd, va)
	pd.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	return StatusOK
}

// chargePTEdit charges the descriptor traffic of a page-table update —
// the cost the paper attributes to the virtualized manager ("switching to
// the kernel space to update the target VM's page table").
func (k *Kernel) chargePTEdit(pd *PD, va uint32) {
	kctx := k.editCtx()
	for range pd.Table.DescriptorAddrs(va) {
		kctx.Touch(0xF020_0000+(va>>12&0x3FF)*4, true)
	}
}

// editCtx returns the kernel execution context of the core the kernel is
// executing on right now (core 0 outside any scheduling window).
func (k *Kernel) editCtx() *cpu.ExecContext {
	if k.active != nil {
		return k.active.kctx
	}
	return k.Cores[0].kctx
}

// hcRegionCreate registers [va, va+size) as the caller's hardware-task
// data section (§IV-B: "each guest OS can define its own hardware task
// data section within its own memory space").
func (k *Kernel) hcRegionCreate(pd *PD, va, size uint32) uint32 {
	if va&0xFFF != 0 || size == 0 || size&0xFFF != 0 || size > pd.RAMSize {
		return StatusInval
	}
	pa, err := translateGuestVA(pd, va)
	if err != nil {
		return StatusInval
	}
	// The section must be fully mapped and physically contiguous (it is a
	// DMA window the hwMMU describes with one base+size pair): verify every
	// page translates linearly.
	for off := uint32(0x1000); off < size; off += 0x1000 {
		p, err := translateGuestVA(pd, va+off)
		if err != nil || p != pa+physmem.Addr(off) {
			return StatusInval
		}
	}
	pd.DataSectionVA, pd.DataSectionPA, pd.DataSectionSize = va, pa, size
	return StatusOK
}

// hcHwTaskRequest queues a request for the Hardware Task Manager, wakes
// the service, and blocks the caller until the manager posts the reply —
// "the Hardware Task Manager service is created with a higher priority
// level than general guests, so that this service can preempt guests and
// execute immediately once it is invoked" (§IV-E).
func (k *Kernel) hcHwTaskRequest(pd *PD, kind HwRequestKind, args [4]uint32) uint32 {
	if k.hwSvc == nil || k.Fabric == nil {
		return StatusErr
	}
	if kind == HwReqAcquire && pd.DataSectionSize == 0 {
		return StatusInval // must register a data section first
	}
	k.nextReqID++
	req := &HwRequest{
		ID:      k.nextReqID,
		Kind:    kind,
		PD:      pd,
		TaskID:  uint16(args[0]),
		IfaceVA: args[1],
		DataVA:  args[2],
	}
	k.hwQueue = append(k.hwQueue, req)
	k.hwByID[req.ID] = req
	k.editCtx().Touch(KernelDataVA+0x9000+(req.ID%64)*16, true) // queue slot

	// Arm the Table III "HW Manager entry" probe: from this hypercall
	// (exception entry) to the manager fetching the request. When several
	// requests queue (only possible if the service is not strictly above
	// guest priority), the oldest one defines the entry latency.
	if !k.mgrEntryArmed {
		k.mgrEntryFrom = k.Clock.Now() - cpu.CostExceptionEntry
		k.mgrEntryArmed = true
	}

	k.wake(k.hwSvc)
	pd.Env.block() // resumes when the manager calls HcMgrComplete
	delete(k.hwByID, req.ID)
	return req.reply
}

// hcHwTaskStatus lets a guest poll PCAP completion ("by polling the
// completion signal", §IV-E) or a held task's state. With the pipeline a
// reconfiguration is "in flight" through its whole journey: SD fill,
// request queue, and PCAP download.
func (k *Kernel) hcHwTaskStatus(pd *PD, _ uint32) uint32 {
	k.Clock.Advance(CostDeviceAccess)
	if k.Fabric == nil {
		return StatusErr
	}
	if k.Reconfig != nil && k.Reconfig.PendingFor(pd) {
		return StatusReconfig
	}
	return StatusOK
}

func (k *Kernel) hcIPCSend(pd *PD, dst int, word uint32) uint32 {
	if dst < 0 || dst >= len(k.PDs) || k.PDs[dst] == pd {
		return StatusInval
	}
	to := k.PDs[dst]
	if len(to.mbox) >= 16 {
		return StatusBusy
	}
	to.mbox = append(to.mbox, ipcMsg{sender: pd.ID, word: word})
	k.editCtx().Touch(to.kdata+0x80, true)
	if to.recvBlocked {
		to.recvBlocked = false
		k.wake(to)
	}
	return StatusOK
}

// hcIPCRecv returns sender<<24 | (word & 0xFFFFFF), or StatusNoMsg/blocks.
func (k *Kernel) hcIPCRecv(pd *PD, blocking bool) uint32 {
	for len(pd.mbox) == 0 {
		if !blocking {
			return StatusNoMsg
		}
		pd.recvBlocked = true
		pd.Env.block()
	}
	m := pd.mbox[0]
	pd.mbox = pd.mbox[1:]
	k.editCtx().Touch(pd.kdata+0x80, false)
	return uint32(m.sender)<<24 | m.word&0xFF_FFFF
}

// hcSD copies one 512-byte block between the simulated SD card and the
// caller's RAM (supervised shared I/O, §V-A).
func (k *Kernel) hcSD(pd *PD, block, ramOffset uint32, write bool) uint32 {
	if ramOffset+512 > pd.RAMSize {
		return StatusInval
	}
	pa := pd.RAMBase + physmem.Addr(ramOffset)
	k.Clock.Advance(simclock.Cycles(512 / 4 * 2)) // DMA-ish block move
	if write {
		data, err := k.Bus.ReadBytes(pa, 512)
		if err != nil {
			return StatusErr
		}
		k.sd[block] = data
		return StatusOK
	}
	data, ok := k.sd[block]
	if !ok {
		data = make([]byte, 512)
	}
	if err := k.Bus.WriteBytes(pa, data); err != nil {
		return StatusErr
	}
	return StatusOK
}

// --- Hardware Task Manager capability portals (§IV-E, Fig. 7) ---

func (k *Kernel) managerPortal(pd *PD, num int, args [4]uint32) uint32 {
	switch num {
	case HcMgrNextRequest:
		return k.mgrNextRequest(pd)

	case HcMgrComplete:
		return k.mgrComplete(pd, args[0], args[1])

	case HcMgrMapIface:
		return k.mgrMapIface(args[0], int(args[1]))

	case HcMgrUnmapIface:
		return k.mgrUnmapIface(int(args[0]), int(args[1]))

	case HcMgrHwMMULoad:
		return k.mgrHwMMULoad(int(args[0]), int(args[1]))

	case HcMgrPCAPStart:
		return k.mgrPCAPStart(args[0], args[1], args[2], args[3])

	case HcMgrAllocIRQ:
		return k.mgrAllocIRQ(args[0], int(args[1]))
	}
	return StatusInval
}

// mgrNextRequest pops the oldest queued request, blocking (service
// suspends itself) while the queue is empty. Completing the entry probe
// here captures hypercall + wakeup + world switch, the paper's "HW
// Manager entry".
func (k *Kernel) mgrNextRequest(pd *PD) uint32 {
	for len(k.hwQueue) == 0 {
		pd.Env.block()
	}
	req := k.hwQueue[0]
	k.hwQueue = k.hwQueue[1:]
	k.editCtx().Touch(KernelDataVA+0x9000+(req.ID%64)*16, false)
	if k.mgrEntryArmed {
		k.Probes.Add(measure.PhaseMgrEntry, k.Clock.Now()-k.mgrEntryFrom)
		k.mgrEntryArmed = false
	}
	// Manager execution starts when it receives the request (Table III's
	// "HW Manager execution" row).
	k.mgrExecFrom = k.Clock.Now()
	k.mgrExecArmed = true
	return req.ID
}

// mgrComplete posts the reply, wakes the requester, then immediately
// waits for the next request (merged reply+suspend, §IV-E: "After
// processing the request, the manager service will remove itself from the
// running queue list, resuming the interrupted guest OS with a return
// status"). Returns the next request ID when re-invoked.
func (k *Kernel) mgrComplete(pd *PD, reqID, status uint32) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok {
		return StatusInval
	}
	req.reply = status
	req.replied = true
	if k.mgrExecArmed {
		k.Probes.Add(measure.PhaseMgrExec, k.Clock.Now()-k.mgrExecFrom)
		k.mgrExecArmed = false
	}
	k.wake(req.PD)
	// Arm the "HW Manager exit" probe: from here to the world switch that
	// resumes a guest.
	k.mgrExitFrom = k.Clock.Now()
	k.mgrExitArmed = true
	return k.mgrNextRequest(pd)
}

// MgrRequestView is the read-only view of a request the manager sees (the
// kernel maps the descriptor into the service's space).
type MgrRequestView struct {
	ID       uint32
	Kind     HwRequestKind
	ClientID int
	TaskID   uint16
	IfaceVA  uint32
	DataVA   uint32
}

// MgrRequest exposes a queued request's fields to the manager service.
func (k *Kernel) MgrRequest(reqID uint32) (MgrRequestView, bool) {
	req, ok := k.hwByID[reqID]
	if !ok {
		return MgrRequestView{}, false
	}
	return MgrRequestView{
		ID: req.ID, Kind: req.Kind, ClientID: req.PD.ID,
		TaskID: req.TaskID, IfaceVA: req.IfaceVA, DataVA: req.DataVA,
	}, true
}

// mgrMapIface maps the PRR's register page into the requesting client's
// table at the VA the client asked for — stage (3) of Fig. 7. The page is
// guest-user accessible, so the client programs its task directly; other
// guests have no mapping, which is the exclusivity guarantee of §IV-C.
func (k *Kernel) mgrMapIface(reqID uint32, prr int) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil || prr < 0 || prr >= len(k.Fabric.PRRs) {
		return StatusInval
	}
	va := req.IfaceVA
	if va == 0 || va&0xFFF != 0 {
		return StatusInval
	}
	client := req.PD
	client.Table.MapPage(va, k.Fabric.GroupBase(prr), DomainGuestUser, mmu.APFull)
	k.chargePTEdit(client, va)
	client.Core.CPU.TLB.FlushVA(va, client.ASID)
	client.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	if client.ifaceVA == nil {
		client.ifaceVA = map[int]uint32{}
	}
	client.ifaceVA[prr] = va
	return StatusOK
}

// mgrUnmapIface revokes a client's interface mapping and performs the
// consistency save of §IV-C: the register-group snapshot goes into the
// former owner's data section together with the "inconsistent" state
// flag, then the PL IRQ line is withdrawn from its vGIC.
func (k *Kernel) mgrUnmapIface(pdID, prr int) uint32 {
	if pdID < 0 || pdID >= len(k.PDs) || k.Fabric == nil {
		return StatusInval
	}
	client := k.PDs[pdID]
	va, ok := client.ifaceVA[prr]
	if !ok || va == 0 {
		return StatusInval
	}
	// Save the register group into the reserved structure at the head of
	// the data section: word0 = state flag (2 = inconsistent), words 1..8
	// the register image.
	if client.DataSectionSize >= 64 {
		regs := k.Fabric.SaveRegGroup(prr)
		base := client.DataSectionPA
		_ = k.Bus.Write32(base, DataSectFlagInconsistent)
		for i, r := range regs {
			_ = k.Bus.Write32(base+physmem.Addr(4+i*4), r)
		}
		k.editCtx().Exec(20)
		k.Clock.Advance(9 * 2) // 9 word stores through the write buffer
	}
	client.Table.UnmapPage(va)
	k.chargePTEdit(client, va)
	client.Core.CPU.TLB.FlushVA(va, client.ASID)
	delete(client.ifaceVA, prr)
	// Withdraw the interrupt line.
	if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
		irq := gic.PLIRQBase + line
		client.VGIC.Unregister(irq)
		k.plirqOwner[line] = nil
		k.GIC.Disable(irq)
		k.Fabric.ReleaseIRQ(prr)
		k.Clock.Advance(CostDeviceAccess)
	}
	return StatusOK
}

// mgrHwMMULoad points PRR prr's DMA window at the client's data section —
// stage (4) of Fig. 7.
func (k *Kernel) mgrHwMMULoad(pdID, prr int) uint32 {
	if pdID < 0 || pdID >= len(k.PDs) || k.Fabric == nil {
		return StatusInval
	}
	client := k.PDs[pdID]
	if client.DataSectionSize == 0 {
		return StatusInval
	}
	k.Fabric.HwMMU.Load(prr, pl.Window{
		Base: client.DataSectionPA, Size: client.DataSectionSize, Valid: true,
	})
	k.Clock.Advance(2 * CostDeviceAccess)
	// Reset the consistency flag for the new owner.
	_ = k.Bus.Write32(client.DataSectionPA, DataSectFlagOwned)
	return StatusOK
}

// mgrPCAPStart launches a bitstream download — stage (5) of Fig. 7 —
// through the reconfiguration pipeline. The source is an offset into the
// bitstream store (mapped exclusively into the manager's space, §IV-B):
// a cached image goes straight to the PCAP leg, a cold one is staged
// from the SD card first, and a busy PCAP queues the request by the
// client's priority instead of bouncing it back as Busy. The completion
// IRQ is routed to the requesting client when its transfer actually
// starts ("always connected to the VM which launches the current
// transfer", §IV-D).
func (k *Kernel) mgrPCAPStart(reqID, srcOff, length uint32, prr uint32) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil || k.Reconfig == nil {
		return StatusInval
	}
	// Overflow-safe store-bounds check: srcOff+length could wrap uint32.
	if srcOff > 22<<20 || length > 22<<20-srcOff {
		return StatusInval
	}
	pd := req.PD
	k.Reconfig.Submit(&reconfig.Request{
		Key:      srcOff,
		SrcOff:   srcOff,
		Len:      length,
		Target:   int(prr),
		Priority: pd.Priority,
		Owner:    pd,
		OnStart: func(*reconfig.Request) {
			k.GIC.SetTarget(gic.PCAPIRQ, pd.Core.ID)
			pd.VGIC.Register(gic.PCAPIRQ)
			pd.VGIC.Enable(gic.PCAPIRQ)
		},
		OnDone: func(_ *reconfig.Request, ok bool) {
			k.pcapDone = append(k.pcapDone, pd)
		},
	})
	k.Clock.Advance(2 * CostDeviceAccess) // portal bookkeeping
	return StatusOK
}

// mgrAllocIRQ allocates a PL interrupt line for PRR prr and registers it,
// enabled, in the requesting client's vGIC (§IV-D).
func (k *Kernel) mgrAllocIRQ(reqID uint32, prr int) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil {
		return StatusInval
	}
	if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
		// Line already allocated (region reuse): re-point ownership.
		irq := gic.PLIRQBase + line
		k.plirqOwner[line] = req.PD
		k.GIC.SetTarget(irq, req.PD.Core.ID)
		req.PD.VGIC.Register(irq)
		req.PD.VGIC.Enable(irq)
		if req.PD == req.PD.Core.Current {
			k.GIC.Enable(irq)
		}
		return uint32(irq)
	}
	irq, err := k.Fabric.AllocateIRQ(prr)
	if err != nil {
		return StatusErr
	}
	line := irq - gic.PLIRQBase
	k.plirqOwner[line] = req.PD
	k.GIC.SetTarget(irq, req.PD.Core.ID)
	req.PD.VGIC.Register(irq)
	req.PD.VGIC.Enable(irq)
	k.GIC.SetPriority(irq, 0x60)
	if req.PD == req.PD.Core.Current {
		k.GIC.Enable(irq)
	}
	k.Clock.Advance(2 * CostDeviceAccess)
	return uint32(irq)
}

// Data-section reserved-structure flags (§IV-C).
const (
	// DataSectFlagOwned: the hardware task is consistently owned.
	DataSectFlagOwned = 1
	// DataSectFlagInconsistent: the task was reclaimed by another VM; the
	// saved register image follows.
	DataSectFlagInconsistent = 2
)
