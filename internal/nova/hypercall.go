package nova

import (
	"repro/internal/abi"
	"repro/internal/capspace"
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/reconfig"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// HwRequestKind distinguishes allocation requests from releases.
type HwRequestKind int

// Request kinds.
const (
	HwReqAcquire HwRequestKind = iota
	HwReqRelease
)

// HwRequest is one queued hardware-task request (§IV-E: "Three arguments
// are passed via this hypercall: the target hardware task ID number, the
// virtual address of the task interface, and the virtual address of the
// hardware task data section").
type HwRequest struct {
	ID      uint32
	Kind    HwRequestKind
	PD      *PD
	TaskID  uint16
	IfaceVA uint32
	DataVA  uint32

	reply   uint32
	replied bool
}

// regionWindow is the payload of an ObjMemRegion kernel object: the
// physical window the capability conveys (bitstream store, data
// sections).
type regionWindow struct {
	Base physmem.Addr
	Size uint32
}

// Dispatch-path instruction costs: the SWI vector plus selector decode,
// and the capability-table walk (slot load, generation/type/rights
// checks). The resolved portal then charges its own path length
// (portalDesc.cost).
const (
	costHcDecode  = 18
	costCapLookup = 12
)

// CostIPCFastPath is the fixed kernel path length of a same-core
// synchronous portal handoff: the caller's word moves to the receiver
// and control transfers without a runqueue walk or world-switch setup —
// the donated-timeslice fast path of a NOVA-style call. Measured end to
// end by the measure.PhaseIPCCall probe.
const CostIPCFastPath = 120

// onSWI is the kernel's hypercall dispatcher — the PD exception
// interface of §III-A. It is a pure decode step: the call number is a
// selector resolved through the caller's capability table, and the
// resulting portal object's handler does the work. There is no
// privileged side door: manager portals differ from guest calls only in
// which tables hold capabilities to them.
func (k *Kernel) onSWI(c *CoreCtx, sel int, args [4]uint32) uint32 {
	t0 := c.Clock.Now()
	pd := c.Current
	if pd == nil {
		return StatusErr
	}
	pd.Hypercalls++
	pd.lastHcEntry = t0 // replay anchor for restored suspend exits (clone.go)
	c.kctx.Exec(costHcDecode)
	c.kctx.Touch(pd.kdata, false) // PD descriptor lookup
	// Capability resolution: one access into the PD's capability table
	// (kernel-resident, so per-PD cap state competes for cache space)
	// plus the table-walk instructions.
	c.kctx.Touch(pd.kdata+capTableOff+uint32(sel&capTableMask)*capSlotBytes, false)
	c.kctx.Exec(costCapLookup)

	var ret uint32
	obj, cerr := pd.Space.Lookup(sel, capspace.ObjPortal, capspace.RightCall)
	if cerr != capspace.OK {
		ret = capStatus(cerr)
	} else if p, ok := obj.Payload.(*portalDesc); !ok {
		// A device-authority object (e.g. the PCAP token) is a portal
		// capability but not a callable service entry.
		ret = StatusBadType
	} else {
		c.kctx.Exec(p.cost)
		ret = p.fn(k, c, pd, args)
	}
	d := since(c.Clock.Now(), t0)
	k.Probes.Add(measure.PhaseHypercall, c.Clock.Now()-t0)
	if k.Tracer != nil {
		k.Tracer.Core(c.ID).EmitSpan(t0, d, trace.KindHypercall, 0, uint64(sel), uint64(ret))
		k.trHypercall.Observe(d)
	}
	return ret
}

// hcTimerSet programs the caller's virtual timer. Virtual time advances
// only while the VM executes: the timer is parked across switch-out and
// resumed on switch-in, so a guest's tick count tracks its own runtime —
// as on the paper's platform, where the virtual timer state is part of
// the actively-switched vCPU (Table I).
func (k *Kernel) hcTimerSet(pd *PD, period simclock.Cycles) uint32 {
	if period < 100 {
		return StatusInval // guard against interrupt storms
	}
	k.parkVirtualTimer(pd)
	pd.VCPU.TimerPeriod = period
	pd.timerRemaining = period
	if pd == pd.Core.Current {
		k.armVirtualTimer(pd)
	}
	return StatusOK
}

// hcMapPage inserts va -> RAMBase+offset into the caller's own table —
// "memory management: mapping inserting, guest page table creation"
// (§III-A). Guests may only map their own RAM below the kernel split.
func (k *Kernel) hcMapPage(c *CoreCtx, pd *PD, va, offset uint32) uint32 {
	if va&0xFFF != 0 || offset&0xFFF != 0 || offset >= pd.RAMSize || va >= KernelCodeVA-0x1000_0000 {
		return StatusInval
	}
	pd.Table.MapPage(va, pd.RAMBase+physmem.Addr(offset), DomainGuestUser, mmu.APFull)
	k.chargePTEdit(c, pd, va)
	pd.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	return StatusOK
}

func (k *Kernel) hcUnmapPage(c *CoreCtx, pd *PD, va uint32) uint32 {
	if va >= KernelCodeVA-0x1000_0000 {
		return StatusInval
	}
	pd.Table.UnmapPage(va)
	k.chargePTEdit(c, pd, va)
	pd.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	return StatusOK
}

// chargePTEdit charges the descriptor traffic of a page-table update on
// the core performing it — the cost the paper attributes to the
// virtualized manager ("switching to the kernel space to update the
// target VM's page table").
func (k *Kernel) chargePTEdit(c *CoreCtx, pd *PD, va uint32) {
	for range pd.Table.DescriptorAddrs(va) {
		c.kctx.Touch(0xF020_0000+(va>>12&0x3FF)*4, true)
	}
}

// hcRegionCreate registers [va, va+size) as the caller's hardware-task
// data section (§IV-B: "each guest OS can define its own hardware task
// data section within its own memory space"). The section becomes a
// memory-region kernel object in the caller's space (SelDataSect); the
// manager's DMA-window load resolves it there, and re-registration
// revokes the previous object so stale delegations die with it.
func (k *Kernel) hcRegionCreate(pd *PD, va, size uint32) uint32 {
	if va&0xFFF != 0 || size == 0 || size&0xFFF != 0 || size > pd.RAMSize {
		return StatusInval
	}
	pa, err := translateGuestVA(pd, va)
	if err != nil {
		return StatusInval
	}
	// The section must be fully mapped and physically contiguous (it is a
	// DMA window the hwMMU describes with one base+size pair): verify every
	// page translates linearly.
	for off := uint32(0x1000); off < size; off += 0x1000 {
		p, err := translateGuestVA(pd, va+off)
		if err != nil || p != pa+physmem.Addr(off) {
			return StatusInval
		}
	}
	if pd.Space.RightsAt(SelDataSect) != 0 {
		pd.Space.RevokeObject(SelDataSect)
	}
	region := capspace.NewObject(capspace.ObjMemRegion, "datasect/"+pd.Name_,
		regionWindow{Base: pa, Size: size})
	pd.Space.Insert(SelDataSect, region, capspace.RightsAll)
	pd.DataSectionVA, pd.DataSectionPA, pd.DataSectionSize = va, pa, size
	return StatusOK
}

// hcHwTaskRequest queues a request for the Hardware Task Manager,
// signals the request-queue object, and blocks the caller until the
// manager posts the reply — "the Hardware Task Manager service is
// created with a higher priority level than general guests, so that this
// service can preempt guests and execute immediately once it is invoked"
// (§IV-E).
func (k *Kernel) hcHwTaskRequest(c *CoreCtx, pd *PD, kind HwRequestKind, args [4]uint32) uint32 {
	if k.hwSvc == nil || k.Fabric == nil {
		return StatusErr
	}
	if kind == HwReqAcquire {
		if _, err := pd.Space.Lookup(SelDataSect, capspace.ObjMemRegion, capspace.RightCall); err != capspace.OK {
			return StatusInval // must register a data section first
		}
		// QoS admission (qos.go): a throttled or circuit-broken client is
		// bounced here, at the portal, before its request can cost the
		// manager service (or the PCAP) anything.
		if st := k.admitHwRequest(c, pd); st != StatusOK {
			return st
		}
	}
	t0 := c.Clock.Now()
	if len(k.Cores) == 1 || pd.Core == k.hwSvc.Core {
		// Same-core request: the queue lives on the manager's core, so the
		// caller may mutate it directly.
		k.nextReqID++
		req := &HwRequest{
			ID:      k.nextReqID,
			Kind:    kind,
			PD:      pd,
			TaskID:  uint16(args[0]),
			IfaceVA: args[1],
			DataVA:  args[2],
		}
		k.hwQueue = append(k.hwQueue, req)
		k.hwByID[req.ID] = req
		c.kctx.Touch(KernelDataVA+0x9000+(req.ID%64)*16, true) // queue slot
		if k.Tracer != nil {
			k.Tracer.Core(c.ID).Emit(c.Clock.Now(), trace.KindHwReqSubmit,
				uint64(req.ID), uint64(req.TaskID), uint64(pd.ID))
		}

		// Arm the Table III "HW Manager entry" probe: from this hypercall
		// (exception entry) to the manager fetching the request. When several
		// requests queue (only possible if the service is not strictly above
		// guest priority), the oldest one defines the entry latency.
		if !k.mgrEntryArmed {
			k.mgrEntryFrom = c.Clock.Now() - cpu.CostExceptionEntry
			k.mgrEntryArmed = true
		}

		k.wake(k.hwSvc)
		pd.Env.block() // resumes when the manager calls HcMgrComplete
		delete(k.hwByID, req.ID)
		k.traceHwReq(c, t0, req)
		return req.reply
	}

	// Cross-core request: the queue and its probes belong to the manager's
	// core. Charge the doorbell write and enqueue at the barrier, where the
	// committer orders concurrent callers by (cycle, core, seq) — the
	// request ID itself is drawn inside the commit so IDs are issued in
	// deterministic order. The entry probe stamps the commit on the
	// manager core's clock: on separate clock domains it measures the
	// manager-side dispatch (signal to fetch) — the quantity the dedicated
	// core shrinks — not the epoch-barrier doorbell lag, which is the
	// engine's conservative lookahead rather than a kernel cost.
	req := &HwRequest{
		Kind:    kind,
		PD:      pd,
		TaskID:  uint16(args[0]),
		IfaceVA: args[1],
		DataVA:  args[2],
	}
	c.Clock.Advance(CostDeviceAccess)
	k.post(c, func() {
		k.nextReqID++
		req.ID = k.nextReqID
		k.hwQueue = append(k.hwQueue, req)
		k.hwByID[req.ID] = req
		if k.Tracer != nil {
			// The ID is drawn here, inside the barrier commit; emit the
			// submit on the manager core's ring (commits own every ring).
			k.Tracer.Core(k.hwSvc.Core.ID).Emit(k.hwSvc.Core.Clock.Now(),
				trace.KindHwReqSubmit, uint64(req.ID), uint64(req.TaskID), uint64(pd.ID))
		}
		if !k.mgrEntryArmed {
			k.mgrEntryFrom = k.hwSvc.Core.Clock.Now()
			k.mgrEntryArmed = true
		}
		k.wake(k.hwSvc)
	})
	pd.Env.block() // resumes when the manager calls HcMgrComplete
	// The manager is done with the descriptor by the time the completion
	// wake reaches us; retire the ID at the next barrier (IDs never reuse).
	k.post(c, func() { delete(k.hwByID, req.ID) })
	k.traceHwReq(c, t0, req)
	return req.reply
}

// hcHwTaskStatus lets a guest poll PCAP completion ("by polling the
// completion signal", §IV-E) or a held task's state. With the pipeline a
// reconfiguration is "in flight" through its whole journey: SD fill,
// request queue, and PCAP download.
func (k *Kernel) hcHwTaskStatus(c *CoreCtx, pd *PD, _ uint32) uint32 {
	c.Clock.Advance(CostDeviceAccess)
	if k.Fabric == nil {
		return StatusErr
	}
	if k.Reconfig == nil {
		return StatusOK
	}
	if len(k.Cores) == 1 || pd.Core == k.reconfigCore() {
		if k.Reconfig.PendingFor(pd) {
			return StatusReconfig
		}
		if pd.reconfigFault {
			// A reconfiguration for this client failed for good (retries
			// exhausted); clear-on-read, so the client unwinds exactly once.
			pd.reconfigFault = false
			return StatusFaulted
		}
		return StatusOK
	}
	// Cross-core poll: the pipeline's state advances on the manager core's
	// clock; sample it at the barrier and resume the poller with the
	// answer. The one-epoch sampling lag is the conservative lookahead the
	// engine grants every cross-core interaction.
	var status uint32 = StatusOK
	k.post(c, func() {
		if k.Reconfig.PendingFor(pd) {
			status = StatusReconfig
		} else if pd.reconfigFault {
			pd.reconfigFault = false
			status = StatusFaulted
		}
		k.wake(pd)
	})
	pd.Env.block()
	return status
}

// --- Portal IPC (call/reply through PD-object capabilities) ----------

// hcPortalCall is the synchronous portal call: resolve the destination
// PD through the caller's capability table, hand the word over, block
// until the callee replies. When the callee is already blocked in
// receive on the same core the handoff takes the fixed-cost fast path
// (CostIPCFastPath) instead of the cross-core wake; either way the
// PhaseIPCCall probe records the full call-to-reply round trip.
func (k *Kernel) hcPortalCall(c *CoreCtx, pd *PD, sel int, word uint32) uint32 {
	obj, cerr := pd.Space.Lookup(sel, capspace.ObjPD, capspace.RightCall)
	if cerr != capspace.OK {
		return capStatus(cerr)
	}
	to := obj.Payload.(*PD)
	if to == pd || to.dead {
		return StatusInval
	}
	t0 := c.Clock.Now()
	pd.ipcWord = word
	if len(k.Cores) == 1 || to.Core == pd.Core {
		to.ipcCallers = append(to.ipcCallers, pd)
		c.kctx.Touch(to.kdata+0x80, true) // callee endpoint state
		if to.recvBlocked {
			to.recvBlocked = false
			if to.Core == pd.Core {
				c.kctx.Exec(CostIPCFastPath)
				c.ipcFastCalls++
			}
			k.wake(to)
		}
	} else {
		// Cross-core call: the callee's endpoint state belongs to its own
		// core; charge the doorbell here and queue the caller at the
		// barrier. The callee may have died in this epoch — fail the call
		// at commit rather than strand the caller on a dead endpoint.
		c.kctx.Touch(to.kdata+0x80, true)
		c.Clock.Advance(CostDeviceAccess)
		k.post(c, func() {
			if to.dead {
				pd.ipcReply = StatusErr
				k.wake(pd)
				return
			}
			to.ipcCallers = append(to.ipcCallers, pd)
			if to.recvBlocked {
				to.recvBlocked = false
				k.wake(to)
			}
		})
	}
	pd.Env.block() // resumes when the callee replies
	d := since(c.Clock.Now(), t0)
	k.Probes.Add(measure.PhaseIPCCall, d)
	if k.Tracer != nil {
		k.Tracer.Core(c.ID).EmitSpan(t0, d, trace.KindIPCCall, 0, uint64(pd.ID), uint64(to.ID))
		k.trIPC.Observe(d)
	}
	return pd.ipcReply
}

// hcPortalRecv receives the next queued caller, returning
// sender<<24 | (word & 0xFFFFFF). mode is a bit set (abi.Recv*):
// RecvBlock waits for a caller (otherwise StatusNoMsg); RecvReply first
// replies args[1] to the previously received caller, waking it — the
// merged reply+wait of a portal server loop. A server must reply to its
// current caller before receiving the next one; receiving again with an
// un-replied caller outstanding is refused (StatusInval) rather than
// silently stranding the blocked caller.
func (k *Kernel) hcPortalRecv(c *CoreCtx, pd *PD, mode, reply uint32) uint32 {
	if mode&abi.RecvReply != 0 {
		caller := pd.replyTo
		if caller == nil {
			return StatusInval
		}
		pd.replyTo = nil
		caller.ipcReply = reply // caller is parked; the wake publishes it
		c.kctx.Touch(caller.kdata+0x80, true)
		k.wakeFrom(c, caller)
	} else if pd.replyTo != nil {
		return StatusInval
	}
	for len(pd.ipcCallers) == 0 {
		if mode&abi.RecvBlock == 0 {
			return StatusNoMsg
		}
		pd.recvBlocked = true
		pd.Env.block()
	}
	caller := pd.ipcCallers[0]
	pd.ipcCallers = pd.ipcCallers[1:]
	pd.replyTo = caller
	c.kctx.Touch(pd.kdata+0x80, false)
	return uint32(caller.ID)<<24 | caller.ipcWord&0xFF_FFFF
}

// failPortalCallers resumes, with StatusErr, every caller blocked on a
// retiring PD's portal: callers still queued and the one whose reply
// will never come. Without this a synchronous caller would hang until
// Shutdown when its callee's guest returns.
func (k *Kernel) failPortalCallers(pd *PD) {
	for _, caller := range pd.ipcCallers {
		caller.ipcReply = StatusErr
		k.wakeFrom(pd.Core, caller)
	}
	pd.ipcCallers = nil
	if caller := pd.replyTo; caller != nil {
		pd.replyTo = nil
		caller.ipcReply = StatusErr
		k.wakeFrom(pd.Core, caller)
	}
}

// hcSD copies one 512-byte block between the simulated SD card and the
// caller's RAM (supervised shared I/O, §V-A).
func (k *Kernel) hcSD(c *CoreCtx, pd *PD, block, ramOffset uint32, write bool) uint32 {
	if ramOffset+512 > pd.RAMSize {
		return StatusInval
	}
	pa := pd.RAMBase + physmem.Addr(ramOffset)
	c.Clock.Advance(simclock.Cycles(512 / 4 * 2)) // DMA-ish block move
	if write {
		data, err := k.Bus.ReadBytes(pa, 512)
		if err != nil {
			return StatusErr
		}
		k.sdMu.Lock()
		k.sd[block] = data
		k.sdMu.Unlock()
		return StatusOK
	}
	k.sdMu.Lock()
	data, ok := k.sd[block]
	k.sdMu.Unlock()
	if !ok {
		data = make([]byte, 512)
	}
	if err := k.Bus.WriteBytes(pa, data); err != nil {
		return StatusErr
	}
	return StatusOK
}

// --- Hardware Task Manager portal bodies (§IV-E, Fig. 7) -------------
//
// The portal wrappers in portals.go have already resolved the caller's
// capabilities to the objects each operation touches (request-queue
// semaphore, hw-task slots, client PDs, the PCAP and the bitstream
// store); these bodies perform the privileged effect.

// mgrNextRequest pops the oldest queued request, blocking (service
// suspends itself) while the queue is empty. Completing the entry probe
// here captures hypercall + wakeup + world switch, the paper's "HW
// Manager entry".
func (k *Kernel) mgrNextRequest(c *CoreCtx, pd *PD) uint32 {
	for len(k.hwQueue) == 0 {
		// On a multi-core machine the manager usually owns its core: the
		// "exit" ends here, when the service removes itself from the run
		// queue — there is no guest to switch to on a dedicated core.
		if len(k.Cores) > 1 && k.mgrExitArmed {
			k.Probes.Add(measure.PhaseMgrExit, since(c.Clock.Now(), k.mgrExitFrom))
			k.mgrExitArmed = false
		}
		pd.Env.block()
	}
	req := k.hwQueue[0]
	k.hwQueue = k.hwQueue[1:]
	c.kctx.Touch(KernelDataVA+0x9000+(req.ID%64)*16, false)
	if k.Tracer != nil {
		k.Tracer.Core(c.ID).Emit(c.Clock.Now(), trace.KindHwReqFetch, uint64(req.ID), uint64(req.TaskID), 0)
	}
	if k.mgrEntryArmed {
		k.Probes.Add(measure.PhaseMgrEntry, since(c.Clock.Now(), k.mgrEntryFrom))
		k.mgrEntryArmed = false
	}
	// Manager execution starts when it receives the request (Table III's
	// "HW Manager execution" row).
	k.mgrExecFrom = c.Clock.Now()
	k.mgrExecArmed = true
	return req.ID
}

// mgrComplete posts the reply, wakes the requester, then immediately
// waits for the next request (merged reply+suspend, §IV-E: "After
// processing the request, the manager service will remove itself from the
// running queue list, resuming the interrupted guest OS with a return
// status"). Returns the next request ID when re-invoked.
func (k *Kernel) mgrComplete(c *CoreCtx, pd *PD, reqID, status uint32) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok {
		return StatusInval
	}
	req.reply = status
	req.replied = true
	if k.Tracer != nil {
		k.Tracer.Core(c.ID).Emit(c.Clock.Now(), trace.KindHwReqComplete, uint64(reqID), uint64(status), 0)
	}
	if k.mgrExecArmed {
		k.Probes.Add(measure.PhaseMgrExec, c.Clock.Now()-k.mgrExecFrom)
		k.mgrExecArmed = false
	}
	target := req.PD
	switch {
	case len(k.Cores) == 1:
		k.wake(target)
		// Arm the "HW Manager exit" probe: from here to the world switch
		// that resumes a guest.
		k.mgrExitFrom = k.Clock.Now()
		k.mgrExitArmed = true
	case target.Core == c:
		k.wake(target)
		k.mgrExitFrom = c.Clock.Now()
		k.mgrExitArmed = true
	default:
		// Cross-core completion: the reply is published by the barrier
		// that wakes the requester. The exit probe stays on the manager's
		// core — it measures the manager leaving the CPU (self-suspend or
		// switch to a guest), not the client's scheduling latency.
		c.Clock.Advance(CostDeviceAccess)
		k.post(c, func() { k.wake(target) })
		k.mgrExitFrom = c.Clock.Now()
		k.mgrExitArmed = true
	}
	return k.mgrNextRequest(c, pd)
}

// MgrRequestView is the read-only view of a request the manager sees (the
// kernel maps the descriptor into the service's space).
type MgrRequestView struct {
	ID       uint32
	Kind     HwRequestKind
	ClientID int
	TaskID   uint16
	IfaceVA  uint32
	DataVA   uint32
}

// MgrRequest exposes a queued request's fields to the manager service.
func (k *Kernel) MgrRequest(reqID uint32) (MgrRequestView, bool) {
	req, ok := k.hwByID[reqID]
	if !ok {
		return MgrRequestView{}, false
	}
	return MgrRequestView{
		ID: req.ID, Kind: req.Kind, ClientID: req.PD.ID,
		TaskID: req.TaskID, IfaceVA: req.IfaceVA, DataVA: req.DataVA,
	}, true
}

// mgrMapIface maps the PRR's register page into the requesting client's
// table at the VA the client asked for — stage (3) of Fig. 7. The page is
// guest-user accessible, so the client programs its task directly; other
// guests have no mapping, which is the exclusivity guarantee of §IV-C.
func (k *Kernel) mgrMapIface(c *CoreCtx, reqID uint32, prr int) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil || prr >= len(k.Fabric.PRRs) {
		return StatusInval
	}
	va := req.IfaceVA
	if va == 0 || va&0xFFF != 0 {
		return StatusInval
	}
	client := req.PD
	// The client is parked in hcHwTaskRequest for the whole acquire, so
	// its table is quiescent and may be edited from the manager's core.
	client.Table.MapPage(va, k.Fabric.GroupBase(prr), DomainGuestUser, mmu.APFull)
	k.chargePTEdit(c, client, va)
	if len(k.Cores) == 1 || client.Core == c {
		client.Core.CPU.TLB.FlushVA(va, client.ASID)
		client.Core.CPU.CP15Write(cpu.CP15TLBIMVA, va)
	} else {
		// The client core's TLB is live on another goroutine: charge the
		// maintenance here, apply the shootdown at the barrier — it lands
		// before the completion wake (same shard, earlier sequence), so the
		// client never runs on the stale entry.
		c.Clock.Advance(cpu.CostCP15Op)
		asid := client.ASID
		k.post(c, func() { client.Core.CPU.InvalidateTLBVA(va, asid) })
	}
	if client.ifaceVA == nil {
		client.ifaceVA = map[int]uint32{}
	}
	client.ifaceVA[prr] = va
	return StatusOK
}

// mgrUnmapIface revokes a client's interface mapping and performs the
// consistency save of §IV-C: the register-group snapshot goes into the
// former owner's data section together with the "inconsistent" state
// flag, then the PL IRQ line is withdrawn from its vGIC. The client is
// a capability-resolved PD handle (the manager holds delegated client
// capabilities, not raw IDs).
func (k *Kernel) mgrUnmapIface(c *CoreCtx, mgr, client *PD, prr int) uint32 {
	if k.Fabric == nil {
		return StatusInval
	}
	va, ok := client.ifaceVA[prr]
	if !ok || va == 0 {
		return StatusInval
	}
	if len(k.Cores) == 1 {
		// Save the register group into the reserved structure at the head of
		// the data section: word0 = state flag (2 = inconsistent), words 1..8
		// the register image.
		if client.DataSectionSize >= 64 {
			regs := k.Fabric.SaveRegGroup(prr)
			base := client.DataSectionPA
			_ = k.Bus.Write32(base, DataSectFlagInconsistent)
			for i, r := range regs {
				_ = k.Bus.Write32(base+physmem.Addr(4+i*4), r)
			}
			c.kctx.Exec(20)
			k.Clock.Advance(9 * 2) // 9 word stores through the write buffer
		}
		client.Table.UnmapPage(va)
		k.chargePTEdit(c, client, va)
		client.Core.CPU.TLB.FlushVA(va, client.ASID)
		delete(client.ifaceVA, prr)
		// Withdraw the interrupt line.
		if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
			irq := gic.PLIRQBase + line
			client.VGIC.Unregister(irq)
			k.plirqOwner[line] = nil
			k.GIC.Disable(irq)
			k.Fabric.ReleaseIRQ(prr)
			k.Clock.Advance(CostDeviceAccess)
		}
		return StatusOK
	}

	// Multi-core reclaim: the victim may be live on another core, so every
	// effect that its core can observe mid-epoch — the register save, the
	// unmap and TLB shootdown, the vGIC withdrawal — lands at the barrier,
	// and the manager parks until the teardown has committed (its next
	// AllocateIRQ must see the released line). Costs are charged up front
	// on the manager's clock.
	c.kctx.Exec(20)
	k.chargePTEdit(c, client, va)
	c.Clock.Advance(9 * 2)
	if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
		c.Clock.Advance(CostDeviceAccess)
	}
	k.post(c, func() {
		// A run may have started against the stale busy snapshot this
		// epoch; abort it — reclaim wins.
		k.Fabric.AbortRun(prr)
		if client.DataSectionSize >= 64 {
			regs := k.Fabric.SaveRegGroup(prr)
			base := client.DataSectionPA
			_ = k.Bus.Write32(base, DataSectFlagInconsistent)
			for i, r := range regs {
				_ = k.Bus.Write32(base+physmem.Addr(4+i*4), r)
			}
		}
		client.Table.UnmapPage(va)
		client.Core.CPU.InvalidateTLBVA(va, client.ASID)
		delete(client.ifaceVA, prr)
		if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
			irq := gic.PLIRQBase + line
			client.VGIC.Unregister(irq)
			k.plirqOwner[line] = nil
			k.GIC.Disable(irq)
			k.Fabric.ReleaseIRQ(prr)
		}
		k.wake(mgr)
	})
	mgr.Env.block()
	return StatusOK
}

// mgrHwMMULoad points PRR prr's DMA window at the client's data section —
// stage (4) of Fig. 7. The window is read from the client's own
// memory-region object (registered by HcRegionCreate), so the manager
// can only target a section the client itself declared.
func (k *Kernel) mgrHwMMULoad(c *CoreCtx, client *PD, prr int) uint32 {
	if k.Fabric == nil {
		return StatusInval
	}
	obj, err := client.Space.Lookup(SelDataSect, capspace.ObjMemRegion, capspace.RightCall)
	if err != capspace.OK {
		return StatusInval // client registered no (live) data section
	}
	w := obj.Payload.(regionWindow)
	k.Fabric.HwMMU.Load(prr, pl.Window{Base: w.Base, Size: w.Size, Valid: true})
	c.Clock.Advance(2 * CostDeviceAccess)
	// Run/completion events of this region now ride the owner's core clock.
	k.Fabric.BindClock(prr, client.Core.Clock)
	// Reset the consistency flag for the new owner.
	_ = k.Bus.Write32(w.Base, DataSectFlagOwned)
	return StatusOK
}

// mgrPCAPStart launches a bitstream download — stage (5) of Fig. 7 —
// through the reconfiguration pipeline. The source is an offset into the
// bitstream store region whose capability the manager holds (§IV-B: the
// store is mapped exclusively into the manager's space): a cached image
// goes straight to the PCAP leg, a cold one is staged from the SD card
// first, and a busy PCAP queues the request by the client's priority
// instead of bouncing it back as Busy. The completion IRQ is routed to
// the requesting client when its transfer actually starts ("always
// connected to the VM which launches the current transfer", §IV-D).
func (k *Kernel) mgrPCAPStart(c *CoreCtx, reqID, srcOff, length uint32, prr int, store regionWindow) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil || k.Reconfig == nil {
		return StatusInval
	}
	// Overflow-safe store-bounds check against the region capability:
	// srcOff+length could wrap uint32.
	if srcOff > store.Size || length > store.Size-srcOff {
		return StatusInval
	}
	pd := req.PD
	// Charge the client's breaker for the launch (weight 1; a failure
	// below adds FaultWeight). The client is parked in hcHwTaskRequest
	// for the whole acquire, so its guard state is quiescent and may be
	// charged from the manager's core.
	if pd.breaker.Charge(c.Clock.Now(), 1) && k.Tracer != nil {
		k.Tracer.Core(c.ID).Emit(c.Clock.Now(), trace.KindBreakerTrip,
			uint64(reqID), uint64(pd.ID), pd.breaker.Trips)
	}
	k.Reconfig.Submit(&reconfig.Request{
		Key:      srcOff,
		SrcOff:   srcOff,
		Len:      length,
		Target:   prr,
		Priority: pd.Priority,
		Owner:    pd,
		Flow:     uint64(reqID),
		OnStart: func(*reconfig.Request) {
			if len(k.Cores) == 1 {
				k.GIC.SetTarget(gic.PCAPIRQ, pd.Core.ID)
				pd.VGIC.Register(gic.PCAPIRQ)
				pd.VGIC.Enable(gic.PCAPIRQ)
				return
			}
			// Multi-core: the completion line stays pinned to the manager's
			// core (transfer events ride its clock; onIRQ forwards the
			// injection cross-core); only the owner's vGIC registration is
			// needed, deferred to the barrier when the owner lives elsewhere.
			mc := k.reconfigCore()
			if pd.Core == mc {
				pd.VGIC.Register(gic.PCAPIRQ)
				pd.VGIC.Enable(gic.PCAPIRQ)
			} else {
				k.post(mc, func() {
					pd.VGIC.Register(gic.PCAPIRQ)
					pd.VGIC.Enable(gic.PCAPIRQ)
				})
			}
		},
		OnDone: func(r *reconfig.Request, ok bool) {
			if ok {
				k.pcapDone = append(k.pcapDone, pcapOwner{pd: pd, flow: r.Flow})
				return
			}
			// The download failed for good (retries exhausted): no
			// completion IRQ ever fires. Latch the fault for the client's
			// next HcHwTaskStatus poll and charge its breaker heavily. The
			// client core's goroutine may be live mid-epoch, so when the
			// client is homed elsewhere the charge lands at the barrier.
			mc := k.reconfigCore()
			fail := func() {
				pd.reconfigFault = true
				now := mc.Clock.Now()
				if pd.breaker.Charge(now, k.qos.FaultWeight) && k.Tracer != nil {
					k.Tracer.Core(mc.ID).Emit(now, trace.KindBreakerTrip,
						r.Flow, uint64(pd.ID), pd.breaker.Trips)
				}
			}
			if len(k.Cores) == 1 || pd.Core == mc {
				fail()
			} else {
				k.post(mc, fail)
			}
		},
	})
	c.Clock.Advance(2 * CostDeviceAccess) // portal bookkeeping
	return StatusOK
}

// mgrAllocIRQ allocates a PL interrupt line for PRR prr and registers it,
// enabled, in the requesting client's vGIC (§IV-D).
func (k *Kernel) mgrAllocIRQ(c *CoreCtx, reqID uint32, prr int) uint32 {
	req, ok := k.hwByID[reqID]
	if !ok || k.Fabric == nil {
		return StatusInval
	}
	target := req.PD
	// install re-points line ownership into the new owner's vGIC. On a
	// multi-core machine it runs at the barrier: SetTarget migrates GIC
	// pending state between core banks and the previous owner may be live
	// on another core, so mid-epoch application would race.
	install := func(irq, line int) {
		k.plirqOwner[line] = target
		k.GIC.SetTarget(irq, target.Core.ID)
		target.VGIC.Register(irq)
		target.VGIC.Enable(irq)
		if target == target.Core.Current {
			k.GIC.Enable(irq)
		}
	}
	if line := k.Fabric.PRRs[prr].IRQLine; line >= 0 {
		// Line already allocated (region reuse): re-point ownership.
		irq := gic.PLIRQBase + line
		if len(k.Cores) == 1 {
			install(irq, line)
		} else {
			irq, line := irq, line
			k.post(c, func() { install(irq, line) })
		}
		return uint32(irq)
	}
	irq, err := k.Fabric.AllocateIRQ(prr)
	if err != nil {
		return StatusErr
	}
	line := irq - gic.PLIRQBase
	if len(k.Cores) == 1 {
		install(irq, line)
		k.GIC.SetPriority(irq, 0x60)
	} else {
		k.GIC.SetPriority(irq, 0x60)
		k.post(c, func() { install(irq, line) })
	}
	c.Clock.Advance(2 * CostDeviceAccess)
	return uint32(irq)
}

// Data-section reserved-structure flags (§IV-C), shared with the guest
// side through the ABI package.
const (
	DataSectFlagOwned        = abi.DataSectFlagOwned
	DataSectFlagInconsistent = abi.DataSectFlagInconsistent
)
