// Package nova implements the Mini-NOVA microkernel — the paper's primary
// contribution: a lightweight paravirtualization microkernel for the ARM
// Cortex-A9 side of a Zynq-7000, with first-class support for dispatching
// dynamically partially reconfigured (DPR) hardware tasks to virtual
// machines.
//
// The kernel runs in each simulated core's SVC mode and owns the
// exception vector tables; guests run de-privileged in USR mode and reach
// the kernel through hypercalls (SWI), undefined-instruction traps and
// aborts, exactly as §III of the paper lays out. The four microkernel
// properties of §III — CPU virtualization (vcpu.go), memory management
// (memory.go), communication (ipc.go, hypercall.go) and scheduling
// (delegated to the pluggable internal/sched subsystem) — plus the
// virtual interrupt layer (vgic.go) are tied together by the Kernel
// object (kernel.go), which owns one CoreCtx (core.go) per simulated
// Cortex-A9 core.
package nova

import "fmt"

// Hypercall numbers. The paper: "A total number of 25 hypercalls are
// provided to paravirtualized operating systems" (§V-B). Calls 0–24 are
// the guest-visible set; the HcMgr* portals above them are capability-
// gated portals only the Hardware Task Manager's protection domain may
// invoke (§III-A: PD "distributes them to different capability portals").
const (
	HcNull          = 0  // no-op; measures bare hypercall latency
	HcPrint         = 1  // supervised console output
	HcVMID          = 2  // returns the caller's VM identifier
	HcYield         = 3  // give up the remainder of the time slice
	HcTimerSet      = 4  // program the virtual timer (periodic, cycles)
	HcTimerCancel   = 5  // stop the virtual timer
	HcIRQEnable     = 6  // enable a line in the caller's vGIC
	HcIRQDisable    = 7  // disable a line in the caller's vGIC
	HcIRQEOI        = 8  // acknowledge completion of an injected vIRQ
	HcCacheFlush    = 9  // clean+invalidate D-caches (guest cache op, §III-A)
	HcTLBFlush      = 10 // flush the caller's ASID from the TLB
	HcMapPage       = 11 // insert a mapping inside the caller's space
	HcUnmapPage     = 12 // remove a mapping inside the caller's space
	HcRegionCreate  = 13 // declare a hardware-task data section
	HcDACRSwitch    = 14 // guest kernel<->guest user transition (Table II)
	HcHwTaskRequest = 15 // request a hardware task (§IV-E, three arguments)
	HcHwTaskRelease = 16 // release a held hardware task
	HcHwTaskStatus  = 17 // poll task/PCAP completion state
	HcIPCSend       = 18 // inter-VM message send
	HcIPCRecv       = 19 // inter-VM message receive
	HcUARTWrite     = 20 // supervised UART access (§V-A shared I/O)
	HcUARTRead      = 21
	HcSDRead        = 22 // supervised SD block read
	HcSDWrite       = 23
	HcSuspend       = 24 // remove self from the run queue (services)

	// NumHypercalls is the guest-visible hypercall count (paper §V-B: 25).
	NumHypercalls = 25

	// Capability portals for the Hardware Task Manager service.
	HcMgrNextRequest = 25 // fetch the next queued hardware-task request
	HcMgrMapIface    = 26 // map a PRR register page into a client VM
	HcMgrUnmapIface  = 27 // unmap it from the previous client
	HcMgrHwMMULoad   = 28 // load a client's data-section window
	HcMgrPCAPStart   = 29 // launch a PCAP reconfiguration
	HcMgrComplete    = 30 // post the reply for a finished request
	HcMgrAllocIRQ    = 31 // allocate a PL IRQ line and register it in the client's vGIC
)

// Hypercall status codes returned in R0 (§IV-E: success / reconfig / busy).
const (
	StatusOK       = 0
	StatusReconfig = 1 // request accepted, PCAP transfer in flight
	StatusBusy     = 2 // no idle PRR can host the task right now
	StatusErr      = ^uint32(0)
	StatusNoMsg    = 3 // IPC: nothing queued
	StatusInval    = 4 // bad arguments
	StatusDenied   = 5 // capability/permission failure
)

// Priority levels (paper Fig. 3: idle=0, guest OSes=1, user services such
// as the bootloader and the Hardware Task Manager=2).
const (
	PrioIdle    = 0
	PrioGuest   = 1
	PrioService = 2
	// NumPriorities bounds the scheduler's priority array.
	NumPriorities = 4
)

// DefaultQuantum is the guest time slice: "Mini-NOVA provides each guest
// OS with a time slice of 33 ms" (§V-B).
const DefaultQuantumMs = 33

// SGIReschedule is the software-generated interrupt a core raises on a
// peer's GIC interface to demand a reschedule there (cross-core wake of a
// higher-priority PD — the kernel's only IPI).
const SGIReschedule = 1

// Domains used in every VM's page table (per-space numbering; the kernel
// domain is shared/global).
const (
	DomainGuestUser   = 1
	DomainGuestKernel = 2
	DomainKernel      = 15
)

// KernelError wraps kernel-level failures with the offending PD.
type KernelError struct {
	PD  string
	Op  string
	Err error
}

func (e *KernelError) Error() string {
	return fmt.Sprintf("nova: pd %s: %s: %v", e.PD, e.Op, e.Err)
}

func (e *KernelError) Unwrap() error { return e.Err }
