// Package nova implements the Mini-NOVA microkernel — the paper's primary
// contribution: a lightweight paravirtualization microkernel for the ARM
// Cortex-A9 side of a Zynq-7000, with first-class support for dispatching
// dynamically partially reconfigured (DPR) hardware tasks to virtual
// machines.
//
// The kernel runs in each simulated core's SVC mode and owns the
// exception vector tables; guests run de-privileged in USR mode and reach
// the kernel through hypercalls (SWI), undefined-instruction traps and
// aborts, exactly as §III of the paper lays out. The four microkernel
// properties of §III — CPU virtualization (vcpu.go), memory management
// (memory.go), communication (portal IPC in hypercall.go) and scheduling
// (delegated to the pluggable internal/sched subsystem) — plus the
// virtual interrupt layer (vgic.go) are tied together by the Kernel
// object (kernel.go), which owns one CoreCtx (core.go) per simulated
// Cortex-A9 core.
//
// Since the capability-space refactor every request path runs on
// internal/capspace: kernel objects are typed (PD, portal, semaphore,
// memory region, hardware-task slot), each PD holds a capability table,
// and a hypercall number is a selector the dispatcher resolves through
// the caller's table before invoking the object's portal handler
// (portals.go). The numbers themselves live in internal/abi — the single
// source of truth shared with the guest-side stubs — and are aliased
// here so kernel code and its tests keep their historical spelling.
package nova

import (
	"fmt"

	"repro/internal/abi"
)

// Hypercall selectors (see internal/abi for the authoritative layout and
// documentation). The paper: "A total number of 25 hypercalls are
// provided to paravirtualized operating systems" (§V-B). Calls 0–24 are
// the guest-visible set; the HcMgr* portal capabilities above them exist
// only in the Hardware Task Manager's protection domain (§III-A: a PD
// "distributes them to different capability portals").
const (
	HcNull          = abi.HcNull
	HcPrint         = abi.HcPrint
	HcVMID          = abi.HcVMID
	HcYield         = abi.HcYield
	HcTimerSet      = abi.HcTimerSet
	HcTimerCancel   = abi.HcTimerCancel
	HcIRQEnable     = abi.HcIRQEnable
	HcIRQDisable    = abi.HcIRQDisable
	HcIRQEOI        = abi.HcIRQEOI
	HcCacheFlush    = abi.HcCacheFlush
	HcTLBFlush      = abi.HcTLBFlush
	HcMapPage       = abi.HcMapPage
	HcUnmapPage     = abi.HcUnmapPage
	HcRegionCreate  = abi.HcRegionCreate
	HcDACRSwitch    = abi.HcDACRSwitch
	HcHwTaskRequest = abi.HcHwTaskRequest
	HcHwTaskRelease = abi.HcHwTaskRelease
	HcHwTaskStatus  = abi.HcHwTaskStatus
	HcPortalCall    = abi.HcPortalCall
	HcPortalRecv    = abi.HcPortalRecv
	HcUARTWrite     = abi.HcUARTWrite
	HcUARTRead      = abi.HcUARTRead
	HcSDRead        = abi.HcSDRead
	HcSDWrite       = abi.HcSDWrite
	HcSuspend       = abi.HcSuspend

	// NumHypercalls is the guest-visible hypercall count (paper §V-B: 25).
	NumHypercalls = abi.NumHypercalls

	// Capability portals for the Hardware Task Manager service.
	HcMgrNextRequest = abi.HcMgrNextRequest
	HcMgrMapIface    = abi.HcMgrMapIface
	HcMgrUnmapIface  = abi.HcMgrUnmapIface
	HcMgrHwMMULoad   = abi.HcMgrHwMMULoad
	HcMgrPCAPStart   = abi.HcMgrPCAPStart
	HcMgrComplete    = abi.HcMgrComplete
	HcMgrAllocIRQ    = abi.HcMgrAllocIRQ
)

// Hypercall status codes returned in R0 (documented in internal/abi;
// every failure mode has a distinct code).
const (
	StatusOK        = abi.StatusOK
	StatusReconfig  = abi.StatusReconfig
	StatusBusy      = abi.StatusBusy
	StatusNoMsg     = abi.StatusNoMsg
	StatusInval     = abi.StatusInval  // bad arguments to a valid portal
	StatusDenied    = abi.StatusDenied // capability held, rights missing
	StatusBadSel    = abi.StatusBadSel // selector resolves no capability
	StatusRevoked   = abi.StatusRevoked
	StatusBadType   = abi.StatusBadType
	StatusThrottled = abi.StatusThrottled // QoS token bucket empty
	StatusFaulted   = abi.StatusFaulted   // reconfiguration failed / PRRs quarantined
	StatusRetry     = abi.StatusRetry     // circuit breaker open, back off
	StatusErr       = abi.StatusErr
)

// Priority levels (paper Fig. 3: idle=0, guest OSes=1, user services such
// as the bootloader and the Hardware Task Manager=2).
const (
	PrioIdle    = 0
	PrioGuest   = 1
	PrioService = 2
	// NumPriorities bounds the scheduler's priority array.
	NumPriorities = 4
)

// DefaultQuantum is the guest time slice: "Mini-NOVA provides each guest
// OS with a time slice of 33 ms" (§V-B).
const DefaultQuantumMs = 33

// SGIReschedule is the software-generated interrupt a core raises on a
// peer's GIC interface to demand a reschedule there (cross-core wake of a
// higher-priority PD — the kernel's only IPI).
const SGIReschedule = 1

// Domains used in every VM's page table (per-space numbering; the kernel
// domain is shared/global).
const (
	DomainGuestUser   = 1
	DomainGuestKernel = 2
	DomainKernel      = 15
)

// KernelError wraps kernel-level failures with the offending PD.
type KernelError struct {
	PD  string
	Op  string
	Err error
}

func (e *KernelError) Error() string {
	return fmt.Sprintf("nova: pd %s: %s: %v", e.PD, e.Op, e.Err)
}

func (e *KernelError) Unwrap() error { return e.Err }
