package nova

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/simclock"
	"repro/internal/timer"
)

// CostDeviceAccess is the cycle cost of one strongly-ordered device
// register access (GIC, devcfg, PRR controller) — uncached, so constant.
const CostDeviceAccess = 20

// yieldReason says why a PD handed the CPU back to the kernel loop.
type yieldReason int

const (
	yieldPreempt yieldReason = iota // quantum expiry or higher-prio wakeup
	yieldBlocked                    // blocked in a hypercall
	yieldExited                     // guest Main returned
)

type resumeCmd struct{ kill bool }

// killSentinel unwinds a guest goroutine during Kernel.Shutdown. The
// IsKillSentinel marker lets nested coroutine layers (e.g. a ucos task
// goroutine blocked inside a hypercall) recognize and absorb the unwind
// without importing this package.
type killSentinelType struct{}

// IsKillSentinel marks the value as a cooperative-shutdown panic.
func (killSentinelType) IsKillSentinel() {}

var killSentinel = killSentinelType{}

// Kernel is the Mini-NOVA microkernel instance: the abstraction layer
// between the simulated Zynq PS/PL hardware and the protection domains it
// hosts (paper Fig. 1).
type Kernel struct {
	Clock     *simclock.Clock
	Bus       *physmem.Bus
	CPU       *cpu.CPU
	GIC       *gic.GIC
	PrivTimer *timer.PrivateTimer
	Fabric    *pl.Fabric // nil until AttachFabric
	Alloc     *mmu.FrameAllocator
	Sched     *Scheduler
	Probes    *measure.Set

	PDs     []*PD
	Current *PD

	kernelPT *mmu.PageTable
	kctx     *cpu.ExecContext

	needResched    bool
	quantumExpired bool
	running        bool

	yieldCh chan yieldReason
	// dying is closed by Shutdown; every coroutine handoff selects on it
	// so parked guest (and nested guest-task) goroutines unwind promptly.
	dying    chan struct{}
	shutdown bool

	// Hardware-task request plumbing (§IV-E).
	hwQueue   []*HwRequest
	hwByID    map[uint32]*HwRequest
	nextReqID uint32
	hwSvc     *PD

	// PL interrupt routing (§IV-D).
	plirqOwner [gic.NumPLIRQs]*PD
	pcapOwner  *PD

	// Measurement stamps for the Table III phases.
	mgrEntryFrom  simclock.Cycles
	mgrEntryArmed bool
	mgrExitFrom   simclock.Cycles
	mgrExitArmed  bool
	mgrExecFrom   simclock.Cycles
	mgrExecArmed  bool

	// Console accumulates supervised UART output.
	Console strings.Builder

	// sd is the simulated SD card (block number -> 512-byte block).
	sd map[uint32][]byte

	// vfpOwnerPD is the PD whose VFP context is live in hardware (lazy
	// switch state, Table I).
	vfpOwnerPD *PD

	// EagerVFP disables the lazy-switch policy of Table I: the full VFP
	// context is saved and restored on every world switch (ablation).
	EagerVFP bool

	// FlushTLBOnSwitch disables ASID tagging: the whole TLB is flushed on
	// every world switch, as a kernel without CONTEXTIDR management would
	// have to (ablation for the §III-C design choice).
	FlushTLBOnSwitch bool

	asidNext uint8
}

// NewKernel boots a Mini-NOVA kernel on a fresh machine: clock, bus, GIC,
// CPU, private timer, kernel page table, and the exception vector table.
func NewKernel() *Kernel {
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	c := cpu.New(clock, bus, g)
	k := &Kernel{
		Clock:     clock,
		Bus:       bus,
		CPU:       c,
		GIC:       g,
		PrivTimer: timer.New(clock, g),
		Alloc:     mmu.NewFrameAllocator(physTables, 8<<20),
		Sched:     NewScheduler(simclock.FromMillis(DefaultQuantumMs)),
		Probes:    measure.NewSet(),
		hwByID:    make(map[uint32]*HwRequest),
		yieldCh:   make(chan yieldReason),
		dying:     make(chan struct{}),
		sd:        make(map[uint32][]byte),
		asidNext:  1,
	}
	// Kernel address space: global mappings only; ASID 0.
	k.kernelPT = mmu.NewPageTable(bus, k.Alloc)
	mapKernelInto(k.kernelPT)
	c.Mode = cpu.ModeSVC
	c.CP15Write(cpu.CP15TTBR0, uint32(k.kernelPT.Base))
	c.CP15Write(cpu.CP15CONTEXTIDR, 0)
	c.CP15Write(cpu.CP15DACR, dacrFor(true))
	c.CP15Write(cpu.CP15SCTLR, 1)

	k.kctx = cpu.NewExecContext(c, "mininova", KernelCodeVA, KernelCodeSize)

	// Vector table.
	c.Vectors.SWI = k.onSWI
	c.Vectors.IRQ = k.onIRQ
	c.Vectors.Undef = k.onUndef
	c.Vectors.DataAbort = k.onAbort
	c.Vectors.PrefetchAbort = k.onAbort

	// Kernel-owned interrupts.
	g.Enable(gic.PrivateTimerIRQ)
	g.SetPriority(gic.PrivateTimerIRQ, 0x10)
	g.Enable(gic.PCAPIRQ)
	g.SetPriority(gic.PCAPIRQ, 0x30)
	return k
}

// AttachFabric connects the programmable-logic model (built by the caller
// so its PRR capacities are scenario-specific).
func (k *Kernel) AttachFabric(f *pl.Fabric) { k.Fabric = f }

// PDConfig parameterizes CreatePD.
type PDConfig struct {
	Name     string
	Priority int
	Caps     Capability
	Guest    Guest
	// CodeBase/CodeSize locate the guest's text inside its address space
	// (defaults: GuestKernelBase, 64 KB).
	CodeBase uint32
	CodeSize uint32
	// StartSuspended creates the PD in the suspend queue (user services,
	// paper §III-D: "some user service applications of Mini-NOVA are in
	// the suspend queue because they are only invoked when necessary").
	StartSuspended bool
}

// CreatePD builds a protection domain: address space, vCPU, vGIC, and the
// guest's execution context, then places it in the run or suspend queue.
func (k *Kernel) CreatePD(cfg PDConfig) *PD {
	if cfg.CodeBase == 0 {
		cfg.CodeBase = GuestKernelBase
	}
	if cfg.CodeSize == 0 {
		cfg.CodeSize = 64 << 10
	}
	id := len(k.PDs)
	space := k.buildGuestSpace(id)
	pd := &PD{
		ID:       id,
		Name_:    cfg.Name,
		Priority: cfg.Priority,
		Caps:     cfg.Caps,
		VGIC:     NewVGIC(),
		Table:    space.Table,
		ASID:     k.asidNext,
		RAMBase:  space.RAMBase,
		RAMSize:  space.RAMSize,
		Guest:    cfg.Guest,
		kdata:    KernelDataVA + uint32(id)*0x400,
	}
	k.asidNext++
	pd.VCPU.TTBR = uint32(pd.Table.Base)
	pd.VCPU.ASID = pd.ASID
	pd.VCPU.DACR = dacrFor(true) // guests boot in guest-kernel context
	pd.VCPU.QuantumLeft = k.Sched.Quantum()

	ctx := cpu.NewExecContext(k.CPU, cfg.Name, cfg.CodeBase, cfg.CodeSize)
	pd.Env = &Env{K: k, PD: pd, Ctx: ctx}

	pd.resumeCh = make(chan resumeCmd)
	pd.doneCh = make(chan struct{})
	go k.guestWrapper(pd)

	k.PDs = append(k.PDs, pd)
	if !cfg.StartSuspended {
		k.Sched.Enqueue(pd)
	}
	return pd
}

// RegisterHwService names the PD running the Hardware Task Manager; the
// HcHwTaskRequest path wakes it (§IV-E).
func (k *Kernel) RegisterHwService(pd *PD) {
	if pd.Caps&CapHwManager == 0 {
		panic("nova: hardware service PD lacks CapHwManager")
	}
	k.hwSvc = pd
}

func (k *Kernel) guestWrapper(pd *PD) {
	defer close(pd.doneCh)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(interface{ IsKillSentinel() }); ok {
				return
			}
			panic(r)
		}
	}()
	select {
	case cmd := <-pd.resumeCh:
		if cmd.kill {
			return
		}
	case <-k.dying:
		return
	}
	pd.Guest.RunSlice(pd.Env)
	// Guest finished: retire the PD.
	pd.dead = true
	k.Sched.Dequeue(pd)
	for {
		select {
		case k.yieldCh <- yieldExited:
		case <-k.dying:
			return
		}
		select {
		case cmd := <-pd.resumeCh:
			if cmd.kill {
				return
			}
		case <-k.dying:
			return
		}
	}
}

// Dying exposes the shutdown signal so nested coroutine layers inside
// guests (e.g. ucos task goroutines) can unwind with the kernel.
func (k *Kernel) Dying() <-chan struct{} { return k.dying }

// yield hands the CPU from the active PD's goroutine back to the kernel
// loop, preserving the architectural mode across the switch-out.
func (e *Env) yield(r yieldReason) {
	k := e.K
	savedMode, savedMask := k.CPU.Mode, k.CPU.IRQMasked
	select {
	case k.yieldCh <- r:
	case <-k.dying:
		panic(killSentinel)
	}
	select {
	case cmd := <-e.PD.resumeCh:
		if cmd.kill {
			panic(killSentinel)
		}
	case <-k.dying:
		panic(killSentinel)
	}
	k.CPU.Mode, k.CPU.IRQMasked = savedMode, savedMask
}

// CheckPreempt is the guest's chunk-boundary poll: deliver pending vIRQs,
// then give up the CPU if the kernel asked for it.
func (e *Env) CheckPreempt() {
	e.PendingVIRQ()
	if e.K.needResched {
		e.yield(yieldPreempt)
		e.PendingVIRQ()
	}
}

// Block suspends the calling PD until another event re-enqueues it. Used
// by kernel handlers running in the caller's goroutine.
func (e *Env) block() {
	e.K.Sched.Dequeue(e.PD)
	e.K.needResched = true
	e.yield(yieldBlocked)
}

// activate hands the CPU to pd and waits for it to yield.
func (k *Kernel) activate(pd *PD) yieldReason {
	pd.resumeCh <- resumeCmd{}
	r := <-k.yieldCh
	// Kernel loop regains the CPU in SVC, IRQs masked.
	k.CPU.Mode, k.CPU.IRQMasked = cpu.ModeSVC, true
	return r
}

// Run executes the system until the given absolute simulated time.
func (k *Kernel) Run(until simclock.Cycles) {
	k.running = true
	defer func() { k.running = false }()
	for k.Clock.Now() < until {
		pd := k.Sched.Pick()
		if pd == nil {
			k.idleUntil(until)
			continue
		}
		if pd.dead {
			k.Sched.Dequeue(pd)
			continue
		}
		k.worldSwitch(pd)
		k.needResched = false
		k.quantumExpired = false
		if pd.VCPU.QuantumLeft == 0 {
			pd.VCPU.QuantumLeft = k.Sched.Quantum()
		}
		k.PrivTimer.Start(pd.VCPU.QuantumLeft, true)
		// Bound the activation by the caller's horizon so Run(until)
		// returns on time even mid-quantum.
		stop := k.Clock.At(until, func(simclock.Cycles) { k.needResched = true })

		start := k.Clock.Now()
		k.CPU.Mode, k.CPU.IRQMasked = cpu.ModeUSR, false
		k.activate(pd)
		elapsed := k.Clock.Now() - start
		k.PrivTimer.Stop()
		k.Clock.Cancel(stop)

		if k.quantumExpired || elapsed >= pd.VCPU.QuantumLeft {
			// Slice fully consumed: fresh quantum next time, go to the back
			// of the priority circle (round-robin, §III-D).
			pd.VCPU.QuantumLeft = 0
			if k.Sched.InRunQueue(pd) {
				k.Sched.Rotate(pd.Priority)
			}
		} else {
			// Preempted early: carry the remaining quantum (§III-D).
			pd.VCPU.QuantumLeft -= elapsed
		}
	}
}

// RunFor advances the system by d cycles.
func (k *Kernel) RunFor(d simclock.Cycles) { k.Run(k.Clock.Now() + d) }

// idleUntil advances to the next event (or until) with interrupts open —
// the kernel's WFI loop.
func (k *Kernel) idleUntil(until simclock.Cycles) {
	target := until
	if d, ok := k.Clock.NextDeadline(); ok && d < target {
		target = d
	}
	k.Clock.AdvanceTo(target)
	k.CPU.IRQMasked = false
	k.CPU.PollIRQ()
	k.CPU.IRQMasked = true
}

// Shutdown terminates every guest goroutine (including goroutines nested
// inside guests that observe Dying). The kernel is unusable afterwards;
// tests and benchmarks call it to avoid leaking goroutines.
func (k *Kernel) Shutdown() {
	if k.shutdown {
		return
	}
	k.shutdown = true
	close(k.dying)
	for _, pd := range k.PDs {
		<-pd.doneCh
	}
}

// touchPDState charges the kernel-data traffic of saving or restoring one
// PD's descriptor + vCPU (vcpuActiveWords words). Distinct PDs occupy
// distinct kernel-data lines, so more VMs means a larger switch-path
// working set — one of Table III's two growth mechanisms.
func (k *Kernel) touchPDState(pd *PD, write bool) {
	for i := uint32(0); i < vcpuActiveWords; i++ {
		k.kctx.Touch(pd.kdata+i*4, write)
	}
}

// physicalLine reports whether irq is a per-VM maskable hardware line
// (the PL-to-PS interrupts). Virtual lines (the guest timer PPI) and
// kernel-owned lines (PCAP) are never touched on switches.
func physicalLine(irq int) bool {
	return irq >= gic.PLIRQBase && irq < gic.PLIRQBase+gic.NumPLIRQs
}

// armVirtualTimer schedules the current PD's next virtual tick from its
// preserved remaining time.
func (k *Kernel) armVirtualTimer(pd *PD) {
	if pd.VCPU.TimerPeriod == 0 || pd.timerEvent != nil {
		return
	}
	d := pd.timerRemaining
	if d == 0 {
		d = pd.VCPU.TimerPeriod
	}
	pd.timerEvent = k.Clock.After(d, func(simclock.Cycles) {
		pd.timerEvent = nil
		pd.timerRemaining = 0
		if pd.dead || pd.VCPU.TimerPeriod == 0 {
			return
		}
		pd.VGIC.Inject(gic.PrivateTimerIRQ)
		k.wakeIfIdle(pd)
		if k.Current == pd || pd.idleWaiting {
			k.armVirtualTimer(pd)
		}
	})
}

// parkVirtualTimer suspends the PD's virtual tick, preserving the time
// remaining until the next expiry.
func (k *Kernel) parkVirtualTimer(pd *PD) {
	if pd.timerEvent == nil {
		return
	}
	if pd.timerEvent.When > k.Clock.Now() {
		pd.timerRemaining = pd.timerEvent.When - k.Clock.Now()
	} else {
		pd.timerRemaining = 0
	}
	k.Clock.Cancel(pd.timerEvent)
	pd.timerEvent = nil
}

// worldSwitch performs the full VM switch of §III-A/B/C: save the
// outgoing vCPU, read back and mask its interrupt set, restore the
// incoming vCPU (TTBR/ASID/DACR via CP15 — the address-space switch),
// unmask its enabled interrupts, and arm lazy VFP.
func (k *Kernel) worldSwitch(next *PD) {
	if k.Current == next {
		return
	}
	t0 := k.Clock.Now()
	k.kctx.Exec(48) // scheduler pick + switch trampoline

	prev := k.Current
	if prev != nil {
		prev.VCPU.SaveActive(k.CPU)
		if !prev.idleWaiting {
			// An idle-waiting VM keeps its virtual timer live so its next
			// tick can wake it (guest WFI semantics).
			k.parkVirtualTimer(prev)
		}
		k.touchPDState(prev, true)
		// Mask the outgoing VM's hardware lines. The 16 PL_IRQs share one
		// distributor enable word, so the whole set costs a single
		// GICD_ICENABLER write regardless of how many lines the VM holds.
		masked := false
		for _, irq := range prev.VGIC.AllLines() {
			if physicalLine(irq) {
				k.GIC.Disable(irq)
				masked = true
			}
		}
		if masked {
			k.kctx.Exec(8)
			k.Clock.Advance(CostDeviceAccess)
		}
	}

	k.touchPDState(next, false)
	next.VCPU.RestoreActive(k.CPU) // CP15 writes: TTBR, ASID, DACR
	unmasked := false
	for _, irq := range next.VGIC.EnabledLines() {
		if physicalLine(irq) {
			k.GIC.Enable(irq)
			unmasked = true
		}
	}
	if unmasked {
		k.kctx.Exec(8)
		k.Clock.Advance(CostDeviceAccess)
	}
	if k.EagerVFP {
		// Ablation: unconditional VFP save + restore on every switch.
		k.Clock.Advance(2 * cpu.VFPContextCost())
		k.CPU.VFPEnabled = true
	} else {
		// Lazy switch (Table I): VFP stays with its owner until touched.
		k.CPU.VFPEnabled = false
	}
	if k.FlushTLBOnSwitch {
		k.CPU.CP15Write(cpu.CP15TLBIALL, 0)
	}
	k.kctx.Exec(24) // exception return path

	k.Current = next
	k.armVirtualTimer(next)
	next.Switches++
	now := k.Clock.Now()
	k.Probes.Add(measure.PhaseVMSwitch, now-t0)
	if k.mgrExitArmed && next != k.hwSvc {
		k.Probes.Add(measure.PhaseMgrExit, now-k.mgrExitFrom)
		k.mgrExitArmed = false
	}
}

// onUndef handles undefined-instruction traps: privileged-op emulation and
// the lazy VFP switch of Table I.
func (k *Kernel) onUndef(u cpu.UndefInfo) bool {
	k.kctx.Exec(20)
	switch u.Kind {
	case cpu.UndefVFP:
		return k.lazyVFPSwitch()
	case cpu.UndefCP15:
		// A guest touched a privileged system register directly. Mini-NOVA
		// emulates harmless reads and rejects writes (guests must use
		// hypercalls, §III-A).
		k.kctx.Exec(30)
		return !u.Wr
	default:
		return false
	}
}

func (k *Kernel) lazyVFPSwitch() bool {
	cur := k.Current
	if cur == nil {
		k.CPU.VFPEnabled = true
		return true
	}
	// Save the previous owner's context, restore the current PD's.
	if k.vfpOwnerPD != nil && k.vfpOwnerPD != cur {
		k.Clock.Advance(cpu.VFPContextCost())
		k.vfpOwnerPD.VCPU.VFPValid = true
	}
	if cur.VCPU.VFPValid {
		k.Clock.Advance(cpu.VFPContextCost())
	}
	k.vfpOwnerPD = cur
	k.CPU.VFPEnabled = true
	k.kctx.Exec(25)
	return true
}

// onAbort handles MMU faults. Faults inside a guest's own space are the
// guest's business (delivered as a vIRQ-like upcall is out of scope —
// Mini-NOVA kills the offender per "a permission-denied error will
// occur"); the kernel only logs and refuses.
func (k *Kernel) onAbort(f *mmu.Fault) bool {
	k.kctx.Exec(40)
	if k.Current != nil {
		k.Current.Faults++
	}
	return false
}

// onIRQ is the physical interrupt path of §III-B/§IV-D: acknowledge at
// the GIC, EOI, then route — quantum timer to the scheduler, PCAP to the
// launching VM, PL lines to their owning VM's vGIC.
func (k *Kernel) onIRQ() {
	t0 := k.Clock.Now() - cpu.CostExceptionEntry
	k.kctx.Exec(26) // vector + IRQ-mode entry + GIC interface read
	k.Clock.Advance(2 * CostDeviceAccess)
	id := k.GIC.Acknowledge()
	if id == gic.SpuriousID {
		return
	}
	k.GIC.EOI(id)
	switch {
	case id == gic.PrivateTimerIRQ:
		k.kctx.Exec(14)
		k.quantumExpired = true
		k.needResched = true
	case id == gic.PCAPIRQ:
		k.kctx.Exec(18)
		if k.pcapOwner != nil {
			if k.pcapOwner.VGIC.Inject(id) {
				k.wakeIfIdle(k.pcapOwner)
				k.maybePreemptFor(k.pcapOwner)
			}
		}
	case physicalLine(id):
		k.kctx.Exec(22)
		k.kctx.Touch(KernelDataVA+0x8000+uint32(id)*8, false) // routing table
		if pd := k.plirqOwner[id-gic.PLIRQBase]; pd != nil {
			// Distribution walks the owner VM's vGIC record list (Fig. 2)
			// and updates the virtual IRQ state — per-VM kernel data that
			// gets colder as more VMs rotate through the caches.
			for i := uint32(0); i < 8; i++ {
				k.kctx.Touch(pd.kdata+0x100+i*8, i >= 6)
			}
			k.kctx.Exec(14)
			if pd.VGIC.Inject(id) {
				k.wakeIfIdle(pd)
				k.Probes.Add(measure.PhasePLIRQEntry, k.Clock.Now()-t0)
			}
		}
	default:
		k.kctx.Exec(10)
	}
}

// wakeIfIdle re-enqueues a PD parked in paravirtualized idle when an
// injection arrives for it.
func (k *Kernel) wakeIfIdle(pd *PD) {
	if pd.idleWaiting {
		k.wake(pd)
	}
}

// maybePreemptFor requests a reschedule when pd outranks the running PD.
func (k *Kernel) maybePreemptFor(pd *PD) {
	if k.Current == nil || pd.Priority > k.Current.Priority {
		k.needResched = true
	}
}

// wake moves a PD into the run queue and preempts if it outranks the
// current one.
func (k *Kernel) wake(pd *PD) {
	if pd.dead {
		return
	}
	k.Sched.Enqueue(pd)
	k.maybePreemptFor(pd)
}

// ConsoleString returns everything guests printed so far.
func (k *Kernel) ConsoleString() string { return k.Console.String() }

// SDWriteImage preloads the simulated SD card (tests, examples).
func (k *Kernel) SDWriteImage(block uint32, data []byte) {
	for len(data) > 0 {
		b := make([]byte, 512)
		n := copy(b, data)
		k.sd[block] = b
		data = data[n:]
		block++
	}
}

func (k *Kernel) String() string {
	return fmt.Sprintf("mininova: %d PDs, %s", len(k.PDs), k.Clock.Now())
}
