package nova

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/capspace"
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/reconfig"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/timer"
	"repro/internal/trace"
)

// pcapOwner is one completed PCAP transfer awaiting completion-IRQ
// delivery: the client PD whose reconfiguration finished and the trace
// flow id of the request (0 when untraced).
type pcapOwner struct {
	pd   *PD
	flow uint64
}

// CostDeviceAccess is the cycle cost of one strongly-ordered device
// register access (GIC, devcfg, PRR controller) — uncached, so constant.
const CostDeviceAccess = 20

// yieldReason says why a PD handed the CPU back to the kernel loop.
type yieldReason int

const (
	yieldPreempt yieldReason = iota // quantum expiry or higher-prio wakeup
	yieldBlocked                    // blocked in a hypercall
	yieldExited                     // guest Main returned
)

type resumeCmd struct{ kill bool }

// killSentinel unwinds a guest goroutine during Kernel.Shutdown. The
// IsKillSentinel marker lets nested coroutine layers (e.g. a ucos task
// goroutine blocked inside a hypercall) recognize and absorb the unwind
// without importing this package.
type killSentinelType struct{}

// IsKillSentinel marks the value as a cooperative-shutdown panic.
func (killSentinelType) IsKillSentinel() {}

var killSentinel = killSentinelType{}

// Kernel is the Mini-NOVA microkernel instance: the abstraction layer
// between the simulated Zynq PS/PL hardware and the protection domains it
// hosts (paper Fig. 1). The kernel owns one CoreCtx per simulated
// Cortex-A9 core — the paper's evaluation pins everything on CPU0
// (NewKernel), while NewKernelSMP(2) models the full dual-core part with
// per-core runqueues and SGI-based cross-core reschedule.
type Kernel struct {
	Clock *simclock.Clock
	Bus   *physmem.Bus
	GIC   *gic.GIC

	// Cores are the simulated CPUs; CPU aliases Cores[0].CPU for the
	// single-core call sites and reports.
	Cores []*CoreCtx
	CPU   *cpu.CPU

	Fabric *pl.Fabric // nil until AttachFabric
	// Reconfig is the managed reconfiguration pipeline (bitstream cache,
	// PCAP request queue, prefetcher) built by AttachFabric; all
	// manager-portal reconfigurations flow through it.
	Reconfig *reconfig.Pipeline
	Alloc    *mmu.FrameAllocator

	// Sched is the pluggable scheduling policy (per-CPU runqueues). The
	// kernel depends on the interface only; replace it before creating
	// any PD (its CPU count must match len(Cores)).
	Sched  sched.Policy
	Probes *measure.Set

	// Tracer is the structured-event tracing layer (nil = disabled, the
	// default; EnableTrace switches it on). Emission never touches
	// checksummed state, so traced and untraced runs produce identical
	// scenario digests.
	Tracer *trace.Tracer

	// Cached tracing instruments (valid iff Tracer != nil).
	trHypercall *trace.Histogram
	trIPC       *trace.Histogram
	trSwitch    *trace.Histogram
	trWakes     *trace.Counter
	trInjects   *trace.Counter

	PDs []*PD

	// SMPSlice is retained for API compatibility with the old interleaved
	// multi-core loop; the epoch engine ignores it (the epoch length in
	// Epoch plays the window-bounding role now).
	SMPSlice simclock.Cycles

	// Epoch is the barrier interval of the parallel run loop (see
	// DefaultEpoch); Epochs counts barrier windows executed, for the
	// idle fast-forward diagnostics (not part of any scenario digest).
	Epoch  simclock.Cycles
	Epochs uint64

	kernelPT *mmu.PageTable

	running bool

	// committer collects cross-core effects posted during an epoch and
	// replays them in deterministic (time, core, seq) order at the
	// barrier; inCommit marks that replay so wake paths turn immediate.
	committer *simclock.Committer
	inCommit  bool

	// prrBusySnap is the barrier-refreshed PRR busy snapshot cores poll
	// through PRRBusy during an epoch.
	prrBusySnap []bool

	// dying is closed by Shutdown; every coroutine handoff selects on it
	// so parked guest (and nested guest-task) goroutines unwind promptly.
	dying    chan struct{}
	shutdown bool

	// Capability layer: the global service-portal objects (selector-
	// indexed), the kernel's own root space (device objects are minted
	// here and delegated out), and the device-authority objects the
	// Hardware Task Manager receives at registration.
	portalObjs []*capspace.Object
	rootSpace  *capspace.Space
	hwqObj     *capspace.Object   // request-queue semaphore
	pcapObj    *capspace.Object   // PCAP/reconfiguration authority
	storeObj   *capspace.Object   // bitstream store region
	slotObjs   []*capspace.Object // one hw-task slot per PRR

	// Hardware-task request plumbing (§IV-E).
	hwQueue   []*HwRequest
	hwByID    map[uint32]*HwRequest
	nextReqID uint32
	hwSvc     *PD

	// QoS guard configuration for the manager portal (see qos.go);
	// qosOn gates the admission path so a guard-free kernel pays one
	// boolean test.
	qos   QoSConfig
	qosOn bool

	// PL interrupt routing (§IV-D). pcapDone lists the owners of PCAP
	// transfers that completed since the last interrupt was handled — with
	// the request queue, back-to-back completions for different VMs can
	// share one physical interrupt. Each entry keeps the trace flow id of
	// the reconfiguration request it closes, so the completion IRQ lands
	// in the same causal chain as the hypercall that started it.
	plirqOwner [gic.NumPLIRQs]*PD
	pcapDone   []pcapOwner

	// Measurement stamps for the Table III phases.
	mgrEntryFrom  simclock.Cycles
	mgrEntryArmed bool
	mgrExitFrom   simclock.Cycles
	mgrExitArmed  bool
	mgrExecFrom   simclock.Cycles
	mgrExecArmed  bool

	// Console accumulates supervised UART output.
	Console strings.Builder

	// sd is the simulated SD card (block number -> 512-byte block).
	// sdMu guards the map header only — cores on concurrent goroutines
	// read and replace whole blocks; block contents are immutable once
	// stored.
	sd   map[uint32][]byte
	sdMu sync.Mutex

	// EagerVFP disables the lazy-switch policy of Table I: the full VFP
	// context is saved and restored on every world switch (ablation).
	EagerVFP bool

	// FlushTLBOnSwitch disables ASID tagging: the whole TLB is flushed on
	// every world switch, as a kernel without CONTEXTIDR management would
	// have to (ablation for the §III-C design choice).
	FlushTLBOnSwitch bool

	asidNext uint8

	// Clone arena management (clone.go): bump cursor over the clone
	// region of DDR plus a LIFO free list of recycled arenas, so a reaped
	// clone's tables-and-copies arena is handed to the next fork.
	cloneArenaNext physmem.Addr
	cloneArenaFree []physmem.Addr
}

// NewKernel boots a Mini-NOVA kernel on a fresh single-core machine — the
// paper's CPU0-only configuration.
func NewKernel() *Kernel { return NewKernelSMP(1) }

// NewKernelSMP boots a Mini-NOVA kernel on a machine with ncores
// simulated Cortex-A9 cores: shared bus, per-core clock cursors, L1
// caches, TLBs, private timers and GIC CPU interfaces — the dual-core
// Zynq-7000 at ncores == 2. Clock aliases core 0's clock; on a
// single-core machine it is the only one. A multi-core machine carries
// way-partitioned L2 slices so concurrent core goroutines never share
// mutable cache state.
func NewKernelSMP(ncores int) *Kernel {
	if ncores < 1 {
		panic("nova: need at least one core")
	}
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.NewMP(ncores)
	k := &Kernel{
		Clock:     clock,
		Bus:       bus,
		GIC:       g,
		Alloc:     mmu.NewFrameAllocator(physTables, 8<<20),
		Sched:     sched.NewPrioRR(ncores, simclock.FromMillis(DefaultQuantumMs)),
		Probes:    measure.NewSet(),
		SMPSlice:  simclock.FromMillis(1),
		Epoch:     DefaultEpoch,
		committer: simclock.NewCommitter(ncores),
		hwByID:    make(map[uint32]*HwRequest),
		dying:     make(chan struct{}),
		sd:        make(map[uint32][]byte),
		asidNext:  1,
	}
	// Kernel address space: global mappings only; ASID 0. One table,
	// shared by every core (§III-C: kernel mappings are global).
	k.kernelPT = mmu.NewPageTable(bus, k.Alloc)
	mapKernelInto(k.kernelPT)

	// Capability layer: mint the service portals and the kernel's own
	// device objects into the root space. PRR slot objects follow in
	// AttachFabric (their count is fabric-specific); everything is
	// delegated to the manager's domain by RegisterHwService.
	k.buildPortalObjects()
	k.rootSpace = capspace.NewSpace(rootSelSlotBase)
	k.hwqObj = capspace.NewObject(capspace.ObjSem, "hwq", nil)
	k.pcapObj = capspace.NewObject(capspace.ObjPortal, "pcap", nil)
	k.storeObj = capspace.NewObject(capspace.ObjMemRegion, "bitstore",
		regionWindow{Base: BitstreamStorePA(), Size: 22 << 20})
	k.rootSpace.Insert(rootSelQueue, k.hwqObj, capspace.RightsAll)
	k.rootSpace.Insert(rootSelPCAP, k.pcapObj, capspace.RightsAll)
	k.rootSpace.Insert(rootSelStore, k.storeObj, capspace.RightsAll)

	hier := cache.NewA9SharedL2(1)
	if ncores > 1 {
		hier = cache.NewA9WayPartitionedL2(ncores)
	}
	for i := 0; i < ncores; i++ {
		cclk := clock
		if i > 0 {
			cclk = simclock.New()
		}
		c := &CoreCtx{
			ID:      i,
			Clock:   cclk,
			CPU:     cpu.NewCore(cclk, bus, g, i, hier[i]),
			Timer:   timer.NewFor(cclk, g, i),
			yieldCh: make(chan yieldReason),
		}
		c.CPU.Mode = cpu.ModeSVC
		c.CPU.CP15Write(cpu.CP15TTBR0, uint32(k.kernelPT.Base))
		c.CPU.CP15Write(cpu.CP15CONTEXTIDR, 0)
		c.CPU.CP15Write(cpu.CP15DACR, dacrFor(true))
		c.CPU.CP15Write(cpu.CP15SCTLR, 1)
		c.kctx = cpu.NewExecContext(c.CPU, fmt.Sprintf("mininova/cpu%d", i), KernelCodeVA, KernelCodeSize)

		// Vector table (banked per core; handlers close over the core).
		c.CPU.Vectors.SWI = func(num int, args [4]uint32) uint32 { return k.onSWI(c, num, args) }
		c.CPU.Vectors.IRQ = func() { k.onIRQ(c) }
		c.CPU.Vectors.Undef = func(u cpu.UndefInfo) bool { return k.onUndef(c, u) }
		c.CPU.Vectors.DataAbort = func(f *mmu.Fault) bool { return k.onAbort(c, f) }
		c.CPU.Vectors.PrefetchAbort = func(f *mmu.Fault) bool { return k.onAbort(c, f) }
		k.Cores = append(k.Cores, c)
	}
	k.CPU = k.Cores[0].CPU

	if ncores > 1 {
		// SMP bring-up: each secondary core executes the kernel's init path
		// before guests start, leaving the kernel text resident in its cache
		// hierarchy — otherwise a mostly-idle service core pays a cold DDR
		// fetch for every line of its rarely-run IRQ/wake path for the whole
		// first lap of the fetch cursor. Warmed at time zero, before the
		// workload, so no clock is charged. The single-core machine keeps
		// the seed's cold-boot layout.
		for _, c := range k.Cores {
			for off := uint32(0); off < KernelCodeSize; off += cache.LineSize {
				c.CPU.Caches.FetchCost(physKernelCode + physmem.Addr(off))
			}
		}
	}

	// Kernel-owned interrupts. Banked ids enable on every core's
	// interface (each core's private timer drives its own quantum).
	g.Enable(gic.PrivateTimerIRQ)
	g.SetPriority(gic.PrivateTimerIRQ, 0x10)
	g.Enable(SGIReschedule)
	g.SetPriority(SGIReschedule, 0x08)
	g.Enable(gic.PCAPIRQ)
	g.SetPriority(gic.PCAPIRQ, 0x30)
	return k
}

// AttachFabric connects the programmable-logic model (built by the caller
// so its PRR capacities are scenario-specific) and stands up the managed
// reconfiguration pipeline over its PCAP.
func (k *Kernel) AttachFabric(f *pl.Fabric) {
	k.Fabric = f
	k.Reconfig = reconfig.New(k.Clock, f, k.Bus, BitstreamStorePA(), reconfig.DefaultConfig())
	k.Reconfig.Probes = k.Probes
	if k.Tracer != nil {
		k.Reconfig.Trace = k.Tracer.Core(k.reconfigCore().ID)
	}
	// Mint one hardware-task slot object per PRR into the root space.
	if len(f.PRRs) > maxPRRSlots {
		panic(fmt.Sprintf("nova: %d PRRs exceed the %d-selector hw-slot window", len(f.PRRs), maxPRRSlots))
	}
	k.slotObjs = k.slotObjs[:0]
	for i := range f.PRRs {
		o := capspace.NewObject(capspace.ObjHwSlot, fmt.Sprintf("prr%d", i), i)
		k.slotObjs = append(k.slotObjs, o)
		k.rootSpace.Insert(rootSelSlotBase+i, o, capspace.RightsAll)
	}
	if k.hwSvc != nil {
		k.delegateManagerPowers(k.hwSvc)
		k.bindManagerClocks()
	}
}

// bindManagerClocks pins the reconfiguration machinery to the manager
// service's home core on a multi-core machine: the PCAP completion line
// targets that core's GIC bank, and the fabric/pipeline default clocks
// become that core's cursor, so reconfiguration events fire on the
// goroutine that owns them.
func (k *Kernel) bindManagerClocks() {
	if len(k.Cores) == 1 || k.hwSvc == nil {
		return
	}
	clk := k.hwSvc.Core.Clock
	k.GIC.SetTarget(gic.PCAPIRQ, k.hwSvc.Core.ID)
	if k.Fabric != nil {
		k.Fabric.Clock = clk
	}
	if k.Reconfig != nil {
		k.Reconfig.Clock = clk
		if k.Tracer != nil {
			// The pipeline's events fire on the manager core's goroutine
			// now; move its ring along with its clock.
			k.Reconfig.Trace = k.Tracer.Core(k.hwSvc.Core.ID)
		}
	}
}

// BindPLIRQ routes PL interrupt line (0..gic.NumPLIRQs-1) to pd as a
// synthetic level-triggered device: the line is registered and enabled in
// the PD's vGIC, targeted at the PD's home core, and its routing entry is
// installed — the construction hook scenario harnesses use to attach
// interrupt sources that do not come from a fabric PRR (IRQ-storm
// generators, modelled peripherals). Returns the GIC interrupt ID.
// Lines handed out by Fabric.AllocateIRQ grow from line 0 upward, so
// synthetic devices should bind from gic.NumPLIRQs-1 downward.
func (k *Kernel) BindPLIRQ(line int, pd *PD) int {
	if line < 0 || line >= gic.NumPLIRQs {
		panic("nova: PL line out of range")
	}
	irq := gic.PLIRQBase + line
	k.plirqOwner[line] = pd
	k.GIC.SetTarget(irq, pd.Core.ID)
	k.GIC.SetPriority(irq, 0x60)
	pd.VGIC.Register(irq)
	pd.VGIC.Enable(irq)
	if pd == pd.Core.Current {
		k.GIC.Enable(irq)
		pd.Core.Clock.Advance(CostDeviceAccess)
	}
	return irq
}

// RaisePL pulses PL interrupt line at the physical GIC — the model of an
// external device asserting its level-triggered line. The kernel's IRQ
// path routes it to the owning PD's vGIC on delivery.
func (k *Kernel) RaisePL(line int) {
	k.GIC.Raise(gic.PLIRQBase + line)
}

// PDConfig parameterizes CreatePD.
type PDConfig struct {
	Name     string
	Priority int
	Caps     Capability
	Guest    Guest
	// Affinity restricts which cores may host the PD (zero = any). The
	// scheduling policy chooses the home core from this mask; the PD's
	// vCPU, contexts and interrupt routing bind to that core.
	Affinity sched.CPUMask
	// CodeBase/CodeSize locate the guest's text inside its address space
	// (defaults: GuestKernelBase, 64 KB).
	CodeBase uint32
	CodeSize uint32
	// StartSuspended creates the PD in the suspend queue (user services,
	// paper §III-D: "some user service applications of Mini-NOVA are in
	// the suspend queue because they are only invoked when necessary").
	StartSuspended bool
}

// nextASID hands out the next address-space identifier. ASIDs are 8-bit
// on the A9; once clone fleets push past 255 domains the allocator wraps
// (skipping the reserved 0) and from then on every world switch flushes
// the TLB — correct, just slower, exactly like an ASID-rollover flush on
// real hardware.
func (k *Kernel) nextASID() uint8 {
	a := k.asidNext
	k.asidNext++
	if k.asidNext == 0 {
		k.asidNext = 1
		k.FlushTLBOnSwitch = true
	}
	return a
}

// CreatePD builds a protection domain: address space, vCPU, vGIC, and the
// guest's execution context, then places it on its home core's run or
// suspend queue.
func (k *Kernel) CreatePD(cfg PDConfig) *PD {
	if cfg.CodeBase == 0 {
		cfg.CodeBase = GuestKernelBase
	}
	if cfg.CodeSize == 0 {
		cfg.CodeSize = 64 << 10
	}
	id := len(k.PDs)
	space := k.buildGuestSpace(id)
	pd := &PD{
		ID:       id,
		Name_:    cfg.Name,
		Priority: cfg.Priority,
		Caps:     cfg.Caps,
		Space:    capspace.NewSpace(SelGrantBase),
		VGIC:     NewVGIC(),
		Table:    space.Table,
		ASID:     k.nextASID(),
		RAMBase:  space.RAMBase,
		RAMSize:  space.RAMSize,
		Guest:    cfg.Guest,
		kdata:    KernelDataVA + uint32(id)*0x400,
	}
	k.populateCaps(pd, cfg.Caps)
	if k.hwSvc != nil && pd != k.hwSvc {
		// The manager acts on clients through delegated PD capabilities:
		// every domain born after the service registers is handed over.
		k.delegateClientHandle(pd)
	}
	if k.qosOn {
		k.initQoS(pd)
	}
	pd.node = sched.NewNode(pd, cfg.Priority, cfg.Affinity)
	pd.Core = k.Cores[k.Sched.Place(&pd.node)]
	pd.VCPU.TTBR = uint32(pd.Table.Base)
	pd.VCPU.ASID = pd.ASID
	pd.VCPU.DACR = dacrFor(true) // guests boot in guest-kernel context
	pd.VCPU.QuantumLeft = k.Sched.Quantum()

	ctx := cpu.NewExecContext(pd.Core.CPU, cfg.Name, cfg.CodeBase, cfg.CodeSize)
	pd.Env = &Env{K: k, PD: pd, Ctx: ctx}

	pd.resumeCh = make(chan resumeCmd)
	pd.doneCh = make(chan struct{})
	go k.guestWrapper(pd)

	k.PDs = append(k.PDs, pd)
	if k.Tracer != nil {
		k.traceVGIC(pd)
	}
	if !cfg.StartSuspended {
		k.Sched.Enqueue(&pd.node)
	}
	return pd
}

// RegisterHwService names the PD running the Hardware Task Manager; the
// HcHwTaskRequest path wakes it (§IV-E). Registration is the boot-time
// delegation step: the kernel hands the service its powers — the
// request-queue semaphore, the PCAP, the bitstream store region, every
// PRR's hardware-task slot, and a client capability per existing PD —
// as capabilities in the service's table. The manager portals then
// rights-check those capabilities; there is no ambient privilege.
func (k *Kernel) RegisterHwService(pd *PD) {
	if pd.Caps&CapHwManager == 0 {
		panic("nova: hardware service PD lacks CapHwManager")
	}
	k.hwSvc = pd
	k.delegateManagerPowers(pd)
	k.bindManagerClocks()
}

// delegateManagerPowers copies the kernel's device objects out of the
// root space into the manager's table (call-only), plus a client
// capability for every PD created before registration.
func (k *Kernel) delegateManagerPowers(svc *PD) {
	k.rootSpace.Delegate(rootSelQueue, svc.Space, SelMgrQueue, capspace.RightCall)
	k.rootSpace.Delegate(rootSelPCAP, svc.Space, SelMgrPCAP, capspace.RightCall)
	k.rootSpace.Delegate(rootSelStore, svc.Space, SelMgrStore, capspace.RightCall)
	for i := range k.slotObjs {
		k.rootSpace.Delegate(rootSelSlotBase+i, svc.Space, SelMgrSlotBase+i, capspace.RightCall)
	}
	for _, pd := range k.PDs {
		if pd != svc {
			k.delegateClientHandle(pd)
		}
	}
}

// delegateClientHandle hands pd's identity to the registered manager as
// a call-only client capability at its conventional selector.
func (k *Kernel) delegateClientHandle(pd *PD) {
	if pd.ID >= maxClientPDs {
		panic(fmt.Sprintf("nova: PD id %d exceeds the %d-selector client-handle window", pd.ID, maxClientPDs))
	}
	pd.Space.Delegate(SelSelf, k.hwSvc.Space, SelMgrClientBase+pd.ID, capspace.RightCall)
}

func (k *Kernel) guestWrapper(pd *PD) {
	defer close(pd.doneCh)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(interface{ IsKillSentinel() }); ok {
				return
			}
			panic(r)
		}
	}()
	select {
	case cmd := <-pd.resumeCh:
		if cmd.kill {
			return
		}
	case <-k.dying:
		return
	}
	pd.Guest.RunSlice(pd.Env)
	// Guest finished. During Shutdown every guest goroutine unwinds
	// concurrently (a guest whose RunSlice observes Dying returns here
	// normally instead of panicking), so kernel state must not be touched:
	// the coroutine discipline — one goroutine holds the logical CPU at a
	// time — no longer applies, and Shutdown discards the scheduler anyway.
	select {
	case <-k.dying:
		return
	default:
	}
	// Retire the PD and release its scheduler placement. Portal callers
	// parked on the dead PD (queued, or awaiting its reply) would block
	// forever — fail them out.
	pd.dead = true
	k.Sched.Unplace(&pd.node)
	k.failPortalCallers(pd)
	k.reconfigPurge(pd)
	for {
		select {
		case pd.Core.yieldCh <- yieldExited:
		case <-k.dying:
			return
		}
		select {
		case cmd := <-pd.resumeCh:
			if cmd.kill {
				return
			}
		case <-k.dying:
			return
		}
	}
}

// reconfigPurge sheds a dead PD's reconfiguration state: queued requests
// leave the PCAP queue before they can download into a PRR whose owner
// is gone, in-flight work is orphaned (its callbacks disarmed), and
// already-completed transfers awaiting their interrupt are dropped from
// pcapDone — the completion would otherwise inject into a retired vGIC.
// The pipeline and pcapDone belong to the manager core, so a victim
// homed elsewhere defers the purge to the barrier.
func (k *Kernel) reconfigPurge(pd *PD) {
	if k.Reconfig == nil {
		return
	}
	purge := func() {
		k.Reconfig.PurgeOwner(pd)
		kept := k.pcapDone[:0]
		for _, own := range k.pcapDone {
			if own.pd != pd {
				kept = append(kept, own)
			}
		}
		for i := len(kept); i < len(k.pcapDone); i++ {
			k.pcapDone[i] = pcapOwner{}
		}
		k.pcapDone = kept
	}
	if len(k.Cores) == 1 || pd.Core == k.reconfigCore() {
		purge()
	} else {
		k.post(pd.Core, purge)
	}
}

// Dying exposes the shutdown signal so nested coroutine layers inside
// guests (e.g. ucos task goroutines) can unwind with the kernel.
func (k *Kernel) Dying() <-chan struct{} { return k.dying }

// yield hands the core from the active PD's goroutine back to the kernel
// loop, preserving the architectural mode across the switch-out.
func (e *Env) yield(r yieldReason) {
	k := e.K
	c := e.PD.Core.CPU
	savedMode, savedMask := c.Mode, c.IRQMasked
	select {
	case e.PD.Core.yieldCh <- r:
	case <-k.dying:
		panic(killSentinel)
	}
	select {
	case cmd := <-e.PD.resumeCh:
		if cmd.kill {
			panic(killSentinel)
		}
	case <-k.dying:
		panic(killSentinel)
	}
	c.Mode, c.IRQMasked = savedMode, savedMask
}

// CheckPreempt is the guest's chunk-boundary poll: deliver pending vIRQs,
// then give up the core if the kernel asked for it.
func (e *Env) CheckPreempt() {
	e.PendingVIRQ()
	if e.PD.Core.needResched {
		e.yield(yieldPreempt)
		e.PendingVIRQ()
	}
}

// Block suspends the calling PD until another event re-enqueues it. Used
// by kernel handlers running in the caller's goroutine.
func (e *Env) block() {
	e.K.Sched.Dequeue(&e.PD.node)
	e.PD.Core.needResched = true
	e.yield(yieldBlocked)
}

// Run executes the system until the given absolute simulated time. A
// single-core machine runs the paper's sequential loop; a multi-core
// machine runs the epoch-barrier engine on one goroutine — the reference
// oracle RunParallel is byte-identical to. The engine's horizon jump also
// fixes the old loop's idle behaviour: with every core idle, time
// advances in one step to the earliest event instead of creeping through
// per-core wake polls.
func (k *Kernel) Run(until simclock.Cycles) {
	if len(k.Cores) > 1 {
		k.runEpochs(until, 1)
		return
	}
	k.running = true
	defer func() { k.running = false }()
	for k.Clock.Now() < until {
		ran := false
		for _, c := range k.Cores {
			if k.Clock.Now() >= until {
				break
			}
			if k.runCore(c, until) {
				ran = true
			}
		}
		if !ran && k.Clock.Now() < until {
			k.idleUntil(until)
		}
	}
}

// RunFor advances the system by d cycles.
func (k *Kernel) RunFor(d simclock.Cycles) { k.Run(k.Clock.Now() + d) }

// Shutdown terminates every guest goroutine (including goroutines nested
// inside guests that observe Dying). The kernel is unusable afterwards;
// tests and benchmarks call it to avoid leaking goroutines.
func (k *Kernel) Shutdown() {
	if k.shutdown {
		return
	}
	k.shutdown = true
	close(k.dying)
	for _, pd := range k.PDs {
		<-pd.doneCh
	}
}

// touchPDState charges the kernel-data traffic of saving or restoring one
// PD's descriptor + vCPU (vcpuActiveWords words). Distinct PDs occupy
// distinct kernel-data lines, so more VMs means a larger switch-path
// working set — one of Table III's two growth mechanisms.
func (k *Kernel) touchPDState(c *CoreCtx, pd *PD, write bool) {
	for i := uint32(0); i < vcpuActiveWords; i++ {
		c.kctx.Touch(pd.kdata+i*4, write)
	}
}

// physicalLine reports whether irq is a per-VM maskable hardware line
// (the PL-to-PS interrupts). Virtual lines (the guest timer PPI) and
// kernel-owned lines (PCAP) are never touched on switches.
func physicalLine(irq int) bool {
	return irq >= gic.PLIRQBase && irq < gic.PLIRQBase+gic.NumPLIRQs
}

// armVirtualTimer schedules the current PD's next virtual tick from its
// preserved remaining time.
func (k *Kernel) armVirtualTimer(pd *PD) {
	if pd.VCPU.TimerPeriod == 0 || pd.timerEvent != nil {
		return
	}
	d := pd.timerRemaining
	if d == 0 {
		d = pd.VCPU.TimerPeriod
	}
	pd.timerEvent = pd.Core.Clock.After(d, func(simclock.Cycles) {
		pd.timerEvent = nil
		pd.timerRemaining = 0
		if pd.dead || pd.VCPU.TimerPeriod == 0 {
			return
		}
		pd.VGIC.Inject(gic.PrivateTimerIRQ)
		k.wakeIfIdle(pd)
		if pd.Core.Current == pd || pd.idleWaiting {
			k.armVirtualTimer(pd)
		}
	})
}

// parkVirtualTimer suspends the PD's virtual tick, preserving the time
// remaining until the next expiry.
func (k *Kernel) parkVirtualTimer(pd *PD) {
	if pd.timerEvent == nil {
		return
	}
	clk := pd.Core.Clock
	if pd.timerEvent.When > clk.Now() {
		pd.timerRemaining = pd.timerEvent.When - clk.Now()
	} else {
		pd.timerRemaining = 0
	}
	clk.Cancel(pd.timerEvent)
	pd.timerEvent = nil
}

// worldSwitch performs the full VM switch of §III-A/B/C on core c: save
// the outgoing vCPU, read back and mask its interrupt set, restore the
// incoming vCPU (TTBR/ASID/DACR via CP15 — the address-space switch),
// unmask its enabled interrupts, and arm lazy VFP.
func (k *Kernel) worldSwitch(c *CoreCtx, next *PD) {
	if c.Current == next {
		return
	}
	t0 := c.Clock.Now()
	c.kctx.Exec(48) // scheduler pick + switch trampoline

	prev := c.Current
	if prev != nil {
		prev.VCPU.SaveActive(c.CPU)
		if !prev.idleWaiting {
			// An idle-waiting VM keeps its virtual timer live so its next
			// tick can wake it (guest WFI semantics).
			k.parkVirtualTimer(prev)
		}
		k.touchPDState(c, prev, true)
		// Mask the outgoing VM's hardware lines. The 16 PL_IRQs share one
		// distributor enable word, so the whole set costs a single
		// GICD_ICENABLER write regardless of how many lines the VM holds.
		masked := false
		for _, irq := range prev.VGIC.AllLines() {
			if physicalLine(irq) {
				k.GIC.Disable(irq)
				masked = true
			}
		}
		if masked {
			c.kctx.Exec(8)
			c.Clock.Advance(CostDeviceAccess)
		}
	}

	k.touchPDState(c, next, false)
	next.VCPU.RestoreActive(c.CPU) // CP15 writes: TTBR, ASID, DACR
	unmasked := false
	for _, irq := range next.VGIC.EnabledLines() {
		if physicalLine(irq) {
			k.GIC.Enable(irq)
			unmasked = true
		}
	}
	if unmasked {
		c.kctx.Exec(8)
		c.Clock.Advance(CostDeviceAccess)
	}
	if k.EagerVFP {
		// Ablation: unconditional VFP save + restore on every switch.
		c.Clock.Advance(2 * cpu.VFPContextCost())
		c.CPU.VFPEnabled = true
	} else {
		// Lazy switch (Table I): VFP stays with its owner until touched.
		c.CPU.VFPEnabled = false
	}
	if k.FlushTLBOnSwitch {
		c.CPU.CP15Write(cpu.CP15TLBIALL, 0)
	}
	c.kctx.Exec(24) // exception return path

	c.Current = next
	k.armVirtualTimer(next)
	next.Switches++
	d := c.Clock.Now() - t0
	k.Probes.Add(measure.PhaseVMSwitch, d)
	if k.Tracer != nil {
		prevID := uint64(0) // 0 = idle; PD ids are shifted by one
		if prev != nil {
			prevID = uint64(prev.ID) + 1
		}
		k.Tracer.Core(c.ID).EmitSpan(t0, d, trace.KindVMSwitch, 0, prevID, uint64(next.ID)+1)
		k.trSwitch.Observe(d)
	}
}

// onUndef handles undefined-instruction traps: privileged-op emulation and
// the lazy VFP switch of Table I.
func (k *Kernel) onUndef(c *CoreCtx, u cpu.UndefInfo) bool {
	c.kctx.Exec(20)
	switch u.Kind {
	case cpu.UndefVFP:
		return k.lazyVFPSwitch(c)
	case cpu.UndefCP15:
		// A guest touched a privileged system register directly. Mini-NOVA
		// emulates harmless reads and rejects writes (guests must use
		// hypercalls, §III-A).
		c.kctx.Exec(30)
		return !u.Wr
	default:
		return false
	}
}

func (k *Kernel) lazyVFPSwitch(c *CoreCtx) bool {
	cur := c.Current
	if cur == nil {
		c.CPU.VFPEnabled = true
		return true
	}
	// Save the previous owner's context, restore the current PD's.
	if c.vfpOwner != nil && c.vfpOwner != cur {
		c.Clock.Advance(cpu.VFPContextCost())
		c.vfpOwner.VCPU.VFPValid = true
	}
	if cur.VCPU.VFPValid {
		c.Clock.Advance(cpu.VFPContextCost())
	}
	c.vfpOwner = cur
	c.CPU.VFPEnabled = true
	c.kctx.Exec(25)
	return true
}

// onAbort handles MMU faults. Faults inside a guest's own space are the
// guest's business (delivered as a vIRQ-like upcall is out of scope —
// Mini-NOVA kills the offender per "a permission-denied error will
// occur"); the kernel only logs and refuses.
func (k *Kernel) onAbort(c *CoreCtx, f *mmu.Fault) bool {
	c.kctx.Exec(40)
	if c.Current != nil {
		c.Current.Faults++
		// A write through a clone's read-only mapping of a shared frame is
		// not an offence — it is the copy-on-write break (clone.go).
		if c.Current.clone != nil && f.Write && f.Kind == mmu.FaultPermission {
			return k.cowBreak(c, c.Current, f)
		}
	}
	return false
}

// onIRQ is the physical interrupt path of §III-B/§IV-D on one core:
// acknowledge at that core's GIC interface, EOI, then route — quantum
// timer to the core's scheduler, reschedule SGI to the core's resched
// flag, PCAP to the launching VM, PL lines to their owning VM's vGIC.
func (k *Kernel) onIRQ(c *CoreCtx) {
	t0 := c.Clock.Now() - cpu.CostExceptionEntry
	c.kctx.Exec(26) // vector + IRQ-mode entry + GIC interface read
	c.Clock.Advance(2 * CostDeviceAccess)
	id := k.GIC.Acknowledge(c.ID)
	if id == gic.SpuriousID {
		return
	}
	k.GIC.EOI(c.ID, id)
	switch {
	case id == gic.PrivateTimerIRQ:
		c.kctx.Exec(14)
		c.quantumExpired = true
		c.needResched = true
	case id == SGIReschedule:
		// A peer core demanded a reschedule (cross-core wake, §III-D
		// generalized): re-enter the scheduler at the next boundary
		// without charging the current PD's quantum.
		c.kctx.Exec(12)
		c.needResched = true
	case id == gic.PCAPIRQ:
		c.kctx.Exec(18)
		// Drain every completion since the last interrupt: with the
		// reconfiguration queue, the next transfer starts before this one
		// is acknowledged, so the single pending bit can cover several
		// owners. The line is pinned to the manager's core; completions for
		// clients homed elsewhere defer their vGIC injection to the barrier
		// (the owning core's goroutine must not be written mid-epoch).
		for _, own := range k.pcapDone {
			own := own
			if len(k.Cores) == 1 || own.pd.Core == c {
				if own.pd.dead {
					continue // owner exited between completion and delivery
				}
				k.traceCompletionIRQ(own, id)
				if own.pd.VGIC.Inject(id) {
					k.wakeIfIdle(own.pd)
					k.maybePreemptFor(own.pd)
				}
			} else {
				k.post(c, func() {
					// The owner may have died this epoch on its own core;
					// its dead flag is safe to read only here, at the barrier.
					if own.pd.dead {
						return
					}
					k.traceCompletionIRQ(own, id)
					if own.pd.VGIC.Inject(id) {
						k.wakeIfIdle(own.pd)
						k.maybePreemptFor(own.pd)
					}
				})
			}
		}
		k.pcapDone = k.pcapDone[:0]
	case physicalLine(id):
		c.kctx.Exec(22)
		c.kctx.Touch(KernelDataVA+0x8000+uint32(id)*8, false) // routing table
		if pd := k.plirqOwner[id-gic.PLIRQBase]; pd != nil {
			// Distribution walks the owner VM's vGIC record list (Fig. 2)
			// and updates the virtual IRQ state — per-VM kernel data that
			// gets colder as more VMs rotate through the caches.
			for i := uint32(0); i < 8; i++ {
				c.kctx.Touch(pd.kdata+0x100+i*8, i >= 6)
			}
			c.kctx.Exec(14)
			if pd.VGIC.Inject(id) {
				k.wakeIfIdle(pd)
				k.Probes.Add(measure.PhasePLIRQEntry, c.Clock.Now()-t0)
			}
		}
	default:
		c.kctx.Exec(10)
	}
}

// wakeIfIdle re-enqueues a PD parked in paravirtualized idle when an
// injection arrives for it.
func (k *Kernel) wakeIfIdle(pd *PD) {
	if pd.idleWaiting {
		k.wake(pd)
	}
}

// maybePreemptFor requests a reschedule on pd's home core when pd
// outranks what that core is running. A same-core wake flags the core; a
// cross-core wake arrives here only inside a barrier commit (wakeFrom
// posts it), where the SGI is latched on the peer's GIC interface so the
// target takes it at its next epoch entry — the model's inter-processor
// interrupt, with its doorbell cost charged on the posting core.
func (k *Kernel) maybePreemptFor(pd *PD) {
	target := pd.Core
	// Only a runnable resident PD of equal or higher priority shields its
	// core from the wake; a blocked one (including the woken PD itself,
	// resident but just re-enqueued) will be rescheduled anyway.
	cur := target.Current
	if cur != nil && cur != pd && k.Sched.Queued(&cur.node) && pd.Priority <= cur.Priority {
		return
	}
	if k.inCommit && len(k.Cores) > 1 {
		k.GIC.RaiseSGI(target.ID, SGIReschedule)
		return
	}
	target.needResched = true
}

// wake moves a PD into its home core's run queue and preempts if it
// outranks that core's current PD.
func (k *Kernel) wake(pd *PD) {
	if pd.dead || pd.frozen {
		return
	}
	pd.node.Priority = pd.Priority
	k.Sched.Enqueue(&pd.node)
	k.maybePreemptFor(pd)
}

// ConsoleString returns everything guests printed so far.
func (k *Kernel) ConsoleString() string { return k.Console.String() }

// SDWriteImage preloads the simulated SD card (tests, examples).
func (k *Kernel) SDWriteImage(block uint32, data []byte) {
	for len(data) > 0 {
		b := make([]byte, 512)
		n := copy(b, data)
		k.sd[block] = b
		data = data[n:]
		block++
	}
}

func (k *Kernel) String() string {
	return fmt.Sprintf("mininova: %d cores, %d PDs, %s", len(k.Cores), len(k.PDs), k.Clock.Now())
}
