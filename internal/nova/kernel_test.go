package nova

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/pl"
	"repro/internal/simclock"
)

// scriptGuest runs a closure as its Main; the workhorse of kernel tests.
type scriptGuest struct {
	name string
	main func(env *Env)
}

func (g *scriptGuest) Name() string      { return g.name }
func (g *scriptGuest) RunSlice(env *Env) { g.main(env) }

// spin burns n instruction-chunks, polling for preemption between chunks.
func spin(env *Env, chunks int) {
	for i := 0; i < chunks; i++ {
		env.Ctx.Exec(100)
		env.CheckPreempt()
	}
}

func TestGuestRunsAndHypercalls(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var vmid uint32 = 99
	k.CreatePD(PDConfig{Name: "g0", Priority: PrioGuest, Guest: &scriptGuest{"g0", func(env *Env) {
		env.Ctx.Exec(50)
		vmid = env.Hypercall(HcVMID)
		for _, ch := range "hi" {
			env.Hypercall(HcPrint, uint32(ch))
		}
	}}})
	k.RunFor(simclock.FromMillis(1))
	if vmid != 0 {
		t.Errorf("HcVMID = %d, want 0", vmid)
	}
	if got := k.ConsoleString(); got != "hi" {
		t.Errorf("console = %q, want %q", got, "hi")
	}
}

func TestRoundRobinSharesCPU(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	ran := make([]simclock.Cycles, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
			for {
				start := env.Now()
				env.Ctx.Exec(200)
				ran[i] += env.Now() - start
				env.CheckPreempt()
			}
		}}})
	}
	k.RunFor(simclock.FromMillis(200)) // two full rounds of 33ms each
	total := ran[0] + ran[1] + ran[2]
	if total == 0 {
		t.Fatal("nothing ran")
	}
	for i, r := range ran {
		share := float64(r) / float64(total)
		if share < 0.25 || share > 0.42 {
			t.Errorf("guest %d got %.1f%% of CPU, want ~33%%", i, share*100)
		}
	}
}

func TestPriorityPreemption(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	events := []string{}
	lowRunning := false
	k.CreatePD(PDConfig{Name: "low", Priority: PrioGuest, Guest: &scriptGuest{"low", func(env *Env) {
		lowRunning = true
		for {
			env.Ctx.Exec(100)
			env.CheckPreempt()
		}
	}}})
	svc := k.CreatePD(PDConfig{Name: "svc", Priority: PrioService, StartSuspended: true,
		Guest: &scriptGuest{"svc", func(env *Env) {
			events = append(events, "svc-ran")
			env.Ctx.Exec(100)
			env.Hypercall(HcSuspend)
			events = append(events, "svc-again")
		}}})
	// Let the low guest run a bit, then wake the service via a timer event.
	k.Clock.After(simclock.FromMicros(500), func(simclock.Cycles) {
		k.wake(svc)
	})
	k.RunFor(simclock.FromMillis(2))
	if !lowRunning {
		t.Fatal("low-priority guest never ran")
	}
	if len(events) != 1 || events[0] != "svc-ran" {
		t.Errorf("events = %v, want [svc-ran] (service preempts, runs once, suspends)", events)
	}
}

func TestQuantumCarryOver(t *testing.T) {
	// A guest preempted early must resume with its remaining quantum, so
	// its total slice is one quantum (§III-D).
	k := NewKernel()
	defer k.Shutdown()
	var sliceTotal simclock.Cycles
	slices := []simclock.Cycles{}
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		for {
			start := env.Now()
			for !env.Preempted() {
				env.Ctx.Exec(100)
				env.PendingVIRQ()
			}
			d := env.Now() - start
			sliceTotal += d
			slices = append(slices, d)
			env.CheckPreempt()
		}
	}}})
	svc := k.CreatePD(PDConfig{Name: "svc", Priority: PrioService, StartSuspended: true,
		Guest: &scriptGuest{"svc", func(env *Env) {
			for {
				env.Ctx.Exec(500)
				env.Hypercall(HcSuspend)
			}
		}}})
	// Interrupt the guest twice mid-quantum.
	k.Clock.After(simclock.FromMillis(5), func(simclock.Cycles) { k.wake(svc) })
	k.Clock.After(simclock.FromMillis(15), func(simclock.Cycles) { k.wake(svc) })
	k.RunFor(simclock.FromMillis(60))
	if len(slices) < 3 {
		t.Fatalf("guest was sliced %d times, want >= 3 (two preemptions + quantum end)", len(slices))
	}
	// First three slices together should approximate one 33ms quantum:
	// the two preemptions must NOT have reset the quantum.
	sum := slices[0] + slices[1] + slices[2]
	q := simclock.FromMillis(DefaultQuantumMs)
	if sum < q*95/100 || sum > q*110/100 {
		t.Errorf("first full slice = %v, want ~%v (quantum carry-over)", sum, q)
	}
}

func TestVirtualTimerInjection(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	ticks := 0
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		env.PD.VGIC.Entry = func(irq int) {
			if irq == gic.PrivateTimerIRQ {
				ticks++
				env.Ctx.Exec(30)
				env.Hypercall(HcIRQEOI, uint32(irq))
			}
		}
		env.Hypercall(HcIRQEnable, gic.PrivateTimerIRQ)
		env.Hypercall(HcTimerSet, uint32(simclock.FromMillis(1)))
		for {
			env.Ctx.Exec(100)
			env.CheckPreempt()
		}
	}}})
	k.RunFor(simclock.FromMillis(10))
	if ticks < 8 || ticks > 11 {
		t.Errorf("virtual timer ticks = %d in 10ms at 1ms period, want ~9-10", ticks)
	}
}

func TestVirtualTimerPausedVMStaysPending(t *testing.T) {
	// A vIRQ injected while the VM is off-CPU is delivered when it is
	// scheduled again (§IV-D), and inService prevents interrupt storms.
	k := NewKernel()
	defer k.Shutdown()
	ticks := 0
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		env.PD.VGIC.Entry = func(irq int) {
			ticks++
			env.Hypercall(HcIRQEOI, uint32(irq))
		}
		env.Hypercall(HcIRQEnable, gic.PrivateTimerIRQ)
		env.Hypercall(HcTimerSet, uint32(simclock.FromMillis(1)))
		for {
			env.Ctx.Exec(100)
			env.CheckPreempt()
		}
	}}})
	hog := k.CreatePD(PDConfig{Name: "hog", Priority: PrioService, StartSuspended: true,
		Guest: &scriptGuest{"hog", func(env *Env) {
			// Monopolize the CPU for 5 ms, then suspend.
			end := env.Now() + simclock.FromMillis(5)
			for env.Now() < end {
				env.Ctx.Exec(200)
			}
			env.Hypercall(HcSuspend)
		}}})
	k.Clock.After(simclock.FromMillis(2), func(simclock.Cycles) { k.wake(hog) })
	k.RunFor(simclock.FromMillis(10))
	// ~2 ticks before the hog, 1 pending delivered after resume, ~3 after:
	// the 5 ticks that fired while inService was set are coalesced.
	if ticks < 4 || ticks > 8 {
		t.Errorf("ticks = %d, want 4..8 (pending delivery after resume, storms coalesced)", ticks)
	}
}

func TestGuestCannotTouchKernelMemory(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.CreatePD(PDConfig{Name: "evil", Priority: PrioGuest, Guest: &scriptGuest{"evil", func(env *Env) {
		env.Ctx.Touch(KernelDataVA, true) // privileged-only page
	}}})
	k.RunFor(simclock.FromMillis(1))
	if k.PDs[0].Faults != 1 {
		t.Errorf("faults = %d, want 1 (permission abort)", k.PDs[0].Faults)
	}
}

func TestGuestCannotWriteCP15(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var before uint32
	k.CreatePD(PDConfig{Name: "evil", Priority: PrioGuest, Guest: &scriptGuest{"evil", func(env *Env) {
		before = k.CPU.MMU.DACR
		k.CPU.CP15Write(0 /* SCTLR */, 0) // direct sensitive op from USR: traps
	}}})
	k.RunFor(simclock.FromMillis(1))
	if !k.CPU.MMU.Enabled {
		t.Error("guest disabled the MMU through a privileged write")
	}
	if k.CPU.Stats().Undefs == 0 {
		t.Error("no UND trap recorded")
	}
	_ = before
}

func TestDACRSwitchProtectsGuestKernel(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var faultsAtUser, faultsAtKernel uint64
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		// In guest-kernel context (boot default): GK pages accessible.
		env.Ctx.Touch(GuestKernelBase, true)
		faultsAtKernel = env.PD.Faults
		// Switch to guest-user context: GK pages must domain-fault.
		env.Hypercall(HcDACRSwitch, 0)
		env.Ctx.Touch(GuestKernelBase, false)
		faultsAtUser = env.PD.Faults
		// And back.
		env.Hypercall(HcDACRSwitch, 1)
		env.Ctx.Stalled = false
		env.Ctx.Touch(GuestKernelBase+64, true)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if faultsAtKernel != 0 {
		t.Errorf("guest-kernel context faulted on its own pages (%d)", faultsAtKernel)
	}
	if faultsAtUser != 1 {
		t.Errorf("guest-user context faults = %d, want 1 (Table II NA)", faultsAtUser)
	}
	if k.PDs[0].Faults != 1 {
		t.Errorf("total faults = %d, want 1", k.PDs[0].Faults)
	}
}

func TestIPCRoundTrip(t *testing.T) {
	// Portal call/reply through a delegated PD capability: the client
	// calls the server's portal, the server receives, then replies with
	// the merged reply+receive mode.
	k := NewKernel()
	defer k.Shutdown()
	var got, reply uint32
	server := k.CreatePD(PDConfig{Name: "server", Priority: PrioGuest, Guest: &scriptGuest{"server", func(env *Env) {
		got = env.Hypercall(HcPortalRecv, abi.RecvBlock)
		env.Hypercall(HcPortalRecv, abi.RecvReply, 0x51) // reply, poll once
	}}})
	var sel uint32
	client := k.CreatePD(PDConfig{Name: "client", Priority: PrioGuest, Guest: &scriptGuest{"client", func(env *Env) {
		env.Ctx.Exec(100)
		reply = env.Hypercall(HcPortalCall, sel, 0xABCDE)
	}}})
	s, err := k.DelegateIPC(server, client)
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	sel = uint32(s)
	k.RunFor(simclock.FromMillis(2))
	if got&0xFF_FFFF != 0xABCDE {
		t.Errorf("received word = %#x, want 0xABCDE", got&0xFF_FFFF)
	}
	if sender := got >> 24; sender != 1 {
		t.Errorf("sender = %d, want 1", sender)
	}
	if reply != 0x51 {
		t.Errorf("caller's reply = %#x, want 0x51", reply)
	}
	if p := k.Probes.Get("ipc_call"); p.Count != 1 {
		t.Errorf("ipc_call probe samples = %d, want 1", p.Count)
	}
}

func TestIPCNonBlockingEmpty(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	var got uint32
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		got = env.Hypercall(HcPortalRecv, 0)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if got != StatusNoMsg {
		t.Errorf("empty non-blocking recv = %#x, want StatusNoMsg", got)
	}
}

func TestVFPLazySwitchBetweenVMs(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	traps := func() uint64 { return k.CPU.Stats().VFPTraps }
	for i := 0; i < 2; i++ {
		k.CreatePD(PDConfig{Name: "vfp", Priority: PrioGuest, Guest: &scriptGuest{"vfp", func(env *Env) {
			for {
				env.Ctx.VFPOp(50) // first op after every switch-in traps
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}}})
	}
	k.RunFor(simclock.FromMillis(150)) // several quantum rotations
	got := traps()
	// Each 33ms rotation between the two VFP users causes exactly one trap.
	if got < 3 || got > 8 {
		t.Errorf("VFP traps = %d over ~4 rotations, want one per switch (3..8)", got)
	}
}

func TestSDSupervisedIO(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	img := make([]byte, 512)
	copy(img, "bootdata")
	k.SDWriteImage(7, img)
	var status uint32
	var data uint32
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		status = env.Hypercall(HcSDRead, 7, 0x2000) // into RAM offset 0x2000
		v, _ := env.Ctx.Load32(GuestUserBase + (0x2000 - 0x10_0000) + 0x10_0000)
		_ = v
		// Read back through the guest's own mapping: RAM offset 0x2000 is
		// below the guest-kernel quarter, so use the kernel image VA.
		data, _ = env.Ctx.Load32(GuestKernelBase + 0x2000)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if status != StatusOK {
		t.Fatalf("HcSDRead = %d", status)
	}
	if data != 0x746f6f62 { // "boot" little-endian
		t.Errorf("guest read %#x, want 'boot'", data)
	}
}

func TestShutdownTerminatesGoroutines(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 3; i++ {
		k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
			for {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}}})
	}
	k.RunFor(simclock.FromMillis(1))
	k.Shutdown() // must not deadlock
	for _, pd := range k.PDs {
		select {
		case <-pd.doneCh:
		default:
			t.Errorf("pd %s goroutine still alive after Shutdown", pd.Name_)
		}
	}
}

func TestGuestExitRetiresPD(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.CreatePD(PDConfig{Name: "short", Priority: PrioGuest, Guest: &scriptGuest{"short", func(env *Env) {
		env.Ctx.Exec(100) // then return
	}}})
	other := 0
	k.CreatePD(PDConfig{Name: "long", Priority: PrioGuest, Guest: &scriptGuest{"long", func(env *Env) {
		for {
			env.Ctx.Exec(100)
			other++
			env.CheckPreempt()
		}
	}}})
	k.RunFor(simclock.FromMillis(80))
	if !k.PDs[0].Dead() {
		t.Error("returned guest not marked dead")
	}
	if other == 0 {
		t.Error("surviving guest starved after peer exit")
	}
}

// fabricForTest builds a 4-PRR fabric on the kernel's bus.
func fabricForTest(k *Kernel) *pl.Fabric {
	caps := []bitstream.Resources{
		{LUTs: 10000, BRAM: 32, DSP: 48},
		{LUTs: 10000, BRAM: 32, DSP: 48},
		{LUTs: 2000, BRAM: 4, DSP: 8},
		{LUTs: 2000, BRAM: 4, DSP: 8},
	}
	f := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	k.AttachFabric(f)
	return f
}

func TestHwRequestRequiresDataSection(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fabricForTest(k)
	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		StartSuspended: true, Guest: &scriptGuest{"hwtm", func(env *Env) {
			env.Hypercall(HcMgrNextRequest) // never reached in this test
		}}})
	k.RegisterHwService(svc)
	var got uint32
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		got = env.Hypercall(HcHwTaskRequest, 1, GuestIfaceBase, GuestDataSect)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if got != StatusInval {
		t.Errorf("request without data section = %d, want StatusInval", got)
	}
}

func TestManagerPortalUnreachableWithoutDelegation(t *testing.T) {
	// A guest's capability table simply has no slot for the manager
	// portals: invoking one resolves nothing (BadSel), same as a made-up
	// call number — the portal does not exist in that space.
	k := NewKernel()
	defer k.Shutdown()
	var got uint32
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		got = env.Hypercall(HcMgrHwMMULoad, 0, 0)
	}}})
	k.RunFor(simclock.FromMillis(1))
	if got != StatusBadSel {
		t.Errorf("portal without delegation = %d, want StatusBadSel", got)
	}
}

func TestHwRequestFullPathWithFakeManager(t *testing.T) {
	// End-to-end §IV-E flow against a minimal in-test manager: request ->
	// wake service -> portals -> complete -> guest resumes with status.
	k := NewKernel()
	defer k.Shutdown()
	f := fabricForTest(k)

	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		StartSuspended: true, Guest: &scriptGuest{"hwtm", func(env *Env) {
			reqID := env.Hypercall(HcMgrNextRequest)
			for {
				view, ok := k.MgrRequest(reqID)
				if !ok {
					t.Error("MgrRequest lookup failed")
					return
				}
				env.Ctx.Exec(500) // allocation bookkeeping
				env.Hypercall(HcMgrMapIface, reqID, 0)
				env.Hypercall(HcMgrHwMMULoad, uint32(view.ClientID), 0)
				env.Hypercall(HcMgrAllocIRQ, reqID, 0)
				reqID = env.Hypercall(HcMgrComplete, reqID, StatusOK)
			}
		}}})
	k.RegisterHwService(svc)

	// Preload PRR0 with a loopback core so the guest can actually run it.
	f.RegisterCore(1, loopbackCore{})
	bs := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 100}, 256)
	if err := f.LoadConfiguration(0, bs); err != nil {
		t.Fatal(err)
	}

	var reqStatus, plIRQ uint32
	done := false
	k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Guest: &scriptGuest{"g", func(env *Env) {
		env.PD.VGIC.Entry = func(irq int) {
			plIRQ = uint32(irq)
			env.Hypercall(HcIRQEOI, uint32(irq))
		}
		// Build a data section: map 16 pages at the conventional VA.
		for i := uint32(0); i < 16; i++ {
			env.Hypercall(HcMapPage, GuestDataSect+i*0x1000, 0x20_0000+i*0x1000)
		}
		env.Hypercall(HcRegionCreate, GuestDataSect, 16*0x1000)
		reqStatus = env.Hypercall(HcHwTaskRequest, 1, GuestIfaceBase, GuestDataSect)
		if reqStatus != StatusOK {
			return
		}
		// Program the task through the freshly mapped interface page.
		env.Ctx.Store32(GuestIfaceBase+pl.RegSrc, 0x100)
		env.Ctx.Store32(GuestIfaceBase+pl.RegDst, 0x200)
		env.Ctx.Store32(GuestIfaceBase+pl.RegLen, 64)
		env.Ctx.Store32(GuestIfaceBase+pl.RegCtrl, pl.CtrlStart|pl.CtrlIRQEn)
		for plIRQ == 0 {
			env.Ctx.Exec(100)
			env.CheckPreempt()
		}
		done = true
	}}})
	k.RunFor(simclock.FromMillis(5))
	if reqStatus != StatusOK {
		t.Fatalf("hw task request status = %d, want OK", reqStatus)
	}
	if !done {
		t.Fatal("guest never saw the PL IRQ")
	}
	if plIRQ < gic.PLIRQBase {
		t.Errorf("vIRQ id = %d, want a PL line", plIRQ)
	}
	// The probes must have recorded the three phases.
	for _, ph := range []string{"mgr_entry", "mgr_exit", "plirq_entry"} {
		if k.Probes.Get(ph).Count == 0 {
			t.Errorf("probe %s empty", ph)
		}
	}
	if !strings.Contains(k.Probes.String(), "mgr_entry") {
		t.Error("probe summary missing mgr_entry")
	}
}

// loopbackCore copies input to output.
type loopbackCore struct{}

func (loopbackCore) Name() string { return "loopback" }
func (loopbackCore) Latency(n int, _ uint32) simclock.Cycles {
	return simclock.Cycles(100 + n)
}
func (loopbackCore) Process(in []byte, _ uint32) ([]byte, error) {
	out := make([]byte, len(in))
	copy(out, in)
	return out, nil
}

func TestHypercallCountMatchesPaper(t *testing.T) {
	if NumHypercalls != 25 {
		t.Errorf("NumHypercalls = %d, paper says 25", NumHypercalls)
	}
}

func TestVCPUTable1(t *testing.T) {
	// Table I: active switch covers GP registers + privileged CP15 state;
	// VFP moves lazily. After a world switch the incoming PD's TTBR/ASID/
	// DACR are live and VFP is disabled.
	k := NewKernel()
	defer k.Shutdown()
	a := k.CreatePD(PDConfig{Name: "a", Priority: PrioGuest, Guest: &scriptGuest{"a", func(env *Env) {
		spin(env, 1<<30)
	}}})
	b := k.CreatePD(PDConfig{Name: "b", Priority: PrioGuest, Guest: &scriptGuest{"b", func(env *Env) {
		spin(env, 1<<30)
	}}})
	k.RunFor(simclock.FromMillis(40)) // at least one rotation
	cur := k.Cores[0].Current
	if cur != a && cur != b {
		t.Fatal("no current PD")
	}
	if got := k.CPU.MMU.TTBR; got != cur.Table.Base {
		t.Errorf("live TTBR %#x != current PD's table %#x", got, cur.Table.Base)
	}
	if got := k.CPU.MMU.ASID; got != cur.ASID {
		t.Errorf("live ASID %d != current PD's %d", got, cur.ASID)
	}
	if k.CPU.VFPEnabled {
		t.Error("VFP enabled right after a switch — lazy switching broken")
	}
	if a.Switches == 0 || b.Switches == 0 {
		t.Error("switch counters not advancing")
	}
}
