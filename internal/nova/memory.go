package nova

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/physmem"
)

// Virtual-address layout.
//
// Every VM's page table contains two halves: the guest's own mappings
// (domains DomainGuestUser / DomainGuestKernel) and the kernel's global
// mappings (DomainKernel, privileged-only AP), which are identical across
// all spaces — that is what lets the kernel run on whatever table is live
// without switching (paper §III-C).
const (
	// Guest-side layout.
	GuestUserBase   = 0x0001_0000 // guest user code+data
	GuestKernelBase = 0x3000_0000 // guest (de-privileged) kernel image
	GuestDataSect   = 0x0800_0000 // conventional hardware-task data section VA
	GuestIfaceBase  = 0x0900_0000 // conventional hardware-task interface VA

	// Kernel-side layout (global, privileged).
	KernelCodeVA = 0xF000_0000
	KernelDataVA = 0xF010_0000

	// KernelCodeSize is the kernel's text footprint: the paper's kernel
	// "compiles to about 40KB" (§V-B); the fetch cursor of kernel code
	// walks this range.
	KernelCodeSize = 40 << 10
)

// Physical layout carved from DDR by the kernel at boot.
const (
	physKernelCode = physmem.DDRBase               // 1 MB
	physKernelData = physmem.DDRBase + 0x0010_0000 // 1 MB
	physTables     = physmem.DDRBase + 0x0020_0000 // page-table pool, 8 MB
	physBitstreams = physmem.DDRBase + 0x00A0_0000 // bitstream store, 22 MB
	physGuests     = physmem.DDRBase + 0x0200_0000 // guest RAM from here
)

// GuestRAMSize is each VM's physical allocation (code + data + sections).
const GuestRAMSize = 4 << 20

// mapKernelInto installs the global kernel mappings into a page table:
// kernel text+data, and identity mappings for the device windows the
// kernel drives (GIC, private timer, devcfg/PCAP, UART, and the AXI GP
// aperture holding the PRR register groups). All DomainKernel, APPriv —
// Table II's "Microkernel: Privileged" row.
func mapKernelInto(pt *mmu.PageTable) {
	pt.MapSection(KernelCodeVA, physKernelCode, DomainKernel, mmu.APPriv)
	pt.MapSection(KernelDataVA, physKernelData, DomainKernel, mmu.APPriv)
	// Page-table pool: the kernel edits guest tables through this window.
	for off := uint32(0); off < 8<<20; off += 1 << 20 {
		pt.MapSection(0xF020_0000+off, physTables+physmem.Addr(off), DomainKernel, mmu.APPriv)
	}
	// Device identity sections.
	pt.MapSection(uint32(physmem.AXIGP0Base), physmem.AXIGP0Base, DomainKernel, mmu.APPriv)
	pt.MapSection(0xF8F0_0000, 0xF8F0_0000, DomainKernel, mmu.APPriv)
	pt.MapSection(0xF800_0000, 0xF800_0000, DomainKernel, mmu.APPriv)
	pt.MapSection(uint32(physmem.UARTBase), physmem.UARTBase, DomainKernel, mmu.APPriv)
	// Bitstream store (kernel view; also mapped into the manager service).
	for off := uint32(0); off < 22<<20; off += 1 << 20 {
		pt.MapSection(0xF100_0000+off, physBitstreams+physmem.Addr(off), DomainKernel, mmu.APPriv)
	}
}

// BitstreamStoreVA is where the kernel (and the Hardware Task Manager, in
// its own space) sees the bitstream file region.
const BitstreamStoreVA = 0xF100_0000

// BitstreamStorePA returns the physical base of the bitstream store.
func BitstreamStorePA() physmem.Addr { return physBitstreams }

// dacrFor computes the DACR for a guest context per Table II: the guest-
// user domain is always client; the guest-kernel domain is client only in
// guest-kernel context; the kernel domain is always client (its pages are
// privileged-only via AP, so guests cannot touch them regardless).
func dacrFor(guestKernelCtx bool) uint32 {
	d := uint32(mmu.DomainClient)<<(2*DomainGuestUser) |
		uint32(mmu.DomainClient)<<(2*DomainKernel)
	if guestKernelCtx {
		d |= uint32(mmu.DomainClient) << (2 * DomainGuestKernel)
	}
	return d
}

// AddressSpace describes a constructed VM space.
type AddressSpace struct {
	Table   *mmu.PageTable
	RAMBase physmem.Addr
	RAMSize uint32
}

// buildGuestSpace allocates a VM's RAM and page table: guest user pages,
// guest kernel pages, and the kernel's global half.
//
// The guest's physical RAM block is split: first quarter backs the guest
// kernel image, the rest backs guest user memory (including wherever the
// guest later places its hardware-task data section).
func (k *Kernel) buildGuestSpace(id int) AddressSpace {
	// Stagger VM blocks by an extra 68 KB so same-offset guest structures
	// do not collide in the same physically-indexed L2 sets — the layout
	// a real allocator's metadata produces naturally.
	ramBase := physGuests + physmem.Addr(id*(GuestRAMSize+0x11000))
	pt := mmu.NewPageTable(k.Bus, k.allocFor(id))
	mapKernelInto(pt)

	kernelPart := uint32(GuestRAMSize / 4)
	// Guest kernel image: 1 MB of small pages is plenty for a uCOS image.
	for off := uint32(0); off < kernelPart; off += physmem.FrameSize {
		pt.MapPage(GuestKernelBase+off, ramBase+physmem.Addr(off), DomainGuestKernel, mmu.APFull)
	}
	// Guest user region.
	userPA := ramBase + physmem.Addr(kernelPart)
	userSize := uint32(GuestRAMSize) - kernelPart
	for off := uint32(0); off < userSize; off += 1 << 20 {
		// Use sections where alignment allows for realism and table economy.
		if (uint32(userPA)+off)&0xFFFFF == 0 && (GuestUserBase+off)&0xFFFFF == 0 {
			pt.MapSection(GuestUserBase+off, userPA+physmem.Addr(off), DomainGuestUser, mmu.APFull)
		} else {
			for p := uint32(0); p < 1<<20 && off+p < userSize; p += physmem.FrameSize {
				pt.MapPage(GuestUserBase+off+p, userPA+physmem.Addr(off+p), DomainGuestUser, mmu.APFull)
			}
		}
	}
	return AddressSpace{Table: pt, RAMBase: ramBase, RAMSize: GuestRAMSize}
}

// allocFor returns the frame allocator backing PD id's page tables. On a
// single-core machine every space shares the global pool (the sequential
// loop's byte-frozen layout); a multi-core machine carves a private
// 256 KB arena per PD out of the pool, so lazy second-level table
// allocation on concurrent cores never races on the shared cursor.
// 256 KB holds the 16 KB L1 plus every 1 KB L2 a guest can need.
func (k *Kernel) allocFor(id int) *mmu.FrameAllocator {
	if len(k.Cores) == 1 {
		return k.Alloc
	}
	return mmu.NewFrameAllocator(k.Alloc.Alloc(256<<10, 16<<10), 256<<10)
}

// translateGuestVA resolves a guest VA through the PD's table, for kernel
// paths that need the physical view (data-section registration, §IV-E).
func translateGuestVA(pd *PD, va uint32) (physmem.Addr, error) {
	pa, _, _, ok := pd.Table.Lookup(va)
	if !ok {
		return 0, fmt.Errorf("va %#x not mapped in pd %s", va, pd.Name_)
	}
	return pa, nil
}
