package nova

import (
	"repro/internal/capspace"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// Guest is the software hosted inside a protection domain: a
// paravirtualized OS, a user service (the Hardware Task Manager), or a
// bare application. Main runs once, in the PD's own goroutine; control is
// handed back and forth with the kernel loop through strict channel
// handoff, so exactly one logical thread of execution exists — the model
// of a single Cortex-A9 core. All of the guest's instruction and memory
// traffic must go through env.Ctx so it is charged to the shared machine,
// and the guest must call env.CheckPreempt() at chunk boundaries.
type Guest interface {
	// Name labels the guest in traces.
	Name() string
	// RunSlice is the guest's entry point; it runs for the lifetime of
	// the VM (it is resumed transparently across preemptions).
	RunSlice(env *Env)
}

// Capability is a boot-time grant descriptor: PDConfig.Caps names the
// powers a domain is born with, and CreatePD translates each bit into
// actual capability-table contents (see populateCaps). At run time the
// kernel never tests these bits — rights live in pd.Space.
type Capability uint32

// Boot grants.
const (
	// CapHwManager installs the HcMgr* portal capabilities; the kernel's
	// device objects (request queue, PCAP, bitstream store, PRR slots,
	// client PDs) are delegated when the PD is registered as the Hardware
	// Task Manager service (RegisterHwService).
	CapHwManager Capability = 1 << iota
	// CapIODirect grants RightCall on the supervised SD-write portal
	// (every PD holds the capability, but without the grant it carries
	// no rights and invoking it is Denied).
	CapIODirect
)

// PD is a protection domain: "a resource container and a capability
// interface between a virtual machine and the microkernel. It holds the
// state of a virtual machine (the ID number, the priority level, etc)"
// (paper §III-A).
type PD struct {
	ID       int
	Name_    string
	Priority int
	Caps     Capability

	// Space is the PD's capability table: every kernel request resolves
	// a selector through it (§III-A's capability interface, rebuilt on
	// internal/capspace). selfObj is the PD's own kernel object — the
	// identity other domains hold capabilities to (IPC destinations, the
	// manager's client handles).
	Space   *capspace.Space
	selfObj *capspace.Object

	// Core is the PD's home core, chosen by the scheduling policy from
	// the PD's affinity mask at creation. The vCPU, all of the guest's
	// execution contexts, and the PD's interrupt routing bind to it.
	Core *CoreCtx

	VCPU VCPU
	VGIC *VGIC

	// Address space.
	Table *mmu.PageTable
	ASID  uint8

	// RAM is the VM's physical allocation [RAMBase, RAMBase+RAMSize).
	RAMBase physmem.Addr
	RAMSize uint32

	// DataSection is the registered hardware-task data section (§IV-B):
	// guest VA, physical translation and size.
	DataSectionVA   uint32
	DataSectionPA   physmem.Addr
	DataSectionSize uint32

	// ifaceVA remembers where each PRR's register page is mapped in this
	// space (0 = not mapped), so the kernel can demap on reclaim.
	ifaceVA map[int]uint32

	// Guest program + its execution environment.
	Guest Guest
	Env   *Env

	// kdata is the VA of this PD's kernel-resident descriptor; the world
	// switch touches it so per-PD kernel state competes for cache space.
	kdata uint32

	// Virtual timer state: the timer advances only while the VM runs
	// (vCPU active state, Table I row "Platform-specific timer"): parked
	// on switch-out with the remaining time preserved, re-armed on
	// switch-in.
	timerEvent     *simclock.Event
	timerRemaining simclock.Cycles

	// Portal IPC state (call/reply through PD-object capabilities):
	// callers queue on the callee, the callee replies to the caller it
	// last received from; a caller parks its outgoing word and resumes
	// when ipcReply is posted.
	ipcCallers  []*PD
	replyTo     *PD
	recvBlocked bool
	ipcWord     uint32
	ipcReply    uint32

	// idleWaiting marks a PD blocked in paravirtualized idle (HcSuspend
	// mode 1): any vIRQ injection wakes it, and its virtual timer keeps
	// running while it sleeps.
	idleWaiting bool

	// frozen marks a checkpointed template (or a warm, not-yet-activated
	// clone): the PD keeps its address space and kernel objects but never
	// wakes — injections are dropped by wake() and its virtual timer is
	// parked. Cleared only by ActivateClone.
	frozen bool

	// clone is non-nil on PDs forked from a checkpoint image (clone.go):
	// the private frame arena, the backing image, and the COW counters.
	clone *cloneState

	// lastHcEntry is the entry timestamp of the most recent hypercall,
	// recorded so a restored guest can replay the suspend exit (probe and
	// trace span) exactly as the uninterrupted timeline would have.
	lastHcEntry simclock.Cycles

	// QoS guard state (manager-portal admission, see qos.go): the token
	// bucket and breaker are touched by this PD's own hypercall path and
	// — for failure charges — by barrier commits; reconfigFault latches a
	// failed reconfiguration for the next HcHwTaskStatus poll
	// (clear-on-read), under the same ownership discipline.
	bucket        fault.TokenBucket
	breaker       fault.Breaker
	reconfigFault bool

	// Coroutine plumbing.
	resumeCh chan resumeCmd
	doneCh   chan struct{}
	dead     bool

	// node is the PD's handle on the scheduling subsystem (intrusive;
	// lives on its home core's runqueue when runnable).
	node sched.Node

	// Statistics.
	Switches   uint64
	Hypercalls uint64
	Faults     uint64
}

// Name returns the PD's human-readable name.
func (pd *PD) Name() string { return pd.Name_ }

// Dead reports whether the guest's Main has returned.
func (pd *PD) Dead() bool { return pd.dead }

// Env is the per-PD view of the machine handed to guest code: its
// ExecContext plus the entry points a de-privileged guest may use.
type Env struct {
	K   *Kernel
	PD  *PD
	Ctx *cpu.ExecContext
}

// Hypercall issues SWI n with up to four arguments, as the paravirtualized
// port layer does for every sensitive operation (§III-A). The trap is
// taken on the PD's home core.
func (e *Env) Hypercall(n int, args ...uint32) uint32 {
	var a [4]uint32
	copy(a[:], args)
	return e.PD.Core.CPU.SWI(n, a)
}

// Preempted reports whether the kernel wants the core back (quantum
// expiry or a higher-priority PD became ready). Guests poll it between
// chunks.
func (e *Env) Preempted() bool { return e.PD.Core.needResched }

// PendingVIRQ drains and dispatches injected virtual interrupts through
// the VM's registered IRQ entry — the model's equivalent of taking the
// injected jump on return to guest context (§III-B).
func (e *Env) PendingVIRQ() {
	v := e.PD.VGIC
	if !v.HasPending() || v.Entry == nil {
		return
	}
	for _, irq := range v.DrainPending() {
		e.Ctx.Exec(12) // guest-side vector dispatch
		v.Entry(irq)
	}
}

// Now returns the simulated time as this PD's core sees it (guests read
// their own core's counter; cores drift within an epoch in parallel runs).
func (e *Env) Now() simclock.Cycles { return e.PD.Core.Clock.Now() }
