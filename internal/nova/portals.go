package nova

import (
	"repro/internal/abi"
	"repro/internal/capspace"
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/simclock"
)

// Object-capability selector conventions above the service-portal range
// (abi.NumPortalSelectors). Selectors are space-local: these constants
// only describe where the kernel installs each capability at boot; a
// domain that was never delegated the object simply has an empty slot.
const (
	// SelSelf is every PD's capability to its own PD object (full
	// rights: the PD may delegate its IPC identity and revoke it).
	SelSelf = abi.NumPortalSelectors + 0
	// SelDataSect is the PD's registered hardware-task data section
	// (memory-region object created by HcRegionCreate).
	SelDataSect = abi.NumPortalSelectors + 1

	// Manager-side device capabilities, delegated by RegisterHwService.
	SelMgrQueue = abi.NumPortalSelectors + 2 // hw-request queue semaphore
	SelMgrPCAP  = abi.NumPortalSelectors + 3 // PCAP/reconfiguration pipeline
	SelMgrStore = abi.NumPortalSelectors + 4 // bitstream store region

	// SelMgrSlotBase + prr: the fabric's hardware-task slot objects
	// (window of maxPRRSlots selectors; AttachFabric guards it).
	SelMgrSlotBase = abi.NumPortalSelectors + 16
	// SelMgrClientBase + pd.ID: client PD objects (the handles the
	// manager acts on when reclaiming or loading DMA windows; window of
	// maxClientPDs selectors, guarded at delegation).
	SelMgrClientBase = SelMgrSlotBase + maxPRRSlots

	// SelGrantBase is where DelegateIPC places peer capabilities —
	// strictly above every fixed window, so delegations can never
	// silently overwrite a conventional capability.
	SelGrantBase = SelMgrClientBase + maxClientPDs
)

// Fixed-window capacities. Exceeding one is a topology the selector
// layout cannot express; the delegation sites panic loudly instead of
// silently aliasing a neighbouring window.
const (
	maxPRRSlots  = 16
	maxClientPDs = 64
)

// Kernel root-space selectors: the kernel mints its device objects into
// its own space (the boot domain) and delegates them from there.
const (
	rootSelQueue    = 0
	rootSelPCAP     = 1
	rootSelStore    = 2
	rootSelSlotBase = 8 // + prr
)

// portalFn is a portal handler: the kernel code a resolved portal
// capability transfers control to.
type portalFn func(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32

// portalDesc is the payload of an ObjPortal service object: the handler
// plus its modelled path length in instructions (the kernel code the
// handler executes after decode + capability resolution).
type portalDesc struct {
	fn   portalFn
	cost int
}

// capStatus maps a capability-resolution failure to its ABI status code.
func capStatus(e capspace.Err) uint32 {
	switch e {
	case capspace.ErrBadSel:
		return StatusBadSel
	case capspace.ErrRevoked:
		return StatusRevoked
	case capspace.ErrBadType:
		return StatusBadType
	case capspace.ErrDenied:
		return StatusDenied
	}
	return StatusErr
}

// newPortal mints one service-portal object.
func newPortal(name string, cost int, fn portalFn) *capspace.Object {
	return capspace.NewObject(capspace.ObjPortal, name, &portalDesc{fn: fn, cost: cost})
}

// buildPortalObjects mints the global service-portal objects (shared by
// every space; what differs per PD is which capabilities its table
// holds, and with what rights). Costs are the handler path lengths the
// old dispatch table charged.
func (k *Kernel) buildPortalObjects() {
	p := make([]*capspace.Object, abi.NumPortalSelectors)

	p[HcNull] = newPortal("null", 18, portalNull)
	p[HcPrint] = newPortal("print", 30, portalPrint)
	p[HcVMID] = newPortal("vmid", 20, portalVMID)
	p[HcYield] = newPortal("yield", 28, portalYield)
	p[HcTimerSet] = newPortal("timer_set", 55, portalTimerSet)
	p[HcTimerCancel] = newPortal("timer_cancel", 35, portalTimerCancel)
	p[HcIRQEnable] = newPortal("irq_enable", 45, portalIRQEnable)
	p[HcIRQDisable] = newPortal("irq_disable", 45, portalIRQDisable)
	p[HcIRQEOI] = newPortal("irq_eoi", 32, portalIRQEOI)
	p[HcCacheFlush] = newPortal("cache_flush", 60, portalCacheFlush)
	p[HcTLBFlush] = newPortal("tlb_flush", 40, portalTLBFlush)
	p[HcMapPage] = newPortal("map_page", 90, portalMapPage)
	p[HcUnmapPage] = newPortal("unmap_page", 80, portalUnmapPage)
	p[HcRegionCreate] = newPortal("region_create", 85, portalRegionCreate)
	p[HcDACRSwitch] = newPortal("dacr_switch", 30, portalDACRSwitch)
	p[HcHwTaskRequest] = newPortal("hwtask_request", 95, portalHwTaskRequest)
	p[HcHwTaskRelease] = newPortal("hwtask_release", 70, portalHwTaskRelease)
	p[HcHwTaskStatus] = newPortal("hwtask_status", 40, portalHwTaskStatus)
	p[HcPortalCall] = newPortal("portal_call", 70, portalIPCCall)
	p[HcPortalRecv] = newPortal("portal_recv", 60, portalIPCRecv)
	p[HcUARTWrite] = newPortal("uart_write", 35, portalUARTWrite)
	p[HcUARTRead] = newPortal("uart_read", 35, portalUARTRead)
	p[HcSDRead] = newPortal("sd_read", 120, portalSDRead)
	p[HcSDWrite] = newPortal("sd_write", 120, portalSDWrite)
	p[HcSuspend] = newPortal("suspend", 40, portalSuspend)

	p[HcMgrNextRequest] = newPortal("mgr_next_request", 50, portalMgrNextRequest)
	p[HcMgrMapIface] = newPortal("mgr_map_iface", 110, portalMgrMapIface)
	p[HcMgrUnmapIface] = newPortal("mgr_unmap_iface", 70, portalMgrUnmapIface)
	p[HcMgrHwMMULoad] = newPortal("mgr_hwmmu_load", 45, portalMgrHwMMULoad)
	p[HcMgrPCAPStart] = newPortal("mgr_pcap_start", 85, portalMgrPCAPStart)
	p[HcMgrComplete] = newPortal("mgr_complete", 60, portalMgrComplete)
	p[HcMgrAllocIRQ] = newPortal("mgr_alloc_irq", 75, portalMgrAllocIRQ)

	k.portalObjs = p
}

// populateCaps installs a fresh PD's capability table: the guest-visible
// service portals (call-only — guests cannot delegate kernel portals),
// the PD's own object (full rights), and whatever the boot grants name.
func (k *Kernel) populateCaps(pd *PD, grants Capability) {
	for sel := 0; sel < NumHypercalls; sel++ {
		r := capspace.RightCall
		if sel == HcSDWrite && grants&CapIODirect == 0 {
			// The portal is present in every table, but without the I/O
			// grant the capability carries no rights: invoking it is a
			// rights failure (Denied), not an unknown selector.
			r = 0
		}
		pd.Space.Insert(sel, k.portalObjs[sel], r)
	}
	if grants&CapHwManager != 0 {
		for sel := NumHypercalls; sel < abi.NumPortalSelectors; sel++ {
			pd.Space.Insert(sel, k.portalObjs[sel], capspace.RightCall)
		}
	}
	pd.selfObj = capspace.NewObject(capspace.ObjPD, pd.Name_, pd)
	pd.Space.Insert(SelSelf, pd.selfObj, capspace.RightsAll)
}

// DelegateIPC copies pd's PD-object capability into to's space
// (call-only), making pd a portal-call destination for to. Returns the
// selector minted in to's space. This is the kernel API harnesses use to
// wire IPC topologies at boot; the delegation flows through pd's own
// self capability, so it is counted in pd's delegation stats and dies
// with a revocation of pd's identity.
func (k *Kernel) DelegateIPC(pd, to *PD) (int, error) {
	sel, err := pd.Space.DelegateFree(SelSelf, to.Space, SelGrantBase, capspace.RightCall)
	if err != capspace.OK {
		return -1, err
	}
	return sel, nil
}

// CapStats aggregates capability traffic across the kernel's root space
// and every PD's table (replay-deterministic; folded into scenario
// checksums).
func (k *Kernel) CapStats() capspace.Stats {
	total := k.rootSpace.Stats
	for _, pd := range k.PDs {
		total.Add(pd.Space.Stats)
	}
	return total
}

// IPCFastCalls counts portal calls that took the same-core synchronous
// handoff fast path (summed over the per-core shards).
func (k *Kernel) IPCFastCalls() uint64 {
	var n uint64
	for _, c := range k.Cores {
		n += c.ipcFastCalls
	}
	return n
}

// writeConsole appends one byte to the shared console. The console is a
// single serialized device: concurrent cores defer the write to the
// barrier so the stream (part of scenario digests) orders by simulated
// time, not host interleaving.
func (k *Kernel) writeConsole(c *CoreCtx, b byte) {
	if len(k.Cores) == 1 || k.inCommit {
		k.Console.WriteByte(b)
	} else {
		k.post(c, func() { k.Console.WriteByte(b) })
	}
	c.Clock.Advance(CostDeviceAccess)
}

// --- Guest service portals (the paper's 25 hypercalls) ---------------

func portalNull(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return StatusOK
}

func portalPrint(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	k.writeConsole(c, byte(args[0]))
	return StatusOK
}

// portalVMID resolves the caller's own PD object — the identity read is
// a real capability lookup, so a domain that revoked its self
// capability has no VMID. Failures return StatusErr (all-ones), never a
// small status code: the reply channel carries the ID itself, and a
// legitimate PD ID must stay distinguishable from an error.
func portalVMID(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	obj, err := pd.Space.Lookup(SelSelf, capspace.ObjPD, capspace.RightCall)
	if err != capspace.OK {
		return StatusErr
	}
	return uint32(obj.Payload.(*PD).ID)
}

func portalYield(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	c.quantumExpired = true
	c.needResched = true
	return StatusOK
}

func portalTimerSet(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcTimerSet(pd, simclock.Cycles(args[0]))
}

func portalTimerCancel(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	k.parkVirtualTimer(pd)
	pd.VCPU.TimerPeriod = 0
	pd.timerRemaining = 0
	return StatusOK
}

func portalIRQEnable(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	irq := int(args[0])
	if irq == gic.PrivateTimerIRQ {
		pd.VGIC.Register(irq) // virtual timer PPI: self-service
	}
	if !pd.VGIC.Enable(irq) {
		return StatusDenied
	}
	if physicalLine(irq) && pd == c.Current {
		k.GIC.Enable(irq)
		c.Clock.Advance(CostDeviceAccess)
	}
	return StatusOK
}

func portalIRQDisable(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	irq := int(args[0])
	if !pd.VGIC.Disable(irq) {
		return StatusDenied
	}
	if physicalLine(irq) {
		k.GIC.Disable(irq)
		c.Clock.Advance(CostDeviceAccess)
	}
	return StatusOK
}

func portalIRQEOI(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if !pd.VGIC.EOI(int(args[0])) {
		return StatusInval
	}
	return StatusOK
}

func portalCacheFlush(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	c.CPU.CP15Write(cpu.CP15DCCISW, 0)
	return StatusOK
}

func portalTLBFlush(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	c.CPU.CP15Write(cpu.CP15TLBIASID, uint32(pd.ASID))
	return StatusOK
}

func portalMapPage(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcMapPage(c, pd, args[0], args[1])
}

func portalUnmapPage(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcUnmapPage(c, pd, args[0])
}

func portalRegionCreate(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcRegionCreate(pd, args[0], args[1])
}

func portalDACRSwitch(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	guestKernelCtx := args[0] != 0
	d := dacrFor(guestKernelCtx)
	pd.VCPU.DACR = d
	c.CPU.CP15Write(cpu.CP15DACR, d)
	return StatusOK
}

func portalHwTaskRequest(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcHwTaskRequest(c, pd, HwReqAcquire, args)
}

func portalHwTaskRelease(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcHwTaskRequest(c, pd, HwReqRelease, args)
}

func portalHwTaskStatus(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcHwTaskStatus(c, pd, args[0])
}

func portalIPCCall(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcPortalCall(c, pd, int(args[0]), args[1])
}

func portalIPCRecv(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcPortalRecv(c, pd, args[0], args[1])
}

func portalUARTWrite(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	k.writeConsole(c, byte(args[0]))
	return StatusOK
}

func portalUARTRead(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	c.Clock.Advance(CostDeviceAccess)
	return 0 // no input source modelled; returns "no data"
}

func portalSDRead(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcSD(c, pd, args[0], args[1], false)
}

// portalSDWrite needs no explicit I/O check: a PD without CapIODirect
// holds the capability with no rights, so resolution already failed
// with Denied before the handler could run.
func portalSDWrite(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	return k.hcSD(c, pd, args[0], args[1], true)
}

func portalSuspend(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if args[0] == 1 {
		// Paravirtualized idle: sleep until a virtual interrupt is
		// injected (the guest's WFI). A pending injection returns
		// immediately.
		if pd.VGIC.HasPending() {
			return StatusOK
		}
		pd.idleWaiting = true
		pd.Env.block()
		pd.idleWaiting = false
		return StatusOK
	}
	pd.Env.block()
	return StatusOK
}

// --- Hardware Task Manager portals (§IV-E, Fig. 7) -------------------
//
// Each handler re-resolves the device capabilities the operation needs
// from the *caller's* space: the portals are reachable only in a domain
// they were delegated to, and the objects they act on (queue, slots,
// PCAP, store, client PDs) must additionally be held — the manager's
// powers are exactly the set of capabilities RegisterHwService
// delegated, not an ambient privilege bit.

func portalMgrNextRequest(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if _, err := pd.Space.Lookup(SelMgrQueue, capspace.ObjSem, capspace.RightCall); err != capspace.OK {
		return capStatus(err)
	}
	return k.mgrNextRequest(c, pd)
}

func portalMgrComplete(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if _, err := pd.Space.Lookup(SelMgrQueue, capspace.ObjSem, capspace.RightCall); err != capspace.OK {
		return capStatus(err)
	}
	return k.mgrComplete(c, pd, args[0], args[1])
}

// slotCap resolves the caller's capability to PRR prr's hardware-task
// slot object.
func slotCap(pd *PD, prr int) (uint32, bool) {
	if prr < 0 {
		return StatusBadSel, false
	}
	if _, err := pd.Space.Lookup(SelMgrSlotBase+prr, capspace.ObjHwSlot, capspace.RightCall); err != capspace.OK {
		return capStatus(err), false
	}
	return StatusOK, true
}

// clientCap resolves the caller's capability to client PD pdID.
func clientCap(pd *PD, pdID int) (*PD, uint32, bool) {
	if pdID < 0 {
		return nil, StatusBadSel, false
	}
	obj, err := pd.Space.Lookup(SelMgrClientBase+pdID, capspace.ObjPD, capspace.RightCall)
	if err != capspace.OK {
		return nil, capStatus(err), false
	}
	return obj.Payload.(*PD), StatusOK, true
}

func portalMgrMapIface(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	prr := int(args[1])
	if st, ok := slotCap(pd, prr); !ok {
		return st
	}
	return k.mgrMapIface(c, args[0], prr)
}

func portalMgrUnmapIface(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	client, st, ok := clientCap(pd, int(args[0]))
	if !ok {
		return st
	}
	if st, ok := slotCap(pd, int(args[1])); !ok {
		return st
	}
	return k.mgrUnmapIface(c, pd, client, int(args[1]))
}

func portalMgrHwMMULoad(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	client, st, ok := clientCap(pd, int(args[0]))
	if !ok {
		return st
	}
	if st, ok := slotCap(pd, int(args[1])); !ok {
		return st
	}
	return k.mgrHwMMULoad(c, client, int(args[1]))
}

func portalMgrPCAPStart(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if _, err := pd.Space.Lookup(SelMgrPCAP, capspace.ObjPortal, capspace.RightCall); err != capspace.OK {
		return capStatus(err)
	}
	store, err := pd.Space.Lookup(SelMgrStore, capspace.ObjMemRegion, capspace.RightCall)
	if err != capspace.OK {
		return capStatus(err)
	}
	if st, ok := slotCap(pd, int(args[3])); !ok {
		return st
	}
	return k.mgrPCAPStart(c, args[0], args[1], args[2], int(args[3]), store.Payload.(regionWindow))
}

func portalMgrAllocIRQ(k *Kernel, c *CoreCtx, pd *PD, args [4]uint32) uint32 {
	if st, ok := slotCap(pd, int(args[1])); !ok {
		return st
	}
	return k.mgrAllocIRQ(c, args[0], int(args[1]))
}
