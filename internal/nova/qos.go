package nova

// QoS guard on the Hardware Task Manager portal (ROADMAP item 3): the
// manager service is shared by every VM, so without admission control a
// greedy guest hammering HcHwTaskRequest steals manager cycles — and,
// worse, PCAP bandwidth — from its critical neighbours. The kernel
// enforces two per-client guards at the portal itself, before a request
// ever reaches the service PD:
//
//   - a token bucket paces each client's acquire rate; an empty bucket
//     answers StatusThrottled and the request never enters the queue;
//   - a circuit breaker scores each client's reconfiguration pressure
//     (every launched download charges it, a *failed* one charges it
//     FaultWeight-fold); past TripAt the breaker opens for Cooldown
//     cycles and the portal answers StatusRetry.
//
// Clients at or above CriticalPriority bypass both guards — the §III-D
// priority model already ranks them above general guests, and the QoS
// layer must never add jitter to the critical path it protects.
//
// All guard state advances on simulated cycles only, touched either by
// the client's own core goroutine (admission) or inside barrier commits
// (failure charges), so parallel runs replay the sequential decision
// sequence exactly.

import (
	"repro/internal/fault"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// QoSConfig parameterizes the manager-portal admission guards. The zero
// value disables both (Enabled reports false).
type QoSConfig struct {
	// BucketCapacity is each client's token-bucket depth; 0 disables
	// rate admission.
	BucketCapacity uint32
	// RefillEvery is the cycles between single-token refills (default
	// 1 ms when rate admission is on).
	RefillEvery simclock.Cycles

	// TripAt is the breaker score that opens a client's circuit; 0
	// disables the breaker.
	TripAt uint32
	// DecayEvery is the cycles per point of breaker-score leak (default
	// 1 ms when the breaker is on).
	DecayEvery simclock.Cycles
	// Cooldown is how long an open breaker rejects before it re-closes
	// (default 10 ms).
	Cooldown simclock.Cycles
	// FaultWeight is the breaker charge for a *failed* reconfiguration,
	// against 1 for a launch (default 4).
	FaultWeight uint32

	// CriticalPriority is the PD priority at (or above) which clients
	// bypass admission entirely (default PrioService).
	CriticalPriority int
}

// Enabled reports whether any guard is configured.
func (q QoSConfig) Enabled() bool { return q.BucketCapacity != 0 || q.TripAt != 0 }

// withDefaults fills the knobs left zero.
func (q QoSConfig) withDefaults() QoSConfig {
	if q.RefillEvery == 0 {
		q.RefillEvery = simclock.FromMillis(1)
	}
	if q.DecayEvery == 0 {
		q.DecayEvery = simclock.FromMillis(1)
	}
	if q.Cooldown == 0 {
		q.Cooldown = simclock.FromMillis(10)
	}
	if q.FaultWeight == 0 {
		q.FaultWeight = 4
	}
	if q.CriticalPriority == 0 {
		q.CriticalPriority = PrioService
	}
	return q
}

// EnableQoS arms the manager-portal admission guards with cfg and
// initializes the per-client guard state of every existing PD; domains
// created later are armed at creation. Call before Run.
func (k *Kernel) EnableQoS(cfg QoSConfig) {
	if !cfg.Enabled() {
		return
	}
	k.qos = cfg.withDefaults()
	k.qosOn = true
	for _, pd := range k.PDs {
		k.initQoS(pd)
	}
}

// initQoS arms pd's guard state from the active config.
func (k *Kernel) initQoS(pd *PD) {
	pd.bucket = fault.TokenBucket{Capacity: k.qos.BucketCapacity, RefillEvery: k.qos.RefillEvery}
	pd.breaker = fault.Breaker{TripAt: k.qos.TripAt, DecayEvery: k.qos.DecayEvery, Cooldown: k.qos.Cooldown}
}

// admitHwRequest runs the portal guards for an acquire from pd on its
// home core c. StatusOK admits; StatusThrottled / StatusRetry bounce the
// request before it touches the manager queue.
func (k *Kernel) admitHwRequest(c *CoreCtx, pd *PD) uint32 {
	if !k.qosOn || pd == k.hwSvc || pd.Priority >= k.qos.CriticalPriority {
		return StatusOK
	}
	now := c.Clock.Now()
	if pd.breaker.Open(now) {
		return StatusRetry
	}
	if !pd.bucket.Take(now) {
		if k.Tracer != nil {
			k.Tracer.Core(c.ID).Emit(now, trace.KindQoSThrottle,
				0, uint64(pd.ID), pd.bucket.Denials)
		}
		return StatusThrottled
	}
	return StatusOK
}

// QoSCounters returns pd's guard ledger — bucket denials, breaker trips
// and open-circuit rejections — for scenario digests.
func (k *Kernel) QoSCounters(pd *PD) (denials, trips, rejections uint64) {
	return pd.bucket.Denials, pd.breaker.Trips, pd.breaker.Rejections
}

// PRRQuarantined reports whether the reconfiguration pipeline has pulled
// PRR prr from the placement pool (repeated config faults). The manager
// service consults it during PRR selection; it runs on the pipeline's
// core, so the read is race-free by the ownership discipline.
func (k *Kernel) PRRQuarantined(prr int) bool {
	if k.Reconfig == nil {
		return false
	}
	return k.Reconfig.Quarantined(prr)
}
