package nova

import "repro/internal/simclock"

// Scheduler is Mini-NOVA's preemptive priority-based round-robin scheduler
// (paper §III-D, Fig. 3). PDs live in one of two groups: the run queue —
// ready to execute, organized as one double-linked circle per priority
// level — and the suspend queue, holding PDs "that are not necessarily
// schedulable to avoid wasting the CPU resource" (user services such as
// the Hardware Task Manager wait there until invoked).
type Scheduler struct {
	rings   [NumPriorities]*PD // head of each priority circle (nil = empty)
	quantum simclock.Cycles
}

// NewScheduler builds a scheduler with the given default time quantum.
func NewScheduler(quantum simclock.Cycles) *Scheduler {
	return &Scheduler{quantum: quantum}
}

// Quantum returns the configured time slice.
func (s *Scheduler) Quantum() simclock.Cycles { return s.quantum }

// Enqueue inserts a PD into its priority circle (run queue), at the tail —
// i.e. just before the current head, preserving round-robin order.
func (s *Scheduler) Enqueue(pd *PD) {
	if pd.inRunQueue {
		return
	}
	pd.inRunQueue = true
	head := s.rings[pd.Priority]
	if head == nil {
		pd.next, pd.prev = pd, pd
		s.rings[pd.Priority] = pd
		return
	}
	tail := head.prev
	tail.next, pd.prev = pd, tail
	pd.next, head.prev = head, pd
}

// Dequeue removes a PD from the run queue (moving it to the conceptual
// suspend queue; suspended PDs are simply not linked anywhere).
func (s *Scheduler) Dequeue(pd *PD) {
	if !pd.inRunQueue {
		return
	}
	pd.inRunQueue = false
	if pd.next == pd {
		s.rings[pd.Priority] = nil
	} else {
		pd.prev.next = pd.next
		pd.next.prev = pd.prev
		if s.rings[pd.Priority] == pd {
			s.rings[pd.Priority] = pd.next
		}
	}
	pd.next, pd.prev = nil, nil
}

// Pick returns the PD to run now: the head of the highest non-empty
// priority circle ("the scheduler selects the highest-priority PD in the
// run queue and dispatches the vCPU attached to it").
func (s *Scheduler) Pick() *PD {
	for p := NumPriorities - 1; p >= 0; p-- {
		if s.rings[p] != nil {
			return s.rings[p]
		}
	}
	return nil
}

// Rotate advances a priority circle after its head exhausted a quantum,
// giving the next PD of the same level its turn.
func (s *Scheduler) Rotate(prio int) {
	if s.rings[prio] != nil {
		s.rings[prio] = s.rings[prio].next
	}
}

// RingLen counts the PDs at one priority level.
func (s *Scheduler) RingLen(prio int) int {
	head := s.rings[prio]
	if head == nil {
		return 0
	}
	n, p := 1, head.next
	for p != head {
		n++
		p = p.next
	}
	return n
}

// InRunQueue reports whether pd is currently schedulable.
func (s *Scheduler) InRunQueue(pd *PD) bool { return pd.inRunQueue }
