package nova

import "testing"

func mkPD(id, prio int) *PD {
	return &PD{ID: id, Name_: "pd", Priority: prio}
}

func TestPickHighestPriority(t *testing.T) {
	s := NewScheduler(1000)
	low := mkPD(0, PrioGuest)
	high := mkPD(1, PrioService)
	s.Enqueue(low)
	s.Enqueue(high)
	if got := s.Pick(); got != high {
		t.Errorf("Pick = %s(%d), want the service-priority PD", got.Name_, got.Priority)
	}
	s.Dequeue(high)
	if got := s.Pick(); got != low {
		t.Error("Pick did not fall back to lower priority")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	s := NewScheduler(1000)
	var pds []*PD
	for i := 0; i < 3; i++ {
		pd := mkPD(i, PrioGuest)
		pds = append(pds, pd)
		s.Enqueue(pd)
	}
	// Rotation must cycle 0 -> 1 -> 2 -> 0.
	for round := 0; round < 6; round++ {
		want := pds[round%3]
		if got := s.Pick(); got != want {
			t.Fatalf("round %d: Pick = pd%d, want pd%d", round, got.ID, want.ID)
		}
		s.Rotate(PrioGuest)
	}
}

func TestDequeueMidRing(t *testing.T) {
	s := NewScheduler(1000)
	var pds []*PD
	for i := 0; i < 4; i++ {
		pd := mkPD(i, PrioGuest)
		pds = append(pds, pd)
		s.Enqueue(pd)
	}
	s.Dequeue(pds[1])
	s.Dequeue(pds[3])
	if n := s.RingLen(PrioGuest); n != 2 {
		t.Fatalf("ring len = %d, want 2", n)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		seen[s.Pick().ID] = true
		s.Rotate(PrioGuest)
	}
	if !seen[0] || !seen[2] {
		t.Errorf("remaining ring = %v, want {0,2}", seen)
	}
}

func TestDequeueHeadAdjusts(t *testing.T) {
	s := NewScheduler(1000)
	a, b := mkPD(0, PrioGuest), mkPD(1, PrioGuest)
	s.Enqueue(a)
	s.Enqueue(b)
	s.Dequeue(a) // removing the head must promote b
	if got := s.Pick(); got != b {
		t.Error("head removal did not promote the next PD")
	}
	s.Dequeue(b)
	if s.Pick() != nil {
		t.Error("empty scheduler still picks")
	}
}

func TestDoubleEnqueueIdempotent(t *testing.T) {
	s := NewScheduler(1000)
	a := mkPD(0, PrioGuest)
	s.Enqueue(a)
	s.Enqueue(a)
	if n := s.RingLen(PrioGuest); n != 1 {
		t.Errorf("double enqueue produced ring of %d", n)
	}
	s.Dequeue(a)
	s.Dequeue(a) // and double dequeue is harmless
	if s.Pick() != nil {
		t.Error("PD still schedulable after dequeue")
	}
}

func TestEnqueuePreservesRRWindow(t *testing.T) {
	// A re-enqueued PD goes to the tail: the current head keeps its turn.
	s := NewScheduler(1000)
	a, b, c := mkPD(0, PrioGuest), mkPD(1, PrioGuest), mkPD(2, PrioGuest)
	s.Enqueue(a)
	s.Enqueue(b)
	s.Dequeue(a)
	s.Enqueue(c)
	s.Enqueue(a) // back at the tail, after c
	order := []int{}
	for i := 0; i < 3; i++ {
		order = append(order, s.Pick().ID)
		s.Rotate(PrioGuest)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
