package nova

import (
	"repro/internal/abi"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// dualKernel boots a 2-core kernel with a partitioned scheduler.
func dualKernel() *Kernel {
	k := NewKernelSMP(2)
	k.Sched = sched.NewPartitioned(2, simclock.FromMillis(DefaultQuantumMs))
	return k
}

func TestSMPPartitionedGuestsBothProgress(t *testing.T) {
	k := dualKernel()
	defer k.Shutdown()
	ran := make([]simclock.Cycles, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.CreatePD(PDConfig{
			Name: "g", Priority: PrioGuest, Affinity: sched.MaskOf(i),
			Guest: &scriptGuest{"g", func(env *Env) {
				for {
					start := env.Now()
					env.Ctx.Exec(200)
					ran[i] += env.Now() - start
					env.CheckPreempt()
				}
			}},
		})
	}
	if k.PDs[0].Core.ID != 0 || k.PDs[1].Core.ID != 1 {
		t.Fatalf("homes = %d/%d, want 0/1", k.PDs[0].Core.ID, k.PDs[1].Core.ID)
	}
	k.RunFor(simclock.FromMillis(20))
	if ran[0] == 0 || ran[1] == 0 {
		t.Fatalf("per-core progress = %v, both cores must run", ran)
	}
	// The interleaved cores share the global clock roughly evenly when
	// both are CPU-bound.
	ratio := float64(ran[0]) / float64(ran[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("core time split %v (ratio %.2f), want near-even", ran, ratio)
	}
	if k.Cores[0].Current != k.PDs[0] || k.Cores[1].Current != k.PDs[1] {
		t.Error("PDs not resident on their pinned cores")
	}
	for i, c := range k.Cores {
		if u := c.Utilization(k.Clock.Now()); u < 0.3 {
			t.Errorf("core %d utilization = %.2f, want busy", i, u)
		}
	}
}

func TestCrossCoreWakeRaisesSGI(t *testing.T) {
	// The receiver (service priority) blocks on core 1 while a guest
	// spins there; a sender on core 0 must preempt the spinner across
	// cores, which travels as a reschedule SGI on core 1's interface.
	k := dualKernel()
	defer k.Shutdown()
	var got, reply uint32
	server := k.CreatePD(PDConfig{
		Name: "recv", Priority: PrioService, Affinity: sched.MaskOf(1),
		Guest: &scriptGuest{"recv", func(env *Env) {
			got = env.Hypercall(HcPortalRecv, abi.RecvBlock) // blocked on core 1
			env.Hypercall(HcPortalRecv, abi.RecvReply, 0x77) // reply the caller
			for {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}},
	})
	k.CreatePD(PDConfig{
		Name: "spin1", Priority: PrioGuest, Affinity: sched.MaskOf(1),
		Guest: &scriptGuest{"spin1", func(env *Env) {
			for {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}},
	})
	var sel uint32
	client := k.CreatePD(PDConfig{
		Name: "send", Priority: PrioGuest, Affinity: sched.MaskOf(0),
		Guest: &scriptGuest{"send", func(env *Env) {
			// Let core 1 reach steady state (receiver blocked, spinner
			// running) before calling.
			for env.Now() < simclock.FromMillis(2) {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
			reply = env.Hypercall(HcPortalCall, sel, 0xBEEF)
			for {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}},
	})
	s, err := k.DelegateIPC(server, client)
	if err != nil {
		t.Fatalf("DelegateIPC: %v", err)
	}
	sel = uint32(s)
	k.RunFor(simclock.FromMillis(5))
	if got&0xFF_FFFF != 0xBEEF {
		t.Fatalf("cross-core IPC word = %#x, want 0xBEEF", got&0xFF_FFFF)
	}
	if reply != 0x77 {
		t.Fatalf("caller's reply = %#x, want 0x77", reply)
	}
	if s := k.GIC.Stats(); s.SGIsSent == 0 {
		t.Error("cross-core wake of a higher-priority PD sent no SGI")
	}
	// A cross-core handoff must not count as the same-core fast path.
	if k.IPCFastCalls() != 0 {
		t.Errorf("cross-core call took the same-core fast path (%d)", k.IPCFastCalls())
	}
}

func TestCrossCoreWakeLatency(t *testing.T) {
	// A service pinned on core 1 woken while core 0's guest is mid-
	// quantum must run long before the guest's 33 ms quantum expires:
	// the wake breaks the active window and the SGI forces core 1 to
	// reschedule.
	k := dualKernel()
	defer k.Shutdown()
	var wokenAt, ranAt simclock.Cycles
	svc := k.CreatePD(PDConfig{
		Name: "svc", Priority: PrioService, Affinity: sched.MaskOf(1),
		StartSuspended: true,
		Guest: &scriptGuest{"svc", func(env *Env) {
			ranAt = env.Now()
			env.Hypercall(HcSuspend)
		}},
	})
	k.CreatePD(PDConfig{
		Name: "hog", Priority: PrioGuest, Affinity: sched.MaskOf(0),
		Guest: &scriptGuest{"hog", func(env *Env) {
			for {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}},
	})
	k.Clock.After(simclock.FromMillis(2), func(now simclock.Cycles) {
		wokenAt = now
		// The callback rides core 0's clock; the wake crosses to core 1
		// through the epoch committer like any cross-core effect.
		k.wakeFrom(k.Cores[0], svc)
	})
	k.RunFor(simclock.FromMillis(10))
	if ranAt == 0 {
		t.Fatal("service never ran on core 1")
	}
	latency := ranAt - wokenAt
	if latency > simclock.FromMicros(100) {
		t.Errorf("cross-core wake latency = %v, want well under the quantum", latency)
	}
	if svc.Core.ID != 1 {
		t.Errorf("service homed on core %d, want 1", svc.Core.ID)
	}
}

func TestPerCoreUtilizationIdleCore(t *testing.T) {
	k := dualKernel()
	defer k.Shutdown()
	k.CreatePD(PDConfig{
		Name: "busy", Priority: PrioGuest, Affinity: sched.MaskOf(0),
		Guest: &scriptGuest{"busy", func(env *Env) {
			for {
				env.Ctx.Exec(200)
				env.CheckPreempt()
			}
		}},
	})
	k.RunFor(simclock.FromMillis(20))
	now := k.Clock.Now()
	u0, u1 := k.Cores[0].Utilization(now), k.Cores[1].Utilization(now)
	if u0 < 0.9 {
		t.Errorf("busy core utilization = %.2f, want ~1", u0)
	}
	if u1 > 0.01 {
		t.Errorf("idle core utilization = %.2f, want ~0", u1)
	}
}

func TestDualCoreHwServicePinnedEndToEnd(t *testing.T) {
	// The paper's intended deployment: the Hardware Task Manager service
	// owns core 1, a guest on core 0 acquires and runs a hardware task —
	// the full §IV-E flow crossing cores via SGI, with the guest's core
	// never world-switching to the service.
	k := dualKernel()
	defer k.Shutdown()
	f := fabricForTest(k)

	svc := k.CreatePD(PDConfig{Name: "hwtm", Priority: PrioService, Caps: CapHwManager,
		Affinity: sched.MaskOf(1), StartSuspended: true,
		Guest: &scriptGuest{"hwtm", func(env *Env) {
			reqID := env.Hypercall(HcMgrNextRequest)
			for {
				view, ok := k.MgrRequest(reqID)
				if !ok {
					t.Error("MgrRequest lookup failed")
					return
				}
				env.Ctx.Exec(500)
				env.Hypercall(HcMgrMapIface, reqID, 0)
				env.Hypercall(HcMgrHwMMULoad, uint32(view.ClientID), 0)
				env.Hypercall(HcMgrAllocIRQ, reqID, 0)
				reqID = env.Hypercall(HcMgrComplete, reqID, StatusOK)
			}
		}}})
	k.RegisterHwService(svc)

	f.RegisterCore(1, loopbackCore{})
	bs := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 100}, 256)
	if err := f.LoadConfiguration(0, bs); err != nil {
		t.Fatal(err)
	}

	var reqStatus, plIRQ uint32
	guest := k.CreatePD(PDConfig{Name: "g", Priority: PrioGuest, Affinity: sched.MaskOf(0),
		Guest: &scriptGuest{"g", func(env *Env) {
			env.PD.VGIC.Entry = func(irq int) {
				plIRQ = uint32(irq)
				env.Hypercall(HcIRQEOI, uint32(irq))
			}
			for i := uint32(0); i < 16; i++ {
				env.Hypercall(HcMapPage, GuestDataSect+i*0x1000, 0x20_0000+i*0x1000)
			}
			env.Hypercall(HcRegionCreate, GuestDataSect, 16*0x1000)
			reqStatus = env.Hypercall(HcHwTaskRequest, 1, GuestIfaceBase, GuestDataSect)
			if reqStatus != StatusOK {
				return
			}
			env.Ctx.Store32(GuestIfaceBase+pl.RegSrc, 0x100)
			env.Ctx.Store32(GuestIfaceBase+pl.RegDst, 0x200)
			env.Ctx.Store32(GuestIfaceBase+pl.RegLen, 64)
			env.Ctx.Store32(GuestIfaceBase+pl.RegCtrl, pl.CtrlStart|pl.CtrlIRQEn)
			for plIRQ == 0 {
				env.Ctx.Exec(100)
				env.CheckPreempt()
			}
		}}})
	k.RunFor(simclock.FromMillis(5))

	if reqStatus != StatusOK {
		t.Fatalf("hw task request status = %d, want OK", reqStatus)
	}
	if plIRQ < gic.PLIRQBase {
		t.Fatalf("vIRQ id = %d, want a PL line", plIRQ)
	}
	if svc.Core.ID != 1 || guest.Core.ID != 0 {
		t.Fatalf("placement svc=%d guest=%d, want 1/0", svc.Core.ID, guest.Core.ID)
	}
	// The PL completion line must have been routed to the guest's core.
	if got := k.GIC.TargetOf(int(plIRQ)); got != 0 {
		t.Errorf("PL IRQ targeted at core %d, want the guest's core 0", got)
	}
	// The guest's core never hosted the service: with the service resident
	// on core 1 the request path needs no world switch on core 0.
	if svc.Switches == 0 {
		t.Error("service never switched in on core 1")
	}
	if k.Cores[1].Current != svc {
		t.Error("service not resident on core 1")
	}
	if s := k.GIC.Stats(); s.SGIsSent == 0 {
		t.Error("no SGIs sent for the cross-core request flow")
	}
	for _, ph := range []string{"mgr_entry", "mgr_exit"} {
		if k.Probes.Get(ph).Count == 0 {
			t.Errorf("probe %s empty", ph)
		}
	}
}
