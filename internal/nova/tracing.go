package nova

import (
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Tracing wiring: EnableTrace attaches per-core bounded event rings and a
// metrics registry to the kernel, then points every instrumented subsystem
// (scheduler, vGICs, reconfiguration pipeline) at them. Tracing is
// strictly read-only with respect to simulated state — no emission ever
// advances a clock, touches a probe the scenario digest hashes, or
// iterates a map — so a traced run produces byte-identical scenario
// checksums to an untraced one.
//
// Ring writer discipline: each per-core ring is written only by the
// goroutine that logically holds that core — mid-epoch by the core's own
// host goroutine, at the barrier by the single-threaded commit replay —
// so rings need no locks even under RunParallel.

// EnableTrace switches tracing on with the given per-core ring capacity
// (<= 0 selects trace.DefaultCapacity). Idempotent: a second call returns
// the existing tracer. Call it before guests run so rings catch the whole
// scenario; PDs created afterwards are hooked up automatically.
func (k *Kernel) EnableTrace(capacity int) *trace.Tracer {
	if k.Tracer != nil {
		return k.Tracer
	}
	t := trace.New(len(k.Cores), capacity)
	t.SelectorName = k.portalName
	t.PDName = func(id int) string {
		if id >= 0 && id < len(k.PDs) {
			return k.PDs[id].Name_
		}
		return ""
	}
	k.Tracer = t
	k.trHypercall = t.Metrics.Histogram("hypercall_cycles", nil)
	k.trIPC = t.Metrics.Histogram("ipc_call_cycles", nil)
	k.trSwitch = t.Metrics.Histogram("vm_switch_cycles", nil)
	k.trWakes = t.Metrics.Counter("sched_wakes")
	k.trInjects = t.Metrics.Counter("vgic_injects")
	if o, ok := k.Sched.(sched.Observable); ok {
		o.SetObserver(kernelSchedObserver{k})
	}
	for _, pd := range k.PDs {
		k.traceVGIC(pd)
	}
	if k.Reconfig != nil {
		k.Reconfig.Trace = t.Core(k.reconfigCore().ID)
	}
	return t
}

// portalName resolves a hypercall selector to its portal object's name
// (empty when out of range, so the exporter falls back to sel_N).
func (k *Kernel) portalName(sel int) string {
	if sel >= 0 && sel < len(k.portalObjs) && k.portalObjs[sel] != nil {
		return k.portalObjs[sel].Name
	}
	return ""
}

// kernelSchedObserver forwards runqueue transitions into the owning
// core's ring. Under the kernel's discipline every Enqueue/Dequeue runs
// on the node's home core or inside the single-threaded barrier commit,
// both of which may write that core's ring.
type kernelSchedObserver struct{ k *Kernel }

func (o kernelSchedObserver) Enqueued(n *sched.Node) {
	pd, ok := n.Owner.(*PD)
	if !ok || pd.Core == nil {
		return
	}
	o.k.Tracer.Core(pd.Core.ID).Emit(pd.Core.Clock.Now(),
		trace.KindSchedWake, 0, uint64(pd.ID), uint64(pd.Priority))
	o.k.trWakes.Inc()
}

func (o kernelSchedObserver) Dequeued(n *sched.Node) {
	pd, ok := n.Owner.(*PD)
	if !ok || pd.Core == nil {
		return
	}
	o.k.Tracer.Core(pd.Core.ID).Emit(pd.Core.Clock.Now(),
		trace.KindSchedBlock, 0, uint64(pd.ID), 0)
}

func (o kernelSchedObserver) Rotated(cpu, prio int) {
	if cpu < 0 || cpu >= len(o.k.Cores) {
		return
	}
	o.k.Tracer.Core(cpu).Emit(o.k.Cores[cpu].Clock.Now(),
		trace.KindSchedRotate, 0, uint64(prio), 0)
}

// traceVGIC points one PD's vGIC transition hook at its core's ring.
func (k *Kernel) traceVGIC(pd *PD) {
	if pd.VGIC == nil {
		return
	}
	pd.VGIC.Trace = func(kind trace.Kind, irq int) {
		if pd.Core == nil {
			return
		}
		k.Tracer.Core(pd.Core.ID).Emit(pd.Core.Clock.Now(),
			kind, 0, uint64(irq), uint64(pd.ID))
		if kind == trace.KindVGICInject {
			k.trInjects.Inc()
		}
	}
}

// traceCompletionIRQ records the completion-interrupt delivery that closes
// a reconfiguration flow, on the owning client's core.
func (k *Kernel) traceCompletionIRQ(own pcapOwner, irq int) {
	if k.Tracer == nil || own.pd.Core == nil {
		return
	}
	k.Tracer.Core(own.pd.Core.ID).Emit(own.pd.Core.Clock.Now(),
		trace.KindCompletionIRQ, own.flow, uint64(irq), uint64(own.pd.ID))
}

// traceHwReq closes the client-side span of one hardware-task request:
// from hypercall entry to the wake that delivered the reply. Emitted
// after resume (req.ID is stable by then on both the same-core and
// cross-core paths), backdated to the entry stamp.
func (k *Kernel) traceHwReq(c *CoreCtx, t0 simclock.Cycles, req *HwRequest) {
	if k.Tracer == nil {
		return
	}
	now := c.Clock.Now()
	k.Tracer.Core(c.ID).EmitSpan(t0, since(now, t0),
		trace.KindHwReq, uint64(req.ID), uint64(req.TaskID), uint64(req.reply))
}
