package nova

import (
	"repro/internal/cpu"
	"repro/internal/simclock"
)

// VCPU holds, in kernel memory, "the states of hardware resources that are
// used by the virtual machine" (paper §III-A, Table I). Resources split
// into two classes:
//
//   - actively switched on every VM switch: general-purpose registers, the
//     virtual timer, the privileged coprocessor state (TTBR/DACR/ASID) and
//     the GIC mask set (via the vGIC);
//   - lazily switched: the VFP context and L2 cache control settings,
//     which are "relatively less frequently accessed and quite expensive
//     to save". The VFP context moves only when a VM actually executes a
//     VFP instruction after a switch (UND trap, cpu.UndefVFP).
type VCPU struct {
	// Active-switch state (Table I, rows 1–2 and 4–6).
	Regs cpu.Regs // general-purpose registers + CPSR

	// Privileged CP15 state programmed on switch-in.
	TTBR uint32
	DACR uint32
	ASID uint8

	// Virtual timer: period and phase of the guest's tick (0 = off).
	TimerPeriod simclock.Cycles

	// Lazy-switch state (Table I, VFP + L2 control).
	VFP      [cpu.VFPContextWords]uint32
	VFPValid bool // context holds real state (saved at least once)
	L2Ctrl   uint32

	// Quantum bookkeeping: remaining slice, preserved across preemption
	// (paper §III-D: "its time quantum is also resumed so that its total
	// execution time slice is constant").
	QuantumLeft simclock.Cycles
}

// vcpuActiveWords is how many 32-bit words the active switch moves; the
// world-switch path charges one kernel data access per word, so the cost
// scales with Table I's active set rather than a magic constant.
const vcpuActiveWords = 17 /* r0-r15 + cpsr */ + 4 /* ttbr,dacr,asid,timer */

// The PD's kernel descriptor also holds its capability table (the
// per-PD window of §III-A's capability interface): 8-byte slots —
// object pointer + rights/generation word — starting capTableOff into
// the descriptor. The hypercall dispatcher touches the resolved slot's
// line on every capability lookup, so cap-table state competes for
// cache space exactly like the vCPU words above (one of Table III's
// per-VM working-set growth mechanisms). Only the low capTableMask+1
// selectors alias distinct modelled lines; higher selectors wrap.
const (
	capTableOff  = 0x200
	capSlotBytes = 8
	capTableMask = 63
)

// SaveActive copies the CPU's live register file into the vCPU.
func (v *VCPU) SaveActive(c *cpu.CPU) {
	v.Regs = c.Regs
	v.TTBR = c.CP15Read(cpu.CP15TTBR0)
	v.DACR = c.CP15Read(cpu.CP15DACR)
	v.ASID = uint8(c.CP15Read(cpu.CP15CONTEXTIDR))
}

// RestoreActive programs the CPU with the vCPU's active state. The CP15
// writes bump the CPU's translation generation, which is what invalidates
// every ExecContext micro-TLB — the architectural effect of an address-
// space switch.
func (v *VCPU) RestoreActive(c *cpu.CPU) {
	c.Regs = v.Regs
	c.CP15Write(cpu.CP15TTBR0, v.TTBR)
	c.CP15Write(cpu.CP15CONTEXTIDR, uint32(v.ASID))
	c.CP15Write(cpu.CP15DACR, v.DACR)
}
