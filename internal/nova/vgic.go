package nova

import "repro/internal/gic"

// VGIC is one virtual machine's virtual interrupt controller (paper
// §III-B, Fig. 2): a record list of the interrupt lines the VM uses, each
// entry tracking the virtual state of that line, plus the VM's registered
// IRQ entry. The physical GIC stays under exclusive kernel control; on
// every VM switch the kernel masks the outgoing VM's lines and unmasks the
// incoming VM's enabled lines (§III-B).
type VGIC struct {
	// entries is indexed by physical interrupt ID.
	entries map[int]*virq

	// Entry is the VM's IRQ handler entry point, registered by the guest.
	// The kernel "injects" a virtual IRQ by scheduling this callback to
	// run in guest context (the guest's RunSlice drains pending vIRQs).
	Entry func(irq int)

	// pending vIRQs injected while the VM was not running (Fig. 6: "the
	// IRQ state remains the same until the next time the VM is scheduled").
	pending []int

	// Injected counts total injections (for the experiment probes).
	Injected uint64
}

type virq struct {
	enabled   bool
	inService bool // injected, not yet EOI'd by the guest
}

// NewVGIC returns an empty vGIC.
func NewVGIC() *VGIC {
	return &VGIC{entries: make(map[int]*virq)}
}

// Register adds an interrupt line to the VM's record list (disabled).
func (v *VGIC) Register(irq int) {
	if _, ok := v.entries[irq]; !ok {
		v.entries[irq] = &virq{}
	}
}

// Unregister removes a line (task released, VM torn down).
func (v *VGIC) Unregister(irq int) { delete(v.entries, irq) }

// Enable marks a registered line enabled; reports whether the line exists.
func (v *VGIC) Enable(irq int) bool {
	e, ok := v.entries[irq]
	if ok {
		e.enabled = true
	}
	return ok
}

// Disable masks a line in the vGIC.
func (v *VGIC) Disable(irq int) bool {
	e, ok := v.entries[irq]
	if ok {
		e.enabled = false
	}
	return ok
}

// Owns reports whether the line is in this VM's record list.
func (v *VGIC) Owns(irq int) bool {
	_, ok := v.entries[irq]
	return ok
}

// EnabledLines lists the lines the kernel must unmask when this VM runs.
func (v *VGIC) EnabledLines() []int {
	var out []int
	for irq, e := range v.entries {
		if e.enabled {
			out = append(out, irq)
		}
	}
	return out
}

// AllLines lists every registered line (masked on switch-out).
func (v *VGIC) AllLines() []int {
	out := make([]int, 0, len(v.entries))
	for irq := range v.entries {
		out = append(out, irq)
	}
	return out
}

// Inject queues a virtual interrupt for delivery. The caller (kernel IRQ
// path) has already EOI'd the physical GIC; "it is the guest OS'
// responsibility to manage its own vIRQ state" from here (§III-B).
func (v *VGIC) Inject(irq int) bool {
	e, ok := v.entries[irq]
	if !ok || !e.enabled || e.inService {
		return false
	}
	e.inService = true
	v.pending = append(v.pending, irq)
	v.Injected++
	return true
}

// EOI completes a previously injected vIRQ, allowing re-injection.
func (v *VGIC) EOI(irq int) bool {
	e, ok := v.entries[irq]
	if !ok || !e.inService {
		return false
	}
	e.inService = false
	return true
}

// DrainPending pops all queued injections in arrival order. The guest's
// run loop calls this and dispatches each through its IRQ entry.
func (v *VGIC) DrainPending() []int {
	p := v.pending
	v.pending = nil
	return p
}

// HasPending reports whether injected vIRQs await delivery.
func (v *VGIC) HasPending() bool { return len(v.pending) > 0 }

// ApplyToGIC programs the physical distributor for a VM switch: when
// active, this VM's enabled lines are unmasked; otherwise all its lines
// are masked. Returns the number of distributor operations performed so
// the world-switch path can charge their cost (the per-line GIC writes are
// part of the paper's switch overhead).
func (v *VGIC) ApplyToGIC(g *gic.GIC, active bool) int {
	ops := 0
	for irq, e := range v.entries {
		if active && e.enabled {
			g.Enable(irq)
		} else {
			g.Disable(irq)
		}
		ops++
	}
	return ops
}
