package nova

import (
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/gic"
	"repro/internal/trace"
)

// VGIC is one virtual machine's virtual interrupt controller (paper
// §III-B, Fig. 2): a record list of the interrupt lines the VM uses, each
// entry tracking the virtual state of that line, plus the VM's registered
// IRQ entry. The physical GIC stays under exclusive kernel control; on
// every VM switch the kernel masks the outgoing VM's lines and unmasks the
// incoming VM's enabled lines (§III-B).
type VGIC struct {
	// entries is indexed by physical interrupt ID.
	entries map[int]*virq

	// order is the record list proper: every registered IRQ ID in
	// ascending order. All iteration over the record list (EnabledLines,
	// AllLines, ApplyToGIC) walks this slice, never the map, so the
	// distributor-op sequence is identical run to run — map iteration
	// order leaked straight into the GIC programming order before.
	order []int

	// Entry is the VM's IRQ handler entry point, registered by the guest.
	// The kernel "injects" a virtual IRQ by scheduling this callback to
	// run in guest context (the guest's RunSlice drains pending vIRQs).
	Entry func(irq int)

	// pending vIRQs injected while the VM was not running (Fig. 6: "the
	// IRQ state remains the same until the next time the VM is scheduled").
	pending []int

	// Injected counts total injections (for the experiment probes).
	Injected uint64

	// Relatched counts injections that arrived while the line was still
	// in service and were latched for redelivery at EOI — the
	// level-triggered re-raise a storm produces.
	Relatched uint64

	// Trace, when set, receives every vGIC state transition
	// (KindVGICInject / KindVGICEOI / KindVGICRelatch). The kernel's
	// tracing layer points this at the owning core's event ring; it runs
	// synchronously on whatever goroutine performed the operation and
	// must not mutate vGIC state.
	Trace func(kind trace.Kind, irq int)
}

type virq struct {
	enabled   bool
	inService bool // injected, not yet EOI'd by the guest
	rePending bool // re-raised while inService; redelivered on EOI
}

// NewVGIC returns an empty vGIC.
func NewVGIC() *VGIC {
	return &VGIC{entries: make(map[int]*virq)}
}

// Register adds an interrupt line to the VM's record list (disabled).
func (v *VGIC) Register(irq int) {
	if _, ok := v.entries[irq]; ok {
		return
	}
	v.entries[irq] = &virq{}
	i := sort.SearchInts(v.order, irq)
	v.order = append(v.order, 0)
	copy(v.order[i+1:], v.order[i:])
	v.order[i] = irq
}

// Unregister removes a line (task released, VM torn down), purging every
// trace of it: a queued-but-undelivered injection must not dispatch after
// the VM released the line, and a fresh Register must start from a clean
// (not in-service) state.
func (v *VGIC) Unregister(irq int) {
	if _, ok := v.entries[irq]; !ok {
		return
	}
	delete(v.entries, irq)
	i := sort.SearchInts(v.order, irq)
	v.order = append(v.order[:i], v.order[i+1:]...)
	kept := v.pending[:0]
	for _, p := range v.pending {
		if p != irq {
			kept = append(kept, p)
		}
	}
	v.pending = kept
}

// Enable marks a registered line enabled; reports whether the line exists.
func (v *VGIC) Enable(irq int) bool {
	e, ok := v.entries[irq]
	if ok {
		e.enabled = true
	}
	return ok
}

// Disable masks a line in the vGIC. A latched re-raise is dropped: the
// guest explicitly masked the source, so redelivering it on EOI would
// resurrect an interrupt the guest asked not to see.
func (v *VGIC) Disable(irq int) bool {
	e, ok := v.entries[irq]
	if ok {
		e.enabled = false
		e.rePending = false
	}
	return ok
}

// Owns reports whether the line is in this VM's record list.
func (v *VGIC) Owns(irq int) bool {
	_, ok := v.entries[irq]
	return ok
}

// EnabledLines lists, in ascending IRQ order, the lines the kernel must
// unmask when this VM runs.
func (v *VGIC) EnabledLines() []int {
	var out []int
	for _, irq := range v.order {
		if v.entries[irq].enabled {
			out = append(out, irq)
		}
	}
	return out
}

// AllLines lists every registered line in ascending IRQ order (masked on
// switch-out).
func (v *VGIC) AllLines() []int {
	out := make([]int, len(v.order))
	copy(out, v.order)
	return out
}

// Inject queues a virtual interrupt for delivery. The caller (kernel IRQ
// path) has already EOI'd the physical GIC; "it is the guest OS'
// responsibility to manage its own vIRQ state" from here (§III-B).
//
// A line that is still in service (injected, not yet EOI'd) latches a
// re-pending bit instead of dropping the event: the source is
// level-triggered, so the interrupt is redelivered when the guest EOIs.
// Returns whether a new injection was queued now.
func (v *VGIC) Inject(irq int) bool {
	e, ok := v.entries[irq]
	if !ok || !e.enabled {
		return false
	}
	if e.inService {
		if !e.rePending {
			e.rePending = true
			v.Relatched++
			if v.Trace != nil {
				v.Trace(trace.KindVGICRelatch, irq)
			}
		}
		return false
	}
	e.inService = true
	v.pending = append(v.pending, irq)
	v.Injected++
	if v.Trace != nil {
		v.Trace(trace.KindVGICInject, irq)
	}
	return true
}

// EOI completes a previously injected vIRQ. A re-raise latched while the
// line was in service is re-injected immediately, so level-triggered
// interrupts are never lost under storms.
func (v *VGIC) EOI(irq int) bool {
	e, ok := v.entries[irq]
	if !ok || !e.inService {
		return false
	}
	e.inService = false
	if v.Trace != nil {
		v.Trace(trace.KindVGICEOI, irq)
	}
	if e.rePending && e.enabled {
		e.rePending = false
		e.inService = true
		v.pending = append(v.pending, irq)
		v.Injected++
		if v.Trace != nil {
			v.Trace(trace.KindVGICInject, irq)
		}
	}
	return true
}

// DrainPending pops all queued injections in arrival order. The guest's
// run loop calls this and dispatches each through its IRQ entry.
func (v *VGIC) DrainPending() []int {
	p := v.pending
	v.pending = nil
	return p
}

// HasPending reports whether injected vIRQs await delivery.
func (v *VGIC) HasPending() bool { return len(v.pending) > 0 }

// snapshotLines captures the record list (IRQ, enable, in-service and
// re-pend bits, in ascending IRQ order) and the queued injections for a
// checkpoint image. Both slices are fresh copies.
func (v *VGIC) snapshotLines() (lines []checkpoint.VGICLine, pending []int) {
	lines = make([]checkpoint.VGICLine, 0, len(v.order))
	for _, irq := range v.order {
		e := v.entries[irq]
		lines = append(lines, checkpoint.VGICLine{
			IRQ: irq, Enabled: e.enabled, InService: e.inService, RePending: e.rePending,
		})
	}
	return lines, append([]int(nil), v.pending...)
}

// restoreLines rebuilds the vGIC from a checkpoint capture, replacing
// whatever record list existed. Counters (Injected/Relatched) are the
// restored VM's own and start at zero on a fresh clone; an in-place
// restore keeps the PD's live counters by design — they are cumulative
// activity statistics, not vCPU state.
func (v *VGIC) restoreLines(lines []checkpoint.VGICLine, pending []int) {
	v.entries = make(map[int]*virq, len(lines))
	v.order = v.order[:0]
	for _, l := range lines {
		v.entries[l.IRQ] = &virq{enabled: l.Enabled, inService: l.InService, rePending: l.RePending}
		v.order = append(v.order, l.IRQ)
	}
	v.pending = append([]int(nil), pending...)
}

// ApplyToGIC programs the physical distributor for a VM switch on cpu:
// when active, this VM's enabled lines are unmasked; otherwise all its
// lines are masked. The record list is walked in ascending IRQ order, so
// the distributor-op sequence is deterministic. Banked (per-CPU) lines are
// programmed only on cpu's own bank — world switches on different cores
// run concurrently in parallel mode and must not touch each other's banked
// enable state. Returns the number of distributor operations performed so
// the world-switch path can charge their cost (the per-line GIC writes are
// part of the paper's switch overhead).
func (v *VGIC) ApplyToGIC(g *gic.GIC, active bool, cpu int) int {
	ops := 0
	for _, irq := range v.order {
		if active && v.entries[irq].enabled {
			g.EnableOn(cpu, irq)
		} else {
			g.DisableOn(cpu, irq)
		}
		ops++
	}
	return ops
}
