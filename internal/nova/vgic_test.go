package nova

import (
	"sort"
	"testing"

	"repro/internal/gic"
)

// The record list must come back in ascending IRQ order no matter the
// registration order: the world-switch path programs the physical
// distributor straight from these slices, so any order instability leaks
// into the GIC op sequence (and from there into the simulated timeline).
func TestVGICLinesSorted(t *testing.T) {
	// A scrambled registration order over enough lines that map iteration
	// would essentially never come back sorted by accident.
	irqs := []int{61, 40, 75, 29, 63, 70, 62, 68, 64, 76, 66, 71, 65, 69, 67, 72, 73, 74, 32, 45}
	v := NewVGIC()
	for _, irq := range irqs {
		v.Register(irq)
		v.Enable(irq)
	}
	for name, lines := range map[string][]int{"all": v.AllLines(), "enabled": v.EnabledLines()} {
		if len(lines) != len(irqs) {
			t.Fatalf("%s: got %d lines, want %d", name, len(lines), len(irqs))
		}
		if !sort.IntsAreSorted(lines) {
			t.Errorf("%s lines not in ascending order: %v", name, lines)
		}
	}
	// Disabled lines drop out of EnabledLines but stay in AllLines.
	v.Disable(63)
	if got := len(v.EnabledLines()); got != len(irqs)-1 {
		t.Errorf("enabled lines after disable = %d, want %d", got, len(irqs)-1)
	}
	if got := len(v.AllLines()); got != len(irqs) {
		t.Errorf("all lines after disable = %d, want %d", got, len(irqs))
	}
}

// ApplyToGIC must perform the same distributor ops in the same order on
// every call with equal state — two vGICs holding the same lines must
// drive the GIC identically regardless of registration history.
func TestVGICApplyToGICDeterministic(t *testing.T) {
	build := func(order []int) *VGIC {
		v := NewVGIC()
		for _, irq := range order {
			v.Register(irq)
			if irq%2 == 0 {
				v.Enable(irq)
			}
		}
		return v
	}
	fwd := []int{61, 62, 63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76}
	rev := make([]int, len(fwd))
	for i, irq := range fwd {
		rev[len(fwd)-1-i] = irq
	}
	a, b := build(fwd), build(rev)

	ga, gb := gic.New(), gic.New()
	if ops := a.ApplyToGIC(ga, true, 0); ops != len(fwd) {
		t.Fatalf("ops = %d, want %d", ops, len(fwd))
	}
	b.ApplyToGIC(gb, true, 0)
	for _, irq := range fwd {
		if ga.IsEnabled(irq) != gb.IsEnabled(irq) {
			t.Errorf("irq %d enable state diverged across registration orders", irq)
		}
	}
	if got, want := a.AllLines(), b.AllLines(); len(got) != len(want) {
		t.Fatalf("record lists diverged: %v vs %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("record lists diverged at %d: %v vs %v", i, got, want)
			}
		}
	}
}

// A line re-raised while in service (storm: the device fires again before
// the guest EOIs) must be redelivered at EOI, not silently dropped.
func TestVGICRelatchOnEOI(t *testing.T) {
	v := NewVGIC()
	irq := gic.PLIRQBase
	v.Register(irq)
	v.Enable(irq)

	if !v.Inject(irq) {
		t.Fatal("first injection refused")
	}
	if v.Inject(irq) {
		t.Fatal("in-service injection claimed immediate delivery")
	}
	if v.Relatched != 1 {
		t.Fatalf("Relatched = %d, want 1", v.Relatched)
	}
	// Guest drains and handles the first delivery, then EOIs.
	if got := v.DrainPending(); len(got) != 1 || got[0] != irq {
		t.Fatalf("first drain = %v, want [%d]", got, irq)
	}
	if !v.EOI(irq) {
		t.Fatal("EOI refused")
	}
	// The latched re-raise must now be pending again.
	if !v.HasPending() {
		t.Fatal("re-raised interrupt lost: nothing pending after EOI")
	}
	if got := v.DrainPending(); len(got) != 1 || got[0] != irq {
		t.Fatalf("redelivery drain = %v, want [%d]", got, irq)
	}
	if v.Injected != 2 {
		t.Fatalf("Injected = %d, want 2 (original + redelivery)", v.Injected)
	}
	// The redelivery is itself in service until EOI'd; after that the
	// line is clean.
	if !v.EOI(irq) {
		t.Fatal("second EOI refused")
	}
	if v.HasPending() {
		t.Fatal("stale pending after final EOI")
	}
}

// Multiple re-raises before EOI collapse into one redelivery (the latch
// is a level, not a counter).
func TestVGICRelatchCoalesces(t *testing.T) {
	v := NewVGIC()
	irq := gic.PLIRQBase + 3
	v.Register(irq)
	v.Enable(irq)
	v.Inject(irq)
	for i := 0; i < 5; i++ {
		v.Inject(irq)
	}
	if v.Relatched != 1 {
		t.Fatalf("Relatched = %d, want 1 (coalesced)", v.Relatched)
	}
	v.DrainPending()
	v.EOI(irq)
	if got := v.DrainPending(); len(got) != 1 {
		t.Fatalf("redelivery drain = %v, want exactly one", got)
	}
}

// Disabling a line while its re-raise is latched drops the latch: the
// guest masked the source, so EOI must not resurrect it.
func TestVGICDisableClearsLatch(t *testing.T) {
	v := NewVGIC()
	irq := gic.PLIRQBase + 1
	v.Register(irq)
	v.Enable(irq)
	v.Inject(irq)
	v.Inject(irq) // latched
	v.Disable(irq)
	v.DrainPending()
	v.EOI(irq)
	if v.HasPending() {
		t.Fatal("masked line redelivered after EOI")
	}
}

// Unregister must purge queued injections and in-service state: a drained
// guest must never dispatch an interrupt for a line it already released,
// and a later re-registration starts clean.
func TestVGICUnregisterPurgesPending(t *testing.T) {
	v := NewVGIC()
	keep := gic.PLIRQBase
	gone := gic.PLIRQBase + 2
	for _, irq := range []int{keep, gone} {
		v.Register(irq)
		v.Enable(irq)
		if !v.Inject(irq) {
			t.Fatalf("injection refused for %d", irq)
		}
	}

	v.Unregister(gone)
	for _, irq := range v.DrainPending() {
		if irq == gone {
			t.Fatalf("dispatched vIRQ %d for an unregistered line", gone)
		}
	}
	if v.Owns(gone) {
		t.Fatal("unregistered line still owned")
	}

	// Re-register: the line must not carry the old in-service state —
	// a fresh injection must deliver immediately.
	v.Register(gone)
	v.Enable(gone)
	if !v.Inject(gone) {
		t.Fatal("injection on a re-registered line refused (stale in-service state)")
	}
	if got := v.DrainPending(); len(got) != 1 || got[0] != gone {
		t.Fatalf("drain after re-register = %v, want [%d]", got, gone)
	}
}
