package physmem

import (
	"fmt"
	"sync"
)

// Copy-on-write frame sharing. A checkpoint image pins the frames of a
// quiesced guest; each clone forked from the image takes one reference
// per mapped frame. Writes through a clone's read-only mapping break the
// share: the kernel copies the frame into the clone's private arena and
// drops the reference here. A pinned frame is never freed while the
// image exists, however many clones come and go; an unpinned frame is
// reclaimed when its last reference drops.
//
// The refcount table is shared by every core (parallel runs break COW
// concurrently on different clones), so it is mutex-guarded — unlike the
// frame tables themselves, whose safety argument (disjoint per-PD
// regions) rule in frame() still holds: shared frames are materialized
// once, under the lock, before any clone can read them.

// frameRef is the sharing state of one 4 KB frame.
type frameRef struct {
	refs   int32
	pinned bool
}

// cowTable holds a bus's refcounts, lazily built on first pin/share so
// buses that never checkpoint pay nothing.
type cowTable struct {
	mu     sync.Mutex
	frames map[Addr]*frameRef
}

func (b *Bus) cow() *cowTable {
	b.cowOnce.Do(func() { b.cowRefs = &cowTable{frames: map[Addr]*frameRef{}} })
	return b.cowRefs
}

// frameBase rounds a down to its frame base address.
func frameBase(a Addr) Addr { return a &^ (FrameSize - 1) }

// Materialize force-allocates the backing frame for a RAM address so
// later concurrent readers never race the lazy allocation in frame().
func (b *Bus) Materialize(a Addr) {
	if !isRAM(a) {
		panic(fmt.Sprintf("physmem: materialize of non-RAM address %#08x", uint32(a)))
	}
	b.frame(a)
}

// Pin marks the frame containing a as image-owned: it is materialized
// immediately and survives until Unpin, regardless of the refcount.
func (b *Bus) Pin(a Addr) {
	b.Materialize(a)
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	fb := frameBase(a)
	r := t.frames[fb]
	if r == nil {
		r = &frameRef{}
		t.frames[fb] = r
	}
	r.pinned = true
}

// Unpin releases the image's hold on the frame. If no clone references
// remain the frame is reclaimed.
func (b *Bus) Unpin(a Addr) {
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	fb := frameBase(a)
	r := t.frames[fb]
	if r == nil || !r.pinned {
		panic(fmt.Sprintf("physmem: unpin of unpinned frame %#08x", uint32(fb)))
	}
	r.pinned = false
	if r.refs == 0 {
		b.reclaim(t, fb)
	}
}

// Share takes one clone reference on the frame containing a.
func (b *Bus) Share(a Addr) {
	b.Materialize(a)
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	fb := frameBase(a)
	r := t.frames[fb]
	if r == nil {
		r = &frameRef{}
		t.frames[fb] = r
	}
	r.refs++
}

// Release drops one clone reference and returns the remaining count. The
// frame is reclaimed when the count reaches zero and no image pins it.
func (b *Bus) Release(a Addr) int {
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	fb := frameBase(a)
	r := t.frames[fb]
	if r == nil || r.refs == 0 {
		panic(fmt.Sprintf("physmem: release of unshared frame %#08x", uint32(fb)))
	}
	r.refs--
	if r.refs == 0 && !r.pinned {
		b.reclaim(t, fb)
	}
	return int(r.refs)
}

// Refs returns the clone reference count on the frame containing a.
func (b *Bus) Refs(a Addr) int {
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.frames[frameBase(a)]; r != nil {
		return int(r.refs)
	}
	return 0
}

// Pinned reports whether an image pins the frame containing a.
func (b *Bus) Pinned(a Addr) bool {
	t := b.cow()
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.frames[frameBase(a)]; r != nil {
		return r.pinned
	}
	return false
}

// Allocated reports whether the frame containing a has a backing buffer
// (reclaimed and never-touched frames read as zero once re-allocated).
func (b *Bus) Allocated(a Addr) bool {
	if a >= DDRBase && uint64(a) < uint64(DDRBase)+uint64(DDRSize) {
		return b.ddr[(a-DDRBase)>>FrameShift] != nil
	}
	if a >= OCMBase && uint64(a) < uint64(OCMBase)+uint64(OCMSize) {
		return b.ocm[(a-OCMBase)>>FrameShift] != nil
	}
	return false
}

// reclaim drops the backing buffer and the refcount entry. Caller holds
// the cow table lock.
func (b *Bus) reclaim(t *cowTable, fb Addr) {
	delete(t.frames, fb)
	if fb >= DDRBase && uint64(fb) < uint64(DDRBase)+uint64(DDRSize) {
		if b.ddr[(fb-DDRBase)>>FrameShift] != nil {
			b.ddr[(fb-DDRBase)>>FrameShift] = nil
			b.touched.Add(-1)
		}
		return
	}
	if b.ocm[(fb-OCMBase)>>FrameShift] != nil {
		b.ocm[(fb-OCMBase)>>FrameShift] = nil
		b.touched.Add(-1)
	}
}

// CopyFrame copies the 4 KB frame at src over the frame at dst (both
// frame-aligned RAM addresses). This is the COW break's data move; the
// caller charges its simulated cost.
func (b *Bus) CopyFrame(dst, src Addr) {
	if dst&(FrameSize-1) != 0 || src&(FrameSize-1) != 0 {
		panic(fmt.Sprintf("physmem: unaligned frame copy %#08x <- %#08x", uint32(dst), uint32(src)))
	}
	*b.frame(dst) = *b.frame(src)
}

// SnapshotFrame returns a copy of the frame's current contents (used by
// in-place checkpoint images, which own their bytes).
func (b *Bus) SnapshotFrame(a Addr) []byte {
	out := make([]byte, FrameSize)
	copy(out, b.frame(frameBase(a))[:])
	return out
}

// LoadFrame overwrites the frame at a with p (at most one frame).
func (b *Bus) LoadFrame(a Addr, p []byte) {
	if len(p) > FrameSize {
		panic("physmem: LoadFrame payload exceeds a frame")
	}
	copy(b.frame(frameBase(a))[:], p)
}
