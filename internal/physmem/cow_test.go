package physmem

import "testing"

func TestShareReleaseReclaims(t *testing.T) {
	b := NewBus()
	a := DDRBase + 0x40_0000
	if err := b.Write8(a, 0xAB); err != nil {
		t.Fatal(err)
	}
	before := b.TouchedFrames()
	b.Share(a)
	b.Share(a + 8) // same frame
	if got := b.Refs(a); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	if rem := b.Release(a); rem != 1 {
		t.Fatalf("remaining = %d, want 1", rem)
	}
	if !b.Allocated(a) {
		t.Fatal("frame reclaimed while still referenced")
	}
	if rem := b.Release(a); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
	if b.Allocated(a) {
		t.Fatal("unpinned frame not reclaimed at zero refs")
	}
	if got := b.TouchedFrames(); got != before-1 {
		t.Fatalf("touched = %d, want %d", got, before-1)
	}
	// A reclaimed frame reads as zero once re-touched.
	if v, _ := b.Read8(a); v != 0 {
		t.Fatalf("reclaimed frame read %#x, want 0", v)
	}
}

func TestPinnedFrameSurvivesLastRelease(t *testing.T) {
	b := NewBus()
	a := DDRBase + 0x80_0000
	if err := b.Write8(a, 0x5C); err != nil {
		t.Fatal(err)
	}
	b.Pin(a)
	b.Share(a)
	b.Release(a)
	if !b.Allocated(a) {
		t.Fatal("pinned frame reclaimed at zero refs")
	}
	if v, _ := b.Read8(a); v != 0x5C {
		t.Fatalf("pinned frame lost its contents: %#x", v)
	}
	b.Unpin(a)
	if b.Allocated(a) {
		t.Fatal("frame not reclaimed after unpin at zero refs")
	}
}

func TestUnpinWaitsForClones(t *testing.T) {
	b := NewBus()
	a := DDRBase + 0xC0_0000
	b.Pin(a)
	b.Share(a)
	b.Unpin(a)
	if !b.Allocated(a) {
		t.Fatal("frame with a live clone reference reclaimed on unpin")
	}
	if rem := b.Release(a); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
	if b.Allocated(a) {
		t.Fatal("frame survived its last reference after unpin")
	}
}

func TestCopyFrame(t *testing.T) {
	b := NewBus()
	src := DDRBase + 0x100_0000
	dst := DDRBase + 0x101_0000
	for i := Addr(0); i < 16; i++ {
		if err := b.Write8(src+i*7, byte(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	b.CopyFrame(dst, src)
	for i := Addr(0); i < 16; i++ {
		v, _ := b.Read8(dst + i*7)
		if v != byte(i)+1 {
			t.Fatalf("dst[%d] = %#x, want %#x", i*7, v, byte(i)+1)
		}
	}
}

func TestSnapshotLoadFrame(t *testing.T) {
	b := NewBus()
	a := DDRBase + 0x102_0000
	if err := b.Write8(a+5, 0x77); err != nil {
		t.Fatal(err)
	}
	snap := b.SnapshotFrame(a + 5) // any address within the frame
	if err := b.Write8(a+5, 0); err != nil {
		t.Fatal(err)
	}
	b.LoadFrame(a, snap)
	if v, _ := b.Read8(a + 5); v != 0x77 {
		t.Fatalf("restored frame read %#x, want 0x77", v)
	}
}
