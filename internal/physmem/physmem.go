// Package physmem models the physical address space of the Zynq-7000
// processing system: DDR DRAM, on-chip memory, and memory-mapped device
// windows (GIC, timers, the PL's PRR register groups through the AXI GP
// port, the PCAP configuration interface, ...).
//
// Memory is sparse: DDR frames are allocated on first touch, so modelling
// the paper's 512 MB part costs only what the workloads actually touch.
package physmem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Addr is a 32-bit physical address (the Zynq-7000 PS has a 4 GB map).
type Addr uint32

// Zynq-7000 physical memory map constants used across the repository.
// These mirror the technical reference manual (UG585) regions that the
// paper's platform exposes.
const (
	DDRBase Addr = 0x0010_0000 // DDR starts above the boot OCM alias
	DDRSize      = 512 << 20   // 512 MB part used in the paper

	OCMBase Addr = 0xFFFC_0000 // 256 KB on-chip memory
	OCMSize      = 256 << 10

	// AXI GP0 window: PRR controller register groups live here.
	AXIGP0Base Addr = 0x4000_0000
	AXIGP0Size      = 1 << 30

	GICDistBase Addr = 0xF8F0_1000
	GICCPUBase  Addr = 0xF8F0_0100
	PrivTimer   Addr = 0xF8F0_0600
	DevCfgBase  Addr = 0xF800_7000 // PCAP / device configuration interface
	UARTBase    Addr = 0xE000_0000
	SDIOBase    Addr = 0xE010_0000
)

// FrameShift is log2 of the sparse backing frame size (4 KB, matching the
// small-page granularity the MMU and the PRR mapping trick use).
const FrameShift = 12

// FrameSize is the sparse backing frame size in bytes.
const FrameSize = 1 << FrameShift

// Device is the interface MMIO peripherals implement. Accesses are
// word-oriented, as on the real AXI bus; off is the offset from the
// window base.
type Device interface {
	// Name identifies the device in errors and traces.
	Name() string
	// ReadReg returns the 32-bit register at off.
	ReadReg(off Addr) uint32
	// WriteReg stores the 32-bit register at off.
	WriteReg(off Addr, v uint32)
}

type window struct {
	base Addr
	size uint32
	dev  Device
}

// BusError describes an access that hit no RAM and no device window.
type BusError struct {
	Addr  Addr
	Write bool
}

func (e *BusError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("physmem: bus error on %s at %#08x", op, uint32(e.Addr))
}

// frameBuf is one 4 KB sparse backing frame.
type frameBuf [FrameSize]byte

// Bus is the physical interconnect: sparse DDR/OCM RAM plus MMIO windows.
// It is the single source of truth for physical state; the caches sit in
// front of it, the FPGA's AXI HP masters behind it.
//
// The sparse frames are kept in flat per-region pointer tables indexed by
// frame number (1 MB of pointers for the 512 MB DDR part) rather than a
// map: the table walk issues a RAM read on every TLB miss, which made the
// map lookup one of the hottest operations in the whole simulator.
type Bus struct {
	ddr     []*frameBuf // DDRSize/FrameSize entries, frame number indexed
	ocm     []*frameBuf
	touched atomic.Int64 // allocated frames, for the footprint report
	windows []window     // sorted by base

	// Copy-on-write frame sharing state (cow.go), built on first use.
	cowOnce sync.Once
	cowRefs *cowTable
}

// NewBus returns an empty bus with DDR and OCM RAM available.
func NewBus() *Bus {
	return &Bus{
		ddr: make([]*frameBuf, DDRSize/FrameSize),
		ocm: make([]*frameBuf, OCMSize/FrameSize),
	}
}

// MapDevice registers an MMIO window. Windows must not overlap each other.
func (b *Bus) MapDevice(base Addr, size uint32, dev Device) {
	for _, w := range b.windows {
		if base < w.base+Addr(w.size) && w.base < base+Addr(size) {
			panic(fmt.Sprintf("physmem: window %s overlaps %s", dev.Name(), w.dev.Name()))
		}
	}
	b.windows = append(b.windows, window{base, size, dev})
	sort.Slice(b.windows, func(i, j int) bool { return b.windows[i].base < b.windows[j].base })
}

// findWindow returns the device window containing a, or nil.
func (b *Bus) findWindow(a Addr) *window {
	i := sort.Search(len(b.windows), func(i int) bool {
		return b.windows[i].base+Addr(b.windows[i].size) > a
	})
	if i < len(b.windows) && b.windows[i].base <= a {
		return &b.windows[i]
	}
	return nil
}

// isRAM reports whether a falls in a RAM (DDR or OCM) region.
func isRAM(a Addr) bool {
	if a >= DDRBase && uint64(a) < uint64(DDRBase)+uint64(DDRSize) {
		return true
	}
	if a >= OCMBase && uint64(a) < uint64(OCMBase)+uint64(OCMSize) {
		return true
	}
	return false
}

// IsRAM reports whether the address is backed by RAM (vs device or hole).
func (b *Bus) IsRAM(a Addr) bool { return isRAM(a) }

// frame returns the backing frame for a RAM address, allocating on demand.
func (b *Bus) frame(a Addr) *frameBuf {
	var slot *(*frameBuf)
	if a >= DDRBase && uint64(a) < uint64(DDRBase)+uint64(DDRSize) {
		slot = &b.ddr[(a-DDRBase)>>FrameShift]
	} else {
		slot = &b.ocm[(a-OCMBase)>>FrameShift]
	}
	if *slot == nil {
		// Parallel runs keep concurrent cores off shared untouched frames:
		// bytes only move through per-PD regions (disjoint guest RAM bases,
		// page-table arenas carved at construction), while kernel text and
		// data traffic is cost-only — the caches track tag state and never
		// read the bus. A plain slot store is therefore safe; only the
		// global footprint counter is shared and needs to be atomic.
		*slot = new(frameBuf)
		b.touched.Add(1)
	}
	return *slot
}

// Read32 reads a 32-bit little-endian word. RAM reads are naturally-aligned
// within a frame; device reads are dispatched to the owning window.
func (b *Bus) Read32(a Addr) (uint32, error) {
	if isRAM(a) {
		f := b.frame(a)
		off := a & (FrameSize - 1)
		if off+4 <= FrameSize {
			return binary.LittleEndian.Uint32(f[off : off+4]), nil
		}
		// straddles frames: byte-by-byte
		var v uint32
		for i := Addr(0); i < 4; i++ {
			bb, err := b.Read8(a + i)
			if err != nil {
				return 0, err
			}
			v |= uint32(bb) << (8 * i)
		}
		return v, nil
	}
	if w := b.findWindow(a); w != nil {
		return w.dev.ReadReg(a - w.base), nil
	}
	return 0, &BusError{Addr: a}
}

// Write32 writes a 32-bit little-endian word.
func (b *Bus) Write32(a Addr, v uint32) error {
	if isRAM(a) {
		f := b.frame(a)
		off := a & (FrameSize - 1)
		if off+4 <= FrameSize {
			binary.LittleEndian.PutUint32(f[off:off+4], v)
			return nil
		}
		for i := Addr(0); i < 4; i++ {
			if err := b.Write8(a+i, byte(v>>(8*i))); err != nil {
				return err
			}
		}
		return nil
	}
	if w := b.findWindow(a); w != nil {
		w.dev.WriteReg(a-w.base, v)
		return nil
	}
	return &BusError{Addr: a, Write: true}
}

// Read8 reads one byte (RAM only; device windows are word-addressed).
func (b *Bus) Read8(a Addr) (byte, error) {
	if !isRAM(a) {
		return 0, &BusError{Addr: a}
	}
	return b.frame(a)[a&(FrameSize-1)], nil
}

// Write8 writes one byte (RAM only).
func (b *Bus) Write8(a Addr, v byte) error {
	if !isRAM(a) {
		return &BusError{Addr: a, Write: true}
	}
	b.frame(a)[a&(FrameSize-1)] = v
	return nil
}

// ReadBytes copies n bytes starting at a into a fresh slice. Used by DMA
// masters (PCAP, AXI HP) that move bulk data without CPU involvement.
func (b *Bus) ReadBytes(a Addr, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		v, err := b.Read8(a + Addr(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// WriteBytes stores p starting at a.
func (b *Bus) WriteBytes(a Addr, p []byte) error {
	for i, v := range p {
		if err := b.Write8(a+Addr(i), v); err != nil {
			return err
		}
	}
	return nil
}

// TouchedFrames reports how many distinct 4 KB frames have been allocated;
// the footprint report uses it as the resident-memory figure.
func (b *Bus) TouchedFrames() int { return int(b.touched.Load()) }
