package physmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRAMRoundTrip32(t *testing.T) {
	b := NewBus()
	addrs := []Addr{DDRBase, DDRBase + 4, DDRBase + 0x1000, OCMBase, OCMBase + 0x100}
	for i, a := range addrs {
		want := uint32(0xDEAD0000 + i)
		if err := b.Write32(a, want); err != nil {
			t.Fatalf("Write32(%#x): %v", a, err)
		}
		got, err := b.Read32(a)
		if err != nil {
			t.Fatalf("Read32(%#x): %v", a, err)
		}
		if got != want {
			t.Errorf("Read32(%#x) = %#x, want %#x", a, got, want)
		}
	}
}

func TestRAMZeroInitialized(t *testing.T) {
	b := NewBus()
	v, err := b.Read32(DDRBase + 0x2345_0 & ^Addr(3))
	if err != nil || v != 0 {
		t.Errorf("fresh RAM read = %#x,%v, want 0,nil", v, err)
	}
}

func TestFrameStraddle(t *testing.T) {
	b := NewBus()
	a := DDRBase + FrameSize - 2 // word crosses frame boundary
	if err := b.Write32(a, 0x11223344); err != nil {
		t.Fatalf("straddling write: %v", err)
	}
	got, err := b.Read32(a)
	if err != nil || got != 0x11223344 {
		t.Errorf("straddling read = %#x,%v want 0x11223344,nil", got, err)
	}
}

func TestBusErrorOnHole(t *testing.T) {
	b := NewBus()
	hole := Addr(0xF000_0000) // no RAM, no device
	if _, err := b.Read32(hole); err == nil {
		t.Error("read from hole succeeded, want BusError")
	}
	if err := b.Write32(hole, 1); err == nil {
		t.Error("write to hole succeeded, want BusError")
	}
	be, ok := func() (e *BusError, ok bool) {
		err := b.Write32(hole, 1)
		e, ok = err.(*BusError)
		return
	}()
	if !ok || !be.Write || be.Addr != hole {
		t.Errorf("BusError fields wrong: %+v ok=%v", be, ok)
	}
}

type fakeDev struct {
	name string
	regs map[Addr]uint32
	log  []Addr
}

func (d *fakeDev) Name() string { return d.name }
func (d *fakeDev) ReadReg(off Addr) uint32 {
	d.log = append(d.log, off)
	return d.regs[off]
}
func (d *fakeDev) WriteReg(off Addr, v uint32) { d.regs[off] = v }

func TestDeviceDispatch(t *testing.T) {
	b := NewBus()
	d := &fakeDev{name: "uart", regs: map[Addr]uint32{}}
	b.MapDevice(UARTBase, 0x1000, d)
	if err := b.Write32(UARTBase+0x30, 0x55); err != nil {
		t.Fatalf("device write: %v", err)
	}
	v, err := b.Read32(UARTBase + 0x30)
	if err != nil || v != 0x55 {
		t.Errorf("device read = %#x,%v want 0x55,nil", v, err)
	}
	if len(d.log) != 1 || d.log[0] != 0x30 {
		t.Errorf("device saw offsets %v, want [0x30]", d.log)
	}
}

func TestOverlappingWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping MapDevice did not panic")
		}
	}()
	b := NewBus()
	b.MapDevice(UARTBase, 0x1000, &fakeDev{name: "a", regs: map[Addr]uint32{}})
	b.MapDevice(UARTBase+0x800, 0x1000, &fakeDev{name: "b", regs: map[Addr]uint32{}})
}

func TestBulkBytes(t *testing.T) {
	b := NewBus()
	payload := make([]byte, 3*FrameSize+17)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	base := DDRBase + 0x100
	if err := b.WriteBytes(base, payload); err != nil {
		t.Fatalf("WriteBytes: %v", err)
	}
	got, err := b.ReadBytes(base, len(payload))
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("bulk round-trip mismatch")
	}
}

func TestSparseAllocation(t *testing.T) {
	b := NewBus()
	if b.TouchedFrames() != 0 {
		t.Fatalf("fresh bus has %d frames", b.TouchedFrames())
	}
	_ = b.Write32(DDRBase, 1)
	_ = b.Write32(DDRBase+100<<20, 1)
	if got := b.TouchedFrames(); got != 2 {
		t.Errorf("TouchedFrames = %d, want 2", got)
	}
}

// Property: any word written to any valid DDR address reads back identically.
func TestPropertyWordRoundTrip(t *testing.T) {
	b := NewBus()
	f := func(off uint32, v uint32) bool {
		a := DDRBase + Addr(off%(64<<20))
		if err := b.Write32(a, v); err != nil {
			return false
		}
		got, err := b.Read32(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
