package pl

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// PCAP transfer rate model: the Zynq processor configuration access port
// sustains on the order of 128 MB/s through the devcfg DMA, so each byte
// costs FrequencyHz/128MiB ≈ 4.9 core cycles. The resulting latencies
// (hundreds of µs to a few ms for the paper's FFT/QAM partial bitstreams)
// match the size↔delay relation of the authors' earlier work ([17]).
const pcapCyclesPerByte = 5

// PCAP device register offsets (subset of the Zynq devcfg block).
const (
	PCAPRegCtrl   = 0x00 // write 1: start transfer with latched src/len/target
	PCAPRegSrc    = 0x08 // bitstream physical address
	PCAPRegLen    = 0x0C // bitstream byte count
	PCAPRegTarget = 0x10 // destination PRR index
	PCAPRegStatus = 0x14 // 0 idle, 1 busy, 2 done, 3 error
	PCAPRegIntSts = 0x18 // bit0 done (W1C)
)

// PCAP is the bitstream download engine. One transfer at a time; the
// completion interrupt is gic.PCAPIRQ, which Mini-NOVA routes to the VM
// that launched the transfer (§IV-D).
type PCAP struct {
	f    *Fabric
	regs map[physmem.Addr]uint32

	busy    bool
	pending *simclock.Event
	// cur latches the in-flight transfer's parameters at kick time, so
	// register writes (or rejected starts) during the transfer cannot
	// disturb it.
	cur struct {
		src    physmem.Addr
		n      int
		target int
	}

	// OnComplete, when set, observes every finished transfer (after the
	// status registers are updated and the IRQ is raised). The
	// reconfiguration pipeline uses it to drain its request queue.
	OnComplete func(target int, ok bool)

	// armed is the one-shot fault the next kick consumes (fault
	// injection; see InjectFault).
	armed FaultKind

	// Transfers counts completed downloads; Errors counts failed ones,
	// including starts rejected while a transfer was in flight.
	Transfers uint64
	Errors    uint64
	// Aborts counts transfers cancelled through Abort (watchdog reaps).
	Aborts uint64
}

// FaultKind selects the one-shot fault InjectFault arms on the device.
type FaultKind uint8

const (
	// FaultNone clears any armed fault.
	FaultNone FaultKind = iota
	// FaultCRC makes the next transfer complete in error (CRC check
	// failure): status 3, completion IRQ raised, no configuration loaded.
	FaultCRC
	// FaultStall makes the next transfer hang: its completion is
	// scheduled pcapStallFactor× late, so a supervising watchdog must
	// Abort and restart it. If nothing reaps it, it eventually completes
	// normally — a stall, not a loss.
	FaultStall
)

// pcapStallFactor stretches a stalled transfer's completion far beyond
// any sane watchdog horizon.
const pcapStallFactor = 64

func newPCAP(f *Fabric) *PCAP {
	return &PCAP{f: f, regs: make(map[physmem.Addr]uint32)}
}

// Name implements physmem.Device.
func (p *PCAP) Name() string { return "devcfg-pcap" }

// ReadReg implements physmem.Device.
func (p *PCAP) ReadReg(off physmem.Addr) uint32 { return p.regs[off] }

// WriteReg implements physmem.Device.
func (p *PCAP) WriteReg(off physmem.Addr, v uint32) {
	switch off {
	case PCAPRegCtrl:
		if v&1 != 0 {
			p.kick()
		}
	case PCAPRegIntSts:
		p.regs[PCAPRegIntSts] &^= v
	default:
		p.regs[off] = v
	}
}

// TransferCycles is the modelled latency of downloading n bytes.
func TransferCycles(n int) simclock.Cycles {
	return simclock.Cycles(n * pcapCyclesPerByte)
}

func (p *PCAP) kick() {
	if p.busy {
		// Rejected start: the in-flight transfer keeps its latched state
		// and its busy status — the stray Ctrl write is only counted.
		p.Errors++
		return
	}
	p.cur.src = physmem.Addr(p.regs[PCAPRegSrc])
	p.cur.n = int(p.regs[PCAPRegLen])
	p.cur.target = int(p.regs[PCAPRegTarget])
	p.busy = true
	p.regs[PCAPRegStatus] = 1
	delay := TransferCycles(p.cur.n)
	if p.armed == FaultStall {
		delay *= pcapStallFactor
	}
	p.pending = p.f.Clock.After(delay, func(simclock.Cycles) {
		p.finish()
	})
}

func (p *PCAP) finish() {
	src, n, target := p.cur.src, p.cur.n, p.cur.target
	p.busy = false
	p.pending = nil
	armed := p.armed
	p.armed = FaultNone
	fail := func(err error) {
		p.Errors++
		p.regs[PCAPRegStatus] = 3
		p.regs[PCAPRegIntSts] |= 1
		p.f.GIC.Raise(gic.PCAPIRQ)
		_ = err
		if p.OnComplete != nil {
			p.OnComplete(target, false)
		}
	}
	if armed == FaultCRC {
		fail(fmt.Errorf("pcap: CRC check failed (injected)"))
		return
	}
	if target < 0 || target >= len(p.f.PRRs) {
		fail(fmt.Errorf("pcap: bad target PRR %d", target))
		return
	}
	raw, err := p.f.Bus.ReadBytes(src, n)
	if err != nil {
		fail(err)
		return
	}
	bs, err := bitstream.Decode(raw)
	if err != nil {
		fail(err)
		return
	}
	if err := p.f.LoadConfiguration(target, bs); err != nil {
		fail(err)
		return
	}
	p.Transfers++
	p.regs[PCAPRegStatus] = 2
	p.regs[PCAPRegIntSts] |= 1
	p.f.GIC.Raise(gic.PCAPIRQ)
	if p.OnComplete != nil {
		p.OnComplete(target, true)
	}
}

// Busy reports whether a transfer is in flight.
func (p *PCAP) Busy() bool { return p.busy }

// InjectFault arms a one-shot fault consumed by the next transfer (the
// fault-plan engine's hook; a real board fails on its own). Arming while
// a transfer is in flight affects that transfer's completion only for
// FaultCRC; a stall must be armed before the kick to stretch the timer.
func (p *PCAP) InjectFault(k FaultKind) { p.armed = k }

// Abort cancels the in-flight transfer without completing it: no status
// update, no IRQ, no OnComplete. The supervising pipeline uses it to
// reap a stalled transfer from its watchdog before re-kicking. A no-op
// when idle.
func (p *PCAP) Abort() {
	if !p.busy {
		return
	}
	if p.pending != nil {
		p.f.Clock.Cancel(p.pending)
		p.pending = nil
	}
	p.busy = false
	p.armed = FaultNone
	p.regs[PCAPRegStatus] = 0
	p.Aborts++
}
