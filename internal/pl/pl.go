// Package pl models the programmable logic half of the Zynq-7000 (paper
// §IV): a 7-series FPGA fabric divided into static logic and partially
// reconfigurable regions (PRRs), the PRR controller with one register
// group per region, the hwMMU that polices hardware-task DMA, the PCAP
// configuration engine, and the 16 PL→PS interrupt lines.
//
// The pieces map to the paper as follows.
//
//   - Each PRR has a register group "mapped to the edge of separate
//     physical small-size pages (4KB), so that each PRR can be mapped to a
//     virtual 4KB page independently" (§IV-C). Here the controller is one
//     MMIO device whose 4 KB-aligned subpages are the groups.
//   - "hwMMU is loaded with the physical address of the VM's hardware task
//     data section … any access from this hardware task is checked by the
//     hwMMU, which forbids the access outside the determined section"
//     (§IV-C). DMA issued by a PRR goes through its window check.
//   - PCAP downloads bitstreams into PRRs with latency proportional to the
//     .bit size and raises a completion IRQ (§IV-D/E).
package pl

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// Register-group word offsets within a PRR's 4 KB page.
const (
	RegCtrl    = 0x00 // bit0 START; bit1 IRQ_EN
	RegStatus  = 0x04 // see Status* constants
	RegSrc     = 0x08 // input byte offset within the client's data section
	RegDst     = 0x0C // output byte offset within the client's data section
	RegLen     = 0x10 // input length in bytes
	RegParam   = 0x14 // core-specific parameter
	RegIRQStat = 0x18 // bit0 done, bit1 error (write-1-to-clear)
	RegTaskID  = 0x1C // read-only: loaded task<<16 | variant
)

// CtrlStart and CtrlIRQEn are RegCtrl bits.
const (
	CtrlStart = 1 << 0
	CtrlIRQEn = 1 << 1
)

// Status values of RegStatus.
const (
	StatusIdle  = 0
	StatusBusy  = 1
	StatusDone  = 2
	StatusError = 3
)

// GroupStride is the byte distance between consecutive PRR register
// groups: one small page, the granularity of the exclusive-mapping trick.
const GroupStride = 0x1000

// Accel is a behavioural model of a hardware IP core hosted in a PRR.
// Implementations live in internal/apps (FFT, QAM); the fabric calls them
// when a started task's latency elapses.
type Accel interface {
	// Name identifies the core in traces.
	Name() string
	// Latency returns the processing time for n input bytes with the
	// given parameter register value.
	Latency(n int, param uint32) simclock.Cycles
	// Process transforms input to output (the DMA'd bytes).
	Process(input []byte, param uint32) ([]byte, error)
}

// Window is one hwMMU entry: the physical span a PRR's DMA may touch.
type Window struct {
	Base  physmem.Addr
	Size  uint32
	Valid bool
}

// Contains reports whether [a, a+n) fits inside the window.
func (w Window) Contains(a physmem.Addr, n uint32) bool {
	return w.Valid && a >= w.Base && uint64(a)+uint64(n) <= uint64(w.Base)+uint64(w.Size)
}

// HwMMU is the custom DMA gatekeeper of §IV-C, one window per PRR.
// Disabled turns the check off (security ablation: without the hwMMU a
// hardware task can DMA anywhere, which is exactly the §IV-C threat).
type HwMMU struct {
	windows []Window
	// Violations is atomic: completion-path checks for different PRRs can
	// run on different core goroutines during a parallel epoch.
	Violations atomic.Uint64
	Disabled   bool
}

// NewHwMMU sizes the unit for n PRRs, all windows invalid.
func NewHwMMU(n int) *HwMMU { return &HwMMU{windows: make([]Window, n)} }

// Load programs the window for PRR r (the kernel/manager does this when a
// task is dispatched to a VM).
func (h *HwMMU) Load(r int, w Window) { h.windows[r] = w }

// WindowOf returns PRR r's current window.
func (h *HwMMU) WindowOf(r int) Window { return h.windows[r] }

// Check validates a DMA access of n bytes at a for PRR r.
func (h *HwMMU) Check(r int, a physmem.Addr, n uint32) bool {
	if h.windows[r].Contains(a, n) {
		return true
	}
	h.Violations.Add(1)
	return h.Disabled // disabled: count the breach but let it through
}

// PRR is one partially reconfigurable region.
type PRR struct {
	Index    int
	Capacity bitstream.Resources

	// Loaded is the currently configured task (nil when the region holds
	// no valid configuration).
	Loaded *bitstream.Bitstream
	core   Accel

	// IRQLine is the PL_IRQ line allocated to this region (-1 = none).
	IRQLine int

	// clock, when set, carries this region's completion events. A mapped
	// region belongs to exactly one client VM, so its events ride that
	// client core's clock in parallel runs; nil falls back to the fabric
	// clock (single-clock configurations and unit tests).
	clock *simclock.Clock

	regs    [8]uint32
	pending *simclock.Event

	// Stats
	Runs      uint64
	DMAErrors uint64
}

// Fabric is the programmable logic: PRRs + static logic (controller,
// hwMMU, PCAP). It implements physmem.Device for the AXI GP window.
type Fabric struct {
	Clock *simclock.Clock
	Bus   *physmem.Bus
	GIC   *gic.GIC
	HwMMU *HwMMU

	PRRs []*PRR
	PCAP *PCAP

	cores map[uint16]Accel // task ID -> behavioural model
}

// NewFabric builds a fabric with the given PRR capacities and maps it on
// the bus at physmem.AXIGP0Base.
func NewFabric(clock *simclock.Clock, bus *physmem.Bus, g *gic.GIC, capacities []bitstream.Resources) *Fabric {
	f := &Fabric{
		Clock: clock,
		Bus:   bus,
		GIC:   g,
		HwMMU: NewHwMMU(len(capacities)),
		cores: make(map[uint16]Accel),
	}
	for i, c := range capacities {
		f.PRRs = append(f.PRRs, &PRR{Index: i, Capacity: c, IRQLine: -1})
	}
	f.PCAP = newPCAP(f)
	bus.MapDevice(physmem.AXIGP0Base, uint32(len(capacities))*GroupStride, f)
	bus.MapDevice(physmem.DevCfgBase, 0x100, f.PCAP)
	return f
}

// RegisterCore associates a behavioural model with a hardware-task ID.
func (f *Fabric) RegisterCore(taskID uint16, a Accel) { f.cores[taskID] = a }

// GroupBase returns the physical address of PRR r's register group — what
// the kernel maps into the client VM (§IV-C).
func (f *Fabric) GroupBase(r int) physmem.Addr {
	return physmem.AXIGP0Base + physmem.Addr(r*GroupStride)
}

// AllocateIRQ assigns a free PL_IRQ line to PRR r and returns the GIC
// interrupt ID, or an error when all 16 lines are taken (§IV-D).
func (f *Fabric) AllocateIRQ(r int) (int, error) {
	inUse := make(map[int]bool)
	for _, p := range f.PRRs {
		if p.IRQLine >= 0 {
			inUse[p.IRQLine] = true
		}
	}
	for line := 0; line < gic.NumPLIRQs; line++ {
		if !inUse[line] {
			f.PRRs[r].IRQLine = line
			return gic.PLIRQBase + line, nil
		}
	}
	return 0, fmt.Errorf("pl: no free PL_IRQ line for PRR%d", r)
}

// ReleaseIRQ frees PRR r's interrupt line.
func (f *Fabric) ReleaseIRQ(r int) { f.PRRs[r].IRQLine = -1 }

// BindClock routes PRR r's future completion events onto clk (the owning
// client core's clock in parallel runs). Pass nil to fall back to the
// fabric clock. Must only be called while the region has no task in
// flight — the manager never remaps a busy region, so the mapping and
// unmapping paths satisfy this by construction.
func (f *Fabric) BindClock(r int, clk *simclock.Clock) { f.PRRs[r].clock = clk }

// AbortRun cancels PRR r's in-flight task, if any: the pending completion
// event is removed from whichever clock carries it and the region reports
// an error, exactly as a real partial-reconfiguration abort would leave
// the old task's status. The manager's forced-reclaim path uses this so a
// completion launched by the previous owner can never land after the
// region has been handed to a new one.
func (f *Fabric) AbortRun(r int) {
	p := f.PRRs[r]
	if p.pending == nil {
		return
	}
	clk := p.clock
	if clk == nil {
		clk = f.Clock
	}
	clk.Cancel(p.pending)
	p.pending = nil
	p.regs[RegStatus/4] = StatusError
	p.regs[RegIRQStat/4] |= 2
}

// Name implements physmem.Device.
func (f *Fabric) Name() string { return "prr-controller" }

// ReadReg implements physmem.Device: dispatch to the owning PRR group.
func (f *Fabric) ReadReg(off physmem.Addr) uint32 {
	r := int(off / GroupStride)
	reg := off % GroupStride
	if r >= len(f.PRRs) || reg >= 0x20 {
		return 0
	}
	p := f.PRRs[r]
	if reg == RegTaskID {
		if p.Loaded == nil {
			return 0xFFFF_FFFF
		}
		return uint32(p.Loaded.TaskID)<<16 | uint32(p.Loaded.Variant)
	}
	return p.regs[reg/4]
}

// WriteReg implements physmem.Device.
func (f *Fabric) WriteReg(off physmem.Addr, v uint32) {
	r := int(off / GroupStride)
	reg := off % GroupStride
	if r >= len(f.PRRs) || reg >= 0x20 {
		return
	}
	p := f.PRRs[r]
	switch reg {
	case RegStatus, RegTaskID:
		// read-only
	case RegIRQStat:
		p.regs[RegIRQStat/4] &^= v // W1C
	case RegCtrl:
		p.regs[RegCtrl/4] = v &^ CtrlStart
		if v&CtrlStart != 0 {
			f.start(p)
		}
	default:
		p.regs[reg/4] = v
	}
}

// start kicks a loaded task: STATUS goes busy, and after the core's
// latency the DMA + computation completes.
func (f *Fabric) start(p *PRR) {
	if p.Loaded == nil || p.regs[RegStatus/4] == StatusBusy {
		p.regs[RegStatus/4] = StatusError
		p.regs[RegIRQStat/4] |= 2
		f.finishIRQ(p)
		return
	}
	core := p.core
	if core == nil {
		core = f.cores[p.Loaded.TaskID]
	}
	if core == nil {
		p.regs[RegStatus/4] = StatusError
		p.regs[RegIRQStat/4] |= 2
		f.finishIRQ(p)
		return
	}
	p.regs[RegStatus/4] = StatusBusy
	n := int(p.regs[RegLen/4])
	param := p.regs[RegParam/4]
	lat := core.Latency(n, param)
	clk := p.clock
	if clk == nil {
		clk = f.Clock
	}
	p.pending = clk.After(lat, func(simclock.Cycles) {
		f.complete(p, core)
	})
}

// complete performs the DMA through the hwMMU, runs the behavioural model
// and finishes the task.
func (f *Fabric) complete(p *PRR, core Accel) {
	p.pending = nil
	p.Runs++
	win := f.HwMMU.WindowOf(p.Index)
	src := win.Base + physmem.Addr(p.regs[RegSrc/4])
	dst := win.Base + physmem.Addr(p.regs[RegDst/4])
	n := p.regs[RegLen/4]

	fail := func() {
		p.DMAErrors++
		p.regs[RegStatus/4] = StatusError
		p.regs[RegIRQStat/4] |= 2
		f.finishIRQ(p)
	}

	if !f.HwMMU.Check(p.Index, src, n) {
		fail()
		return
	}
	input, err := f.Bus.ReadBytes(src, int(n))
	if err != nil {
		fail()
		return
	}
	output, err := core.Process(input, p.regs[RegParam/4])
	if err != nil {
		fail()
		return
	}
	if !f.HwMMU.Check(p.Index, dst, uint32(len(output))) {
		fail()
		return
	}
	if err := f.Bus.WriteBytes(dst, output); err != nil {
		fail()
		return
	}
	p.regs[RegStatus/4] = StatusDone
	p.regs[RegIRQStat/4] |= 1
	f.finishIRQ(p)
}

func (f *Fabric) finishIRQ(p *PRR) {
	if p.regs[RegCtrl/4]&CtrlIRQEn != 0 && p.IRQLine >= 0 {
		f.GIC.Raise(gic.PLIRQBase + p.IRQLine)
	}
}

// LoadConfiguration installs a decoded bitstream into PRR r, as the PCAP
// completion path does. It fails when the region is too small — the
// resource check behind "only PRR1 and PRR2 are large enough to contain
// the FFT tasks" (§V-B).
func (f *Fabric) LoadConfiguration(r int, b *bitstream.Bitstream) error {
	p := f.PRRs[r]
	if !b.Needs.Fits(p.Capacity) {
		return fmt.Errorf("pl: task %d does not fit PRR%d (needs %+v, capacity %+v)",
			b.TaskID, r, b.Needs, p.Capacity)
	}
	if p.regs[RegStatus/4] == StatusBusy {
		return fmt.Errorf("pl: PRR%d is busy; cannot reconfigure", r)
	}
	p.Loaded = b
	p.core = f.cores[b.TaskID]
	p.regs[RegStatus/4] = StatusIdle
	p.regs[RegIRQStat/4] = 0
	return nil
}

// Busy reports whether PRR r is executing.
func (f *Fabric) Busy(r int) bool { return f.PRRs[r].regs[RegStatus/4] == StatusBusy }

// SaveRegGroup snapshots PRR r's software-visible registers — what the
// manager stores into the previous owner's data section when a task is
// reclaimed (§IV-C "the register group content of T1 is saved to the VM1
// hardware task data section").
func (f *Fabric) SaveRegGroup(r int) [8]uint32 { return f.PRRs[r].regs }

// RestoreRegGroup reinstates a previously saved register image (minus the
// live status bits).
func (f *Fabric) RestoreRegGroup(r int, regs [8]uint32) {
	p := f.PRRs[r]
	saved := p.regs[RegStatus/4]
	p.regs = regs
	p.regs[RegStatus/4] = saved
}
