package pl

import (
	"bytes"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/physmem"
	"repro/internal/simclock"
)

// reverseCore is a trivial Accel for tests: reverses its input.
type reverseCore struct{}

func (reverseCore) Name() string { return "reverse" }
func (reverseCore) Latency(n int, _ uint32) simclock.Cycles {
	return simclock.Cycles(10 * n)
}
func (reverseCore) Process(in []byte, _ uint32) ([]byte, error) {
	out := make([]byte, len(in))
	for i, b := range in {
		out[len(in)-1-i] = b
	}
	return out, nil
}

func rig() (*simclock.Clock, *physmem.Bus, *gic.GIC, *Fabric) {
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	caps := []bitstream.Resources{
		{LUTs: 10000, BRAM: 32, DSP: 48}, // PRR0: large
		{LUTs: 10000, BRAM: 32, DSP: 48}, // PRR1: large
		{LUTs: 2000, BRAM: 4, DSP: 8},    // PRR2: small
		{LUTs: 2000, BRAM: 4, DSP: 8},    // PRR3: small
	}
	f := NewFabric(clock, bus, g, caps)
	f.RegisterCore(1, reverseCore{})
	return clock, bus, g, f
}

func loadTask(t *testing.T, f *Fabric, r int) *bitstream.Bitstream {
	t.Helper()
	bs := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 1500}, 4096)
	if err := f.LoadConfiguration(r, bs); err != nil {
		t.Fatalf("LoadConfiguration: %v", err)
	}
	return bs
}

func TestRegisterGroupIsolationPerPage(t *testing.T) {
	_, bus, _, f := rig()
	// Each group page is GroupStride apart.
	if f.GroupBase(1)-f.GroupBase(0) != GroupStride {
		t.Error("register groups not one page apart")
	}
	// Writing PRR0's Src must not affect PRR1's.
	if err := bus.Write32(f.GroupBase(0)+RegSrc, 0x100); err != nil {
		t.Fatal(err)
	}
	v, _ := bus.Read32(f.GroupBase(1) + RegSrc)
	if v != 0 {
		t.Error("register write leaked across PRR groups")
	}
}

func TestTaskRunsThroughHwMMU(t *testing.T) {
	clock, bus, g, f := rig()
	loadTask(t, f, 0)
	irqID, err := f.AllocateIRQ(0)
	if err != nil {
		t.Fatal(err)
	}
	g.Enable(irqID)

	// Client data section at DDR+1MB, 64KB.
	section := physmem.DDRBase + 1<<20
	f.HwMMU.Load(0, Window{Base: section, Size: 64 << 10, Valid: true})
	input := []byte("hardware-task-input-payload!")
	if err := bus.WriteBytes(section+0x100, input); err != nil {
		t.Fatal(err)
	}

	gb := f.GroupBase(0)
	bus.Write32(gb+RegSrc, 0x100)
	bus.Write32(gb+RegDst, 0x800)
	bus.Write32(gb+RegLen, uint32(len(input)))
	bus.Write32(gb+RegCtrl, CtrlStart|CtrlIRQEn)

	if v, _ := bus.Read32(gb + RegStatus); v != StatusBusy {
		t.Fatalf("status after start = %d, want busy", v)
	}
	clock.RunUntilIdle(10)
	if v, _ := bus.Read32(gb + RegStatus); v != StatusDone {
		t.Fatalf("status after completion = %d, want done", v)
	}
	out, _ := bus.ReadBytes(section+0x800, len(input))
	want, _ := reverseCore{}.Process(input, 0)
	if !bytes.Equal(out, want) {
		t.Error("core output mismatch")
	}
	if !g.IsPending(irqID) {
		t.Error("completion IRQ not raised")
	}
}

func TestHwMMUBlocksEscape(t *testing.T) {
	clock, bus, _, f := rig()
	loadTask(t, f, 0)
	section := physmem.DDRBase + 1<<20
	f.HwMMU.Load(0, Window{Base: section, Size: 4 << 10, Valid: true})

	gb := f.GroupBase(0)
	bus.Write32(gb+RegSrc, 0x0)
	bus.Write32(gb+RegDst, 5<<10) // dst outside the 4KB window
	bus.Write32(gb+RegLen, 64)
	bus.Write32(gb+RegCtrl, CtrlStart)
	clock.RunUntilIdle(10)

	if v, _ := bus.Read32(gb + RegStatus); v != StatusError {
		t.Errorf("status = %d, want error on hwMMU violation", v)
	}
	if f.HwMMU.Violations.Load() == 0 {
		t.Error("violation not counted")
	}
	if f.PRRs[0].DMAErrors != 1 {
		t.Error("DMA error not counted on PRR")
	}
}

func TestHwMMUInvalidWindowBlocksEverything(t *testing.T) {
	clock, bus, _, f := rig()
	loadTask(t, f, 0)
	// No window loaded at all.
	gb := f.GroupBase(0)
	bus.Write32(gb+RegLen, 4)
	bus.Write32(gb+RegCtrl, CtrlStart)
	clock.RunUntilIdle(10)
	if v, _ := bus.Read32(gb + RegStatus); v != StatusError {
		t.Errorf("status = %d, want error with invalid window", v)
	}
}

func TestStartWithoutConfigurationErrors(t *testing.T) {
	_, bus, _, f := rig()
	gb := f.GroupBase(2)
	bus.Write32(gb+RegCtrl, CtrlStart)
	if v, _ := bus.Read32(gb + RegStatus); v != StatusError {
		t.Errorf("status = %d, want error on empty PRR", v)
	}
}

func TestResourceFitRejected(t *testing.T) {
	_, _, _, f := rig()
	big := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 5000}, 128)
	if err := f.LoadConfiguration(2, big); err == nil {
		t.Error("oversized task loaded into small PRR")
	}
	if err := f.LoadConfiguration(0, big); err != nil {
		t.Errorf("task rejected from large PRR: %v", err)
	}
}

func TestIRQLineAllocation(t *testing.T) {
	_, _, _, f := rig()
	seen := make(map[int]bool)
	for r := 0; r < 4; r++ {
		id, err := f.AllocateIRQ(r)
		if err != nil {
			t.Fatalf("AllocateIRQ(%d): %v", r, err)
		}
		if id < gic.PLIRQBase || id >= gic.PLIRQBase+gic.NumPLIRQs {
			t.Errorf("IRQ id %d outside PL range", id)
		}
		if seen[id] {
			t.Errorf("IRQ id %d allocated twice", id)
		}
		seen[id] = true
	}
	f.ReleaseIRQ(2)
	if _, err := f.AllocateIRQ(2); err != nil {
		t.Errorf("re-allocation after release failed: %v", err)
	}
}

func TestPCAPDownload(t *testing.T) {
	clock, bus, g, f := rig()
	g.Enable(gic.PCAPIRQ)
	bs := bitstream.Synthesize(1, 2, bitstream.Resources{LUTs: 1500}, 8192)
	raw := bs.Encode()
	src := physmem.DDRBase + 2<<20
	if err := bus.WriteBytes(src, raw); err != nil {
		t.Fatal(err)
	}

	bus.Write32(physmem.DevCfgBase+PCAPRegSrc, uint32(src))
	bus.Write32(physmem.DevCfgBase+PCAPRegLen, uint32(len(raw)))
	bus.Write32(physmem.DevCfgBase+PCAPRegTarget, 1)
	bus.Write32(physmem.DevCfgBase+PCAPRegCtrl, 1)

	if !f.PCAP.Busy() {
		t.Fatal("PCAP not busy after kick")
	}
	start := clock.Now()
	clock.RunUntilIdle(10)
	elapsed := clock.Now() - start
	if want := TransferCycles(len(raw)); elapsed < want {
		t.Errorf("transfer finished in %d cycles, want >= %d", elapsed, want)
	}
	if f.PRRs[1].Loaded == nil || f.PRRs[1].Loaded.TaskID != 1 || f.PRRs[1].Loaded.Variant != 2 {
		t.Error("bitstream not loaded into PRR1")
	}
	if !g.IsPending(gic.PCAPIRQ) {
		t.Error("PCAP completion IRQ not raised")
	}
	if v, _ := bus.Read32(physmem.DevCfgBase + PCAPRegStatus); v != 2 {
		t.Errorf("PCAP status = %d, want done", v)
	}
}

func TestPCAPBusyStartRejectedWithoutClobber(t *testing.T) {
	// Regression: a Ctrl start while a transfer is in flight must not
	// disturb the latched src/len/target of the running transfer, must
	// leave STATUS showing busy, and must be counted in Errors.
	clock, bus, _, f := rig()
	bs := bitstream.Synthesize(1, 2, bitstream.Resources{LUTs: 1500}, 8192)
	raw := bs.Encode()
	src := physmem.DDRBase + 2<<20
	if err := bus.WriteBytes(src, raw); err != nil {
		t.Fatal(err)
	}
	bus.Write32(physmem.DevCfgBase+PCAPRegSrc, uint32(src))
	bus.Write32(physmem.DevCfgBase+PCAPRegLen, uint32(len(raw)))
	bus.Write32(physmem.DevCfgBase+PCAPRegTarget, 1)
	bus.Write32(physmem.DevCfgBase+PCAPRegCtrl, 1)
	if !f.PCAP.Busy() {
		t.Fatal("PCAP not busy after kick")
	}

	// Mid-transfer, a confused driver reprograms everything and starts
	// again: garbage src, different target.
	bus.Write32(physmem.DevCfgBase+PCAPRegSrc, 0xDEAD_0000)
	bus.Write32(physmem.DevCfgBase+PCAPRegLen, 16)
	bus.Write32(physmem.DevCfgBase+PCAPRegTarget, 0)
	bus.Write32(physmem.DevCfgBase+PCAPRegCtrl, 1)

	if f.PCAP.Errors != 1 {
		t.Errorf("rejected start not counted: Errors = %d, want 1", f.PCAP.Errors)
	}
	if v, _ := bus.Read32(physmem.DevCfgBase + PCAPRegStatus); v != 1 {
		t.Errorf("status after rejected start = %d, want 1 (busy, not clobbered)", v)
	}

	clock.RunUntilIdle(10)
	// The original transfer completes into its latched target with its
	// latched source, untouched by the mid-flight register writes.
	if v, _ := bus.Read32(physmem.DevCfgBase + PCAPRegStatus); v != 2 {
		t.Errorf("status after completion = %d, want done", v)
	}
	if f.PRRs[1].Loaded == nil || f.PRRs[1].Loaded.TaskID != 1 || f.PRRs[1].Loaded.Variant != 2 {
		t.Error("in-flight transfer corrupted by rejected start")
	}
	if f.PRRs[0].Loaded != nil {
		t.Error("rejected start configured its target anyway")
	}
	if f.PCAP.Transfers != 1 || f.PCAP.Errors != 1 {
		t.Errorf("transfers/errors = %d/%d, want 1/1", f.PCAP.Transfers, f.PCAP.Errors)
	}
}

func TestPCAPCompletionHook(t *testing.T) {
	clock, bus, _, f := rig()
	var gotTarget int
	var gotOK bool
	calls := 0
	f.PCAP.OnComplete = func(target int, ok bool) { gotTarget, gotOK, calls = target, ok, calls+1 }
	raw := bitstream.Synthesize(1, 0, bitstream.Resources{LUTs: 100}, 1024).Encode()
	src := physmem.DDRBase + 2<<20
	bus.WriteBytes(src, raw)
	bus.Write32(physmem.DevCfgBase+PCAPRegSrc, uint32(src))
	bus.Write32(physmem.DevCfgBase+PCAPRegLen, uint32(len(raw)))
	bus.Write32(physmem.DevCfgBase+PCAPRegTarget, 1)
	bus.Write32(physmem.DevCfgBase+PCAPRegCtrl, 1)
	clock.RunUntilIdle(10)
	if calls != 1 || gotTarget != 1 || !gotOK {
		t.Errorf("hook: calls=%d target=%d ok=%v, want 1/1/true", calls, gotTarget, gotOK)
	}
}

func TestPCAPCorruptBitstreamErrors(t *testing.T) {
	clock, bus, _, f := rig()
	raw := bitstream.Synthesize(1, 0, bitstream.Resources{}, 512).Encode()
	raw[40] ^= 0xFF // corrupt payload
	src := physmem.DDRBase + 2<<20
	bus.WriteBytes(src, raw)
	bus.Write32(physmem.DevCfgBase+PCAPRegSrc, uint32(src))
	bus.Write32(physmem.DevCfgBase+PCAPRegLen, uint32(len(raw)))
	bus.Write32(physmem.DevCfgBase+PCAPRegTarget, 0)
	bus.Write32(physmem.DevCfgBase+PCAPRegCtrl, 1)
	clock.RunUntilIdle(10)
	if v, _ := bus.Read32(physmem.DevCfgBase + PCAPRegStatus); v != 3 {
		t.Errorf("PCAP status = %d, want error", v)
	}
	if f.PCAP.Errors != 1 {
		t.Error("error not counted")
	}
}

func TestReconfigureBusyPRRRejected(t *testing.T) {
	_, bus, _, f := rig()
	loadTask(t, f, 0)
	section := physmem.DDRBase + 1<<20
	f.HwMMU.Load(0, Window{Base: section, Size: 64 << 10, Valid: true})
	gb := f.GroupBase(0)
	bus.Write32(gb+RegLen, 16)
	bus.Write32(gb+RegCtrl, CtrlStart) // busy now
	bs := bitstream.Synthesize(1, 1, bitstream.Resources{}, 128)
	if err := f.LoadConfiguration(0, bs); err == nil {
		t.Error("reconfiguration of busy PRR allowed")
	}
}

func TestSaveRestoreRegGroup(t *testing.T) {
	_, bus, _, f := rig()
	loadTask(t, f, 0)
	gb := f.GroupBase(0)
	bus.Write32(gb+RegSrc, 0xAA)
	bus.Write32(gb+RegParam, 0xBB)
	saved := f.SaveRegGroup(0)
	bus.Write32(gb+RegSrc, 0)
	bus.Write32(gb+RegParam, 0)
	f.RestoreRegGroup(0, saved)
	if v, _ := bus.Read32(gb + RegSrc); v != 0xAA {
		t.Errorf("restored Src = %#x, want 0xAA", v)
	}
	if v, _ := bus.Read32(gb + RegParam); v != 0xBB {
		t.Errorf("restored Param = %#x, want 0xBB", v)
	}
}

func TestIRQStatW1C(t *testing.T) {
	clock, bus, _, f := rig()
	loadTask(t, f, 0)
	section := physmem.DDRBase + 1<<20
	f.HwMMU.Load(0, Window{Base: section, Size: 64 << 10, Valid: true})
	gb := f.GroupBase(0)
	bus.Write32(gb+RegLen, 8)
	bus.Write32(gb+RegCtrl, CtrlStart)
	clock.RunUntilIdle(10)
	if v, _ := bus.Read32(gb + RegIRQStat); v&1 == 0 {
		t.Fatal("done bit not set")
	}
	bus.Write32(gb+RegIRQStat, 1)
	if v, _ := bus.Read32(gb + RegIRQStat); v&1 != 0 {
		t.Error("W1C did not clear done bit")
	}
}
