// Package pool implements deterministic warm pools of forked VM clones
// keyed by checkpoint image. A pool keeps up to Target pre-built clones
// per key on a shelf; Acquire pops the most recently built one (LIFO —
// the warmest caches) or builds on miss, and a sim-clock TTL with a
// seeded jitter reaps shelf items that sit unused. The image behind a
// key is built exactly once, however many prewarm and acquire calls
// race to need it (singleflight, resolved deterministically because the
// simulation engine serializes pool calls at stopped points).
//
// The package is generic: values are opaque `any`, the owner supplies
// build/destroy callbacks, and every timestamp is an explicit simulated
// cycle count passed in by the caller — the pool never reads a clock,
// so it cannot desynchronize sequential and sharded engines.
package pool

import (
	"fmt"
	"sync"

	"repro/internal/simclock"
)

// Config shapes a pool's policy.
type Config struct {
	// Target is the prewarm level: Prewarm builds until this many
	// unleased clones sit on the shelf.
	Target int
	// TTL is how long a shelf item may sit unleased before ReapExpired
	// destroys it; 0 disables reaping.
	TTL simclock.Cycles
	// Seed drives the deterministic jitter added to each item's reap
	// deadline, de-phasing mass expiry of a batch built in one instant.
	Seed uint64
}

// Funcs are the owner's callbacks. Image is invoked once per key (the
// singleflight build of the checkpoint image); Build forks one clone
// from it (seq is the per-key build ordinal, usable as a deterministic
// identity); Destroy tears a reaped or drained clone down.
type Funcs struct {
	Image   func(key string) (any, error)
	Build   func(key string, img any, seq int) (any, error)
	Destroy func(v any)
}

// Stats counts pool activity.
type Stats struct {
	Built     uint64 // clones constructed (misses + prewarms)
	Hits      uint64 // acquires served off the shelf
	Misses    uint64 // acquires that had to build
	Reaped    uint64 // shelf items destroyed by TTL
	Prewarmed uint64 // clones built by Prewarm
	ImageOnce uint64 // image builds (1 per key that was ever needed)
}

// item is one shelf entry.
type item struct {
	v        any
	deadline simclock.Cycles // reap time; 0 = no TTL
	seq      int
}

// keyState is the per-image-key shelf.
type keyState struct {
	img      any
	imgBuilt bool
	shelf    []item // LIFO: acquire pops the back
	seq      int    // next build ordinal
}

// Pool is a warm-clone pool. Methods are mutex-guarded so parallel
// scenario harnesses may share one, but calls must happen at points
// where the simulation engine is stopped (they build and destroy VMs).
type Pool struct {
	mu    sync.Mutex
	cfg   Config
	fn    Funcs
	keys  map[string]*keyState
	order []string // key creation order: deterministic reap scans
	rng   uint64
	stats Stats
}

// New builds an empty pool.
func New(cfg Config, fn Funcs) *Pool {
	if fn.Image == nil || fn.Build == nil || fn.Destroy == nil {
		panic("pool: all three callbacks are required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Pool{cfg: cfg, fn: fn, keys: map[string]*keyState{}, rng: seed}
}

// xorshift advances the jitter generator (deterministic, seed-derived).
func (p *Pool) xorshift() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

// jitter returns the deadline perturbation for one shelf item: up to an
// eighth of the TTL, so a batch prewarmed in one instant expires spread
// out instead of as a reap storm.
func (p *Pool) jitter() simclock.Cycles {
	if p.cfg.TTL == 0 {
		return 0
	}
	span := uint64(p.cfg.TTL / 8)
	if span == 0 {
		return 0
	}
	return simclock.Cycles(p.xorshift() % span)
}

// state returns (building if needed) the per-key shelf and its image.
func (p *Pool) state(key string) (*keyState, error) {
	ks := p.keys[key]
	if ks == nil {
		ks = &keyState{}
		p.keys[key] = ks
		p.order = append(p.order, key)
	}
	if !ks.imgBuilt {
		img, err := p.fn.Image(key)
		if err != nil {
			return nil, fmt.Errorf("pool: image %q: %w", key, err)
		}
		ks.img = img
		ks.imgBuilt = true
		p.stats.ImageOnce++
	}
	return ks, nil
}

// build forks one clone for key (caller holds the lock).
func (p *Pool) build(key string, ks *keyState) (item, error) {
	v, err := p.fn.Build(key, ks.img, ks.seq)
	if err != nil {
		return item{}, fmt.Errorf("pool: build %q #%d: %w", key, ks.seq, err)
	}
	it := item{v: v, seq: ks.seq}
	ks.seq++
	p.stats.Built++
	return it, nil
}

// Prewarm tops key's shelf up to the configured target, stamping each
// new item's reap deadline from now.
func (p *Pool) Prewarm(key string, now simclock.Cycles) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ks, err := p.state(key)
	if err != nil {
		return err
	}
	for len(ks.shelf) < p.cfg.Target {
		it, err := p.build(key, ks)
		if err != nil {
			return err
		}
		if p.cfg.TTL > 0 {
			it.deadline = now + p.cfg.TTL + p.jitter()
		}
		ks.shelf = append(ks.shelf, it)
		p.stats.Prewarmed++
	}
	return nil
}

// Acquire leases a clone for key: the most recently shelved one (warm
// hit), or a fresh build on miss. The lease is permanent — the pool
// forgets the value; callers own leased clones.
func (p *Pool) Acquire(key string, now simclock.Cycles) (v any, hit bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ks, err := p.state(key)
	if err != nil {
		return nil, false, err
	}
	if n := len(ks.shelf); n > 0 {
		it := ks.shelf[n-1]
		ks.shelf[n-1] = item{}
		ks.shelf = ks.shelf[:n-1]
		p.stats.Hits++
		return it.v, true, nil
	}
	it, err := p.build(key, ks)
	if err != nil {
		return nil, false, err
	}
	p.stats.Misses++
	return it.v, false, nil
}

// ReapExpired destroys every shelf item whose deadline has passed and
// returns how many died. Keys are scanned in creation order and shelves
// front-to-back (oldest first), so the destruction sequence is
// deterministic.
func (p *Pool) ReapExpired(now simclock.Cycles) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	reaped := 0
	for _, key := range p.order {
		ks := p.keys[key]
		kept := ks.shelf[:0]
		for _, it := range ks.shelf {
			if it.deadline != 0 && it.deadline <= now {
				p.fn.Destroy(it.v)
				p.stats.Reaped++
				reaped++
			} else {
				kept = append(kept, it)
			}
		}
		for i := len(kept); i < len(ks.shelf); i++ {
			ks.shelf[i] = item{}
		}
		ks.shelf = kept
	}
	return reaped
}

// DrainAll destroys every shelf item (scenario teardown).
func (p *Pool) DrainAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range p.order {
		ks := p.keys[key]
		for _, it := range ks.shelf {
			p.fn.Destroy(it.v)
		}
		ks.shelf = nil
	}
}

// WarmCount reports how many clones sit on key's shelf.
func (p *Pool) WarmCount(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ks := p.keys[key]; ks != nil {
		return len(ks.shelf)
	}
	return 0
}

// Stats returns a copy of the activity counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// HitRatio is Hits / (Hits + Misses), 0 when nothing was acquired.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}
