package pool

import (
	"errors"
	"testing"

	"repro/internal/simclock"
)

// harness counts callback traffic and records destroyed values.
type harness struct {
	imageCalls int
	builds     int
	destroyed  []int
	imageErr   error
}

func (h *harness) funcs() Funcs {
	return Funcs{
		Image: func(key string) (any, error) {
			h.imageCalls++
			if h.imageErr != nil {
				return nil, h.imageErr
			}
			return "img:" + key, nil
		},
		Build: func(key string, img any, seq int) (any, error) {
			if img != "img:"+key {
				return nil, errors.New("wrong image")
			}
			h.builds++
			return seq, nil
		},
		Destroy: func(v any) { h.destroyed = append(h.destroyed, v.(int)) },
	}
}

func TestSingleflightImageBuild(t *testing.T) {
	h := &harness{}
	p := New(Config{Target: 2}, h.funcs())
	if err := p.Prewarm("k", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Acquire("k", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Acquire("k", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Acquire("k", 0); err != nil { // miss: shelf empty
		t.Fatal(err)
	}
	if h.imageCalls != 1 {
		t.Fatalf("image built %d times, want 1 (singleflight)", h.imageCalls)
	}
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Built != 3 || st.Prewarmed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAcquireIsLIFO(t *testing.T) {
	h := &harness{}
	p := New(Config{Target: 3}, h.funcs())
	if err := p.Prewarm("k", 0); err != nil {
		t.Fatal(err)
	}
	v, hit, err := p.Acquire("k", 0)
	if err != nil || !hit {
		t.Fatalf("want warm hit, got v=%v hit=%v err=%v", v, hit, err)
	}
	if v.(int) != 2 {
		t.Fatalf("acquired seq %v, want the most recently built (2)", v)
	}
}

func TestTTLReapingIsDeterministic(t *testing.T) {
	ttl := simclock.FromMillis(1)
	run := func() []int {
		h := &harness{}
		p := New(Config{Target: 4, TTL: ttl, Seed: 7}, h.funcs())
		if err := p.Prewarm("k", 0); err != nil {
			t.Fatal(err)
		}
		// Jitter spreads deadlines over [ttl, ttl+ttl/8); nothing dies early.
		if n := p.ReapExpired(ttl - 1); n != 0 {
			t.Fatalf("reaped %d before TTL", n)
		}
		// Everything dies by ttl + ttl/8.
		if n := p.ReapExpired(ttl + ttl/8); n != 4 {
			t.Fatalf("reaped %d at TTL+jitter, want 4", n)
		}
		return h.destroyed
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("destroyed %v / %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reap order differs between runs: %v vs %v", a, b)
		}
	}
	// Oldest-first within a shelf.
	for i := range a {
		if a[i] != i {
			t.Fatalf("reap order %v, want oldest-first 0..3", a)
		}
	}
}

func TestZeroTTLNeverReaps(t *testing.T) {
	h := &harness{}
	p := New(Config{Target: 2}, h.funcs())
	if err := p.Prewarm("k", 0); err != nil {
		t.Fatal(err)
	}
	if n := p.ReapExpired(1 << 40); n != 0 {
		t.Fatalf("reaped %d with TTL disabled", n)
	}
	p.DrainAll()
	if len(h.destroyed) != 2 {
		t.Fatalf("drain destroyed %d, want 2", len(h.destroyed))
	}
	if p.WarmCount("k") != 0 {
		t.Fatal("shelf not empty after drain")
	}
}

func TestPrewarmTopsUpAfterReap(t *testing.T) {
	h := &harness{}
	ttl := simclock.Cycles(1000)
	p := New(Config{Target: 2, TTL: ttl, Seed: 3}, h.funcs())
	if err := p.Prewarm("k", 0); err != nil {
		t.Fatal(err)
	}
	p.ReapExpired(ttl * 2)
	if p.WarmCount("k") != 0 {
		t.Fatal("shelf survived double TTL")
	}
	if err := p.Prewarm("k", ttl*2); err != nil {
		t.Fatal(err)
	}
	if p.WarmCount("k") != 2 {
		t.Fatalf("warm = %d after re-prewarm", p.WarmCount("k"))
	}
	// New builds got fresh ordinals, not recycled ones.
	v, _, _ := p.Acquire("k", ttl*2)
	if v.(int) != 3 {
		t.Fatalf("post-reap build ordinal %v, want 3", v)
	}
}

func TestImageErrorPropagates(t *testing.T) {
	h := &harness{imageErr: errors.New("boom")}
	p := New(Config{Target: 1}, h.funcs())
	if err := p.Prewarm("k", 0); err == nil {
		t.Fatal("image error swallowed")
	}
	if _, _, err := p.Acquire("k", 0); err == nil {
		t.Fatal("image error swallowed on acquire")
	}
}
