package reconfig

// Cache is the bitstream cache: a bounded OCM/DDR-resident store sitting
// in front of the SD-card path. Entries are whole bitstream images,
// identified by their offset inside the bitstream store (the catalog's
// content address). The simulator keeps every image's bytes resident at
// its catalog offset — the cache models *which* of them would be RAM-
// resident on the real platform, so a miss charges the SD fetch latency
// and a hit skips it.
//
// Replacement is LRU with pin-while-loading semantics: an entry is
// unevictable while its SD fill is in flight or while a PCAP transfer (or
// a queued request) still references it. Insertion of an image larger
// than the evictable space bypasses the cache entirely rather than
// thrashing pinned entries.
type Cache struct {
	capacity uint32
	used     uint32
	entries  map[uint32]*CacheEntry

	// LRU list: head is most recently used, tail the eviction candidate.
	head, tail *CacheEntry

	// OnEvict, when set, observes every eviction (the pipeline uses it to
	// count speculative entries that were dropped before any demand hit).
	OnEvict func(*CacheEntry)

	Stats CacheStats
}

// CacheStats counts cache outcomes. Coalesced misses found a fill already
// in flight for the same image and joined it instead of re-reading the SD
// card; Bypasses could not reserve space (everything pinned, or the image
// exceeds the capacity) and paid an uncached fetch. Invalidations are
// forced removals outside LRU policy: failed fills and poisoned images.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Coalesced     uint64
	Evictions     uint64
	Bypasses      uint64
	Invalidations uint64
}

// CacheEntry is one resident (or loading) bitstream image.
type CacheEntry struct {
	Key uint32 // image identity: byte offset inside the bitstream store
	Len uint32

	pins        int  // references: the in-flight fill plus every live request
	loading     bool // SD fill still in flight
	speculative bool // resident due to a prefetch, not demanded yet
	corrupt     bool // staged bytes are poisoned (injected fault); the
	// PCAP download will fail CRC and the pipeline must invalidate

	prev, next *CacheEntry
}

// Loading reports whether the entry's SD fill is still in flight.
func (e *CacheEntry) Loading() bool { return e.loading }

// Speculative reports whether the entry was prefetched and never demanded.
func (e *CacheEntry) Speculative() bool { return e.speculative }

// Corrupt reports whether the staged image is poisoned.
func (e *CacheEntry) Corrupt() bool { return e.corrupt }

// NewCache returns an empty cache bounded to capacity bytes.
func NewCache(capacity uint32) *Cache {
	return &Cache{capacity: capacity, entries: make(map[uint32]*CacheEntry)}
}

// Capacity returns the configured byte budget.
func (c *Cache) Capacity() uint32 { return c.capacity }

// Used returns the bytes currently charged against the budget.
func (c *Cache) Used() uint32 { return c.used }

// Len returns the number of resident (or loading) entries.
func (c *Cache) Len() int { return len(c.entries) }

// HitRatio returns hits / (hits + misses), or 0 with no lookups yet.
func (c *Cache) HitRatio() float64 {
	total := c.Stats.Hits + c.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Stats.Hits) / float64(total)
}

// Lookup finds the entry for key, counting the outcome and refreshing the
// LRU position. A loading entry counts as a coalesced miss (the caller
// joins the in-flight fill); nil is a plain miss.
func (c *Cache) Lookup(key uint32) *CacheEntry {
	e, ok := c.entries[key]
	if !ok {
		c.Stats.Misses++
		return nil
	}
	if e.loading {
		c.Stats.Misses++
		c.Stats.Coalesced++
	} else {
		c.Stats.Hits++
	}
	c.moveToFront(e)
	return e
}

// Peek returns the entry for key without touching stats or LRU order.
func (c *Cache) Peek(key uint32) *CacheEntry { return c.entries[key] }

// Insert reserves space for a new image and returns its entry, pinned and
// marked loading (the caller owns the fill and must call FillDone). It
// evicts unpinned LRU entries as needed; when the space cannot be freed
// the insert is counted as a bypass and nil is returned.
func (c *Cache) Insert(key, length uint32, speculative bool) *CacheEntry {
	if _, dup := c.entries[key]; dup {
		panic("reconfig: duplicate cache insert")
	}
	if !c.reserve(length) {
		c.Stats.Bypasses++
		return nil
	}
	e := &CacheEntry{Key: key, Len: length, pins: 1, loading: true, speculative: speculative}
	c.entries[key] = e
	c.used += length
	c.pushFront(e)
	return e
}

// reserve evicts unpinned LRU entries until length bytes fit; it reports
// whether the reservation succeeded without touching anything on failure.
func (c *Cache) reserve(length uint32) bool {
	if length > c.capacity {
		return false
	}
	// Walk candidates from the tail; pinned entries are skipped.
	for c.used+length > c.capacity {
		victim := c.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			return false
		}
		c.evict(victim)
	}
	return true
}

func (c *Cache) evict(e *CacheEntry) {
	c.unlink(e)
	delete(c.entries, e.Key)
	c.used -= e.Len
	c.Stats.Evictions++
	if c.OnEvict != nil {
		c.OnEvict(e)
	}
}

// Pin adds a reference that blocks eviction.
func (c *Cache) Pin(e *CacheEntry) { e.pins++ }

// Unpin drops a reference.
func (c *Cache) Unpin(e *CacheEntry) {
	if e.pins <= 0 {
		panic("reconfig: unpin of unpinned cache entry")
	}
	e.pins--
}

// FillDone marks the entry resident and releases the fill's pin.
func (c *Cache) FillDone(e *CacheEntry) {
	e.loading = false
	c.Unpin(e)
}

// FillFailed releases the fill's pin and removes the placeholder: a fill
// that errored must not leave a pinned loading entry behind — it would
// never become resident, never be evicted, and leak its reservation
// forever. Waiters that pinned the entry keep their (now-detached) pins;
// their completion paths Unpin the orphan harmlessly.
func (c *Cache) FillFailed(e *CacheEntry) {
	e.loading = false
	c.Unpin(e)
	c.Invalidate(e)
}

// Invalidate force-removes an entry regardless of pins — the poisoned-
// image path: a corrupt bitstream must not be served warm, so the moment
// the PCAP download exposes it the entry leaves the map and the next
// request for the key re-fetches from the card. Holders of the detached
// entry may still Unpin it; the pins just never block anything again.
// A no-op when the entry was already removed (or replaced by a fresh
// insert of the same key).
func (c *Cache) Invalidate(e *CacheEntry) {
	if c.entries[e.Key] != e {
		return
	}
	c.unlink(e)
	delete(c.entries, e.Key)
	c.used -= e.Len
	c.Stats.Invalidations++
}

// --- intrusive LRU list ---

func (c *Cache) pushFront(e *CacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *CacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *CacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
