package reconfig

import (
	"testing"

	"repro/internal/fault"
)

// findSeed scans for a seed whose decision stream matches pattern — the
// deterministic way to pin "fails once, then succeeds" shapes without
// hardcoding whitener internals into the tests.
func findSeed(t *testing.T, cfg fault.Config, pattern func(in *fault.Injector) bool) uint32 {
	t.Helper()
	for s := uint32(1); s < 50_000; s++ {
		c := cfg
		c.Seed = s
		if pattern(fault.New(c)) {
			return s
		}
	}
	t.Fatal("no seed produces the wanted fault pattern")
	return 0
}

// TestFailedFillUnpinsAndEvicts is the pin-while-loading regression: an
// SD fill that exhausts its retries must unpin and remove its
// placeholder entry — the cache previously kept a pinned, loading entry
// forever, leaking its reservation.
func TestFailedFillUnpinsAndEvicts(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(fault.Config{Seed: 3, SDErrorPermille: 1000, MaxRetries: 2})
	var ok, failed int
	req := r.request(1, 0, 1, &ok)
	req.OnDone = func(_ *Request, good bool) {
		if !good {
			failed++
		}
	}
	r.pipe.Submit(req)
	r.clock.RunUntilIdle(500)
	if failed != 1 {
		t.Fatalf("failure callback fired %d times, want 1", failed)
	}
	if r.pipe.Stats.Retries != 2 {
		t.Errorf("retries = %d, want MaxRetries = 2", r.pipe.Stats.Retries)
	}
	if r.pipe.Stats.FaultedRequests != 1 {
		t.Errorf("faulted requests = %d, want 1", r.pipe.Stats.FaultedRequests)
	}
	if n := r.pipe.Cache.Len(); n != 0 {
		t.Errorf("cache holds %d entries after failed fill, want 0 (pinned-garbage leak)", n)
	}
	if r.pipe.Cache.Used() != 0 {
		t.Errorf("cache charges %d bytes after failed fill", r.pipe.Cache.Used())
	}
	if r.pipe.Cache.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", r.pipe.Cache.Stats.Invalidations)
	}
	if !r.pipe.Idle() {
		t.Error("pipeline wedged after exhausted fill")
	}
}

// TestSDErrorRetriesThenSucceeds: a transient SD error is outwaited by
// the backoff loop and the request still completes.
func TestSDErrorRetriesThenSucceeds(t *testing.T) {
	cfg := fault.Config{SDErrorPermille: 400, MaxRetries: 3}
	seed := findSeed(t, cfg, func(in *fault.Injector) bool {
		return in.SDFill(0).Err && !in.SDFill(0).Err
	})
	cfg.Seed = seed
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(cfg)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(500)
	if done != 1 {
		t.Fatalf("request did not recover from transient SD error (done=%d)", done)
	}
	if r.pipe.Stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", r.pipe.Stats.Retries)
	}
	if r.pipe.Inject.Stats.SDErrors != 1 {
		t.Errorf("injected SD errors = %d, want 1", r.pipe.Inject.Stats.SDErrors)
	}
	if e := r.pipe.Cache.Peek(r.offs[1]); e == nil || e.Loading() || e.pins != 0 {
		t.Error("image not cleanly resident after recovered fill")
	}
}

// TestSDStallStretchesFill: a stalled read completes, just late.
func TestSDStallStretchesFill(t *testing.T) {
	cfg := fault.Config{SDStallPermille: 500}
	seed := findSeed(t, cfg, func(in *fault.Injector) bool {
		return in.SDFill(0).Stall
	})
	cfg.Seed = seed
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(cfg)
	var done int
	t0 := r.clock.Now()
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(500)
	if done != 1 {
		t.Fatalf("stalled fill never completed (done=%d)", done)
	}
	// The stall multiplies the SD leg by SDStallFactor (default 4).
	if lat := r.clock.Now() - t0; lat < 4*SDFetchCycles(int(r.lens[1])) {
		t.Errorf("latency %d below the stalled SD leg %d", lat, 4*SDFetchCycles(int(r.lens[1])))
	}
	if r.pipe.Inject.Stats.SDStalls != 1 {
		t.Errorf("injected stalls = %d, want 1", r.pipe.Inject.Stats.SDStalls)
	}
}

// TestPoisonedEntryInvalidatedAndRefetched: a corrupt staged image fails
// its download CRC, must leave the cache immediately (never served warm
// again), and the request recovers through a fresh SD fetch.
func TestPoisonedEntryInvalidatedAndRefetched(t *testing.T) {
	cfg := fault.Config{CorruptPermille: 400}
	seed := findSeed(t, cfg, func(in *fault.Injector) bool {
		return in.SDFill(0).Corrupt && !in.SDFill(0).Corrupt
	})
	cfg.Seed = seed
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(cfg)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(500)
	if done != 1 {
		t.Fatalf("request did not recover from poisoned image (done=%d)", done)
	}
	if r.pipe.Stats.PoisonEvictions != 1 {
		t.Errorf("poison evictions = %d, want 1", r.pipe.Stats.PoisonEvictions)
	}
	if r.pipe.Cache.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", r.pipe.Cache.Stats.Invalidations)
	}
	// The CRC failure registered on the device, and the re-download
	// succeeded.
	if r.fab.PCAP.Errors == 0 || r.fab.PCAP.Transfers == 0 {
		t.Errorf("device errors=%d transfers=%d, want both nonzero", r.fab.PCAP.Errors, r.fab.PCAP.Transfers)
	}
	// The resident copy is the clean refetch.
	if e := r.pipe.Cache.Peek(r.offs[1]); e == nil || e.Corrupt() || e.pins != 0 {
		t.Error("clean refetched image not resident after recovery")
	}
}

// TestPCAPCRCRetries: a transient download CRC failure is retried on the
// same staged image (no refetch) and succeeds.
func TestPCAPCRCRetries(t *testing.T) {
	cfg := fault.Config{PCAPCRCPermille: 400}
	seed := findSeed(t, cfg, func(in *fault.Injector) bool {
		return in.PCAPStart(0, 0).CRC && !in.PCAPStart(0, 0).CRC
	})
	cfg.Seed = seed
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(cfg)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(500)
	if done != 1 {
		t.Fatalf("request did not recover from CRC failure (done=%d)", done)
	}
	if r.pipe.Stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", r.pipe.Stats.Retries)
	}
	if r.fab.PCAP.Errors != 1 || r.fab.PCAP.Transfers != 1 {
		t.Errorf("device errors=%d transfers=%d, want 1/1", r.fab.PCAP.Errors, r.fab.PCAP.Transfers)
	}
	// The staged image was fine — no invalidation, still resident.
	if r.pipe.Cache.Stats.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0 for a transient CRC fault", r.pipe.Cache.Stats.Invalidations)
	}
}

// TestPCAPStallReapedByWatchdog: a hung transfer is aborted by the
// pipeline watchdog and re-downloaded.
func TestPCAPStallReapedByWatchdog(t *testing.T) {
	cfg := fault.Config{PCAPStallPermille: 400}
	seed := findSeed(t, cfg, func(in *fault.Injector) bool {
		return in.PCAPStart(0, 0).Stall && !in.PCAPStart(0, 0).Stall
	})
	cfg.Seed = seed
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(cfg)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(500)
	if done != 1 {
		t.Fatalf("request did not recover from stalled transfer (done=%d)", done)
	}
	if r.pipe.Stats.Timeouts != 1 {
		t.Errorf("watchdog timeouts = %d, want 1", r.pipe.Stats.Timeouts)
	}
	if r.fab.PCAP.Aborts != 1 {
		t.Errorf("device aborts = %d, want 1", r.fab.PCAP.Aborts)
	}
	if r.pipe.Stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", r.pipe.Stats.Retries)
	}
}

// TestPRRQuarantine: repeated config faults on one PRR quarantine it and
// fail the request instead of retrying forever.
func TestPRRQuarantine(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1)
	r.pipe.Inject = fault.New(fault.Config{
		Seed: 11, PRRFaultPermille: 1000, QuarantineAfter: 2, MaxRetries: 5,
	})
	var ok, failed int
	req := r.request(1, 0, 1, &ok)
	req.OnDone = func(_ *Request, good bool) {
		if !good {
			failed++
		}
	}
	r.pipe.Submit(req)
	r.clock.RunUntilIdle(500)
	if failed != 1 {
		t.Fatalf("request against always-faulting PRR: failed=%d, want 1", failed)
	}
	if !r.pipe.Quarantined(0) {
		t.Error("PRR0 not quarantined after repeated config faults")
	}
	if r.pipe.Quarantined(1) {
		t.Error("healthy PRR1 quarantined")
	}
	if r.pipe.Stats.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", r.pipe.Stats.Quarantines)
	}
	if r.pipe.PRRFaults(0) != 2 {
		t.Errorf("PRR0 fault count = %d, want 2 (threshold)", r.pipe.PRRFaults(0))
	}
	if !r.pipe.Idle() {
		t.Error("pipeline wedged after quarantine failure")
	}
}

// TestPurgeOwner: teardown removes an owner's queued requests and fill
// waiters, releases their pins, and orphans (but does not abort) its
// active transfer.
func TestPurgeOwner(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 8<<10, 1, 2)
	var stage int
	r.pipe.Submit(r.request(2, 0, 1, &stage)) // stage image 2
	r.clock.RunUntilIdle(200)

	type owner struct{ name string }
	x, y := &owner{"x"}, &owner{"y"}
	var fired int
	mk := func(id uint16, o *owner, prr int) *Request {
		req := r.request(id, prr, 1, new(int))
		req.Owner = o
		req.OnDone = func(*Request, bool) { fired++ }
		return req
	}
	r.pipe.Submit(mk(2, y, 0)) // warm: takes the PCAP channel
	r.pipe.Submit(mk(2, x, 1)) // warm: queued behind y
	r.pipe.Submit(mk(1, x, 1)) // cold: waiter on image 1's fill
	if !r.pipe.PendingFor(x) {
		t.Fatal("x not pending before purge")
	}
	if n := r.pipe.PurgeOwner(x); n != 2 {
		t.Fatalf("purged %d requests, want 2 (one queued, one fill waiter)", n)
	}
	if r.pipe.PendingFor(x) {
		t.Error("x still pending after purge")
	}
	if r.pipe.Stats.Purged != 2 {
		t.Errorf("Stats.Purged = %d, want 2", r.pipe.Stats.Purged)
	}
	r.clock.RunUntilIdle(500)
	if fired != 1 {
		t.Errorf("OnDone fired %d times, want 1 (y only; purged requests stay silent)", fired)
	}
	// The fill for image 1 still landed (the staged image remains
	// useful) with no dangling pins anywhere.
	for _, id := range []uint16{1, 2} {
		e := r.pipe.Cache.Peek(r.offs[id])
		if e == nil {
			t.Fatalf("image %d not resident after purge", id)
		}
		if e.pins != 0 || e.Loading() {
			t.Errorf("image %d: pins=%d loading=%v, want clean resident", id, e.pins, e.Loading())
		}
	}
	if !r.pipe.Idle() {
		t.Error("pipeline not idle after purge and drain")
	}
}

// TestFaultPipelineDeterministic: the same fault plan over the same
// traffic yields byte-identical stats and device counters.
func TestFaultPipelineDeterministic(t *testing.T) {
	run := func() (Stats, fault.Stats, uint64, uint64) {
		r := newRig(t, Config{CacheBytes: 48 << 10}, 8<<10, 1, 2, 3)
		r.pipe.Inject = fault.New(fault.Config{
			Seed: 99, SDErrorPermille: 150, SDStallPermille: 100, CorruptPermille: 120,
			PCAPCRCPermille: 150, PCAPStallPermille: 80, PRRFaultPermille: 120,
			QuarantineAfter: 3, MaxRetries: 2,
		})
		var done int
		for i := 0; i < 30; i++ {
			id := uint16(1 + i%3)
			r.pipe.Submit(r.request(id, i%2, 1, &done))
			r.clock.RunUntilIdle(2000)
		}
		return r.pipe.Stats, r.pipe.Inject.Stats, r.fab.PCAP.Transfers, r.fab.PCAP.Errors
	}
	s1, i1, t1, e1 := run()
	s2, i2, t2, e2 := run()
	if s1 != s2 || i1 != i2 || t1 != t2 || e1 != e2 {
		t.Fatalf("fault pipeline diverged:\n%+v %+v %d %d\n%+v %+v %d %d", s1, i1, t1, e1, s2, i2, t2, e2)
	}
	if i1.Total() == 0 {
		t.Fatal("plan injected nothing over 30 requests — rates too low for the test to mean anything")
	}
}
