package reconfig

// Prefetcher is the history-based predictor behind speculative cache
// fills. It keeps a per-PRR record of the last bitstream configured there
// and a first-order transition table (previous image → next image counts)
// learned from completed demand reconfigurations. After each completion
// the pipeline asks it for the most likely successor and, if the PCAP
// path is idle, issues a speculative SD→cache fill — never a speculative
// PCAP write, so mispredictions waste only SD bandwidth, not fabric
// state.
type Prefetcher struct {
	last  map[int]uint32               // PRR -> last demanded image key
	trans map[uint32]map[uint32]uint64 // image -> successor -> count
	size  map[uint32]uint32            // learned image lengths

	Stats PrefetchStats
}

// PrefetchStats counts predictor outcomes. Hits are demand requests that
// found their image resident (or filling) because of a prefetch; Useless
// counts speculative entries evicted before any demand touched them.
type PrefetchStats struct {
	Transitions uint64
	Issued      uint64
	Hits        uint64
	Useless     uint64
}

// NewPrefetcher returns an empty predictor.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{
		last:  make(map[int]uint32),
		trans: make(map[uint32]map[uint32]uint64),
		size:  make(map[uint32]uint32),
	}
}

// Observe records a completed demand reconfiguration: image key (length
// bytes) was configured into PRR prr. The transition from the region's
// previous occupant feeds the history table.
func (p *Prefetcher) Observe(prr int, key, length uint32) {
	p.size[key] = length
	if prev, ok := p.last[prr]; ok && prev != key {
		m := p.trans[prev]
		if m == nil {
			m = make(map[uint32]uint64)
			p.trans[prev] = m
		}
		m[key]++
		p.Stats.Transitions++
	}
	p.last[prr] = key
}

// Predict returns the most likely image to follow key, with its learned
// length. Ties break toward the smaller key so prediction is
// deterministic; ok is false when key has no recorded successors.
func (p *Prefetcher) Predict(key uint32) (next, length uint32, ok bool) {
	m := p.trans[key]
	if len(m) == 0 {
		return 0, 0, false
	}
	var bestKey uint32
	var bestN uint64
	for k, n := range m {
		if n > bestN || (n == bestN && k < bestKey) {
			bestKey, bestN = k, n
		}
	}
	return bestKey, p.size[bestKey], true
}
