package reconfig

import "sort"

// Prefetcher is the history-based predictor behind speculative cache
// fills. It keeps a per-PRR record of the last bitstream configured there
// and a first-order transition table (previous image → next image counts)
// learned from completed demand reconfigurations. After each completion
// the pipeline asks it for the most likely successor and, if the PCAP
// path is idle, issues a speculative SD→cache fill — never a speculative
// PCAP write, so mispredictions waste only SD bandwidth, not fabric
// state.
type Prefetcher struct {
	last map[int]uint32 // PRR -> last demanded image key
	// trans maps an image to its successor records, kept sorted by
	// successor key. The successor pick scans this slice — never a map —
	// so the prediction (and every speculative fill it triggers) is
	// identical run to run.
	trans map[uint32][]succ
	size  map[uint32]uint32 // learned image lengths

	Stats PrefetchStats
}

// succ is one learned transition target: image key and how many times the
// transition was observed.
type succ struct {
	key uint32
	n   uint64
}

// PrefetchStats counts predictor outcomes. Hits are demand requests that
// found their image resident (or filling) because of a prefetch; Useless
// counts speculative entries evicted before any demand touched them.
type PrefetchStats struct {
	Transitions uint64
	Issued      uint64
	Hits        uint64
	Useless     uint64
}

// NewPrefetcher returns an empty predictor.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{
		last:  make(map[int]uint32),
		trans: make(map[uint32][]succ),
		size:  make(map[uint32]uint32),
	}
}

// Observe records a completed demand reconfiguration: image key (length
// bytes) was configured into PRR prr. The transition from the region's
// previous occupant feeds the history table.
func (p *Prefetcher) Observe(prr int, key, length uint32) {
	p.size[key] = length
	if prev, ok := p.last[prr]; ok && prev != key {
		s := p.trans[prev]
		i := sort.Search(len(s), func(i int) bool { return s[i].key >= key })
		if i < len(s) && s[i].key == key {
			s[i].n++
		} else {
			s = append(s, succ{})
			copy(s[i+1:], s[i:])
			s[i] = succ{key: key, n: 1}
			p.trans[prev] = s
		}
		p.Stats.Transitions++
	}
	p.last[prr] = key
}

// Predict returns the most likely image to follow key, with its learned
// length. The successor list is scanned in ascending key order and only a
// strictly higher count displaces the running best, so ties break toward
// the lowest key and the answer never depends on observation order; ok is
// false when key has no recorded successors.
func (p *Prefetcher) Predict(key uint32) (next, length uint32, ok bool) {
	s := p.trans[key]
	if len(s) == 0 {
		return 0, 0, false
	}
	best := s[0]
	for _, c := range s[1:] {
		if c.n > best.n {
			best = c
		}
	}
	return best.key, p.size[best.key], true
}
