package reconfig

import "testing"

// The successor pick must break count ties toward the lowest key and must
// not depend on the order the transitions were observed in.
func TestPrefetchPredictTieBreak(t *testing.T) {
	// Three successors of image 100, all observed twice, fed in three
	// different interleavings. Every permutation must predict the lowest
	// key (30).
	perms := [][]uint32{
		{90, 30, 60, 90, 30, 60},
		{30, 60, 90, 90, 60, 30},
		{60, 90, 30, 30, 90, 60},
		{90, 90, 60, 60, 30, 30},
	}
	for _, order := range perms {
		p := NewPrefetcher()
		p.Observe(0, 100, 512)
		for _, next := range order {
			p.Observe(0, next, next*10)
			p.Observe(0, 100, 512) // return to the hub image
		}
		next, length, ok := p.Predict(100)
		if !ok {
			t.Fatalf("order %v: no prediction", order)
		}
		if next != 30 {
			t.Errorf("order %v: predicted %d, want 30 (tie -> lowest key)", order, next)
		}
		if length != 300 {
			t.Errorf("order %v: predicted length %d, want 300", order, length)
		}
		if p.Stats.Transitions != uint64(2*len(order)) {
			t.Errorf("order %v: transitions = %d, want %d", order, p.Stats.Transitions, 2*len(order))
		}
	}
}

// A strictly higher count must win regardless of key ordering.
func TestPrefetchPredictHighestCountWins(t *testing.T) {
	p := NewPrefetcher()
	feed := func(next uint32, times int) {
		for i := 0; i < times; i++ {
			p.Observe(1, 200, 64)
			p.Observe(1, next, 128)
		}
	}
	feed(50, 2)
	feed(10, 1) // lower key but fewer observations
	feed(80, 3) // higher key, most observations
	next, _, ok := p.Predict(200)
	if !ok || next != 80 {
		t.Fatalf("Predict(200) = %d (ok=%v), want 80", next, ok)
	}
}

// Identical histories must yield identical predictions across many
// freshly built predictors — the regression guard for the map-iteration
// successor pick, which let the host's map layout choose among tied
// successors.
func TestPrefetchPredictStableAcrossRebuilds(t *testing.T) {
	history := []struct {
		prr         int
		key, length uint32
	}{
		{0, 7, 64}, {0, 3, 64}, {0, 7, 64}, {0, 9, 64}, {0, 7, 64}, {0, 5, 64},
		{1, 7, 64}, {1, 1, 64}, {1, 7, 64}, {1, 11, 64},
	}
	var first uint32
	for trial := 0; trial < 50; trial++ {
		p := NewPrefetcher()
		for _, h := range history {
			p.Observe(h.prr, h.key, h.length)
		}
		next, _, ok := p.Predict(7)
		if !ok {
			t.Fatal("no prediction for hub image 7")
		}
		if trial == 0 {
			first = next
			// All of 3, 9, 5, 1, 11 were seen once after 7; lowest wins.
			if next != 1 {
				t.Fatalf("Predict(7) = %d, want 1 (tie -> lowest key)", next)
			}
			continue
		}
		if next != first {
			t.Fatalf("trial %d: Predict(7) = %d, diverged from first trial's %d", trial, next, first)
		}
	}
}
