package reconfig

// Queue is the PCAP request queue: reconfiguration requests whose
// bitstream is ready but whose download must wait for the single PCAP
// channel. It replaces the old busy-rejection (the manager returned Busy
// and the client retried the whole Fig. 7 routine) with priority-ordered
// admission — requests carry their client PD's scheduling priority, and
// equal priorities drain FIFO.
type Queue struct {
	items []*Request
	seq   uint64

	Stats QueueStats
}

// QueueStats aggregates queue pressure. DepthSum accumulates the depth
// observed after every enqueue, so DepthSum/Enqueued is the mean depth a
// queued request saw.
type QueueStats struct {
	Enqueued uint64
	MaxDepth uint64
	DepthSum uint64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Push enqueues a ready request.
func (q *Queue) Push(r *Request) {
	q.seq++
	r.seq = q.seq
	q.items = append(q.items, r)
	q.Stats.Enqueued++
	d := uint64(len(q.items))
	q.Stats.DepthSum += d
	if d > q.Stats.MaxDepth {
		q.Stats.MaxDepth = d
	}
}

// Pop removes and returns the highest-priority request (FIFO within a
// priority level), or nil when the queue is empty.
func (q *Queue) Pop() *Request {
	best := -1
	for i, r := range q.items {
		if best < 0 || r.Priority > q.items[best].Priority ||
			(r.Priority == q.items[best].Priority && r.seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	r := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return r
}

// Depth returns the number of waiting requests.
func (q *Queue) Depth() int { return len(q.items) }

// MeanDepth returns the average depth observed at enqueue time.
func (q *Queue) MeanDepth() float64 {
	if q.Stats.Enqueued == 0 {
		return 0
	}
	return float64(q.Stats.DepthSum) / float64(q.Stats.Enqueued)
}

// PurgeOwner removes and returns every waiting request owned by owner,
// preserving the relative order of the rest — the PD-teardown /
// capability-revocation path: a dead client's queued reconfigurations
// must not reach the PCAP (its vGIC is gone and its completion would be
// delivered to a recycled PD id).
func (q *Queue) PurgeOwner(owner any) []*Request {
	var purged []*Request
	kept := q.items[:0]
	for _, r := range q.items {
		if r.Owner == owner {
			purged = append(purged, r)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	return purged
}

// any reports whether some waiting request satisfies pred.
func (q *Queue) any(pred func(*Request) bool) bool {
	for _, r := range q.items {
		if pred(r) {
			return true
		}
	}
	return false
}
