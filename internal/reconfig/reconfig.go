// Package reconfig turns the raw PCAP device into a managed
// reconfiguration pipeline. In the paper, hardware-task switching cost is
// dominated by reconfiguration: every allocation miss pays an SD-card
// read of the .bit file plus a serial PCAP download (§IV-B/§IV-D). The
// pipeline attacks both legs:
//
//   - a bitstream cache (cache.go): a bounded DDR/OCM-resident store in
//     front of the SD path with LRU replacement and pin-while-loading
//     semantics, so repeat reconfigurations of a cached image skip the
//     SD read entirely;
//   - a PCAP request queue (queue.go): a priority-aware reconfiguration
//     scheduler that replaces the old busy-rejection, letting VMs on
//     both cores overlap compute with a pending download;
//   - a history-based prefetcher (prefetch.go): per-PRR task-transition
//     history drives speculative cache fills — never speculative PCAP
//     writes — during idle windows.
//
// The pipeline is event-driven on the shared simulated clock: Submit
// never blocks the caller (the Hardware Task Manager "does NOT wait", to
// overlap the reconfiguration overhead, §IV-E); SD fills and PCAP
// transfers complete through scheduled events and the device's
// completion hook.
package reconfig

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// SD-card fetch model: a class-10 card over the Zynq SDIO sustains on the
// order of 20 MB/s, so each byte costs FrequencyHz/20MB ≈ 33 cycles, plus
// a fixed command/seek setup. This is the cost a cache hit avoids; the
// PCAP leg (pl.TransferCycles, ~5 cycles/byte) is paid either way.
const (
	sdCyclesPerByte = 33
	sdSetupCycles   = 40_000 // ~60 µs command setup + FAT walk

	// cacheAdminCycles is the warm-hit bookkeeping (tag lookup + LRU
	// update in kernel data).
	cacheAdminCycles = 260

	// pcapProgramCycles covers the four strongly-ordered devcfg register
	// writes that kick one transfer.
	pcapProgramCycles = 80
)

// SDFetchCycles is the modelled latency of reading an n-byte bitstream
// image from the SD card into the staging store.
func SDFetchCycles(n int) simclock.Cycles {
	return sdSetupCycles + simclock.Cycles(n)*sdCyclesPerByte
}

// Config parameterizes a pipeline.
type Config struct {
	// CacheBytes bounds the bitstream cache (0 disables caching: every
	// request pays the SD fetch).
	CacheBytes uint32
	// Prefetch enables the history-based speculative fills.
	Prefetch bool
}

// DefaultConfig holds the paper-platform defaults: a 1 MiB cache (a
// fraction of the 22 MiB catalog, enough for a working set of a few
// images) with prefetching on.
func DefaultConfig() Config { return Config{CacheBytes: 1 << 20, Prefetch: true} }

// Request is one reconfiguration through the pipeline.
type Request struct {
	// Key identifies the bitstream image (its offset inside the store).
	Key uint32
	// SrcOff/Len locate the image for the PCAP leg.
	SrcOff uint32
	Len    uint32
	// Target is the destination PRR.
	Target int
	// Priority orders the PCAP queue (the client PD's scheduling
	// priority; higher wins).
	Priority int
	// Owner is an opaque client cookie (the kernel stores the PD) used
	// by PendingFor.
	Owner any
	// Flow is the trace flow id stitching this request into its causal
	// chain (the hw-task request id; 0 when untraced).
	Flow uint64

	// OnStart fires when the PCAP transfer for this request is about to
	// kick (the kernel routes the completion IRQ to the owner here).
	OnStart func(*Request)
	// OnDone fires when the transfer finished (ok reports success).
	OnDone func(*Request, bool)

	warm      bool
	submitted simclock.Cycles
	readyAt   simclock.Cycles
	seq       uint64
	// pinned is the cache entry this request holds a pin on (nil for
	// bypass fetches). Completion releases exactly this pin — looking the
	// key up again would steal a pin from an entry inserted by a later
	// request for the same image.
	pinned *CacheEntry
}

// fill is one SD→cache staging read. entry is nil for a bypass fetch
// (image did not fit the cache); waiters are the demand requests released
// when the read lands.
type fill struct {
	key         uint32
	length      uint32
	entry       *CacheEntry
	waiters     []*Request
	speculative bool
	// flow is the trace flow id of the demand request that started the
	// fill (0 for speculative fills).
	flow uint64
}

// Stats counts pipeline-level outcomes (cache/queue/prefetch keep their
// own).
type Stats struct {
	Requests    uint64 // demand requests submitted
	Queued      uint64 // requests that waited for the PCAP channel
	Completions uint64
	Failures    uint64
}

// Pipeline owns the PCAP on behalf of the kernel: all managed
// reconfigurations flow through Submit, and the device's completion hook
// drains the queue.
type Pipeline struct {
	Clock   *simclock.Clock
	Fabric  *pl.Fabric
	Bus     *physmem.Bus
	StorePA physmem.Addr

	Cache    *Cache
	Queue    *Queue
	Prefetch *Prefetcher

	// PrefetchOn gates speculative fills (history is learned regardless).
	PrefetchOn bool

	// Probes, when set, receives the reconfiguration latency samples
	// (PhaseReconfigCold / PhaseReconfigWarm / PhaseReconfigQWait).
	Probes *measure.Set

	// Trace, when set, receives the pipeline's journey events (submit,
	// fill, queue, PCAP start/done). The kernel points it at the ring of
	// the core whose goroutine runs the pipeline — the same core Clock
	// belongs to.
	Trace *trace.Ring

	Stats Stats

	active      *Request
	fills       []*fill
	fillRunning bool
}

// New builds a pipeline over the fabric's PCAP and installs its
// completion hook. storePA is the physical base of the bitstream store.
func New(clock *simclock.Clock, fabric *pl.Fabric, bus *physmem.Bus, storePA physmem.Addr, cfg Config) *Pipeline {
	p := &Pipeline{
		Clock:      clock,
		Fabric:     fabric,
		Bus:        bus,
		StorePA:    storePA,
		Cache:      NewCache(cfg.CacheBytes),
		Queue:      NewQueue(),
		Prefetch:   NewPrefetcher(),
		PrefetchOn: cfg.Prefetch,
	}
	p.Cache.OnEvict = p.onEvict
	fabric.PCAP.OnComplete = p.pcapComplete
	return p
}

// SetCacheCapacity replaces the cache with an empty one of the given
// budget (experiment sweeps resize before any traffic flows).
func (p *Pipeline) SetCacheCapacity(bytes uint32) {
	p.Cache = NewCache(bytes)
	p.Cache.OnEvict = p.onEvict
}

func (p *Pipeline) onEvict(e *CacheEntry) {
	if e.speculative {
		p.Prefetch.Stats.Useless++
	}
}

// Submit accepts a demand reconfiguration. It never blocks and never
// rejects: the request proceeds through (optionally) an SD fill, then the
// PCAP queue, then the download; OnDone fires at the end.
func (p *Pipeline) Submit(r *Request) {
	r.submitted = p.Clock.Now()
	p.Stats.Requests++

	e := p.Cache.Lookup(r.Key)
	switch {
	case e != nil && !e.loading:
		// Warm hit: the image is staged; skip straight to the PCAP leg.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigWarm)
		r.warm = true
		if e.speculative {
			e.speculative = false
			p.Prefetch.Stats.Hits++
		}
		p.Cache.Pin(e)
		r.pinned = e
		p.Clock.Advance(cacheAdminCycles)
		p.ready(r)

	case e != nil:
		// Coalesced miss: a fill for this image is already in flight —
		// join it instead of re-reading the card.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigCoalesced)
		p.Cache.Pin(e)
		r.pinned = e
		f := p.fillFor(r.Key)
		if f == nil {
			// Defensive: loading entry without a fill should not happen.
			p.Cache.FillDone(e)
			p.ready(r)
			return
		}
		if f.speculative {
			// The prefetch partially hid this fetch.
			f.speculative = false
			e.speculative = false
			p.Prefetch.Stats.Hits++
		}
		f.waiters = append(f.waiters, r)

	default:
		// Cold miss: reserve a cache slot (may evict LRU images) and
		// read the card. A nil entry means bypass — the image could not
		// be cached but the fetch still has to happen.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigColdMiss)
		e = p.Cache.Insert(r.Key, r.Len, false)
		if e != nil {
			p.Cache.Pin(e)
			r.pinned = e
		}
		p.enqueueFill(&fill{key: r.Key, length: r.Len, entry: e, waiters: []*Request{r}, flow: r.Flow})
	}
}

// ready moves a request whose image is staged onto the PCAP channel, or
// into the queue when a transfer is in flight.
func (p *Pipeline) ready(r *Request) {
	r.readyAt = p.Clock.Now()
	if p.active == nil {
		p.start(r)
		return
	}
	p.Trace.Emit(p.Clock.Now(), trace.KindReconfigQueued, r.Flow, uint64(r.Key), 0)
	p.Queue.Push(r)
	p.Stats.Queued++
}

// start kicks the PCAP download for r.
func (p *Pipeline) start(r *Request) {
	p.active = r
	if p.Probes != nil {
		p.Probes.Add(measure.PhaseReconfigQWait, p.Clock.Now()-r.readyAt)
	}
	if r.OnStart != nil {
		r.OnStart(r)
	}
	dc := physmem.DevCfgBase
	_ = p.Bus.Write32(dc+pl.PCAPRegSrc, uint32(p.StorePA)+r.SrcOff)
	_ = p.Bus.Write32(dc+pl.PCAPRegLen, r.Len)
	_ = p.Bus.Write32(dc+pl.PCAPRegTarget, uint32(r.Target))
	_ = p.Bus.Write32(dc+pl.PCAPRegCtrl, 1)
	p.Clock.Advance(pcapProgramCycles)
	p.Trace.Emit(p.Clock.Now(), trace.KindPCAPStart, r.Flow, uint64(r.Target), uint64(r.Len))
}

// pcapComplete is the device completion hook: account the finished
// request, feed the prefetcher, and drain the queue (demand work first,
// then speculative fills in the idle window).
func (p *Pipeline) pcapComplete(target int, ok bool) {
	r := p.active
	if r == nil || r.Target != target {
		return // a transfer the pipeline did not launch (direct device use)
	}
	p.active = nil
	okBit := uint64(0)
	if ok {
		okBit = 1
	}
	p.Trace.Emit(p.Clock.Now(), trace.KindPCAPDone, r.Flow, uint64(r.Target), okBit)
	if r.pinned != nil {
		p.Cache.Unpin(r.pinned)
		r.pinned = nil
	}
	if ok {
		p.Stats.Completions++
		p.Prefetch.Observe(r.Target, r.Key, r.Len)
	} else {
		p.Stats.Failures++
	}
	if p.Probes != nil {
		phase := measure.PhaseReconfigCold
		if r.warm {
			phase = measure.PhaseReconfigWarm
		}
		p.Probes.Add(phase, p.Clock.Now()-r.submitted)
	}
	if r.OnDone != nil {
		r.OnDone(r, ok)
	}
	if next := p.Queue.Pop(); next != nil {
		p.start(next)
		return
	}
	if ok {
		p.maybePrefetch(r.Key)
	}
}

// maybePrefetch issues a speculative cache fill for the predicted
// successor of key, but only in an idle window: nothing queued, no
// transfer active, and the SD channel free.
func (p *Pipeline) maybePrefetch(key uint32) {
	if !p.PrefetchOn || p.active != nil || p.Queue.Depth() > 0 || p.fillRunning {
		return
	}
	next, length, ok := p.Prefetch.Predict(key)
	if !ok || length == 0 || p.Cache.Peek(next) != nil {
		return
	}
	e := p.Cache.Insert(next, length, true)
	if e == nil {
		return
	}
	p.Prefetch.Stats.Issued++
	p.enqueueFill(&fill{key: next, length: length, entry: e, speculative: true})
}

// enqueueFill adds an SD read to the (single-channel) fill engine. Demand
// fills jump ahead of waiting speculative ones; an in-flight read is
// never aborted.
func (p *Pipeline) enqueueFill(f *fill) {
	if f.speculative {
		p.fills = append(p.fills, f)
	} else {
		// Insert after the in-flight fill (index 0 when running) but
		// before any speculative stragglers.
		insert := 0
		if p.fillRunning {
			insert = 1
		}
		for insert < len(p.fills) && !p.fills[insert].speculative {
			insert++
		}
		p.fills = append(p.fills, nil)
		copy(p.fills[insert+1:], p.fills[insert:])
		p.fills[insert] = f
	}
	if !p.fillRunning {
		p.runFill()
	}
}

func (p *Pipeline) runFill() {
	f := p.fills[0]
	p.fillRunning = true
	p.Trace.Emit(p.Clock.Now(), trace.KindFillStart, f.flow, uint64(f.key), uint64(f.length))
	p.Clock.After(SDFetchCycles(int(f.length)), func(simclock.Cycles) {
		p.fillDone(f)
	})
}

func (p *Pipeline) fillDone(f *fill) {
	p.fills = p.fills[1:]
	p.fillRunning = false
	p.Trace.Emit(p.Clock.Now(), trace.KindFillDone, f.flow, uint64(f.key), 0)
	if f.entry != nil {
		p.Cache.FillDone(f.entry)
	}
	for _, w := range f.waiters {
		p.ready(w)
	}
	// ready() can re-enter the pipeline (a waiter's OnStart may submit a
	// new request whose fill restarts the engine), so only kick the next
	// read if no one else already has.
	if !p.fillRunning && len(p.fills) > 0 {
		p.runFill()
	}
}

// fillFor returns the pending or in-flight fill for key, if any.
func (p *Pipeline) fillFor(key uint32) *fill {
	for _, f := range p.fills {
		if f.key == key {
			return f
		}
	}
	return nil
}

// InFlight reports whether any demand request targeting PRR prr is still
// somewhere in the pipeline (filling, queued, or downloading). The
// Hardware Task Manager uses it to retire its Loading flags.
func (p *Pipeline) InFlight(prr int) bool {
	return p.anyDemand(func(r *Request) bool { return r.Target == prr })
}

// PendingFor reports whether owner has a request anywhere in the
// pipeline — the guest-visible "reconfiguration in progress" poll.
func (p *Pipeline) PendingFor(owner any) bool {
	return p.anyDemand(func(r *Request) bool { return r.Owner == owner })
}

func (p *Pipeline) anyDemand(pred func(*Request) bool) bool {
	if p.active != nil && pred(p.active) {
		return true
	}
	if p.Queue.any(pred) {
		return true
	}
	for _, f := range p.fills {
		for _, w := range f.waiters {
			if pred(w) {
				return true
			}
		}
	}
	return false
}

// Idle reports whether the pipeline has no demand work anywhere.
func (p *Pipeline) Idle() bool {
	return !p.anyDemand(func(*Request) bool { return true })
}

// HitRatio is the cache's demand hit ratio.
func (p *Pipeline) HitRatio() float64 { return p.Cache.HitRatio() }

// PublishCounters writes the pipeline's scalar statistics into a measure
// set so sweeps report them alongside the latency probes.
func (p *Pipeline) PublishCounters(set *measure.Set) {
	cs, qs, fs := p.Cache.Stats, p.Queue.Stats, p.Prefetch.Stats
	set.SetCounter("reconfig_cache_hits", float64(cs.Hits))
	set.SetCounter("reconfig_cache_misses", float64(cs.Misses))
	set.SetCounter("reconfig_cache_coalesced", float64(cs.Coalesced))
	set.SetCounter("reconfig_cache_evictions", float64(cs.Evictions))
	set.SetCounter("reconfig_cache_hit_ratio", p.HitRatio())
	set.SetCounter("reconfig_queue_max_depth", float64(qs.MaxDepth))
	set.SetCounter("reconfig_queue_mean_depth", p.Queue.MeanDepth())
	set.SetCounter("reconfig_queued_starts", float64(p.Stats.Queued))
	set.SetCounter("reconfig_prefetch_issued", float64(fs.Issued))
	set.SetCounter("reconfig_prefetch_hits", float64(fs.Hits))
	set.SetCounter("pcap_transfers", float64(p.Fabric.PCAP.Transfers))
	set.SetCounter("pcap_errors", float64(p.Fabric.PCAP.Errors))
}

// Summary renders the one-line reconfiguration report the experiment
// commands print after a sweep.
func (p *Pipeline) Summary() string {
	cs := p.Cache.Stats
	return fmt.Sprintf(
		"reconfig: pcap transfers=%d errors=%d | cache hits=%d misses=%d ratio=%.2f evictions=%d bypasses=%d | queue max=%d mean=%.2f queued=%d | prefetch issued=%d hits=%d useless=%d",
		p.Fabric.PCAP.Transfers, p.Fabric.PCAP.Errors,
		cs.Hits, cs.Misses, p.HitRatio(), cs.Evictions, cs.Bypasses,
		p.Queue.Stats.MaxDepth, p.Queue.MeanDepth(), p.Stats.Queued,
		p.Prefetch.Stats.Issued, p.Prefetch.Stats.Hits, p.Prefetch.Stats.Useless)
}
