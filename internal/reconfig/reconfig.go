// Package reconfig turns the raw PCAP device into a managed
// reconfiguration pipeline. In the paper, hardware-task switching cost is
// dominated by reconfiguration: every allocation miss pays an SD-card
// read of the .bit file plus a serial PCAP download (§IV-B/§IV-D). The
// pipeline attacks both legs:
//
//   - a bitstream cache (cache.go): a bounded DDR/OCM-resident store in
//     front of the SD path with LRU replacement and pin-while-loading
//     semantics, so repeat reconfigurations of a cached image skip the
//     SD read entirely;
//   - a PCAP request queue (queue.go): a priority-aware reconfiguration
//     scheduler that replaces the old busy-rejection, letting VMs on
//     both cores overlap compute with a pending download;
//   - a history-based prefetcher (prefetch.go): per-PRR task-transition
//     history drives speculative cache fills — never speculative PCAP
//     writes — during idle windows.
//
// The pipeline is event-driven on the shared simulated clock: Submit
// never blocks the caller (the Hardware Task Manager "does NOT wait", to
// overlap the reconfiguration overhead, §IV-E); SD fills and PCAP
// transfers complete through scheduled events and the device's
// completion hook.
package reconfig

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/measure"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// SD-card fetch model: a class-10 card over the Zynq SDIO sustains on the
// order of 20 MB/s, so each byte costs FrequencyHz/20MB ≈ 33 cycles, plus
// a fixed command/seek setup. This is the cost a cache hit avoids; the
// PCAP leg (pl.TransferCycles, ~5 cycles/byte) is paid either way.
const (
	sdCyclesPerByte = 33
	sdSetupCycles   = 40_000 // ~60 µs command setup + FAT walk

	// cacheAdminCycles is the warm-hit bookkeeping (tag lookup + LRU
	// update in kernel data).
	cacheAdminCycles = 260

	// pcapProgramCycles covers the four strongly-ordered devcfg register
	// writes that kick one transfer.
	pcapProgramCycles = 80
)

// SDFetchCycles is the modelled latency of reading an n-byte bitstream
// image from the SD card into the staging store.
func SDFetchCycles(n int) simclock.Cycles {
	return sdSetupCycles + simclock.Cycles(n)*sdCyclesPerByte
}

// Config parameterizes a pipeline.
type Config struct {
	// CacheBytes bounds the bitstream cache (0 disables caching: every
	// request pays the SD fetch).
	CacheBytes uint32
	// Prefetch enables the history-based speculative fills.
	Prefetch bool
}

// DefaultConfig holds the paper-platform defaults: a 1 MiB cache (a
// fraction of the 22 MiB catalog, enough for a working set of a few
// images) with prefetching on.
func DefaultConfig() Config { return Config{CacheBytes: 1 << 20, Prefetch: true} }

// Request is one reconfiguration through the pipeline.
type Request struct {
	// Key identifies the bitstream image (its offset inside the store).
	Key uint32
	// SrcOff/Len locate the image for the PCAP leg.
	SrcOff uint32
	Len    uint32
	// Target is the destination PRR.
	Target int
	// Priority orders the PCAP queue (the client PD's scheduling
	// priority; higher wins).
	Priority int
	// Owner is an opaque client cookie (the kernel stores the PD) used
	// by PendingFor.
	Owner any
	// Flow is the trace flow id stitching this request into its causal
	// chain (the hw-task request id; 0 when untraced).
	Flow uint64

	// OnStart fires when the PCAP transfer for this request is about to
	// kick (the kernel routes the completion IRQ to the owner here).
	OnStart func(*Request)
	// OnDone fires when the transfer finished (ok reports success).
	OnDone func(*Request, bool)

	warm      bool
	submitted simclock.Cycles
	readyAt   simclock.Cycles
	seq       uint64
	// attempts counts PCAP download launches for this request (retries
	// after CRC failures, watchdog reaps, and PRR config faults).
	attempts int
	// pinned is the cache entry this request holds a pin on (nil for
	// bypass fetches). Completion releases exactly this pin — looking the
	// key up again would steal a pin from an entry inserted by a later
	// request for the same image.
	pinned *CacheEntry
}

// fill is one SD→cache staging read. entry is nil for a bypass fetch
// (image did not fit the cache); waiters are the demand requests released
// when the read lands.
type fill struct {
	key         uint32
	length      uint32
	entry       *CacheEntry
	waiters     []*Request
	speculative bool
	// flow is the trace flow id of the demand request that started the
	// fill (0 for speculative fills).
	flow uint64
	// attempts counts SD read launches (the first try plus retries).
	attempts int
	// corrupt marks the staged image poisoned (injected fault): the
	// entry is served but its PCAP download will fail CRC.
	corrupt bool
}

// Stats counts pipeline-level outcomes (cache/queue/prefetch keep their
// own). The second block is the fault-tolerance ledger: how the pipeline
// *reacted* to injected faults (the injector's own Stats count what was
// injected).
type Stats struct {
	Requests    uint64 // demand requests submitted
	Queued      uint64 // requests that waited for the PCAP channel
	Completions uint64
	Failures    uint64

	Retries         uint64 // SD or PCAP legs relaunched after a fault
	Timeouts        uint64 // stalled PCAP transfers reaped by the watchdog
	PoisonEvictions uint64 // corrupt cache entries invalidated after CRC failure
	Quarantines     uint64 // PRRs quarantined for repeated config faults
	FaultedRequests uint64 // requests failed after exhausting retries
	Purged          uint64 // requests removed by owner teardown/revocation
}

// Pipeline owns the PCAP on behalf of the kernel: all managed
// reconfigurations flow through Submit, and the device's completion hook
// drains the queue.
type Pipeline struct {
	Clock   *simclock.Clock
	Fabric  *pl.Fabric
	Bus     *physmem.Bus
	StorePA physmem.Addr

	Cache    *Cache
	Queue    *Queue
	Prefetch *Prefetcher

	// PrefetchOn gates speculative fills (history is learned regardless).
	PrefetchOn bool

	// Probes, when set, receives the reconfiguration latency samples
	// (PhaseReconfigCold / PhaseReconfigWarm / PhaseReconfigQWait).
	Probes *measure.Set

	// Trace, when set, receives the pipeline's journey events (submit,
	// fill, queue, PCAP start/done). The kernel points it at the ring of
	// the core whose goroutine runs the pipeline — the same core Clock
	// belongs to.
	Trace *trace.Ring

	// Inject, when set, is the scenario's deterministic fault plan. It
	// must only be consulted from the pipeline's own (manager-core)
	// goroutine; nil means a fault-free run and zero overhead.
	Inject *fault.Injector

	Stats Stats

	active      *Request
	fills       []*fill
	fillRunning bool

	// watchdog reaps a stalled PCAP transfer: armed at every kick for
	// ~2x the expected latency, cancelled by normal completion.
	watchdog *simclock.Event

	// prrFaults/prrQuar track per-PRR config-fault health. Indexed by
	// target PRR, grown on demand; mutated only on the pipeline
	// goroutine and read by the manager (whose Handle runs there too).
	prrFaults []int
	prrQuar   []bool
}

// New builds a pipeline over the fabric's PCAP and installs its
// completion hook. storePA is the physical base of the bitstream store.
func New(clock *simclock.Clock, fabric *pl.Fabric, bus *physmem.Bus, storePA physmem.Addr, cfg Config) *Pipeline {
	p := &Pipeline{
		Clock:      clock,
		Fabric:     fabric,
		Bus:        bus,
		StorePA:    storePA,
		Cache:      NewCache(cfg.CacheBytes),
		Queue:      NewQueue(),
		Prefetch:   NewPrefetcher(),
		PrefetchOn: cfg.Prefetch,
	}
	p.Cache.OnEvict = p.onEvict
	fabric.PCAP.OnComplete = p.pcapComplete
	return p
}

// SetCacheCapacity replaces the cache with an empty one of the given
// budget (experiment sweeps resize before any traffic flows).
func (p *Pipeline) SetCacheCapacity(bytes uint32) {
	p.Cache = NewCache(bytes)
	p.Cache.OnEvict = p.onEvict
}

func (p *Pipeline) onEvict(e *CacheEntry) {
	if e.speculative {
		p.Prefetch.Stats.Useless++
	}
}

// Submit accepts a demand reconfiguration. It never blocks and never
// rejects: the request proceeds through (optionally) an SD fill, then the
// PCAP queue, then the download; OnDone fires at the end.
func (p *Pipeline) Submit(r *Request) {
	r.submitted = p.Clock.Now()
	p.Stats.Requests++

	e := p.Cache.Lookup(r.Key)
	switch {
	case e != nil && !e.loading:
		// Warm hit: the image is staged; skip straight to the PCAP leg.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigWarm)
		r.warm = true
		if e.speculative {
			e.speculative = false
			p.Prefetch.Stats.Hits++
		}
		p.Cache.Pin(e)
		r.pinned = e
		p.Clock.Advance(cacheAdminCycles)
		p.ready(r)

	case e != nil:
		// Coalesced miss: a fill for this image is already in flight —
		// join it instead of re-reading the card.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigCoalesced)
		p.Cache.Pin(e)
		r.pinned = e
		f := p.fillFor(r.Key)
		if f == nil {
			// Defensive: loading entry without a fill should not happen.
			p.Cache.FillDone(e)
			p.ready(r)
			return
		}
		if f.speculative {
			// The prefetch partially hid this fetch.
			f.speculative = false
			e.speculative = false
			p.Prefetch.Stats.Hits++
		}
		f.waiters = append(f.waiters, r)

	default:
		// Cold miss: reserve a cache slot (may evict LRU images) and
		// read the card. A nil entry means bypass — the image could not
		// be cached but the fetch still has to happen.
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigSubmit, r.Flow, uint64(r.Key), trace.ReconfigColdMiss)
		e = p.Cache.Insert(r.Key, r.Len, false)
		if e != nil {
			p.Cache.Pin(e)
			r.pinned = e
		}
		p.enqueueFill(&fill{key: r.Key, length: r.Len, entry: e, waiters: []*Request{r}, flow: r.Flow})
	}
}

// ready moves a request whose image is staged onto the PCAP channel, or
// into the queue when a transfer is in flight.
func (p *Pipeline) ready(r *Request) {
	r.readyAt = p.Clock.Now()
	if p.active == nil {
		p.start(r)
		return
	}
	p.Trace.Emit(p.Clock.Now(), trace.KindReconfigQueued, r.Flow, uint64(r.Key), 0)
	p.Queue.Push(r)
	p.Stats.Queued++
}

// start claims the PCAP channel for r and kicks its first download.
func (p *Pipeline) start(r *Request) {
	p.active = r
	if p.Probes != nil {
		p.Probes.Add(measure.PhaseReconfigQWait, p.Clock.Now()-r.readyAt)
	}
	if r.OnStart != nil {
		r.OnStart(r)
	}
	p.kick(r)
}

// kick programs the devcfg registers and launches one download attempt
// (the first, or a retry after a fault). Injected PCAP faults are armed
// on the device here, and the watchdog that reaps a stalled transfer is
// set for about twice the fault-free latency.
func (p *Pipeline) kick(r *Request) {
	r.attempts++
	// A poisoned staged image always fails its CRC check; otherwise
	// consult the fault plan for this attempt's fate.
	if r.pinned != nil && r.pinned.corrupt {
		p.Fabric.PCAP.InjectFault(pl.FaultCRC)
	} else {
		out := p.Inject.PCAPStart(r.Key, r.Target)
		switch {
		case out.CRC:
			p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, r.Flow, trace.FaultPCAPCRC, uint64(r.Key))
			p.Fabric.PCAP.InjectFault(pl.FaultCRC)
		case out.Stall:
			p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, r.Flow, trace.FaultPCAPStall, uint64(r.Key))
			p.Fabric.PCAP.InjectFault(pl.FaultStall)
		}
	}
	dc := physmem.DevCfgBase
	_ = p.Bus.Write32(dc+pl.PCAPRegSrc, uint32(p.StorePA)+r.SrcOff)
	_ = p.Bus.Write32(dc+pl.PCAPRegLen, r.Len)
	_ = p.Bus.Write32(dc+pl.PCAPRegTarget, uint32(r.Target))
	_ = p.Bus.Write32(dc+pl.PCAPRegCtrl, 1)
	p.Clock.Advance(pcapProgramCycles)
	p.Trace.Emit(p.Clock.Now(), trace.KindPCAPStart, r.Flow, uint64(r.Target), uint64(r.Len))
	if p.Inject != nil {
		p.watchdog = p.Clock.After(2*pl.TransferCycles(int(r.Len))+pcapProgramCycles, func(simclock.Cycles) {
			p.watchdogFire(r)
		})
	}
}

// watchdogFire reaps a PCAP transfer that blew past twice its expected
// latency: abort the hung download and retry (or fail) the request.
func (p *Pipeline) watchdogFire(r *Request) {
	p.watchdog = nil
	if p.active != r {
		return // completed in the same instant; nothing to reap
	}
	p.Fabric.PCAP.Abort()
	p.Stats.Timeouts++
	p.retryOrFail(r)
}

// retryOrFail relaunches the active request's download with exponential
// backoff, or fails it once its retry budget is spent. The request keeps
// the channel during backoff — head-of-line, but deterministic and
// bounded. Without a fault plan there is nothing transient to outwait
// (a decode failure is structural), so the request fails immediately —
// the seed pipeline's behavior.
func (p *Pipeline) retryOrFail(r *Request) {
	if p.Inject == nil {
		p.failActive(r)
		return
	}
	cfg := p.Inject.Config()
	if r.attempts > cfg.MaxRetries {
		p.failActive(r)
		return
	}
	p.Stats.Retries++
	p.Trace.Emit(p.Clock.Now(), trace.KindReconfigRetry, r.Flow, uint64(r.Key), uint64(r.attempts))
	p.Clock.After(backoff(cfg, r.attempts), func(simclock.Cycles) {
		if p.active == r {
			p.kick(r)
		}
	})
}

// backoff returns attempt n's retry delay: BackoffBase << (n-1), shift
// clamped so a misconfigured retry budget cannot overflow.
func backoff(cfg fault.Config, attempts int) simclock.Cycles {
	shift := attempts - 1
	if shift > 16 {
		shift = 16
	}
	if shift < 0 {
		shift = 0
	}
	return cfg.BackoffBase << shift
}

// failActive fails the request holding the PCAP channel and drains the
// queue behind it.
func (p *Pipeline) failActive(r *Request) {
	p.active = nil
	p.Stats.FaultedRequests++
	p.finishRequest(r, false)
	if next := p.Queue.Pop(); next != nil {
		p.start(next)
	}
}

// finishRequest is the common request epilogue: release the cache pin,
// count, sample the latency probe, and fire OnDone.
func (p *Pipeline) finishRequest(r *Request, ok bool) {
	if r.pinned != nil {
		p.Cache.Unpin(r.pinned)
		r.pinned = nil
	}
	if ok {
		p.Stats.Completions++
		p.Prefetch.Observe(r.Target, r.Key, r.Len)
	} else {
		p.Stats.Failures++
	}
	if p.Probes != nil {
		phase := measure.PhaseReconfigCold
		if r.warm {
			phase = measure.PhaseReconfigWarm
		}
		p.Probes.Add(phase, p.Clock.Now()-r.submitted)
	}
	if r.OnDone != nil {
		r.OnDone(r, ok)
	}
}

// pcapComplete is the device completion hook: account the finished
// request, feed the prefetcher, and drain the queue (demand work first,
// then speculative fills in the idle window). Failed downloads retry
// within their budget; a poisoned image is invalidated and re-fetched
// from the card; a completed download may still draw a transient PRR
// config fault, feeding the quarantine counter.
func (p *Pipeline) pcapComplete(target int, ok bool) {
	r := p.active
	if r == nil || r.Target != target {
		return // a transfer the pipeline did not launch (direct device use)
	}
	if p.watchdog != nil {
		p.Clock.Cancel(p.watchdog)
		p.watchdog = nil
	}
	okBit := uint64(0)
	if ok {
		okBit = 1
	}
	p.Trace.Emit(p.Clock.Now(), trace.KindPCAPDone, r.Flow, uint64(r.Target), okBit)

	if !ok {
		if r.pinned != nil && r.pinned.corrupt {
			// Poisoned image: the CRC failure is structural, not
			// transient — invalidate the entry so it can never be served
			// warm again, then re-fetch from the card (same retry
			// budget).
			p.Stats.PoisonEvictions++
			e := r.pinned
			p.Cache.Unpin(e)
			r.pinned = nil
			p.Cache.Invalidate(e)
			cfg := p.Inject.Config()
			if r.attempts > cfg.MaxRetries {
				p.failActive(r)
				return
			}
			p.Stats.Retries++
			p.Trace.Emit(p.Clock.Now(), trace.KindReconfigRetry, r.Flow, uint64(r.Key), uint64(r.attempts))
			p.refetch(r)
			return
		}
		p.retryOrFail(r)
		return
	}

	// The download landed; a transient PRR config fault can still spoil
	// the configuration. Repeated faults quarantine the region.
	if p.Inject.PRRConfig(r.Target) {
		p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, r.Flow, trace.FaultPRR, uint64(r.Target))
		p.notePRRFault(r.Target)
		if p.Quarantined(r.Target) {
			// No point retrying into a quarantined region; the manager
			// re-places the task on a healthy PRR on the client's retry.
			p.failActive(r)
			return
		}
		p.retryOrFail(r)
		return
	}

	p.active = nil
	p.finishRequest(r, true)
	if next := p.Queue.Pop(); next != nil {
		p.start(next)
		return
	}
	p.maybePrefetch(r.Key)
}

// refetch sends the active request's image back through the SD path
// after its poisoned cache entry was invalidated. The request releases
// the PCAP channel (the queue drains behind it) and rejoins via ready()
// once a fresh copy is staged. A second victim of the same poisoned
// entry may find a fresh entry (or fill) already present — join it
// rather than double-inserting the key.
func (p *Pipeline) refetch(r *Request) {
	p.active = nil
	r.warm = false
	if e := p.Cache.Peek(r.Key); e != nil {
		p.Cache.Pin(e)
		r.pinned = e
		if !e.loading {
			p.ready(r)
		} else if f := p.fillFor(r.Key); f != nil {
			f.waiters = append(f.waiters, r)
		} else {
			p.Cache.FillDone(e)
			p.ready(r)
		}
	} else {
		e := p.Cache.Insert(r.Key, r.Len, false)
		if e != nil {
			p.Cache.Pin(e)
			r.pinned = e
		}
		p.enqueueFill(&fill{key: r.Key, length: r.Len, entry: e, waiters: []*Request{r}, flow: r.Flow})
	}
	if p.active == nil {
		if next := p.Queue.Pop(); next != nil {
			p.start(next)
		}
	}
}

// notePRRFault bumps target's health counter, quarantining it at the
// configured threshold.
func (p *Pipeline) notePRRFault(target int) {
	for len(p.prrFaults) <= target {
		p.prrFaults = append(p.prrFaults, 0)
		p.prrQuar = append(p.prrQuar, false)
	}
	p.prrFaults[target]++
	if !p.prrQuar[target] && p.prrFaults[target] >= p.Inject.Config().QuarantineAfter {
		p.prrQuar[target] = true
		p.Stats.Quarantines++
		p.Trace.Emit(p.Clock.Now(), trace.KindPRRQuarantine, 0, uint64(target), uint64(p.prrFaults[target]))
	}
}

// Quarantined reports whether PRR target is out of the placement pool.
// Safe wherever pipeline state is readable: the manager's Handle runs on
// the same core goroutine that mutates it.
func (p *Pipeline) Quarantined(target int) bool {
	return target < len(p.prrQuar) && p.prrQuar[target]
}

// PRRFaults returns target's accumulated config-fault count.
func (p *Pipeline) PRRFaults(target int) int {
	if target < len(p.prrFaults) {
		return p.prrFaults[target]
	}
	return 0
}

// maybePrefetch issues a speculative cache fill for the predicted
// successor of key, but only in an idle window: nothing queued, no
// transfer active, and the SD channel free.
func (p *Pipeline) maybePrefetch(key uint32) {
	if !p.PrefetchOn || p.active != nil || p.Queue.Depth() > 0 || p.fillRunning {
		return
	}
	next, length, ok := p.Prefetch.Predict(key)
	if !ok || length == 0 || p.Cache.Peek(next) != nil {
		return
	}
	e := p.Cache.Insert(next, length, true)
	if e == nil {
		return
	}
	p.Prefetch.Stats.Issued++
	p.enqueueFill(&fill{key: next, length: length, entry: e, speculative: true})
}

// enqueueFill adds an SD read to the (single-channel) fill engine. Demand
// fills jump ahead of waiting speculative ones; an in-flight read is
// never aborted.
func (p *Pipeline) enqueueFill(f *fill) {
	if f.speculative {
		p.fills = append(p.fills, f)
	} else {
		// Insert after the in-flight fill (index 0 when running) but
		// before any speculative stragglers.
		insert := 0
		if p.fillRunning {
			insert = 1
		}
		for insert < len(p.fills) && !p.fills[insert].speculative {
			insert++
		}
		p.fills = append(p.fills, nil)
		copy(p.fills[insert+1:], p.fills[insert:])
		p.fills[insert] = f
	}
	if !p.fillRunning {
		p.runFill()
	}
}

func (p *Pipeline) runFill() {
	p.fillRunning = true
	p.startRead(p.fills[0])
}

// startRead launches one SD read attempt for the fill at the head of the
// engine, consulting the fault plan for its fate: an injected error
// fails the attempt after the command setup, a stall completes it at a
// multiple of the modelled latency, and a corruption stages poisoned
// bytes that the PCAP leg will reject.
func (p *Pipeline) startRead(f *fill) {
	f.attempts++
	p.Trace.Emit(p.Clock.Now(), trace.KindFillStart, f.flow, uint64(f.key), uint64(f.length))
	out := p.Inject.SDFill(f.key)
	if out.Err {
		p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, f.flow, trace.FaultSDError, uint64(f.key))
		p.Clock.After(sdSetupCycles, func(simclock.Cycles) {
			p.fillErr(f)
		})
		return
	}
	delay := SDFetchCycles(int(f.length))
	if out.Stall {
		p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, f.flow, trace.FaultSDStall, uint64(f.key))
		delay *= simclock.Cycles(p.Inject.Config().SDStallFactor)
	}
	if out.Corrupt {
		p.Trace.Emit(p.Clock.Now(), trace.KindFaultInject, f.flow, trace.FaultCorrupt, uint64(f.key))
		f.corrupt = true
	}
	p.Clock.After(delay, func(simclock.Cycles) {
		p.fillDone(f)
	})
}

// fillErr handles a failed SD read: retry with exponential backoff while
// the budget lasts (the fill keeps the single SD channel), then fail
// every waiter and drop the placeholder entry so the cache cannot leak
// pinned garbage.
func (p *Pipeline) fillErr(f *fill) {
	cfg := p.Inject.Config()
	if f.attempts <= cfg.MaxRetries {
		p.Stats.Retries++
		p.Trace.Emit(p.Clock.Now(), trace.KindReconfigRetry, f.flow, uint64(f.key), uint64(f.attempts))
		p.Clock.After(backoff(cfg, f.attempts), func(simclock.Cycles) {
			p.startRead(f)
		})
		return
	}
	// Exhausted: the image cannot be staged.
	p.fills = p.fills[1:]
	p.fillRunning = false
	p.Trace.Emit(p.Clock.Now(), trace.KindFillDone, f.flow, uint64(f.key), 1)
	for _, w := range f.waiters {
		if w.pinned != nil {
			p.Cache.Unpin(w.pinned)
			w.pinned = nil
		}
		p.Stats.FaultedRequests++
		p.finishRequest(w, false)
	}
	if f.entry != nil {
		p.Cache.FillFailed(f.entry)
	}
	if !p.fillRunning && len(p.fills) > 0 {
		p.runFill()
	}
}

func (p *Pipeline) fillDone(f *fill) {
	p.fills = p.fills[1:]
	p.fillRunning = false
	p.Trace.Emit(p.Clock.Now(), trace.KindFillDone, f.flow, uint64(f.key), 0)
	if f.entry != nil {
		f.entry.corrupt = f.corrupt
		p.Cache.FillDone(f.entry)
	}
	for _, w := range f.waiters {
		p.ready(w)
	}
	// ready() can re-enter the pipeline (a waiter's OnStart may submit a
	// new request whose fill restarts the engine), so only kick the next
	// read if no one else already has.
	if !p.fillRunning && len(p.fills) > 0 {
		p.runFill()
	}
}

// fillFor returns the pending or in-flight fill for key, if any.
func (p *Pipeline) fillFor(key uint32) *fill {
	for _, f := range p.fills {
		if f.key == key {
			return f
		}
	}
	return nil
}

// PurgeOwner removes every trace of owner from the pipeline — queued
// requests, fill waiters, and the active transfer's callbacks — and
// returns how many requests it touched. The kernel calls it when the
// owning PD dies or its capabilities are revoked: purged requests
// release their cache pins and never fire OnStart/OnDone (their vGIC is
// gone); an active transfer cannot be yanked off the device, so it is
// orphaned instead — it completes on the hardware's schedule with no
// observer. Fill reads whose only waiters were purged still land (the
// staged image stays useful), they just wake nobody.
func (p *Pipeline) PurgeOwner(owner any) int {
	n := 0
	drop := func(r *Request) {
		if r.pinned != nil {
			p.Cache.Unpin(r.pinned)
			r.pinned = nil
		}
		r.OnStart, r.OnDone = nil, nil
		n++
	}
	for _, r := range p.Queue.PurgeOwner(owner) {
		drop(r)
	}
	for _, f := range p.fills {
		kept := f.waiters[:0]
		for _, w := range f.waiters {
			if w.Owner == owner {
				drop(w)
			} else {
				kept = append(kept, w)
			}
		}
		for i := len(kept); i < len(f.waiters); i++ {
			f.waiters[i] = nil
		}
		f.waiters = kept
	}
	if r := p.active; r != nil && r.Owner == owner {
		r.OnStart, r.OnDone = nil, nil
		r.Owner = nil
		n++
	}
	p.Stats.Purged += uint64(n)
	return n
}

// InFlight reports whether any demand request targeting PRR prr is still
// somewhere in the pipeline (filling, queued, or downloading). The
// Hardware Task Manager uses it to retire its Loading flags.
func (p *Pipeline) InFlight(prr int) bool {
	return p.anyDemand(func(r *Request) bool { return r.Target == prr })
}

// PendingFor reports whether owner has a request anywhere in the
// pipeline — the guest-visible "reconfiguration in progress" poll.
func (p *Pipeline) PendingFor(owner any) bool {
	return p.anyDemand(func(r *Request) bool { return r.Owner == owner })
}

func (p *Pipeline) anyDemand(pred func(*Request) bool) bool {
	if p.active != nil && pred(p.active) {
		return true
	}
	if p.Queue.any(pred) {
		return true
	}
	for _, f := range p.fills {
		for _, w := range f.waiters {
			if pred(w) {
				return true
			}
		}
	}
	return false
}

// Idle reports whether the pipeline has no demand work anywhere.
func (p *Pipeline) Idle() bool {
	return !p.anyDemand(func(*Request) bool { return true })
}

// HitRatio is the cache's demand hit ratio.
func (p *Pipeline) HitRatio() float64 { return p.Cache.HitRatio() }

// PublishCounters writes the pipeline's scalar statistics into a measure
// set so sweeps report them alongside the latency probes.
func (p *Pipeline) PublishCounters(set *measure.Set) {
	cs, qs, fs := p.Cache.Stats, p.Queue.Stats, p.Prefetch.Stats
	set.SetCounter("reconfig_cache_hits", float64(cs.Hits))
	set.SetCounter("reconfig_cache_misses", float64(cs.Misses))
	set.SetCounter("reconfig_cache_coalesced", float64(cs.Coalesced))
	set.SetCounter("reconfig_cache_evictions", float64(cs.Evictions))
	set.SetCounter("reconfig_cache_hit_ratio", p.HitRatio())
	set.SetCounter("reconfig_queue_max_depth", float64(qs.MaxDepth))
	set.SetCounter("reconfig_queue_mean_depth", p.Queue.MeanDepth())
	set.SetCounter("reconfig_queued_starts", float64(p.Stats.Queued))
	set.SetCounter("reconfig_prefetch_issued", float64(fs.Issued))
	set.SetCounter("reconfig_prefetch_hits", float64(fs.Hits))
	set.SetCounter("pcap_transfers", float64(p.Fabric.PCAP.Transfers))
	set.SetCounter("pcap_errors", float64(p.Fabric.PCAP.Errors))
	if p.Inject != nil {
		set.SetCounter("fault_injected", float64(p.Inject.Stats.Total()))
		set.SetCounter("fault_retries", float64(p.Stats.Retries))
		set.SetCounter("fault_timeouts", float64(p.Stats.Timeouts))
		set.SetCounter("fault_poison_evictions", float64(p.Stats.PoisonEvictions))
		set.SetCounter("fault_quarantines", float64(p.Stats.Quarantines))
		set.SetCounter("fault_failed_requests", float64(p.Stats.FaultedRequests))
	}
}

// Summary renders the one-line reconfiguration report the experiment
// commands print after a sweep.
func (p *Pipeline) Summary() string {
	cs := p.Cache.Stats
	return fmt.Sprintf(
		"reconfig: pcap transfers=%d errors=%d | cache hits=%d misses=%d ratio=%.2f evictions=%d bypasses=%d | queue max=%d mean=%.2f queued=%d | prefetch issued=%d hits=%d useless=%d",
		p.Fabric.PCAP.Transfers, p.Fabric.PCAP.Errors,
		cs.Hits, cs.Misses, p.HitRatio(), cs.Evictions, cs.Bypasses,
		p.Queue.Stats.MaxDepth, p.Queue.MeanDepth(), p.Stats.Queued,
		p.Prefetch.Stats.Issued, p.Prefetch.Stats.Hits, p.Prefetch.Stats.Useless)
}
