package reconfig

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/gic"
	"repro/internal/measure"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/simclock"
)

// testRig is a bare fabric + pipeline with a small synthetic catalog
// written into the bitstream store on the bus.
type testRig struct {
	clock *simclock.Clock
	bus   *physmem.Bus
	fab   *pl.Fabric
	pipe  *Pipeline
	// catalog: key (store offset) -> encoded length, one image per task.
	offs map[uint16]uint32
	lens map[uint16]uint32
}

const testStorePA = physmem.DDRBase + 0xA0_0000

func newRig(t *testing.T, cfg Config, payloadBytes int, tasks ...uint16) *testRig {
	t.Helper()
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	caps := []bitstream.Resources{
		{LUTs: 10000, BRAM: 32, DSP: 48},
		{LUTs: 10000, BRAM: 32, DSP: 48},
	}
	fab := pl.NewFabric(clock, bus, g, caps)
	r := &testRig{
		clock: clock, bus: bus, fab: fab,
		offs: map[uint16]uint32{}, lens: map[uint16]uint32{},
	}
	off := uint32(0)
	for _, id := range tasks {
		raw := bitstream.Synthesize(id, 0, bitstream.Resources{LUTs: 100}, payloadBytes).Encode()
		if err := bus.WriteBytes(testStorePA+physmem.Addr(off), raw); err != nil {
			t.Fatal(err)
		}
		r.offs[id] = off
		r.lens[id] = uint32(len(raw))
		off += uint32(len(raw)+0xFFF) &^ 0xFFF
	}
	r.pipe = New(clock, fab, bus, testStorePA, cfg)
	r.pipe.Probes = measure.NewSet()
	return r
}

// request builds a demand request for task id targeting prr, recording
// completion into *done.
func (r *testRig) request(id uint16, prr, prio int, done *int) *Request {
	return &Request{
		Key: r.offs[id], SrcOff: r.offs[id], Len: r.lens[id],
		Target: prr, Priority: prio, Owner: id,
		OnDone: func(_ *Request, ok bool) {
			if ok {
				*done++
			}
		},
	}
}

func TestColdThenWarmLatency(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 32<<10, 1)
	done := 0

	t0 := r.clock.Now()
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	cold := r.clock.Now() - t0
	if done != 1 {
		t.Fatalf("cold request not completed (done=%d)", done)
	}
	if r.fab.PRRs[0].Loaded == nil || r.fab.PRRs[0].Loaded.TaskID != 1 {
		t.Fatal("bitstream not configured into PRR0")
	}
	// The cold path must include the SD fetch.
	if min := SDFetchCycles(int(r.lens[1])); cold < min {
		t.Errorf("cold latency %d < SD fetch alone %d", cold, min)
	}

	t1 := r.clock.Now()
	r.pipe.Submit(r.request(1, 1, 1, &done))
	r.clock.RunUntilIdle(100)
	warm := r.clock.Now() - t1
	if done != 2 {
		t.Fatalf("warm request not completed (done=%d)", done)
	}
	if warm >= cold {
		t.Errorf("warm latency %d not below cold %d", warm, cold)
	}
	// Warm skips the SD read entirely: it should be roughly the PCAP leg.
	if warm > 2*pl.TransferCycles(int(r.lens[1])) {
		t.Errorf("warm latency %d suspiciously high (PCAP leg is %d)", warm, pl.TransferCycles(int(r.lens[1])))
	}
	if h, m := r.pipe.Cache.Stats.Hits, r.pipe.Cache.Stats.Misses; h != 1 || m != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", h, m)
	}
	// Probes recorded one sample per outcome.
	if n := r.pipe.Probes.Get(measure.PhaseReconfigCold).Count; n != 1 {
		t.Errorf("cold probe count = %d", n)
	}
	if n := r.pipe.Probes.Get(measure.PhaseReconfigWarm).Count; n != 1 {
		t.Errorf("warm probe count = %d", n)
	}
}

func TestQueueOverlapsAndPriority(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 16<<10, 1, 2, 3)
	// Stage all three images so the PCAP channel is the only bottleneck.
	var done int
	for _, id := range []uint16{1, 2, 3} {
		r.pipe.Submit(r.request(id, 0, 1, &done))
		r.clock.RunUntilIdle(100)
	}
	done = 0

	order := []uint16{}
	mk := func(id uint16, prr, prio int) *Request {
		req := r.request(id, prr, prio, &done)
		req.OnDone = func(_ *Request, ok bool) {
			if ok {
				done++
				order = append(order, id)
			}
		}
		return req
	}
	// Submit three warm requests back to back: the first occupies the
	// PCAP, the other two must queue (not be rejected) and drain in
	// priority order (task 3 outranks task 2).
	r.pipe.Submit(mk(1, 0, 1))
	r.pipe.Submit(mk(2, 1, 1))
	r.pipe.Submit(mk(3, 0, 5))
	if got := r.pipe.Queue.Depth(); got != 2 {
		t.Fatalf("queue depth after burst = %d, want 2", got)
	}
	r.clock.RunUntilIdle(100)
	if done != 3 {
		t.Fatalf("completed %d of 3 queued requests", done)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Errorf("completion order = %v, want [1 3 2] (priority drains first)", order)
	}
	if r.pipe.Queue.Stats.MaxDepth != 2 {
		t.Errorf("max queue depth = %d, want 2", r.pipe.Queue.Stats.MaxDepth)
	}
}

func TestCoalescedMissJoinsFill(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 16<<10, 1)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	// Second request for the same image while the SD fill is in flight:
	// must join the fill, not start a second SD read.
	r.pipe.Submit(r.request(1, 1, 1, &done))
	r.clock.RunUntilIdle(100)
	if done != 2 {
		t.Fatalf("completed %d of 2", done)
	}
	if c := r.pipe.Cache.Stats.Coalesced; c != 1 {
		t.Errorf("coalesced = %d, want 1", c)
	}
	if tr := r.fab.PCAP.Transfers; tr != 2 {
		t.Errorf("transfers = %d, want 2 (both requests download)", tr)
	}
}

func TestLRUEvictionAndPinning(t *testing.T) {
	// Cache fits two of the three images (payload 16K -> ~16.5K each).
	r := newRig(t, Config{CacheBytes: 34 << 10}, 16<<10, 1, 2, 3)
	var done int
	for _, id := range []uint16{1, 2} {
		r.pipe.Submit(r.request(id, 0, 1, &done))
		r.clock.RunUntilIdle(100)
	}
	// Touch image 1 so image 2 is the LRU victim.
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	// Image 3 must evict image 2.
	r.pipe.Submit(r.request(3, 1, 1, &done))
	r.clock.RunUntilIdle(100)
	if r.pipe.Cache.Peek(r.offs[2]) != nil {
		t.Error("LRU image 2 still cached after eviction pressure")
	}
	if r.pipe.Cache.Peek(r.offs[1]) == nil {
		t.Error("recently-used image 1 evicted")
	}
	if r.pipe.Cache.Stats.Evictions == 0 {
		t.Error("no eviction counted")
	}
}

func TestBypassWhenImageExceedsCapacity(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 4 << 10}, 16<<10, 1)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	if done != 1 {
		t.Fatal("bypass fetch did not complete")
	}
	if r.pipe.Cache.Stats.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", r.pipe.Cache.Stats.Bypasses)
	}
	if r.pipe.Cache.Len() != 0 {
		t.Error("oversized image cached anyway")
	}
}

func TestBypassCompletionDoesNotStealLaterPin(t *testing.T) {
	// Regression: a bypass request (cache full of pinned entries at
	// submit time) holds no pin, so its completion must not unpin an
	// entry a later request for the same image inserted meanwhile.
	// Sequence: B's cold fill for image 2 pins the whole cache, so A's
	// request for image 1 bypasses; the instant A's download starts
	// (B has completed, its entry is unpinned), C demands image 1 —
	// evicting B's entry and inserting a fresh, pinned one for image 1.
	// A's completion used to steal C's pin; C's own completion then hit
	// the unpin panic.
	r := newRig(t, Config{CacheBytes: 17 << 10}, 16<<10, 1, 2)
	var done int
	r.pipe.Submit(r.request(2, 0, 1, &done)) // B: fills the cache
	a := r.request(1, 1, 1, &done)           // A: bypass (B's entry pinned)
	a.OnStart = func(*Request) {
		r.pipe.Submit(r.request(1, 0, 1, &done)) // C: same image as A
	}
	r.pipe.Submit(a)
	r.clock.RunUntilIdle(200)
	if done != 3 {
		t.Fatalf("completed %d of 3", done)
	}
	if r.pipe.Cache.Stats.Bypasses != 1 {
		t.Fatalf("bypasses = %d, want 1 (scenario not exercised)", r.pipe.Cache.Stats.Bypasses)
	}
	// C's entry survives with no dangling pins.
	e := r.pipe.Cache.Peek(r.offs[1])
	if e == nil {
		t.Fatal("image 1 entry lost")
	}
	if e.pins != 0 {
		t.Errorf("image 1 entry pins = %d, want 0 after all completions", e.pins)
	}
	if !r.pipe.Idle() {
		t.Error("pipeline not idle")
	}
}

func TestPrefetchFillsPredictedSuccessor(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20, Prefetch: true}, 16<<10, 1, 2)
	var done int
	// Teach the transition 1 -> 2 on PRR0.
	for i := 0; i < 2; i++ {
		r.pipe.Submit(r.request(1, 0, 1, &done))
		r.clock.RunUntilIdle(100)
		r.pipe.Submit(r.request(2, 0, 1, &done))
		r.clock.RunUntilIdle(100)
	}
	// Evict nothing; just clear the cache to force re-learning the win.
	r.pipe.SetCacheCapacity(1 << 20)
	// A completed demand for 1 should now prefetch 2 in the idle window.
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	if r.pipe.Prefetch.Stats.Issued == 0 {
		t.Fatal("no speculative fill issued after learned transition")
	}
	e := r.pipe.Cache.Peek(r.offs[2])
	if e == nil {
		t.Fatal("predicted image 2 not staged")
	}
	// No speculative PCAP write: PRR0 still holds task 1.
	if r.fab.PRRs[0].Loaded.TaskID != 1 {
		t.Error("prefetch touched the fabric configuration")
	}
	// The demand for 2 is now a hit attributed to the prefetcher.
	before := r.pipe.Cache.Stats.Hits
	r.pipe.Submit(r.request(2, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	if r.pipe.Cache.Stats.Hits != before+1 {
		t.Error("prefetched image did not produce a cache hit")
	}
	if r.pipe.Prefetch.Stats.Hits == 0 {
		t.Error("prefetch hit not attributed")
	}
}

func TestInFlightAndPendingFor(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 16<<10, 1)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	if !r.pipe.InFlight(0) {
		t.Error("PRR0 not reported in flight during fill")
	}
	if r.pipe.InFlight(1) {
		t.Error("PRR1 spuriously in flight")
	}
	if !r.pipe.PendingFor(uint16(1)) {
		t.Error("owner not reported pending")
	}
	r.clock.RunUntilIdle(100)
	if r.pipe.InFlight(0) || r.pipe.PendingFor(uint16(1)) || !r.pipe.Idle() {
		t.Error("pipeline still reports work after completion")
	}
}

func TestFailedTransferCompletesPipeline(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 1<<10, 1)
	// Corrupt the stored image so the PCAP decode fails.
	raw, _ := r.bus.ReadBytes(testStorePA, int(r.lens[1]))
	raw[40] ^= 0xFF
	_ = r.bus.WriteBytes(testStorePA, raw)
	failed := 0
	req := r.request(1, 0, 1, new(int))
	req.OnDone = func(_ *Request, ok bool) {
		if !ok {
			failed++
		}
	}
	r.pipe.Submit(req)
	r.clock.RunUntilIdle(100)
	if failed != 1 {
		t.Fatalf("failure callback fired %d times, want 1", failed)
	}
	if r.pipe.Stats.Failures != 1 {
		t.Errorf("failures = %d, want 1", r.pipe.Stats.Failures)
	}
	if !r.pipe.Idle() {
		t.Error("pipeline wedged after failed transfer")
	}
}

func TestSummaryAndCounters(t *testing.T) {
	r := newRig(t, Config{CacheBytes: 1 << 20}, 4<<10, 1)
	var done int
	r.pipe.Submit(r.request(1, 0, 1, &done))
	r.clock.RunUntilIdle(100)
	r.pipe.Submit(r.request(1, 1, 1, &done))
	r.clock.RunUntilIdle(100)

	set := measure.NewSet()
	r.pipe.PublishCounters(set)
	if set.Counter("reconfig_cache_hits") != 1 || set.Counter("reconfig_cache_misses") != 1 {
		t.Errorf("published counters wrong: hits=%g misses=%g",
			set.Counter("reconfig_cache_hits"), set.Counter("reconfig_cache_misses"))
	}
	if set.Counter("pcap_transfers") != 2 {
		t.Errorf("pcap_transfers = %g, want 2", set.Counter("pcap_transfers"))
	}
	if s := r.pipe.Summary(); s == "" {
		t.Error("empty summary")
	}
}
