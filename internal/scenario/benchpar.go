package scenario

import (
	"time"

	"repro/internal/experiments"
)

func init() {
	experiments.RegisterParallelBench(MeasureParallelSpeedups)
}

// ParallelBenchSpecs returns the parallel-engine benchmark subjects:
// oversubscribed-8vm core-scaled to four unaffined cores (the ROADMAP's
// 8+-core trajectory in miniature) and dual-core-spread as shipped. Both
// keep every VM floating so the load actually spreads.
func ParallelBenchSpecs(short bool) []Spec {
	over, ok := FindSpec("oversubscribed-8vm", short)
	if !ok {
		panic("scenario: oversubscribed-8vm missing from the suite")
	}
	over.Name = "oversubscribed-8vm-4core"
	over.Cores = 4
	dual, ok := FindSpec("dual-core-spread", short)
	if !ok {
		panic("scenario: dual-core-spread missing from the suite")
	}
	return []Spec{over, dual}
}

// MeasureParallelSpeedup runs one spec through the sequential loop and
// through RunParallel with the given shard count, best-of-reps each (plus
// one untimed warm-up), verifies the checksums agree, and reports the
// wall-clock ratio.
func MeasureParallelSpeedup(spec Spec, shards, reps int) experiments.ParallelSpeedup {
	if reps < 1 {
		reps = 1
	}
	norm := spec.normalized()
	res := experiments.ParallelSpeedup{
		Scenario: norm.Name, Cores: norm.Cores, Shards: shards, ChecksumMatch: true,
	}
	var seqSum, parSum uint64
	timeOne := func(shards int) (float64, uint64) {
		s := spec
		s.Shards = shards
		best, sum := 0.0, uint64(0)
		for rep := 0; rep <= reps; rep++ {
			//detlint:hosttime measures seq-vs-parallel wall clock; checksums assert results identical
			start := time.Now()
			r := Build(s).Run()
			hostMs := float64(time.Since(start).Nanoseconds()) / 1e6 //detlint:hosttime wall-clock speedup numerator
			sum = r.Checksum
			if rep == 0 {
				continue // warm-up
			}
			if best == 0 || hostMs < best {
				best = hostMs
			}
		}
		return best, sum
	}
	res.SeqHostMs, seqSum = timeOne(0)
	res.ParHostMs, parSum = timeOne(shards)
	res.ChecksumMatch = seqSum == parSum
	if res.ParHostMs > 0 {
		res.Speedup = res.SeqHostMs / res.ParHostMs
	}
	return res
}

// MeasureParallelSpeedups is the RunSimBench hook: every benchmark spec
// measured at 4 shards (clamped to the spec's core count by RunParallel).
func MeasureParallelSpeedups(short bool) []experiments.ParallelSpeedup {
	reps := 3
	if short {
		reps = 2
	}
	var out []experiments.ParallelSpeedup
	for _, spec := range ParallelBenchSpecs(short) {
		out = append(out, MeasureParallelSpeedup(spec, 4, reps))
	}
	return out
}
