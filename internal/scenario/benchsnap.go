package scenario

import (
	"fmt"

	"repro/internal/experiments"
)

func init() {
	experiments.RegisterSnapshotBench(MeasureSnapshotForks)
}

// snapshotForkSpec builds the clone-sweep benchmark subject for one fleet
// size: the oversubscribed-256vm shape with the clone count swept and
// half the fleet prewarmed (so the pool serves both hits and cold
// builds). Everything measured is simulated time — the spec is a
// deterministic scenario like any other.
func snapshotForkSpec(clones int) Spec {
	return Spec{
		Name:  fmt.Sprintf("snapshot-fork-%d", clones),
		Cores: 2, RunMs: 4, Seed: 14,
		Snapshot: &SnapshotSpec{Clones: clones, Prewarm: clones / 2},
		VMs:      []VM{{Name: "template"}},
	}
}

// MeasureSnapshotFork runs one fleet size and folds the result into the
// BENCH_sim.json snapshot_fork entry: boot-vs-fork simulated cost, the
// COW copy ledger, and the warm-pool hit ratio.
func MeasureSnapshotFork(clones int) experiments.SnapshotFork {
	r := Build(snapshotForkSpec(clones)).Run()
	sf := experiments.SnapshotFork{
		Name:         r.Name,
		Clones:       r.CloneCount,
		ColdBootMs:   r.BootCycles.Millis(),
		ForkMs:       r.ForkCycles.Millis(),
		FramesShared: r.FramesShared,
		FramesCopied: r.FramesCopied,
		PoolHits:     r.PoolHits,
		PoolMisses:   r.PoolMisses,
	}
	if sf.ColdBootMs > 0 {
		sf.ForkOverBoot = sf.ForkMs / sf.ColdBootMs
	}
	if mapped := sf.FramesCopied + sf.FramesShared; mapped > 0 {
		sf.CopyRate = float64(sf.FramesCopied) / float64(mapped)
	}
	if acq := sf.PoolHits + sf.PoolMisses; acq > 0 {
		sf.HitRatio = float64(sf.PoolHits) / float64(acq)
	}
	return sf
}

// MeasureSnapshotForks is the RunSimBench hook: the fleet-size sweep
// showing fork cost staying O(metadata) as the clone count scales.
func MeasureSnapshotForks(short bool) []experiments.SnapshotFork {
	counts := []int{1, 8, 64, 256}
	if short {
		counts = []int{1, 8}
	}
	var out []experiments.SnapshotFork
	for _, n := range counts {
		out = append(out, MeasureSnapshotFork(n))
	}
	return out
}
