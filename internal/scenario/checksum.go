package scenario

import (
	"fmt"
	"hash"
	"hash/fnv"
	"strings"

	"repro/internal/measure"
)

// checksumPhases is the fixed, ordered list of latency probes folded into
// the state checksum (a fixed list, never a map walk, so the dump order
// is stable).
var checksumPhases = []string{
	measure.PhaseMgrEntry, measure.PhaseMgrExit, measure.PhaseMgrExec,
	measure.PhasePLIRQEntry, measure.PhaseVMSwitch, measure.PhaseHypercall,
	measure.PhaseIPCCall,
	measure.PhaseReconfigCold, measure.PhaseReconfigWarm, measure.PhaseReconfigQWait,
}

// digest accumulates the state dump line by line and hashes it (FNV-1a
// 64) as it goes. The text is retained so a replay divergence can be
// localized by diffing two runs' dumps.
type digest struct {
	h hash.Hash64
	b strings.Builder
}

func newDigest() *digest { return &digest{h: fnv.New64a()} }

// addf appends one formatted line to the dump and folds it into the hash.
func (d *digest) addf(format string, args ...any) {
	line := fmt.Sprintf(format, args...) + "\n"
	d.h.Write([]byte(line))
	d.b.WriteString(line)
}

func (d *digest) sum() uint64  { return d.h.Sum64() }
func (d *digest) text() string { return d.b.String() }

// fnvString hashes a plain string (console output) without retaining it.
func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
