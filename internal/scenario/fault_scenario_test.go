package scenario

import "testing"

// faultSpecs are the suite scenarios that run under an active fault plan.
var faultSpecs = []string{"flaky-sd", "pcap-crc-storm", "prr-degraded", "noisy-neighbor"}

// The fault scenarios must actually inject faults AND recover from them:
// nonzero injections, nonzero tolerance work (retries / watchdog reaps /
// quarantines), and — the self-healing claim — real task runs still
// completing on top of the injected failures.
func TestFaultScenariosInjectAndRecover(t *testing.T) {
	for _, name := range faultSpecs {
		spec, ok := FindSpec(name, true)
		if !ok {
			t.Fatalf("%s spec missing", name)
		}
		r := Build(spec).Run()
		t.Logf("%s: injected=%d retries=%d quarantines=%d faultedReqs=%d requests=%d reconfigs=%d throttled=%d trips=%d",
			name, r.FaultsInjected, r.Retries, r.Quarantines, r.FaultedReqs,
			r.Requests, r.Reconfigs, r.Throttled, r.BreakerTrips)
		if r.FaultsInjected == 0 {
			t.Errorf("%s: fault plan injected nothing", name)
		}
		if r.Requests == 0 {
			t.Errorf("%s: no hardware-task runs completed under faults — no recovery", name)
		}
		if r.Reconfigs == 0 {
			t.Errorf("%s: no reconfigurations completed under faults", name)
		}
		switch name {
		case "flaky-sd", "pcap-crc-storm":
			if r.Retries == 0 {
				t.Errorf("%s: faults injected but the pipeline never retried", name)
			}
		case "prr-degraded":
			if r.Quarantines == 0 {
				t.Errorf("%s: repeated PRR faults never quarantined a region", name)
			}
		case "noisy-neighbor":
			if r.Throttled == 0 {
				t.Errorf("%s: the greedy VM was never throttled", name)
			}
		}
	}
}

// Determinism under faults: every fault scenario must produce the
// byte-identical state dump run after run — the injector draws from the
// scenario seed only, so injected failures replay exactly. (Shard
// invariance for these specs is covered by the suite-wide
// TestParallelInSystemMatchesSequential; this test pins the fault specs
// explicitly so the CI fault job can target it alone.)
func TestFaultScenarioDeterminism(t *testing.T) {
	for _, name := range faultSpecs {
		spec, ok := FindSpec(name, true)
		if !ok {
			t.Fatalf("%s spec missing", name)
		}
		a := Build(spec).Run()
		b := Build(spec).Run()
		if a.Checksum != b.Checksum {
			t.Errorf("%s: checksum diverged across identical fault runs: %016x vs %016x\n--- first ---\n%s--- second ---\n%s",
				name, a.Checksum, b.Checksum, a.Detail, b.Detail)
			continue
		}
		if a.Detail != b.Detail {
			t.Errorf("%s: state dump diverged with equal checksum (hash collision?)", name)
		}
		if a.FaultsInjected != b.FaultsInjected {
			t.Errorf("%s: injected-fault count diverged: %d vs %d", name, a.FaultsInjected, b.FaultsInjected)
		}
		// And across the parallel engine: the fault sequence is part of
		// the simulated timeline, so shards must not move it.
		for _, shards := range []int{2, 4} {
			s := spec
			s.Shards = shards
			p := Build(s).Run()
			if p.Checksum != a.Checksum {
				t.Errorf("%s: shards=%d checksum %016x != sequential %016x",
					name, shards, p.Checksum, a.Checksum)
			}
		}
	}
}

// TestNoisyNeighborBounded is the interference probe: run the
// noisy-neighbor scenario, then the same spec with the greedy VM removed,
// and compare the critical VM's tail acquire latency. The guards must
// both visibly act on the greedy VM and keep the critical VM inside
// InterferenceBound; the critical VM itself must never be throttled
// (priority bypass).
func TestNoisyNeighborBounded(t *testing.T) {
	rep := RunInterference(true)
	t.Logf("\n%s", rep)
	if rep.Critical.AcqCount == 0 || rep.CriticalBase.AcqCount == 0 {
		t.Fatal("critical VM completed no acquires; the probe measured nothing")
	}
	if rep.Greedy.Throttled == 0 {
		t.Error("greedy VM was never throttled — the QoS guards did not act")
	}
	if rep.Critical.Throttled != 0 || rep.Critical.Retried != 0 {
		t.Errorf("critical VM hit the guards (throttled %d, retried %d) — the priority bypass failed",
			rep.Critical.Throttled, rep.Critical.Retried)
	}
	if rep.Ratio > InterferenceBound {
		t.Errorf("critical VM p99 acquire latency %.2fx its uncontended baseline, bound is %.1fx (contended %d, baseline %d cycles)",
			rep.Ratio, InterferenceBound, rep.Critical.AcqP99, rep.CriticalBase.AcqP99)
	}
	if !rep.Bounded() {
		t.Error("interference report does not self-certify (Bounded() false)")
	}
}
