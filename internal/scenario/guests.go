package scenario

import (
	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/hwtask"
	"repro/internal/ucos"
)

// newPicker builds the churn driver's task stream: the VM's explicit
// menu, or the Table III mix (shared QAM pool + per-VM FFT stage) when
// none is given — the same picker T_hw uses, so scenario traffic mirrors
// the Table III traffic by construction.
func newPicker(vm VM, vmIndex int, seed uint32) *experiments.TaskPicker {
	menu := vm.HwMenu
	if len(menu) == 0 {
		menu = experiments.DefaultTaskMenu(vmIndex)
	}
	return experiments.NewMenuPicker(menu, seed, vm.HwSequential)
}

// churnTask is the scenario counterpart of the experiments' T_hw driver:
// it acquires a menu task, runs it once through the data section, and
// sleeps HwGapTicks — forever, until the scenario's runtime budget ends.
// With ReleaseEvery set it periodically hands the task back to the
// manager, churning the IRQ register/unregister path on top of the
// reclaim churn the shared pool already produces.
//
// The driver is a well-behaved QoS citizen: a Throttled or Retry answer
// from the admission guards doubles a backoff added to the churn gap
// (breaker rejections back off harder — the breaker's cooldown outlasts
// a bucket refill), and any success resets it. StatusFaulted answers
// (retries exhausted, regions quarantined) are counted and retried at
// the normal cadence — the fault plan is transient by construction.
func (s *System) churnTask(p *vmProbe, vmIndex int, seed uint32) func(t *ucos.Task) {
	vm := p.spec
	return func(t *ucos.Task) {
		pick := newPicker(vm, vmIndex, seed)
		if _, ok := t.OS.M.SetupDataSection(64 << 10); !ok {
			panic("scenario: data section setup failed")
		}
		backoff := uint32(0)
		for n := 1; ; n++ {
			id := pick.Next()
			t0 := t.OS.M.Now()
			h, st := t.AcquireHw(id)
			if h != nil {
				p.acq.Add(t.OS.M.Now() - t0)
				backoff = 0
				length, param := experiments.TaskParams(id)
				if h.Run(t, 0x1000, 0x9000, length, param, 400) {
					p.requests++
				} else {
					p.failures++
				}
				if vm.ReleaseEvery > 0 && n%vm.ReleaseEvery == 0 {
					t.ReleaseHw(h)
				}
			} else {
				// Only statuses that tune the retry cadence are dispatched;
				// success codes cannot reach this failure branch and
				// anything else retries at the base gap.
				//detlint:partial success statuses unreachable here; unlisted failures use the base backoff
				switch st {
				case hwtask.ReplyBusy:
					p.busy++
				case abi.StatusThrottled:
					p.throttled++
					if backoff < 16 {
						backoff = backoff*2 + 1
					}
				case abi.StatusRetry:
					p.retried++
					if backoff < 64 {
						backoff = backoff*2 + 4
					}
				case abi.StatusFaulted:
					p.faulted++
				}
			}
			t.Delay(vm.HwGapTicks + backoff)
		}
	}
}

// workloadTask runs the VM's background computation: the named codec (or
// memory hog) over its live buffers plus sparse touches across a wider
// heap, the cache/TLB pressure pattern of the Table III workload tasks.
func (s *System) workloadTask(p *vmProbe, vmIndex int, seed uint32) func(t *ucos.Task) {
	name := p.spec.Workload
	return func(t *ucos.Task) {
		w, ok := apps.NewWorkloadByName(name, seed)
		if !ok {
			panic("scenario: unknown workload " + name)
		}
		bufVA := t.OS.M.TaskCodeBase(30) + 0x10_0000
		heapVA := t.OS.M.TaskCodeBase(30) + 0x20_0000
		const heapPages = 72
		rng := seed ^ uint32(vmIndex)<<8
		for {
			w.Step(t.Ctx, bufVA)
			p.output = w.Output()
			for i := 0; i < 6; i++ {
				rng ^= rng << 13
				rng ^= rng >> 17
				rng ^= rng << 5
				page := rng % heapPages
				t.Ctx.Touch(heapVA+page*4096+(page&63)*64, i%3 == 0)
			}
			t.Exec(80)
		}
	}
}
