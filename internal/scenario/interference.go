package scenario

import (
	"fmt"
	"strings"
)

// InterferenceBound is the documented noisy-neighbor guarantee: with the
// QoS guards armed, a greedy best-effort VM may not push the critical
// VM's p99 acquire latency (manager portal IPC plus reconfiguration
// wait) beyond this factor of its uncontended baseline. README.md quotes
// the same bound; TestNoisyNeighborBounded and the CI interference
// artifact both enforce it.
const InterferenceBound = 3.0

// InterferenceReport is the noisy-neighbor probe's outcome: the
// contended run, the same spec rerun without the greedy VM, and the
// critical VM's tail-latency ratio between the two.
type InterferenceReport struct {
	Contended Result
	Baseline  Result

	Critical     VMStat // critical VM under contention
	CriticalBase VMStat // critical VM uncontended
	Greedy       VMStat // the aggressor under contention

	// Ratio is contended p99 / baseline p99 of the critical VM's
	// acquire latency.
	Ratio float64
}

// Bounded reports whether the guarantee held: the guards visibly acted
// on the greedy VM, never touched the critical VM, and the critical
// VM's tail stayed inside InterferenceBound.
func (r InterferenceReport) Bounded() bool {
	return r.Critical.AcqCount > 0 && r.CriticalBase.AcqCount > 0 &&
		r.Greedy.Throttled+r.Greedy.Retried > 0 &&
		r.Critical.Throttled == 0 && r.Critical.Retried == 0 &&
		r.Ratio <= InterferenceBound
}

// String renders the report as the CI artifact.
func (r InterferenceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Noisy-neighbor interference probe (scenario %q, bound %.1fx)\n",
		r.Contended.Name, InterferenceBound)
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %9s %12s %12s\n",
		"vm", "acquires", "requests", "throttled", "retried", "faulted", "p50(cyc)", "p99(cyc)")
	row := func(label string, s VMStat) {
		fmt.Fprintf(&b, "%-12s %9d %9d %9d %9d %9d %12d %12d\n",
			label, s.AcqCount, s.Requests, s.Throttled, s.Retried, s.Faulted,
			uint64(s.AcqP50), uint64(s.AcqP99))
	}
	row("critical", r.Critical)
	row("crit-alone", r.CriticalBase)
	row("greedy", r.Greedy)
	fmt.Fprintf(&b, "critical p99 contended/baseline = %.3fx (bound %.1fx)\n",
		r.Ratio, InterferenceBound)
	fmt.Fprintf(&b, "guards acted on greedy: %v (throttled %d, breaker-open %d)\n",
		r.Greedy.Throttled+r.Greedy.Retried > 0, r.Greedy.Throttled, r.Greedy.Retried)
	fmt.Fprintf(&b, "bound holds: %v\n", r.Bounded())
	return b.String()
}

// RunInterference executes the noisy-neighbor scenario twice — as
// specified, then with the greedy VM removed — and compares the critical
// VM's acquire-latency tail. short selects the reduced CI horizon.
func RunInterference(short bool) InterferenceReport {
	spec, ok := FindSpec("noisy-neighbor", short)
	if !ok {
		panic("scenario: noisy-neighbor spec missing")
	}
	base := spec
	base.VMs = nil
	for _, vm := range spec.VMs {
		if vm.Name != "greedy" {
			base.VMs = append(base.VMs, vm)
		}
	}
	rep := InterferenceReport{
		Contended: Build(spec).Run(),
		Baseline:  Build(base).Run(),
	}
	find := func(r Result, name string) VMStat {
		for _, st := range r.VMStats {
			if st.Name == name {
				return st
			}
		}
		return VMStat{}
	}
	rep.Critical = find(rep.Contended, "critical")
	rep.CriticalBase = find(rep.Baseline, "critical")
	rep.Greedy = find(rep.Contended, "greedy")
	if rep.CriticalBase.AcqP99 > 0 {
		rep.Ratio = float64(rep.Critical.AcqP99) / float64(rep.CriticalBase.AcqP99)
	}
	return rep
}
