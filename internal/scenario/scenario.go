// Package scenario is the config-driven multi-VM stress harness: a
// declarative Spec (core count, VM mix, codec workloads, reconfiguration
// churn rate, IRQ-storm profile, runtime budget) is turned into a fully
// wired Mini-NOVA system — kernel, fabric, reconfiguration pipeline,
// Hardware Task Manager service, and one protection domain per VM — and
// run for its simulated budget. Every run ends in a state checksum
// covering the clock, every PD's counters, every guest's outputs, the
// GIC, the caches and the reconfiguration pipeline, so a scenario is a
// replay regression: identical specs must produce byte-identical
// checksums, run after run, however the host schedules the suite's
// goroutines. This is the repo's systematic way to open new workloads —
// add a Spec instead of hand-writing an experiment per topology.
package scenario

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gic"
	"repro/internal/hwtask"
	"repro/internal/measure"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/ucos"
)

// VM describes one guest in the mix.
type VM struct {
	// Name labels the PD ("" = vmN).
	Name string
	// Priority is the PD's scheduling priority (0 = nova.PrioGuest).
	Priority int
	// Affinity restricts the PD's home core (zero = any core).
	Affinity sched.CPUMask
	// Workload names the background computation ("gsm", "adpcm",
	// "memhog", "" = none) run as a low-priority task.
	Workload string

	// HwGapTicks > 0 runs a hardware-task churn driver that acquires a
	// task from the menu, runs it once, and sleeps this many guest ticks
	// — the reconfiguration churn rate.
	HwGapTicks uint32
	// HwMenu is the churn driver's task menu (nil = the shared QAM pool
	// plus a per-VM FFT stage, the Table III mix).
	HwMenu []uint16
	// HwSequential cycles the menu in order instead of pseudo-randomly —
	// a periodic task sequence the prefetcher can learn.
	HwSequential bool
	// ReleaseEvery > 0 releases the acquired task back to the manager
	// every Nth request (exercising the unregister path); 0 holds tasks
	// until another VM reclaims them.
	ReleaseEvery int

	// StormLines attaches that many synthetic level-triggered PL device
	// lines to this VM, each pulsing every StormPeriodUs microseconds —
	// the IRQ-storm profile. StormBurst > 1 re-asserts the line that many
	// times per period, 2 µs apart: the re-raises land while the previous
	// delivery is still in service, which is exactly the lost-vIRQ window.
	StormLines    int
	StormPeriodUs float64
	StormBurst    int
}

// Spec is one named scenario.
type Spec struct {
	Name  string
	About string

	// Cores is the number of simulated A9 cores (0 = 1).
	Cores int
	// Policy selects the scheduler by name ("" = prio-rr).
	Policy string
	// QuantumMs is the guest time slice (0 = the paper's 33 ms).
	QuantumMs float64
	// TickMs is the guest OS tick period (0 = 1 ms).
	TickMs float64
	// RunMs is the simulated runtime budget.
	RunMs float64
	// Seed diversifies the per-VM pseudo-random streams.
	Seed uint32
	// Shards > 1 runs the simulated cores on that many host goroutines
	// through the epoch-barrier engine (nova.RunParallel). The checksum is
	// byte-identical to the sequential engine's on the same spec; 0/1 keeps
	// the single-goroutine run loop.
	Shards int

	// CacheBytes overrides the bitstream cache budget (0 = default).
	CacheBytes uint32
	// PrefetchOff disables speculative fills.
	PrefetchOff bool
	// ServiceCore pins the Hardware Task Manager service (zero = any;
	// meaningful under "partitioned").
	ServiceCore sched.CPUMask

	// Trace enables the kernel's structured-event tracing (per-core
	// bounded rings + metrics). Tracing never touches checksummed state:
	// a traced run's checksum is byte-identical to an untraced one.
	Trace bool
	// TraceCapacity overrides the per-core ring capacity (0 = default).
	TraceCapacity int

	// Faults is the scenario's deterministic fault plan (zero = no
	// injection). Its Seed defaults to the spec's Seed, so the fault
	// sequence is reproducible from the scenario alone.
	Faults fault.Config
	// QoS arms the kernel's manager-portal admission guards (zero = off).
	QoS nova.QoSConfig

	// Snapshot switches the scenario into checkpoint/fork mode: VMs[0]
	// becomes a serverless template that is booted to quiescence,
	// checkpointed and frozen, then forked through a warm pool into
	// Snapshot.Clones copy-on-write clones (snapshot.go).
	Snapshot *SnapshotSpec

	VMs []VM
}

// normalized fills in the spec's defaults.
func (s Spec) normalized() Spec {
	if s.Cores < 1 {
		s.Cores = 1
	}
	if s.QuantumMs == 0 {
		s.QuantumMs = nova.DefaultQuantumMs
	}
	if s.TickMs == 0 {
		s.TickMs = 1
	}
	if s.RunMs == 0 {
		s.RunMs = 100
	}
	return s
}

// vmProbe is the engine's per-VM instrumentation, written only from
// inside the simulation's single logical thread of execution.
type vmProbe struct {
	spec  VM
	guest *ucos.Guest
	pd    *nova.PD
	// resumed supersedes guest after an in-place checkpoint restore: the
	// restored OS instance lives in the ResumedGuest, not the boot guest.
	resumed *ucos.ResumedGuest

	requests     uint64 // completed hardware-task runs
	failures     uint64 // runs that returned false (timeout, DMA error)
	busy         uint64 // ReplyBusy answers
	throttled    uint64 // StatusThrottled answers (QoS bucket empty)
	retried      uint64 // StatusRetry answers (circuit breaker open)
	faulted      uint64 // StatusFaulted answers (retries exhausted / PRRs down)
	stormHandled uint64 // storm ISR dispatches
	output       uint64 // workload digest (0 when no workload)

	// acq records every successful acquire's request→ready latency
	// (manager portal IPC plus any reconfiguration wait), with samples
	// retained so interference probes can report percentiles.
	acq measure.Probe
}

// System is a fully wired scenario instance.
type System struct {
	Spec    Spec
	Kernel  *nova.Kernel
	Manager *hwtask.Manager

	probes      []*vmProbe
	stormPulses uint64
	stormNext   int // next synthetic PL line, allocated top-down

	// snap is the checkpoint/fork state machine, non-nil only when the
	// spec has a SnapshotSpec (snapshot.go).
	snap *snapRun
}

// Build wires the system a spec describes. The caller owns the kernel
// and must Shutdown it (Run does both).
func Build(spec Spec) *System {
	spec = spec.normalized()
	k := nova.NewKernelSMP(spec.Cores)
	quantum := simclock.FromMillis(spec.QuantumMs)
	pol, err := sched.New(spec.Policy, spec.Cores, quantum)
	if err != nil {
		panic(fmt.Sprintf("scenario %q: %v", spec.Name, err))
	}
	k.Sched = pol
	if spec.Trace {
		k.EnableTrace(spec.TraceCapacity)
	}

	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	//detlint:ordered RegisterCore is a keyed insert; registration order is unobservable
	for id, core := range experiments.PaperCores() {
		fabric.RegisterCore(id, core)
	}
	k.AttachFabric(fabric)
	if spec.CacheBytes != 0 {
		k.Reconfig.SetCacheCapacity(spec.CacheBytes)
	}
	k.Reconfig.PrefetchOn = !spec.PrefetchOff
	if spec.Faults.Enabled() {
		fc := spec.Faults
		if fc.Seed == 0 {
			fc.Seed = mix(spec.Seed, 0xFA17)
		}
		k.Reconfig.Inject = fault.New(fc)
	}
	k.EnableQoS(spec.QoS)

	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		panic(fmt.Sprintf("scenario %q: %v", spec.Name, err))
	}
	svc := hwtask.NewService(mgr, k)
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: svc, CodeBase: nova.GuestUserBase, CodeSize: 8 << 10,
		Affinity: spec.ServiceCore, StartSuspended: true,
	})
	k.RegisterHwService(svcPD)

	sys := &System{Spec: spec, Kernel: k, Manager: mgr, stormNext: 0}
	for i, vm := range spec.VMs {
		if spec.Snapshot != nil {
			sys.addTemplateVM(i, vm)
		} else {
			sys.addVM(i, vm)
		}
	}
	return sys
}

// addVM creates the guest PD for one VM spec, wiring its tasks and any
// storm devices.
func (s *System) addVM(idx int, vm VM) {
	if vm.Name == "" {
		vm.Name = fmt.Sprintf("vm%d", idx)
	}
	if vm.Priority == 0 {
		vm.Priority = nova.PrioGuest
	}
	p := &vmProbe{spec: vm}
	p.acq.Keep = true // retain samples: interference probes report p99s
	seed := mix(s.Spec.Seed, uint32(idx))

	g := &ucos.Guest{GuestName: vm.Name}
	p.guest = g
	pd := s.Kernel.CreatePD(nova.PDConfig{
		Name: vm.Name, Priority: vm.Priority, Guest: g, Affinity: vm.Affinity,
	})
	p.pd = pd

	// Synthetic storm devices: PL lines allocated from the top so they
	// never collide with the fabric's PRR lines (allocated from 0 up).
	// The fabric hands a line to at most every PRR, so everything above
	// that is free for storm use.
	var stormIRQs []int
	for l := 0; l < vm.StormLines; l++ {
		s.stormNext++
		line := gic.NumPLIRQs - s.stormNext
		if line < len(s.Kernel.Fabric.PRRs) {
			panic(fmt.Sprintf("scenario %q: %d storm lines exceed the free PL lines (%d PRRs reserve the bottom of the range)",
				s.Spec.Name, s.stormNext, len(s.Kernel.Fabric.PRRs)))
		}
		irq := s.Kernel.BindPLIRQ(line, pd)
		stormIRQs = append(stormIRQs, irq)
		s.startStorm(pd, line, simclock.FromMicros(vm.StormPeriodUs), vm.StormBurst)
	}

	tick := s.Spec.TickMs
	g.Setup = func(os *ucos.OS) {
		os.TickPeriod = simclock.FromMillis(tick)
		for _, irq := range stormIRQs {
			irq := irq
			os.RegisterIRQ(irq, func(int) { p.stormHandled++ })
		}
		if vm.HwGapTicks > 0 {
			os.TaskCreate("churn", 8, s.churnTask(p, idx, seed))
		}
		if vm.Workload != "" {
			os.TaskCreate("workload", 30, s.workloadTask(p, idx, seed))
		}
	}
	s.probes = append(s.probes, p)
}

// startStorm arms the recurring pulse train for one synthetic device
// line: every period the line asserts burst times, 2 µs apart, so the
// trailing assertions arrive while the leading one is still in service.
// The train rides the owning VM's core clock: the line targets that core,
// so in a parallel run the raise must execute on the goroutine that owns
// the core's interrupt state.
func (s *System) startStorm(pd *nova.PD, line int, period simclock.Cycles, burst int) {
	if period <= 0 {
		period = simclock.FromMicros(200)
	}
	if burst < 1 {
		burst = 1
	}
	gap := simclock.FromMicros(2)
	// The quiet stretch after a burst must stay a real delay: a period
	// shorter than the burst itself would schedule events in the past,
	// which the clock clamps to "fire immediately" — an unintended
	// flood. Cycles is unsigned, so compare before subtracting.
	rest := gap
	if span := simclock.Cycles(burst-1) * gap; period > span+gap {
		rest = period - span
	}
	clk := pd.Core.Clock
	var pulse func(simclock.Cycles)
	shot := 0
	pulse = func(simclock.Cycles) {
		s.Kernel.RaisePL(line)
		atomic.AddUint64(&s.stormPulses, 1)
		shot++
		if shot%burst == 0 {
			clk.After(rest, pulse)
		} else {
			clk.After(gap, pulse)
		}
	}
	clk.After(period, pulse)
}

// Result is one scenario's outcome: the replay checksum plus the headline
// counters the summary table reports. Everything except WallMs is derived
// from simulated state and is covered by the checksum.
type Result struct {
	Name     string
	Checksum uint64
	Cores    int
	VMs      int
	SimMs    float64
	WallMs   float64 // host time; NOT part of the checksum

	Injected     uint64 // vIRQ injections across all PDs
	Relatched    uint64 // in-service re-raises latched for EOI redelivery
	Switches     uint64 // world switches
	Hypercalls   uint64
	Requests     uint64 // completed hardware-task runs
	Busy         uint64 // manager busy replies
	StormPulses  uint64
	StormHandled uint64
	Reconfigs    uint64 // pipeline completions
	PrefetchHits uint64

	// Fault-tolerance and QoS ledger (all zero on fault-free, QoS-off
	// runs; all covered by the checksum).
	FaultsInjected uint64 // injector events across every class
	Retries        uint64 // pipeline retry launches
	Quarantines    uint64 // PRRs pulled from placement
	FaultedReqs    uint64 // requests failed after exhausting retries
	Throttled      uint64 // QoS bucket denials across all VMs
	BreakerTrips   uint64 // circuit-breaker trips across all VMs

	// Capability-space traffic (aggregated over the kernel root space
	// and every PD's table; all covered by the checksum).
	CapLookups     uint64
	CapDenials     uint64 // failed resolutions of any kind
	CapDelegations uint64
	IPCFastCalls   uint64 // same-core synchronous portal handoffs

	// Snapshot/fork ledger (zero outside snapshot scenarios; all covered
	// by the checksum).
	BootCycles   simclock.Cycles // sim time for the template to boot and quiesce
	ForkCycles   simclock.Cycles // sim time to prewarm, fork and activate every clone
	CloneCount   int             // clones activated (excludes shelf-only ones)
	COWFaults    uint64          // write faults resolved as COW breaks, all clones
	FramesCopied uint64          // frames privately copied, all clones
	FramesShared uint64          // frames still template-shared at collection
	PoolHits     uint64
	PoolMisses   uint64
	PoolBuilt    uint64
	PoolReaped   uint64

	// VMStats carries each VM's counters and acquire-latency percentiles
	// in spec order (the interference probes read them by name).
	VMStats []VMStat

	// Detail is the exact state dump the checksum is computed over —
	// diffing two runs' details localizes a replay divergence.
	Detail string

	// Tracing byproducts. NOT part of the checksum or Detail: the rings
	// observe the run, they are not simulated state.
	TraceEvents uint64        // events emitted across all cores (incl. dropped)
	TraceDrops  uint64        // events evicted from full rings
	Trace       *trace.Tracer // nil when the spec did not enable tracing
}

// VMStat is one VM's slice of the result: its request/denial counters
// and the request→ready latency distribution of its successful acquires.
type VMStat struct {
	Name      string
	Requests  uint64
	Failures  uint64
	Busy      uint64
	Throttled uint64 // QoS bucket denials seen by the guest
	Retried   uint64 // breaker-open answers seen by the guest
	Faulted   uint64 // StatusFaulted unwinds seen by the guest

	AcqCount uint64          // successful acquires sampled
	AcqP50   simclock.Cycles // median request→ready latency
	AcqP99   simclock.Cycles // tail request→ready latency
}

// Run executes the scenario for its simulated budget, computes the state
// checksum, and tears the system down. Shards > 1 selects the parallel
// epoch-barrier engine; the result (and checksum) is byte-identical
// either way.
func (s *System) Run() Result {
	t0 := time.Now() //detlint:hosttime Result.WallMs is host-side run cost; excluded from the checksummed dump
	k := s.Kernel
	// Flight recorder: a panic mid-run re-raises with the tail of every
	// core's event ring attached, so the failure message carries the last
	// things the kernel did.
	defer func() {
		if r := recover(); r != nil {
			if k.Tracer != nil {
				panic(fmt.Sprintf("%v\n\nflight recorder (last events per core):\n%s",
					r, k.Tracer.FlightDump(256)))
			}
			panic(r)
		}
	}()
	d := simclock.FromMillis(s.Spec.RunMs)
	if s.snap != nil {
		s.runSnapshot(d)
	} else {
		s.advance(d)
	}
	res := s.collect()
	res.WallMs = float64(time.Since(t0).Microseconds()) / 1000 //detlint:hosttime WallMs is reporting-only, never checksummed
	k.Shutdown()
	return res
}

// advance runs the simulation for d more cycles on the engine the spec
// selected. The phased snapshot runner calls it repeatedly; checksums
// must stay byte-identical however the budget is chopped.
func (s *System) advance(d simclock.Cycles) {
	if s.Spec.Shards > 1 {
		s.Kernel.RunParallelFor(d, s.Spec.Shards)
	} else {
		s.Kernel.RunFor(d)
	}
}

// collect gathers the result and checksum from the stopped system.
func (s *System) collect() Result {
	k := s.Kernel
	res := Result{
		Name:        s.Spec.Name,
		Cores:       len(k.Cores),
		VMs:         len(s.probes),
		SimMs:       k.Clock.Now().Millis(),
		StormPulses: atomic.LoadUint64(&s.stormPulses),
	}
	d := newDigest()
	d.addf("scenario %s seed %d clock %d", s.Spec.Name, s.Spec.Seed, k.Clock.Now())

	for _, pd := range k.PDs {
		res.Switches += pd.Switches
		res.Hypercalls += pd.Hypercalls
		res.Injected += pd.VGIC.Injected
		res.Relatched += pd.VGIC.Relatched
		cs := pd.Space.Stats
		d.addf("pd %d %s switches %d hypercalls %d faults %d injected %d relatched %d caps %d lookups %d denials %d",
			pd.ID, pd.Name(), pd.Switches, pd.Hypercalls, pd.Faults,
			pd.VGIC.Injected, pd.VGIC.Relatched,
			pd.Space.CapCount(), cs.Lookups, cs.Denials())
	}
	caps := k.CapStats()
	res.CapLookups = caps.Lookups
	res.CapDenials = caps.Denials()
	res.CapDelegations = caps.Delegations
	res.IPCFastCalls = k.IPCFastCalls()
	d.addf("capspace lookups %d hits %d badsel %d revoked %d badtype %d denied %d delegations %d revocations %d ipcfast %d",
		caps.Lookups, caps.Hits, caps.BadSel, caps.Revoked, caps.BadType,
		caps.Denied, caps.Delegations, caps.Revocations, k.IPCFastCalls())
	for _, p := range s.probes {
		res.Requests += p.requests
		res.Busy += p.busy
		res.StormHandled += p.stormHandled
		var ticks uint64
		if p.resumed != nil && p.resumed.OS != nil {
			ticks = p.resumed.OS.Ticks
		} else if p.guest.OS != nil {
			ticks = p.guest.OS.Ticks
		}
		d.addf("vm %s requests %d failures %d busy %d storm %d ticks %d workload %s output %d",
			p.spec.Name, p.requests, p.failures, p.busy, p.stormHandled, ticks,
			p.spec.Workload, p.output)
		denials, trips, rejections := k.QoSCounters(p.pd)
		res.Throttled += denials
		res.BreakerTrips += trips
		st := VMStat{
			Name: p.spec.Name, Requests: p.requests, Failures: p.failures,
			Busy: p.busy, Throttled: p.throttled, Retried: p.retried,
			Faulted: p.faulted, AcqCount: p.acq.Count,
			AcqP50: p.acq.Percentile(50), AcqP99: p.acq.Percentile(99),
		}
		res.VMStats = append(res.VMStats, st)
		d.addf("vmqos %s throttled %d retried %d faulted %d bucket %d breaker %d %d acq %d p50 %d p99 %d",
			p.spec.Name, p.throttled, p.retried, p.faulted,
			denials, trips, rejections, st.AcqCount, uint64(st.AcqP50), uint64(st.AcqP99))
	}
	gs := k.GIC.Stats()
	d.addf("gic raised %d sgis %d acked %d completed %d spurious %d",
		gs.Raised, gs.SGIsSent, gs.Acknowledged, gs.Completed, gs.Spurious)
	for _, c := range k.Cores {
		l1d, tlb := c.CPU.Caches.L1D.Stats(), c.CPU.TLB.Stats()
		d.addf("core %d busy %d l1d %d %d %d %d tlb %d %d %d",
			c.ID, c.BusyCycles, l1d.Hits, l1d.Misses, l1d.Evictions, l1d.Writebacks,
			tlb.Hits, tlb.Misses, tlb.Evictions)
	}
	if pipe := k.Reconfig; pipe != nil {
		res.Reconfigs = pipe.Stats.Completions
		res.PrefetchHits = pipe.Prefetch.Stats.Hits
		cs, qs, fs := pipe.Cache.Stats, pipe.Queue.Stats, pipe.Prefetch.Stats
		d.addf("reconfig req %d queued %d done %d fail %d cache %d %d %d %d %d queue %d %d %d prefetch %d %d %d %d pcap %d %d",
			pipe.Stats.Requests, pipe.Stats.Queued, pipe.Stats.Completions, pipe.Stats.Failures,
			cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.Bypasses,
			qs.Enqueued, qs.MaxDepth, qs.DepthSum,
			fs.Transitions, fs.Issued, fs.Hits, fs.Useless,
			pipe.Fabric.PCAP.Transfers, pipe.Fabric.PCAP.Errors)
		res.Retries = pipe.Stats.Retries
		res.Quarantines = pipe.Stats.Quarantines
		res.FaultedReqs = pipe.Stats.FaultedRequests
		var is fault.Stats
		if pipe.Inject != nil {
			is = pipe.Inject.Stats
		}
		res.FaultsInjected = is.Total()
		d.addf("faults sd %d %d %d pcap %d %d prr %d retries %d timeouts %d poison %d quarantines %d faulted %d purged %d invalidations %d aborts %d",
			is.SDErrors, is.SDStalls, is.Corruptions, is.PCAPCRCs, is.PCAPStalls, is.PRRFaults,
			pipe.Stats.Retries, pipe.Stats.Timeouts, pipe.Stats.PoisonEvictions,
			pipe.Stats.Quarantines, pipe.Stats.FaultedRequests, pipe.Stats.Purged,
			cs.Invalidations, pipe.Fabric.PCAP.Aborts)
	}
	for _, ph := range checksumPhases {
		pr := k.Probes.Get(ph)
		d.addf("probe %s %d %d %d %d", ph, pr.Count, pr.Total, pr.Min, pr.Max)
	}
	console := k.ConsoleString()
	d.addf("console %d %d", fnvString(console), len(console))

	// Snapshot/fork ledger: only snapshot scenarios write these lines, so
	// every pre-existing scenario's dump stays byte-identical.
	if s.snap != nil {
		s.snapshotCollect(d, &res)
	}

	// Trace byproducts ride only on the Result struct — deliberately NOT
	// written into the digest: the checksum must not know whether the run
	// was traced.
	if k.Tracer != nil {
		res.Trace = k.Tracer
		res.TraceEvents = k.Tracer.Total()
		res.TraceDrops = k.Tracer.Drops()
	}

	res.Detail = d.text()
	res.Checksum = d.sum()
	return res
}

// mix whitens a (seed, lane) pair into a per-VM stream seed.
func mix(seed, lane uint32) uint32 {
	x := seed*2654435761 + lane*0x9E3779B9 + 0x85EBCA6B
	x ^= x >> 16
	x *= 0x7FEB352D
	x ^= x >> 15
	return x | 1
}
