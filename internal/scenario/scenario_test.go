package scenario

import (
	"sync"
	"testing"
)

// The tentpole guarantee: running the whole suite twice — each run
// fanning the scenarios out across host goroutines — must produce
// byte-identical per-scenario state dumps and checksums. Any map-order
// leak, host-time dependence, or cross-scenario sharing anywhere in the
// simulated stack shows up here as a diff.
func TestSuiteDeterminism(t *testing.T) {
	specs := Suite(true)
	if len(specs) < 8 {
		t.Fatalf("suite has %d scenarios, want >= 8", len(specs))
	}
	first := RunSuite(specs)
	second := RunSuite(specs)
	for i, a := range first {
		b := second[i]
		if a.Name != b.Name {
			t.Fatalf("result order diverged: %s vs %s", a.Name, b.Name)
		}
		if a.Checksum != b.Checksum {
			t.Errorf("%s: checksum diverged across identical runs: %016x vs %016x\n--- first ---\n%s--- second ---\n%s",
				a.Name, a.Checksum, b.Checksum, a.Detail, b.Detail)
		}
		if a.Detail != b.Detail {
			t.Errorf("%s: state dump diverged with equal checksum (hash collision?)", a.Name)
		}
	}
}

// Parallel fan-out must not change any scenario's timeline: the suite run
// concurrently has to match the same specs run one at a time.
func TestParallelMatchesSequential(t *testing.T) {
	specs := Suite(true)[:3]
	parallel := RunSuite(specs)
	for i, spec := range specs {
		seq := Build(spec).Run()
		if seq.Checksum != parallel[i].Checksum {
			t.Errorf("%s: sequential checksum %016x != parallel %016x",
				spec.Name, seq.Checksum, parallel[i].Checksum)
		}
	}
}

// The parallel engine's contract: every suite scenario run through
// RunParallel — whatever the shard count — produces the byte-identical
// state dump and checksum the sequential loop produces. Any cross-core
// effect that escapes the epoch barrier, any host-order-dependent merge,
// any clock read off the wrong core diverges here.
func TestParallelInSystemMatchesSequential(t *testing.T) {
	specs := Suite(true)
	shardCounts := []int{1, 2, 4}
	type run struct {
		spec   Spec
		shards int // 0 = sequential reference
		res    Result
	}
	var runs []run
	for _, spec := range specs {
		runs = append(runs, run{spec: spec})
		for _, sh := range shardCounts {
			s := spec
			s.Shards = sh
			runs = append(runs, run{spec: s, shards: sh})
		}
	}
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i].res = Build(runs[i].spec).Run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < len(runs); i += 1 + len(shardCounts) {
		ref := runs[i].res
		for j := 1; j <= len(shardCounts); j++ {
			got := runs[i+j].res
			if got.Checksum != ref.Checksum {
				t.Errorf("%s: shards=%d checksum %016x != sequential %016x",
					ref.Name, runs[i+j].shards, got.Checksum, ref.Checksum)
				continue
			}
			if got.Detail != ref.Detail {
				t.Errorf("%s: shards=%d state dump diverged with equal checksum (hash collision?)",
					ref.Name, runs[i+j].shards)
			}
		}
	}
}

// The storm scenario must actually hit the re-raise-before-EOI window:
// without the vGIC's pending-again latch those interrupts were silently
// dropped.
func TestIRQStormExercisesRelatch(t *testing.T) {
	spec, ok := FindSpec("irq-storm", true)
	if !ok {
		t.Fatal("irq-storm spec missing")
	}
	r := Build(spec).Run()
	if r.StormHandled == 0 {
		t.Fatal("storm scenario delivered no device interrupts")
	}
	if r.Relatched == 0 {
		t.Fatal("storm scenario produced no in-service re-raises — the lost-vIRQ window went unexercised")
	}
	// Every latched re-raise is redelivered, so deliveries must exceed
	// what distinct pending-bit deliveries alone could produce: handled
	// counts, injections and relatches must be consistent.
	if r.Injected == 0 || r.Injected < r.Relatched {
		t.Fatalf("inconsistent storm accounting: injected=%d relatched=%d", r.Injected, r.Relatched)
	}
}

// The idle-wakeup scenario parks every VM in paravirtualized idle and
// wakes them only by device pulses.
func TestIdleWakeup(t *testing.T) {
	spec, ok := FindSpec("idle-wakeup", true)
	if !ok {
		t.Fatal("idle-wakeup spec missing")
	}
	r := Build(spec).Run()
	if r.StormHandled == 0 {
		t.Fatal("no device pulses delivered to idle VMs")
	}
	if r.Switches == 0 {
		t.Fatal("idle VMs never woke (no world switches)")
	}
}

// The prefetch-friendly scenario's periodic image cycle must drive the
// predictor to real speculative hits. Needs the full-length run — in
// short mode the horizon ends before the history is learned.
func TestPrefetchFriendlyHits(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full-length scenario horizon")
	}
	spec, ok := FindSpec("prefetch-friendly", false)
	if !ok {
		t.Fatal("prefetch-friendly spec missing")
	}
	r := Build(spec).Run()
	if r.Reconfigs == 0 {
		t.Fatal("no reconfigurations completed")
	}
	if r.PrefetchHits == 0 {
		t.Fatal("prefetcher scored no hits on a periodic transition pattern")
	}
}

// Churn scenarios must flow real hardware-task traffic through the
// manager and the reconfiguration pipeline.
func TestChurnFlowsTraffic(t *testing.T) {
	for _, name := range []string{"reconfig-thrash", "oversubscribed-8vm", "cache-starved"} {
		spec, ok := FindSpec(name, true)
		if !ok {
			t.Fatalf("%s spec missing", name)
		}
		r := Build(spec).Run()
		if r.Requests == 0 {
			t.Errorf("%s: no hardware-task runs completed", name)
		}
		if r.Reconfigs == 0 {
			t.Errorf("%s: no reconfigurations completed", name)
		}
	}
}

func TestFindSpec(t *testing.T) {
	if _, ok := FindSpec("no-such-scenario", true); ok {
		t.Error("found a scenario that does not exist")
	}
	for _, s := range Suite(false) {
		if s.RunMs <= 0 {
			t.Errorf("%s: zero runtime budget", s.Name)
		}
		if len(s.VMs) == 0 {
			t.Errorf("%s: no VMs", s.Name)
		}
		got, ok := FindSpec(s.Name, false)
		if !ok || got.Name != s.Name {
			t.Errorf("FindSpec(%q) failed", s.Name)
		}
	}
}
