// Checkpoint/fork scenario mode: a serverless-style template VM is
// booted to quiescence, checkpointed (hypervisor image + guest-kernel
// snapshot) and frozen, then forked through a warm pool into
// copy-on-write clones — the many-VMs-from-one-boot shape that motivates
// O(metadata) cloning. Every phase boundary happens at engine-stopped
// points, and every clone's divergence is seeded from the spec, so the
// whole lifecycle — boot, checkpoint, prewarm, fork storm, COW breaks,
// TTL reaping — is covered by the scenario's replay checksum.
package scenario

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/nova"
	"repro/internal/pool"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

// SnapshotSpec configures a scenario's checkpoint/fork phases.
type SnapshotSpec struct {
	// Clones is how many VMs to fork and activate from the template.
	Clones int
	// Prewarm is the warm pool's shelf target (0 = every fork is cold).
	Prewarm int
	// TTLMs reaps shelf clones unused for this long (0 = never).
	TTLMs float64
	// KeepWarm re-tops the shelf to Prewarm after each reap scan.
	KeepWarm bool
	// BootMs bounds the template's boot-to-quiescence phase (0 = 12).
	BootMs float64
	// Tasks is the template's serverless handler count (0 = 3, max 8).
	Tasks int
	// ColdExec is each handler's one-time cold-start instruction burst —
	// the work a fork skips (0 = 700_000).
	ColdExec int
}

// normalized fills the snapshot spec's defaults.
func (sp SnapshotSpec) normalized() SnapshotSpec {
	if sp.BootMs == 0 {
		sp.BootMs = 12
	}
	if sp.Tasks == 0 {
		sp.Tasks = 3
	}
	if sp.Tasks > 8 {
		sp.Tasks = 8
	}
	if sp.ColdExec == 0 {
		sp.ColdExec = 700_000
	}
	return sp
}

// slsState is one serverless handler's host-side mutable state. It is
// what makes clones more than copies: each clone's states are deep-copied
// from the template's at fork and perturbed with a seeded stream, so
// every clone touches different pages and accumulates a different digest.
type slsState struct {
	rng   uint32
	cold  int // one-time cold-start burst; 0 once booted
	iters uint64
	acc   uint64
}

// slsBufPages is each handler's working-set size in pages — it bounds a
// clone's COW copies at Tasks*slsBufPages frames, within the arena.
const slsBufPages = 4

// slsBody is a serverless handler: an optional cold start (executed only
// on the template's first boot — forked clones inherit cold=0), then a
// steady request loop that writes its buffer pages and sleeps. The loop
// is shaped for checkpoint/restore: Delay is the last statement, so a
// parked task resuming and a restored task starting fresh both land at
// the loop top and charge identically.
func slsBody(st *slsState, idx int) func(t *ucos.Task) {
	bufVA := nova.GuestUserBase + 1<<20 + uint32(idx)*(64<<10)
	return func(t *ucos.Task) {
		for {
			if st.cold > 0 {
				t.Exec(st.cold)
				st.cold = 0
			}
			for i := 0; i < 2; i++ {
				st.rng ^= st.rng << 13
				st.rng ^= st.rng >> 17
				st.rng ^= st.rng << 5
				page := st.rng % slsBufPages
				t.Touch(bufVA+page*4096+(st.rng&15)*64, true)
				t.Exec(140)
			}
			st.acc = st.acc*31 + uint64(st.rng)
			st.iters++
			t.Delay(2)
		}
	}
}

// slsSetup creates the serverless handlers over the given states. The
// same setup shape runs on the template at boot and on every clone at
// restore (with the clone's own states), satisfying ucos.Restore's
// tasks-recreated contract.
func slsSetup(tickMs float64, states []*slsState) func(os *ucos.OS) {
	return func(os *ucos.OS) {
		os.TickPeriod = simclock.FromMillis(tickMs)
		for i, st := range states {
			if err := os.TaskCreate(fmt.Sprintf("fn%d", i), 8+i, slsBody(st, i)); err != nil {
				panic(err)
			}
		}
	}
}

// cloneVM is one forked VM's harness-side record, kept in build order so
// the per-clone digest lines are deterministic.
type cloneVM struct {
	name   string
	pd     *nova.PD
	guest  *ucos.ResumedGuest
	states []*slsState
	reaped bool
}

// snapRun is the checkpoint/fork state machine of one snapshot scenario.
type snapRun struct {
	cfg       SnapshotSpec
	key       string // pool image key = template VM name
	tpl       *vmProbe
	tplStates []*slsState

	osnap *ucos.Snapshot
	img   *checkpoint.Image
	pool  *pool.Pool

	clones []*cloneVM // every clone ever built, in build order
	active int

	bootCycles simclock.Cycles
	forkCycles simclock.Cycles
}

// addTemplateVM wires one VM as a serverless template (snapshot mode's
// counterpart of addVM: same probe plumbing, sls tasks instead of
// churn/workload drivers). The first template VM anchors the snapRun.
func (s *System) addTemplateVM(idx int, vm VM) {
	if vm.Name == "" {
		vm.Name = fmt.Sprintf("vm%d", idx)
	}
	if vm.Priority == 0 {
		vm.Priority = nova.PrioGuest
	}
	p := &vmProbe{spec: vm}
	p.acq.Keep = true
	cfg := s.Spec.Snapshot.normalized()
	seed := mix(s.Spec.Seed, uint32(idx))
	states := make([]*slsState, cfg.Tasks)
	for i := range states {
		states[i] = &slsState{rng: mix(seed, uint32(0x515+i)), cold: cfg.ColdExec}
	}
	g := &ucos.Guest{GuestName: vm.Name, Setup: slsSetup(s.Spec.TickMs, states)}
	p.guest = g
	p.pd = s.Kernel.CreatePD(nova.PDConfig{
		Name: vm.Name, Priority: vm.Priority, Guest: g, Affinity: vm.Affinity,
	})
	s.probes = append(s.probes, p)
	if s.snap == nil {
		s.snap = &snapRun{cfg: cfg, key: vm.Name, tpl: p, tplStates: states}
	}
}

// bootToQuiescence advances the simulation in fixed steps until the
// template parks in paravirtualized idle — the checkpointable state —
// panicking if the boot budget runs out first.
func (s *System) bootToQuiescence() {
	sr := s.snap
	limit := simclock.FromMillis(sr.cfg.BootMs)
	step := simclock.FromMicros(250)
	for !sr.tpl.pd.IdleParked() {
		if s.Kernel.Clock.Now() >= limit {
			panic(fmt.Sprintf("scenario %q: template failed to quiesce within %.1f ms", s.Spec.Name, sr.cfg.BootMs))
		}
		s.advance(step)
	}
}

// checkpointTemplate snapshots the quiesced template (guest-kernel state
// + hypervisor image, frames shared not copied) and freezes it under its
// future clones.
func (s *System) checkpointTemplate(withContents bool) {
	sr := s.snap
	osnap, err := sr.tpl.guest.OS.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
	}
	img, err := s.Kernel.Checkpoint(sr.tpl.pd, osnap, withContents, sr.key)
	if err != nil {
		panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
	}
	sr.osnap, sr.img = osnap, img
	if err := s.Kernel.Freeze(sr.tpl.pd); err != nil {
		panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
	}
}

// buildClone forks clone #seq from the template image: deep-copied,
// seed-perturbed handler states and a ResumedGuest that re-enters the
// captured timeline. Pool Build callback; runs at engine-stopped points.
func (s *System) buildClone(seq int) *cloneVM {
	sr := s.snap
	name := fmt.Sprintf("%s.c%d", sr.key, seq)
	states := make([]*slsState, len(sr.tplStates))
	for i, st := range sr.tplStates {
		cp := *st
		cp.rng = (cp.rng ^ mix(s.Spec.Seed, uint32(0xC10E+seq*8+i))) | 1
		states[i] = &cp
	}
	g := &ucos.ResumedGuest{GuestName: name, Snap: sr.osnap, Setup: slsSetup(s.Spec.TickMs, states)}
	pd := s.Kernel.CreateClone(sr.img, nova.CloneConfig{Name: name, Guest: g})
	cv := &cloneVM{name: name, pd: pd, guest: g, states: states}
	sr.clones = append(sr.clones, cv)
	return cv
}

// destroyClone is the pool's Destroy callback (TTL reap / drain).
func (s *System) destroyClone(cv *cloneVM) {
	if err := s.Kernel.DestroyClone(cv.pd); err != nil {
		panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
	}
	cv.reaped = true
}

// newPool wires the warm pool over the scenario's build/destroy hooks.
func (s *System) newPool() *pool.Pool {
	sr := s.snap
	return pool.New(
		pool.Config{
			Target: sr.cfg.Prewarm,
			TTL:    simclock.FromMillis(sr.cfg.TTLMs),
			Seed:   uint64(mix(s.Spec.Seed, 0x9001)),
		},
		pool.Funcs{
			Image:   func(string) (any, error) { return sr.img, nil },
			Build:   func(_ string, _ any, seq int) (any, error) { return s.buildClone(seq), nil },
			Destroy: func(v any) { s.destroyClone(v.(*cloneVM)) },
		})
}

// runSnapshot is the snapshot scenario's phased run loop:
//
//	A) boot the template until it parks, checkpoint + freeze it;
//	B) prewarm the pool, then acquire/activate the clone fleet — the
//	   fork storm whose simulated cost ForkCycles records;
//	C) run the fleet for the spec's budget in chunks, reaping expired
//	   shelf clones (and optionally re-warming) between chunks.
func (s *System) runSnapshot(d simclock.Cycles) {
	k := s.Kernel
	sr := s.snap

	s.bootToQuiescence()
	sr.bootCycles = k.Clock.Now()
	s.checkpointTemplate(false)

	sr.pool = s.newPool()
	fork0 := k.Clock.Now()
	if err := sr.pool.Prewarm(sr.key, fork0); err != nil {
		panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
	}
	for i := 0; i < sr.cfg.Clones; i++ {
		v, _, err := sr.pool.Acquire(sr.key, k.Clock.Now())
		if err != nil {
			panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
		}
		cv := v.(*cloneVM)
		if err := k.ActivateClone(cv.pd); err != nil {
			panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
		}
		sr.active++
	}
	sr.forkCycles = k.Clock.Now() - fork0

	chunk := d / 8
	if chunk == 0 {
		chunk = d
	}
	for done := simclock.Cycles(0); done < d; done += chunk {
		s.advance(chunk)
		if sr.cfg.TTLMs > 0 {
			sr.pool.ReapExpired(k.Clock.Now())
		}
		if sr.cfg.KeepWarm {
			if err := sr.pool.Prewarm(sr.key, k.Clock.Now()); err != nil {
				panic(fmt.Sprintf("scenario %q: %v", s.Spec.Name, err))
			}
		}
	}
	// Deterministic teardown: shelf leftovers die before collection so
	// the final refcount/arena state is budget-independent.
	sr.pool.DrainAll()
}

// snapshotCollect folds the snapshot/fork ledger into the result and the
// checksummed dump: the phase timings, the pool counters, and one line
// per clone ever built (build order) with its COW and handler state.
func (s *System) snapshotCollect(d *digest, res *Result) {
	sr := s.snap
	res.BootCycles, res.ForkCycles = sr.bootCycles, sr.forkCycles
	res.CloneCount = sr.active
	d.addf("snapshot %s boot %d fork %d clones %d prewarm %d",
		sr.key, uint64(sr.bootCycles), uint64(sr.forkCycles), sr.active, sr.cfg.Prewarm)
	if sr.pool != nil {
		st := sr.pool.Stats()
		res.PoolHits, res.PoolMisses = st.Hits, st.Misses
		res.PoolBuilt, res.PoolReaped = st.Built, st.Reaped
		d.addf("pool built %d hits %d misses %d reaped %d prewarmed %d imageonce %d",
			st.Built, st.Hits, st.Misses, st.Reaped, st.Prewarmed, st.ImageOnce)
	}
	for _, cv := range sr.clones {
		cs, _ := cv.pd.CloneStats()
		res.COWFaults += cs.COWFaults
		res.FramesCopied += cs.Copied
		res.FramesShared += uint64(cs.Shared)
		var ticks uint64
		if cv.guest.OS != nil {
			ticks = cv.guest.OS.Ticks
		}
		var iters, acc uint64
		for _, st := range cv.states {
			iters += st.iters
			acc = acc*33 + st.acc
		}
		d.addf("clone %s cow %d copied %d shared %d iters %d acc %d ticks %d reaped %v",
			cv.name, cs.COWFaults, cs.Copied, cs.Shared, iters, acc, ticks, cv.reaped)
	}
}
