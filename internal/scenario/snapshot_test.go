package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/physmem"
	"repro/internal/simclock"
	"repro/internal/ucos"
)

// TestForkStormBudget pins the headline claim on the oversubscribed
// scenario: forking and activating 256 clones costs less simulated time
// than twice one template boot, and the fleet really runs (COW breaks,
// warm-pool hits for the prewarmed shelf, cold builds for the rest).
func TestForkStormBudget(t *testing.T) {
	spec, ok := FindSpec("oversubscribed-256vm", true)
	if !ok {
		t.Fatal("oversubscribed-256vm not in suite")
	}
	r := Build(spec).Run()
	if r.CloneCount != 256 {
		t.Fatalf("CloneCount = %d, want 256", r.CloneCount)
	}
	if r.ForkCycles == 0 || r.BootCycles == 0 {
		t.Fatalf("phase timings missing: boot %d fork %d", r.BootCycles, r.ForkCycles)
	}
	if r.ForkCycles > 2*r.BootCycles {
		t.Fatalf("forking 256 VMs cost %d cycles > 2x one boot (%d): fork is not O(metadata)",
			r.ForkCycles, r.BootCycles)
	}
	if r.COWFaults == 0 || r.FramesCopied != r.COWFaults {
		t.Fatalf("COW ledger: faults %d copied %d", r.COWFaults, r.FramesCopied)
	}
	if want := uint64(spec.Snapshot.Prewarm); r.PoolHits != want {
		t.Fatalf("pool hits = %d, want %d (the prewarmed shelf)", r.PoolHits, want)
	}
	if want := uint64(spec.Snapshot.Clones - spec.Snapshot.Prewarm); r.PoolMisses != want {
		t.Fatalf("pool misses = %d, want %d", r.PoolMisses, want)
	}
}

// TestWarmPoolReapScenario checks the churn scenario: TTL reaping fires,
// KeepWarm rebuilds the shelf past the initial prewarm, and the live
// clones still make progress.
func TestWarmPoolReapScenario(t *testing.T) {
	spec, ok := FindSpec("warm-pool-reap", true)
	if !ok {
		t.Fatal("warm-pool-reap not in suite")
	}
	r := Build(spec).Run()
	if r.CloneCount != spec.Snapshot.Clones {
		t.Fatalf("CloneCount = %d, want %d", r.CloneCount, spec.Snapshot.Clones)
	}
	if r.PoolReaped == 0 {
		t.Fatal("TTL reaper never fired")
	}
	if r.PoolBuilt <= uint64(spec.Snapshot.Prewarm+spec.Snapshot.Clones) {
		t.Fatalf("PoolBuilt = %d: KeepWarm never rebuilt the shelf", r.PoolBuilt)
	}
	if r.COWFaults == 0 {
		t.Fatal("active clones broke no COW shares")
	}
}

// midpointRun boots the template to quiescence and runs it for the
// spec's budget. With interrupt set, the quiesced midpoint is
// checkpointed withContents, the guest's restorable state is then
// deliberately scrambled — RAM frames, vCPU registers — and the PD is
// restored in place from the image before the run continues. A correct
// checkpoint/restore makes the two timelines indistinguishable.
func midpointRun(t *testing.T, shards int, interrupt bool) Result {
	t.Helper()
	spec := Spec{
		Name: "midpoint-restore", Cores: 2, RunMs: 6, Seed: 21, Shards: shards,
		Snapshot: &SnapshotSpec{},
		VMs:      []VM{{Name: "template"}},
	}
	sys := Build(spec)
	k := sys.Kernel
	defer k.Shutdown()
	sys.bootToQuiescence()

	if interrupt {
		sr := sys.snap
		pd := sr.tpl.pd
		osnap, err := sr.tpl.guest.OS.Snapshot()
		if err != nil {
			t.Fatalf("guest snapshot: %v", err)
		}
		img, err := k.Checkpoint(pd, osnap, true, "mid")
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		// Scramble everything the image claims to capture: if restore
		// missed any of it, the continued timeline diverges and the
		// digest comparison below catches it.
		garbage := make([]byte, physmem.FrameSize)
		for i := range garbage {
			garbage[i] = 0xA5
		}
		for _, f := range img.Frames {
			k.Bus.LoadFrame(f.PA, garbage)
		}
		for i := range pd.VCPU.Regs.R {
			pd.VCPU.Regs.R[i] = 0xDEADBEEF
		}
		pd.VCPU.Regs.CPSR = 0xDEADBEEF
		if pd.Core.Current == pd {
			pd.Core.CPU.Regs = pd.VCPU.Regs
		}
		rg := &ucos.ResumedGuest{
			GuestName: "template",
			Snap:      osnap,
			Setup:     slsSetup(sys.Spec.TickMs, sr.tplStates),
		}
		if err := k.RestoreInPlace(pd, img, rg); err != nil {
			t.Fatalf("restore in place: %v", err)
		}
		sr.tpl.resumed = rg
	}

	chunk := simclock.FromMillis(sys.Spec.RunMs) / 8
	for i := 0; i < 8; i++ {
		sys.advance(chunk)
	}
	return sys.collect()
}

// TestCheckpointRestoreContinuity: checkpoint mid-run, scramble, restore
// in place, continue — the final state dump must be byte-identical to an
// uninterrupted run, sequentially and on every shard count, and the
// engines must agree with each other.
func TestCheckpointRestoreContinuity(t *testing.T) {
	var ref Result
	for i, shards := range []int{0, 2, 4} {
		base := midpointRun(t, shards, false)
		restored := midpointRun(t, shards, true)
		if base.Detail != restored.Detail {
			t.Fatalf("shards=%d: restored timeline diverged from uninterrupted run\n%s",
				shards, diffDetail(base.Detail, restored.Detail))
		}
		if base.Checksum != restored.Checksum {
			t.Fatalf("shards=%d: checksum %016x != %016x with identical detail",
				shards, restored.Checksum, base.Checksum)
		}
		if i == 0 {
			ref = base
		} else if base.Detail != ref.Detail {
			t.Fatalf("shards=%d: baseline diverged from sequential baseline\n%s",
				shards, diffDetail(ref.Detail, base.Detail))
		}
	}
}

// diffDetail reports the first differing dump line, for readable
// failures instead of two multi-KB blobs.
func diffDetail(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, x, y)
		}
	}
	return "(no differing line)"
}
