package scenario

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// smallTaskMenu is the fault scenarios' churn mix: the small, quickly
// reconfigured images (short SD stages, sub-millisecond PCAP downloads),
// so a short horizon still flows enough downloads through the injector's
// decision sites to exercise every tolerance path.
var smallTaskMenu = []uint16{
	hwtask.TaskFFT256, hwtask.TaskFFT512,
	hwtask.TaskQAM4, hwtask.TaskQAM16, hwtask.TaskQAM64,
}

// Suite returns the named stress scenarios. short scales the simulated
// runtime budgets down for CI smoke runs — the topology, VM mix and
// traffic shapes are identical, only the horizon shrinks.
func Suite(short bool) []Spec {
	scale := 1.0
	if short {
		scale = 0.25
	}
	ms := func(v float64) float64 { return v * scale }

	return []Spec{
		{
			Name:  "baseline-2vm",
			About: "the paper's workload shape: two codec VMs with T_hw-style churn on one core",
			Cores: 1, RunMs: ms(160), Seed: 1,
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 31},
				{Workload: "adpcm", HwGapTicks: 31},
			},
		},
		{
			Name:  "irq-storm",
			About: "bursty device lines (3 asserts per 150us period) into a busy codec VM — re-raise-before-EOI pressure",
			Cores: 1, QuantumMs: 8, RunMs: ms(120), Seed: 2,
			VMs: []VM{
				{Workload: "gsm", StormLines: 2, StormPeriodUs: 150, StormBurst: 3},
				{Workload: "adpcm", HwGapTicks: 21},
			},
		},
		{
			Name:  "reconfig-thrash",
			About: "four VMs churn the full FFT family through a 192 KB cache — eviction and PCAP-queue pressure",
			Cores: 2, Policy: "partitioned", QuantumMs: 8, RunMs: ms(200), Seed: 3,
			CacheBytes:  192 << 10,
			ServiceCore: sched.MaskOf(1),
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 5, HwMenu: hwtask.FFTTaskIDs, Affinity: sched.MaskOf(0)},
				{Workload: "adpcm", HwGapTicks: 5, HwMenu: hwtask.FFTTaskIDs, Affinity: sched.MaskOf(0)},
				{HwGapTicks: 7, HwMenu: hwtask.FFTTaskIDs, Affinity: sched.MaskOf(0)},
				{HwGapTicks: 7, HwMenu: hwtask.FFTTaskIDs, Affinity: sched.MaskOf(0)},
			},
		},
		{
			Name:  "oversubscribed-8vm",
			About: "eight VMs on one core, mixed codecs, shared-pool churn with periodic releases",
			Cores: 1, QuantumMs: 6, RunMs: ms(260), Seed: 4,
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 17, ReleaseEvery: 5},
				{Workload: "adpcm", HwGapTicks: 17, ReleaseEvery: 5},
				{Workload: "gsm", HwGapTicks: 19},
				{Workload: "adpcm", HwGapTicks: 19},
				{Workload: "memhog", HwGapTicks: 23},
				{Workload: "gsm", HwGapTicks: 23, ReleaseEvery: 3},
				{Workload: "adpcm", HwGapTicks: 29},
				{Workload: "memhog", HwGapTicks: 29},
			},
		},
		{
			Name:  "prefetch-friendly",
			About: "a high-priority VM cycles four FFT images in order through a cache that holds two — periodic transitions plus idle windows, the prefetcher's home turf",
			Cores: 2, Policy: "partitioned", QuantumMs: 8, RunMs: ms(200), Seed: 5,
			CacheBytes:  512 << 10,
			ServiceCore: sched.MaskOf(1),
			VMs: []VM{
				{Priority: 2, HwGapTicks: 3, HwSequential: true, Affinity: sched.MaskOf(0),
					HwMenu: []uint16{hwtask.TaskFFT256, hwtask.TaskFFT512, hwtask.TaskFFT1024, hwtask.TaskFFT2048}},
				{Workload: "gsm", Affinity: sched.MaskOf(0)},
			},
		},
		{
			Name:  "mixed-criticality",
			About: "a critical storm+codec VM partitioned on core 1 beside best-effort churn on core 0",
			Cores: 2, Policy: "partitioned", QuantumMs: 8, RunMs: ms(160), Seed: 6,
			ServiceCore: sched.MaskOf(1),
			VMs: []VM{
				{Name: "critical", Priority: 2, Affinity: sched.MaskOf(1),
					Workload: "gsm", StormLines: 1, StormPeriodUs: 400, StormBurst: 2},
				{Workload: "adpcm", HwGapTicks: 13, Affinity: sched.MaskOf(0)},
				{Workload: "gsm", HwGapTicks: 17, Affinity: sched.MaskOf(0)},
				{Workload: "memhog", HwGapTicks: 23, Affinity: sched.MaskOf(0)},
			},
		},
		{
			Name:  "cache-starved",
			About: "a 64 KB cache below the working set with prefetch off — every miss pays the SD card",
			Cores: 1, QuantumMs: 8, RunMs: ms(160), Seed: 7,
			CacheBytes: 64 << 10, PrefetchOff: true,
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 7},
				{Workload: "adpcm", HwGapTicks: 9},
				{HwGapTicks: 11},
			},
		},
		{
			Name:  "idle-wakeup",
			About: "three idle VMs woken only by slow device pulses — the paravirtualized-WFI wake path",
			Cores: 1, RunMs: ms(160), Seed: 8,
			VMs: []VM{
				{StormLines: 1, StormPeriodUs: 5000},
				{StormLines: 1, StormPeriodUs: 7000},
				{StormLines: 1, StormPeriodUs: 11000},
			},
		},
		{
			Name:  "dual-core-spread",
			About: "four churning codec VMs balanced across two cores by prio-rr, service floating",
			Cores: 2, QuantumMs: 8, RunMs: ms(160), Seed: 9,
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 31},
				{Workload: "adpcm", HwGapTicks: 31},
				{Workload: "gsm", HwGapTicks: 27},
				{Workload: "adpcm", HwGapTicks: 27},
			},
		},
		{
			Name:  "flaky-sd",
			About: "SD staging reads fail, stall and stage corrupt images through a cache too small to help — retry/backoff and poisoned-cache recovery",
			Cores: 1, QuantumMs: 8, RunMs: ms(240), Seed: 10,
			CacheBytes: 64 << 10,
			Faults:     fault.Config{SDErrorPermille: 250, SDStallPermille: 200, CorruptPermille: 150},
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 3, HwMenu: smallTaskMenu},
				{HwGapTicks: 3, HwMenu: smallTaskMenu},
				{Workload: "adpcm", HwGapTicks: 5, HwMenu: smallTaskMenu},
			},
		},
		{
			Name:  "pcap-crc-storm",
			About: "PCAP downloads fail CRC or hang — device retries and watchdog reaps under fast cached reconfiguration churn",
			Cores: 1, QuantumMs: 8, RunMs: ms(200), Seed: 11,
			CacheBytes: 1 << 20,
			Faults:     fault.Config{PCAPCRCPermille: 200, PCAPStallPermille: 80},
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 3, HwMenu: smallTaskMenu},
				{HwGapTicks: 3, HwMenu: smallTaskMenu},
				{Workload: "adpcm", HwGapTicks: 5, HwMenu: smallTaskMenu},
				{HwGapTicks: 7, HwMenu: smallTaskMenu},
			},
		},
		{
			Name:  "prr-degraded",
			About: "transient PRR config faults quarantine regions — placement falls back to the healthy remainder on two cores",
			Cores: 2, Policy: "partitioned", QuantumMs: 8, RunMs: ms(240), Seed: 12,
			CacheBytes:  1 << 20,
			ServiceCore: sched.MaskOf(1),
			Faults:      fault.Config{PRRFaultPermille: 400, QuarantineAfter: 2},
			VMs: []VM{
				{Workload: "gsm", HwGapTicks: 3, HwMenu: smallTaskMenu, Affinity: sched.MaskOf(0)},
				{HwGapTicks: 3, HwMenu: smallTaskMenu, Affinity: sched.MaskOf(0)},
				{Workload: "adpcm", HwGapTicks: 5, HwMenu: smallTaskMenu, Affinity: sched.MaskOf(0)},
				{HwGapTicks: 7, HwMenu: smallTaskMenu, Affinity: sched.MaskOf(0)},
			},
		},
		{
			Name:  "noisy-neighbor",
			About: "a greedy churn VM hammers the manager beside a critical VM — QoS throttle and circuit breaker confine the interference",
			Cores: 2, Policy: "partitioned", QuantumMs: 8, RunMs: ms(240), Seed: 13,
			CacheBytes:  1 << 20,
			ServiceCore: sched.MaskOf(1),
			Faults:      fault.Config{SDStallPermille: 500, SDStallFactor: 2},
			QoS: nova.QoSConfig{
				BucketCapacity: 3, RefillEvery: simclock.FromMillis(2),
				TripAt: 10, Cooldown: simclock.FromMillis(8),
			},
			VMs: []VM{
				{Name: "critical", Priority: 2, Affinity: sched.MaskOf(1),
					HwGapTicks: 7, HwMenu: []uint16{hwtask.TaskQAM16, hwtask.TaskQAM64}},
				{Name: "greedy", HwGapTicks: 1, ReleaseEvery: 1, Affinity: sched.MaskOf(0),
					HwMenu: []uint16{hwtask.TaskQAM4}},
			},
		},
		{
			Name:  "oversubscribed-256vm",
			About: "one serverless template boots once, then 256 COW clones fork through a 64-deep warm pool — O(metadata) fork under heavy oversubscription",
			Cores: 2, RunMs: ms(8), Seed: 14,
			Snapshot: &SnapshotSpec{Clones: 256, Prewarm: 64},
			VMs:      []VM{{Name: "template"}},
		},
		{
			Name:  "warm-pool-reap",
			About: "a small clone fleet over an aggressively TTL-reaped, continuously re-warmed pool — shelf churn, generation revocation and arena recycling",
			Cores: 1, RunMs: ms(24), Seed: 15,
			Snapshot: &SnapshotSpec{Clones: 2, Prewarm: 6, TTLMs: 4, KeepWarm: true},
			VMs:      []VM{{Name: "template"}},
		},
	}
}

// FindSpec returns the named spec from the suite.
func FindSpec(name string, short bool) (Spec, bool) {
	for _, s := range Suite(short) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// RunSuite executes every spec, each scenario's whole system on its own
// host goroutine — the simulations share nothing, so wall-clock scales
// with host cores while every simulated timeline stays bit-exact.
// Results come back in spec order.
func RunSuite(specs []Spec) []Result {
	results := make([]Result, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			results[i] = Build(spec).Run()
		}(i, spec)
	}
	wg.Wait()
	return results
}

// SummaryTable renders the suite results as the per-scenario checksum
// table (the CI artifact and the -scenario console report). The events
// and drops columns report the tracing byproducts (0 when untraced);
// they sit outside the checksum.
func SummaryTable(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario suite: %d scenarios\n", len(results))
	fmt.Fprintf(&b, "%-20s %5s %4s %8s %9s %8s %8s %9s %8s %8s %6s %7s  %-16s\n",
		"scenario", "cores", "vms", "sim(ms)", "injected", "relatch", "hwruns", "reconfigs", "storm", "events", "drops", "wall(ms)", "checksum")
	for _, r := range results {
		fmt.Fprintf(&b, "%-20s %5d %4d %8.1f %9d %8d %8d %9d %8d %8d %6d %7.0f  %016x\n",
			r.Name, r.Cores, r.VMs, r.SimMs, r.Injected, r.Relatched,
			r.Requests, r.Reconfigs, r.StormHandled, r.TraceEvents, r.TraceDrops,
			r.WallMs, r.Checksum)
	}
	return b.String()
}
