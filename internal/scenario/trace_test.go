package scenario

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// The observability contract: tracing must be a pure observer. Every
// suite scenario run with tracing on — sequentially and through the
// parallel engine at 1/2/4 shards — must produce the byte-identical
// state dump and checksum of the untraced sequential run. Any trace
// emission that advances a clock, perturbs a probe, or reorders a
// cross-core effect diverges here.
func TestTraceDoesNotPerturbChecksums(t *testing.T) {
	specs := Suite(true)
	shardCounts := []int{1, 2, 4}
	type run struct {
		spec Spec
		res  Result
	}
	var runs []run
	for _, spec := range specs {
		runs = append(runs, run{spec: spec}) // untraced sequential reference
		for _, sh := range shardCounts {
			s := spec
			s.Trace = true
			s.Shards = sh
			runs = append(runs, run{spec: s})
		}
	}
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i].res = Build(runs[i].spec).Run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < len(runs); i += 1 + len(shardCounts) {
		ref := runs[i].res
		for j := 1; j <= len(shardCounts); j++ {
			got := runs[i+j].res
			shards := runs[i+j].spec.Shards
			if got.TraceEvents == 0 {
				t.Errorf("%s: traced run (shards=%d) emitted no events", ref.Name, shards)
			}
			if got.Checksum != ref.Checksum {
				t.Errorf("%s: traced shards=%d checksum %016x != untraced sequential %016x\nflight recorder:\n%s",
					ref.Name, shards, got.Checksum, ref.Checksum, got.Trace.FlightDump(64))
				continue
			}
			if got.Detail != ref.Detail {
				t.Errorf("%s: traced shards=%d state dump diverged with equal checksum (hash collision?)",
					ref.Name, shards)
			}
		}
	}
}

// A traced reconfig-thrash run must export valid Chrome-trace JSON
// containing at least one complete causal span chain — client hypercall
// span, PCAP download start, completion IRQ — stitched by one flow id
// across both cores (clients live on core 0, the manager on core 1).
func TestReconfigTraceCausalChain(t *testing.T) {
	spec, ok := FindSpec("reconfig-thrash", true)
	if !ok {
		t.Fatal("reconfig-thrash spec missing")
	}
	spec.Trace = true
	spec.Shards = 2
	res := Build(spec).Run()
	if res.Trace == nil {
		t.Fatal("traced run returned no tracer")
	}
	raw, err := res.Trace.ChromeJSON()
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Collect, per flow id, which chain stages appeared and on which cores.
	type chain struct {
		hwreq, pcap, irq bool
		tids             map[int]bool
	}
	chains := map[float64]*chain{}
	for _, e := range doc.TraceEvents {
		flow, ok := e.Args["flow"].(float64)
		if !ok {
			continue
		}
		c := chains[flow]
		if c == nil {
			c = &chain{tids: map[int]bool{}}
			chains[flow] = c
		}
		c.tids[e.TID] = true
		switch {
		case strings.HasPrefix(e.Name, "hwreq#") && e.Ph == "X":
			c.hwreq = true
		case strings.HasPrefix(e.Name, "pcap_start"):
			c.pcap = true
		case e.Name == "completion_irq":
			c.irq = true
		}
	}
	for _, c := range chains {
		if c.hwreq && c.pcap && c.irq && len(c.tids) >= 2 {
			return // found a complete cross-core chain
		}
	}
	t.Fatalf("no complete causal chain (hwreq span + pcap_start + completion_irq across >=2 cores) among %d flows\nflight recorder:\n%s",
		len(chains), res.Trace.FlightDump(48))
}
