package sched

import (
	"fmt"

	"repro/internal/simclock"
)

// New builds a policy by name — the registry declarative harnesses (the
// scenario engine, config-driven experiments) use to pick a scheduler
// from a spec string. Known names: "prio-rr" (default when name is
// empty) and "partitioned".
func New(name string, ncpu int, quantum simclock.Cycles) (Policy, error) {
	switch name {
	case "", "prio-rr":
		return NewPrioRR(ncpu, quantum), nil
	case "partitioned":
		return NewPartitioned(ncpu, quantum), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}

// PrioRR is the default policy: the paper's preemptive priority
// round-robin (§III-D, Fig. 3) generalized to per-CPU runqueues. New
// entities are homed on the least-loaded CPU their affinity mask allows
// (load = entities already homed there), which balances symmetric guests
// across cores while still honoring pinning. With one CPU it reduces
// exactly to the paper's single run queue.
type PrioRR struct {
	multiQueue
}

// NewPrioRR builds the policy for ncpu CPUs with the given default
// quantum.
func NewPrioRR(ncpu int, quantum simclock.Cycles) *PrioRR {
	return &PrioRR{multiQueue: newMultiQueue(ncpu, quantum)}
}

// Name implements Policy.
func (p *PrioRR) Name() string { return "prio-rr" }

// Place implements Policy: least-loaded CPU in the affinity mask, lowest
// CPU id breaking ties. An already-placed node keeps its home while the
// mask still allows it.
func (p *PrioRR) Place(n *Node) int {
	mask := n.Affinity.Normalize(p.NumCPUs())
	if n.cpu >= 0 && mask.Has(n.cpu) {
		return n.cpu
	}
	best := -1
	for c := 0; c < p.NumCPUs(); c++ {
		if !mask.Has(c) {
			continue
		}
		if best < 0 || p.placed[c] < p.placed[best] {
			best = c
		}
	}
	if best < 0 {
		best = 0 // unreachable after Normalize; stay total
	}
	return p.assign(n, best)
}

// Partitioned is the static-partitioning policy of mixed-criticality
// hypervisors (Bao-style): every entity is pinned to the lowest CPU of
// its affinity mask, deterministically and permanently — no balancing,
// no migration, so one partition's load can never perturb another's
// core. The paper's intended Zynq deployment (guests on CPU0, the
// Hardware Task Manager service on CPU1) is expressed as two one-bit
// masks under this policy.
type Partitioned struct {
	multiQueue
}

// NewPartitioned builds the policy for ncpu CPUs.
func NewPartitioned(ncpu int, quantum simclock.Cycles) *Partitioned {
	return &Partitioned{multiQueue: newMultiQueue(ncpu, quantum)}
}

// Name implements Policy.
func (p *Partitioned) Name() string { return "partitioned" }

// Place implements Policy: the lowest CPU the mask allows, always.
func (p *Partitioned) Place(n *Node) int {
	mask := n.Affinity.Normalize(p.NumCPUs())
	return p.assign(n, mask.First())
}
