// Package sched is Mini-NOVA's pluggable scheduling subsystem. The paper's
// §III-D scheduler — preemptive priority round-robin over double-linked
// circles per priority level — is one Policy implementation; the package
// generalizes it to N CPUs with per-CPU runqueues and CPU-affinity masks,
// the architectural pivot that static-partitioning hypervisors for Arm
// mixed-criticality systems use to host partitioned multicore workloads.
//
// The kernel talks to the subsystem exclusively through the Policy
// interface and schedules opaque Nodes; it never sees runqueue internals.
// A protection domain embeds one Node and the kernel hands that node to
// the policy, so enqueue/dequeue stay allocation-free (intrusive rings).
package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/simclock"
)

// NumPriorities bounds the priority levels a runqueue tracks (paper
// Fig. 3: idle=0, guest OSes=1, user services=2; one spare).
const NumPriorities = 4

// CPUMask is a bitmask of CPUs an entity may run on (bit i = CPU i).
// The zero value is treated as "any CPU" by Normalize.
type CPUMask uint32

// MaskAll allows every CPU.
func MaskAll() CPUMask { return ^CPUMask(0) }

// MaskOf builds a mask allowing exactly the given CPUs.
func MaskOf(cpus ...int) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether cpu is in the mask.
func (m CPUMask) Has(cpu int) bool { return m&(1<<uint(cpu)) != 0 }

// First returns the lowest CPU in the mask, or -1 when empty.
func (m CPUMask) First() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Count returns the number of CPUs in the mask.
func (m CPUMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Normalize clamps the mask to ncpu CPUs. A zero mask means "any CPU"
// and widens to all; a nonzero mask with no CPU in range is a caller bug
// (a pin that cannot be honored) and panics rather than silently placing
// the entity on a core it was supposed to be isolated from.
func (m CPUMask) Normalize(ncpu int) CPUMask {
	full := CPUMask(1)<<uint(ncpu) - 1
	if m == 0 {
		return full
	}
	if m&full == 0 {
		panic(fmt.Sprintf("sched: affinity %v names no CPU below %d", m, ncpu))
	}
	return m & full
}

func (m CPUMask) String() string { return fmt.Sprintf("cpus:%b", uint32(m)) }

// Node is one schedulable entity as the policies see it. The owner (a
// protection domain) embeds a Node and keeps Priority/Affinity current;
// everything lower-case belongs to the policy that placed the node.
type Node struct {
	// Owner is an opaque back-pointer for the kernel (the *PD).
	Owner any
	// Priority is the entity's level (higher runs first). Read at
	// Enqueue time; the node remembers the ring it joined so a later
	// priority change takes effect on the next enqueue.
	Priority int
	// Affinity restricts placement (zero = any CPU).
	Affinity CPUMask

	cpu      int // home CPU assigned by Place (-1 = unplaced)
	ringPrio int // priority ring the node currently sits on
	queued   bool
	next     *Node
	prev     *Node
}

// CPU returns the node's home CPU (-1 before Place).
func (n *Node) CPU() int { return n.cpu }

// Queued reports whether the node is on a runqueue.
func (n *Node) Queued() bool { return n.queued }

// Observer receives runqueue transitions — the hook the kernel's tracing
// layer uses to record scheduling decisions. Callbacks fire only on real
// state changes (an idempotent re-Enqueue of a queued node is silent) and
// run synchronously on whatever goroutine performed the operation, which
// under the kernel's discipline is the node's home core or the
// single-threaded epoch commit. Observers must not call back into the
// policy.
type Observer interface {
	// Enqueued fires when a node becomes runnable.
	Enqueued(n *Node)
	// Dequeued fires when a node leaves its runqueue.
	Dequeued(n *Node)
	// Rotated fires when a CPU's priority ring advances after a quantum.
	Rotated(cpu, prio int)
}

// Observable is implemented by policies that can report runqueue
// transitions (both built-in policies, via multiQueue).
type Observable interface {
	SetObserver(o Observer)
}

// Policy is the scheduler interface the kernel depends on. All methods
// are single-threaded (the platform model is one event loop).
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// NumCPUs returns the number of per-CPU runqueues.
	NumCPUs() int
	// Quantum is the default time slice handed to a freshly picked node.
	Quantum() simclock.Cycles
	// Place assigns (or re-validates) the node's home CPU from its
	// affinity mask and returns it. Called once per node before its
	// first Enqueue; placement is stable thereafter.
	Place(n *Node) int
	// Enqueue makes the node runnable on its home CPU's queue, at the
	// tail of its priority ring. Idempotent.
	Enqueue(n *Node)
	// Dequeue removes the node from its runqueue (suspend). Idempotent.
	Dequeue(n *Node)
	// Unplace retires the node for good: dequeues it and releases its
	// home-CPU placement so dead entities stop weighing on balancing.
	Unplace(n *Node)
	// Pick returns the node to run next on cpu, or nil when the CPU's
	// queue is empty. Pick does not dequeue.
	Pick(cpu int) *Node
	// Rotate advances cpu's ring at the given priority after its head
	// exhausted a quantum.
	Rotate(cpu, prio int)
	// Queued reports whether the node is currently runnable.
	Queued(n *Node) bool
}

// runqueue is one CPU's priority rings — the §III-D run-queue structure,
// now instantiated per CPU.
type runqueue struct {
	rings [NumPriorities]*Node // head of each priority circle (nil = empty)
}

func (q *runqueue) enqueue(n *Node) {
	if n.queued {
		return
	}
	n.queued = true
	n.ringPrio = clampPrio(n.Priority)
	head := q.rings[n.ringPrio]
	if head == nil {
		n.next, n.prev = n, n
		q.rings[n.ringPrio] = n
		return
	}
	tail := head.prev
	tail.next, n.prev = n, tail
	n.next, head.prev = head, n
}

func (q *runqueue) dequeue(n *Node) {
	if !n.queued {
		return
	}
	n.queued = false
	if n.next == n {
		q.rings[n.ringPrio] = nil
	} else {
		n.prev.next = n.next
		n.next.prev = n.prev
		if q.rings[n.ringPrio] == n {
			q.rings[n.ringPrio] = n.next
		}
	}
	n.next, n.prev = nil, nil
}

// pick returns the head of the highest non-empty priority circle.
func (q *runqueue) pick() *Node {
	for p := NumPriorities - 1; p >= 0; p-- {
		if q.rings[p] != nil {
			return q.rings[p]
		}
	}
	return nil
}

func (q *runqueue) rotate(prio int) {
	prio = clampPrio(prio)
	if q.rings[prio] != nil {
		q.rings[prio] = q.rings[prio].next
	}
}

// ringLen counts the nodes at one priority level (tests, load metrics).
func (q *runqueue) ringLen(prio int) int {
	head := q.rings[clampPrio(prio)]
	if head == nil {
		return 0
	}
	n, p := 1, head.next
	for p != head {
		n++
		p = p.next
	}
	return n
}

func (q *runqueue) len() int {
	total := 0
	for p := 0; p < NumPriorities; p++ {
		total += q.ringLen(p)
	}
	return total
}

func clampPrio(p int) int {
	if p < 0 {
		return 0
	}
	if p >= NumPriorities {
		return NumPriorities - 1
	}
	return p
}

// multiQueue is the shared core of the built-in policies: one runqueue
// per CPU plus the bookkeeping both placement strategies need.
type multiQueue struct {
	queues  []runqueue
	placed  []int // entities homed on each CPU (placement load)
	quantum simclock.Cycles
	obs     Observer
}

func newMultiQueue(ncpu int, quantum simclock.Cycles) multiQueue {
	if ncpu < 1 {
		panic("sched: need at least one CPU")
	}
	return multiQueue{
		queues:  make([]runqueue, ncpu),
		placed:  make([]int, ncpu),
		quantum: quantum,
	}
}

func (m *multiQueue) NumCPUs() int             { return len(m.queues) }
func (m *multiQueue) Quantum() simclock.Cycles { return m.quantum }
func (m *multiQueue) Queued(n *Node) bool      { return n.queued }

// SetObserver implements Observable.
func (m *multiQueue) SetObserver(o Observer) { m.obs = o }

func (m *multiQueue) Rotate(cpu, prio int) {
	m.queues[cpu].rotate(prio)
	if m.obs != nil {
		m.obs.Rotated(cpu, prio)
	}
}

func (m *multiQueue) Dequeue(n *Node) {
	was := n.queued
	m.queues[m.homeOf(n)].dequeue(n)
	if was && !n.queued && m.obs != nil {
		m.obs.Dequeued(n)
	}
}

func (m *multiQueue) Enqueue(n *Node) {
	was := n.queued
	m.queues[m.homeOf(n)].enqueue(n)
	if !was && n.queued && m.obs != nil {
		m.obs.Enqueued(n)
	}
}

// Unplace implements Policy: the node leaves its runqueue and its home
// CPU's placement count, so future Place calls no longer balance against
// a retired entity.
func (m *multiQueue) Unplace(n *Node) {
	m.Dequeue(n)
	if n.cpu >= 0 && n.cpu < len(m.placed) {
		m.placed[n.cpu]--
	}
	n.cpu = -1
}

func (m *multiQueue) Pick(cpu int) *Node { return m.queues[cpu].pick() }

// RingLen counts runnable nodes at one priority level on one CPU.
func (m *multiQueue) RingLen(cpu, prio int) int { return m.queues[cpu].ringLen(prio) }

// QueueLen counts all runnable nodes on one CPU.
func (m *multiQueue) QueueLen(cpu int) int { return m.queues[cpu].len() }

// homeOf returns the node's home CPU, defaulting an unplaced node to 0
// (a policy's Place should have run first; this keeps Dequeue total).
func (m *multiQueue) homeOf(n *Node) int {
	if n.cpu < 0 || n.cpu >= len(m.queues) {
		return 0
	}
	return n.cpu
}

func (m *multiQueue) assign(n *Node, cpu int) int {
	if n.cpu >= 0 && n.cpu < len(m.placed) && n.cpu != cpu {
		m.placed[n.cpu]--
	}
	if n.cpu != cpu {
		m.placed[cpu]++
	}
	n.cpu = cpu
	return cpu
}

// NewNode initializes a Node for an owner (home CPU unassigned).
func NewNode(owner any, prio int, affinity CPUMask) Node {
	return Node{Owner: owner, Priority: prio, Affinity: affinity, cpu: -1}
}
