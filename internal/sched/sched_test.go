package sched

import "testing"

// ent is a minimal schedulable owner for tests.
type ent struct {
	id   int
	node Node
}

func mkEnt(id, prio int, mask CPUMask) *ent {
	e := &ent{id: id}
	e.node = NewNode(e, prio, mask)
	return e
}

func place(t *testing.T, p Policy, e *ent) {
	t.Helper()
	p.Place(&e.node)
}

func pickID(p Policy, cpu int) int {
	n := p.Pick(cpu)
	if n == nil {
		return -1
	}
	return n.Owner.(*ent).id
}

const (
	prioGuest   = 1
	prioService = 2
)

func TestPickHighestPriority(t *testing.T) {
	s := NewPrioRR(1, 1000)
	low := mkEnt(0, prioGuest, 0)
	high := mkEnt(1, prioService, 0)
	for _, e := range []*ent{low, high} {
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	if got := pickID(s, 0); got != 1 {
		t.Errorf("Pick = ent%d, want the service-priority entity", got)
	}
	s.Dequeue(&high.node)
	if got := pickID(s, 0); got != 0 {
		t.Error("Pick did not fall back to lower priority")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	s := NewPrioRR(1, 1000)
	for i := 0; i < 3; i++ {
		e := mkEnt(i, prioGuest, 0)
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	// Rotation must cycle 0 -> 1 -> 2 -> 0.
	for round := 0; round < 6; round++ {
		if got := pickID(s, 0); got != round%3 {
			t.Fatalf("round %d: Pick = ent%d, want ent%d", round, got, round%3)
		}
		s.Rotate(0, prioGuest)
	}
}

func TestDequeueMidRing(t *testing.T) {
	s := NewPrioRR(1, 1000)
	var ents []*ent
	for i := 0; i < 4; i++ {
		e := mkEnt(i, prioGuest, 0)
		ents = append(ents, e)
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	s.Dequeue(&ents[1].node)
	s.Dequeue(&ents[3].node)
	if n := s.RingLen(0, prioGuest); n != 2 {
		t.Fatalf("ring len = %d, want 2", n)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		seen[pickID(s, 0)] = true
		s.Rotate(0, prioGuest)
	}
	if !seen[0] || !seen[2] {
		t.Errorf("remaining ring = %v, want {0,2}", seen)
	}
}

func TestDequeueHeadAdjusts(t *testing.T) {
	s := NewPrioRR(1, 1000)
	a, b := mkEnt(0, prioGuest, 0), mkEnt(1, prioGuest, 0)
	for _, e := range []*ent{a, b} {
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	s.Dequeue(&a.node) // removing the head must promote b
	if got := pickID(s, 0); got != 1 {
		t.Error("head removal did not promote the next entity")
	}
	s.Dequeue(&b.node)
	if s.Pick(0) != nil {
		t.Error("empty runqueue still picks")
	}
}

func TestDoubleEnqueueIdempotent(t *testing.T) {
	s := NewPrioRR(1, 1000)
	a := mkEnt(0, prioGuest, 0)
	place(t, s, a)
	s.Enqueue(&a.node)
	s.Enqueue(&a.node)
	if n := s.RingLen(0, prioGuest); n != 1 {
		t.Errorf("double enqueue produced ring of %d", n)
	}
	s.Dequeue(&a.node)
	s.Dequeue(&a.node) // and double dequeue is harmless
	if s.Pick(0) != nil {
		t.Error("entity still schedulable after dequeue")
	}
}

func TestEnqueuePreservesRRWindow(t *testing.T) {
	// A re-enqueued entity goes to the tail: the current head keeps its
	// turn.
	s := NewPrioRR(1, 1000)
	a, b, c := mkEnt(0, prioGuest, 0), mkEnt(1, prioGuest, 0), mkEnt(2, prioGuest, 0)
	for _, e := range []*ent{a, b} {
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	s.Dequeue(&a.node)
	place(t, s, c)
	s.Enqueue(&c.node)
	s.Enqueue(&a.node) // back at the tail, after c
	order := []int{}
	for i := 0; i < 3; i++ {
		order = append(order, pickID(s, 0))
		s.Rotate(0, prioGuest)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityChangeTakesEffectOnReenqueue(t *testing.T) {
	s := NewPrioRR(1, 1000)
	a, b := mkEnt(0, prioGuest, 0), mkEnt(1, prioGuest, 0)
	for _, e := range []*ent{a, b} {
		place(t, s, e)
		s.Enqueue(&e.node)
	}
	s.Dequeue(&b.node)
	b.node.Priority = prioService // promoted while suspended
	s.Enqueue(&b.node)
	if got := pickID(s, 0); got != 1 {
		t.Errorf("Pick = ent%d, want the promoted entity", got)
	}
	s.Dequeue(&b.node) // dequeue must come off the ring it joined
	if got := pickID(s, 0); got != 0 {
		t.Error("demotion bookkeeping broken: original guest lost")
	}
}

// --- multi-CPU behavior ---------------------------------------------------

func TestPrioRRBalancesPlacement(t *testing.T) {
	s := NewPrioRR(2, 1000)
	homes := map[int]int{}
	for i := 0; i < 4; i++ {
		e := mkEnt(i, prioGuest, 0) // any CPU
		homes[s.Place(&e.node)]++
		s.Enqueue(&e.node)
	}
	if homes[0] != 2 || homes[1] != 2 {
		t.Errorf("placement = %v, want 2 per CPU", homes)
	}
	if s.QueueLen(0) != 2 || s.QueueLen(1) != 2 {
		t.Errorf("queue lens = %d/%d, want 2/2", s.QueueLen(0), s.QueueLen(1))
	}
}

func TestPrioRRHonorsAffinity(t *testing.T) {
	s := NewPrioRR(2, 1000)
	// Load CPU1 with pinned entities, then place a free one: it must go
	// to CPU0 (least loaded), and a CPU1-pinned one must stay on CPU1.
	for i := 0; i < 3; i++ {
		e := mkEnt(i, prioGuest, MaskOf(1))
		if got := s.Place(&e.node); got != 1 {
			t.Fatalf("pinned entity placed on CPU%d", got)
		}
		s.Enqueue(&e.node)
	}
	free := mkEnt(9, prioGuest, 0)
	if got := s.Place(&free.node); got != 0 {
		t.Errorf("free entity placed on CPU%d, want 0 (least loaded)", got)
	}
	pinned := mkEnt(10, prioGuest, MaskOf(1))
	if got := s.Place(&pinned.node); got != 1 {
		t.Errorf("pinned entity placed on CPU%d, want 1", got)
	}
}

func TestPlacementStable(t *testing.T) {
	s := NewPrioRR(2, 1000)
	a := mkEnt(0, prioGuest, 0)
	first := s.Place(&a.node)
	// More load lands on the other CPU; re-placing must not migrate.
	for i := 1; i < 4; i++ {
		e := mkEnt(i, prioGuest, 0)
		s.Place(&e.node)
	}
	if again := s.Place(&a.node); again != first {
		t.Errorf("re-Place moved home %d -> %d", first, again)
	}
}

func TestPartitionedPinsLowestMaskBit(t *testing.T) {
	s := NewPartitioned(2, 1000)
	svc := mkEnt(0, prioService, MaskOf(1))
	if got := s.Place(&svc.node); got != 1 {
		t.Fatalf("service placed on CPU%d, want 1", got)
	}
	s.Enqueue(&svc.node)
	for i := 1; i < 4; i++ {
		g := mkEnt(i, prioGuest, MaskOf(0))
		if got := s.Place(&g.node); got != 0 {
			t.Fatalf("guest placed on CPU%d, want 0", got)
		}
		s.Enqueue(&g.node)
	}
	// Per-CPU picks are independent: CPU1 sees only the service even
	// though CPU0's guests are lower priority.
	if got := pickID(s, 1); got != 0 {
		t.Errorf("CPU1 pick = ent%d, want the pinned service", got)
	}
	if got := pickID(s, 0); got == 0 {
		t.Error("CPU0 picked the CPU1-pinned service")
	}
	multi := mkEnt(9, prioGuest, MaskOf(0, 1))
	if got := s.Place(&multi.node); got != 0 {
		t.Errorf("multi-bit mask placed on CPU%d, want lowest bit 0", got)
	}
}

func TestCPUMaskHelpers(t *testing.T) {
	m := MaskOf(0, 2)
	if !m.Has(0) || m.Has(1) || !m.Has(2) {
		t.Errorf("MaskOf(0,2) membership wrong: %v", m)
	}
	if m.First() != 0 || m.Count() != 2 {
		t.Errorf("First/Count = %d/%d, want 0/2", m.First(), m.Count())
	}
	if CPUMask(0).First() != -1 {
		t.Error("empty mask First should be -1")
	}
	if got := CPUMask(0).Normalize(2); got != MaskOf(0, 1) {
		t.Errorf("zero mask normalize = %v, want both CPUs", got)
	}
	if got := MaskOf(1, 3).Normalize(2); got != MaskOf(1) {
		t.Errorf("mixed mask normalize = %v, want out-of-range bits dropped", got)
	}
	// A nonzero mask with only out-of-range bits is an unhonorable pin:
	// it must panic, not silently float the entity onto other cores.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsatisfiable mask did not panic")
			}
		}()
		MaskOf(5).Normalize(2)
	}()
}

func TestUnplaceReleasesPlacement(t *testing.T) {
	s := NewPrioRR(2, 1000)
	a, b := mkEnt(0, prioGuest, 0), mkEnt(1, prioGuest, 0)
	s.Place(&a.node)
	s.Place(&b.node) // one entity per CPU
	s.Enqueue(&a.node)
	home := a.node.CPU()
	s.Unplace(&a.node)
	if a.node.Queued() || a.node.CPU() != -1 {
		t.Error("Unplace left the node placed or queued")
	}
	// The freed CPU must be the least-loaded target again.
	c := mkEnt(2, prioGuest, 0)
	if got := s.Place(&c.node); got != home {
		t.Errorf("new entity placed on CPU%d, want freed CPU%d", got, home)
	}
}

func TestQuantumExposed(t *testing.T) {
	if q := NewPrioRR(1, 12345).Quantum(); q != 12345 {
		t.Errorf("Quantum = %d, want 12345", q)
	}
	if NewPartitioned(2, 7).Name() == NewPrioRR(2, 7).Name() {
		t.Error("policies should be distinguishable by name")
	}
}
