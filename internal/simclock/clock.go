// Package simclock provides the simulated cycle clock that every other
// component of the Zynq-7000 platform model is driven by.
//
// The paper's measurements are taken on a 660 MHz ARM Cortex-A9, so the
// canonical conversion used throughout this repository is
// 660 cycles == 1 µs. All latencies reported by the experiment harness are
// derived from cycle counts through this package, never from wall-clock time,
// which makes every run bit-for-bit deterministic.
package simclock

import (
	"container/heap"
	"fmt"
)

// FrequencyHz is the clock rate of the modelled Cortex-A9 core
// (Zynq-7000 at 660 MHz, as in the paper's evaluation platform).
const FrequencyHz = 660_000_000

// CyclesPerMicrosecond is the number of core cycles in one microsecond.
const CyclesPerMicrosecond = FrequencyHz / 1_000_000

// Cycles is a duration or instant measured in CPU core cycles.
type Cycles uint64

// Micros converts a cycle count to microseconds as a float.
func (c Cycles) Micros() float64 {
	return float64(c) / float64(CyclesPerMicrosecond)
}

// Millis converts a cycle count to milliseconds as a float.
func (c Cycles) Millis() float64 {
	return c.Micros() / 1000
}

// String renders the count in a human-readable form.
func (c Cycles) String() string {
	return fmt.Sprintf("%dcyc (%.3fus)", uint64(c), c.Micros())
}

// FromMicros converts microseconds to cycles, rounding down.
func FromMicros(us float64) Cycles {
	return Cycles(us * float64(CyclesPerMicrosecond))
}

// FromMillis converts milliseconds to cycles, rounding down.
func FromMillis(ms float64) Cycles {
	return FromMicros(ms * 1000)
}

// Event is a callback scheduled to fire at an absolute instant.
type Event struct {
	When Cycles
	Fire func(now Cycles)

	seq   uint64 // tiebreaker: FIFO among equal deadlines
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// noDeadline is the cached-deadline sentinel for an empty event queue.
const noDeadline = ^Cycles(0)

// Clock is the global simulated time source plus a deadline queue.
// It is not safe for concurrent use; the platform model is single-threaded
// by design (one simulated core, as in the paper's evaluation, which pins
// everything to CPU0).
type Clock struct {
	now    Cycles
	events eventHeap
	seq    uint64
	// next caches events[0].When (noDeadline when empty) so the common
	// no-event Advance is a single compare+add; the heap is consulted only
	// when the cached deadline is crossed. Every heap mutation refreshes it.
	next Cycles
}

// New returns a clock at cycle zero with an empty event queue.
func New() *Clock {
	return &Clock{next: noDeadline}
}

// syncNext refreshes the cached earliest deadline after a heap mutation.
func (c *Clock) syncNext() {
	if len(c.events) == 0 {
		c.next = noDeadline
	} else {
		c.next = c.events[0].When
	}
}

// Now returns the current simulated instant.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves time forward by d cycles, firing any events whose deadline
// is passed, in deadline order. Events fire with the clock set exactly to
// their deadline, so a handler observing Now() sees its own firing time.
//
// Advance is reentrant: an event handler may itself call Advance (an
// interrupt handler charging execution cycles, for instance). Time never
// moves backward — if a handler advanced past this call's target, the
// clock stays at the later instant.
func (c *Clock) Advance(d Cycles) {
	target := c.now + d
	if target < c.next {
		// Fast path: no pending event inside the window — a compare+add.
		c.now = target
		return
	}
	c.advanceSlow(target)
}

func (c *Clock) advanceSlow(target Cycles) {
	for len(c.events) > 0 && c.events[0].When <= target {
		e := heap.Pop(&c.events).(*Event)
		c.syncNext()
		if e.When > c.now {
			c.now = e.When
		}
		e.Fire(c.now)
	}
	if target > c.now {
		c.now = target
	}
}

// AdvanceTo moves time forward to the absolute instant t (no-op if t is in
// the past).
func (c *Clock) AdvanceTo(t Cycles) {
	if t > c.now {
		c.Advance(t - c.now)
	}
}

// After schedules fire to run d cycles from now and returns the event so the
// caller may cancel it.
func (c *Clock) After(d Cycles, fire func(now Cycles)) *Event {
	return c.At(c.now+d, fire)
}

// At schedules fire at the absolute instant when. If when is in the past the
// event fires on the next Advance of any size (including Advance(0)).
func (c *Clock) At(when Cycles, fire func(now Cycles)) *Event {
	if when < c.now {
		when = c.now
	}
	e := &Event{When: when, Fire: fire, seq: c.seq}
	c.seq++
	heap.Push(&c.events, e)
	c.syncNext()
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled event is a harmless no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&c.events, e.index)
	e.index = -2
	c.syncNext()
}

// NextDeadline returns the earliest pending event time and true, or 0 and
// false when the queue is empty.
func (c *Clock) NextDeadline() (Cycles, bool) {
	if c.next == noDeadline {
		return 0, false
	}
	return c.next, true
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int { return len(c.events) }

// RunUntilIdle advances the clock through every pending event (including
// events scheduled by event handlers) and stops at the last deadline.
// It returns the number of events fired. The limit guards against handlers
// that reschedule themselves forever; RunUntilIdle panics if exceeded.
func (c *Clock) RunUntilIdle(limit int) int {
	fired := 0
	for len(c.events) > 0 {
		if fired >= limit {
			panic(fmt.Sprintf("simclock: RunUntilIdle exceeded %d events", limit))
		}
		next := c.events[0].When
		c.AdvanceTo(next)
		// AdvanceTo fires everything at == next.
		fired++
	}
	return fired
}
