package simclock

import (
	"testing"
	"testing/quick"
)

func TestConversionRoundTrip(t *testing.T) {
	if CyclesPerMicrosecond != 660 {
		t.Fatalf("expected 660 cycles/us for a 660MHz A9, got %d", CyclesPerMicrosecond)
	}
	if got := FromMicros(1).Micros(); got != 1 {
		t.Errorf("FromMicros(1).Micros() = %v, want 1", got)
	}
	if got := FromMillis(33); got != 33*1000*660 {
		t.Errorf("FromMillis(33) = %d cycles, want %d", got, 33*1000*660)
	}
}

func TestAdvanceFiresInOrder(t *testing.T) {
	c := New()
	var order []int
	c.After(30, func(Cycles) { order = append(order, 3) })
	c.After(10, func(Cycles) { order = append(order, 1) })
	c.After(20, func(Cycles) { order = append(order, 2) })
	c.Advance(25)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("after Advance(25): order = %v, want [1 2]", order)
	}
	c.Advance(10)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("after Advance(10): order = %v, want [1 2 3]", order)
	}
}

func TestEventSeesOwnDeadline(t *testing.T) {
	c := New()
	var seen Cycles
	c.After(42, func(now Cycles) { seen = now })
	c.Advance(100)
	if seen != 42 {
		t.Errorf("handler saw now=%d, want 42", seen)
	}
	if c.Now() != 100 {
		t.Errorf("clock at %d after Advance(100), want 100", c.Now())
	}
}

func TestFIFOAmongEqualDeadlines(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(5, func(Cycles) { order = append(order, i) })
	}
	c.Advance(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among equal deadlines)", i, v, i)
		}
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	e := c.After(10, func(Cycles) { fired = true })
	c.Cancel(e)
	c.Advance(20)
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	c.Cancel(e) // double-cancel must be harmless
}

func TestPastDeadlineClamped(t *testing.T) {
	c := New()
	c.Advance(100)
	fired := Cycles(0)
	c.At(50, func(now Cycles) { fired = now })
	c.Advance(0)
	if fired != 100 {
		t.Errorf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestHandlerScheduling(t *testing.T) {
	c := New()
	count := 0
	var tick func(now Cycles)
	tick = func(now Cycles) {
		count++
		if count < 5 {
			c.After(10, tick)
		}
	}
	c.After(10, tick)
	c.RunUntilIdle(100)
	if count != 5 {
		t.Errorf("chained ticks = %d, want 5", count)
	}
	if c.Now() != 50 {
		t.Errorf("clock at %d after 5 ticks, want 50", c.Now())
	}
}

func TestReentrantAdvance(t *testing.T) {
	c := New()
	var later bool
	c.After(10, func(Cycles) {
		// Handler does costed work, advancing past this Advance's target.
		c.Advance(100)
	})
	c.After(50, func(Cycles) { later = true })
	c.Advance(20)
	if c.Now() != 110 {
		t.Errorf("clock at %d, want 110 (handler advanced past target)", c.Now())
	}
	if !later {
		t.Error("event due during nested advance did not fire")
	}
	// Time must never move backward.
	c.Advance(1)
	if c.Now() != 111 {
		t.Errorf("clock at %d, want 111", c.Now())
	}
}

func TestRunUntilIdleLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when exceeding event limit")
		}
	}()
	c := New()
	var forever func(now Cycles)
	forever = func(Cycles) { c.After(1, forever) }
	c.After(1, forever)
	c.RunUntilIdle(10)
}

func TestNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Error("empty clock reported a deadline")
	}
	c.After(7, func(Cycles) {})
	if d, ok := c.NextDeadline(); !ok || d != 7 {
		t.Errorf("NextDeadline = %d,%v want 7,true", d, ok)
	}
}

// The cached next-deadline fast path must stay coherent through every heap
// mutation: schedule, fire, cancel, and handler-scheduled events.
func TestCachedDeadlineCoherence(t *testing.T) {
	c := New()
	// Fast advances with an empty queue.
	c.Advance(10)
	c.Advance(10)
	var order []int
	e1 := c.After(100, func(Cycles) { order = append(order, 1) })
	c.After(50, func(Cycles) {
		order = append(order, 2)
		// Handler schedules a nearer event; the cache must pick it up.
		c.After(5, func(Cycles) { order = append(order, 3) })
	})
	c.Advance(30) // 20 -> 50: nothing fires, fast path must stop short of 70
	if len(order) != 0 {
		t.Fatalf("events fired early: %v", order)
	}
	if d, ok := c.NextDeadline(); !ok || d != 70 {
		t.Fatalf("NextDeadline = %d,%v want 70,true", d, ok)
	}
	c.Advance(26) // crosses 70 and the handler-scheduled 75
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("order = %v, want [2 3]", order)
	}
	c.Cancel(e1)
	if _, ok := c.NextDeadline(); ok {
		t.Error("cancelled last event but a deadline is still cached")
	}
	c.Advance(1000)
	if len(order) != 2 {
		t.Errorf("cancelled event fired: %v", order)
	}
}

// Property: advancing in any chunking reaches the same instant and fires the
// same number of events.
func TestPropertyChunkedAdvanceEquivalent(t *testing.T) {
	f := func(deadlines []uint16, chunks []uint8) bool {
		if len(deadlines) > 50 {
			deadlines = deadlines[:50]
		}
		run := func(split bool) (Cycles, int) {
			c := New()
			fired := 0
			for _, d := range deadlines {
				c.After(Cycles(d), func(Cycles) { fired++ })
			}
			total := Cycles(70000)
			if split {
				var done Cycles
				for _, ch := range chunks {
					step := Cycles(ch)
					if done+step > total {
						step = total - done
					}
					c.Advance(step)
					done += step
				}
				c.Advance(total - done)
			} else {
				c.Advance(total)
			}
			return c.Now(), fired
		}
		n1, f1 := run(false)
		n2, f2 := run(true)
		return n1 == n2 && f1 == f2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
