package simclock

import "sort"

// This file splits the single simulated clock into a sharded clock: a set
// of per-shard cycle cursors (plain *Clock instances that advance
// independently between synchronization points) plus a global epoch
// committer that carries cross-shard effects. A shard never mutates
// another shard's state directly; it posts a closure stamped with its own
// local cycle instant, and the committer fires every posted closure at the
// next epoch barrier in (cycle, shard, sequence) order. The merge order is
// a pure function of simulated time, so the observable schedule is
// independent of how the shards' host goroutines interleave — the property
// the epoch-barrier parallel run loop is built on.

// ShardedClock is n per-shard clocks plus the committer that orders their
// cross-shard traffic at epoch barriers.
type ShardedClock struct {
	Shards    []*Clock
	Committer *Committer
}

// NewSharded builds a sharded clock with n independent cursors.
func NewSharded(n int) *ShardedClock {
	s := &ShardedClock{Committer: NewCommitter(n)}
	for i := 0; i < n; i++ {
		s.Shards = append(s.Shards, New())
	}
	return s
}

// commitEntry is one deferred cross-shard effect.
type commitEntry struct {
	when  Cycles
	shard int
	seq   uint64
	fn    func()
}

// commitBuf is one shard's append-only log for the current epoch. The pad
// keeps logs on separate cache lines so concurrent appends don't false-share.
type commitBuf struct {
	entries []commitEntry
	seq     uint64
	_       [40]byte
}

// Committer collects cross-shard effects during an epoch and replays them
// at the barrier. Post is safe to call concurrently from different shards
// (each shard owns its buffer); Commit must only run while every shard is
// parked at the barrier.
type Committer struct {
	bufs    []commitBuf
	merged  []commitEntry // reused scratch for the barrier merge
	Commits uint64        // closures fired (observability; not checksummed)
}

// NewCommitter sizes the committer for n shards.
func NewCommitter(n int) *Committer {
	return &Committer{bufs: make([]commitBuf, n)}
}

// Post appends a deferred effect from shard at local instant when. The
// per-shard sequence number keeps same-instant posts from one shard in
// program order.
func (cm *Committer) Post(shard int, when Cycles, fn func()) {
	b := &cm.bufs[shard]
	b.entries = append(b.entries, commitEntry{when: when, shard: shard, seq: b.seq, fn: fn})
	b.seq++
}

// Pending reports whether any shard posted effects this epoch.
func (cm *Committer) Pending() bool {
	for i := range cm.bufs {
		if len(cm.bufs[i].entries) > 0 {
			return true
		}
	}
	return false
}

// Commit merges every shard's log in (when, shard, seq) order and fires
// the closures. A closure may itself Post follow-up effects; those land in
// the next epoch's logs unless the caller drains again. Returns the number
// of closures fired.
func (cm *Committer) Commit() int {
	cm.merged = cm.merged[:0]
	for i := range cm.bufs {
		cm.merged = append(cm.merged, cm.bufs[i].entries...)
		cm.bufs[i].entries = cm.bufs[i].entries[:0]
	}
	if len(cm.merged) == 0 {
		return 0
	}
	sort.Slice(cm.merged, func(i, j int) bool {
		a, b := cm.merged[i], cm.merged[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	for i := range cm.merged {
		cm.merged[i].fn()
	}
	n := len(cm.merged)
	cm.Commits += uint64(n)
	return n
}
