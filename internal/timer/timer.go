// Package timer models the Cortex-A9 MPCore private timer that Mini-NOVA
// uses both for its own scheduling quantum and as the backing source for
// guest virtual timers (paper §III-A, §V-A: "the guest timer is implemented
// by a virtual timer allocated by Mini-NOVA").
package timer

import (
	"repro/internal/gic"
	"repro/internal/simclock"
)

// PrivateTimer is a down-counting timer with auto-reload that raises
// gic.PrivateTimerIRQ on expiry. The A9 private timer ticks at CPU/2; for
// model simplicity it is programmed directly in core cycles. Each core of
// an MPCore has its own private timer raising the banked PPI on its own
// GIC CPU interface.
type PrivateTimer struct {
	clock *simclock.Clock
	gic   *gic.GIC
	cpu   int // GIC CPU interface the expiry PPI is banked on

	interval simclock.Cycles
	oneShot  bool
	running  bool
	event    *simclock.Event

	Expiries uint64
}

// New wires CPU0's private timer to the clock and interrupt controller.
func New(c *simclock.Clock, g *gic.GIC) *PrivateTimer {
	return NewFor(c, g, 0)
}

// NewFor wires the private timer of one core of an MPCore: expiries raise
// the private-timer PPI on that core's GIC CPU interface.
func NewFor(c *simclock.Clock, g *gic.GIC, cpu int) *PrivateTimer {
	return &PrivateTimer{clock: c, gic: g, cpu: cpu}
}

// Start programs the timer to fire every interval cycles (auto-reload) or
// once (oneShot). Restarting a running timer reprograms it.
func (t *PrivateTimer) Start(interval simclock.Cycles, oneShot bool) {
	t.Stop()
	t.interval = interval
	t.oneShot = oneShot
	t.running = true
	t.arm()
}

func (t *PrivateTimer) arm() {
	t.event = t.clock.After(t.interval, t.expire)
}

func (t *PrivateTimer) expire(simclock.Cycles) {
	t.Expiries++
	t.gic.RaiseOn(t.cpu, gic.PrivateTimerIRQ)
	if t.oneShot {
		t.running = false
		return
	}
	t.arm()
}

// Stop cancels the timer.
func (t *PrivateTimer) Stop() {
	if t.event != nil {
		t.clock.Cancel(t.event)
		t.event = nil
	}
	t.running = false
}

// Running reports whether the timer is armed.
func (t *PrivateTimer) Running() bool { return t.running }

// Remaining returns cycles until the next expiry (0 when stopped).
func (t *PrivateTimer) Remaining() simclock.Cycles {
	if !t.running || t.event == nil || t.event.Cancelled() {
		return 0
	}
	if t.event.When <= t.clock.Now() {
		return 0
	}
	return t.event.When - t.clock.Now()
}
