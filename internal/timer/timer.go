// Package timer models the Cortex-A9 MPCore private timer that Mini-NOVA
// uses both for its own scheduling quantum and as the backing source for
// guest virtual timers (paper §III-A, §V-A: "the guest timer is implemented
// by a virtual timer allocated by Mini-NOVA").
package timer

import (
	"repro/internal/gic"
	"repro/internal/simclock"
)

// PrivateTimer is a down-counting timer with auto-reload that raises
// gic.PrivateTimerIRQ on expiry. The A9 private timer ticks at CPU/2; for
// model simplicity it is programmed directly in core cycles.
type PrivateTimer struct {
	clock *simclock.Clock
	gic   *gic.GIC

	interval simclock.Cycles
	oneShot  bool
	running  bool
	event    *simclock.Event

	Expiries uint64
}

// New wires a private timer to the clock and interrupt controller.
func New(c *simclock.Clock, g *gic.GIC) *PrivateTimer {
	return &PrivateTimer{clock: c, gic: g}
}

// Start programs the timer to fire every interval cycles (auto-reload) or
// once (oneShot). Restarting a running timer reprograms it.
func (t *PrivateTimer) Start(interval simclock.Cycles, oneShot bool) {
	t.Stop()
	t.interval = interval
	t.oneShot = oneShot
	t.running = true
	t.arm()
}

func (t *PrivateTimer) arm() {
	t.event = t.clock.After(t.interval, t.expire)
}

func (t *PrivateTimer) expire(simclock.Cycles) {
	t.Expiries++
	t.gic.Raise(gic.PrivateTimerIRQ)
	if t.oneShot {
		t.running = false
		return
	}
	t.arm()
}

// Stop cancels the timer.
func (t *PrivateTimer) Stop() {
	if t.event != nil {
		t.clock.Cancel(t.event)
		t.event = nil
	}
	t.running = false
}

// Running reports whether the timer is armed.
func (t *PrivateTimer) Running() bool { return t.running }

// Remaining returns cycles until the next expiry (0 when stopped).
func (t *PrivateTimer) Remaining() simclock.Cycles {
	if !t.running || t.event == nil || t.event.Cancelled() {
		return 0
	}
	if t.event.When <= t.clock.Now() {
		return 0
	}
	return t.event.When - t.clock.Now()
}
