package timer

import (
	"testing"

	"repro/internal/gic"
	"repro/internal/simclock"
)

func rig() (*simclock.Clock, *gic.GIC, *PrivateTimer) {
	c := simclock.New()
	g := gic.New()
	g.Enable(gic.PrivateTimerIRQ)
	return c, g, New(c, g)
}

func TestPeriodicExpiry(t *testing.T) {
	c, g, tm := rig()
	tm.Start(100, false)
	c.Advance(350)
	if tm.Expiries != 3 {
		t.Errorf("Expiries = %d after 350 cycles @100, want 3", tm.Expiries)
	}
	if !g.IsPending(gic.PrivateTimerIRQ) {
		t.Error("timer IRQ not pending")
	}
}

func TestOneShot(t *testing.T) {
	c, _, tm := rig()
	tm.Start(50, true)
	c.Advance(500)
	if tm.Expiries != 1 {
		t.Errorf("one-shot fired %d times", tm.Expiries)
	}
	if tm.Running() {
		t.Error("one-shot still running")
	}
}

func TestStopCancels(t *testing.T) {
	c, _, tm := rig()
	tm.Start(100, false)
	c.Advance(50)
	tm.Stop()
	c.Advance(500)
	if tm.Expiries != 0 {
		t.Errorf("stopped timer fired %d times", tm.Expiries)
	}
}

func TestRestartReprograms(t *testing.T) {
	c, _, tm := rig()
	tm.Start(100, false)
	c.Advance(50)
	tm.Start(300, false) // reprogram before first expiry
	c.Advance(250)       // now at 300; new deadline is 50+300=350
	if tm.Expiries != 0 {
		t.Errorf("reprogrammed timer fired early (%d)", tm.Expiries)
	}
	c.Advance(100)
	if tm.Expiries != 1 {
		t.Errorf("Expiries = %d, want 1", tm.Expiries)
	}
}

func TestRemaining(t *testing.T) {
	c, _, tm := rig()
	tm.Start(100, false)
	c.Advance(30)
	if r := tm.Remaining(); r != 70 {
		t.Errorf("Remaining = %d, want 70", r)
	}
	tm.Stop()
	if r := tm.Remaining(); r != 0 {
		t.Errorf("Remaining after stop = %d, want 0", r)
	}
}
