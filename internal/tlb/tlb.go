// Package tlb models the Cortex-A9 unified main TLB with ASID tagging.
//
// Mini-NOVA relies on the address space identifier to avoid full TLB
// flushes on VM switches (paper §III-C): each VM gets a unique ASID and the
// kernel just reloads CONTEXTIDR. Entries for different ASIDs coexist, so a
// VM that runs again soon may still hit — and with many VMs the shared TLB
// gets polluted, which is one of the two mechanisms behind Table III's
// growth with VM count.
package tlb

import "repro/internal/physmem"

// Translation is the cached result of a page-table walk — everything the
// MMU needs to complete an access without re-walking.
type Translation struct {
	PFN    uint32 // physical frame number (PA >> 12)
	Domain uint8  // ARM domain (0..15) used against DACR
	AP     uint8  // access-permission bits from the descriptor
	Large  bool   // 1 MB section (true) vs 4 KB small page (false)
}

// PhysAddr reconstructs the physical address for va under this translation.
func (t Translation) PhysAddr(va uint32) physmem.Addr {
	if t.Large {
		return physmem.Addr(t.PFN<<12&0xFFF0_0000 | va&0x000F_FFFF)
	}
	return physmem.Addr(t.PFN<<12 | va&0xFFF)
}

type entry struct {
	vpn    uint32 // virtual page number (VA >> 12; sections store the 1MB-aligned VPN)
	asid   uint8
	global bool
	valid  bool
	lru    uint64
	tr     Translation
}

// Stats counts TLB events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	FlushAll    uint64
	FlushByASID uint64
}

// Accesses is total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses or 0.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// TLB is a set-associative, ASID-tagged translation cache.
// The A9 main TLB is 128-entry 2-way; that is the default geometry.
// Entries live in one contiguous backing array (set-major: set*ways+way),
// indexed by mask arithmetic; per-size-class population counts let Lookup
// reject a whole probe (small-page or section key) when no entry of that
// class exists.
type TLB struct {
	entries []entry // nsets × ways, flat
	ways    int
	setMask uint32
	stamp   uint64
	nSmall  int // valid 4 KB small-page entries
	nLarge  int // valid 1 MB section entries
	stats   Stats
}

// NewA9 returns the Cortex-A9 main TLB geometry (128 entries, 2-way).
func NewA9() *TLB { return New(128, 2) }

// New builds a TLB with the given total entries and associativity.
// entries/ways must be a power of two.
func New(entries, ways int) *TLB {
	nsets := entries / ways
	if nsets*ways != entries || nsets&(nsets-1) != 0 {
		panic("tlb: geometry must be power-of-two sets")
	}
	return &TLB{ways: ways, entries: make([]entry, entries), setMask: uint32(nsets - 1)}
}

// set returns the flat slice of ways backing vpn's set.
func (t *TLB) set(vpn uint32) []entry {
	base := int(vpn&t.setMask) * t.ways
	return t.entries[base : base+t.ways]
}

// drop invalidates *e, keeping the size-class population counts coherent.
func (t *TLB) drop(e *entry) {
	if e.valid {
		if e.tr.Large {
			t.nLarge--
		} else {
			t.nSmall--
		}
	}
	*e = entry{}
}

// key normalizes the tag VPN: section entries are tagged on their 1 MB
// frame so any VA inside the section hits the single entry.
func key(va uint32, large bool) uint32 {
	if large {
		return va >> 12 &^ 0xFF // 1MB-aligned VPN
	}
	return va >> 12
}

// Lookup searches for a translation of va under asid. Global entries match
// any ASID.
func (t *TLB) Lookup(va uint32, asid uint8) (Translation, bool) {
	// Probe both the small-page key and the section key: hardware does this
	// with per-entry size bits in one associative search. A probe whose
	// size class has no resident entries at all cannot hit and is skipped
	// outright (stats are untouched by a skipped probe: it could only have
	// missed, and miss accounting happens once below).
	if t.nSmall > 0 {
		if tr, ok := t.probe(key(va, false), false, asid); ok {
			return tr, true
		}
	}
	if t.nLarge > 0 {
		if tr, ok := t.probe(key(va, true), true, asid); ok {
			return tr, true
		}
	}
	t.stats.Misses++
	return Translation{}, false
}

func (t *TLB) probe(vpn uint32, large bool, asid uint8) (Translation, bool) {
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.tr.Large == large && (e.global || e.asid == asid) {
			t.stamp++
			e.lru = t.stamp
			t.stats.Hits++
			return e.tr, true
		}
	}
	return Translation{}, false
}

// Insert caches a walk result for va under asid. Global entries (kernel
// mappings shared by all spaces) match every ASID.
func (t *TLB) Insert(va uint32, asid uint8, global bool, tr Translation) {
	vpn := key(va, tr.Large)
	set := t.set(vpn)
	t.stamp++
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.tr.Large == tr.Large && (e.global == global) && (global || e.asid == asid) {
			victim = i // refill in place
			goto fill
		}
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		t.stats.Evictions++
	}
fill:
	t.drop(&set[victim])
	if tr.Large {
		t.nLarge++
	} else {
		t.nSmall++
	}
	set[victim] = entry{vpn: vpn, asid: asid, global: global, valid: true, lru: t.stamp, tr: tr}
}

// FlushAll invalidates every entry (TLBIALL).
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.nSmall, t.nLarge = 0, 0
	t.stats.FlushAll++
}

// FlushASID invalidates all non-global entries of one ASID (TLBIASID).
func (t *TLB) FlushASID(asid uint8) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global && e.asid == asid {
			t.drop(e)
		}
	}
	t.stats.FlushByASID++
}

// FlushVA invalidates any entry translating va for asid (TLBIMVA),
// including a covering section entry. Global entries for the page are also
// dropped, matching TLBIMVAA semantics used by the kernel on its own
// mappings.
func (t *TLB) FlushVA(va uint32, asid uint8) {
	for _, large := range [2]bool{false, true} {
		vpn := key(va, large)
		set := t.set(vpn)
		for w := range set {
			e := &set[w]
			if e.valid && e.vpn == vpn && e.tr.Large == large && (e.global || e.asid == asid) {
				t.drop(e)
			}
		}
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes counters, keeping contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Resident counts valid entries.
func (t *TLB) Resident() int { return t.nSmall + t.nLarge }

// WalkPenalty is the base cycle cost of taking a TLB miss: the walker
// issues two descriptor fetches (L1 + L2 table) whose memory cost is
// charged separately through the cache model.
const WalkPenalty = 10
