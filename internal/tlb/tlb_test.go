package tlb

import (
	"testing"
	"testing/quick"
)

func tr(pfn uint32) Translation { return Translation{PFN: pfn, Domain: 1, AP: 3} }

func TestInsertLookup(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x1000_0000, 5, false, tr(0x12345))
	got, ok := tl.Lookup(0x1000_0ABC, 5)
	if !ok {
		t.Fatal("lookup missed after insert (same page)")
	}
	if got.PFN != 0x12345 {
		t.Errorf("PFN = %#x, want 0x12345", got.PFN)
	}
	if got.PhysAddr(0x1000_0ABC) != 0x12345ABC {
		t.Errorf("PhysAddr = %#x, want 0x12345ABC", got.PhysAddr(0x1000_0ABC))
	}
}

func TestASIDIsolation(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x1000_0000, 5, false, tr(0x11111))
	if _, ok := tl.Lookup(0x1000_0000, 6); ok {
		t.Error("ASID 6 hit ASID 5's entry")
	}
	tl.Insert(0x1000_0000, 6, false, tr(0x22222))
	a, _ := tl.Lookup(0x1000_0000, 5)
	b, _ := tl.Lookup(0x1000_0000, 6)
	if a.PFN == b.PFN {
		t.Error("ASIDs 5 and 6 share a translation")
	}
}

func TestGlobalMatchesAllASIDs(t *testing.T) {
	tl := NewA9()
	tl.Insert(0xC000_0000, 0, true, tr(0x99999))
	for asid := uint8(0); asid < 8; asid++ {
		if _, ok := tl.Lookup(0xC000_0000, asid); !ok {
			t.Errorf("global entry missed under ASID %d", asid)
		}
	}
}

func TestSectionEntryCoversMegabyte(t *testing.T) {
	tl := NewA9()
	sec := Translation{PFN: 0x40000, Large: true, Domain: 0, AP: 3}
	tl.Insert(0x0010_0000, 1, false, sec)
	if _, ok := tl.Lookup(0x001F_FFFC, 1); !ok {
		t.Error("section entry did not cover its 1MB range")
	}
	if _, ok := tl.Lookup(0x0020_0000, 1); ok {
		t.Error("section entry leaked past 1MB")
	}
	got, _ := tl.Lookup(0x0012_3456, 1)
	if pa := got.PhysAddr(0x0012_3456); pa != 0x4002_3456 {
		t.Errorf("section PhysAddr = %#x, want 0x40023456", pa)
	}
}

func TestFlushASID(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x1000_0000, 5, false, tr(1))
	tl.Insert(0x2000_0000, 6, false, tr(2))
	tl.Insert(0xC000_0000, 0, true, tr(3))
	tl.FlushASID(5)
	if _, ok := tl.Lookup(0x1000_0000, 5); ok {
		t.Error("flushed ASID still hits")
	}
	if _, ok := tl.Lookup(0x2000_0000, 6); !ok {
		t.Error("FlushASID(5) removed ASID 6's entry")
	}
	if _, ok := tl.Lookup(0xC000_0000, 5); !ok {
		t.Error("FlushASID removed a global entry")
	}
}

func TestFlushVA(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x1000_0000, 5, false, tr(1))
	tl.Insert(0x1000_1000, 5, false, tr(2))
	tl.FlushVA(0x1000_0000, 5)
	if _, ok := tl.Lookup(0x1000_0000, 5); ok {
		t.Error("FlushVA left the entry")
	}
	if _, ok := tl.Lookup(0x1000_1000, 5); !ok {
		t.Error("FlushVA removed a different page")
	}
}

func TestFlushAll(t *testing.T) {
	tl := NewA9()
	for i := uint32(0); i < 50; i++ {
		tl.Insert(0x1000_0000+i<<12, uint8(i%4), i%7 == 0, tr(i))
	}
	tl.FlushAll()
	if tl.Resident() != 0 {
		t.Errorf("%d entries resident after FlushAll", tl.Resident())
	}
}

func TestEvictionLRU(t *testing.T) {
	tl := New(2, 2) // one set, two ways
	tl.Insert(0x0000_1000, 1, false, tr(1))
	tl.Insert(0x0000_2000, 1, false, tr(2))
	tl.Lookup(0x0000_1000, 1) // make entry 1 MRU
	tl.Insert(0x0000_3000, 1, false, tr(3))
	if _, ok := tl.Lookup(0x0000_1000, 1); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tl.Lookup(0x0000_2000, 1); ok {
		t.Error("LRU entry survived")
	}
}

func TestRefillInPlace(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x1000_0000, 5, false, tr(1))
	tl.Insert(0x1000_0000, 5, false, tr(42)) // updated mapping
	got, ok := tl.Lookup(0x1000_0000, 5)
	if !ok || got.PFN != 42 {
		t.Errorf("refill: got %#x,%v want 42,true", got.PFN, ok)
	}
	if tl.Stats().Evictions != 0 {
		t.Error("in-place refill counted as eviction")
	}
}

func TestStatsAccounting(t *testing.T) {
	tl := NewA9()
	tl.Lookup(0x1000, 1) // miss
	tl.Insert(0x1000, 1, false, tr(1))
	tl.Lookup(0x1000, 1) // hit
	tl.Lookup(0x2000, 1) // miss
	st := tl.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Accesses() != 3 {
		t.Errorf("stats = %+v, want 1 hit 2 misses", st)
	}
}

// Property: after Insert(va, asid) the very next Lookup(va, asid) hits, and
// a Lookup under a different non-matching ASID never returns another ASID's
// non-global translation.
func TestPropertyInsertThenHit(t *testing.T) {
	tl := NewA9()
	f := func(page uint16, asid, other uint8, pfn uint32) bool {
		va := uint32(page) << 12
		tl.Insert(va, asid, false, tr(pfn&0xFFFFF))
		got, ok := tl.Lookup(va, asid)
		if !ok || got.PFN != pfn&0xFFFFF {
			return false
		}
		if other != asid {
			if g, ok := tl.Lookup(va, other); ok && g.PFN == pfn&0xFFFFF {
				// A hit is only legal if some earlier iteration inserted the
				// same PFN under 'other'; to keep the property crisp, flush
				// and re-verify isolation.
				tl.FlushAll()
				tl.Insert(va, asid, false, tr(pfn&0xFFFFF))
				if _, ok2 := tl.Lookup(va, other); ok2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the per-size-class population counts that gate Lookup's probe
// skipping stay coherent with the backing array across inserts, evictions,
// in-place refills and every flush flavor — an undercounted class would make
// Lookup skip a probe that could hit.
func TestPropertyPopulationCountsCoherent(t *testing.T) {
	tl := New(32, 2)
	recount := func() (small, large int) {
		for i := range tl.entries {
			if tl.entries[i].valid {
				if tl.entries[i].tr.Large {
					large++
				} else {
					small++
				}
			}
		}
		return
	}
	f := func(ops []uint32) bool {
		for _, op := range ops {
			va := op &^ 0xFFF
			asid := uint8(op >> 1 & 3)
			switch op % 7 {
			case 0, 1, 2:
				tl.Insert(va, asid, op%5 == 0, Translation{PFN: op >> 12, Large: op%3 == 0})
			case 3:
				tl.Lookup(va, asid)
			case 4:
				tl.FlushVA(va, asid)
			case 5:
				tl.FlushASID(asid)
			case 6:
				if op%11 == 0 {
					tl.FlushAll()
				}
			}
			s, l := recount()
			if s != tl.nSmall || l != tl.nLarge || tl.Resident() != s+l {
				t.Logf("counts diverged: have small=%d large=%d, want %d/%d", tl.nSmall, tl.nLarge, s, l)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// A section entry must still be found when small-page entries are absent
// (the small-key probe is skipped) and vice versa.
func TestProbeSkipStillHits(t *testing.T) {
	tl := NewA9()
	tl.Insert(0x2030_0000, 1, false, Translation{PFN: 0x20300, Large: true})
	if _, ok := tl.Lookup(0x2030_4567, 1); !ok {
		t.Error("section entry missed with no small entries resident")
	}
	tl.FlushAll()
	tl.Insert(0x5000, 2, false, Translation{PFN: 5})
	if _, ok := tl.Lookup(0x5FFF, 2); !ok {
		t.Error("small entry missed with no section entries resident")
	}
}
