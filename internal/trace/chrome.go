package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Chrome trace_event export. The output loads directly into
// chrome://tracing or https://ui.perfetto.dev: one process ("mini-nova"),
// one thread per simulated core, "X" complete events for spans, "i"
// instants for point events, and "s"/"f" flow arrows stitching the
// events of one causal chain (flow id = hw-task request id) across
// cores. Timestamps are simulated microseconds (cycles / 660), so the
// timeline reads in guest time, not host time.
//
// Determinism: events are walked per-ring oldest-first (ring order is
// the core's own emission order), rings in core order, and every args
// map is marshalled by encoding/json (sorted keys) — two exports of the
// same run are byte-identical.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// spanKinds are rendered as "X" complete events even when Dur is 0 (a
// degenerate span still deserves a slice, clamped to >=1 cycle so the
// viewer draws it).
var spanKinds = map[Kind]bool{
	KindHypercall:   true,
	KindVMSwitch:    true,
	KindHwReq:       true,
	KindIPCCall:     true,
	KindEpochCommit: true,
}

func (t *Tracer) selName(sel uint64) string {
	if t == nil || t.SelectorName == nil {
		return fmt.Sprintf("sel_%d", sel)
	}
	if n := t.SelectorName(int(sel)); n != "" {
		return n
	}
	return fmt.Sprintf("sel_%d", sel)
}

func (t *Tracer) pdName(id uint64) string {
	if t == nil || t.PDName == nil {
		return fmt.Sprintf("pd%d", id)
	}
	if n := t.PDName(int(id)); n != "" {
		return n
	}
	return fmt.Sprintf("pd%d", id)
}

// eventName returns the slice name and args map for one event. Names
// fold in the most useful discriminator (selector, IRQ, image key) so
// the viewer's aggregate-by-name view is already meaningful.
func (t *Tracer) eventName(e Event) (string, map[string]any) {
	args := map[string]any{}
	if e.Flow != 0 {
		args["flow"] = e.Flow
	}
	switch e.Kind {
	case KindHypercall:
		args["selector"] = e.A
		args["status"] = int64(e.B)
		return "hc:" + t.selName(e.A), args
	case KindVMSwitch:
		if e.A != 0 {
			args["from"] = t.pdName(e.A - 1)
		}
		args["to"] = t.pdName(e.B - 1)
		return "switch->" + t.pdName(e.B-1), args
	case KindSchedWake, KindSchedBlock:
		args["pd"] = t.pdName(e.A)
		if e.Kind == KindSchedWake {
			args["prio"] = e.B
		}
		return e.Kind.String() + ":" + t.pdName(e.A), args
	case KindSchedRotate:
		args["prio"] = e.A
		return e.Kind.String(), args
	case KindVGICInject, KindVGICEOI, KindVGICRelatch:
		args["irq"] = e.A
		args["pd"] = t.pdName(e.B)
		return fmt.Sprintf("%s:irq%d", e.Kind, e.A), args
	case KindHwReq:
		args["task"] = e.A
		args["reply"] = int64(e.B)
		return fmt.Sprintf("hwreq#%d", e.Flow), args
	case KindHwReqSubmit:
		args["task"] = e.A
		args["client"] = t.pdName(e.B)
		return e.Kind.String(), args
	case KindHwReqComplete:
		args["status"] = int64(e.A)
		return e.Kind.String(), args
	case KindReconfigSubmit:
		args["key"] = e.A
		switch e.B {
		case ReconfigWarm:
			args["outcome"] = "warm"
		case ReconfigCoalesced:
			args["outcome"] = "coalesced"
		default:
			args["outcome"] = "cold_miss"
		}
		return e.Kind.String(), args
	case KindFillStart:
		args["key"] = e.A
		args["len"] = e.B
		return fmt.Sprintf("fill:key%d", e.A), args
	case KindFillDone:
		args["key"] = e.A
		return fmt.Sprintf("fill_done:key%d", e.A), args
	case KindReconfigQueued:
		args["key"] = e.A
		return e.Kind.String(), args
	case KindPCAPStart, KindPCAPDone:
		args["prr"] = e.A
		if e.Kind == KindPCAPStart {
			args["len"] = e.B
		} else {
			args["ok"] = e.B == 1
		}
		return fmt.Sprintf("%s:prr%d", e.Kind, e.A), args
	case KindCompletionIRQ:
		args["irq"] = e.A
		args["pd"] = t.pdName(e.B)
		return e.Kind.String(), args
	case KindIPCCall:
		args["caller"] = t.pdName(e.A)
		args["callee"] = t.pdName(e.B)
		return "ipc:" + t.pdName(e.A) + "->" + t.pdName(e.B), args
	case KindEpochCommit:
		args["epoch"] = e.A
		args["commits"] = e.B
		return e.Kind.String(), args
	default:
		args["a"] = e.A
		args["b"] = e.B
		return e.Kind.String(), args
	}
}

// ChromeJSON renders the whole trace as a Chrome trace_event JSON
// document ({"traceEvents": [...]}).
func (t *Tracer) ChromeJSON() ([]byte, error) {
	if t == nil {
		return []byte(`{"traceEvents":[]}`), nil
	}
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, Cat: "__metadata",
		Args: map[string]any{"name": "mini-nova"},
	})
	for core := range t.rings {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: core, Cat: "__metadata",
			Args: map[string]any{"name": fmt.Sprintf("core%d", core)},
		})
	}

	// flowSpan tracks, per flow id, the first and last event so the
	// flow arrows connect chain start to chain end.
	type flowPoint struct {
		ts   float64
		tid  int
		name string
	}
	flows := map[uint64][]flowPoint{}
	var flowIDs []uint64

	for core, r := range t.rings {
		for _, e := range r.Events() {
			name, args := t.eventName(e)
			ce := chromeEvent{
				Name: name, Cat: e.Kind.Cat(), PID: 1, TID: core,
				TS: e.When.Micros(), Args: args,
			}
			if spanKinds[e.Kind] || e.Dur > 0 {
				dur := e.Dur.Micros()
				if dur <= 0 {
					dur = 1.0 / 660 // one cycle, so the viewer draws it
				}
				ce.Ph = "X"
				ce.Dur = &dur
			} else {
				ce.Ph = "i"
				ce.S = "t" // thread-scoped instant
			}
			evs = append(evs, ce)
			if e.Flow != 0 {
				if _, seen := flows[e.Flow]; !seen {
					flowIDs = append(flowIDs, e.Flow)
				}
				flows[e.Flow] = append(flows[e.Flow], flowPoint{ts: e.When.Micros(), tid: core, name: name})
			}
		}
	}

	// Flow arrows: one "s" at the chain's earliest event, "t" steps in
	// between, "f" at the latest. Points are sorted by (ts, tid) so the
	// arrow order is deterministic regardless of ring walk order.
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		pts := flows[id]
		sort.SliceStable(pts, func(i, j int) bool {
			if pts[i].ts != pts[j].ts {
				return pts[i].ts < pts[j].ts
			}
			return pts[i].tid < pts[j].tid
		})
		if len(pts) < 2 {
			continue
		}
		fname := fmt.Sprintf("flow#%d", id)
		for i, p := range pts {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(pts) - 1:
				ph = "f"
			}
			ce := chromeEvent{
				Name: fname, Cat: "flow", Ph: ph, PID: 1, TID: p.tid,
				TS: p.ts, ID: fmt.Sprintf("%d", id),
			}
			if ph == "f" {
				ce.BP = "e" // bind to enclosing slice
			}
			evs = append(evs, ce)
		}
	}

	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	return json.MarshalIndent(doc, "", " ")
}

// FlightDump renders the last perCore events of every ring as a
// plain-text table — the flight recorder attached to scenario failures.
// perCore <= 0 dumps everything retained.
func (t *Tracer) FlightDump(perCore int) string {
	if t == nil {
		return "(tracing disabled)\n"
	}
	var b strings.Builder
	for core, r := range t.rings {
		evs := r.Events()
		if perCore > 0 && len(evs) > perCore {
			evs = evs[len(evs)-perCore:]
		}
		fmt.Fprintf(&b, "-- core %d: %d of %d events (drops=%d) --\n",
			core, len(evs), r.Len(), r.Drops())
		for _, e := range evs {
			name, args := t.eventName(e)
			keys := make([]string, 0, len(args))
			for k := range args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var kv strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&kv, " %s=%v", k, args[k])
			}
			if e.Dur > 0 {
				fmt.Fprintf(&b, "%14.3fus +%10.3fus %-10s %-24s%s\n",
					e.When.Micros(), e.Dur.Micros(), e.Kind.Cat(), name, kv.String())
			} else {
				fmt.Fprintf(&b, "%14.3fus %12s %-10s %-24s%s\n",
					e.When.Micros(), "", e.Kind.Cat(), name, kv.String())
			}
		}
	}
	return b.String()
}
